// Media-failure drill: populate the database, fail a disk, keep reading in
// degraded mode through parity reconstruction, rebuild the disk, and verify
// every page byte-for-byte — the classic redundant-array capability the
// paper's recovery scheme shares its parity with.
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "core/database.h"

namespace {

void Check(const rda::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  rda::DatabaseOptions options;
  options.array.layout_kind = rda::LayoutKind::kParityStriping;
  options.array.data_pages_per_group = 6;
  options.array.parity_copies = 2;
  options.array.min_data_pages = 120;
  options.array.page_size = 256;
  options.buffer.capacity = 16;
  options.txn.force = true;
  options.txn.rda_undo = true;

  auto db_or = rda::Database::Open(options);
  Check(db_or.status(), "open");
  rda::Database* db = db_or->get();
  std::printf("parity-striped array: %u disks, %u data pages, %u groups\n",
              db->array()->num_disks(), db->num_pages(),
              db->array()->num_groups());

  // Populate every page with a distinct pattern.
  rda::Random rng(99);
  std::vector<std::vector<uint8_t>> golden(db->num_pages());
  for (rda::PageId page = 0; page < db->num_pages(); ++page) {
    golden[page].assign(db->user_page_size(), 0);
    rng.FillBytes(&golden[page]);
    auto txn = db->Begin();
    Check(txn.status(), "begin");
    Check(db->WritePage(*txn, page, golden[page]), "populate");
    Check(db->Commit(*txn), "commit");
  }

  // Kill a disk.
  const rda::DiskId victim = 2;
  Check(db->FailDisk(victim), "fail disk");
  std::printf("disk %u failed.\n", victim);

  // Degraded-mode reads still return correct data (reconstructed via XOR).
  int degraded_ok = 0;
  for (rda::PageId page = 0; page < db->num_pages(); ++page) {
    auto payload = db->RawReadPage(page);
    Check(payload.status(), "degraded read");
    if (std::equal(golden[page].begin(), golden[page].end(),
                   payload->begin() + rda::kDataRegionOffset)) {
      ++degraded_ok;
    }
  }
  std::printf("degraded reads correct: %d / %u\n", degraded_ok,
              db->num_pages());

  // Rebuild.
  auto report = db->RebuildDisk(victim);
  Check(report.status(), "rebuild");
  std::printf("rebuilt disk %u: %u data pages, %u parity pages, %u obsolete "
              "twins reset\n",
              report->disk, report->data_pages_rebuilt,
              report->parity_pages_rebuilt, report->obsolete_twins_reset);

  // Full verification: every page matches and parity is consistent.
  int verified = 0;
  for (rda::PageId page = 0; page < db->num_pages(); ++page) {
    auto payload = db->RawReadPage(page);
    Check(payload.status(), "verify read");
    if (std::equal(golden[page].begin(), golden[page].end(),
                   payload->begin() + rda::kDataRegionOffset)) {
      ++verified;
    }
  }
  auto parity_ok = db->VerifyAllParity();
  Check(parity_ok.status(), "verify parity");
  std::printf("pages verified after rebuild: %d / %u; parity consistent: "
              "%s\n",
              verified, db->num_pages(), *parity_ok ? "yes" : "NO");
  return (verified == static_cast<int>(db->num_pages()) && *parity_ok) ? 0
                                                                       : 1;
}
