// Quickstart: open a database on a twin-parity redundant disk array, run a
// couple of transactions, abort one, and watch the parity-based undo
// restore the on-disk state without any UNDO log record having been
// written.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "core/database.h"

namespace {

// Every example uses this tiny helper: bail out loudly on any error.
void Check(const rda::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  // A 10-disk array (8 data pages per group + 2 parity twins), page
  // logging, FORCE at commit, RDA recovery on.
  rda::DatabaseOptions options;
  options.array.layout_kind = rda::LayoutKind::kDataStriping;
  options.array.data_pages_per_group = 8;
  options.array.parity_copies = 2;
  options.array.min_data_pages = 256;
  options.array.page_size = 512;
  options.buffer.capacity = 32;
  options.txn.logging_mode = rda::LoggingMode::kPageLogging;
  options.txn.force = true;
  options.txn.rda_undo = true;

  auto db_or = rda::Database::Open(options);
  Check(db_or.status(), "open");
  rda::Database* db = db_or->get();
  std::printf("opened: %u data pages on %u disks, %u parity groups\n",
              db->num_pages(), db->array()->num_disks(),
              db->array()->num_groups());

  // Transaction 1: write two pages and commit.
  auto t1 = db->Begin();
  Check(t1.status(), "begin t1");
  std::vector<uint8_t> hello(db->user_page_size(), 0);
  const char msg[] = "hello, redundant disk arrays";
  std::copy(std::begin(msg), std::end(msg), hello.begin());
  Check(db->WritePage(*t1, /*page=*/0, hello), "write page 0");
  Check(db->WritePage(*t1, /*page=*/9, hello), "write page 9");
  Check(db->Commit(*t1), "commit t1");
  std::printf("t1 committed; unlogged propagations so far: %llu\n",
              static_cast<unsigned long long>(
                  db->parity()->stats().unlogged_first));

  // Transaction 2: overwrite page 0, force it to disk, then abort. The
  // pre-image comes back from the parity twins (D_old = P xor P' xor D_new),
  // not from the log.
  auto t2 = db->Begin();
  Check(t2.status(), "begin t2");
  std::vector<uint8_t> scribble(db->user_page_size(), 0xee);
  Check(db->WritePage(*t2, 0, scribble), "write page 0 (t2)");
  rda::Frame* frame = db->txn_manager()->pool()->Lookup(0);
  Check(db->txn_manager()->pool()->PropagateFrame(frame), "steal page 0");
  std::printf("page 0 stolen with uncommitted data; dirty groups: %u\n",
              db->parity()->directory().DirtyCount());

  Check(db->Abort(*t2), "abort t2");
  std::printf("t2 aborted; parity undos: %llu, before-images logged: %llu\n",
              static_cast<unsigned long long>(
                  db->parity()->stats().parity_undos),
              static_cast<unsigned long long>(
                  db->txn_manager()->stats().before_images_logged));

  // Verify: page 0 is back to t1's committed content.
  auto page0 = db->RawReadPage(0);
  Check(page0.status(), "raw read");
  const bool restored = std::equal(hello.begin(), hello.end(),
                                   page0->begin() + rda::kDataRegionOffset);
  std::printf("page 0 restored to committed content: %s\n",
              restored ? "yes" : "NO (bug!)");

  auto parity_ok = db->VerifyAllParity();
  Check(parity_ok.status(), "verify parity");
  std::printf("all parity groups consistent: %s\n", *parity_ok ? "yes" : "NO");
  std::printf("total page transfers: %llu\n",
              static_cast<unsigned long long>(db->TotalPageTransfers()));
  std::printf("\n-- engine stats --\n%s", db->FormatStats().c_str());
  return restored && *parity_ok ? 0 : 1;
}
