// The adoption story: a transactional key-value catalog running on top of
// the RDA recovery engine. Multi-key transactions are atomic (an aborted
// batch leaves no trace), the committed map survives a crash, and a disk
// failure is absorbed by the array underneath — the KV layer never notices.
#include <cstdio>
#include <string>

#include "kv/kv_store.h"

namespace {

void Check(const rda::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  rda::DatabaseOptions options;
  options.array.data_pages_per_group = 4;
  options.array.parity_copies = 2;
  options.array.min_data_pages = 64;
  options.array.page_size = 256;
  options.buffer.capacity = 16;
  options.txn.logging_mode = rda::LoggingMode::kRecordLogging;
  options.txn.record_size = 48;
  options.txn.force = false;
  options.checkpoint_interval_updates = 32;

  auto db_or = rda::Database::Open(options);
  Check(db_or.status(), "open");
  rda::Database* db = db_or->get();
  rda::KvStore::Options kv_options;
  kv_options.num_pages = db->num_pages();
  auto kv_or = rda::KvStore::Attach(db, kv_options);
  Check(kv_or.status(), "attach");
  rda::KvStore* kv = kv_or->get();
  std::printf("attached KV table: %llu slots over %u pages\n",
              static_cast<unsigned long long>(kv->capacity()),
              kv_options.num_pages);

  // A committed multi-key batch.
  auto txn = db->Begin();
  Check(txn.status(), "begin");
  Check(kv->Put(*txn, "service/auth", "10.0.0.1:7001"), "put");
  Check(kv->Put(*txn, "service/billing", "10.0.0.2:7002"), "put");
  Check(kv->Put(*txn, "service/search", "10.0.0.3:7003"), "put");
  Check(db->Commit(*txn), "commit");
  std::printf("committed 3 service registrations\n");

  // An aborted batch: atomicity means neither key appears.
  txn = db->Begin();
  Check(kv->Put(*txn, "service/cache", "10.0.0.4:7004"), "put");
  Check(kv->Put(*txn, "service/auth", "BROKEN"), "put");
  Check(db->Abort(*txn), "abort");
  txn = db->Begin();
  auto auth = kv->Get(*txn, "service/auth");
  Check(auth.status(), "get auth");
  auto cache = kv->Get(*txn, "service/cache");
  Check(db->Commit(*txn), "commit read");
  std::printf("after aborted batch: auth=%s, cache=%s\n", auth->c_str(),
              cache.ok() ? cache->c_str() : "(absent, as it must be)");

  // Crash; the committed catalog survives.
  db->Crash();
  auto report = db->Recover();
  Check(report.status(), "recover");
  txn = db->Begin();
  auto billing = kv->Get(*txn, "service/billing");
  Check(billing.status(), "get billing after crash");
  Check(db->Commit(*txn), "commit");
  std::printf("after crash+recovery: billing=%s\n", billing->c_str());

  // Disk failure underneath; the KV layer keeps answering.
  Check(db->FailDisk(2), "fail disk");
  txn = db->Begin();
  auto search = kv->Get(*txn, "service/search");
  Check(search.status(), "get during degraded mode");
  Check(db->Commit(*txn), "commit");
  Check(db->RebuildDisk(2).status(), "rebuild");
  std::printf("degraded lookup worked: search=%s; disk rebuilt\n",
              search->c_str());

  const bool good = *auth == "10.0.0.1:7001" && !cache.ok() &&
                    *billing == "10.0.0.2:7002" &&
                    *search == "10.0.0.3:7003";
  std::printf("all invariants: %s\n", good ? "HELD" : "VIOLATED");
  return good ? 0 : 1;
}
