// System-failure drill: interleave committed and in-flight transactions,
// pull the plug, and run Section 4.3 recovery. Shows the division of labor
// the paper proposes: committed work is REDOne from after-images, logged
// losers are undone from before-images, and unlogged losers are undone
// from the twin parity pages alone.
#include <cstdio>
#include <vector>

#include "core/database.h"

namespace {

void Check(const rda::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

std::vector<uint8_t> Fill(size_t size, uint8_t value) {
  return std::vector<uint8_t>(size, value);
}

}  // namespace

int main() {
  rda::DatabaseOptions options;
  options.array.data_pages_per_group = 4;
  options.array.parity_copies = 2;
  options.array.min_data_pages = 64;
  options.array.page_size = 256;
  options.buffer.capacity = 16;
  options.txn.force = false;  // notFORCE: REDO matters after the crash.
  options.txn.rda_undo = true;

  auto db_or = rda::Database::Open(options);
  Check(db_or.status(), "open");
  rda::Database* db = db_or->get();
  const size_t user = db->user_page_size();

  // A committed transaction whose pages never reach the disk (notFORCE).
  auto winner = db->Begin();
  Check(db->WritePage(*winner, 0, Fill(user, 0xAA)), "winner write 0");
  Check(db->WritePage(*winner, 5, Fill(user, 0xAB)), "winner write 5");
  Check(db->Commit(*winner), "commit winner");

  // A loser whose page IS forced to disk, without UNDO logging: the twin
  // parity covers it.
  auto loser = db->Begin();
  Check(db->WritePage(*loser, 12, Fill(user, 0xCC)), "loser write 12");
  rda::Frame* frame = db->txn_manager()->pool()->Lookup(12);
  Check(db->txn_manager()->pool()->PropagateFrame(frame), "steal page 12");

  // A second loser that only dirtied the buffer.
  auto loser2 = db->Begin();
  Check(db->WritePage(*loser2, 20, Fill(user, 0xDD)), "loser2 write 20");

  std::printf("before crash: dirty parity groups = %u, buffer dirty pages = "
              "%zu\n",
              db->parity()->directory().DirtyCount(),
              db->txn_manager()->pool()->DirtyPages().size());

  db->Crash();
  std::printf("CRASH. buffer, lock table and parity directory are gone.\n");

  auto report = db->Recover();
  Check(report.status(), "recover");
  std::printf("recovery: winners=%zu losers=%zu | parity undos=%llu "
              "logged undos=%llu | redo applied=%llu skipped=%llu | chain "
              "pages walked=%llu\n",
              report->winners.size(), report->losers.size(),
              static_cast<unsigned long long>(report->parity_undos),
              static_cast<unsigned long long>(report->logged_undos),
              static_cast<unsigned long long>(report->redo_applied),
              static_cast<unsigned long long>(report->redo_skipped),
              static_cast<unsigned long long>(report->chain_pages_walked));

  // Check the final on-disk state.
  auto page0 = db->RawReadPage(0);
  auto page12 = db->RawReadPage(12);
  auto page20 = db->RawReadPage(20);
  Check(page0.status(), "read 0");
  Check(page12.status(), "read 12");
  Check(page20.status(), "read 20");
  const bool winner_redone = (*page0)[rda::kDataRegionOffset] == 0xAA;
  const bool loser_undone = (*page12)[rda::kDataRegionOffset] == 0x00;
  const bool loser2_gone = (*page20)[rda::kDataRegionOffset] == 0x00;
  std::printf("winner's committed data redone:   %s\n",
              winner_redone ? "yes" : "NO (bug!)");
  std::printf("stolen loser page undone (parity): %s\n",
              loser_undone ? "yes" : "NO (bug!)");
  std::printf("buffered loser change discarded:   %s\n",
              loser2_gone ? "yes" : "NO (bug!)");

  auto parity_ok = db->VerifyAllParity();
  Check(parity_ok.status(), "verify");
  std::printf("parity consistent after recovery:  %s\n",
              *parity_ok ? "yes" : "NO");
  return winner_redone && loser_undone && loser2_gone && *parity_ok ? 0 : 1;
}
