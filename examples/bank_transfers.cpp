// An OLTP scenario in the spirit of the paper's motivation: a bank keeps
// fixed-size account records on a redundant disk array (record logging,
// notFORCE/ACC — the paper's best-performing configuration). Transfers
// move money between random accounts; some transactions abort; a system
// crash hits mid-stream. The invariant checked throughout: the total
// balance is conserved, because every abort and the crash recovery undo
// partial transfers exactly.
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/random.h"
#include "core/database.h"

namespace {

void Check(const rda::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

constexpr int64_t kInitialBalance = 1000;

struct Account {
  rda::PageId page;
  rda::RecordSlot slot;
};

int64_t DecodeBalance(const std::vector<uint8_t>& record) {
  int64_t value = 0;
  std::memcpy(&value, record.data(), sizeof(value));
  return value;
}

std::vector<uint8_t> EncodeBalance(int64_t value, size_t record_size) {
  std::vector<uint8_t> record(record_size, 0);
  std::memcpy(record.data(), &value, sizeof(value));
  return record;
}

}  // namespace

int main() {
  rda::DatabaseOptions options;
  options.array.data_pages_per_group = 8;
  options.array.parity_copies = 2;
  options.array.min_data_pages = 128;
  options.array.page_size = 512;
  options.buffer.capacity = 24;
  options.txn.logging_mode = rda::LoggingMode::kRecordLogging;
  options.txn.record_size = 61;  // Odd on purpose; slots are fixed-size.
  options.txn.force = false;     // notFORCE + ACC checkpoints.
  options.txn.rda_undo = true;
  options.checkpoint_interval_updates = 64;

  auto db_or = rda::Database::Open(options);
  Check(db_or.status(), "open");
  rda::Database* db = db_or->get();

  // Lay out accounts: one record per slot across the first pages.
  const uint32_t slots = db->records_per_page();
  const int num_accounts = 64;
  std::vector<Account> accounts;
  for (int i = 0; i < num_accounts; ++i) {
    accounts.push_back(Account{static_cast<rda::PageId>(i / slots),
                               static_cast<rda::RecordSlot>(i % slots)});
  }

  {
    auto setup = db->Begin();
    Check(setup.status(), "begin setup");
    for (const Account& account : accounts) {
      Check(db->WriteRecord(*setup, account.page, account.slot,
                            EncodeBalance(kInitialBalance,
                                          options.txn.record_size)),
            "seed account");
    }
    Check(db->Commit(*setup), "commit setup");
  }
  std::printf("seeded %d accounts with %lld each\n", num_accounts,
              static_cast<long long>(kInitialBalance));

  rda::Random rng(2024);
  int committed = 0;
  int aborted = 0;
  for (int i = 0; i < 300; ++i) {
    auto txn = db->Begin();
    Check(txn.status(), "begin transfer");
    const Account& from = accounts[rng.Uniform(num_accounts)];
    // Redraw until the target differs: a self-transfer would read the same
    // record twice and double-apply the second write.
    size_t to_index = rng.Uniform(num_accounts);
    while (&accounts[to_index] == &from) {
      to_index = rng.Uniform(num_accounts);
    }
    const Account& to = accounts[to_index];
    const int64_t amount = static_cast<int64_t>(rng.UniformRange(1, 50));

    std::vector<uint8_t> from_rec;
    std::vector<uint8_t> to_rec;
    rda::Status step = db->ReadRecord(*txn, from.page, from.slot, &from_rec);
    if (step.ok()) {
      step = db->ReadRecord(*txn, to.page, to.slot, &to_rec);
    }
    if (step.ok()) {
      step = db->WriteRecord(
          *txn, from.page, from.slot,
          EncodeBalance(DecodeBalance(from_rec) - amount,
                        options.txn.record_size));
    }
    if (step.ok()) {
      step = db->WriteRecord(*txn, to.page, to.slot,
                             EncodeBalance(DecodeBalance(to_rec) + amount,
                                           options.txn.record_size));
    }
    if (!step.ok() || rng.Bernoulli(0.15)) {
      Check(db->Abort(*txn), "abort transfer");
      ++aborted;
    } else {
      Check(db->Commit(*txn), "commit transfer");
      ++committed;
    }
  }
  std::printf("ran 300 transfers: %d committed, %d aborted\n", committed,
              aborted);

  // Crash in the middle of everything, then recover.
  db->Crash();
  auto report = db->Recover();
  Check(report.status(), "recover");
  std::printf("crash recovery: %zu winners, %zu losers, %llu parity undos, "
              "%llu redo applied\n",
              report->winners.size(), report->losers.size(),
              static_cast<unsigned long long>(report->parity_undos),
              static_cast<unsigned long long>(report->redo_applied));

  // Audit the books straight off the disk.
  int64_t total = 0;
  for (const Account& account : accounts) {
    auto payload = db->RawReadPage(account.page);
    Check(payload.status(), "audit read");
    std::vector<uint8_t> record(
        payload->begin() + rda::kDataRegionOffset +
            account.slot * options.txn.record_size,
        payload->begin() + rda::kDataRegionOffset +
            (account.slot + 1) * options.txn.record_size);
    total += DecodeBalance(record);
  }
  const int64_t expected = kInitialBalance * num_accounts;
  std::printf("audited balance: %lld (expected %lld) -> %s\n",
              static_cast<long long>(total),
              static_cast<long long>(expected),
              total == expected ? "CONSERVED" : "LOST MONEY (bug!)");
  return total == expected ? 0 : 1;
}
