// Degraded-mode operation drill: the availability argument of redundant
// arrays (paper Section 1). A disk dies mid-workload and the database keeps
// committing — reads reconstruct through parity, writes land in the parity
// alone — until a rebuild brings the replacement disk up to date. Finally a
// quiescent archive is taken and a catastrophic two-disk failure is
// restored from it.
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "core/database.h"

namespace {

void Check(const rda::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  rda::DatabaseOptions options;
  options.array.data_pages_per_group = 4;
  options.array.parity_copies = 2;
  options.array.min_data_pages = 64;
  options.array.page_size = 256;
  options.buffer.capacity = 16;
  options.txn.force = true;
  options.txn.rda_undo = true;

  auto db_or = rda::Database::Open(options);
  Check(db_or.status(), "open");
  rda::Database* db = db_or->get();

  // Bulk-load initial content with full-stripe writes.
  rda::Random rng(4242);
  std::vector<std::vector<uint8_t>> golden(db->num_pages());
  for (rda::PageId page = 0; page < db->num_pages(); ++page) {
    golden[page].assign(db->user_page_size(), 0);
    rng.FillBytes(&golden[page]);
  }
  Check(db->BulkLoad(golden), "bulk load");
  std::printf("bulk-loaded %u pages (full-stripe writes: %llu transfers)\n",
              db->num_pages(),
              static_cast<unsigned long long>(
                  db->array()->counters().total()));

  auto churn = [&](int rounds, const char* phase) {
    int committed = 0;
    int aborted = 0;
    for (int i = 0; i < rounds; ++i) {
      auto txn = db->Begin();
      Check(txn.status(), "begin");
      const rda::PageId page =
          static_cast<rda::PageId>(rng.Uniform(db->num_pages()));
      std::vector<uint8_t> bytes(db->user_page_size(), 0);
      rng.FillBytes(&bytes);
      Check(db->WritePage(*txn, page, bytes), "write");
      if (rng.Bernoulli(0.2)) {
        Check(db->Abort(*txn), "abort");
        ++aborted;
      } else {
        Check(db->Commit(*txn), "commit");
        golden[page] = bytes;
        ++committed;
      }
    }
    std::printf("%s: %d committed, %d aborted\n", phase, committed, aborted);
  };

  auto audit = [&](const char* phase) {
    int bad = 0;
    for (rda::PageId page = 0; page < db->num_pages(); ++page) {
      auto payload = db->RawReadPage(page);
      Check(payload.status(), "audit read");
      if (!std::equal(golden[page].begin(), golden[page].end(),
                      payload->begin() + rda::kDataRegionOffset)) {
        ++bad;
      }
    }
    std::printf("%s: %d / %u pages mismatched\n", phase, bad,
                db->num_pages());
    return bad;
  };

  churn(40, "healthy phase");

  Check(db->FailDisk(1), "fail disk 1");
  std::printf("disk 1 FAILED — continuing in degraded mode\n");
  churn(40, "degraded phase");
  int bad = audit("degraded audit");

  auto rebuild = db->RebuildDisk(1);
  Check(rebuild.status(), "rebuild");
  std::printf("rebuilt disk 1: %u data + %u parity pages reconstructed\n",
              rebuild->data_pages_rebuilt, rebuild->parity_pages_rebuilt);
  bad += audit("post-rebuild audit");

  // Catastrophe drill: archive, lose two disks, restore.
  Check(db->TakeArchive(), "archive");
  churn(20, "post-archive phase");
  Check(db->FailDisk(0), "fail disk 0");
  Check(db->FailDisk(3), "fail disk 3");
  std::printf("disks 0 and 3 FAILED — beyond array redundancy\n");
  auto restore = db->RestoreFromArchive();
  Check(restore.status(), "restore from archive");
  std::printf("restored from archive + log: %llu after-images redone\n",
              static_cast<unsigned long long>(restore->redo_applied));
  bad += audit("post-catastrophe audit");

  auto parity_ok = db->VerifyAllParity();
  Check(parity_ok.status(), "verify parity");
  std::printf("parity consistent: %s\n", *parity_ok ? "yes" : "NO");
  return (bad == 0 && *parity_ok) ? 0 : 1;
}
