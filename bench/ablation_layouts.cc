// Ablation Abl-1 (DESIGN.md): data striping (RAID-5 rotated parity) vs
// parity striping (Gray et al.) under the same OLTP workload. Both layouts
// pay the same small-write parity cost; the paper adopts either
// organization (Section 3). This bench confirms the transfer counts are
// layout-independent while the *placement* differs (sequentiality is the
// parity-striping motivation).
#include <iomanip>
#include <iostream>

#include "sim/simulator.h"
#include "storage/disk_array.h"

namespace {

rda::sim::SimOptions MakeOptions(rda::LayoutKind layout, uint64_t seed) {
  rda::sim::SimOptions options;
  options.db.array.layout_kind = layout;
  options.db.array.data_pages_per_group = 8;
  options.db.array.parity_copies = 2;
  options.db.array.min_data_pages = 512;
  options.db.array.page_size = 256;
  options.db.buffer.capacity = 64;
  options.db.txn.force = true;
  options.db.txn.rda_undo = true;
  options.workload.num_pages = 512;
  options.workload.pages_per_txn = 8;
  options.workload.communality = 0.5;
  options.workload.update_txn_fraction = 0.8;
  options.workload.update_probability = 0.9;
  options.workload.seed = seed;
  options.num_transactions = 400;
  options.concurrency = 4;
  return options;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: array organization (page FORCE/TOC, RDA) ===\n\n"
            << std::setw(18) << "layout" << std::setw(14) << "xfers/txn"
            << std::setw(14) << "commits" << std::setw(16) << "unlogged steals"
            << "\n";
  for (const auto& [kind, name] :
       {std::pair{rda::LayoutKind::kDataStriping, "data striping"},
        std::pair{rda::LayoutKind::kParityStriping, "parity striping"}}) {
    rda::sim::Simulator sim(MakeOptions(kind, 7));
    auto result = sim.Run();
    if (!result.ok()) {
      std::cerr << "simulation failed: " << result.status().ToString() << "\n";
      return 1;
    }
    std::cout << std::setw(18) << name << std::fixed << std::setprecision(2)
              << std::setw(14) << result->transfers_per_commit
              << std::setw(14) << result->committed << std::setw(16)
              << (result->parity.unlogged_first +
                  result->parity.unlogged_repeat)
              << "\n";
  }
  // Part 2: service time under concurrent sequential streams — the
  // motivation for parity striping (Gray et al.; paper Section 3.2).
  std::cout << "\n--- concurrent sequential streams (service-time model) "
               "---\n\n"
            << std::setw(18) << "layout" << std::setw(20)
            << "critical path (ms)" << std::setw(18) << "total busy (ms)"
            << "\n";
  for (const auto& [kind, name] :
       {std::pair{rda::LayoutKind::kDataStriping, "data striping"},
        std::pair{rda::LayoutKind::kParityStriping, "parity striping"}}) {
    rda::DiskArray::Options array_options;
    array_options.layout_kind = kind;
    array_options.data_pages_per_group = 8;
    array_options.parity_copies = 2;
    array_options.min_data_pages = 2048;
    array_options.page_size = 256;
    auto array = rda::DiskArray::Create(array_options);
    if (!array.ok()) {
      std::cerr << array.status().ToString() << "\n";
      return 1;
    }
    rda::PageImage image;
    const uint32_t pages = (*array)->num_data_pages();
    const rda::PageId starts[4] = {0, pages / 4, pages / 2, 3 * pages / 4};
    for (uint32_t step = 0; step < pages / 4; ++step) {
      for (const rda::PageId start : starts) {
        if (!(*array)->ReadData(start + step, &image).ok()) {
          return 1;
        }
      }
    }
    std::cout << std::setw(18) << name << std::fixed << std::setprecision(0)
              << std::setw(20) << (*array)->MaxBusyMs() << std::setw(18)
              << (*array)->TotalBusyMs() << "\n";
  }
  std::cout << "\n(equal transfer counts, very different head movement: "
               "parity striping keeps each\n sequential stream on one "
               "disk — Gray et al.'s argument, quantified)\n";
  return 0;
}
