// Performance report for the hot-path overhaul: times the library's hot
// primitives (CRC-32C dispatch vs the old bytewise loop, page XOR, buffer
// fetch, log append+flush) and the end-to-end commit path for the paper's
// four algorithm classes x {RDA, no-RDA}, then writes machine-readable
// JSON (BENCH_perf.json) for the README results table and CI artifact.
//
// Usage: perf_report [output.json]   (default: BENCH_perf.json in cwd)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "buffer/buffer_pool.h"
#include "common/crc32.h"
#include "common/random.h"
#include "common/xor_util.h"
#include "core/database.h"
#include "obs/span.h"

namespace {

using Clock = std::chrono::steady_clock;

// The pre-overhaul CRC-32C: one table, one byte per step. Kept here as the
// speedup reference for the dispatched implementation.
uint32_t Crc32cBytewise(const void* data, size_t size) {
  static const auto table = [] {
    std::vector<uint32_t> t(256);
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xff];
  }
  return crc ^ 0xffffffffu;
}

// Runs `body` (which processes `bytes_per_iter` bytes) until ~`budget_ms`
// of wall time is spent; returns throughput in GB/s.
double MeasureGBps(size_t bytes_per_iter, int budget_ms,
                   const std::function<void()>& body) {
  // Warm up (table/dispatch init, cache).
  for (int i = 0; i < 16; ++i) {
    body();
  }
  uint64_t iters = 0;
  const auto start = Clock::now();
  const auto deadline = start + std::chrono::milliseconds(budget_ms);
  while (Clock::now() < deadline) {
    for (int i = 0; i < 64; ++i) {
      body();
    }
    iters += 64;
  }
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(iters) * bytes_per_iter / secs / 1e9;
}

volatile uint32_t g_sink;  // Defeats dead-code elimination.

struct EndToEndResult {
  std::string config;
  bool rda = false;
  double txns_per_sec = 0;
  double transfers_per_txn = 0;
  uint64_t total_transfers = 0;
  double secs = 0;
  // Async-engine telemetry (zero when io_width == 0).
  uint64_t coalesced_writes = 0;
  uint64_t batched_parity_rmw = 0;
};

rda::DatabaseOptions MakeOptions(bool page_logging, bool force, bool rda_on) {
  rda::DatabaseOptions options;
  options.array.data_pages_per_group = 8;
  options.array.parity_copies = 2;
  options.array.min_data_pages = 512;
  options.array.page_size = 512;
  options.buffer.capacity = 64;
  options.txn.logging_mode = page_logging ? rda::LoggingMode::kPageLogging
                                          : rda::LoggingMode::kRecordLogging;
  options.txn.record_size = 48;
  options.txn.force = force;
  options.txn.rda_undo = rda_on;
  if (!force) {
    options.checkpoint_interval_updates = 256;
  }
  return options;
}

// Commits `txns` transactions of 4 updates each and reports throughput
// plus the paper's metric, page transfers per transaction. `arm_faults`
// attaches per-disk fault injectors with ALL probabilities at zero — the
// configuration the fault_overhead section asserts is free.
int RunEndToEnd(bool page_logging, bool force, bool rda_on, int txns,
                EndToEndResult* out, bool arm_faults = false,
                uint32_t io_width = 0) {
  rda::DatabaseOptions options = MakeOptions(page_logging, force, rda_on);
  if (arm_faults) {
    options.fault.enabled = true;  // Probabilities stay zero.
  }
  options.io.width = io_width;
  auto db_or = rda::Database::Open(options);
  if (!db_or.ok()) {
    return 1;
  }
  rda::Database* db = db_or->get();
  rda::Random rng(11);
  std::vector<uint8_t> page_bytes(db->user_page_size());
  std::vector<uint8_t> record_bytes(48);
  const auto start = Clock::now();
  const uint64_t transfers_before = db->TotalPageTransfers();
  for (int t = 0; t < txns; ++t) {
    auto txn = db->Begin();
    if (!txn.ok()) {
      return 1;
    }
    for (int i = 0; i < 4; ++i) {
      const rda::PageId page =
          static_cast<rda::PageId>(rng.Uniform(db->num_pages()));
      rda::Status status;
      if (page_logging) {
        rng.FillBytes(&page_bytes);
        status = db->WritePage(*txn, page, page_bytes);
      } else {
        rng.FillBytes(&record_bytes);
        status = db->WriteRecord(*txn, page, 0, record_bytes);
      }
      if (!status.ok()) {
        return 1;
      }
    }
    if (!db->Commit(*txn).ok()) {
      return 1;
    }
  }
  // The drain belongs inside the timed region: async throughput must pay
  // for every physical transfer it deferred, not hide it in teardown.
  if (io_width > 0 && !db->array()->FlushIo().ok()) {
    return 1;
  }
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  out->config = std::string(page_logging ? "page" : "record") + "_" +
                (force ? "force" : "noforce");
  out->rda = rda_on;
  out->txns_per_sec = txns / secs;
  out->total_transfers = db->TotalPageTransfers() - transfers_before;
  out->secs = secs;
  out->transfers_per_txn = static_cast<double>(out->total_transfers) / txns;
  if (io_width > 0 && db->array()->io_engine() != nullptr) {
    const auto stats = db->array()->io_engine()->stats();
    out->coalesced_writes = stats.coalesced_writes;
    out->batched_parity_rmw = stats.batched_parity_rmw;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_perf.json";

  // --- micro primitives ---
  rda::Random rng(7);
  std::vector<uint8_t> buf(4096);
  rng.FillBytes(&buf);

  const double crc_bytewise = MeasureGBps(buf.size(), 200, [&] {
    g_sink = Crc32cBytewise(buf.data(), buf.size());
  });
  const double crc_dispatched = MeasureGBps(buf.size(), 200, [&] {
    g_sink = rda::Crc32c(buf.data(), buf.size());
  });
  const double crc_software = MeasureGBps(buf.size(), 200, [&] {
    g_sink = rda::Crc32cSoftware(buf.data(), buf.size());
  });

  std::vector<uint8_t> xa(4096, 0x5a);
  std::vector<uint8_t> xb(4096, 0xa5);
  const double xor_page = MeasureGBps(xa.size(), 200, [&] {
    rda::XorInto(xa.data(), xb.data(), xa.size());
  });

  // Buffer fetch: all pages resident, so every Fetch is a hit — this is
  // the hot path the O(1) LRU list serves.
  constexpr size_t kFetchPageSize = 512;
  rda::BufferPool::Options pool_options;
  pool_options.capacity = 64;
  pool_options.page_size = kFetchPageSize;
  rda::BufferPool pool(
      pool_options,
      [](rda::PageId, rda::PageImage* out) {
        *out = rda::PageImage(kFetchPageSize);
        return rda::Status::Ok();
      },
      [](rda::Frame*) { return rda::Status::Ok(); });
  for (rda::PageId p = 0; p < 64; ++p) {
    if (!pool.Fetch(p, nullptr).ok()) {
      std::fprintf(stderr, "buffer warmup failed\n");
      return 1;
    }
  }
  uint64_t fetch_iters = 0;
  rda::PageId next_page = 0;
  const auto fetch_start = Clock::now();
  const auto fetch_deadline = fetch_start + std::chrono::milliseconds(200);
  while (Clock::now() < fetch_deadline) {
    for (int i = 0; i < 256; ++i) {
      auto frame = pool.Fetch(next_page, nullptr);
      if (!frame.ok()) {
        std::fprintf(stderr, "buffer fetch failed\n");
        return 1;
      }
      next_page = (next_page + 7) % 64;  // Stride keeps the LRU churning.
    }
    fetch_iters += 256;
  }
  const double fetch_mops =
      fetch_iters /
      std::chrono::duration<double>(Clock::now() - fetch_start).count() / 1e6;

  // Log append+flush of a 512-byte before-image record.
  rda::LogManager::Options log_options;
  rda::LogManager log(log_options);
  rda::LogRecord record;
  record.type = rda::LogRecordType::kBeforeImage;
  record.txn = 1;
  record.page = 7;
  record.before.assign(512, 0x11);
  uint64_t log_iters = 0;
  const auto log_start = Clock::now();
  const auto log_deadline = log_start + std::chrono::milliseconds(200);
  while (Clock::now() < log_deadline) {
    for (int i = 0; i < 64; ++i) {
      if (!log.Append(record).ok() || !log.Flush().ok()) {
        std::fprintf(stderr, "log append failed\n");
        return 1;
      }
    }
    log_iters += 64;
    if (log.stable_bytes() > (64u << 20)) {
      if (!log.Truncate(log.flushed_lsn()).ok()) {  // Keep memory bounded.
        std::fprintf(stderr, "log truncate failed\n");
        return 1;
      }
    }
  }
  const double log_kops =
      log_iters /
      std::chrono::duration<double>(Clock::now() - log_start).count() / 1e3;

  // --- end-to-end commit throughput ---
  std::vector<EndToEndResult> results;
  for (const bool page_logging : {true, false}) {
    for (const bool force : {true, false}) {
      for (const bool rda_on : {false, true}) {
        EndToEndResult result;
        if (RunEndToEnd(page_logging, force, rda_on, 2000, &result) != 0) {
          std::fprintf(stderr, "end-to-end run failed\n");
          return 1;
        }
        results.push_back(result);
      }
    }
  }

  // --- async I/O engine: the same commit matrix with per-disk queues ---
  // Each cell re-runs with io.width = 2: submissions journal into the
  // engine, drains coalesce duplicate slots and batch parity RMWs, and the
  // final FlushIo sits inside the timed region so deferred transfers are
  // still paid for.
  constexpr uint32_t kAsyncWidth = 2;
  std::vector<EndToEndResult> async_results;
  for (const bool page_logging : {true, false}) {
    for (const bool force : {true, false}) {
      for (const bool rda_on : {false, true}) {
        EndToEndResult result;
        if (RunEndToEnd(page_logging, force, rda_on, 2000, &result,
                        /*arm_faults=*/false, kAsyncWidth) != 0) {
          std::fprintf(stderr, "async end-to-end run failed\n");
          return 1;
        }
        async_results.push_back(result);
      }
    }
  }
  // The acceptance bar for the engine: record_force with RDA inside 5% of
  // record_force without it (synchronously it trails by ~20% — the parity
  // read-modify-writes the engine batches away).
  double async_rf_rda = 0;
  double async_rf_plain = 0;
  for (const EndToEndResult& r : async_results) {
    if (r.config == "record_force") {
      (r.rda ? async_rf_rda : async_rf_plain) = r.txns_per_sec;
    }
  }
  const double async_rda_gap =
      async_rf_plain > 0 ? 1.0 - async_rf_rda / async_rf_plain : 1.0;

  // --- span hooks: ~zero-cost when disabled ---
  // A ScopedSpan with a null collector and null histogram must not even
  // read the clock; its per-op cost over an empty baseline loop is asserted
  // below a CI-safe ceiling. The enabled cost (two clock reads + one
  // lock-free ring push) is reported alongside for scale.
  auto measure_ns_per_op = [](const std::function<void()>& body) {
    for (int i = 0; i < 1024; ++i) {
      body();  // Warm up.
    }
    uint64_t iters = 0;
    const auto start = Clock::now();
    const auto deadline = start + std::chrono::milliseconds(100);
    while (Clock::now() < deadline) {
      for (int i = 0; i < 4096; ++i) {
        body();
      }
      iters += 4096;
    }
    const double secs =
        std::chrono::duration<double>(Clock::now() - start).count();
    return secs * 1e9 / static_cast<double>(iters);
  };
  const double span_baseline_ns =
      measure_ns_per_op([] { g_sink = g_sink + 1; });
  const double span_disabled_raw_ns = measure_ns_per_op([] {
    rda::obs::ScopedSpan span(nullptr, rda::obs::SpanKind::kTxnCommit);
    g_sink = g_sink + 1;
  });
  rda::obs::SpanCollector span_collector(1024);
  const double span_enabled_raw_ns = measure_ns_per_op([&] {
    rda::obs::ScopedSpan span(&span_collector, rda::obs::SpanKind::kTxnCommit);
    g_sink = g_sink + 1;
  });
  // Nested spans ride the per-thread clock cache: a child starting inside
  // an already-stamped parent reuses the parent's timestamp instead of
  // reading the clock again, so the steady_clock::now() that dominated the
  // enabled cost (~81 ns/op before the cache) is paid once per op, not
  // twice. Measured inside a persistent outer span, exactly like the
  // commit-path spans nest in production. Both measurements use
  // histogram-less spans: a histogram-carrying span deliberately skips the
  // cache (its duration feeds latency percentiles, which must not inherit
  // the cached read's early-start bias), so it is not the cached path.
  double span_nested_enabled_ns = 0;
  {
    rda::obs::ScopedSpan outer(&span_collector,
                               rda::obs::SpanKind::kTxnCommit);
    const double nested_raw_ns = measure_ns_per_op([&] {
      rda::obs::ScopedSpan span(&span_collector,
                                rda::obs::SpanKind::kWalFlush);
      g_sink = g_sink + 1;
    });
    span_nested_enabled_ns = std::max(0.0, nested_raw_ns - span_baseline_ns);
  }
  const double span_disabled_ns =
      std::max(0.0, span_disabled_raw_ns - span_baseline_ns);
  const double span_enabled_ns =
      std::max(0.0, span_enabled_raw_ns - span_baseline_ns);
  constexpr double kSpanDisabledCeilingNs = 25.0;
  if (span_disabled_ns > kSpanDisabledCeilingNs) {
    std::fprintf(stderr,
                 "FAIL: disabled-obs ScopedSpan costs %.2f ns/op "
                 "(ceiling %.0f ns) — the null fast path regressed\n",
                 span_disabled_ns, kSpanDisabledCeilingNs);
    return 1;
  }
  // The cache's whole point: a nested enabled span pays ONE clock read
  // where a depth-0 span pays two, so it must come in well under the
  // depth-0 cost measured in the same run. The ceiling is a ratio, not an
  // absolute, because CI wall-clock noise moves both numbers together
  // (observed ~0.65 with the cache, ~1.0 without it).
  constexpr double kSpanNestedCeilingRatio = 0.85;
  const double span_nested_ratio =
      span_enabled_ns > 0 ? span_nested_enabled_ns / span_enabled_ns : 0.0;
  if (span_nested_ratio > kSpanNestedCeilingRatio) {
    std::fprintf(stderr,
                 "FAIL: nested enabled ScopedSpan costs %.2f ns/op vs %.2f "
                 "depth-0 (ratio %.2f, ceiling %.2f) — the clock-stamp "
                 "cache regressed\n",
                 span_nested_enabled_ns, span_enabled_ns, span_nested_ratio,
                 kSpanNestedCeilingRatio);
    return 1;
  }

  // --- fault hooks: zero-cost when disabled ---
  // The same deterministic workload with (a) no injectors and (b) armed
  // injectors at zero probability. The I/O must be EXACTLY identical — any
  // drift means the fault plumbing leaked into clean-path behaviour — and
  // the wall-clock ratio is reported (armed-zero pays one pointer test plus
  // two Bernoulli draws per access).
  EndToEndResult fault_off;
  EndToEndResult fault_zero;
  if (RunEndToEnd(true, true, true, 2000, &fault_off,
                  /*arm_faults=*/false) != 0 ||
      RunEndToEnd(true, true, true, 2000, &fault_zero,
                  /*arm_faults=*/true) != 0) {
    std::fprintf(stderr, "fault overhead run failed\n");
    return 1;
  }
  if (fault_off.total_transfers != fault_zero.total_transfers) {
    std::fprintf(stderr,
                 "FAIL: fault hooks changed the I/O pattern: %llu transfers "
                 "disabled vs %llu armed-at-zero\n",
                 static_cast<unsigned long long>(fault_off.total_transfers),
                 static_cast<unsigned long long>(fault_zero.total_transfers));
    return 1;
  }
  const double fault_wallclock_ratio = fault_zero.secs / fault_off.secs;

  // --- report ---
  const double crc_speedup = crc_dispatched / crc_bytewise;
  std::printf("crc32c impl: %s\n", rda::Crc32cImplName());
  std::printf("crc32c 4096B: bytewise %.2f GB/s, slice-by-8 %.2f GB/s, "
              "dispatched %.2f GB/s (%.1fx vs bytewise)\n",
              crc_bytewise, crc_software, crc_dispatched, crc_speedup);
  std::printf("xor page 4096B: %.2f GB/s\n", xor_page);
  std::printf("buffer fetch (hit): %.2f Mops/s\n", fetch_mops);
  std::printf("log append+flush 512B: %.2f Kops/s\n", log_kops);
  std::printf("fault hooks: %llu transfers (identical disabled vs armed-at-"
              "zero), wall-clock ratio %.3f\n",
              static_cast<unsigned long long>(fault_off.total_transfers),
              fault_wallclock_ratio);
  std::printf("span hooks: disabled %.2f ns/op (ceiling %.0f), "
              "enabled %.1f ns/op, nested enabled %.1f ns/op "
              "(ratio %.2f, ceiling %.2f)\n",
              span_disabled_ns, kSpanDisabledCeilingNs, span_enabled_ns,
              span_nested_enabled_ns, span_nested_ratio,
              kSpanNestedCeilingRatio);
  std::printf("\n%-16s %6s %14s %16s\n", "config", "rda", "txns/sec",
              "transfers/txn");
  for (const EndToEndResult& r : results) {
    std::printf("%-16s %6s %14.0f %16.2f\n", r.config.c_str(),
                r.rda ? "on" : "off", r.txns_per_sec, r.transfers_per_txn);
  }
  std::printf("\nasync engine (io.width=%u):\n", kAsyncWidth);
  std::printf("%-16s %6s %14s %16s %11s %12s\n", "config", "rda", "txns/sec",
              "transfers/txn", "coalesced", "parity_rmw");
  for (const EndToEndResult& r : async_results) {
    std::printf("%-16s %6s %14.0f %16.2f %11llu %12llu\n", r.config.c_str(),
                r.rda ? "on" : "off", r.txns_per_sec, r.transfers_per_txn,
                static_cast<unsigned long long>(r.coalesced_writes),
                static_cast<unsigned long long>(r.batched_parity_rmw));
  }
  std::printf("async record_force rda-vs-plain gap: %.1f%% %s\n",
              async_rda_gap * 100.0,
              async_rda_gap <= 0.05 ? "(within the 5% bar)"
                                    : "(WARN: outside the 5% bar)");

  FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"crc32c_impl\": \"%s\",\n", rda::Crc32cImplName());
  std::fprintf(out, "  \"micro\": {\n");
  std::fprintf(out, "    \"crc32c_bytewise_4096_GBps\": %.3f,\n",
               crc_bytewise);
  std::fprintf(out, "    \"crc32c_software_4096_GBps\": %.3f,\n",
               crc_software);
  std::fprintf(out, "    \"crc32c_dispatched_4096_GBps\": %.3f,\n",
               crc_dispatched);
  std::fprintf(out, "    \"crc32c_speedup_vs_bytewise\": %.2f,\n",
               crc_speedup);
  std::fprintf(out, "    \"xor_page_4096_GBps\": %.3f,\n", xor_page);
  std::fprintf(out, "    \"buffer_fetch_hit_Mops\": %.3f,\n", fetch_mops);
  std::fprintf(out, "    \"log_append_flush_512_Kops\": %.3f\n", log_kops);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"end_to_end\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const EndToEndResult& r = results[i];
    std::fprintf(out,
                 "    {\"config\": \"%s\", \"rda\": %s, "
                 "\"txns_per_sec\": %.0f, \"page_transfers_per_txn\": %.2f}%s\n",
                 r.config.c_str(), r.rda ? "true" : "false", r.txns_per_sec,
                 r.transfers_per_txn, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"async_io\": {\n");
  std::fprintf(out, "    \"io_width\": %u,\n", kAsyncWidth);
  std::fprintf(out, "    \"record_force_rda_gap\": %.4f,\n", async_rda_gap);
  std::fprintf(out, "    \"end_to_end\": [\n");
  for (size_t i = 0; i < async_results.size(); ++i) {
    const EndToEndResult& r = async_results[i];
    std::fprintf(
        out,
        "      {\"config\": \"%s\", \"rda\": %s, \"txns_per_sec\": %.0f, "
        "\"page_transfers_per_txn\": %.2f, \"coalesced_writes\": %llu, "
        "\"batched_parity_rmw\": %llu}%s\n",
        r.config.c_str(), r.rda ? "true" : "false", r.txns_per_sec,
        r.transfers_per_txn,
        static_cast<unsigned long long>(r.coalesced_writes),
        static_cast<unsigned long long>(r.batched_parity_rmw),
        i + 1 < async_results.size() ? "," : "");
  }
  std::fprintf(out, "    ]\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"fault_overhead\": {\n");
  std::fprintf(out, "    \"transfers_disabled\": %llu,\n",
               static_cast<unsigned long long>(fault_off.total_transfers));
  std::fprintf(out, "    \"transfers_armed_zero\": %llu,\n",
               static_cast<unsigned long long>(fault_zero.total_transfers));
  std::fprintf(out, "    \"wallclock_ratio_armed_zero\": %.3f\n",
               fault_wallclock_ratio);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"span_overhead\": {\n");
  std::fprintf(out, "    \"disabled_ns_per_op\": %.3f,\n", span_disabled_ns);
  std::fprintf(out, "    \"enabled_ns_per_op\": %.3f,\n", span_enabled_ns);
  std::fprintf(out, "    \"nested_enabled_ns_per_op\": %.3f,\n",
               span_nested_enabled_ns);
  std::fprintf(out, "    \"nested_vs_enabled_ratio\": %.3f,\n",
               span_nested_ratio);
  std::fprintf(out, "    \"disabled_ceiling_ns\": %.1f,\n",
               kSpanDisabledCeilingNs);
  std::fprintf(out, "    \"nested_ceiling_ratio\": %.2f\n",
               kSpanNestedCeilingRatio);
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path);
  return 0;
}
