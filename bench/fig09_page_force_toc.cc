// Reproduces paper Figure 9: throughput vs communality for the page-logging
// notATOMIC/STEAL/FORCE/TOC algorithm, with and without RDA recovery, in
// the high-update and high-retrieval environments.
//
// Paper anchors (read off the published figure): baseline spans ~48800 (C=0)
// to ~54500 (C=1) in the high-update environment with RDA reaching ~77300;
// the high-retrieval baseline starts near ~91800 at C=0. The prose states a
// ~42% RDA gain at C=0.9 (high update).
#include <iostream>

#include "model/figures.h"

int main() {
  using namespace rda::model;
  std::cout << "=== Figure 9: page logging, FORCE/TOC ===\n\n";
  for (const Environment env :
       {Environment::kHighUpdate, Environment::kHighRetrieval}) {
    const auto series =
        FigureSeries(AlgorithmClass::kPageForceToc, env, 11);
    PrintFigureTable(std::cout, AlgorithmClass::kPageForceToc, env, series);
    std::cout << "\n";
  }
  return 0;
}
