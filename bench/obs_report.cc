// Observability report: runs the four algorithm classes of the paper's
// Sections 5.2/5.3 (page vs record logging x FORCE-TOC vs notFORCE-ACC),
// each with RDA undo on and off, through the simulator plus a staged crash,
// and emits BENCH_obs_report.json — per-subsystem counters and the
// phase-by-phase recovery breakdown, all in the paper's page-transfer unit.
#include <cstdio>
#include <string>
#include <vector>

#include "core/database.h"
#include "obs/export.h"
#include "sim/simulator.h"

namespace {

struct Config {
  const char* name;
  rda::LoggingMode logging;
  bool force;
  uint64_t checkpoint_interval;
};

constexpr Config kConfigs[] = {
    {"page_force_toc", rda::LoggingMode::kPageLogging, true, 0},
    {"page_noforce_acc", rda::LoggingMode::kPageLogging, false, 64},
    {"record_force_toc", rda::LoggingMode::kRecordLogging, true, 0},
    {"record_noforce_acc", rda::LoggingMode::kRecordLogging, false, 64},
};

rda::sim::SimOptions MakeOptions(const Config& config, bool rda_on) {
  rda::sim::SimOptions options;
  options.db.array.data_pages_per_group = 8;
  options.db.array.parity_copies = 2;
  options.db.array.page_size = 256;
  options.db.buffer.capacity = 48;
  options.db.txn.logging_mode = config.logging;
  options.db.txn.force = config.force;
  options.db.txn.rda_undo = rda_on;
  options.db.checkpoint_interval_updates = config.checkpoint_interval;
  options.workload.num_pages = 256;
  options.num_transactions = 120;
  options.concurrency = 4;
  options.seed = 42;
  return options;
}

// Leaves `losers` in-flight transactions with stolen pages on disk, then
// crashes and recovers — the report's recovery-phase section comes from
// this staged restart.
rda::Status StageCrashAndRecover(rda::Database* db,
                                 rda::CrashRecoveryReport* report) {
  const int losers = 4;
  const int pages_each = 3;
  const bool record_mode = db->txn_manager()->config().logging_mode ==
                           rda::LoggingMode::kRecordLogging;
  std::vector<uint8_t> page_bytes(db->user_page_size(), 0xA5);
  std::vector<uint8_t> record_bytes(db->txn_manager()->config().record_size,
                                    0xA5);
  for (int t = 0; t < losers; ++t) {
    RDA_ASSIGN_OR_RETURN(const rda::TxnId txn, db->Begin());
    for (int i = 0; i < pages_each; ++i) {
      const rda::PageId page =
          static_cast<rda::PageId>((t * 64 + i * 8) % db->num_pages());
      rda::Status status =
          record_mode ? db->WriteRecord(txn, page, 0, record_bytes)
                      : db->WritePage(txn, page, page_bytes);
      if (status.IsBusy()) {
        continue;  // Locked by a drained-but-unfinished sim txn; skip.
      }
      RDA_RETURN_IF_ERROR(status);
      rda::Frame* frame = db->txn_manager()->pool()->Lookup(page);
      if (frame != nullptr) {
        RDA_RETURN_IF_ERROR(db->txn_manager()->pool()->PropagateFrame(frame));
      }
    }
  }
  db->Crash();
  RDA_ASSIGN_OR_RETURN(*report, db->Recover());
  return rda::Status::Ok();
}

void AppendPhases(std::string* out, const rda::CrashRecoveryReport& report) {
  *out += "[";
  for (size_t i = 0; i < report.phases.size(); ++i) {
    const rda::obs::PhaseCost& cost = report.phases[i];
    if (i > 0) {
      *out += ",";
    }
    *out += "{\"phase\":\"";
    *out += rda::obs::RecoveryPhaseName(cost.phase);
    *out += "\",\"page_transfers\":";
    *out += std::to_string(cost.page_transfers);
    char wall[32];
    std::snprintf(wall, sizeof(wall), "%.3f", cost.wall_ms);
    *out += ",\"wall_ms\":";
    *out += wall;
    *out += "}";
  }
  *out += "]";
}

}  // namespace

int main() {
  std::string json = "{\"configs\":[";
  bool first = true;
  for (const Config& config : kConfigs) {
    for (const bool rda_on : {true, false}) {
      rda::sim::Simulator simulator(MakeOptions(config, rda_on));
      auto sim_result = simulator.Run();
      if (!sim_result.ok()) {
        std::fprintf(stderr, "%s rda=%d: sim failed: %s\n", config.name,
                     rda_on ? 1 : 0, sim_result.status().message().c_str());
        return 1;
      }
      rda::Database* db = simulator.db();
      rda::CrashRecoveryReport recovery;
      rda::Status staged = StageCrashAndRecover(db, &recovery);
      if (!staged.ok()) {
        std::fprintf(stderr, "%s rda=%d: staged recovery failed: %s\n",
                     config.name, rda_on ? 1 : 0, staged.message().c_str());
        return 1;
      }

      if (!first) {
        json += ",";
      }
      first = false;
      json += "{\"config\":\"";
      json += config.name;
      json += "\",\"rda_undo\":";
      json += rda_on ? "true" : "false";
      json += ",\"committed\":";
      json += std::to_string(sim_result->committed);
      json += ",\"total_transfers\":";
      json += std::to_string(sim_result->total_transfers);
      const rda::obs::MetricsSnapshot snapshot = db->SnapshotMetrics();
      // Surfaced explicitly: a non-zero drop count means the retained trace
      // is a suffix of the run, not the whole story.
      json += ",\"trace_dropped\":";
      json += std::to_string(snapshot.CounterValue("obs.trace_dropped"));
      json += ",\"metrics\":";
      json += rda::obs::MetricsToJson(snapshot);
      json += ",\"recovery_phases\":";
      AppendPhases(&json, recovery);
      json += ",\"recovery\":{\"parity_undos\":";
      json += std::to_string(recovery.parity_undos);
      json += ",\"logged_undos\":";
      json += std::to_string(recovery.logged_undos);
      json += ",\"redo_applied\":";
      json += std::to_string(recovery.redo_applied);
      json += "}}";

      std::printf("%-20s rda=%d: %llu committed, %llu transfers, "
                  "%zu recovery phases, %llu trace events dropped\n",
                  config.name, rda_on ? 1 : 0,
                  static_cast<unsigned long long>(sim_result->committed),
                  static_cast<unsigned long long>(sim_result->total_transfers),
                  recovery.phases.size(),
                  static_cast<unsigned long long>(
                      snapshot.CounterValue("obs.trace_dropped")));
    }
  }
  json += "]}\n";

  const char* path = "BENCH_obs_report.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("\nwrote %s\n", path);
  return 0;
}
