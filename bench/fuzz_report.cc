// Seeded fuzz sweep for CI (the fuzz-soak job) and for local soaking:
// runs a deterministic family of schedules covering the paper's four
// algorithm classes (FORCE/NOFORCE x page/record logging, RDA undo
// toggled by seed) at 1 and 4 threads, checks the invariant oracle on
// every one, and fails loudly — writing each failing schedule (and its
// shrunken repro) to a directory CI uploads as an artifact.
//
// Also runs the acceptance self-test: a deliberately planted
// "recovery drops a committed page" bug must be caught by the oracle and
// shrink to a repro of at most 5 schedule steps.
//
// Writes machine-readable JSON (BENCH_fuzz.json).
//
// Usage: fuzz_report [output.json] [failure_dir] [seeds_per_config]
//                    [io_width]
//        (defaults: BENCH_fuzz.json, fuzz_failures, 63, 0)
// io_width > 0 replays the whole sweep with the async per-disk I/O engine
// enabled at that width — the equivalence soak for the submission-queue
// journal (e.g. `fuzz_report async.json async_failures 250 2` is a
// 2000-schedule async sweep).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "fuzz/runner.h"
#include "fuzz/schedule.h"
#include "fuzz/shrinker.h"

namespace {

using rda::Random;
using rda::fuzz::FaultEvent;
using rda::fuzz::Schedule;

// Derives one schedule deterministically from (class, threads, seed): the
// whole sweep is replayable, and any single failure replays from the
// printed schedule text alone.
Schedule MakeSchedule(bool force, rda::LoggingMode mode, uint32_t threads,
                      uint64_t seed) {
  Schedule schedule;
  schedule.seed = seed;
  schedule.force = force;
  schedule.rda = seed % 2 == 0;  // Both undo schemes, half the sweep each.
  schedule.mode = mode;
  schedule.threads = threads;
  Random rng(seed * 0x9E3779B97F4A7C15ULL + threads * 131 + (force ? 7 : 0) +
             (mode == rda::LoggingMode::kPageLogging ? 0 : 3));
  schedule.num_steps = threads > 1
                           ? 8 + static_cast<uint32_t>(rng.Uniform(8))
                           : 12 + static_cast<uint32_t>(rng.Uniform(16));
  // Steps address micro-ops single-threaded (roughly 6 per transaction) and
  // transaction boundaries multi-threaded.
  const uint32_t step_space =
      threads > 1 ? schedule.num_steps : schedule.num_steps * 6;
  const uint32_t crashes = 1 + static_cast<uint32_t>(rng.Uniform(2));
  for (uint32_t i = 0; i < crashes; ++i) {
    rda::fuzz::CrashPoint crash;
    crash.step = static_cast<uint32_t>(rng.Uniform(step_space));
    if (rng.Bernoulli(0.3)) {
      crash.recovery_faults = 1 + static_cast<uint32_t>(rng.Uniform(4));
    }
    schedule.crash_points.push_back(crash);
  }
  const uint32_t faults = static_cast<uint32_t>(rng.Uniform(3));
  for (uint32_t i = 0; i < faults; ++i) {
    FaultEvent fault;
    fault.step = static_cast<uint32_t>(rng.Uniform(step_space));
    fault.a = static_cast<uint32_t>(rng.Uniform(64));
    const uint64_t pick = rng.Uniform(10);
    if (pick < 3) {
      fault.kind = FaultEvent::Kind::kLatentSector;
    } else if (pick < 5) {
      fault.kind = FaultEvent::Kind::kTransientRead;
      fault.b = 1 + static_cast<uint32_t>(rng.Uniform(3));
    } else if (pick < 7) {
      fault.kind = FaultEvent::Kind::kTransientWrite;
      fault.b = 1 + static_cast<uint32_t>(rng.Uniform(3));
    } else if (pick < 8) {
      fault.kind = FaultEvent::Kind::kBitFlip;
    } else if (pick < 9) {
      fault.kind = FaultEvent::Kind::kTornWrite;
    } else if (threads > 1 || rng.Bernoulli(0.5)) {
      fault.kind = FaultEvent::Kind::kDiskFailOnlineRebuild;
      fault.b = 1000 + static_cast<uint32_t>(rng.Uniform(2000));
    } else {
      fault.kind = FaultEvent::Kind::kDiskFailRebuild;
    }
    schedule.faults.push_back(fault);
  }
  return schedule;
}

void SaveFailure(const std::string& dir, uint32_t index,
                 const std::string& suffix, const std::string& text) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path =
      dir + "/failure_" + std::to_string(index) + suffix + ".sched";
  std::ofstream out(path);
  out << text << "\n";
  std::fprintf(stderr, "  wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_fuzz.json";
  const std::string failure_dir = argc > 2 ? argv[2] : "fuzz_failures";
  const uint32_t seeds_per_config =
      argc > 3 ? static_cast<uint32_t>(std::strtoul(argv[3], nullptr, 10))
               : 63;
  rda::fuzz::FuzzOptions run_options;
  run_options.io_width =
      argc > 4 ? static_cast<uint32_t>(std::strtoul(argv[4], nullptr, 10))
               : 0;

  const struct {
    bool force;
    rda::LoggingMode mode;
    const char* name;
  } kClasses[] = {
      {true, rda::LoggingMode::kPageLogging, "force/page"},
      {true, rda::LoggingMode::kRecordLogging, "force/record"},
      {false, rda::LoggingMode::kPageLogging, "noforce/page"},
      {false, rda::LoggingMode::kRecordLogging, "noforce/record"},
  };
  const uint32_t kThreadCounts[] = {1, 4};

  const auto start = std::chrono::steady_clock::now();
  std::set<std::string> distinct;
  uint32_t runs = 0;
  uint32_t violations = 0;
  uint64_t committed = 0;
  uint64_t recoveries = 0;

  for (const auto& cls : kClasses) {
    for (uint32_t threads : kThreadCounts) {
      for (uint32_t s = 0; s < seeds_per_config; ++s) {
        const uint64_t seed = 1000 + s;
        const Schedule schedule =
            MakeSchedule(cls.force, cls.mode, threads, seed);
        distinct.insert(schedule.ToString());
        rda::Result<rda::fuzz::RunOutcome> outcome =
            rda::fuzz::RunSchedule(schedule, run_options);
        ++runs;
        if (!outcome.ok()) {
          ++violations;
          std::fprintf(stderr, "HARNESS FAILURE %s\n  %s\n",
                       schedule.ToString().c_str(),
                       outcome.status().ToString().c_str());
          SaveFailure(failure_dir, violations, "", schedule.ToString());
          continue;
        }
        committed += outcome->committed_txns;
        recoveries += outcome->recoveries;
        if (!outcome->passed) {
          ++violations;
          std::fprintf(stderr, "ORACLE VIOLATION %s\n  %s\n",
                       schedule.ToString().c_str(),
                       outcome->violation.c_str());
          SaveFailure(failure_dir, violations, "", schedule.ToString());
          // Hand the developer the smallest repro we can find, too.
          rda::Result<rda::fuzz::ShrinkResult> shrunk =
              rda::fuzz::Shrink(schedule, {}, /*max_runs=*/120);
          if (shrunk.ok()) {
            std::fprintf(stderr, "  minimized: %s\n    %s\n",
                         shrunk->minimized.ToString().c_str(),
                         shrunk->violation.c_str());
            SaveFailure(failure_dir, violations, "_min",
                        shrunk->minimized.ToString());
          }
        }
      }
      std::fprintf(stderr, "%-16s threads=%u done (%u schedules)\n",
                   cls.name, threads, seeds_per_config);
    }
  }

  // Acceptance self-test: the pipeline must catch a planted recovery bug
  // and shrink it to <= 5 schedule steps.
  rda::fuzz::FuzzOptions buggy;
  buggy.bug = rda::fuzz::InjectedBug::kDropRecoveredPage;
  rda::Result<Schedule> demo_seed = Schedule::Parse(
      "rda-sched v1 seed=7 algo=force,rda,page threads=1 steps=10 "
      "crash=12:0 fault=latent@5:3");
  bool demo_ok = false;
  std::string demo_min;
  uint32_t demo_steps = 0;
  uint32_t demo_runs = 0;
  if (demo_seed.ok()) {
    rda::Result<rda::fuzz::ShrinkResult> shrunk =
        rda::fuzz::Shrink(*demo_seed, buggy);
    if (shrunk.ok()) {
      demo_min = shrunk->minimized.ToString();
      demo_steps = shrunk->minimized.StepCount();
      demo_runs = shrunk->runs;
      demo_ok = demo_steps <= 5;
      std::fprintf(stderr,
                   "planted-bug demo: caught, shrunk to %u steps in %u "
                   "runs: %s\n",
                   demo_steps, demo_runs, demo_min.c_str());
    } else {
      std::fprintf(stderr, "planted-bug demo FAILED: %s\n",
                   shrunk.status().ToString().c_str());
    }
  }

  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::ofstream json(out_path);
  json << "{\n"
       << "  \"io_width\": " << run_options.io_width << ",\n"
       << "  \"schedules\": " << runs << ",\n"
       << "  \"distinct\": " << distinct.size() << ",\n"
       << "  \"violations\": " << violations << ",\n"
       << "  \"committed_txns\": " << committed << ",\n"
       << "  \"recoveries\": " << recoveries << ",\n"
       << "  \"demo\": {\n"
       << "    \"caught_and_shrunk\": " << (demo_ok ? "true" : "false")
       << ",\n"
       << "    \"minimized\": \"" << demo_min << "\",\n"
       << "    \"step_count\": " << demo_steps << ",\n"
       << "    \"shrink_runs\": " << demo_runs << "\n"
       << "  },\n"
       << "  \"seconds\": " << secs << "\n"
       << "}\n";
  std::fprintf(stderr,
               "fuzz_report: %u schedules (%zu distinct), %u violations, "
               "%llu commits, %llu recoveries, %.1fs -> %s\n",
               runs, distinct.size(), violations,
               static_cast<unsigned long long>(committed),
               static_cast<unsigned long long>(recoveries), secs,
               out_path.c_str());
  return (violations == 0 && demo_ok) ? 0 : 1;
}
