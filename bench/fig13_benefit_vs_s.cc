// Reproduces paper Figure 13: percent throughput increase of RDA recovery
// as a function of the number of pages accessed per transaction (s), for
// the record-logging notFORCE/ACC algorithm in the high-update environment
// at C = 0.9. The paper's curve spans roughly 6% at s=5 to 70% at s=45.
#include <iomanip>
#include <iostream>

#include "model/figures.h"

int main() {
  using namespace rda::model;
  std::cout << "=== Figure 13: RDA benefit vs transaction size ===\n"
            << "record logging, notFORCE/ACC, high update, C = 0.9\n\n"
            << std::setw(6) << "s" << std::setw(12) << "gain %" << "\n";
  const std::vector<double> s_values = {5, 10, 15, 20, 25, 30, 35, 40, 45};
  for (const BenefitPoint& point : Figure13Series(0.9, s_values)) {
    std::cout << std::fixed << std::setprecision(0) << std::setw(6) << point.s
              << std::setprecision(1) << std::setw(12) << point.gain_percent
              << "\n";
  }
  return 0;
}
