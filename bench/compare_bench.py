#!/usr/bin/env python3
"""Diff committed BENCH_*.json baselines against a fresh bench run.

Guards the perf-smoke job against silent performance regressions: commit
throughput (BENCH_perf.json end_to_end + async_io, BENCH_mt.json results +
async_io) and crash-recovery wall time (BENCH_recovery.json) are compared
metric-by-metric against the numbers committed at the repo root. Any
regression beyond --threshold (default 10%) fails the job; every comparison
is written to the diff report for the CI artifact either way.

Usage:
  compare_bench.py --baseline-dir . --current-dir build/bench \
      [--threshold 0.10] [--report BENCH_diff.json]

Missing files or metrics are reported but only fail with --strict (a new
bench section has no baseline on its first run — that must not block the PR
that introduces it).
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        return None


def perf_throughputs(doc):
    """{key: txns_per_sec} for every end-to-end cell, sync and async."""
    out = {}
    if doc is None:
        return out
    for row in doc.get("end_to_end", []):
        key = "perf/{}/{}".format(row["config"],
                                  "rda" if row["rda"] else "plain")
        out[key] = row["txns_per_sec"]
    for row in doc.get("async_io", {}).get("end_to_end", []):
        key = "perf/async/{}/{}".format(row["config"],
                                        "rda" if row["rda"] else "plain")
        out[key] = row["txns_per_sec"]
    return out


def mt_throughputs(doc):
    out = {}
    if doc is None:
        return out
    for row in doc.get("results", []):
        key = "mt/{}/{}/{}t".format(row["config"],
                                    "rda" if row["rda"] else "plain",
                                    row["threads"])
        out[key] = row["txns_per_sec"]
    for row in doc.get("async_io", {}).get("results", []):
        key = "mt/async/{}/{}/{}t".format(row["config"],
                                          "rda" if row["rda"] else "plain",
                                          row["threads"])
        out[key] = row["txns_per_sec"]
    return out


def recovery_walls(doc):
    """{key: wall_ms}; lower is better, unlike the throughput metrics."""
    out = {}
    if doc is None:
        return out
    for row in doc.get("crash_recovery", []):
        key = "recovery/crash/{}/{}t".format(
            "rda" if row.get("rda") else "plain", row.get("threads"))
        out[key] = row["wall_ms"]
    return out


def compare(baseline, current, threshold, higher_is_better):
    """Yields one comparison record per metric key present in either side."""
    for key in sorted(set(baseline) | set(current)):
        base = baseline.get(key)
        cur = current.get(key)
        record = {"metric": key, "baseline": base, "current": cur}
        if base is None or cur is None:
            record["status"] = "missing-baseline" if base is None \
                else "missing-current"
            yield record
            continue
        if base <= 0:
            record["status"] = "skipped-zero-baseline"
            yield record
            continue
        change = (cur - base) / base
        record["change"] = round(change, 4)
        regressed = change < -threshold if higher_is_better \
            else change > threshold
        record["status"] = "regressed" if regressed else "ok"
        yield record


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", default=".",
                        help="directory holding the committed BENCH_*.json")
    parser.add_argument("--current-dir", default="build/bench",
                        help="directory holding the fresh bench outputs")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="fractional regression that fails the job")
    parser.add_argument("--report", default="BENCH_diff.json",
                        help="where to write the machine-readable diff")
    parser.add_argument("--strict", action="store_true",
                        help="also fail on missing files or metrics")
    args = parser.parse_args()

    def paths(name):
        return (os.path.join(args.baseline_dir, name),
                os.path.join(args.current_dir, name))

    base_perf, cur_perf = (load(p) for p in paths("BENCH_perf.json"))
    base_mt, cur_mt = (load(p) for p in paths("BENCH_mt.json"))
    base_rec, cur_rec = (load(p) for p in paths("BENCH_recovery.json"))

    records = []
    records += compare(perf_throughputs(base_perf), perf_throughputs(cur_perf),
                       args.threshold, higher_is_better=True)
    records += compare(mt_throughputs(base_mt), mt_throughputs(cur_mt),
                       args.threshold, higher_is_better=True)
    records += compare(recovery_walls(base_rec), recovery_walls(cur_rec),
                       args.threshold, higher_is_better=False)
    records = list(records)

    regressed = [r for r in records if r["status"] == "regressed"]
    missing = [r for r in records if r["status"].startswith("missing")]

    report = {
        "threshold": args.threshold,
        "compared": len(records),
        "regressed": len(regressed),
        "missing": len(missing),
        "comparisons": records,
    }
    with open(args.report, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    for r in records:
        if r["status"] == "ok":
            continue
        change = r.get("change")
        detail = "" if change is None else " ({:+.1%})".format(change)
        print("{:18s} {}{}".format(r["status"], r["metric"], detail))
    print("compared {} metrics: {} regressed, {} missing (threshold {:.0%})"
          .format(len(records), len(regressed), len(missing), args.threshold))

    if not records:
        print("error: nothing to compare — check --baseline-dir/--current-dir",
              file=sys.stderr)
        return 2
    if regressed:
        for r in regressed:
            print("FAIL: {} regressed {:+.1%} (baseline {:.1f}, current "
                  "{:.1f})".format(r["metric"], r["change"], r["baseline"],
                                   r["current"]), file=sys.stderr)
        return 1
    if args.strict and missing:
        print("FAIL (--strict): {} metrics missing a side".format(
            len(missing)), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
