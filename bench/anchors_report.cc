// Prints the paper-vs-reproduction anchor table consumed by
// EXPERIMENTS.md: every quantitative claim the paper's text or figure axes
// state, next to the value this implementation computes.
#include <cmath>
#include <cstdio>

#include "model/figures.h"

namespace {

using namespace rda::model;

double Gain(AlgorithmClass algorithm, const ModelParams& p, double c) {
  const double base = Evaluate(algorithm, p, c, false).throughput;
  const double rda = Evaluate(algorithm, p, c, true).throughput;
  return 100.0 * (rda - base) / base;
}

void Row(const char* what, double paper, double measured, const char* unit) {
  const double dev = paper != 0 ? 100.0 * (measured - paper) / paper : 0.0;
  std::printf("%-58s %12.1f %12.1f %-6s %+6.1f%%\n", what, paper, measured,
              unit, dev);
}

}  // namespace

int main() {
  const ModelParams hu = ModelParams::HighUpdate();
  const ModelParams hr = ModelParams::HighRetrieval();

  std::printf("%-58s %12s %12s %-6s %7s\n", "anchor (paper source)", "paper",
              "measured", "unit", "dev");
  std::printf("%s\n", std::string(100, '-').c_str());

  Row("Fig 9 HU baseline at C=0 (axis tick 48800)", 48800,
      EvalPageForceToc(hu, 0.0, false).throughput, "txn/T");
  Row("Fig 9 HU baseline at C=1 (axis tick 54500)", 54500,
      EvalPageForceToc(hu, 1.0, false).throughput, "txn/T");
  Row("Fig 9 HU RDA at C=1 (axis tick 77300)", 77300,
      EvalPageForceToc(hu, 1.0, true).throughput, "txn/T");
  Row("Fig 9 HR baseline at C=0 (axis tick 91800)", 91800,
      EvalPageForceToc(hr, 0.0, false).throughput, "txn/T");
  Row("Fig 9 HU RDA gain at C=0.9 (\"about 42%\", Sec 5.2.1)", 42.0,
      Gain(AlgorithmClass::kPageForceToc, hu, 0.9), "%");
  Row("Fig 12 HU RDA gain at C=0.9 (\"about 14%\", Sec 5.3.2)", 14.0,
      Gain(AlgorithmClass::kRecordNoForceAcc, hu, 0.9), "%");

  const auto fig13 = Figure13Series(0.9, {5, 45});
  Row("Fig 13 benefit at s=5 (axis ~6%)", 6.0, fig13.front().gain_percent,
      "%");
  Row("Fig 13 benefit at s=45 (axis ~70%)", 70.0, fig13.back().gain_percent,
      "%");

  std::printf("\nqualitative anchors:\n");
  const bool fig10_base =
      EvalPageNoForceAcc(hu, 0.7, false).throughput >
      EvalPageForceToc(hu, 0.7, false).throughput;
  const bool fig10_rda = EvalPageForceToc(hu, 0.7, true).throughput >
                         EvalPageNoForceAcc(hu, 0.7, true).throughput;
  std::printf("  page logging, no RDA: notFORCE/ACC > FORCE/TOC ....... %s\n",
              fig10_base ? "holds" : "VIOLATED");
  std::printf("  page logging, RDA: ordering reversed (Sec 5.2.2) ..... %s\n",
              fig10_rda ? "holds" : "VIOLATED");
  const bool fig12_best =
      EvalRecordNoForceAcc(hu, 0.9, true).throughput >
      EvalRecordForceToc(hu, 0.9, true).throughput;
  std::printf("  record logging, RDA: notFORCE/ACC best at high C ..... %s\n",
              fig12_best ? "holds" : "VIOLATED");
  const double hu_gain = Gain(AlgorithmClass::kPageForceToc, hu, 0.9);
  const double hr_gain = Gain(AlgorithmClass::kPageForceToc, hr, 0.9);
  std::printf("  Fig 9: HU gain (%0.1f%%) > HR gain (%0.1f%%) .......... %s\n",
              hu_gain, hr_gain, hu_gain > hr_gain ? "holds" : "VIOLATED");
  return 0;
}
