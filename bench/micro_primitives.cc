// Micro-benchmarks of the library's hot primitives (google-benchmark):
// parity XOR, CRC, log append/flush, buffer fetch, and the full
// twin-parity propagate path.
#include <benchmark/benchmark.h>

#include "buffer/buffer_pool.h"
#include "common/crc32.h"
#include "common/random.h"
#include "common/xor_util.h"
#include "core/database.h"
#include "kv/btree.h"
#include "kv/kv_store.h"

namespace {

void BM_XorPage(benchmark::State& state) {
  const size_t size = state.range(0);
  std::vector<uint8_t> a(size, 0x5a);
  std::vector<uint8_t> b(size, 0xa5);
  for (auto _ : state) {
    rda::XorInto(a.data(), b.data(), size);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(state.iterations() * size);
}
BENCHMARK(BM_XorPage)->Arg(512)->Arg(4096)->Arg(65536);

void BM_Crc32c(benchmark::State& state) {
  const size_t size = state.range(0);
  std::vector<uint8_t> data(size, 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rda::Crc32c(data.data(), size));
  }
  state.SetBytesProcessed(state.iterations() * size);
  state.SetLabel(rda::Crc32cImplName());
}
BENCHMARK(BM_Crc32c)->Arg(512)->Arg(4096);

// The pre-overhaul implementation — one table, one byte per step — kept as
// the speedup reference for BM_Crc32c.
uint32_t Crc32cBytewise(const uint8_t* data, size_t size) {
  static const auto table = [] {
    std::vector<uint32_t> t(256);
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xff];
  }
  return crc ^ 0xffffffffu;
}

void BM_Crc32cBytewise(benchmark::State& state) {
  const size_t size = state.range(0);
  std::vector<uint8_t> data(size, 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32cBytewise(data.data(), size));
  }
  state.SetBytesProcessed(state.iterations() * size);
}
BENCHMARK(BM_Crc32cBytewise)->Arg(512)->Arg(4096);

void BM_Crc32cSoftware(benchmark::State& state) {
  const size_t size = state.range(0);
  std::vector<uint8_t> data(size, 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rda::Crc32cSoftware(data.data(), size));
  }
  state.SetBytesProcessed(state.iterations() * size);
}
BENCHMARK(BM_Crc32cSoftware)->Arg(512)->Arg(4096);

void BM_Crc32cHardware(benchmark::State& state) {
  if (!rda::Crc32cHardwareAvailable()) {
    state.SkipWithError("no CRC32C instructions on this CPU");
    return;
  }
  const size_t size = state.range(0);
  std::vector<uint8_t> data(size, 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rda::Crc32cHardware(data.data(), size));
  }
  state.SetBytesProcessed(state.iterations() * size);
}
BENCHMARK(BM_Crc32cHardware)->Arg(512)->Arg(4096);

// All-hit Fetch loop over a resident working set: the path the O(1) LRU
// recency list serves (hash lookup + list splice, no scan).
void BM_BufferFetchHit(benchmark::State& state) {
  constexpr size_t kPageSize = 512;
  rda::BufferPool::Options options;
  options.capacity = static_cast<uint32_t>(state.range(0));
  options.page_size = kPageSize;
  rda::BufferPool pool(
      options,
      [](rda::PageId, rda::PageImage* out) {
        *out = rda::PageImage(kPageSize);
        return rda::Status::Ok();
      },
      [](rda::Frame*) { return rda::Status::Ok(); });
  for (rda::PageId p = 0; p < options.capacity; ++p) {
    if (!pool.Fetch(p, nullptr).ok()) {
      state.SkipWithError("warmup failed");
      return;
    }
  }
  rda::PageId page = 0;
  for (auto _ : state) {
    auto frame = pool.Fetch(page, nullptr);
    if (!frame.ok()) {
      state.SkipWithError("fetch failed");
      return;
    }
    benchmark::DoNotOptimize(*frame);
    page = (page + 7) % options.capacity;  // Stride keeps the LRU churning.
  }
}
BENCHMARK(BM_BufferFetchHit)->Arg(64)->Arg(1024);

rda::DatabaseOptions SmallDb() {
  rda::DatabaseOptions options;
  options.array.data_pages_per_group = 8;
  options.array.parity_copies = 2;
  options.array.min_data_pages = 256;
  options.array.page_size = 512;
  options.buffer.capacity = 32;
  options.txn.force = true;
  options.txn.rda_undo = true;
  return options;
}

void BM_TxnCommitForce(benchmark::State& state) {
  auto db = rda::Database::Open(SmallDb());
  rda::Random rng(1);
  std::vector<uint8_t> bytes((*db)->user_page_size());
  for (auto _ : state) {
    rng.FillBytes(&bytes);
    auto txn = (*db)->Begin();
    for (int i = 0; i < 4; ++i) {
      const rda::PageId page =
          static_cast<rda::PageId>(rng.Uniform((*db)->num_pages()));
      if (!(*db)->WritePage(*txn, page, bytes).ok()) {
        state.SkipWithError("write failed");
        return;
      }
    }
    if (!(*db)->Commit(*txn).ok()) {
      state.SkipWithError("commit failed");
      return;
    }
  }
  state.counters["page_transfers/txn"] = benchmark::Counter(
      static_cast<double>((*db)->TotalPageTransfers()) / state.iterations());
}
BENCHMARK(BM_TxnCommitForce);

// Same workload with metrics and tracing off: the hub is null and every
// instrumentation site collapses to a pointer test. Comparing the two
// checks the observability layer's cost on the commit path.
void BM_TxnCommitForceObsDisabled(benchmark::State& state) {
  rda::DatabaseOptions options = SmallDb();
  options.obs.enable_metrics = false;
  options.obs.enable_trace = false;
  auto db = rda::Database::Open(options);
  rda::Random rng(1);
  std::vector<uint8_t> bytes((*db)->user_page_size());
  for (auto _ : state) {
    rng.FillBytes(&bytes);
    auto txn = (*db)->Begin();
    for (int i = 0; i < 4; ++i) {
      const rda::PageId page =
          static_cast<rda::PageId>(rng.Uniform((*db)->num_pages()));
      if (!(*db)->WritePage(*txn, page, bytes).ok()) {
        state.SkipWithError("write failed");
        return;
      }
    }
    if (!(*db)->Commit(*txn).ok()) {
      state.SkipWithError("commit failed");
      return;
    }
  }
  state.counters["page_transfers/txn"] = benchmark::Counter(
      static_cast<double>((*db)->TotalPageTransfers()) / state.iterations());
}
BENCHMARK(BM_TxnCommitForceObsDisabled);

void BM_LogAppendFlush(benchmark::State& state) {
  rda::LogManager::Options options;
  rda::LogManager log(options);
  rda::LogRecord record;
  record.type = rda::LogRecordType::kBeforeImage;
  record.txn = 1;
  record.page = 7;
  record.before.assign(state.range(0), 0x11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.Append(record));
    if (!log.Flush().ok()) {
      state.SkipWithError("flush failed");
      return;
    }
  }
}
BENCHMARK(BM_LogAppendFlush)->Arg(64)->Arg(512);

rda::DatabaseOptions RecordDb() {
  rda::DatabaseOptions options;
  options.array.data_pages_per_group = 8;
  options.array.parity_copies = 2;
  options.array.min_data_pages = 256;
  options.array.page_size = 512;
  options.buffer.capacity = 64;
  options.txn.logging_mode = rda::LoggingMode::kRecordLogging;
  options.txn.record_size = 48;
  options.txn.force = false;
  options.checkpoint_interval_updates = 256;
  return options;
}

void BM_KvPutGet(benchmark::State& state) {
  auto db = rda::Database::Open(RecordDb());
  rda::KvStore::Options kv_options;
  kv_options.num_pages = (*db)->num_pages();
  auto kv = rda::KvStore::Attach(db->get(), kv_options);
  rda::Random rng(3);
  uint64_t i = 0;
  for (auto _ : state) {
    const std::string key = "key" + std::to_string(i++ % 200);
    auto txn = (*db)->Begin();
    if (!(*kv)->Put(*txn, key, "value-of-some-plausible-size").ok() ||
        !(*kv)->Get(*txn, key).ok() || !(*db)->Commit(*txn).ok()) {
      state.SkipWithError("kv op failed");
      return;
    }
  }
}
BENCHMARK(BM_KvPutGet);

void BM_BTreeInsert(benchmark::State& state) {
  rda::DatabaseOptions options = RecordDb();
  options.txn.logging_mode = rda::LoggingMode::kPageLogging;
  options.array.min_data_pages = 1024;
  auto db = rda::Database::Open(options);
  rda::BTree::Options tree_options;
  tree_options.num_pages = (*db)->num_pages();
  auto tree = rda::BTree::Attach(db->get(), tree_options);
  rda::Random rng(5);
  for (auto _ : state) {
    auto txn = (*db)->Begin();
    // Bounded key space: the tree converges to ~10k entries and later
    // iterations measure the overwrite path.
    if (!(*tree)->Insert(*txn, rng.Uniform(10000), 1).ok() ||
        !(*db)->Commit(*txn).ok()) {
      state.SkipWithError("btree insert failed");
      return;
    }
  }
  state.counters["page_transfers/insert"] = benchmark::Counter(
      static_cast<double>((*db)->TotalPageTransfers()) / state.iterations());
}
BENCHMARK(BM_BTreeInsert);

}  // namespace
