// Reliability of the storage organizations the paper weighs against each
// other (Section 1): mirroring pays 100% storage for high availability;
// the redundant array pays 100/N% (200/N% with the twin scheme) — and the
// twin group's MTTDL equals the classic RAID-5 group's, because the only
// extra component it adds (the second parity twin) is one whose loss is
// always survivable. Uses the paper's footnote MTTF of 30,000 hours.
#include <cstdio>
#include <initializer_list>

#include "model/reliability.h"

int main() {
  using namespace rda::model;
  ReliabilityParams params;  // MTTF 30,000 h (paper footnote), 24 h repair.
  const double hours_per_year = 24 * 365.25;

  std::printf("=== Storage reliability (disk MTTF %.0f h = %.1f y, repair "
              "%.0f h) ===\n\n",
              params.disk_mttf_hours,
              params.disk_mttf_hours / hours_per_year, params.repair_hours);
  std::printf("single disk MTTF:            %10.2f years\n",
              params.disk_mttf_hours / hours_per_year);
  std::printf("mirrored pair MTTDL:         %10.0f years (overhead %.0f%%)\n",
              MirroredPairMttdlHours(params) / hours_per_year,
              MirroringOverheadPercent());

  std::printf("\n%6s %18s %18s %14s %14s\n", "N", "RAID-5 group MTTDL",
              "twin group MTTDL", "RAID-5 ovh %", "twin ovh %");
  for (const uint32_t n : {4u, 8u, 10u, 16u, 32u}) {
    std::printf("%6u %16.0f y %16.0f y %14.1f %14.1f\n", n,
                Raid5GroupMttdlHours(params, n) / hours_per_year,
                TwinGroupMttdlHours(params, n) / hours_per_year,
                Raid5OverheadPercent(n), TwinOverheadPercent(n));
  }

  std::printf("\nwhole rotated array (N = 10 -> 12 disks holding all 500 "
              "groups):\n");
  // Under rotation every disk pair is fatal for SOME group, so the array
  // MTTDL uses the all-pairs formula.
  const double array_years =
      RotatedArrayMttdlHours(params, 12) / hours_per_year;
  std::printf("  twin-parity array MTTDL:   %10.1f years\n", array_years);
  std::printf("\n(the twin scheme's second parity page costs storage but no "
              "reliability:\n its loss is always survivable, so the fatal-"
              "pair count matches RAID-5)\n");
  return 0;
}
