// Reliability and availability report.
//
// Part 1 (analytic): the storage organizations the paper weighs against
// each other (Section 1): mirroring pays 100% storage for high
// availability; the redundant array pays 100/N% (200/N% with the twin
// scheme) — and the twin group's MTTDL equals the classic RAID-5 group's,
// because the only extra component it adds (the second parity twin) is one
// whose loss is always survivable. Uses the paper's footnote MTTF of
// 30,000 hours.
//
// Part 2 (live): what that availability is worth in practice. A real
// Database instance (with per-access disk delays) loses a disk and
// rebuilds it three ways while writer threads keep committing:
//   - quiesced  : the classic offline RebuildDisk — the rebuild wall time
//                 IS the unavailability window (zero commits).
//   - online    : RebuildDiskOnline at rate limits {unlimited, 50%, 10%}
//                 of the total token demand — commits continue, trading
//                 rebuild time against foreground p99.
// Commit-latency percentiles come from the engine's "txn.commit_us"
// histogram; a parity scrub pass closes the report. Writes
// BENCH_online_rebuild.json for the README availability table and the CI
// online-rebuild-soak artifact.
//
// Usage: reliability_report [output.json]
//        (default: BENCH_online_rebuild.json in cwd)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <initializer_list>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/database.h"
#include "exec/token_bucket.h"
#include "model/reliability.h"

namespace {

// --- live-bench shape -------------------------------------------------

// 64 groups of 8 data pages; 25us per raw disk access makes rebuild I/O
// and commit I/O overlap measurable in wall time without stretching the
// bench past a few seconds (except the deliberate 10%-rate run).
constexpr uint32_t kDataPagesPerGroup = 8;
constexpr uint32_t kMinDataPages = 512;
constexpr uint32_t kAccessDelayUs = 25;
constexpr uint32_t kWriterThreads = 3;
// Writers stay inside the first kWriterPages pages (the first 16 groups),
// so the background sweep keeps a substantial pending set even when
// foreground traffic repairs its own groups on demand.
constexpr uint32_t kWriterPages = 128;
constexpr rda::DiskId kVictimDisk = 2;
constexpr uint32_t kHealthyWindowMs = 300;

rda::DatabaseOptions MakeOptions() {
  rda::DatabaseOptions options;
  options.array.data_pages_per_group = kDataPagesPerGroup;
  options.array.parity_copies = 2;
  options.array.min_data_pages = kMinDataPages;
  options.array.page_size = 512;
  options.array.real_access_delay_us = kAccessDelayUs;
  options.buffer.capacity = 256;
  options.buffer.shards = 8;
  options.txn.logging_mode = rda::LoggingMode::kPageLogging;
  options.txn.force = true;
  options.txn.rda_undo = true;
  return options;  // Observability (metrics) on by default.
}

rda::Status Populate(rda::Database* db) {
  std::vector<std::vector<uint8_t>> pages(db->num_pages());
  for (uint32_t p = 0; p < pages.size(); ++p) {
    pages[p].assign(db->user_page_size(), static_cast<uint8_t>(p * 7 + 1));
  }
  return db->BulkLoad(pages);
}

struct WriterStats {
  std::atomic<uint64_t> commits{0};
  std::atomic<bool> failed{false};
};

// One writer owns a disjoint page span: no lock conflicts, so every txn
// should commit. Any non-busy error marks the run failed.
void WriterLoop(rda::Database* db, uint32_t lo, uint32_t span, uint32_t seed,
                const std::atomic<bool>* stop, WriterStats* stats) {
  rda::Random rng(seed);
  std::vector<uint8_t> payload(db->user_page_size());
  while (!stop->load(std::memory_order_acquire)) {
    const rda::PageId page =
        static_cast<rda::PageId>(lo + rng.Uniform(span));
    for (auto& byte : payload) {
      byte = static_cast<uint8_t>(rng.Next());
    }
    auto txn = db->Begin();
    if (!txn.ok()) {
      stats->failed.store(true, std::memory_order_release);
      return;
    }
    const rda::Status written = db->WritePage(*txn, page, payload);
    if (!written.ok()) {
      (void)db->Abort(*txn);
      if (written.IsBusy()) {
        continue;
      }
      stats->failed.store(true, std::memory_order_release);
      return;
    }
    if (!db->Commit(*txn).ok()) {
      stats->failed.store(true, std::memory_order_release);
      return;
    }
    stats->commits.fetch_add(1, std::memory_order_relaxed);
  }
}

struct WriterFleet {
  std::vector<std::thread> threads;
  std::vector<WriterStats> stats;
  std::atomic<bool> stop{false};

  explicit WriterFleet(rda::Database* db) : stats(kWriterThreads) {
    const uint32_t span = kWriterPages / kWriterThreads;
    for (uint32_t w = 0; w < kWriterThreads; ++w) {
      threads.emplace_back(WriterLoop, db, w * span, span, 17 + w, &stop,
                           &stats[w]);
    }
  }

  uint64_t TotalCommits() const {
    uint64_t total = 0;
    for (const WriterStats& s : stats) {
      total += s.commits.load(std::memory_order_relaxed);
    }
    return total;
  }

  bool AnyFailed() const {
    for (const WriterStats& s : stats) {
      if (s.failed.load(std::memory_order_acquire)) {
        return true;
      }
    }
    return false;
  }

  void StopAndJoin() {
    stop.store(true, std::memory_order_release);
    for (std::thread& t : threads) {
      t.join();
    }
  }
};

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

// --- JSON helpers (same idiom as latency_report) ----------------------

void AppendDouble(std::string* out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", value);
  *out += buf;
}

void AppendCommitPercentiles(std::string* out, rda::Database* db) {
  const rda::obs::MetricsSnapshot snapshot = db->SnapshotMetrics();
  const auto* histogram = snapshot.FindHistogram("txn.commit_us");
  *out += "{\"count\":";
  *out += std::to_string(histogram != nullptr ? histogram->count : 0);
  constexpr struct {
    const char* label;
    double q;
  } kQuantiles[] = {{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}};
  for (const auto& [label, q] : kQuantiles) {
    *out += ",\"";
    *out += label;
    *out += "\":";
    AppendDouble(out, histogram != nullptr ? rda::obs::Quantile(*histogram, q)
                                           : 0.0);
  }
  *out += ",\"max\":";
  AppendDouble(out, histogram != nullptr ? histogram->max : 0.0);
  *out += "}";
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_online_rebuild.json";

  // ---------------- Part 1: analytic MTTDL ----------------
  using namespace rda::model;
  ReliabilityParams params;  // MTTF 30,000 h (paper footnote), 24 h repair.
  const double hours_per_year = 24 * 365.25;

  std::printf("=== Storage reliability (disk MTTF %.0f h = %.1f y, repair "
              "%.0f h) ===\n\n",
              params.disk_mttf_hours,
              params.disk_mttf_hours / hours_per_year, params.repair_hours);
  std::printf("single disk MTTF:            %10.2f years\n",
              params.disk_mttf_hours / hours_per_year);
  std::printf("mirrored pair MTTDL:         %10.0f years (overhead %.0f%%)\n",
              MirroredPairMttdlHours(params) / hours_per_year,
              MirroringOverheadPercent());

  std::string json = "{\"analytic\":{\"disk_mttf_hours\":";
  AppendDouble(&json, params.disk_mttf_hours);
  json += ",\"repair_hours\":";
  AppendDouble(&json, params.repair_hours);
  json += ",\"mirrored_pair_mttdl_years\":";
  AppendDouble(&json, MirroredPairMttdlHours(params) / hours_per_year);
  json += ",\"groups\":[";

  std::printf("\n%6s %18s %18s %14s %14s\n", "N", "RAID-5 group MTTDL",
              "twin group MTTDL", "RAID-5 ovh %", "twin ovh %");
  bool first = true;
  for (const uint32_t n : {4u, 8u, 10u, 16u, 32u}) {
    std::printf("%6u %16.0f y %16.0f y %14.1f %14.1f\n", n,
                Raid5GroupMttdlHours(params, n) / hours_per_year,
                TwinGroupMttdlHours(params, n) / hours_per_year,
                Raid5OverheadPercent(n), TwinOverheadPercent(n));
    if (!first) {
      json += ",";
    }
    first = false;
    json += "{\"n\":" + std::to_string(n) + ",\"raid5_mttdl_years\":";
    AppendDouble(&json, Raid5GroupMttdlHours(params, n) / hours_per_year);
    json += ",\"twin_mttdl_years\":";
    AppendDouble(&json, TwinGroupMttdlHours(params, n) / hours_per_year);
    json += ",\"twin_overhead_pct\":";
    AppendDouble(&json, TwinOverheadPercent(n));
    json += "}";
  }
  json += "],\"rotated_array_mttdl_years\":";
  const double array_years =
      RotatedArrayMttdlHours(params, 12) / hours_per_year;
  AppendDouble(&json, array_years);
  json += "}";

  std::printf("\nwhole rotated array (N = 10 -> 12 disks holding all 500 "
              "groups):\n");
  std::printf("  twin-parity array MTTDL:   %10.1f years\n", array_years);
  std::printf("\n(the twin scheme's second parity page costs storage but no "
              "reliability:\n its loss is always survivable, so the fatal-"
              "pair count matches RAID-5)\n");

  // ---------------- Part 2: live availability ----------------
  // Total token demand of one full sweep: every group charges its data
  // pages + 1 parity write. The bucket holds one second of tokens, so a
  // rate of demand/2 stretches the sweep ~1s past the burst and demand/10
  // stretches it ~9s — the knob the README availability table shows.
  auto open = [&]() -> rda::Result<std::unique_ptr<rda::Database>> {
    auto db_or = rda::Database::Open(MakeOptions());
    if (!db_or.ok()) {
      return db_or.status();
    }
    RDA_RETURN_IF_ERROR(Populate(db_or->get()));
    return db_or;
  };

  auto first_db_or = open();
  if (!first_db_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 first_db_or.status().message().c_str());
    return 1;
  }
  const uint32_t num_groups = (*first_db_or)->array()->num_groups();
  const uint64_t tokens_total =
      static_cast<uint64_t>(num_groups) * (kDataPagesPerGroup + 1);

  json += ",\"live\":{\"config\":{\"data_pages\":" +
          std::to_string((*first_db_or)->num_pages()) +
          ",\"groups\":" + std::to_string(num_groups) +
          ",\"data_pages_per_group\":" + std::to_string(kDataPagesPerGroup) +
          ",\"access_delay_us\":" + std::to_string(kAccessDelayUs) +
          ",\"writer_threads\":" + std::to_string(kWriterThreads) +
          ",\"writer_pages\":" + std::to_string(kWriterPages) +
          ",\"rebuild_tokens_total\":" + std::to_string(tokens_total) + "}";

  std::printf("\n=== Live availability (%u groups, %u us/access, %u writer "
              "threads) ===\n\n",
              num_groups, kAccessDelayUs, kWriterThreads);

  // (a) healthy baseline: writers only, fixed window.
  {
    rda::Database* db = first_db_or->get();
    WriterFleet fleet(db);
    const auto start = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::chrono::milliseconds(kHealthyWindowMs));
    fleet.StopAndJoin();
    const double wall_ms = ElapsedMs(start);
    if (fleet.AnyFailed()) {
      std::fprintf(stderr, "healthy baseline: a writer failed\n");
      return 1;
    }
    const uint64_t commits = fleet.TotalCommits();
    const double per_sec = commits / (wall_ms / 1000.0);
    std::printf("healthy baseline:    %6llu commits in %7.1f ms "
                "(%7.0f /s)\n",
                static_cast<unsigned long long>(commits), wall_ms, per_sec);
    json += ",\"healthy\":{\"wall_ms\":";
    AppendDouble(&json, wall_ms);
    json += ",\"commits\":" + std::to_string(commits) +
            ",\"commits_per_sec\":";
    AppendDouble(&json, per_sec);
    json += ",\"commit_us\":";
    AppendCommitPercentiles(&json, db);
    json += "}";
  }

  // (b) quiesced rebuild: the offline path — no transactions can run, so
  // the rebuild wall time is the unavailability window.
  {
    auto db_or = open();
    if (!db_or.ok()) {
      std::fprintf(stderr, "quiesced open failed: %s\n",
                   db_or.status().message().c_str());
      return 1;
    }
    rda::Database* db = db_or->get();
    if (!db->FailDisk(kVictimDisk).ok()) {
      std::fprintf(stderr, "quiesced FailDisk failed\n");
      return 1;
    }
    const auto start = std::chrono::steady_clock::now();
    auto report = db->RebuildDisk(kVictimDisk);
    const double wall_ms = ElapsedMs(start);
    if (!report.ok()) {
      std::fprintf(stderr, "quiesced rebuild failed: %s\n",
                   report.status().message().c_str());
      return 1;
    }
    std::printf("quiesced rebuild:    unavailable for %7.1f ms "
                "(0 commits)\n",
                wall_ms);
    json += ",\"quiesced_rebuild\":{\"rebuild_wall_ms\":";
    AppendDouble(&json, wall_ms);
    json += ",\"commits_during_rebuild\":0,\"unavailable\":true}";
  }

  // (c) online rebuild at three rate limits, writers committing throughout.
  struct RateCase {
    const char* label;
    uint64_t tokens_per_sec;  // 0 = unlimited.
  };
  const RateCase kRates[] = {
      {"unlimited", 0},
      {"50pct", tokens_total / 2},
      {"10pct", tokens_total / 10},
  };
  json += ",\"online_rebuild\":[";
  bool first_rate = true;
  std::unique_ptr<rda::Database> last_db;
  for (const RateCase& rate : kRates) {
    auto db_or = open();
    if (!db_or.ok()) {
      std::fprintf(stderr, "online open failed: %s\n",
                   db_or.status().message().c_str());
      return 1;
    }
    rda::Database* db = db_or->get();
    if (!db->FailDisk(kVictimDisk).ok()) {
      std::fprintf(stderr, "online FailDisk failed\n");
      return 1;
    }
    WriterFleet fleet(db);
    // Small warm-up so "commits during rebuild" measures a steady stream,
    // not thread start-up.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const uint64_t commits_before = fleet.TotalCommits();

    rda::exec::TokenBucket bucket(rate.tokens_per_sec);
    rda::OnlineRebuildOptions options;
    options.throttle = rate.tokens_per_sec != 0 ? &bucket : nullptr;
    const auto start = std::chrono::steady_clock::now();
    auto report = db->RebuildDiskOnline(kVictimDisk, options);
    const double wall_ms = ElapsedMs(start);
    fleet.StopAndJoin();
    if (!report.ok()) {
      std::fprintf(stderr, "online rebuild (%s) failed: %s\n", rate.label,
                   report.status().message().c_str());
      return 1;
    }
    if (fleet.AnyFailed()) {
      std::fprintf(stderr, "online rebuild (%s): a writer failed\n",
                   rate.label);
      return 1;
    }
    auto consistent = db->VerifyAllParity();
    if (!consistent.ok() || !*consistent) {
      std::fprintf(stderr, "online rebuild (%s): parity inconsistent\n",
                   rate.label);
      return 1;
    }
    const uint64_t commits_during = fleet.TotalCommits() - commits_before;
    const double per_sec = commits_during / (wall_ms / 1000.0);
    std::printf("online rebuild %-10s %7.1f ms, %6llu commits during "
                "(%7.0f /s), %u swept / %llu on-demand / %llu promoted\n",
                rate.label, wall_ms,
                static_cast<unsigned long long>(commits_during), per_sec,
                report->groups_background,
                static_cast<unsigned long long>(report->groups_on_demand),
                static_cast<unsigned long long>(report->write_promotions));
    if (!first_rate) {
      json += ",";
    }
    first_rate = false;
    json += "{\"rate\":\"";
    json += rate.label;
    json += "\",\"rate_tokens_per_sec\":" +
            std::to_string(rate.tokens_per_sec) + ",\"rebuild_wall_ms\":";
    AppendDouble(&json, wall_ms);
    json += ",\"commits_during_rebuild\":" + std::to_string(commits_during) +
            ",\"commits_per_sec\":";
    AppendDouble(&json, per_sec);
    json += ",\"commit_us\":";
    AppendCommitPercentiles(&json, db);
    json += ",\"groups_background\":" +
            std::to_string(report->groups_background) +
            ",\"groups_on_demand\":" +
            std::to_string(report->groups_on_demand) +
            ",\"write_promotions\":" +
            std::to_string(report->write_promotions) +
            ",\"parity_consistent\":true}";
    last_db = std::move(*db_or);
  }
  json += "]";

  // (d) a scrub pass on the last database closes the loop: the array just
  // went healthy again; the scrub verifies every group and reports what
  // the verify-repair path healed.
  {
    auto scrub = last_db->Scrub();
    if (!scrub.ok()) {
      std::fprintf(stderr, "scrub failed: %s\n",
                   scrub.status().message().c_str());
      return 1;
    }
    std::printf("post-rebuild scrub:  %u groups checked, %zu repaired, "
                "%llu sectors healed\n",
                scrub->groups_checked, scrub->repaired.size(),
                static_cast<unsigned long long>(scrub->sectors_repaired));
    json += ",\"scrub\":{\"groups_checked\":" +
            std::to_string(scrub->groups_checked) +
            ",\"groups_skipped_dirty\":" +
            std::to_string(scrub->groups_skipped_dirty) +
            ",\"groups_repaired\":" +
            std::to_string(scrub->repaired.size()) +
            ",\"sectors_repaired\":" +
            std::to_string(scrub->sectors_repaired) + "}";
  }
  json += "}}\n";

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path);
  return 0;
}
