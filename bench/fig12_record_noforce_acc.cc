// Reproduces paper Figure 12.
//  record logging, notFORCE/ACC:Paper: the best traditional algorithm; adding RDA gains ~14% at C=0.9 in the high-update environment.
#include <iostream>

#include "model/figures.h"

int main() {
  using namespace rda::model;
  std::cout << "=== Figure 12 ===\n\n";
  for (const Environment env :
       {Environment::kHighUpdate, Environment::kHighRetrieval}) {
    const auto series =
        FigureSeries(AlgorithmClass::kRecordNoForceAcc, env, 11);
    PrintFigureTable(std::cout, AlgorithmClass::kRecordNoForceAcc, env, series);
    std::cout << "\n";
  }
  return 0;
}
