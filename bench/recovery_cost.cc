// The title claim, measured: "rapid recovery from transaction aborts and
// system crashes" — page transfers spent by restart recovery as a function
// of the number of in-flight (loser) transactions at the crash, RDA vs the
// traditional log-only baseline. RDA losers are undone from the twin parity
// (<= 6 transfers per page, no before-images were ever written); baseline
// losers re-read and re-apply logged before-images.
// The scaling section measures the same recovery paths against the worker
// pool (DESIGN.md section 13): crash-recovery wall time and media-rebuild
// throughput at 1/2/4 recovery threads, RDA and log-only configurations,
// emitted as BENCH_recovery.json for CI's perf-smoke job.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/database.h"

namespace {

rda::DatabaseOptions MakeOptions(bool rda_on) {
  rda::DatabaseOptions options;
  options.array.data_pages_per_group = 8;
  options.array.parity_copies = 2;
  options.array.min_data_pages = 512;
  options.array.page_size = 256;
  options.buffer.capacity = 128;
  options.txn.force = false;
  options.txn.rda_undo = rda_on;
  return options;
}

// Runs `losers` transactions that each steal `pages_each` pages (spread
// over distinct groups), crashes, and returns {recovery transfers, forward
// -path log transfers}.
int Run(bool rda_on, int losers, int pages_each, uint64_t* recovery_cost,
        uint64_t* forward_log_cost) {
  auto db_or = rda::Database::Open(MakeOptions(rda_on));
  if (!db_or.ok()) {
    return 1;
  }
  rda::Database* db = db_or->get();
  const uint32_t group_stride = 8;
  const uint64_t log_before = db->log()->counters().total();
  for (int t = 0; t < losers; ++t) {
    auto txn = db->Begin();
    if (!txn.ok()) {
      return 1;
    }
    std::vector<uint8_t> bytes(db->user_page_size(),
                               static_cast<uint8_t>(t + 1));
    for (int i = 0; i < pages_each; ++i) {
      const rda::PageId page =
          (t + i * group_stride * losers) % db->num_pages();
      if (!db->WritePage(*txn, page, bytes).ok()) {
        return 1;
      }
      rda::Frame* frame = db->txn_manager()->pool()->Lookup(page);
      if (frame == nullptr ||
          !db->txn_manager()->pool()->PropagateFrame(frame).ok()) {
        return 1;
      }
    }
  }
  *forward_log_cost = db->log()->counters().total() - log_before;

  db->Crash();
  const uint64_t before =
      db->array()->counters().total() + db->log()->counters().total();
  auto report = db->Recover();
  if (!report.ok()) {
    return 1;
  }
  *recovery_cost =
      db->array()->counters().total() + db->log()->counters().total() -
      before;
  return 0;
}

// --- recovery scaling vs worker-pool width ---

double WallMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

rda::DatabaseOptions ScaleOptions(bool rda_on, uint32_t threads) {
  rda::DatabaseOptions options;
  options.array.data_pages_per_group = 8;
  options.array.parity_copies = 2;
  options.array.min_data_pages = 8192;
  options.array.page_size = 2048;
  // Real per-access disk latency: wall-clock speedup then comes from
  // overlapping I/O across member disks, the way parallel recovery wins on
  // hardware — and it is measurable even on a single-core host.
  options.array.real_access_delay_us = 25;
  options.buffer.capacity = 256;
  options.txn.force = false;
  options.txn.rda_undo = rda_on;
  options.recovery.recovery_threads = threads;
  return options;
}

int PopulateScale(rda::Database* db) {
  std::vector<std::vector<uint8_t>> pages(db->num_pages());
  for (rda::PageId page = 0; page < db->num_pages(); ++page) {
    pages[page].assign(db->user_page_size(), static_cast<uint8_t>(page * 7));
  }
  return db->BulkLoad(pages).ok() ? 0 : 1;
}

struct ScalePoint {
  bool rda = false;
  uint32_t threads = 1;
  double wall_ms = 0;
  uint64_t work = 0;        // redo_applied / pages rebuilt.
  double pages_per_sec = 0;  // Rebuild only.
};

// REDO-heavy crash: thousands of committed-but-unpropagated after-images
// plus a band of stolen losers for the parity-undo shards.
int CrashScale(bool rda_on, uint32_t threads, ScalePoint* point) {
  auto db_or = rda::Database::Open(ScaleOptions(rda_on, threads));
  if (!db_or.ok()) {
    return 1;
  }
  rda::Database* db = db_or->get();
  if (PopulateScale(db) != 0) {
    return 1;
  }
  std::vector<uint8_t> bytes(db->user_page_size(), 0x5C);
  for (int t = 0; t < 2048; ++t) {
    auto txn = db->Begin();
    if (!txn.ok()) {
      return 1;
    }
    for (int i = 0; i < 2; ++i) {
      const rda::PageId page =
          static_cast<rda::PageId>((t * 2 + i) % db->num_pages());
      if (!db->WritePage(*txn, page, bytes).ok()) {
        return 1;
      }
    }
    if (!db->Commit(*txn).ok()) {
      return 1;
    }
  }
  for (int t = 0; t < 64; ++t) {
    auto txn = db->Begin();
    if (!txn.ok()) {
      return 1;
    }
    for (int i = 0; i < 2; ++i) {
      const rda::PageId page = static_cast<rda::PageId>(
          (8192 + t * 16 + i * 8) % db->num_pages());
      if (!db->WritePage(*txn, page, bytes).ok()) {
        return 1;
      }
      rda::Frame* frame = db->txn_manager()->pool()->Lookup(page);
      if (frame == nullptr ||
          !db->txn_manager()->pool()->PropagateFrame(frame).ok()) {
        return 1;
      }
    }
  }
  db->Crash();
  const auto start = std::chrono::steady_clock::now();
  auto report = db->Recover();
  if (!report.ok()) {
    return 1;
  }
  point->rda = rda_on;
  point->threads = threads;
  point->wall_ms = WallMs(start);
  point->work = report->redo_applied;
  return 0;
}

int RebuildScale(bool rda_on, uint32_t threads, ScalePoint* point) {
  auto db_or = rda::Database::Open(ScaleOptions(rda_on, threads));
  if (!db_or.ok()) {
    return 1;
  }
  rda::Database* db = db_or->get();
  if (PopulateScale(db) != 0) {
    return 1;
  }
  if (!db->FailDisk(0).ok()) {
    return 1;
  }
  const auto start = std::chrono::steady_clock::now();
  auto report = db->RebuildDisk(0);
  if (!report.ok()) {
    return 1;
  }
  point->rda = rda_on;
  point->threads = threads;
  point->wall_ms = WallMs(start);
  point->work = report->data_pages_rebuilt + report->parity_pages_rebuilt +
                report->obsolete_twins_reset;
  point->pages_per_sec =
      point->wall_ms > 0 ? point->work / (point->wall_ms / 1000.0) : 0;
  return 0;
}

void AppendPoints(const std::vector<ScalePoint>& points, bool rebuild,
                  std::string* json) {
  for (size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& p = points[i];
    *json += "    {\"rda\": ";
    *json += p.rda ? "true" : "false";
    *json += ", \"threads\": " + std::to_string(p.threads);
    *json += ", \"wall_ms\": " + std::to_string(p.wall_ms);
    *json += rebuild ? ", \"pages_rebuilt\": " : ", \"redo_applied\": ";
    *json += std::to_string(p.work);
    if (rebuild) {
      *json += ", \"pages_per_sec\": " + std::to_string(p.pages_per_sec);
    }
    *json += i + 1 < points.size() ? "},\n" : "}\n";
  }
}

int RunScaling(const std::string& json_path) {
  std::printf("\n=== Recovery scaling vs worker-pool width ===\n");
  std::printf("(8192 pages x 2 KiB, 8 per group, 25 us/access disk latency;"
              "\n crash: 4096 committed after-images + 64 stolen losers; "
              "rebuild: one failed data disk)\n\n");
  std::printf("%6s %8s %15s %15s %18s\n", "config", "threads",
              "crash wall ms", "rebuild wall ms", "rebuild pages/s");
  std::vector<ScalePoint> crash_points;
  std::vector<ScalePoint> rebuild_points;
  for (const bool rda_on : {true, false}) {
    for (const uint32_t threads : {1u, 2u, 4u}) {
      ScalePoint crash;
      ScalePoint rebuild;
      if (CrashScale(rda_on, threads, &crash) != 0 ||
          RebuildScale(rda_on, threads, &rebuild) != 0) {
        std::fprintf(stderr, "scaling run failed\n");
        return 1;
      }
      crash_points.push_back(crash);
      rebuild_points.push_back(rebuild);
      std::printf("%6s %8u %15.1f %15.1f %18.0f\n", rda_on ? "RDA" : "noRDA",
                  threads, crash.wall_ms, rebuild.wall_ms,
                  rebuild.pages_per_sec);
    }
  }

  std::string json = "{\n";
  json += "  \"bench\": \"recovery_scaling\",\n";
  json += "  \"page_size\": 2048,\n";
  json += "  \"data_pages\": 8192,\n";
  json += "  \"disk_access_delay_us\": 25,\n";
  json += "  \"crash_recovery\": [\n";
  AppendPoints(crash_points, /*rebuild=*/false, &json);
  json += "  ],\n";
  json += "  \"rebuild\": [\n";
  AppendPoints(rebuild_points, /*rebuild=*/true, &json);
  json += "  ]\n}\n";
  std::ofstream out(json_path, std::ios::trunc);
  out << json;
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Recovery cost vs in-flight transactions at crash ===\n");
  std::printf("(4 stolen pages per transaction, distinct parity groups)\n\n");
  std::printf("%8s %22s %22s\n", "losers", "log-only baseline", "RDA (twin parity)");
  std::printf("%8s %11s %10s %11s %10s\n", "", "recovery", "fwd log",
              "recovery", "fwd log");
  for (const int losers : {1, 2, 4, 8, 16}) {
    uint64_t base_rec = 0;
    uint64_t base_fwd = 0;
    uint64_t rda_rec = 0;
    uint64_t rda_fwd = 0;
    if (Run(false, losers, 4, &base_rec, &base_fwd) != 0 ||
        Run(true, losers, 4, &rda_rec, &rda_fwd) != 0) {
      std::fprintf(stderr, "run failed\n");
      return 1;
    }
    std::printf("%8d %11llu %10llu %11llu %10llu\n", losers,
                static_cast<unsigned long long>(base_rec),
                static_cast<unsigned long long>(base_fwd),
                static_cast<unsigned long long>(rda_rec),
                static_cast<unsigned long long>(rda_fwd));
  }
  std::printf("\n(recovery = transfers spent by Recover(); fwd log = log "
              "transfers the steals cost\n before the crash — the RDA "
              "column avoids the before-image writes there, which is\n "
              "where the paper's throughput gain lives; its recovery-time "
              "undo includes the S/N\n directory-rebuild term)\n");
  return RunScaling(argc > 1 ? argv[1] : "BENCH_recovery.json");
}
