// The title claim, measured: "rapid recovery from transaction aborts and
// system crashes" — page transfers spent by restart recovery as a function
// of the number of in-flight (loser) transactions at the crash, RDA vs the
// traditional log-only baseline. RDA losers are undone from the twin parity
// (<= 6 transfers per page, no before-images were ever written); baseline
// losers re-read and re-apply logged before-images.
#include <cstdio>
#include <vector>

#include "core/database.h"

namespace {

rda::DatabaseOptions MakeOptions(bool rda_on) {
  rda::DatabaseOptions options;
  options.array.data_pages_per_group = 8;
  options.array.parity_copies = 2;
  options.array.min_data_pages = 512;
  options.array.page_size = 256;
  options.buffer.capacity = 128;
  options.txn.force = false;
  options.txn.rda_undo = rda_on;
  return options;
}

// Runs `losers` transactions that each steal `pages_each` pages (spread
// over distinct groups), crashes, and returns {recovery transfers, forward
// -path log transfers}.
int Run(bool rda_on, int losers, int pages_each, uint64_t* recovery_cost,
        uint64_t* forward_log_cost) {
  auto db_or = rda::Database::Open(MakeOptions(rda_on));
  if (!db_or.ok()) {
    return 1;
  }
  rda::Database* db = db_or->get();
  const uint32_t group_stride = 8;
  const uint64_t log_before = db->log()->counters().total();
  for (int t = 0; t < losers; ++t) {
    auto txn = db->Begin();
    if (!txn.ok()) {
      return 1;
    }
    std::vector<uint8_t> bytes(db->user_page_size(),
                               static_cast<uint8_t>(t + 1));
    for (int i = 0; i < pages_each; ++i) {
      const rda::PageId page =
          (t + i * group_stride * losers) % db->num_pages();
      if (!db->WritePage(*txn, page, bytes).ok()) {
        return 1;
      }
      rda::Frame* frame = db->txn_manager()->pool()->Lookup(page);
      if (frame == nullptr ||
          !db->txn_manager()->pool()->PropagateFrame(frame).ok()) {
        return 1;
      }
    }
  }
  *forward_log_cost = db->log()->counters().total() - log_before;

  db->Crash();
  const uint64_t before =
      db->array()->counters().total() + db->log()->counters().total();
  auto report = db->Recover();
  if (!report.ok()) {
    return 1;
  }
  *recovery_cost =
      db->array()->counters().total() + db->log()->counters().total() -
      before;
  return 0;
}

}  // namespace

int main() {
  std::printf("=== Recovery cost vs in-flight transactions at crash ===\n");
  std::printf("(4 stolen pages per transaction, distinct parity groups)\n\n");
  std::printf("%8s %22s %22s\n", "losers", "log-only baseline", "RDA (twin parity)");
  std::printf("%8s %11s %10s %11s %10s\n", "", "recovery", "fwd log",
              "recovery", "fwd log");
  for (const int losers : {1, 2, 4, 8, 16}) {
    uint64_t base_rec = 0;
    uint64_t base_fwd = 0;
    uint64_t rda_rec = 0;
    uint64_t rda_fwd = 0;
    if (Run(false, losers, 4, &base_rec, &base_fwd) != 0 ||
        Run(true, losers, 4, &rda_rec, &rda_fwd) != 0) {
      std::fprintf(stderr, "run failed\n");
      return 1;
    }
    std::printf("%8d %11llu %10llu %11llu %10llu\n", losers,
                static_cast<unsigned long long>(base_rec),
                static_cast<unsigned long long>(base_fwd),
                static_cast<unsigned long long>(rda_rec),
                static_cast<unsigned long long>(rda_fwd));
  }
  std::printf("\n(recovery = transfers spent by Recover(); fwd log = log "
              "transfers the steals cost\n before the crash — the RDA "
              "column avoids the before-image writes there, which is\n "
              "where the paper's throughput gain lives; its recovery-time "
              "undo includes the S/N\n directory-rebuild term)\n");
  return 0;
}
