// Multi-threaded commit-throughput report for the concurrent engine: runs
// the paper's four algorithm classes x {RDA, no-RDA} under a closed-loop
// multi-worker workload (TransactionManager::RunConcurrent) at 1/2/4/8
// threads and reports commit throughput, abort/retry counts and the
// group-commit batching the WAL achieved. The scaling comes from group
// commit amortising the simulated flush latency (flush_delay_us) across
// concurrent committers — it is visible even on a single core, because the
// leader sleeps out the device delay with the WAL mutex released while the
// other workers run their transactions and append the next batch.
//
// Writes machine-readable JSON (BENCH_mt.json) for the README thread-
// scaling table and the CI perf-smoke artifact.
//
// Usage: mt_report [output.json]   (default: BENCH_mt.json in cwd)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/database.h"

namespace {

using Clock = std::chrono::steady_clock;

// Simulated log-device flush latency. This is the quantity group commit
// amortises; zero would measure raw CPU scheduling noise instead of the
// batching effect the bench exists to show.
constexpr uint32_t kFlushDelayUs = 1000;
// Leader linger before publishing: lets workers released by the previous
// batch append their commits into this one instead of ping-ponging between
// full and singleton batches (see DESIGN.md section 11).
constexpr uint32_t kGroupCommitWindowUs = 400;
// Total commits per run, split evenly across workers so every thread count
// does the same total work. Divisible by every entry of kThreadCounts.
constexpr uint32_t kTotalTxns = 240;
constexpr uint32_t kOpsPerTxn = 4;
constexpr uint32_t kPages = 384;  // Uniform page draws; modest contention.
const std::vector<uint32_t> kThreadCounts = {1, 2, 4, 8};

struct MtResult {
  std::string config;
  bool rda = false;
  uint32_t threads = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t busy_retries = 0;
  uint64_t group_commit_batches = 0;
  double mean_batch = 0;
  double secs = 0;
  double txns_per_sec = 0;
  // Async-engine telemetry (zero when io_width == 0).
  uint64_t coalesced_writes = 0;
  uint64_t batched_parity_rmw = 0;
};

rda::DatabaseOptions MakeOptions(bool page_logging, bool force, bool rda_on) {
  rda::DatabaseOptions options;
  options.array.data_pages_per_group = 8;
  options.array.parity_copies = 2;
  options.array.min_data_pages = 512;
  options.array.page_size = 512;
  options.buffer.capacity = 512;
  options.buffer.shards = 8;
  options.txn.logging_mode = page_logging ? rda::LoggingMode::kPageLogging
                                          : rda::LoggingMode::kRecordLogging;
  options.txn.record_size = 48;
  options.txn.force = force;
  options.txn.rda_undo = rda_on;
  options.log.flush_delay_us = kFlushDelayUs;
  options.log.group_commit_window_us = kGroupCommitWindowUs;
  options.obs.enable_metrics = true;  // For the batch-size histogram.
  return options;
}

int RunOne(bool page_logging, bool force, bool rda_on, uint32_t threads,
           MtResult* out, uint32_t io_width = 0) {
  rda::DatabaseOptions options = MakeOptions(page_logging, force, rda_on);
  options.io.width = io_width;
  auto db_or = rda::Database::Open(options);
  if (!db_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 db_or.status().message().c_str());
    return 1;
  }
  rda::Database* db = db_or->get();

  rda::ConcurrentWorkload workload;
  workload.threads = threads;
  workload.txns_per_thread = kTotalTxns / threads;
  workload.ops_per_txn = kOpsPerTxn;
  workload.pages = kPages;
  workload.write_fraction = 1.0;
  workload.seed = 17 + threads;

  const auto start = Clock::now();
  auto result = db->txn_manager()->RunConcurrent(workload);
  // Deferred transfers are part of the run: drain the engine journal inside
  // the timed region so async throughput pays for its physical writes.
  if (io_width > 0 && !db->array()->FlushIo().ok()) {
    std::fprintf(stderr, "FlushIo failed\n");
    return 1;
  }
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (!result.ok()) {
    std::fprintf(stderr, "concurrent run failed: %s\n",
                 result.status().message().c_str());
    return 1;
  }

  out->config = std::string(page_logging ? "page" : "record") + "_" +
                (force ? "force" : "noforce");
  out->rda = rda_on;
  out->threads = threads;
  out->committed = result->committed;
  out->aborted = result->aborted;
  out->busy_retries = result->busy_retries;
  out->secs = secs;
  out->txns_per_sec = secs > 0 ? result->committed / secs : 0;
  const rda::obs::MetricsSnapshot metrics = db->SnapshotMetrics();
  out->group_commit_batches = metrics.CounterValue("wal.group_commit_batches");
  out->mean_batch = out->group_commit_batches > 0
                        ? static_cast<double>(out->committed) /
                              static_cast<double>(out->group_commit_batches)
                        : 0;
  if (io_width > 0 && db->array()->io_engine() != nullptr) {
    const auto stats = db->array()->io_engine()->stats();
    out->coalesced_writes = stats.coalesced_writes;
    out->batched_parity_rmw = stats.batched_parity_rmw;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_mt.json";

  std::vector<MtResult> results;
  for (const bool page_logging : {true, false}) {
    for (const bool force : {true, false}) {
      for (const bool rda_on : {false, true}) {
        for (const uint32_t threads : kThreadCounts) {
          MtResult r;
          if (RunOne(page_logging, force, rda_on, threads, &r) != 0) {
            return 1;
          }
          results.push_back(r);
        }
      }
    }
  }

  // The same matrix with the async per-disk I/O engine (io.width = 2):
  // submissions journal into per-disk queues, duplicate-slot writes
  // coalesce, parity RMWs batch, and the final drain is inside the timed
  // region.
  constexpr uint32_t kAsyncWidth = 2;
  std::vector<MtResult> async_results;
  for (const bool page_logging : {true, false}) {
    for (const bool force : {true, false}) {
      for (const bool rda_on : {false, true}) {
        for (const uint32_t threads : kThreadCounts) {
          MtResult r;
          if (RunOne(page_logging, force, rda_on, threads, &r, kAsyncWidth) !=
              0) {
            return 1;
          }
          async_results.push_back(r);
        }
      }
    }
  }

  // Per-(config, rda) speedup of 4 threads over 1 thread — the number the
  // acceptance bar cares about for the RDA classes.
  struct Speedup {
    std::string key;
    double speedup_4t = 0;
  };
  std::vector<Speedup> speedups;
  for (const MtResult& base : results) {
    if (base.threads != 1) {
      continue;
    }
    for (const MtResult& four : results) {
      if (four.threads == 4 && four.config == base.config &&
          four.rda == base.rda) {
        Speedup s;
        s.key = base.config + (base.rda ? "_rda" : "_plain");
        s.speedup_4t =
            base.txns_per_sec > 0 ? four.txns_per_sec / base.txns_per_sec : 0;
        speedups.push_back(s);
      }
    }
  }

  std::printf(
      "flush_delay_us=%u window_us=%u total_txns=%u ops/txn=%u pages=%u\n\n",
      kFlushDelayUs, kGroupCommitWindowUs, kTotalTxns, kOpsPerTxn, kPages);
  std::printf("%-16s %5s %3s %12s %8s %8s %10s\n", "config", "rda", "thr",
              "commits/sec", "aborted", "batches", "mean batch");
  for (const MtResult& r : results) {
    std::printf("%-16s %5s %3u %12.0f %8llu %8llu %10.2f\n", r.config.c_str(),
                r.rda ? "on" : "off", r.threads, r.txns_per_sec,
                static_cast<unsigned long long>(r.aborted),
                static_cast<unsigned long long>(r.group_commit_batches),
                r.mean_batch);
  }
  std::printf("\nasync engine (io.width=%u):\n", kAsyncWidth);
  std::printf("%-16s %5s %3s %12s %10s %11s %12s\n", "config", "rda", "thr",
              "commits/sec", "aborted", "coalesced", "parity_rmw");
  for (const MtResult& r : async_results) {
    std::printf("%-16s %5s %3u %12.0f %10llu %11llu %12llu\n",
                r.config.c_str(), r.rda ? "on" : "off", r.threads,
                r.txns_per_sec, static_cast<unsigned long long>(r.aborted),
                static_cast<unsigned long long>(r.coalesced_writes),
                static_cast<unsigned long long>(r.batched_parity_rmw));
  }

  std::printf("\n%-24s %10s\n", "class", "4t/1t");
  bool rda_bar_met = true;
  for (const Speedup& s : speedups) {
    std::printf("%-24s %9.2fx\n", s.key.c_str(), s.speedup_4t);
    if (s.key.find("_rda") != std::string::npos && s.speedup_4t <= 2.5) {
      rda_bar_met = false;
    }
  }
  if (!rda_bar_met) {
    std::fprintf(stderr,
                 "WARN: an RDA class fell below the 2.5x 4-thread bar\n");
  }

  FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"flush_delay_us\": %u,\n", kFlushDelayUs);
  std::fprintf(out, "  \"group_commit_window_us\": %u,\n",
               kGroupCommitWindowUs);
  std::fprintf(out, "  \"total_txns\": %u,\n", kTotalTxns);
  std::fprintf(out, "  \"ops_per_txn\": %u,\n", kOpsPerTxn);
  std::fprintf(out, "  \"pages\": %u,\n", kPages);
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const MtResult& r = results[i];
    std::fprintf(out,
                 "    {\"config\": \"%s\", \"rda\": %s, \"threads\": %u, "
                 "\"committed\": %llu, \"aborted\": %llu, "
                 "\"busy_retries\": %llu, \"group_commit_batches\": %llu, "
                 "\"mean_batch\": %.2f, \"secs\": %.4f, "
                 "\"txns_per_sec\": %.1f}%s\n",
                 r.config.c_str(), r.rda ? "true" : "false", r.threads,
                 static_cast<unsigned long long>(r.committed),
                 static_cast<unsigned long long>(r.aborted),
                 static_cast<unsigned long long>(r.busy_retries),
                 static_cast<unsigned long long>(r.group_commit_batches),
                 r.mean_batch, r.secs, r.txns_per_sec,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"async_io\": {\n");
  std::fprintf(out, "    \"io_width\": %u,\n", kAsyncWidth);
  std::fprintf(out, "    \"results\": [\n");
  for (size_t i = 0; i < async_results.size(); ++i) {
    const MtResult& r = async_results[i];
    std::fprintf(out,
                 "      {\"config\": \"%s\", \"rda\": %s, \"threads\": %u, "
                 "\"committed\": %llu, \"aborted\": %llu, "
                 "\"coalesced_writes\": %llu, \"batched_parity_rmw\": %llu, "
                 "\"secs\": %.4f, \"txns_per_sec\": %.1f}%s\n",
                 r.config.c_str(), r.rda ? "true" : "false", r.threads,
                 static_cast<unsigned long long>(r.committed),
                 static_cast<unsigned long long>(r.aborted),
                 static_cast<unsigned long long>(r.coalesced_writes),
                 static_cast<unsigned long long>(r.batched_parity_rmw),
                 r.secs, r.txns_per_sec,
                 i + 1 < async_results.size() ? "," : "");
  }
  std::fprintf(out, "    ]\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"speedup_4t_vs_1t\": {\n");
  for (size_t i = 0; i < speedups.size(); ++i) {
    std::fprintf(out, "    \"%s\": %.2f%s\n", speedups[i].key.c_str(),
                 speedups[i].speedup_4t,
                 i + 1 < speedups.size() ? "," : "");
  }
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path);
  return 0;
}
