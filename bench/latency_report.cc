// Latency-percentile report: runs the paper's four algorithm classes
// (page vs record logging x FORCE-TOC vs notFORCE-ACC), each with RDA undo
// on and off, under the concurrent engine at 1 and 4 worker threads, then
// stages a crash + recovery. For every run it reports bucket-interpolated
// p50/p95/p99 from the engine's latency histograms — commit, WAL flush,
// group-commit wait (leader vs follower), parity propagate, and each
// recovery phase — and writes BENCH_latency.json for the README table and
// the CI perf-smoke artifact. The 4-thread page_force_toc RDA run also
// exports its span timeline as a Chrome Trace Event file (BENCH_trace.json,
// loadable in Perfetto / chrome://tracing).
//
// Usage: latency_report [output.json] [trace.json]
//        (defaults: BENCH_latency.json, BENCH_trace.json in cwd)
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "core/database.h"

namespace {

struct Config {
  const char* name;
  rda::LoggingMode logging;
  bool force;
  uint64_t checkpoint_interval;
};

constexpr Config kConfigs[] = {
    {"page_force_toc", rda::LoggingMode::kPageLogging, true, 0},
    {"page_noforce_acc", rda::LoggingMode::kPageLogging, false, 256},
    {"record_force_toc", rda::LoggingMode::kRecordLogging, true, 0},
    {"record_noforce_acc", rda::LoggingMode::kRecordLogging, false, 256},
};

// Simulated log-device flush latency: gives group commit something to
// amortise so leader-flush vs follower-wait separate visibly.
constexpr uint32_t kFlushDelayUs = 500;
constexpr uint32_t kGroupCommitWindowUs = 200;
constexpr uint32_t kTotalTxns = 240;  // Split evenly across workers.
constexpr uint32_t kOpsPerTxn = 4;
constexpr uint32_t kPages = 384;
const std::vector<uint32_t> kThreadCounts = {1, 4};

// The per-operation histograms every run reports. Group-commit wait is
// split by role: the leader pays the device flush, followers only wait.
constexpr const char* kOperationHists[] = {
    "txn.commit_us",
    "wal.flush_us",
    "wal.group_commit_wait_us",
    "wal.group_commit_leader_flush_us",
    "wal.group_commit_follower_wait_us",
    "parity.propagate_us",
};

rda::DatabaseOptions MakeOptions(const Config& config, bool rda_on) {
  rda::DatabaseOptions options;
  options.array.data_pages_per_group = 8;
  options.array.parity_copies = 2;
  options.array.min_data_pages = 512;
  options.array.page_size = 512;
  options.buffer.capacity = 512;
  options.buffer.shards = 8;
  options.txn.logging_mode = config.logging;
  options.txn.record_size = 48;
  options.txn.force = config.force;
  options.txn.rda_undo = rda_on;
  options.checkpoint_interval_updates = config.checkpoint_interval;
  options.log.flush_delay_us = kFlushDelayUs;
  options.log.group_commit_window_us = kGroupCommitWindowUs;
  return options;  // Observability (metrics/trace/spans) on by default.
}

// Leaves in-flight transactions with stolen pages on disk, then crashes and
// recovers — the recovery-phase percentiles come from this staged restart.
rda::Status StageCrashAndRecover(rda::Database* db,
                                 rda::CrashRecoveryReport* report) {
  const int losers = 4;
  const int pages_each = 3;
  const bool record_mode = db->txn_manager()->config().logging_mode ==
                           rda::LoggingMode::kRecordLogging;
  std::vector<uint8_t> page_bytes(db->user_page_size(), 0xA5);
  std::vector<uint8_t> record_bytes(db->txn_manager()->config().record_size,
                                    0xA5);
  for (int t = 0; t < losers; ++t) {
    RDA_ASSIGN_OR_RETURN(const rda::TxnId txn, db->Begin());
    for (int i = 0; i < pages_each; ++i) {
      const rda::PageId page =
          static_cast<rda::PageId>((t * 64 + i * 8) % db->num_pages());
      rda::Status status =
          record_mode ? db->WriteRecord(txn, page, 0, record_bytes)
                      : db->WritePage(txn, page, page_bytes);
      if (status.IsBusy()) {
        continue;
      }
      RDA_RETURN_IF_ERROR(status);
      rda::Frame* frame = db->txn_manager()->pool()->Lookup(page);
      if (frame != nullptr) {
        RDA_RETURN_IF_ERROR(db->txn_manager()->pool()->PropagateFrame(frame));
      }
    }
  }
  db->Crash();
  RDA_ASSIGN_OR_RETURN(*report, db->Recover());
  return rda::Status::Ok();
}

void AppendDouble(std::string* out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", value);
  *out += buf;
}

// {"count":n,"p50":x,"p95":y,"p99":z,"max":m} — zeros when the histogram
// is absent or empty.
void AppendPercentiles(
    std::string* out,
    const rda::obs::MetricsSnapshot::HistogramSnapshot* histogram) {
  *out += "{\"count\":";
  *out += std::to_string(histogram != nullptr ? histogram->count : 0);
  constexpr struct {
    const char* label;
    double q;
  } kQuantiles[] = {{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}};
  for (const auto& [label, q] : kQuantiles) {
    *out += ",\"";
    *out += label;
    *out += "\":";
    AppendDouble(out, histogram != nullptr ? rda::obs::Quantile(*histogram, q)
                                           : 0.0);
  }
  *out += ",\"max\":";
  AppendDouble(out, histogram != nullptr ? histogram->max : 0.0);
  *out += "}";
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_latency.json";
  const char* trace_path = argc > 2 ? argv[2] : "BENCH_trace.json";

  std::string json = "{\"flush_delay_us\":" + std::to_string(kFlushDelayUs) +
                     ",\"group_commit_window_us\":" +
                     std::to_string(kGroupCommitWindowUs) +
                     ",\"total_txns\":" + std::to_string(kTotalTxns) +
                     ",\"runs\":[";
  bool first = true;
  bool trace_written = false;
  for (const Config& config : kConfigs) {
    for (const bool rda_on : {true, false}) {
      for (const uint32_t threads : kThreadCounts) {
        auto db_or = rda::Database::Open(MakeOptions(config, rda_on));
        if (!db_or.ok()) {
          std::fprintf(stderr, "%s rda=%d t=%u: open failed: %s\n",
                       config.name, rda_on ? 1 : 0, threads,
                       db_or.status().message().c_str());
          return 1;
        }
        rda::Database* db = db_or->get();

        rda::ConcurrentWorkload workload;
        workload.threads = threads;
        workload.txns_per_thread = kTotalTxns / threads;
        workload.ops_per_txn = kOpsPerTxn;
        workload.pages = kPages;
        workload.write_fraction = 1.0;
        workload.seed = 29 + threads;
        auto run = db->txn_manager()->RunConcurrent(workload);
        if (!run.ok()) {
          std::fprintf(stderr, "%s rda=%d t=%u: run failed: %s\n",
                       config.name, rda_on ? 1 : 0, threads,
                       run.status().message().c_str());
          return 1;
        }

        rda::CrashRecoveryReport recovery;
        rda::Status staged = StageCrashAndRecover(db, &recovery);
        if (!staged.ok()) {
          std::fprintf(stderr, "%s rda=%d t=%u: staged recovery failed: %s\n",
                       config.name, rda_on ? 1 : 0, threads,
                       staged.message().c_str());
          return 1;
        }

        const rda::obs::MetricsSnapshot snapshot = db->SnapshotMetrics();
        if (!first) {
          json += ",";
        }
        first = false;
        json += "{\"config\":\"";
        json += config.name;
        json += "\",\"rda_undo\":";
        json += rda_on ? "true" : "false";
        json += ",\"threads\":";
        json += std::to_string(threads);
        json += ",\"committed\":";
        json += std::to_string(run->committed);
        json += ",\"operations\":{";
        bool first_op = true;
        for (const char* name : kOperationHists) {
          if (!first_op) {
            json += ",";
          }
          first_op = false;
          json += "\"";
          json += name;
          json += "\":";
          AppendPercentiles(&json, snapshot.FindHistogram(name));
        }
        json += "},\"recovery_phases\":{";
        bool first_phase = true;
        for (const auto& histogram : snapshot.histograms) {
          const std::string_view name = histogram.name;
          constexpr std::string_view kPrefix = "recovery.phase.";
          constexpr std::string_view kSuffix = ".wall_us";
          if (!name.starts_with(kPrefix) || !name.ends_with(kSuffix)) {
            continue;
          }
          if (!first_phase) {
            json += ",";
          }
          first_phase = false;
          json += "\"";
          json += name.substr(kPrefix.size(),
                              name.size() - kPrefix.size() - kSuffix.size());
          json += "\":";
          AppendPercentiles(&json, &histogram);
        }
        json += "}}";

        const auto* commit = snapshot.FindHistogram("txn.commit_us");
        std::printf("%-20s rda=%d t=%u: %llu committed, commit p50/p95/p99 = "
                    "%.0f/%.0f/%.0f us\n",
                    config.name, rda_on ? 1 : 0, threads,
                    static_cast<unsigned long long>(run->committed),
                    commit != nullptr ? rda::obs::Quantile(*commit, 0.50) : 0.0,
                    commit != nullptr ? rda::obs::Quantile(*commit, 0.95) : 0.0,
                    commit != nullptr ? rda::obs::Quantile(*commit, 0.99)
                                      : 0.0);

        // One representative Chrome trace: the 4-thread RDA page-FORCE run.
        if (!trace_written && rda_on && threads == 4 &&
            std::string_view(config.name) == "page_force_toc") {
          rda::Status dumped = db->DumpChromeTrace(trace_path);
          if (!dumped.ok()) {
            std::fprintf(stderr, "chrome trace dump failed: %s\n",
                         dumped.message().c_str());
            return 1;
          }
          trace_written = true;
          std::printf("  wrote %s (Chrome Trace Event format)\n", trace_path);
        }
      }
    }
  }
  json += "]}\n";

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path);
  return trace_written ? 0 : 1;
}
