// Ablation: parity group size N. The paper's conclusion calls out the
// storage cost — "The extra storage used is about (100/N)% of the size of
// the database" (one extra parity page per group beyond classic RAID) —
// while a larger N makes parity groups more contended: the probability
// that a modified page must still be logged, p_log, grows with N, eroding
// the RDA gain. This bench quantifies that trade-off with the analytical
// model (page logging, FORCE/TOC, high-update environment).
#include <iomanip>
#include <iostream>

#include "model/algorithms.h"
#include "model/probabilities.h"

int main() {
  using namespace rda::model;
  std::cout << "=== Ablation: parity group size N (page FORCE/TOC, high "
               "update, C = 0.9) ===\n\n"
            << std::setw(6) << "N" << std::setw(14) << "extra storage"
            << std::setw(10) << "p_log" << std::setw(14) << "no-RDA r_t"
            << std::setw(14) << "RDA r_t" << std::setw(10) << "gain%"
            << "\n"
            << std::setw(6) << "" << std::setw(14) << "(twin, %)" << "\n";
  for (const double n : {2.0, 4.0, 8.0, 10.0, 16.0, 32.0, 64.0}) {
    ModelParams p = ModelParams::HighUpdate();
    p.N = n;
    const CostBreakdown base = EvalPageForceToc(p, 0.9, false);
    const CostBreakdown rda = EvalPageForceToc(p, 0.9, true);
    std::cout << std::fixed << std::setprecision(0) << std::setw(6) << n
              << std::setprecision(1) << std::setw(14) << 200.0 / n
              << std::setprecision(3) << std::setw(10) << rda.p_log
              << std::setprecision(0) << std::setw(14) << base.throughput
              << std::setw(14) << rda.throughput << std::setprecision(1)
              << std::setw(10)
              << 100.0 * (rda.throughput - base.throughput) /
                     base.throughput
              << "\n";
  }
  std::cout << "\n(the baseline uses the log for all UNDO, so its "
               "throughput is N-independent;\n twin-page storage overhead "
               "is 2 parity pages per N data pages = 200/N %,\n i.e. "
               "100/N % beyond what classic single-parity RAID already "
               "pays)\n";
  return 0;
}
