// Ablation Abl-2 (DESIGN.md): measured cost of aborting a transaction when
// its stolen pages are undone from twin parity vs from logged
// before-images. Exercises the real Database: each trial writes `pages`
// pages spread over distinct parity groups, forces them to disk, then
// aborts and reports the page transfers of the abort alone.
#include <iomanip>
#include <iostream>

#include "core/database.h"

namespace {

rda::DatabaseOptions MakeOptions(bool rda_on) {
  rda::DatabaseOptions options;
  options.array.data_pages_per_group = 8;
  options.array.parity_copies = 2;
  options.array.min_data_pages = 512;
  options.array.page_size = 256;
  options.buffer.capacity = 64;
  options.txn.force = true;
  options.txn.rda_undo = rda_on;
  return options;
}

int Run(bool rda_on, int pages_per_txn, double* abort_transfers,
        double* steal_transfers) {
  auto db_or = rda::Database::Open(MakeOptions(rda_on));
  if (!db_or.ok()) {
    return 1;
  }
  rda::Database* db = db_or->get();
  const uint32_t group_stride = 8;  // One page per parity group.
  const int trials = 20;
  uint64_t abort_total = 0;
  uint64_t steal_total = 0;
  for (int t = 0; t < trials; ++t) {
    auto txn = db->Begin();
    std::vector<uint8_t> bytes(db->user_page_size(),
                               static_cast<uint8_t>(t + 1));
    const uint64_t before_steal = db->TotalPageTransfers();
    for (int i = 0; i < pages_per_txn; ++i) {
      const rda::PageId page = (t + i * group_stride) % db->num_pages();
      if (!db->WritePage(*txn, page, bytes).ok()) {
        return 1;
      }
      // Propagate immediately (steal) so the abort must undo disk state.
      rda::Frame* frame = db->txn_manager()->pool()->Lookup(page);
      if (frame == nullptr ||
          !db->txn_manager()->pool()->PropagateFrame(frame).ok()) {
        return 1;
      }
    }
    const uint64_t after_steal = db->TotalPageTransfers();
    if (!db->Abort(*txn).ok()) {
      return 1;
    }
    abort_total += db->TotalPageTransfers() - after_steal;
    steal_total += after_steal - before_steal;
  }
  *abort_transfers = static_cast<double>(abort_total) / trials;
  *steal_transfers = static_cast<double>(steal_total) / trials;
  return 0;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: abort cost, parity undo vs log undo ===\n\n"
            << std::setw(8) << "pages" << std::setw(22) << "steal+abort xfers"
            << std::setw(22) << "steal+abort xfers" << "\n"
            << std::setw(8) << "" << std::setw(22) << "(log undo)"
            << std::setw(22) << "(parity undo)" << "\n";
  for (const int pages : {1, 2, 4, 8}) {
    double abort_log = 0;
    double steal_log = 0;
    double abort_rda = 0;
    double steal_rda = 0;
    if (Run(false, pages, &abort_log, &steal_log) != 0 ||
        Run(true, pages, &abort_rda, &steal_rda) != 0) {
      std::cerr << "trial failed\n";
      return 1;
    }
    std::cout << std::setw(8) << pages << std::fixed << std::setprecision(1)
              << std::setw(11) << steal_log << " +" << std::setw(8)
              << abort_log << std::setw(11) << steal_rda << " +"
              << std::setw(8) << abort_rda << "\n";
  }
  std::cout << "\n(parity undo avoids the before-image log writes at steal "
               "time; the abort itself\n reads both twins and the page — "
               "the paper's <=6 I/O path)\n";
  return 0;
}
