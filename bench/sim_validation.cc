// Cross-validation experiment (Sim-X1 in DESIGN.md): runs the REAL system
// (twin-page parity, buffer, WAL, transactions) under the Reuter workload
// and compares the measured RDA gain in page transfers per committed
// transaction against the analytical model evaluated at the same
// parameters. Absolute numbers differ (the sim pays integer I/Os and cold
// caches); the claim under test is the SHAPE: RDA wins, and the gain grows
// with communality.
#include <iomanip>
#include <iostream>

#include "model/algorithms.h"
#include "sim/simulator.h"

namespace {

rda::sim::SimOptions MakeOptions(double c, bool rda_on, uint64_t seed,
                                 bool force = true,
                                 bool record_mode = false) {
  rda::sim::SimOptions options;
  options.db.array.layout_kind = rda::LayoutKind::kDataStriping;
  options.db.array.data_pages_per_group = 8;
  options.db.array.parity_copies = 2;
  options.db.array.min_data_pages = 512;
  options.db.array.page_size = 256;
  options.db.buffer.capacity = 64;
  options.db.txn.logging_mode = record_mode
                                    ? rda::LoggingMode::kRecordLogging
                                    : rda::LoggingMode::kPageLogging;
  options.db.txn.record_size = 24;
  options.db.txn.force = force;
  options.db.txn.rda_undo = rda_on;
  if (!force) {
    options.db.checkpoint_interval_updates = 64;
  }
  if (record_mode) {
    options.workload.mode = rda::LoggingMode::kRecordLogging;
    options.workload.records_per_page = 8;
  }
  options.workload.num_pages = 512;
  options.workload.pages_per_txn = 8;
  options.workload.communality = c;
  options.workload.update_txn_fraction = 0.8;
  options.workload.update_probability = 0.9;
  options.workload.abort_probability = 0.01;
  options.workload.hot_window = 48;
  options.workload.seed = seed;
  options.num_transactions = 400;
  options.concurrency = 4;
  options.seed = seed;
  return options;
}

rda::model::ModelParams MatchingModelParams() {
  rda::model::ModelParams p;
  p.B = 64;
  p.S = 512;
  p.N = 8;
  p.P = 4;
  p.s = 8;
  p.f_u = 0.8;
  p.p_u = 0.9;
  p.p_b = 0.01;
  return p;
}

}  // namespace

int main() {
  std::cout << "=== Simulator vs analytical model: page FORCE/TOC ===\n\n"
            << std::setw(6) << "C" << std::setw(16) << "sim xfers/txn"
            << std::setw(16) << "sim xfers/txn" << std::setw(12) << "sim gain"
            << std::setw(12) << "model gain" << "\n"
            << std::setw(6) << "" << std::setw(16) << "(no RDA)"
            << std::setw(16) << "(RDA)" << std::setw(12) << "%"
            << std::setw(12) << "%" << "\n";

  const rda::model::ModelParams params = MatchingModelParams();
  for (const double c : {0.0, 0.2, 0.4, 0.6, 0.8, 0.9}) {
    double per_commit[2] = {0, 0};
    for (const bool rda_on : {false, true}) {
      rda::sim::Simulator sim(MakeOptions(c, rda_on, 42));
      auto result = sim.Run();
      if (!result.ok()) {
        std::cerr << "simulation failed: " << result.status().ToString()
                  << "\n";
        return 1;
      }
      per_commit[rda_on ? 1 : 0] = result->transfers_per_commit;
    }
    const double sim_gain =
        100.0 * (per_commit[0] - per_commit[1]) / per_commit[1];
    const double base =
        rda::model::EvalPageForceToc(params, c, false).throughput;
    const double with =
        rda::model::EvalPageForceToc(params, c, true).throughput;
    const double model_gain = 100.0 * (with - base) / base;
    std::cout << std::fixed << std::setprecision(2) << std::setw(6) << c
              << std::setw(16) << per_commit[0] << std::setw(16)
              << per_commit[1] << std::setprecision(1) << std::setw(12)
              << sim_gain << std::setw(12) << model_gain << "\n";
  }
  std::cout << "\n(sim gain = reduction in page transfers per committed "
               "transaction when RDA is on)\n";

  // The other three algorithm classes at C = 0.5: the sim must agree with
  // the model about WHERE the RDA gain is large and where it is small.
  std::cout << "\n=== RDA gain by algorithm class (C = 0.5) ===\n\n"
            << std::setw(34) << "configuration" << std::setw(14)
            << "sim gain %" << "\n";
  struct Config {
    const char* name;
    bool force;
    bool record;
  };
  for (const Config config :
       {Config{"page FORCE/TOC", true, false},
        Config{"page notFORCE/ACC", false, false},
        Config{"record FORCE/TOC", true, true},
        Config{"record notFORCE/ACC", false, true}}) {
    double per_commit[2] = {0, 0};
    for (const bool rda_on : {false, true}) {
      rda::sim::Simulator sim(
          MakeOptions(0.5, rda_on, 99, config.force, config.record));
      auto result = sim.Run();
      if (!result.ok()) {
        std::cerr << "simulation failed: " << result.status().ToString()
                  << "\n";
        return 1;
      }
      per_commit[rda_on ? 1 : 0] = result->transfers_per_commit;
    }
    std::cout << std::setw(34) << config.name << std::fixed
              << std::setprecision(1) << std::setw(14)
              << 100.0 * (per_commit[0] - per_commit[1]) / per_commit[1]
              << "\n";
  }
  std::cout << "\n(expected ordering per the model: the page FORCE/TOC "
               "class gains the most;\n record/notFORCE classes gain "
               "little at small scale)\n";
  return 0;
}
