// Ablation: the twin-page parity scheme (the paper's contribution) vs a
// single-parity RAID baseline running the same workload with classical
// UNDO logging. Shows what the second parity copy buys (unlogged steals)
// and what it costs (extra storage, commit finalization writes).
#include <iomanip>
#include <iostream>

#include "sim/simulator.h"

namespace {

rda::sim::SimOptions MakeOptions(uint32_t parity_copies, bool rda_on,
                                 double c) {
  rda::sim::SimOptions options;
  options.db.array.data_pages_per_group = 8;
  options.db.array.parity_copies = parity_copies;
  options.db.array.min_data_pages = 512;
  options.db.array.page_size = 256;
  options.db.buffer.capacity = 64;
  options.db.txn.force = true;
  options.db.txn.rda_undo = rda_on;
  options.workload.num_pages = 512;
  options.workload.pages_per_txn = 8;
  options.workload.communality = c;
  options.workload.update_txn_fraction = 0.8;
  options.workload.update_probability = 0.9;
  options.workload.abort_probability = 0.02;
  options.workload.seed = 11;
  options.num_transactions = 400;
  options.concurrency = 4;
  return options;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: twin-page parity vs single-parity RAID ===\n\n"
            << std::setw(6) << "C" << std::setw(22) << "single parity + log"
            << std::setw(22) << "twin parity (RDA)" << std::setw(12)
            << "gain %" << "\n"
            << std::setw(6) << "" << std::setw(22) << "xfers/txn"
            << std::setw(22) << "xfers/txn" << "\n";
  for (const double c : {0.2, 0.5, 0.8}) {
    double single = 0;
    double twin = 0;
    {
      rda::sim::Simulator sim(MakeOptions(1, false, c));
      auto result = sim.Run();
      if (!result.ok()) {
        std::cerr << result.status().ToString() << "\n";
        return 1;
      }
      single = result->transfers_per_commit;
    }
    {
      rda::sim::Simulator sim(MakeOptions(2, true, c));
      auto result = sim.Run();
      if (!result.ok()) {
        std::cerr << result.status().ToString() << "\n";
        return 1;
      }
      twin = result->transfers_per_commit;
    }
    std::cout << std::fixed << std::setprecision(2) << std::setw(6) << c
              << std::setw(22) << single << std::setw(22) << twin
              << std::setprecision(1) << std::setw(12)
              << 100.0 * (single - twin) / twin << "\n";
  }
  std::cout << "\n(storage cost of the twin scheme: one extra parity page "
               "per group = 100/N percent)\n";
  return 0;
}
