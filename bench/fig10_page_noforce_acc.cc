// Reproduces paper Figure 10.
//  page logging, notFORCE/ACC:Paper: without RDA this beats FORCE/TOC; with RDA the ordering reverses and the RDA gain here is small.
#include <iostream>

#include "model/figures.h"

int main() {
  using namespace rda::model;
  std::cout << "=== Figure 10 ===\n\n";
  for (const Environment env :
       {Environment::kHighUpdate, Environment::kHighRetrieval}) {
    const auto series =
        FigureSeries(AlgorithmClass::kPageNoForceAcc, env, 11);
    PrintFigureTable(std::cout, AlgorithmClass::kPageNoForceAcc, env, series);
    std::cout << "\n";
  }
  return 0;
}
