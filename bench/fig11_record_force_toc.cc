// Reproduces paper Figure 11.
//  record logging, FORCE/TOC:Paper: record logging shrinks the log to record granularity; RDA still removes UNDO volume and most before-images.
#include <iostream>

#include "model/figures.h"

int main() {
  using namespace rda::model;
  std::cout << "=== Figure 11 ===\n\n";
  for (const Environment env :
       {Environment::kHighUpdate, Environment::kHighRetrieval}) {
    const auto series =
        FigureSeries(AlgorithmClass::kRecordForceToc, env, 11);
    PrintFigureTable(std::cout, AlgorithmClass::kRecordForceToc, env, series);
    std::cout << "\n";
  }
  return 0;
}
