#include "fuzz/runner.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/database.h"
#include "exec/token_bucket.h"
#include "fuzz/oracle.h"
#include "sim/workload.h"

namespace rda::fuzz {
namespace {

// Every schedule runs against the same small array: 8 groups of 4 data
// pages + 2 parity twins over 6 disks, pages of 128 bytes. Small enough
// that hundreds of schedules stay fast, large enough that crashes land in
// distinct groups and disk failures hit both data and parity members.
DatabaseOptions MakeDbOptions(const Schedule& schedule,
                              const FuzzOptions& fuzz_options) {
  DatabaseOptions options;
  options.array.data_pages_per_group = 4;
  options.array.parity_copies = 2;
  options.array.min_data_pages = 32;
  options.array.page_size = 128;
  options.buffer.capacity = schedule.threads > 1 ? 24 : 12;
  options.buffer.shards = schedule.threads > 1 ? 4 : 1;
  options.txn.force = schedule.force;
  options.txn.rda_undo = schedule.rda;
  options.txn.logging_mode = schedule.mode;
  options.txn.record_size = 24;
  options.checkpoint_interval_updates = schedule.force ? 0 : 64;
  // Injectors armed, all probabilities zero: faults come exclusively from
  // the schedule's scripted events, so replays are exact.
  options.fault.enabled = true;
  options.io.max_read_retries = 4;
  options.io.max_write_retries = 4;
  options.io.width = fuzz_options.io_width;
  options.obs.enable_metrics = true;
  return options;
}

// One flattened workload step of a single-threaded run.
struct MicroOp {
  enum class Kind : uint8_t {
    kBegin,
    kRead,
    kWrite,
    kCommit,
    kAbort,
    kCheckpoint
  };
  Kind kind = Kind::kBegin;
  PageId page = 0;
  RecordSlot slot = 0;
};

class Runner {
 public:
  Runner(const Schedule& schedule, const FuzzOptions& options)
      : schedule_(schedule), options_(options) {}

  Result<RunOutcome> Run();

 private:
  using PendingWrites =
      std::vector<std::pair<std::pair<PageId, RecordSlot>, uint8_t>>;

  bool Violated() const { return violated_.load(std::memory_order_acquire); }
  void RecordViolation(const std::string& message) {
    std::lock_guard<std::mutex> lock(violation_mu_);
    if (!violated_.load(std::memory_order_acquire)) {
      violation_ = message;
      violated_.store(true, std::memory_order_release);
    }
  }

  uint8_t NextValue() {
    // Nonzero so committed data is distinguishable from the formatted
    // (all-zero) state the shadow model defaults to.
    return static_cast<uint8_t>(
        1 + value_counter_.fetch_add(1, std::memory_order_relaxed) % 255);
  }

  void ApplyPending(const PendingWrites& pending) {
    std::lock_guard<std::mutex> lock(shadow_mu_);
    for (const auto& [where, value] : pending) {
      if (schedule_.mode == LoggingMode::kPageLogging) {
        shadow_->CommitPage(where.first, value);
      } else {
        shadow_->CommitRecord(where.first, where.second, value);
      }
    }
  }

  uint8_t Expected(const PendingWrites& pending, PageId page,
                   RecordSlot slot) {
    for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
      if (it->first.first == page &&
          (schedule_.mode == LoggingMode::kPageLogging ||
           it->first.second == slot)) {
        return it->second;
      }
    }
    std::lock_guard<std::mutex> lock(shadow_mu_);
    return schedule_.mode == LoggingMode::kPageLogging
               ? shadow_->ExpectedPage(page)
               : shadow_->ExpectedRecord(page, slot);
  }

  void RunOracle() {
    if (Violated()) {
      return;
    }
    Status status = CheckOracle(db_.get(), *shadow_);
    if (!status.ok()) {
      RecordViolation(status.ToString());
    }
  }

  void ApplyBugAfterRecovery();
  // Crash() + Recover() (optionally crashing the first recovery after
  // `recovery_faults` actions), then bug hook + oracle. Coordinator-only.
  void DoCrashAndRecover(uint32_t recovery_faults);
  // Applies one scripted fault synchronously. `cur`/`must_commit` (may be
  // null) let a disk-failure event flag the single-threaded run's active
  // transaction when its undo coverage was lost.
  void ApplyFault(const FaultEvent& fault, const TxnId* cur,
                  bool* must_commit);
  // A failed disk removes one member from EVERY group, so an unhealed
  // scripted sector fault anywhere else would turn into a double erasure —
  // outside the single-fault coverage the array promises. Heal them first
  // so the disk failure is each group's only fault. Returns false after
  // recording a violation.
  bool ScrubBeforeDiskFailure();

  void RunSingleThreaded();
  void RunMultiThreaded();
  void RunSegment(uint32_t segment_end, DiskId* pending_online_disk,
                  uint32_t online_rate);
  void WorkerLoop(uint32_t worker, uint32_t segment_end);
  // Commits `txn` because Abort reported kDataLoss (a disk failure consumed
  // the undo coverage of one of its unlogged updates). Returns false after
  // recording a violation.
  bool CommitInstead(TxnId txn, const PendingWrites& pending);

  const Schedule& schedule_;
  FuzzOptions options_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<ShadowModel> shadow_;
  std::mutex shadow_mu_;
  size_t record_size_ = 0;

  std::atomic<uint64_t> value_counter_{0};
  std::atomic<uint64_t> committed_{0};
  uint32_t recoveries_ = 0;

  std::atomic<bool> violated_{false};
  std::mutex violation_mu_;
  std::string violation_;

  // Groups that carry an unscrubbed scripted persistent fault; sized in
  // Run(). Coordinator-only (faults fire at quiesced points).
  std::vector<bool> faulted_groups_;

  // Multi-threaded machinery.
  std::vector<std::unique_ptr<sim::WorkloadGenerator>> generators_;
  std::atomic<uint32_t> next_txn_{0};
};

void Runner::ApplyBugAfterRecovery() {
  if (options_.bug != InjectedBug::kDropRecoveredPage) {
    return;
  }
  std::lock_guard<std::mutex> lock(shadow_mu_);
  for (PageId page = 0; page < db_->num_pages(); ++page) {
    bool holds_data = false;
    if (schedule_.mode == LoggingMode::kPageLogging) {
      holds_data = shadow_->ExpectedPage(page) != 0;
    } else {
      for (RecordSlot slot = 0; slot < shadow_->records_per_page(); ++slot) {
        if (shadow_->ExpectedRecord(page, slot) != 0) {
          holds_data = true;
          break;
        }
      }
    }
    if (holds_data) {
      // Straight to the array, bypassing parity maintenance: the committed
      // content vanishes and parity no longer covers the group.
      PageImage zeroed(db_->options().array.page_size);
      (void)db_->array()->WriteData(page, std::move(zeroed));
      return;
    }
  }
}

void Runner::DoCrashAndRecover(uint32_t recovery_faults) {
  db_->Crash();
  if (recovery_faults > 0) {
    Result<CrashRecoveryReport> first =
        db_->RecoverWithInjectedFault(recovery_faults);
    if (!first.ok()) {
      if (!first.status().IsAborted()) {
        RecordViolation("recovery (with injected mid-recovery crash) "
                        "failed: " +
                        first.status().ToString());
        return;
      }
      // The injected crash fired; recovery must converge when re-run.
      db_->Crash();
      Result<CrashRecoveryReport> second = db_->Recover();
      if (!second.ok()) {
        RecordViolation("recovery did not converge after a mid-recovery "
                        "crash: " +
                        second.status().ToString());
        return;
      }
    }
  } else {
    Result<CrashRecoveryReport> report = db_->Recover();
    if (!report.ok()) {
      RecordViolation("recovery failed: " + report.status().ToString());
      return;
    }
  }
  ++recoveries_;
  ApplyBugAfterRecovery();
  RunOracle();
}

void Runner::ApplyFault(const FaultEvent& fault, const TxnId* cur,
                        bool* must_commit) {
  DiskArray* array = db_->array();
  const Layout& layout = array->layout();
  switch (fault.kind) {
    case FaultEvent::Kind::kLatentSector:
    case FaultEvent::Kind::kTransientRead:
    case FaultEvent::Kind::kTransientWrite:
    case FaultEvent::Kind::kBitFlip:
    case FaultEvent::Kind::kTornWrite: {
      // Data pages only: parity-twin damage is scheduled indirectly (the
      // engine repairs or honestly reports it; a scripted fault on a dirty
      // group's before-image twin is kDataLoss by design, not a bug).
      PageId page = fault.a % db_->num_pages();
      if (fault.kind != FaultEvent::Kind::kTransientRead &&
          fault.kind != FaultEvent::Kind::kTransientWrite) {
        // Persistent sector damage (latent / flip / torn): XOR parity is
        // single-erasure code per group, so two unhealed scripted faults in
        // ONE group would be unrecoverable by design — found the hard way
        // by the first soak sweep. Probe forward to a group this schedule
        // has not damaged yet; deterministic, so replays are unchanged.
        for (PageId probe = 0; probe < db_->num_pages(); ++probe) {
          if (!faulted_groups_[layout.GroupOf(page)]) {
            break;
          }
          page = (page + 1) % db_->num_pages();
        }
        faulted_groups_[layout.GroupOf(page)] = true;
      }
      const PhysicalLocation loc = layout.DataLocation(page);
      FaultInjector* injector = array->injector(loc.disk);
      if (injector == nullptr) {
        RecordViolation("fault injection unavailable (injectors disarmed)");
        return;
      }
      // Transient bursts stay below the retry budget (4): the policy must
      // absorb them without surfacing an error.
      const uint32_t count = std::clamp<uint32_t>(fault.b, 1, 3);
      switch (fault.kind) {
        case FaultEvent::Kind::kLatentSector:
          injector->InjectLatentSector(loc.slot);
          break;
        case FaultEvent::Kind::kTransientRead:
          injector->ScheduleTransientRead(loc.slot, count);
          break;
        case FaultEvent::Kind::kTransientWrite:
          injector->ScheduleTransientWrite(loc.slot, count);
          break;
        case FaultEvent::Kind::kBitFlip:
          injector->ScheduleBitFlip(loc.slot,
                                    db_->options().array.page_size / 2, 0x10);
          break;
        case FaultEvent::Kind::kTornWrite:
          injector->ScheduleTornWrite(loc.slot);
          break;
        default:
          break;
      }
      return;
    }
    case FaultEvent::Kind::kDiskFailRebuild:
    case FaultEvent::Kind::kDiskFailOnlineRebuild: {
      const DiskId disk = fault.a % layout.num_disks();
      if (array->DiskFailed(disk)) {
        return;  // Already gone (stacked fail events); nothing new to do.
      }
      if (!ScrubBeforeDiskFailure()) {
        return;
      }
      Status failed = db_->FailDisk(disk);
      if (!failed.ok()) {
        RecordViolation("FailDisk: " + failed.ToString());
        return;
      }
      Result<MediaRecoveryReport> report =
          fault.kind == FaultEvent::Kind::kDiskFailOnlineRebuild
              ? db_->RebuildDiskOnline(disk)
              : db_->RebuildDisk(disk);
      if (!report.ok()) {
        RecordViolation("rebuild of disk " + std::to_string(disk) +
                        " failed: " + report.status().ToString());
        return;
      }
      if (cur != nullptr && must_commit != nullptr &&
          *cur != kInvalidTxnId) {
        for (TxnId lost : report->undo_coverage_lost) {
          if (lost == *cur) {
            *must_commit = true;  // Abort would be kDataLoss; commit at EOT.
          }
        }
      }
      return;
    }
  }
}

bool Runner::ScrubBeforeDiskFailure() {
  Result<ScrubReport> scrub = db_->Scrub();
  if (!scrub.ok()) {
    RecordViolation("scrub before scheduled disk failure failed: " +
                    scrub.status().ToString());
    return false;
  }
  std::fill(faulted_groups_.begin(), faulted_groups_.end(), false);
  return true;
}

bool Runner::CommitInstead(TxnId txn, const PendingWrites& pending) {
  Status commit = db_->Commit(txn);
  if (!commit.ok()) {
    RecordViolation("commit of an undo-coverage-lost transaction failed: " +
                    commit.ToString());
    return false;
  }
  ApplyPending(pending);
  committed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Runner::RunSingleThreaded() {
  sim::WorkloadOptions workload;
  workload.num_pages = db_->num_pages();
  workload.pages_per_txn = 4;
  workload.communality = 0.5;
  workload.update_txn_fraction = 0.7;
  workload.update_probability = 0.7;
  workload.abort_probability = 0.1;
  workload.mode = schedule_.mode;
  workload.records_per_page = db_->records_per_page();
  workload.hot_window = 8;
  workload.seed = schedule_.seed;
  sim::WorkloadGenerator generator(workload);
  Random checkpoint_rng(schedule_.seed ^ 0x9e3779b97f4a7c15ULL);

  std::vector<MicroOp> ops;
  for (uint32_t t = 0; t < schedule_.num_steps; ++t) {
    const sim::TxnScript script = generator.Next();
    ops.push_back({MicroOp::Kind::kBegin, 0, 0});
    for (const sim::TxnOp& op : script.ops) {
      ops.push_back({op.is_update ? MicroOp::Kind::kWrite
                                  : MicroOp::Kind::kRead,
                     op.page, op.slot});
    }
    ops.push_back({script.client_aborts ? MicroOp::Kind::kAbort
                                        : MicroOp::Kind::kCommit,
                   0, 0});
    if (!schedule_.force && checkpoint_rng.Bernoulli(0.15)) {
      ops.push_back({MicroOp::Kind::kCheckpoint, 0, 0});
    }
  }

  const uint32_t end_step = static_cast<uint32_t>(ops.size());
  std::multimap<uint32_t, const FaultEvent*> faults_at;
  for (const FaultEvent& fault : schedule_.faults) {
    faults_at.emplace(std::min(fault.step, end_step), &fault);
  }
  std::multimap<uint32_t, const CrashPoint*> crashes_at;
  for (const CrashPoint& crash : schedule_.crash_points) {
    crashes_at.emplace(std::min(crash.step, end_step), &crash);
  }

  Random steal_rng(schedule_.seed * 0x9E3779B1ULL + 17);
  TxnId cur = kInvalidTxnId;
  bool skipping = false;     // Crash killed the active txn: seek next kBegin.
  bool must_commit = false;  // Undo coverage lost: Abort would be kDataLoss.
  PendingWrites pending;
  std::vector<uint8_t> page_bytes(db_->user_page_size());
  std::vector<uint8_t> record_bytes(record_size_);
  std::vector<uint8_t> read_buffer;

  for (uint32_t idx = 0; idx <= end_step && !Violated(); ++idx) {
    for (auto [it, end] = faults_at.equal_range(idx); it != end; ++it) {
      ApplyFault(*it->second, &cur, &must_commit);
    }
    for (auto [it, end] = crashes_at.equal_range(idx);
         it != end && !Violated(); ++it) {
      DoCrashAndRecover(it->second->recovery_faults);
      cur = kInvalidTxnId;
      pending.clear();
      must_commit = false;
      skipping = true;
    }
    if (Violated() || idx == end_step) {
      continue;
    }
    const MicroOp& op = ops[idx];
    if (std::getenv("RDA_FUZZ_TRACE") != nullptr) {
      std::fprintf(stderr, "op %u: kind=%d page=%u slot=%u txn=%llu\n", idx,
                   static_cast<int>(op.kind), op.page, op.slot,
                   static_cast<unsigned long long>(cur));
    }
    if (op.kind == MicroOp::Kind::kCheckpoint) {
      Status ckpt = db_->Checkpoint();
      if (!ckpt.ok()) {
        RecordViolation("checkpoint failed: " + ckpt.ToString());
      }
      continue;
    }
    if (skipping && op.kind != MicroOp::Kind::kBegin) {
      continue;
    }
    switch (op.kind) {
      case MicroOp::Kind::kBegin: {
        skipping = false;
        Result<TxnId> txn = db_->Begin();
        if (!txn.ok()) {
          RecordViolation("Begin failed: " + txn.status().ToString());
          break;
        }
        cur = *txn;
        pending.clear();
        must_commit = false;
        break;
      }
      case MicroOp::Kind::kWrite: {
        const uint8_t value = NextValue();
        Status write;
        if (schedule_.mode == LoggingMode::kPageLogging) {
          std::fill(page_bytes.begin(), page_bytes.end(), value);
          write = db_->WritePage(cur, op.page, page_bytes);
        } else {
          std::fill(record_bytes.begin(), record_bytes.end(), value);
          write = db_->WriteRecord(cur, op.page, op.slot, record_bytes);
        }
        if (!write.ok()) {
          RecordViolation("single-threaded write failed: " +
                          write.ToString());
          break;
        }
        pending.push_back({{op.page, op.slot}, value});
        // A steal mid-transaction is where the twin-parity scheme differs
        // from the baseline (unlogged propagation, Figure 3); take it
        // often so crashes land between steal and EOT.
        if (steal_rng.Bernoulli(0.4)) {
          if (std::getenv("RDA_FUZZ_TRACE") != nullptr) {
            std::fprintf(stderr, "  steal page %u\n", op.page);
          }
          auto* frame = db_->txn_manager()->pool()->Lookup(op.page);
          if (frame != nullptr) {
            Status steal = db_->txn_manager()->pool()->PropagateFrame(frame);
            if (!steal.ok() && !steal.IsBusy()) {
              RecordViolation("steal propagation failed: " +
                              steal.ToString());
            }
          }
        }
        break;
      }
      case MicroOp::Kind::kRead: {
        Status read =
            schedule_.mode == LoggingMode::kPageLogging
                ? db_->ReadPage(cur, op.page, &read_buffer)
                : db_->ReadRecord(cur, op.page, op.slot, &read_buffer);
        if (!read.ok()) {
          RecordViolation("single-threaded read failed: " + read.ToString());
          break;
        }
        const uint8_t expected = Expected(pending, op.page, op.slot);
        for (uint8_t byte : read_buffer) {
          if (byte != expected) {
            RecordViolation(
                "read of page " + std::to_string(op.page) + " slot " +
                std::to_string(op.slot) + " returned " +
                std::to_string(byte) + ", expected committed value " +
                std::to_string(expected));
            break;
          }
        }
        break;
      }
      case MicroOp::Kind::kCommit:
      case MicroOp::Kind::kAbort: {
        const bool want_abort =
            op.kind == MicroOp::Kind::kAbort && !must_commit;
        if (want_abort) {
          Status abort = db_->Abort(cur);
          if (abort.ok()) {
            pending.clear();
          } else if (abort.IsDataLoss()) {
            if (!CommitInstead(cur, pending)) {
              break;
            }
          } else {
            RecordViolation("abort failed: " + abort.ToString());
            break;
          }
        } else {
          Status commit = db_->Commit(cur);
          if (!commit.ok()) {
            RecordViolation("commit failed: " + commit.ToString());
            break;
          }
          ApplyPending(pending);
          committed_.fetch_add(1, std::memory_order_relaxed);
        }
        cur = kInvalidTxnId;
        pending.clear();
        must_commit = false;
        break;
      }
      case MicroOp::Kind::kCheckpoint:
        break;  // Handled above.
    }
  }
  // Always finish with a crash + recovery: NOFORCE keeps committed work in
  // the buffer pool, so only the post-recovery disk state is comparable to
  // the shadow model.
  if (!Violated()) {
    DoCrashAndRecover(0);
  }
}

void Runner::WorkerLoop(uint32_t worker, uint32_t segment_end) {
  sim::WorkloadGenerator& generator = *generators_[worker];
  PendingWrites pending;
  std::vector<uint8_t> page_bytes(db_->user_page_size());
  std::vector<uint8_t> record_bytes(record_size_);
  std::vector<uint8_t> read_buffer;
  while (!Violated()) {
    uint32_t slot = next_txn_.load(std::memory_order_relaxed);
    while (slot < segment_end &&
           !next_txn_.compare_exchange_weak(slot, slot + 1,
                                            std::memory_order_relaxed)) {
    }
    if (slot >= segment_end) {
      return;
    }
    const sim::TxnScript script = generator.Next();
    for (int attempt = 0; attempt < 10000 && !Violated(); ++attempt) {
      Result<TxnId> txn = db_->Begin();
      if (!txn.ok()) {
        RecordViolation("Begin failed: " + txn.status().ToString());
        return;
      }
      pending.clear();
      bool busy = false;
      for (const sim::TxnOp& op : script.ops) {
        Status status;
        if (op.is_update) {
          const uint8_t value = NextValue();
          if (schedule_.mode == LoggingMode::kPageLogging) {
            std::fill(page_bytes.begin(), page_bytes.end(), value);
            status = db_->WritePage(*txn, op.page, page_bytes);
          } else {
            std::fill(record_bytes.begin(), record_bytes.end(), value);
            status = db_->WriteRecord(*txn, op.page, op.slot, record_bytes);
          }
          if (status.ok()) {
            pending.push_back({{op.page, op.slot}, value});
          }
        } else {
          status = schedule_.mode == LoggingMode::kPageLogging
                       ? db_->ReadPage(*txn, op.page, &read_buffer)
                       : db_->ReadRecord(*txn, op.page, op.slot,
                                         &read_buffer);
          if (status.ok()) {
            // Partitions are disjoint, so this worker is the only writer
            // of its pages: reads must see its own committed history.
            const uint8_t expected = Expected(pending, op.page, op.slot);
            for (uint8_t byte : read_buffer) {
              if (byte != expected) {
                RecordViolation("worker " + std::to_string(worker) +
                                " read page " + std::to_string(op.page) +
                                " slot " + std::to_string(op.slot) +
                                ": got " + std::to_string(byte) +
                                ", expected " + std::to_string(expected));
                (void)db_->Abort(*txn);
                return;
              }
            }
          }
        }
        if (status.IsBusy()) {
          busy = true;
          break;
        }
        if (!status.ok()) {
          RecordViolation("worker op failed: " + status.ToString());
          return;
        }
      }
      if (busy || script.client_aborts) {
        Status abort = db_->Abort(*txn);
        if (abort.IsDataLoss()) {
          if (!CommitInstead(*txn, pending)) {
            return;
          }
          break;  // Transaction ended (committed); slot consumed.
        }
        if (!abort.ok()) {
          RecordViolation("abort failed: " + abort.ToString());
          return;
        }
        if (busy) {
          std::this_thread::yield();
          continue;  // Retry the same scripted transaction.
        }
        break;  // Clean scripted abort.
      }
      Status commit = db_->Commit(*txn);
      if (commit.IsBusy()) {
        Status abort = db_->Abort(*txn);
        if (abort.IsDataLoss()) {
          if (!CommitInstead(*txn, pending)) {
            return;
          }
          break;
        }
        if (!abort.ok()) {
          RecordViolation("abort after busy commit failed: " +
                          abort.ToString());
          return;
        }
        std::this_thread::yield();
        continue;
      }
      if (!commit.ok()) {
        RecordViolation("commit failed: " + commit.ToString());
        return;
      }
      ApplyPending(pending);
      committed_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }
}

void Runner::RunSegment(uint32_t segment_end, DiskId* pending_online_disk,
                        uint32_t online_rate) {
  std::thread rebuild_thread;
  std::unique_ptr<exec::TokenBucket> throttle;
  std::atomic<bool> rebuild_done{false};
  if (*pending_online_disk != kInvalidDiskId) {
    const DiskId disk = *pending_online_disk;
    *pending_online_disk = kInvalidDiskId;
    // Throttled so the sweep genuinely overlaps the segment's traffic and
    // foreground transactions exercise the on-demand repair path.
    throttle = std::make_unique<exec::TokenBucket>(
        std::max<uint32_t>(online_rate, 1000));
    rebuild_thread = std::thread([this, disk, &throttle, &rebuild_done] {
      OnlineRebuildOptions rebuild;
      rebuild.throttle = throttle.get();
      Result<MediaRecoveryReport> report = db_->RebuildDiskOnline(disk,
                                                                  rebuild);
      if (!report.ok()) {
        RecordViolation("online rebuild of disk " + std::to_string(disk) +
                        " failed: " + report.status().ToString());
      }
      rebuild_done.store(true, std::memory_order_release);
    });
    // Close the degraded window before traffic resumes: wait until the
    // replacement medium is installed and the pending bitmap is live (or
    // the rebuild already finished / failed).
    while (!db_->parity()->OnlineRebuildActive() &&
           !rebuild_done.load(std::memory_order_acquire) && !Violated()) {
      std::this_thread::yield();
    }
  }
  std::vector<std::thread> workers;
  workers.reserve(schedule_.threads);
  for (uint32_t w = 0; w < schedule_.threads; ++w) {
    workers.emplace_back(&Runner::WorkerLoop, this, w, segment_end);
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  if (rebuild_thread.joinable()) {
    rebuild_thread.join();
  }
}

void Runner::RunMultiThreaded() {
  const uint32_t span =
      std::max<uint32_t>(1, db_->num_pages() / schedule_.threads);
  for (uint32_t w = 0; w < schedule_.threads; ++w) {
    sim::WorkloadOptions workload;
    workload.num_pages = span;
    workload.base_page = w * span;
    workload.pages_per_txn = 4;
    workload.communality = 0.5;
    workload.update_txn_fraction = 0.7;
    workload.update_probability = 0.7;
    workload.abort_probability = 0.1;
    workload.mode = schedule_.mode;
    workload.records_per_page = db_->records_per_page();
    workload.hot_window = 8;
    workload.seed = schedule_.seed * 1000003ULL + w + 1;
    generators_.push_back(std::make_unique<sim::WorkloadGenerator>(workload));
  }

  // Events fire at transaction boundaries; faults before crashes when they
  // share a step.
  struct Event {
    uint32_t step = 0;
    const FaultEvent* fault = nullptr;
    const CrashPoint* crash = nullptr;
  };
  std::vector<Event> events;
  for (const FaultEvent& fault : schedule_.faults) {
    events.push_back({std::min(fault.step, schedule_.num_steps), &fault,
                      nullptr});
  }
  for (const CrashPoint& crash : schedule_.crash_points) {
    events.push_back({std::min(crash.step, schedule_.num_steps), nullptr,
                      &crash});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.step != b.step) {
                       return a.step < b.step;
                     }
                     return a.crash == nullptr && b.crash != nullptr;
                   });

  uint32_t current = 0;
  size_t next_event = 0;
  DiskId pending_online = kInvalidDiskId;
  uint32_t pending_online_rate = 0;
  while (!Violated() &&
         (current < schedule_.num_steps || next_event < events.size())) {
    const uint32_t target = next_event < events.size()
                                ? events[next_event].step
                                : schedule_.num_steps;
    if (target > current) {
      RunSegment(target, &pending_online, pending_online_rate);
      current = target;
      continue;
    }
    // No traffic between this event and the previous one: finish a pending
    // online rebuild synchronously before the next event lands on it.
    if (pending_online != kInvalidDiskId) {
      Result<MediaRecoveryReport> report =
          db_->RebuildDiskOnline(pending_online);
      if (!report.ok()) {
        RecordViolation("online rebuild of disk " +
                        std::to_string(pending_online) +
                        " failed: " + report.status().ToString());
      }
      pending_online = kInvalidDiskId;
      continue;
    }
    const Event& event = events[next_event++];
    if (event.fault != nullptr) {
      if (event.fault->kind == FaultEvent::Kind::kDiskFailOnlineRebuild) {
        const DiskId disk =
            event.fault->a % db_->array()->layout().num_disks();
        if (!db_->array()->DiskFailed(disk) && ScrubBeforeDiskFailure()) {
          Status failed = db_->FailDisk(disk);
          if (!failed.ok()) {
            RecordViolation("FailDisk: " + failed.ToString());
          } else {
            pending_online = disk;
            pending_online_rate = event.fault->b;
          }
        }
      } else {
        ApplyFault(*event.fault, nullptr, nullptr);
      }
    } else {
      DoCrashAndRecover(event.crash->recovery_faults);
    }
  }
  if (pending_online != kInvalidDiskId && !Violated()) {
    Result<MediaRecoveryReport> report =
        db_->RebuildDiskOnline(pending_online);
    if (!report.ok()) {
      RecordViolation("online rebuild of disk " +
                      std::to_string(pending_online) +
                      " failed: " + report.status().ToString());
    }
  }
  if (!Violated()) {
    DoCrashAndRecover(0);
  }
}

Result<RunOutcome> Runner::Run() {
  Result<std::unique_ptr<Database>> db =
      Database::Open(MakeDbOptions(schedule_, options_));
  if (!db.ok()) {
    return db.status();
  }
  db_ = std::move(db).value();
  shadow_ = std::make_unique<ShadowModel>(schedule_.mode,
                                          db_->records_per_page());
  record_size_ = db_->options().txn.record_size;
  faulted_groups_.assign(db_->array()->num_groups(), false);
  if (schedule_.threads <= 1) {
    RunSingleThreaded();
  } else {
    RunMultiThreaded();
  }
  RunOutcome outcome;
  outcome.passed = !violated_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(violation_mu_);
    outcome.violation = violation_;
  }
  outcome.committed_txns = committed_.load(std::memory_order_relaxed);
  outcome.recoveries = recoveries_;
  return outcome;
}

}  // namespace

Result<RunOutcome> RunSchedule(const Schedule& schedule,
                               const FuzzOptions& options) {
  Runner runner(schedule, options);
  return runner.Run();
}

}  // namespace rda::fuzz
