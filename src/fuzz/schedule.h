#ifndef RDA_FUZZ_SCHEDULE_H_
#define RDA_FUZZ_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "txn/transaction_manager.h"

namespace rda::fuzz {

// One scripted fault of a schedule. `step` indexes the schedule's step
// space: the flattened micro-op list in single-threaded runs, transaction
// boundaries in multi-threaded ones (see runner.h). `a`/`b` are
// kind-specific operands, kept as plain integers so a schedule stays a
// compact, order-independent value.
struct FaultEvent {
  enum class Kind : uint8_t {
    kLatentSector = 0,   // a = data page index (mod num_pages).
    kTransientRead = 1,  // a = page, b = consecutive failures (clamped <=3,
    kTransientWrite = 2, //     always below the retry budget: absorbed).
    kBitFlip = 3,        // a = page; payload corruption caught by checksum.
    kTornWrite = 4,      // a = page; next write to it is torn mid-payload.
    // Disk failure + full rebuild, as ONE event so no schedule leaves a
    // disk degraded across unrelated steps. a = disk (mod num_disks).
    kDiskFailRebuild = 5,
    // Same, but via the online (group-by-group, concurrent with traffic in
    // multi-threaded runs) rebuild path.
    kDiskFailOnlineRebuild = 6,
  };
  Kind kind = Kind::kLatentSector;
  uint32_t step = 0;
  uint32_t a = 0;
  uint32_t b = 0;

  bool operator==(const FaultEvent&) const = default;
};

// A crash at `step`. recovery_faults == 0 is a plain Crash() + Recover();
// N > 0 additionally crashes the FIRST recovery after N recovery actions
// (Database::RecoverWithInjectedFault) before recovering for real — the
// recovery-idempotence window.
struct CrashPoint {
  uint32_t step = 0;
  uint32_t recovery_faults = 0;

  bool operator==(const CrashPoint&) const = default;
};

// A deterministic, replayable fuzz schedule: everything the runner needs to
// reproduce one workload + crash/fault interleaving bit-for-bit. The text
// form (ToString/Parse) is what failing runs print, what the seed corpus
// stores, and what promoted regression tests embed:
//
//   rda-sched v1 seed=42 algo=noforce,rda,page threads=4 steps=40
//       crash=3:0,17:2 fault=latent@5:2,failon@9:0
//
// algo = {force|noforce},{rda|norda},{page|record}; crash entries are
// step:recovery_faults; fault entries are kind@step:a[:b] with kind in
// {latent,tread,twrite,flip,torn,fail,failon}.
struct Schedule {
  uint64_t seed = 1;
  bool force = true;
  bool rda = true;
  LoggingMode mode = LoggingMode::kPageLogging;
  uint32_t threads = 1;   // 1 = micro-op steps; >1 = txn-boundary steps.
  uint32_t num_steps = 20;  // Transactions drawn from the workload.
  std::vector<CrashPoint> crash_points;
  std::vector<FaultEvent> faults;

  bool operator==(const Schedule&) const = default;

  // Size measure used by the shrinker and the acceptance criteria: the
  // workload length plus every scheduled event.
  uint32_t StepCount() const {
    return num_steps + static_cast<uint32_t>(crash_points.size()) +
           static_cast<uint32_t>(faults.size());
  }

  std::string ToString() const;
  static Result<Schedule> Parse(const std::string& text);
};

}  // namespace rda::fuzz

#endif  // RDA_FUZZ_SCHEDULE_H_
