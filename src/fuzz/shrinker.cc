#include "fuzz/shrinker.h"

#include <cstddef>
#include <string>

namespace rda::fuzz {
namespace {

// Replays `candidate`; true when it still fails. Updates `violation` with
// the candidate's diagnosis on failure so the final result explains the
// minimized schedule, not the original.
Result<bool> StillFails(const Schedule& candidate, const FuzzOptions& options,
                        std::string* violation, uint32_t* runs) {
  ++*runs;
  Result<RunOutcome> outcome = RunSchedule(candidate, options);
  if (!outcome.ok()) {
    return outcome.status();
  }
  if (!outcome->passed) {
    *violation = outcome->violation;
    return true;
  }
  return false;
}

}  // namespace

Result<ShrinkResult> Shrink(const Schedule& failing,
                            const FuzzOptions& options, uint32_t max_runs) {
  ShrinkResult result;
  result.minimized = failing;
  Result<bool> seed_fails =
      StillFails(failing, options, &result.violation, &result.runs);
  if (!seed_fails.ok()) {
    return seed_fails.status();
  }
  if (!*seed_fails) {
    return Status::FailedPrecondition(
        "schedule passes the oracle; nothing to shrink");
  }

  Schedule& best = result.minimized;
  bool improved = true;
  while (improved && result.runs < max_runs) {
    improved = false;

    // Drop crash points, one at a time.
    for (size_t i = 0;
         i < best.crash_points.size() && result.runs < max_runs; ++i) {
      Schedule candidate = best;
      candidate.crash_points.erase(candidate.crash_points.begin() +
                                   static_cast<std::ptrdiff_t>(i));
      Result<bool> fails =
          StillFails(candidate, options, &result.violation, &result.runs);
      if (!fails.ok()) {
        return fails.status();
      }
      if (*fails) {
        best = candidate;
        improved = true;
        --i;  // The next crash point slid into this index.
      }
    }

    // Simplify surviving crash points: a plain crash is smaller than one
    // that also crashes mid-recovery.
    for (size_t i = 0;
         i < best.crash_points.size() && result.runs < max_runs; ++i) {
      if (best.crash_points[i].recovery_faults == 0) {
        continue;
      }
      Schedule candidate = best;
      candidate.crash_points[i].recovery_faults = 0;
      Result<bool> fails =
          StillFails(candidate, options, &result.violation, &result.runs);
      if (!fails.ok()) {
        return fails.status();
      }
      if (*fails) {
        best = candidate;
        improved = true;
      }
    }

    // Drop faults, one at a time.
    for (size_t i = 0; i < best.faults.size() && result.runs < max_runs;
         ++i) {
      Schedule candidate = best;
      candidate.faults.erase(candidate.faults.begin() +
                             static_cast<std::ptrdiff_t>(i));
      Result<bool> fails =
          StillFails(candidate, options, &result.violation, &result.runs);
      if (!fails.ok()) {
        return fails.status();
      }
      if (*fails) {
        best = candidate;
        improved = true;
        --i;
      }
    }

    // Shrink the workload: halve while that still fails, then try single
    // decrements. (Events past the new end clamp to the final step, so the
    // schedule stays well-formed.)
    while (best.num_steps > 0 && result.runs < max_runs) {
      Schedule halved = best;
      halved.num_steps = best.num_steps / 2;
      Result<bool> fails =
          StillFails(halved, options, &result.violation, &result.runs);
      if (!fails.ok()) {
        return fails.status();
      }
      if (*fails) {
        best = halved;
        improved = true;
        continue;
      }
      if (result.runs >= max_runs) {
        break;
      }
      Schedule decremented = best;
      decremented.num_steps = best.num_steps - 1;
      fails = StillFails(decremented, options, &result.violation,
                         &result.runs);
      if (!fails.ok()) {
        return fails.status();
      }
      if (*fails) {
        best = decremented;
        improved = true;
        continue;
      }
      break;
    }

    // Concurrency last: a single-threaded repro is worth more than a small
    // multi-threaded one.
    if (best.threads > 1 && result.runs < max_runs) {
      Schedule candidate = best;
      candidate.threads = 1;
      Result<bool> fails =
          StillFails(candidate, options, &result.violation, &result.runs);
      if (!fails.ok()) {
        return fails.status();
      }
      if (*fails) {
        best = candidate;
        improved = true;
      }
    }
  }
  return result;
}

}  // namespace rda::fuzz
