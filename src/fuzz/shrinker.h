#ifndef RDA_FUZZ_SHRINKER_H_
#define RDA_FUZZ_SHRINKER_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "fuzz/runner.h"
#include "fuzz/schedule.h"

namespace rda::fuzz {

struct ShrinkResult {
  Schedule minimized;      // Smallest schedule that still fails.
  std::string violation;   // The minimized schedule's oracle diagnosis.
  uint32_t runs = 0;       // Schedule executions spent shrinking.
};

// Greedy delta-debugging over the schedule's structure: repeatedly tries to
// drop crash points, drop faults, zero out mid-recovery fault injection,
// halve/decrement the step count, and collapse threads to 1 — accepting any
// candidate that still fails the oracle — until a full pass makes no
// progress or `max_runs` executions are spent. Every accepted candidate is
// a real replay, so the result is guaranteed to reproduce.
//
// Returns FailedPrecondition when `failing` does not actually fail (nothing
// to shrink), or the harness error if a replay could not run at all.
Result<ShrinkResult> Shrink(const Schedule& failing,
                            const FuzzOptions& options = {},
                            uint32_t max_runs = 300);

}  // namespace rda::fuzz

#endif  // RDA_FUZZ_SHRINKER_H_
