#include "fuzz/schedule.h"

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace rda::fuzz {
namespace {

const char* FaultName(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kLatentSector:
      return "latent";
    case FaultEvent::Kind::kTransientRead:
      return "tread";
    case FaultEvent::Kind::kTransientWrite:
      return "twrite";
    case FaultEvent::Kind::kBitFlip:
      return "flip";
    case FaultEvent::Kind::kTornWrite:
      return "torn";
    case FaultEvent::Kind::kDiskFailRebuild:
      return "fail";
    case FaultEvent::Kind::kDiskFailOnlineRebuild:
      return "failon";
  }
  return "?";
}

bool FaultKindFromName(const std::string& name, FaultEvent::Kind* out) {
  static const struct {
    const char* name;
    FaultEvent::Kind kind;
  } kTable[] = {
      {"latent", FaultEvent::Kind::kLatentSector},
      {"tread", FaultEvent::Kind::kTransientRead},
      {"twrite", FaultEvent::Kind::kTransientWrite},
      {"flip", FaultEvent::Kind::kBitFlip},
      {"torn", FaultEvent::Kind::kTornWrite},
      {"fail", FaultEvent::Kind::kDiskFailRebuild},
      {"failon", FaultEvent::Kind::kDiskFailOnlineRebuild},
  };
  for (const auto& entry : kTable) {
    if (name == entry.name) {
      *out = entry.kind;
      return true;
    }
  }
  return false;
}

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  *out = value;
  return true;
}

bool ParseU32(const std::string& text, uint32_t* out) {
  uint64_t wide = 0;
  if (!ParseU64(text, &wide) || wide > UINT32_MAX) {
    return false;
  }
  *out = static_cast<uint32_t>(wide);
  return true;
}

}  // namespace

std::string Schedule::ToString() const {
  std::ostringstream out;
  out << "rda-sched v1 seed=" << seed
      << " algo=" << (force ? "force" : "noforce") << ','
      << (rda ? "rda" : "norda") << ','
      << (mode == LoggingMode::kPageLogging ? "page" : "record")
      << " threads=" << threads << " steps=" << num_steps;
  if (!crash_points.empty()) {
    out << " crash=";
    for (size_t i = 0; i < crash_points.size(); ++i) {
      if (i > 0) {
        out << ',';
      }
      out << crash_points[i].step << ':' << crash_points[i].recovery_faults;
    }
  }
  if (!faults.empty()) {
    out << " fault=";
    for (size_t i = 0; i < faults.size(); ++i) {
      if (i > 0) {
        out << ',';
      }
      const FaultEvent& f = faults[i];
      out << FaultName(f.kind) << '@' << f.step << ':' << f.a;
      if (f.b != 0) {
        out << ':' << f.b;
      }
    }
  }
  return out.str();
}

Result<Schedule> Schedule::Parse(const std::string& text) {
  std::istringstream in(text);
  std::string token;
  if (!(in >> token) || token != "rda-sched") {
    return Status::InvalidArgument("schedule must start with 'rda-sched'");
  }
  if (!(in >> token) || token != "v1") {
    return Status::InvalidArgument("unsupported schedule version");
  }
  Schedule schedule;
  schedule.num_steps = 0;  // 'steps=' is mandatory; the default would hide
                           // a missing field.
  bool have_steps = false;
  while (in >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("malformed field: " + token);
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "seed") {
      if (!ParseU64(value, &schedule.seed)) {
        return Status::InvalidArgument("bad seed: " + value);
      }
    } else if (key == "algo") {
      const std::vector<std::string> parts = SplitOn(value, ',');
      if (parts.size() != 3) {
        return Status::InvalidArgument("algo needs force,rda,mode: " + value);
      }
      if (parts[0] == "force") {
        schedule.force = true;
      } else if (parts[0] == "noforce") {
        schedule.force = false;
      } else {
        return Status::InvalidArgument("bad force class: " + parts[0]);
      }
      if (parts[1] == "rda") {
        schedule.rda = true;
      } else if (parts[1] == "norda") {
        schedule.rda = false;
      } else {
        return Status::InvalidArgument("bad rda class: " + parts[1]);
      }
      if (parts[2] == "page") {
        schedule.mode = LoggingMode::kPageLogging;
      } else if (parts[2] == "record") {
        schedule.mode = LoggingMode::kRecordLogging;
      } else {
        return Status::InvalidArgument("bad logging mode: " + parts[2]);
      }
    } else if (key == "threads") {
      if (!ParseU32(value, &schedule.threads) || schedule.threads == 0) {
        return Status::InvalidArgument("bad threads: " + value);
      }
    } else if (key == "steps") {
      if (!ParseU32(value, &schedule.num_steps)) {
        return Status::InvalidArgument("bad steps: " + value);
      }
      have_steps = true;
    } else if (key == "crash") {
      for (const std::string& entry : SplitOn(value, ',')) {
        const std::vector<std::string> parts = SplitOn(entry, ':');
        CrashPoint crash;
        if (parts.size() != 2 || !ParseU32(parts[0], &crash.step) ||
            !ParseU32(parts[1], &crash.recovery_faults)) {
          return Status::InvalidArgument("bad crash point: " + entry);
        }
        schedule.crash_points.push_back(crash);
      }
    } else if (key == "fault") {
      for (const std::string& entry : SplitOn(value, ',')) {
        const size_t at = entry.find('@');
        if (at == std::string::npos) {
          return Status::InvalidArgument("bad fault: " + entry);
        }
        FaultEvent fault;
        if (!FaultKindFromName(entry.substr(0, at), &fault.kind)) {
          return Status::InvalidArgument("unknown fault kind: " + entry);
        }
        const std::vector<std::string> parts =
            SplitOn(entry.substr(at + 1), ':');
        if (parts.size() < 2 || parts.size() > 3 ||
            !ParseU32(parts[0], &fault.step) || !ParseU32(parts[1], &fault.a)) {
          return Status::InvalidArgument("bad fault operands: " + entry);
        }
        if (parts.size() == 3 && !ParseU32(parts[2], &fault.b)) {
          return Status::InvalidArgument("bad fault operands: " + entry);
        }
        schedule.faults.push_back(fault);
      }
    } else {
      return Status::InvalidArgument("unknown field: " + key);
    }
  }
  if (!have_steps) {
    return Status::InvalidArgument("schedule missing steps=");
  }
  return schedule;
}

}  // namespace rda::fuzz
