#ifndef RDA_FUZZ_RUNNER_H_
#define RDA_FUZZ_RUNNER_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "fuzz/schedule.h"

namespace rda::fuzz {

// Bugs the runner can plant on purpose, to prove the oracle + shrinker
// pipeline catches what it claims to catch (the acceptance demo in
// bench/fuzz_report and tests/fuzz_test).
enum class InjectedBug : uint8_t {
  kNone = 0,
  // After every successful recovery, silently zero the on-disk image of the
  // lowest page the shadow model says holds committed data — a classic
  // "recovery dropped a committed update" defect. Violates durability AND
  // parity, so either invariant alone would catch it.
  kDropRecoveredPage = 1,
};

struct FuzzOptions {
  InjectedBug bug = InjectedBug::kNone;
  // Async I/O engine width for the run's Database (0 = synchronous). The
  // corpus sweep replays every schedule through both paths; any divergence
  // the oracle can see is an engine equivalence bug.
  uint32_t io_width = 0;
};

// What one schedule execution produced. `passed` is false when any oracle
// invariant (or an engine call the schedule cannot legally provoke into
// failing) was violated; `violation` then carries the first diagnosis.
struct RunOutcome {
  bool passed = false;
  std::string violation;
  uint64_t committed_txns = 0;   // Diagnostics: workload actually executed.
  uint32_t recoveries = 0;       // Crash recoveries run (incl. the final one).
};

// Executes `schedule` against a fresh Database and checks the oracle after
// every recovery plus once at the end (always preceded by a final
// Crash+Recover, so NOFORCE configurations face the full durability check
// rather than reading their own buffer pool).
//
// threads == 1: fully deterministic. The workload's transactions are
// flattened into a micro-op list (begin / read / write / steal / commit /
// abort / checkpoint) and `step` indexes that list, so crashes land
// mid-transaction — between a steal and its EOT, inside multi-page updates
// — which is where the twin-parity undo machinery earns its keep.
//
// threads > 1: each worker drives its own deterministic workload over a
// disjoint page partition; `step` counts completed transactions and events
// fire at quiesced transaction boundaries (an online-rebuild fault runs
// concurrently with the next segment's traffic). Thread interleaving makes
// these runs deterministic only up to scheduling, like any concurrency
// test; the oracle must hold for every interleaving.
//
// A non-Ok Result means the HARNESS could not run the schedule (e.g.
// Database::Open failed) — distinct from an oracle violation.
Result<RunOutcome> RunSchedule(const Schedule& schedule,
                               const FuzzOptions& options = {});

}  // namespace rda::fuzz

#endif  // RDA_FUZZ_RUNNER_H_
