#ifndef RDA_FUZZ_ORACLE_H_
#define RDA_FUZZ_ORACLE_H_

#include <cstdint>
#include <unordered_map>

#include "common/status.h"
#include "common/types.h"
#include "core/database.h"
#include "txn/transaction_manager.h"

namespace rda::fuzz {

// The fuzzer's model of what the database MUST contain: the last committed
// uniform fill byte per page (page logging) or per (page, slot) record
// (record logging). Pages/records never written are implicitly zero — the
// formatted state — and are checked too, so lost updates AND resurrected
// ones are caught.
class ShadowModel {
 public:
  ShadowModel(LoggingMode mode, uint32_t records_per_page)
      : mode_(mode), records_per_page_(records_per_page) {}

  void CommitPage(PageId page, uint8_t value) { committed_[page] = value; }
  void CommitRecord(PageId page, RecordSlot slot, uint8_t value) {
    committed_[Key(page, slot)] = value;
  }

  uint8_t ExpectedPage(PageId page) const { return Lookup(page); }
  uint8_t ExpectedRecord(PageId page, RecordSlot slot) const {
    return Lookup(Key(page, slot));
  }

  LoggingMode mode() const { return mode_; }
  uint32_t records_per_page() const { return records_per_page_; }

 private:
  uint64_t Key(PageId page, RecordSlot slot) const {
    return static_cast<uint64_t>(page) * records_per_page_ + slot;
  }
  uint8_t Lookup(uint64_t key) const {
    auto it = committed_.find(key);
    return it == committed_.end() ? 0 : it->second;
  }

  LoggingMode mode_;
  uint32_t records_per_page_;
  std::unordered_map<uint64_t, uint8_t> committed_;
};

// Runs every invariant the fuzzer knows against a QUIESCED database that
// just finished recovery (or a full schedule). Returns the first violation
// as a non-Ok status whose message names the invariant:
//
//  1. Durability: every page/record equals the shadow model's committed
//     value — on disk (RawReadPage) for page logging, so torn or
//     half-propagated pages cannot hide behind the buffer pool; through a
//     reader transaction for record logging.
//  2. Uniformity: a page's whole user region carries one fill byte — a torn
//     page that survived recovery is a mix and fails even when its first
//     byte looks right.
//  3. Parity: Database::VerifyAllParity (XOR of every group checks out).
//  4. Twin structure: TwinParityManager::CheckInvariants (headers vs
//     directory vs shadow, Figure 7 selection, rebuild bitmap conservation).
//  5. WAL coherence: no page carries a pageLSN above the stable log's
//     flushed watermark, and commit durability never leads it.
//  6. Counter conservation: obs storage.reads/writes equal the per-disk
//     sums, and the obs XOR counter equals the array's own accounting.
Status CheckOracle(Database* db, const ShadowModel& shadow);

}  // namespace rda::fuzz

#endif  // RDA_FUZZ_ORACLE_H_
