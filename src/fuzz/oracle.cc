#include "fuzz/oracle.h"

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "storage/data_page_meta.h"

namespace rda::fuzz {
namespace {

Status Violation(const std::string& invariant, const std::string& detail) {
  return Status::Corruption("oracle: " + invariant + ": " + detail);
}

// Invariants 1, 2 and the per-page half of 5, straight off the disk image.
Status CheckPagesOnDisk(Database* db, const ShadowModel& shadow) {
  const Lsn flushed = db->log()->flushed_lsn();
  for (PageId page = 0; page < db->num_pages(); ++page) {
    Result<std::vector<uint8_t>> raw = db->RawReadPage(page);
    if (!raw.ok()) {
      return Violation("durability",
                       "page " + std::to_string(page) +
                           " unreadable: " + raw.status().ToString());
    }
    const std::vector<uint8_t>& payload = raw.value();
    const DataPageMeta meta = LoadDataMeta(payload);
    if (meta.page_lsn > flushed) {
      return Violation("wal-coherence",
                       "page " + std::to_string(page) + " pageLSN " +
                           std::to_string(meta.page_lsn) +
                           " above flushed watermark " +
                           std::to_string(flushed));
    }
    if (shadow.mode() != LoggingMode::kPageLogging) {
      continue;  // Record content is checked through the reader txn below.
    }
    const uint8_t expected = shadow.ExpectedPage(page);
    for (size_t i = kDataRegionOffset; i < payload.size(); ++i) {
      if (payload[i] != expected) {
        return Violation(
            "durability",
            "page " + std::to_string(page) + " byte " + std::to_string(i) +
                " is " + std::to_string(payload[i]) + ", committed value is " +
                std::to_string(expected) +
                (payload[i] == payload[kDataRegionOffset]
                     ? ""
                     : " (mixed fill: torn page survived recovery)"));
      }
    }
  }
  return Status::Ok();
}

// Record-mode durability through the transactional read path.
Status CheckRecords(Database* db, const ShadowModel& shadow) {
  Result<TxnId> txn = db->Begin();
  if (!txn.ok()) {
    return Violation("durability", "reader Begin: " + txn.status().ToString());
  }
  std::vector<uint8_t> record;
  for (PageId page = 0; page < db->num_pages(); ++page) {
    for (RecordSlot slot = 0; slot < shadow.records_per_page(); ++slot) {
      Status read = db->ReadRecord(*txn, page, slot, &record);
      if (!read.ok()) {
        (void)db->Abort(*txn);
        return Violation("durability", "record (" + std::to_string(page) +
                                           "," + std::to_string(slot) +
                                           ") unreadable: " + read.ToString());
      }
      const uint8_t expected = shadow.ExpectedRecord(page, slot);
      for (uint8_t byte : record) {
        if (byte != expected) {
          (void)db->Abort(*txn);
          return Violation("durability",
                           "record (" + std::to_string(page) + "," +
                               std::to_string(slot) + ") holds " +
                               std::to_string(byte) + ", committed value is " +
                               std::to_string(expected));
        }
      }
    }
  }
  Status done = db->Commit(*txn);
  if (!done.ok()) {
    return Violation("durability", "reader Commit: " + done.ToString());
  }
  return Status::Ok();
}

Status CheckCounters(Database* db) {
  if (!db->options().obs.enable_metrics) {
    return Status::Ok();
  }
  const obs::MetricsSnapshot snapshot = db->SnapshotMetrics();
  const IoCounters array = db->array()->counters();
  const uint64_t obs_xor = snapshot.CounterValue("storage.xor_computations");
  if (obs_xor != array.xor_computations) {
    return Violation("counter-conservation",
                     "obs xor " + std::to_string(obs_xor) +
                         " != array xor " +
                         std::to_string(array.xor_computations));
  }
  const uint32_t num_disks = db->array()->layout().num_disks();
  uint64_t disk_reads = 0;
  uint64_t disk_writes = 0;
  for (uint32_t d = 0; d < num_disks; ++d) {
    const std::string prefix = "storage.disk" + std::to_string(d);
    disk_reads += snapshot.CounterValue(prefix + ".reads");
    disk_writes += snapshot.CounterValue(prefix + ".writes");
  }
  const uint64_t reads = snapshot.CounterValue("storage.reads");
  const uint64_t writes = snapshot.CounterValue("storage.writes");
  if (reads != disk_reads) {
    return Violation("counter-conservation",
                     "storage.reads " + std::to_string(reads) +
                         " != per-disk sum " + std::to_string(disk_reads));
  }
  if (writes != disk_writes) {
    return Violation("counter-conservation",
                     "storage.writes " + std::to_string(writes) +
                         " != per-disk sum " + std::to_string(disk_writes));
  }
  return Status::Ok();
}

}  // namespace

Status CheckOracle(Database* db, const ShadowModel& shadow) {
  // Counter conservation first: the read-backs below add I/O on both sides
  // of each equation, so order does not affect it — but a conservation bug
  // is easier to attribute before thousands of oracle reads.
  RDA_RETURN_IF_ERROR(CheckCounters(db));

  RDA_RETURN_IF_ERROR(CheckPagesOnDisk(db, shadow));
  if (shadow.mode() == LoggingMode::kRecordLogging) {
    RDA_RETURN_IF_ERROR(CheckRecords(db, shadow));
  }

  Result<bool> parity_ok = db->VerifyAllParity();
  if (!parity_ok.ok()) {
    return Violation("parity", parity_ok.status().ToString());
  }
  if (!parity_ok.value()) {
    // Name the offending group(s): a failing soak run should hand the
    // developer something to stare at, not a bare boolean.
    std::string detail = "XOR does not match parity in group(s):";
    for (GroupId g = 0; g < db->array()->num_groups(); ++g) {
      Result<bool> one = db->parity()->VerifyGroupParity(g);
      if (one.ok() && !one.value()) {
        const GroupState state = db->parity()->directory().Get(g);
        detail += " " + std::to_string(g) +
                  (state.dirty ? " (dirty, working twin " +
                                     std::to_string(state.working_twin) +
                                     ", page " +
                                     std::to_string(state.dirty_page) + ")"
                               : " (clean, valid twin " +
                                     std::to_string(state.valid_twin) + ")");
      }
    }
    return Violation("parity", detail);
  }
  Status twins = db->parity()->CheckInvariants();
  if (!twins.ok()) {
    return Violation("twin-structure", twins.ToString());
  }

  const Lsn flushed = db->log()->flushed_lsn();
  const Lsn durable = db->log()->commit_durable_lsn();
  if (durable > flushed) {
    return Violation("wal-coherence",
                     "commit-durable watermark " + std::to_string(durable) +
                         " above flushed " + std::to_string(flushed));
  }
  return Status::Ok();
}

}  // namespace rda::fuzz
