#ifndef RDA_OBS_SCOPED_H_
#define RDA_OBS_SCOPED_H_

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace rda::obs {

// RAII wall-clock timer: records elapsed milliseconds into a histogram on
// destruction. Null-safe (a null histogram still measures, observes nothing).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  ~ScopedTimer() { Observe(histogram_, ElapsedMs()); }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

// RAII recovery-phase scope: on destruction it appends a PhaseCost (page
// transfers spent inside the scope, per `transfers_now`, plus wall clock) to
// `out`, bumps the phase's metric counters, observes the wall clock into the
// phase's `recovery.phase.<slug>.wall_us` histogram, records a
// kRecoveryPhase latency span, and emits kPhaseBegin/kPhaseEnd trace
// events. `out` is always filled — reports carry the breakdown even when
// observability is disabled; hub may be null.
class ScopedPhase {
 public:
  using TransfersFn = std::function<uint64_t()>;

  ScopedPhase(ObsHub* hub, RecoveryPhase phase, TransfersFn transfers_now,
              std::vector<PhaseCost>* out)
      : hub_(hub),
        phase_(phase),
        transfers_now_(std::move(transfers_now)),
        out_(out),
        transfers_at_start_(transfers_now_()),
        start_(std::chrono::steady_clock::now()) {
    TraceEvent begin;
    begin.subsystem = Subsystem::kRecovery;
    begin.kind = EventKind::kPhaseBegin;
    begin.detail = static_cast<int64_t>(phase_);
    Emit(TraceOf(hub_), begin);
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  ~ScopedPhase() {
    const auto end_tp = std::chrono::steady_clock::now();
    PhaseCost cost;
    cost.phase = phase_;
    cost.page_transfers = transfers_now_() - transfers_at_start_;
    cost.wall_ms =
        std::chrono::duration<double, std::milli>(end_tp - start_).count();
    if (out_ != nullptr) {
      out_->push_back(cost);
    }
    if (MetricsRegistry* registry = RegistryOf(hub_)) {
      const std::string prefix =
          std::string("recovery.phase.") + PhaseSlug(phase_);
      registry->GetCounter(prefix + ".transfers")->Add(cost.page_transfers);
      registry->GetCounter(prefix + ".runs")->Add(1);
      registry
          ->GetHistogram(prefix + ".wall_us",
                         {10, 50, 100, 500, 1000, 5000, 10000, 50000, 100000,
                          500000})
          ->Observe(cost.wall_ms * 1000.0);
    }
    if (SpanCollector* spans = SpansOf(hub_)) {
      spans->RecordInterval(SpanKind::kRecoveryPhase, start_, end_tp,
                            static_cast<int64_t>(phase_));
    }
    TraceEvent end;
    end.subsystem = Subsystem::kRecovery;
    end.kind = EventKind::kPhaseEnd;
    end.detail = static_cast<int64_t>(phase_);
    end.value = static_cast<int64_t>(cost.page_transfers);
    Emit(TraceOf(hub_), end);
  }

  // Metric-name slug for a phase ("parity_undo" etc.); shared with export.
  static const char* PhaseSlug(RecoveryPhase phase);

 private:
  ObsHub* hub_;
  RecoveryPhase phase_;
  TransfersFn transfers_now_;
  std::vector<PhaseCost>* out_;
  uint64_t transfers_at_start_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rda::obs

#endif  // RDA_OBS_SCOPED_H_
