#ifndef RDA_OBS_OBS_H_
#define RDA_OBS_OBS_H_

#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace rda::obs {

struct ObsOptions {
  bool enable_metrics = true;
  bool enable_trace = true;
  // Ring capacity of the trace buffer (oldest events dropped beyond this).
  size_t trace_capacity = 4096;
};

// The per-database observability hub: one MetricsRegistry plus one
// TraceBuffer, handed (as a nullable pointer) to every engine component via
// AttachObs. Disabled facilities return null, and instrumentation collapses
// to a pointer test — the registry-null-check flavour of
// zero-cost-when-disabled.
class ObsHub {
 public:
  explicit ObsHub(const ObsOptions& options) : options_(options) {
    if (options.enable_metrics) {
      metrics_ = std::make_unique<MetricsRegistry>();
    }
    if (options.enable_trace) {
      trace_ = std::make_unique<TraceBuffer>(options.trace_capacity);
    }
  }

  ObsHub(const ObsHub&) = delete;
  ObsHub& operator=(const ObsHub&) = delete;

  MetricsRegistry* metrics() { return metrics_.get(); }
  const MetricsRegistry* metrics() const { return metrics_.get(); }
  TraceBuffer* trace() { return trace_.get(); }
  const TraceBuffer* trace() const { return trace_.get(); }
  const ObsOptions& options() const { return options_; }

 private:
  ObsOptions options_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<TraceBuffer> trace_;
};

// Attach-time helpers: components resolve their counters once through these
// and end up with plain (possibly null) pointers for the hot path.
inline MetricsRegistry* RegistryOf(ObsHub* hub) {
  return hub != nullptr ? hub->metrics() : nullptr;
}

inline TraceBuffer* TraceOf(ObsHub* hub) {
  return hub != nullptr ? hub->trace() : nullptr;
}

inline Counter* GetCounter(ObsHub* hub, std::string_view name) {
  MetricsRegistry* registry = RegistryOf(hub);
  return registry != nullptr ? registry->GetCounter(name) : nullptr;
}

inline Gauge* GetGauge(ObsHub* hub, std::string_view name) {
  MetricsRegistry* registry = RegistryOf(hub);
  return registry != nullptr ? registry->GetGauge(name) : nullptr;
}

inline Histogram* GetHistogram(ObsHub* hub, std::string_view name,
                               std::vector<double> bounds) {
  MetricsRegistry* registry = RegistryOf(hub);
  return registry != nullptr
             ? registry->GetHistogram(name, std::move(bounds))
             : nullptr;
}

}  // namespace rda::obs

#endif  // RDA_OBS_OBS_H_
