#ifndef RDA_OBS_OBS_H_
#define RDA_OBS_OBS_H_

#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace rda::obs {

struct ObsOptions {
  bool enable_metrics = true;
  bool enable_trace = true;
  // Ring capacity of the trace buffer (oldest events dropped beyond this).
  size_t trace_capacity = 4096;
  // Latency spans: per-thread lock-free rings of ScopedSpan records.
  bool enable_spans = true;
  size_t span_ring_capacity = 1024;
  // Crash flight recorder: dumps the last `flight_last_n` spans per thread
  // plus the retained trace on fault escalation / crash-point trip. When
  // `flight_path` is empty the dump is kept in memory only (last_dump()).
  bool enable_flight = true;
  size_t flight_last_n = 64;
  std::string flight_path;
};

// The per-database observability hub: one MetricsRegistry plus one
// TraceBuffer, one SpanCollector and one FlightRecorder, handed (as a
// nullable pointer) to every engine component via AttachObs. Disabled
// facilities return null, and instrumentation collapses to a pointer test —
// the registry-null-check flavour of zero-cost-when-disabled.
class ObsHub {
 public:
  explicit ObsHub(const ObsOptions& options) : options_(options) {
    if (options.enable_metrics) {
      metrics_ = std::make_unique<MetricsRegistry>();
    }
    if (options.enable_trace) {
      trace_ = std::make_unique<TraceBuffer>(options.trace_capacity);
    }
    if (trace_ != nullptr && metrics_ != nullptr) {
      // Ring-overflow drops become a visible metric instead of silence.
      trace_->SetDroppedCounter(metrics_->GetCounter("obs.trace_dropped"));
    }
    if (options.enable_spans) {
      spans_ = std::make_unique<SpanCollector>(options.span_ring_capacity);
    }
    if (options.enable_flight) {
      flight_ = std::make_unique<FlightRecorder>(spans_.get(), trace_.get(),
                                                 options.flight_last_n);
      flight_->set_output_path(options.flight_path);
    }
  }

  ObsHub(const ObsHub&) = delete;
  ObsHub& operator=(const ObsHub&) = delete;

  MetricsRegistry* metrics() { return metrics_.get(); }
  const MetricsRegistry* metrics() const { return metrics_.get(); }
  TraceBuffer* trace() { return trace_.get(); }
  const TraceBuffer* trace() const { return trace_.get(); }
  SpanCollector* spans() { return spans_.get(); }
  const SpanCollector* spans() const { return spans_.get(); }
  FlightRecorder* flight() { return flight_.get(); }
  const FlightRecorder* flight() const { return flight_.get(); }
  const ObsOptions& options() const { return options_; }

 private:
  ObsOptions options_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<TraceBuffer> trace_;
  std::unique_ptr<SpanCollector> spans_;
  std::unique_ptr<FlightRecorder> flight_;
};

// Attach-time helpers: components resolve their counters once through these
// and end up with plain (possibly null) pointers for the hot path.
inline MetricsRegistry* RegistryOf(ObsHub* hub) {
  return hub != nullptr ? hub->metrics() : nullptr;
}

inline TraceBuffer* TraceOf(ObsHub* hub) {
  return hub != nullptr ? hub->trace() : nullptr;
}

inline SpanCollector* SpansOf(ObsHub* hub) {
  return hub != nullptr ? hub->spans() : nullptr;
}

inline FlightRecorder* FlightOf(ObsHub* hub) {
  return hub != nullptr ? hub->flight() : nullptr;
}

inline Counter* GetCounter(ObsHub* hub, std::string_view name) {
  MetricsRegistry* registry = RegistryOf(hub);
  return registry != nullptr ? registry->GetCounter(name) : nullptr;
}

inline Gauge* GetGauge(ObsHub* hub, std::string_view name) {
  MetricsRegistry* registry = RegistryOf(hub);
  return registry != nullptr ? registry->GetGauge(name) : nullptr;
}

inline Histogram* GetHistogram(ObsHub* hub, std::string_view name,
                               std::vector<double> bounds) {
  MetricsRegistry* registry = RegistryOf(hub);
  return registry != nullptr
             ? registry->GetHistogram(name, std::move(bounds))
             : nullptr;
}

}  // namespace rda::obs

#endif  // RDA_OBS_OBS_H_
