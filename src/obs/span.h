#ifndef RDA_OBS_SPAN_H_
#define RDA_OBS_SPAN_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace rda::obs {

// What a latency span measures. Kinds are flat (no per-site strings) so a
// span record stays a handful of scalars and the hot path never allocates.
enum class SpanKind : uint8_t {
  kTxnLifetime = 0,        // Begin() -> commit/abort, detail = txn id.
  kTxnCommit = 1,          // The whole Commit() call, detail = txn id.
  kCommitForcePages = 2,   // FORCE policy: propagate loop inside commit.
  kCommitWalFlush = 3,     // Commit record append + group-commit force.
  kCommitParityFinalize = 4,  // FinalizeCommit over the touched groups.
  kTxnAbort = 5,           // The whole Abort() call, detail = txn id.
  kWalFlush = 6,           // Plain Flush() (steal/checkpoint/propagation).
  kWalGroupLead = 7,       // Group-commit leader: linger + flush + delay.
  kWalGroupFollow = 8,     // Group-commit follower: wait for the leader.
  kBufferFetchMiss = 9,    // Miss path: evictions + device fetch.
  kBufferEvict = 10,       // One eviction (victim scan + propagation).
  kParityPropagate = 11,   // Twin-parity propagate of one page.
  kParityUndo = 12,        // Unlogged or logged undo of one page.
  kParityRebuild = 13,     // Reconstruction of one group member.
  kRecoveryPhase = 14,     // One RecoveryPhase, detail = phase value.
  kExecParallelFor = 15,   // One WorkerPool::ParallelFor, detail = count.
  kMaintenanceJob = 16,    // One background rebuild/scrub job, detail = disk.
};

// Dotted display name ("txn.commit", "wal.group_lead", ...), shared by the
// Chrome-trace exporter and the flight recorder.
const char* SpanKindName(SpanKind kind);

// Nanoseconds since the process trace epoch (the first call fixes the
// epoch). All span and trace timestamps share it, so exported timelines
// from different components align.
uint64_t TraceNowNs();

// One completed span. `start_ns` is TraceNowNs()-relative; `depth` is the
// nesting level at emission (0 = outermost), which lets exporters rebuild
// the stack without parent pointers.
struct SpanRecord {
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  int64_t detail = 0;
  SpanKind kind = SpanKind::kTxnCommit;
  uint16_t depth = 0;
};

// Fixed-capacity single-producer ring of SpanRecords. The owning thread
// pushes; any thread may snapshot concurrently. Each slot is a fence-free
// seqlock: the writer bumps the slot sequence to odd (acq_rel RMW), stores
// the fields (individual atomics, release), then publishes an even sequence
// with release order; readers use acquire field loads in place of a read
// fence. A reader that observes an odd or changed sequence discards the
// slot instead of blocking the writer — recording never takes a lock.
class ThreadSpanRing {
 public:
  ThreadSpanRing(uint32_t thread_index, size_t capacity);

  ThreadSpanRing(const ThreadSpanRing&) = delete;
  ThreadSpanRing& operator=(const ThreadSpanRing&) = delete;

  // Owner thread only.
  void Push(const SpanRecord& record);
  uint16_t Enter() { return static_cast<uint16_t>(depth_++); }
  void Exit() {
    if (depth_ > 0) {
      --depth_;
    }
  }

  // Owner thread only: cache of the freshest steady_clock read any span on
  // this thread took (a ctor's fresh read or a dtor's end read). A NESTED
  // histogram-less span's constructor reuses it instead of reading the
  // clock again — halving the enabled-span overhead — at an accuracy cost
  // bounded by the host code run between the cached read and the nested
  // span's entry, which for back-to-back spans is a handful of
  // instructions. Outermost (depth 0) spans always read fresh, so the
  // cache never drifts across a span tree boundary; spans that feed a
  // latency histogram also always read fresh (see ScopedSpan).
  void Stamp(std::chrono::steady_clock::time_point now) {
    last_stamp_ = now;
    has_stamp_ = true;
  }
  bool HasStamp() const { return has_stamp_; }
  std::chrono::steady_clock::time_point stamp() const { return last_stamp_; }

  // Any thread. Returns retained records oldest-first; slots caught
  // mid-write are skipped.
  std::vector<SpanRecord> Snapshot() const;

  uint32_t thread_index() const { return thread_index_; }
  std::thread::id owner() const { return owner_; }
  uint64_t recorded() const { return head_.load(std::memory_order_acquire); }
  uint64_t dropped() const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    return head > capacity_ ? head - capacity_ : 0;
  }
  size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    std::atomic<uint32_t> seq{0};  // Odd while the writer is mid-store.
    std::atomic<uint64_t> start_ns{0};
    std::atomic<uint64_t> duration_ns{0};
    std::atomic<int64_t> detail{0};
    std::atomic<uint32_t> kind_depth{0};  // kind | depth << 8.
  };

  const uint32_t thread_index_;
  const std::thread::id owner_;
  const size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};  // Spans ever pushed.
  int depth_ = 0;                  // Owner-thread nesting level.
  // Owner-thread clock cache (see Stamp); plain members on purpose.
  std::chrono::steady_clock::time_point last_stamp_;
  bool has_stamp_ = false;
};

// Owns one ThreadSpanRing per emitting thread. Ring() resolves the calling
// thread's ring through a thread-local cache keyed by a process-unique
// collector id (never reused, so a cache entry can never alias a later
// collector); only the first span a thread ever emits into a collector
// touches the collector mutex.
class SpanCollector {
 public:
  struct ThreadSpans {
    uint32_t thread_index = 0;
    uint64_t recorded = 0;
    uint64_t dropped = 0;
    std::vector<SpanRecord> spans;
  };

  explicit SpanCollector(size_t ring_capacity);

  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  // The calling thread's ring (created on first use).
  ThreadSpanRing* Ring();

  // Records an already-measured interval (used for spans whose begin and
  // end live in different calls, e.g. txn lifetime), at the calling
  // thread's current nesting depth.
  void RecordInterval(SpanKind kind,
                      std::chrono::steady_clock::time_point start,
                      std::chrono::steady_clock::time_point end,
                      int64_t detail = 0);

  // Per-thread snapshots, ordered by thread index. Safe while writers run.
  std::vector<ThreadSpans> SnapshotAll() const;

  uint64_t TotalRecorded() const;
  uint64_t TotalDropped() const;
  size_t ring_capacity() const { return capacity_; }
  uint64_t id() const { return id_; }

 private:
  const uint64_t id_;
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadSpanRing>> rings_;
};

// RAII latency span. With a null collector AND a null histogram the
// constructor and destructor do no work at all — not even a clock read —
// which is the disabled-obs fast path perf_report asserts on. With a
// histogram, the duration is also Observed in microseconds.
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanCollector* spans, SpanKind kind,
                      Histogram* histogram = nullptr, int64_t detail = 0)
      : spans_(spans), histogram_(histogram), detail_(detail), kind_(kind) {
    if (spans_ == nullptr && histogram_ == nullptr) {
      return;
    }
    if (spans_ != nullptr) {
      ring_ = spans_->Ring();
      depth_ = ring_->Enter();
      if (depth_ > 0 && histogram_ == nullptr && ring_->HasStamp()) {
        // Nested inside an already-stamped parent: reuse the thread's
        // freshest clock read instead of taking another one. Only ring
        // records tolerate the (bounded) early-start bias — a histogram
        // feeds latency percentiles that perf_report asserts on, so a
        // histogram-carrying span always reads the clock fresh.
        start_ = ring_->stamp();
      } else {
        start_ = std::chrono::steady_clock::now();
        ring_->Stamp(start_);
      }
    } else {
      start_ = std::chrono::steady_clock::now();
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan();

  // Fills in a value only known at scope exit (batch size, page count...).
  void set_detail(int64_t detail) { detail_ = detail; }

 private:
  SpanCollector* spans_;
  Histogram* histogram_;
  ThreadSpanRing* ring_ = nullptr;
  int64_t detail_;
  SpanKind kind_;
  uint16_t depth_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rda::obs

#endif  // RDA_OBS_SPAN_H_
