#include "obs/metrics.h"

#include <algorithm>

namespace rda::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {}

void Histogram::Observe(double value) {
  size_t bucket = bounds_.size();  // Overflow bucket by default.
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++buckets_[bucket];
  ++count_;
  sum_ += value;
  max_ = std::max(max_, value);
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

std::vector<uint64_t> Histogram::buckets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_;
}

double Histogram::Quantile(double q) const {
  std::vector<uint64_t> buckets;
  double max_value;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buckets = buckets_;
    max_value = max_;
  }
  return QuantileFromBuckets(bounds_, buckets, q, max_value);
}

double QuantileFromBuckets(const std::vector<double>& bounds,
                           const std::vector<uint64_t>& buckets, double q,
                           double max_value) {
  uint64_t total = 0;
  for (const uint64_t count : buckets) {
    total += count;
  }
  if (total == 0) {
    return 0;
  }
  q = std::min(std::max(q, 0.0), 1.0);
  // A single observation needs no interpolation: the tracked max IS the
  // value, so every quantile equals it (max_value 0 means "not tracked" —
  // the interpolation below is then the best available estimate).
  if (total == 1 && max_value > 0) {
    return max_value;
  }
  // No observation exceeds the tracked max, so the upper edge of the LAST
  // non-empty bucket — the one holding the max — is min(bound, max), not
  // the raw bucket bound. Without this clamp q=1 (and anything
  // interpolating into that bucket) overshoots whenever the observed max
  // falls below the last finite bound.
  size_t last_nonempty = buckets.size();
  for (size_t i = buckets.size(); i-- > 0;) {
    if (buckets[i] > 0) {
      last_nonempty = i;
      break;
    }
  }
  const double target = q * static_cast<double>(total);
  double cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) {
      continue;
    }
    const double next = cumulative + static_cast<double>(buckets[i]);
    if (next < target) {
      cumulative = next;
      continue;
    }
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    // Overflow bucket: the observed maximum is the only honest upper edge.
    double upper = i < bounds.size() ? bounds[i] : std::max(max_value, lower);
    if (i == last_nonempty && max_value > 0) {
      upper = std::max(lower, std::min(upper, max_value));
    }
    const double fraction =
        (target - cumulative) / static_cast<double>(buckets[i]);
    return lower + fraction * (upper - lower);
  }
  // q == 1 with rounding dust: the last non-empty bucket's upper edge.
  if (last_nonempty < buckets.size()) {
    double upper = last_nonempty < bounds.size() ? bounds[last_nonempty]
                                                 : max_value;
    if (max_value > 0) {
      upper = std::min(upper, max_value);
    }
    return upper;
  }
  return 0;
}

double Quantile(const MetricsSnapshot::HistogramSnapshot& histogram,
                double q) {
  return QuantileFromBuckets(histogram.bounds, histogram.buckets, q,
                             histogram.max);
}

const MetricsSnapshot::HistogramSnapshot* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const auto& histogram : histograms) {
    if (histogram.name == name) {
      return &histogram;
    }
  }
  return nullptr;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  max_ = 0;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const auto& [counter_name, value] : counters) {
    if (counter_name == name) {
      return value;
    }
  }
  return 0;
}

uint64_t MetricsSnapshot::CounterSum(std::string_view prefix) const {
  uint64_t sum = 0;
  for (const auto& [counter_name, value] : counters) {
    if (counter_name.size() >= prefix.size() &&
        std::string_view(counter_name).substr(0, prefix.size()) == prefix) {
      sum += value;
    }
  }
  return sum;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    // try_emplace constructs in place: Counter holds an atomic and is
    // neither movable nor copyable.
    it = counters_.try_emplace(std::string(name)).first;
  }
  return &it->second;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name)).first;
  }
  return &it->second;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name), std::move(bounds)).first;
  }
  return &it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter.value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge.value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramSnapshot h;
    h.name = name;
    h.bounds = histogram.bounds();
    h.buckets = histogram.buckets();
    h.count = histogram.count();
    h.sum = histogram.sum();
    h.max = histogram.max();
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter.Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge.Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram.Reset();
  }
}

}  // namespace rda::obs
