#ifndef RDA_OBS_METRICS_H_
#define RDA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rda::obs {

// A named monotonic counter. Instrumented components cache the pointer once
// (AttachObs) and increment through it on the hot path — one add, no lookup.
// A null pointer means "observability disabled"; use Inc() for null-safe
// increments. Increments are lock-free (relaxed atomics): counters are
// aggregates, not synchronization points, so concurrent writers only need
// to not lose updates.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A named point-in-time value (signed: deltas may go negative transiently).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram: `bounds` are inclusive upper bounds in ascending
// order; one extra overflow bucket catches everything above the last bound.
// Cheap enough for hot paths: Observe is a linear scan over a handful of
// bounds plus three scalar updates, under a private mutex — a histogram
// update touches four fields, so unlike Counter it cannot be a single
// atomic. The plain accessors are for quiesced readers (tests, report
// generation after the workload joined).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t count() const;
  double sum() const;
  double max() const;
  // Bucket-interpolated quantile estimate (q in [0,1]); see
  // QuantileFromBuckets for the estimation rules. 0 when empty.
  double Quantile(double q) const;
  const std::vector<double>& bounds() const { return bounds_; }
  // bounds().size() + 1 entries; the last is the overflow bucket. Snapshot
  // copy so a concurrent Observe cannot shear the read.
  std::vector<uint64_t> buckets() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<double> bounds_;  // Immutable after construction.
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double max_ = 0;
};

// A coherent copy of every metric, detached from the registry (safe to keep
// across further engine activity). Entries are sorted by name.
struct MetricsSnapshot {
  struct HistogramSnapshot {
    std::string name;
    std::vector<double> bounds;
    std::vector<uint64_t> buckets;
    uint64_t count = 0;
    double sum = 0;
    double max = 0;
  };

  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  // Value of a counter by exact name; 0 when absent.
  uint64_t CounterValue(std::string_view name) const;
  // Sum of all counters whose name starts with `prefix` (metric names follow
  // the `subsystem.name` convention, so "wal." sums the WAL subsystem).
  uint64_t CounterSum(std::string_view prefix) const;
  // Histogram snapshot by exact name; null when absent.
  const HistogramSnapshot* FindHistogram(std::string_view name) const;
};

// Bucket-interpolated quantile estimate over a fixed-bucket histogram.
// `bounds` are inclusive upper bounds; `buckets` has one extra overflow
// entry. The target rank q*count is located by cumulative count, then
// linearly interpolated inside its bucket (a bucket's observations are
// assumed uniform over [lower bound, upper bound]). The overflow bucket
// interpolates between the last bound and `max_value` — the observed
// maximum bounds the estimate instead of returning +inf. Returns 0 for an
// empty histogram; q is clamped to [0,1].
double QuantileFromBuckets(const std::vector<double>& bounds,
                           const std::vector<uint64_t>& buckets, double q,
                           double max_value);

// Convenience overload using the snapshot's own buckets and observed max.
double Quantile(const MetricsSnapshot::HistogramSnapshot& histogram,
                double q);

// Registry of named metrics. Get* creates on first use and returns a stable
// pointer (node-based map), so components resolve each name exactly once.
// Names follow the `subsystem.name` convention ("parity.unlogged_first").
// Lookups/creation are serialized by a registry mutex; the returned metric
// objects are individually thread-safe, so hot-path updates never touch the
// registry lock.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  // `bounds` is used on first creation only; later calls return the existing
  // histogram regardless of bounds.
  Histogram* GetHistogram(std::string_view name, std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

// Null-safe hot-path helpers: a disabled registry hands out null pointers
// and instrumentation collapses to one branch.
inline void Inc(Counter* counter, uint64_t delta = 1) {
  if (counter != nullptr) {
    counter->Add(delta);
  }
}

inline void Observe(Histogram* histogram, double value) {
  if (histogram != nullptr) {
    histogram->Observe(value);
  }
}

}  // namespace rda::obs

#endif  // RDA_OBS_METRICS_H_
