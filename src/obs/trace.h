#ifndef RDA_OBS_TRACE_H_
#define RDA_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/types.h"

namespace rda::obs {

// Which engine layer emitted an event.
enum class Subsystem : uint8_t {
  kStorage = 0,
  kBuffer = 1,
  kWal = 2,
  kParity = 3,
  kTxn = 4,
  kRecovery = 5,
};

// Structured event kinds. The parity transitions make the paper's two state
// machines directly observable: kGroupTransition is Figure 3 (a parity
// group moving CLEAN <-> DIRTY) and kTwinTransition is Figure 8 (one parity
// twin page moving between committed / obsolete / working / invalid).
enum class EventKind : uint8_t {
  // from_state/to_state: GroupFigState. page/txn: the covering update.
  kGroupTransition = 0,
  // detail = twin index; from_state/to_state: ParityState numeric values.
  kTwinTransition = 1,
  // A data page served (or restored) by XORing its group: page set.
  kDegradedRead = 2,
  // Media rebuild progress: detail = pages reconstructed so far on the
  // disk under rebuild (value = disk id).
  kRebuildProgress = 3,
  kDiskFailed = 4,    // value = disk id.
  kDiskReplaced = 5,  // value = disk id.
  kTxnBegin = 6,
  kTxnCommit = 7,  // value = page transfers attributed to the transaction.
  kTxnAbort = 8,   // value = page transfers attributed to the transaction.
  kSteal = 9,      // Buffer evicted a frame with uncommitted modifications.
  kCheckpoint = 10,
  kPhaseBegin = 11,  // detail = RecoveryPhase.
  kPhaseEnd = 12,    // detail = RecoveryPhase; value = page transfers spent.
  // A persistent sector-level fault (exhausted retries or checksum
  // mismatch): value = disk id.
  kIoFault = 13,
  kIoRetry = 14,  // One re-attempt after a transient error: value = disk id.
  // A faulty sector healed in place (reconstruct + write back): page/group
  // set when known; detail = 1 for a latent repair, 2 for corruption.
  kSectorRepair = 15,
  // A disk force-failed after exhausting its error budget: value = disk id.
  kEscalation = 16,
  // Maintenance health-state transition (from_state/to_state carry
  // HealthState numeric values; value = disk id when one is implicated).
  kHealthChange = 17,
  // A foreground access reconstructed a not-yet-rebuilt group during an
  // online rebuild: group set, value = disk under rebuild.
  kOnDemandRebuild = 18,
};

// Figure 3 group states (from_state/to_state of kGroupTransition).
enum class GroupFigState : uint8_t { kClean = 0, kDirty = 1 };

// Recovery phases instrumented by the crash / media / archive paths. One
// PhaseCost per phase gives the Sauer-style phase-by-phase recovery
// timeline, in the paper's own unit (page transfers) plus wall clock.
enum class RecoveryPhase : uint8_t {
  kDirectoryRebuild = 0,  // Current_Parity, Figure 7 (the S/N term).
  kAnalysis = 1,          // Log scan, winner/loser determination.
  kRollForward = 2,       // Finalize winner twins.
  kChainAudit = 3,        // TWIST chain walk of losers.
  kLoggedUndo = 4,        // Before-images, reverse LSN order.
  kParityUndo = 5,        // Figure 6 twin-parity undo.
  kRedo = 6,              // Committed after-images, LSN order.
  kLoserResolution = 7,   // AbortComplete records + flush.
  kMediaRebuild = 8,      // Per-group reconstruction of a replaced disk.
  kArchiveRestore = 9,    // Snapshot rewrite of every data page.
  kParityReinit = 10,     // Recompute all parity from restored data.
};

struct PhaseCost {
  RecoveryPhase phase = RecoveryPhase::kAnalysis;
  uint64_t page_transfers = 0;
  double wall_ms = 0;
};

// One trace record. `tick` is a monotone operation tick assigned by the
// buffer at Record() time — the engine is a discrete-event simulator, so an
// ordering tick is the honest timestamp. `wall_ns` (also stamped at
// Record(), nanoseconds since the shared trace epoch — see TraceNowNs in
// span.h) aligns events with latency spans on exported timelines.
// detail/value carry kind-specific scalars (documented at each EventKind).
struct TraceEvent {
  uint64_t tick = 0;
  uint64_t wall_ns = 0;
  Subsystem subsystem = Subsystem::kStorage;
  EventKind kind = EventKind::kGroupTransition;
  PageId page = kInvalidPageId;
  GroupId group = kInvalidGroupId;
  TxnId txn = kInvalidTxnId;
  int64_t detail = 0;
  int64_t value = 0;
  uint8_t from_state = 0;
  uint8_t to_state = 0;
};

// Forward-declared: counting dropped events must not pull metrics.h into
// every trace consumer.
class Counter;

// Bounded ring buffer of TraceEvents. When full, the oldest events are
// overwritten and counted as dropped — tracing never blocks unboundedly or
// grows. A ring mutex serializes writers from different threads; the tick
// stays a total order over all recorded events.
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  // Stamps `event` with the next tick, stores it, returns the tick.
  uint64_t Record(TraceEvent event);

  // Optional overflow counter (the hub wires "obs.trace_dropped"): bumped
  // once per event overwritten by a wrapping Record. Null detaches.
  void SetDroppedCounter(Counter* counter);

  // Events currently retained, in chronological order.
  std::vector<TraceEvent> Events() const;

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t total_recorded() const;
  uint64_t dropped() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t capacity_;
  size_t next_ = 0;     // Next write position.
  uint64_t total_ = 0;  // Events ever recorded.
  Counter* dropped_counter_ = nullptr;  // Guarded by mu_.
};

// Null-safe helper mirroring obs::Inc for counters.
inline void Emit(TraceBuffer* trace, const TraceEvent& event) {
  if (trace != nullptr) {
    trace->Record(event);
  }
}

}  // namespace rda::obs

#endif  // RDA_OBS_TRACE_H_
