#include "obs/export.h"

#include <cinttypes>
#include <cstdio>

#include "obs/scoped.h"

namespace rda::obs {
namespace {

void AppendU64(std::string* out, uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  *out += buffer;
}

void AppendI64(std::string* out, int64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%" PRId64, value);
  *out += buffer;
}

void AppendDouble(std::string* out, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  *out += buffer;
}

void AppendKey(std::string* out, std::string_view key) {
  *out += '"';
  AppendJsonEscaped(out, key);
  *out += "\":";
}

}  // namespace

void AppendJsonEscaped(std::string* out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          *out += buffer;
        } else {
          *out += c;
        }
    }
  }
}

const char* SubsystemName(Subsystem subsystem) {
  switch (subsystem) {
    case Subsystem::kStorage:
      return "storage";
    case Subsystem::kBuffer:
      return "buffer";
    case Subsystem::kWal:
      return "wal";
    case Subsystem::kParity:
      return "parity";
    case Subsystem::kTxn:
      return "txn";
    case Subsystem::kRecovery:
      return "recovery";
  }
  return "unknown";
}

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kGroupTransition:
      return "group_transition";
    case EventKind::kTwinTransition:
      return "twin_transition";
    case EventKind::kDegradedRead:
      return "degraded_read";
    case EventKind::kRebuildProgress:
      return "rebuild_progress";
    case EventKind::kDiskFailed:
      return "disk_failed";
    case EventKind::kDiskReplaced:
      return "disk_replaced";
    case EventKind::kTxnBegin:
      return "txn_begin";
    case EventKind::kTxnCommit:
      return "txn_commit";
    case EventKind::kTxnAbort:
      return "txn_abort";
    case EventKind::kSteal:
      return "steal";
    case EventKind::kCheckpoint:
      return "checkpoint";
    case EventKind::kPhaseBegin:
      return "phase_begin";
    case EventKind::kPhaseEnd:
      return "phase_end";
    case EventKind::kIoFault:
      return "io_fault";
    case EventKind::kIoRetry:
      return "io_retry";
    case EventKind::kSectorRepair:
      return "sector_repair";
    case EventKind::kEscalation:
      return "escalation";
    case EventKind::kHealthChange:
      return "health_change";
    case EventKind::kOnDemandRebuild:
      return "on_demand_rebuild";
  }
  return "unknown";
}

const char* ParityStateName(uint8_t state) {
  // Values match storage/page.h ParityState.
  switch (state) {
    case 0:
      return "free";
    case 1:
      return "committed";
    case 2:
      return "obsolete";
    case 3:
      return "working";
    case 4:
      return "invalid";
  }
  return "unknown";
}

const char* GroupStateName(uint8_t state) {
  switch (state) {
    case 0:
      return "clean";
    case 1:
      return "dirty";
  }
  return "unknown";
}

const char* RecoveryPhaseName(RecoveryPhase phase) {
  return ScopedPhase::PhaseSlug(phase);
}

const char* ScopedPhase::PhaseSlug(RecoveryPhase phase) {
  switch (phase) {
    case RecoveryPhase::kDirectoryRebuild:
      return "directory_rebuild";
    case RecoveryPhase::kAnalysis:
      return "analysis";
    case RecoveryPhase::kRollForward:
      return "roll_forward";
    case RecoveryPhase::kChainAudit:
      return "chain_audit";
    case RecoveryPhase::kLoggedUndo:
      return "logged_undo";
    case RecoveryPhase::kParityUndo:
      return "parity_undo";
    case RecoveryPhase::kRedo:
      return "redo";
    case RecoveryPhase::kLoserResolution:
      return "loser_resolution";
    case RecoveryPhase::kMediaRebuild:
      return "media_rebuild";
    case RecoveryPhase::kArchiveRestore:
      return "archive_restore";
    case RecoveryPhase::kParityReinit:
      return "parity_reinit";
  }
  return "unknown";
}

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{";
  AppendKey(&out, "counters");
  out += '{';
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendKey(&out, name);
    AppendU64(&out, value);
  }
  out += "},";
  AppendKey(&out, "gauges");
  out += '{';
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendKey(&out, name);
    AppendI64(&out, value);
  }
  out += "},";
  AppendKey(&out, "histograms");
  out += '{';
  first = true;
  for (const auto& histogram : snapshot.histograms) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendKey(&out, histogram.name);
    out += '{';
    AppendKey(&out, "bounds");
    out += '[';
    for (size_t i = 0; i < histogram.bounds.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      AppendDouble(&out, histogram.bounds[i]);
    }
    out += "],";
    AppendKey(&out, "buckets");
    out += '[';
    for (size_t i = 0; i < histogram.buckets.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      AppendU64(&out, histogram.buckets[i]);
    }
    out += "],";
    AppendKey(&out, "count");
    AppendU64(&out, histogram.count);
    out += ',';
    AppendKey(&out, "sum");
    AppendDouble(&out, histogram.sum);
    out += ',';
    AppendKey(&out, "max");
    AppendDouble(&out, histogram.max);
    out += '}';
  }
  out += "}}";
  return out;
}

std::string MetricsToCsv(const MetricsSnapshot& snapshot) {
  std::string out = "kind,name,value\n";
  for (const auto& [name, value] : snapshot.counters) {
    out += "counter,";
    out += name;
    out += ',';
    AppendU64(&out, value);
    out += '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += "gauge,";
    out += name;
    out += ',';
    AppendI64(&out, value);
    out += '\n';
  }
  for (const auto& histogram : snapshot.histograms) {
    out += "histogram," + histogram.name + ".count,";
    AppendU64(&out, histogram.count);
    out += '\n';
    out += "histogram," + histogram.name + ".sum,";
    AppendDouble(&out, histogram.sum);
    out += '\n';
    out += "histogram," + histogram.name + ".max,";
    AppendDouble(&out, histogram.max);
    out += '\n';
    for (size_t i = 0; i < histogram.buckets.size(); ++i) {
      out += "histogram," + histogram.name + ".le_";
      if (i < histogram.bounds.size()) {
        AppendDouble(&out, histogram.bounds[i]);
      } else {
        out += "inf";
      }
      out += ',';
      AppendU64(&out, histogram.buckets[i]);
      out += '\n';
    }
  }
  return out;
}

namespace {

void AppendMicros(std::string* out, uint64_t ns) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.3f",
                static_cast<double>(ns) / 1000.0);
  *out += buffer;
}

}  // namespace

std::string ChromeTraceJson(const SpanCollector* spans,
                            const TraceBuffer* trace) {
  std::string out = "{";
  AppendKey(&out, "displayTimeUnit");
  out += "\"ms\",";
  AppendKey(&out, "traceEvents");
  out += '[';
  bool first = true;
  auto comma = [&out, &first]() {
    if (!first) {
      out += ',';
    }
    first = false;
  };
  // One metadata event names the process for the Perfetto track header.
  comma();
  out +=
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"rda\"}}";
  if (spans != nullptr) {
    for (const auto& thread : spans->SnapshotAll()) {
      for (const SpanRecord& span : thread.spans) {
        comma();
        out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
        AppendU64(&out, thread.thread_index + 1);
        out += ",\"cat\":\"span\",\"name\":\"";
        out += SpanKindName(span.kind);
        out += "\",\"ts\":";
        AppendMicros(&out, span.start_ns);
        out += ",\"dur\":";
        AppendMicros(&out, span.duration_ns);
        out += ",\"args\":{\"depth\":";
        AppendU64(&out, span.depth);
        if (span.detail != 0) {
          out += ",\"detail\":";
          AppendI64(&out, span.detail);
        }
        out += "}}";
      }
    }
  }
  if (trace != nullptr) {
    for (const TraceEvent& event : trace->Events()) {
      comma();
      out += "{\"ph\":\"i\",\"s\":\"p\",\"pid\":1,\"tid\":0,\"cat\":\"";
      out += SubsystemName(event.subsystem);
      out += "\",\"name\":\"";
      out += EventKindName(event.kind);
      out += "\",\"ts\":";
      AppendMicros(&out, event.wall_ns);
      out += ",\"args\":{\"tick\":";
      AppendU64(&out, event.tick);
      if (event.page != kInvalidPageId) {
        out += ",\"page\":";
        AppendU64(&out, event.page);
      }
      if (event.txn != kInvalidTxnId) {
        out += ",\"txn\":";
        AppendU64(&out, event.txn);
      }
      out += "}}";
    }
  }
  out += "]}";
  return out;
}

std::string TraceToJson(const TraceBuffer& trace) {
  std::string out = "{";
  AppendKey(&out, "total_recorded");
  AppendU64(&out, trace.total_recorded());
  out += ',';
  AppendKey(&out, "dropped");
  AppendU64(&out, trace.dropped());
  out += ',';
  AppendKey(&out, "events");
  out += '[';
  bool first = true;
  for (const TraceEvent& event : trace.Events()) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '{';
    AppendKey(&out, "tick");
    AppendU64(&out, event.tick);
    out += ',';
    AppendKey(&out, "subsystem");
    out += '"';
    out += SubsystemName(event.subsystem);
    out += "\",";
    AppendKey(&out, "kind");
    out += '"';
    out += EventKindName(event.kind);
    out += '"';
    if (event.page != kInvalidPageId) {
      out += ',';
      AppendKey(&out, "page");
      AppendU64(&out, event.page);
    }
    if (event.group != kInvalidGroupId) {
      out += ',';
      AppendKey(&out, "group");
      AppendU64(&out, event.group);
    }
    if (event.txn != kInvalidTxnId) {
      out += ',';
      AppendKey(&out, "txn");
      AppendU64(&out, event.txn);
    }
    switch (event.kind) {
      case EventKind::kGroupTransition:
        out += ',';
        AppendKey(&out, "from");
        out += '"';
        out += GroupStateName(event.from_state);
        out += "\",";
        AppendKey(&out, "to");
        out += '"';
        out += GroupStateName(event.to_state);
        out += '"';
        break;
      case EventKind::kTwinTransition:
        out += ',';
        AppendKey(&out, "twin");
        AppendI64(&out, event.detail);
        out += ',';
        AppendKey(&out, "from");
        out += '"';
        out += ParityStateName(event.from_state);
        out += "\",";
        AppendKey(&out, "to");
        out += '"';
        out += ParityStateName(event.to_state);
        out += '"';
        break;
      case EventKind::kPhaseBegin:
      case EventKind::kPhaseEnd:
        out += ',';
        AppendKey(&out, "phase");
        out += '"';
        out += RecoveryPhaseName(static_cast<RecoveryPhase>(event.detail));
        out += '"';
        if (event.kind == EventKind::kPhaseEnd) {
          out += ',';
          AppendKey(&out, "transfers");
          AppendI64(&out, event.value);
        }
        break;
      case EventKind::kSteal:
        out += ',';
        AppendKey(&out, "modifiers");
        AppendI64(&out, event.detail);
        break;
      case EventKind::kTxnCommit:
      case EventKind::kTxnAbort:
        out += ',';
        AppendKey(&out, "transfers");
        AppendI64(&out, event.value);
        break;
      default:
        if (event.detail != 0) {
          out += ',';
          AppendKey(&out, "detail");
          AppendI64(&out, event.detail);
        }
        if (event.value != 0) {
          out += ',';
          AppendKey(&out, "value");
          AppendI64(&out, event.value);
        }
        break;
    }
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace rda::obs
