#ifndef RDA_OBS_EXPORT_H_
#define RDA_OBS_EXPORT_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace rda::obs {

// Human/state names used by both exporters and tests.
const char* SubsystemName(Subsystem subsystem);
const char* EventKindName(EventKind kind);
// Numeric ParityState (storage/page.h values) -> name; also covers the
// GroupFigState values used by kGroupTransition via `group_transition`.
const char* ParityStateName(uint8_t state);
const char* GroupStateName(uint8_t state);
const char* RecoveryPhaseName(RecoveryPhase phase);

// Metrics -> JSON object:
//   {"counters":{"name":v,...},"gauges":{...},
//    "histograms":{"name":{"bounds":[...],"buckets":[...],
//                          "count":c,"sum":s,"max":m},...}}
std::string MetricsToJson(const MetricsSnapshot& snapshot);

// Metrics -> CSV lines: `kind,name,value` (histograms flattened to
// `histogram,name.count` / `.sum` / `.max` / `.le_<bound>` rows).
std::string MetricsToCsv(const MetricsSnapshot& snapshot);

// Trace -> JSON object:
//   {"total_recorded":n,"dropped":d,"events":[{...},...]}
// Transition events render their from/to states as names.
std::string TraceToJson(const TraceBuffer& trace);

// Spans (+ optionally trace events) -> Chrome Trace Event Format, loadable
// in Perfetto / chrome://tracing: complete ("ph":"X") events per span with
// microsecond ts/dur on one track per emitting thread (nesting reconstructs
// from containment), plus instant ("ph":"i") events for the retained
// TraceBuffer entries on track 0. Either pointer may be null.
std::string ChromeTraceJson(const SpanCollector* spans,
                            const TraceBuffer* trace);

// Minimal JSON string escaping, exposed for bench report writers.
void AppendJsonEscaped(std::string* out, std::string_view text);

}  // namespace rda::obs

#endif  // RDA_OBS_EXPORT_H_
