#include "obs/flight.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <utility>

#include "obs/export.h"

namespace rda::obs {
namespace {

void AppendU64(std::string* out, uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  *out += buffer;
}

void AppendI64(std::string* out, int64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%" PRId64, value);
  *out += buffer;
}

void AppendMicros(std::string* out, uint64_t ns) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.3f",
                static_cast<double>(ns) / 1000.0);
  *out += buffer;
}

void AppendKey(std::string* out, std::string_view key) {
  *out += '"';
  AppendJsonEscaped(out, key);
  *out += "\":";
}

}  // namespace

FlightRecorder::FlightRecorder(SpanCollector* spans, TraceBuffer* trace,
                               size_t last_n)
    : spans_(spans), trace_(trace), last_n_(last_n == 0 ? 1 : last_n) {}

void FlightRecorder::set_output_path(std::string path) {
  std::lock_guard<std::mutex> lock(mu_);
  path_ = std::move(path);
}

std::string FlightRecorder::output_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return path_;
}

std::string FlightRecorder::BuildDump(std::string_view reason) const {
  std::string out = "{";
  AppendKey(&out, "reason");
  out += '"';
  AppendJsonEscaped(&out, reason);
  out += "\",";
  AppendKey(&out, "trigger");
  AppendU64(&out, triggers_.load(std::memory_order_relaxed));
  out += ',';
  AppendKey(&out, "last_n");
  AppendU64(&out, last_n_);
  out += ',';
  AppendKey(&out, "threads");
  out += '[';
  if (spans_ != nullptr) {
    bool first_thread = true;
    for (const auto& thread : spans_->SnapshotAll()) {
      if (!first_thread) {
        out += ',';
      }
      first_thread = false;
      out += '{';
      AppendKey(&out, "thread");
      AppendU64(&out, thread.thread_index);
      out += ',';
      AppendKey(&out, "recorded");
      AppendU64(&out, thread.recorded);
      out += ',';
      AppendKey(&out, "dropped");
      AppendU64(&out, thread.dropped);
      out += ',';
      AppendKey(&out, "spans");
      out += '[';
      const size_t begin =
          thread.spans.size() > last_n_ ? thread.spans.size() - last_n_ : 0;
      for (size_t i = begin; i < thread.spans.size(); ++i) {
        const SpanRecord& span = thread.spans[i];
        if (i > begin) {
          out += ',';
        }
        out += '{';
        AppendKey(&out, "name");
        out += '"';
        out += SpanKindName(span.kind);
        out += "\",";
        AppendKey(&out, "start_us");
        AppendMicros(&out, span.start_ns);
        out += ',';
        AppendKey(&out, "dur_us");
        AppendMicros(&out, span.duration_ns);
        out += ',';
        AppendKey(&out, "depth");
        AppendU64(&out, span.depth);
        if (span.detail != 0) {
          out += ',';
          AppendKey(&out, "detail");
          AppendI64(&out, span.detail);
        }
        out += '}';
      }
      out += "]}";
    }
  }
  out += "],";
  AppendKey(&out, "trace");
  if (trace_ != nullptr) {
    out += TraceToJson(*trace_);
  } else {
    out += "null";
  }
  out += '}';
  return out;
}

void FlightRecorder::Trigger(std::string_view reason) {
  triggers_.fetch_add(1, std::memory_order_relaxed);
  std::string dump = BuildDump(reason);
  std::lock_guard<std::mutex> lock(mu_);
  last_dump_ = std::move(dump);
  last_reason_ = std::string(reason);
  if (!path_.empty()) {
    std::ofstream file(path_, std::ios::trunc);
    if (file.is_open()) {
      file << last_dump_;
    }
  }
}

std::string FlightRecorder::last_dump() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_dump_;
}

std::string FlightRecorder::last_reason() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_reason_;
}

}  // namespace rda::obs
