#ifndef RDA_OBS_FLIGHT_H_
#define RDA_OBS_FLIGHT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/span.h"
#include "obs/trace.h"

namespace rda::obs {

// Crash flight recorder: when a fault escalates (a disk force-failed after
// exhausting its error budget) or an injected crash-point trips during
// recovery, it captures the last N spans per thread plus the retained trace
// events into a post-mortem JSON — the timeline that led into the failure,
// already in memory, dumped before it scrolls away. Spans and trace may be
// null (that facility disabled); the dump simply omits them.
class FlightRecorder {
 public:
  FlightRecorder(SpanCollector* spans, TraceBuffer* trace, size_t last_n);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // When set, every Trigger also writes the dump to this file (overwriting:
  // the latest trigger is the one closest to the failure).
  void set_output_path(std::string path);
  std::string output_path() const;

  // Builds the dump JSON without triggering (used by tests and exporters).
  std::string BuildDump(std::string_view reason) const;

  // Captures and stores a dump, writes it to output_path() if set.
  void Trigger(std::string_view reason);

  uint64_t trigger_count() const {
    return triggers_.load(std::memory_order_relaxed);
  }
  std::string last_dump() const;
  std::string last_reason() const;

 private:
  SpanCollector* const spans_;
  TraceBuffer* const trace_;
  const size_t last_n_;
  std::atomic<uint64_t> triggers_{0};
  mutable std::mutex mu_;
  std::string path_;
  std::string last_dump_;
  std::string last_reason_;
};

// Null-safe trigger helper mirroring obs::Inc / obs::Emit.
inline void TriggerFlight(FlightRecorder* flight, std::string_view reason) {
  if (flight != nullptr) {
    flight->Trigger(reason);
  }
}

}  // namespace rda::obs

#endif  // RDA_OBS_FLIGHT_H_
