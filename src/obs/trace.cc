#include "obs/trace.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/span.h"

namespace rda::obs {

TraceBuffer::TraceBuffer(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {
  ring_.reserve(std::min<size_t>(capacity_, 1024));
}

uint64_t TraceBuffer::Record(TraceEvent event) {
  event.wall_ns = TraceNowNs();
  std::lock_guard<std::mutex> lock(mu_);
  event.tick = ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
    next_ = (next_ + 1) % capacity_;
    if (dropped_counter_ != nullptr) {
      dropped_counter_->Add(1);
    }
  }
  return event.tick;
}

void TraceBuffer::SetDroppedCounter(Counter* counter) {
  std::lock_guard<std::mutex> lock(mu_);
  dropped_counter_ = counter;
}

size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t TraceBuffer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - ring_.size();
}

std::vector<TraceEvent> TraceBuffer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Once wrapped, `next_` points at the oldest retained event.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

}  // namespace rda::obs
