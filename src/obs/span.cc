#include "obs/span.h"

#include <algorithm>

namespace rda::obs {
namespace {

std::chrono::steady_clock::time_point TraceEpoch() {
  // Magic-static: the first caller (from any thread) fixes the epoch.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

uint64_t NsSinceEpoch(std::chrono::steady_clock::time_point tp) {
  const auto delta = tp - TraceEpoch();
  if (delta.count() < 0) {
    return 0;  // A caller raced the epoch-fixing first call.
  }
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(delta).count());
}

}  // namespace

uint64_t TraceNowNs() { return NsSinceEpoch(std::chrono::steady_clock::now()); }

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kTxnLifetime:
      return "txn.lifetime";
    case SpanKind::kTxnCommit:
      return "txn.commit";
    case SpanKind::kCommitForcePages:
      return "commit.force_pages";
    case SpanKind::kCommitWalFlush:
      return "commit.wal_flush";
    case SpanKind::kCommitParityFinalize:
      return "commit.parity_finalize";
    case SpanKind::kTxnAbort:
      return "txn.abort";
    case SpanKind::kWalFlush:
      return "wal.flush";
    case SpanKind::kWalGroupLead:
      return "wal.group_lead";
    case SpanKind::kWalGroupFollow:
      return "wal.group_follow";
    case SpanKind::kBufferFetchMiss:
      return "buffer.fetch_miss";
    case SpanKind::kBufferEvict:
      return "buffer.evict";
    case SpanKind::kParityPropagate:
      return "parity.propagate";
    case SpanKind::kParityUndo:
      return "parity.undo";
    case SpanKind::kParityRebuild:
      return "parity.rebuild";
    case SpanKind::kRecoveryPhase:
      return "recovery.phase";
    case SpanKind::kExecParallelFor:
      return "exec.parallel_for";
    case SpanKind::kMaintenanceJob:
      return "maintenance.job";
  }
  return "unknown";
}

ThreadSpanRing::ThreadSpanRing(uint32_t thread_index, size_t capacity)
    : thread_index_(thread_index),
      owner_(std::this_thread::get_id()),
      capacity_(std::max<size_t>(capacity, 1)),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

void ThreadSpanRing::Push(const SpanRecord& record) {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  Slot& slot = slots_[head % capacity_];
  // Fence-free seqlock write (GCC's TSan cannot model thread fences): the
  // odd marker is an acq_rel RMW whose acquire half pins the field stores
  // below it, the field stores are release so a reader's acquire load of
  // any mid-write value happens-after the odd marker — forcing the
  // reader's sequence re-check to observe the odd sequence and discard.
  const uint32_t seq = slot.seq.fetch_add(1, std::memory_order_acq_rel);
  slot.start_ns.store(record.start_ns, std::memory_order_release);
  slot.duration_ns.store(record.duration_ns, std::memory_order_release);
  slot.detail.store(record.detail, std::memory_order_release);
  slot.kind_depth.store(static_cast<uint32_t>(record.kind) |
                            (static_cast<uint32_t>(record.depth) << 8),
                        std::memory_order_release);
  slot.seq.store(seq + 2, std::memory_order_release);
  head_.store(head + 1, std::memory_order_release);
}

std::vector<SpanRecord> ThreadSpanRing::Snapshot() const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t first = head > capacity_ ? head - capacity_ : 0;
  std::vector<SpanRecord> out;
  out.reserve(static_cast<size_t>(head - first));
  for (uint64_t i = first; i < head; ++i) {
    const Slot& slot = slots_[i % capacity_];
    const uint32_t seq_before = slot.seq.load(std::memory_order_acquire);
    if (seq_before % 2 != 0) {
      continue;  // Writer mid-store; the slot's old value is already gone.
    }
    SpanRecord record;
    // Acquire field loads: each orders the sequence re-check below after
    // itself (the fence-free counterpart of a read fence), and pairs with
    // the writer's release field stores so reading any mid-write value
    // happens-after the writer's odd marker.
    record.start_ns = slot.start_ns.load(std::memory_order_acquire);
    record.duration_ns = slot.duration_ns.load(std::memory_order_acquire);
    record.detail = slot.detail.load(std::memory_order_acquire);
    const uint32_t kind_depth =
        slot.kind_depth.load(std::memory_order_acquire);
    record.kind = static_cast<SpanKind>(kind_depth & 0xff);
    record.depth = static_cast<uint16_t>(kind_depth >> 8);
    if (slot.seq.load(std::memory_order_relaxed) != seq_before) {
      continue;  // Overwritten while reading; drop the torn record.
    }
    out.push_back(record);
  }
  return out;
}

namespace {

// Collector ids are process-unique and never reused, so a stale
// thread-local cache entry can never match a newer collector.
std::atomic<uint64_t> g_next_collector_id{1};

struct RingCache {
  uint64_t collector_id = 0;
  ThreadSpanRing* ring = nullptr;
};

thread_local RingCache tls_ring_cache;

}  // namespace

SpanCollector::SpanCollector(size_t ring_capacity)
    : id_(g_next_collector_id.fetch_add(1, std::memory_order_relaxed)),
      capacity_(std::max<size_t>(ring_capacity, 1)) {}

ThreadSpanRing* SpanCollector::Ring() {
  if (tls_ring_cache.collector_id == id_) {
    return tls_ring_cache.ring;
  }
  std::lock_guard<std::mutex> lock(mu_);
  const std::thread::id self = std::this_thread::get_id();
  ThreadSpanRing* ring = nullptr;
  for (const auto& existing : rings_) {
    if (existing->owner() == self) {
      ring = existing.get();
      break;
    }
  }
  if (ring == nullptr) {
    rings_.push_back(std::make_unique<ThreadSpanRing>(
        static_cast<uint32_t>(rings_.size()), capacity_));
    ring = rings_.back().get();
  }
  tls_ring_cache = {id_, ring};
  return ring;
}

void SpanCollector::RecordInterval(
    SpanKind kind, std::chrono::steady_clock::time_point start,
    std::chrono::steady_clock::time_point end, int64_t detail) {
  if (end < start) {
    end = start;
  }
  ThreadSpanRing* ring = Ring();
  SpanRecord record;
  record.start_ns = NsSinceEpoch(start);
  record.duration_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
  record.detail = detail;
  record.kind = kind;
  record.depth = static_cast<uint16_t>(ring->Enter());
  ring->Exit();
  ring->Push(record);
}

std::vector<SpanCollector::ThreadSpans> SpanCollector::SnapshotAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ThreadSpans> out;
  out.reserve(rings_.size());
  for (const auto& ring : rings_) {
    ThreadSpans spans;
    spans.thread_index = ring->thread_index();
    spans.recorded = ring->recorded();
    spans.dropped = ring->dropped();
    spans.spans = ring->Snapshot();
    out.push_back(std::move(spans));
  }
  return out;
}

uint64_t SpanCollector::TotalRecorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->recorded();
  }
  return total;
}

uint64_t SpanCollector::TotalDropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->dropped();
  }
  return total;
}

ScopedSpan::~ScopedSpan() {
  if (spans_ == nullptr && histogram_ == nullptr) {
    return;
  }
  const auto end = std::chrono::steady_clock::now();
  const uint64_t duration_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
          .count());
  if (ring_ != nullptr) {
    ring_->Stamp(end);  // Later siblings' constructors reuse this read.
    ring_->Exit();
    SpanRecord record;
    record.start_ns = NsSinceEpoch(start_);
    record.duration_ns = duration_ns;
    record.detail = detail_;
    record.kind = kind_;
    record.depth = depth_;
    ring_->Push(record);
  }
  Observe(histogram_, static_cast<double>(duration_ns) / 1000.0);
}

}  // namespace rda::obs
