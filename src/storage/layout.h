#ifndef RDA_STORAGE_LAYOUT_H_
#define RDA_STORAGE_LAYOUT_H_

#include <cstdint>

#include "common/types.h"

namespace rda {

// Physical address of one page: which disk, which page-granular slot.
struct PhysicalLocation {
  DiskId disk = kInvalidDiskId;
  SlotId slot = 0;

  bool operator==(const PhysicalLocation&) const = default;
};

// A redundant-array layout maps logical data pages and parity pages of
// parity groups to physical locations. Invariants every layout guarantees
// (verified by parameterized tests):
//  * the mapping of data pages is a bijection onto distinct locations;
//  * all pages of a group (n data + parity copies) live on distinct disks,
//    so any single-disk failure loses at most one page per group;
//  * parity locations rotate over the disks so no disk is a parity hotspot
//    (paper Section 3, Figures 1 and 2).
class Layout {
 public:
  virtual ~Layout() = default;

  // Number of data pages per parity group (the paper's N).
  virtual uint32_t data_pages_per_group() const = 0;
  // Number of parity copies per group: 1 (classic RAID) or 2 (twin pages).
  virtual uint32_t parity_copies() const = 0;
  virtual uint32_t num_disks() const = 0;
  virtual SlotId slots_per_disk() const = 0;
  virtual uint32_t num_groups() const = 0;
  virtual uint32_t num_data_pages() const = 0;

  // Physical location of data page `page`. Precondition: page in range.
  virtual PhysicalLocation DataLocation(PageId page) const = 0;

  // Physical location of parity copy `twin` (0-based) of group `group`.
  // Preconditions: group in range, twin < parity_copies().
  virtual PhysicalLocation ParityLocation(GroupId group,
                                          uint32_t twin) const = 0;

  // Parity group that data page `page` belongs to.
  virtual GroupId GroupOf(PageId page) const = 0;

  // Index of `page` within its group, in [0, data_pages_per_group()).
  virtual uint32_t IndexInGroup(PageId page) const = 0;

  // The `index`-th data page of `group`; inverse of GroupOf/IndexInGroup.
  virtual PageId PageAt(GroupId group, uint32_t index) const = 0;
};

}  // namespace rda

#endif  // RDA_STORAGE_LAYOUT_H_
