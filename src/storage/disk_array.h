#ifndef RDA_STORAGE_DISK_ARRAY_H_
#define RDA_STORAGE_DISK_ARRAY_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "obs/obs.h"
#include "storage/disk.h"
#include "storage/layout.h"
#include "storage/page.h"

namespace rda {

// Which array organization to use (paper Section 3).
enum class LayoutKind {
  kDataStriping,    // RAID-5 style rotated parity, Figures 1 / 4.
  kParityStriping,  // Gray et al. parity striping, Figures 2 / 5.
};

// The redundant disk array: a set of Disks addressed through a Layout.
// This class does raw page I/O only — parity *semantics* (twin-page states,
// XOR maintenance, recovery) live in the parity/ and recovery/ layers.
class DiskArray {
 public:
  struct Options {
    LayoutKind layout_kind = LayoutKind::kDataStriping;
    // The paper's N: data pages per parity group.
    uint32_t data_pages_per_group = 4;
    // 2 = twin page scheme (the paper's contribution); 1 = classic RAID
    // parity, kept for the ablation benchmarks.
    uint32_t parity_copies = 2;
    // Minimum number of logical data pages (the paper's S). Rounded up to
    // whole groups.
    uint32_t min_data_pages = 64;
    size_t page_size = 512;
  };

  static Result<std::unique_ptr<DiskArray>> Create(const Options& options);

  DiskArray(const DiskArray&) = delete;
  DiskArray& operator=(const DiskArray&) = delete;

  // Raw data-page I/O. Fails with kIoError if the owning disk has failed
  // (degraded-mode reconstruction is the recovery layer's job). The rvalue
  // write overloads hand the image's buffer to the disk instead of copying.
  Status ReadData(PageId page, PageImage* out) const;
  Status WriteData(PageId page, const PageImage& image);
  Status WriteData(PageId page, PageImage&& image);

  // Raw parity-page I/O. `twin` in [0, parity_copies).
  Status ReadParity(GroupId group, uint32_t twin, PageImage* out) const;
  Status WriteParity(GroupId group, uint32_t twin, const PageImage& image);
  Status WriteParity(GroupId group, uint32_t twin, PageImage&& image);

  // Media-failure injection and repair plumbing.
  Status FailDisk(DiskId disk);
  Status ReplaceDisk(DiskId disk);
  bool DiskFailed(DiskId disk) const;
  // Number of currently failed disks.
  uint32_t NumFailedDisks() const;

  const Layout& layout() const { return *layout_; }
  size_t page_size() const { return page_size_; }
  uint32_t num_data_pages() const { return layout_->num_data_pages(); }
  uint32_t num_groups() const { return layout_->num_groups(); }
  uint32_t num_disks() const { return layout_->num_disks(); }

  // Aggregate transfer counters over all disks, plus the array-level XOR
  // computation count.
  IoCounters counters() const;
  void ResetCounters();

  // Accounts `pages` page-sized XOR computations (parity maintenance /
  // reconstruction CPU work). Called by the parity layer.
  void AccountXor(uint64_t pages);

  // Hooks the array into the observability hub: per-disk and aggregate
  // read/write counters under `storage.*`, disk fail/replace trace events.
  // Null detaches; safe to call at any time.
  void AttachObs(obs::ObsHub* hub);

  // Service-time aggregation (see ServiceTimeModel): sum of per-disk busy
  // time, and the busiest disk (the parallel critical path).
  double TotalBusyMs() const;
  double MaxBusyMs() const;
  void ResetServiceClocks();
  void SetServiceModel(const ServiceTimeModel& model);

  // Test-only access to the raw disk (corruption injection etc.).
  Disk* disk(DiskId id) { return &disks_[id]; }

 private:
  DiskArray(std::unique_ptr<Layout> layout, size_t page_size);

  Status CheckPage(PageId page) const;
  Status CheckGroup(GroupId group, uint32_t twin) const;

  std::unique_ptr<Layout> layout_;
  size_t page_size_;
  std::vector<Disk> disks_;
  uint64_t xor_computations_ = 0;

  // Observability (null = disabled). The counter pointers are resolved once
  // in AttachObs so the I/O hot path pays only a null test.
  obs::TraceBuffer* trace_ = nullptr;
  obs::Counter* reads_counter_ = nullptr;
  obs::Counter* writes_counter_ = nullptr;
  obs::Counter* xor_counter_ = nullptr;
  std::vector<obs::Counter*> disk_read_counters_;
  std::vector<obs::Counter*> disk_write_counters_;
};

}  // namespace rda

#endif  // RDA_STORAGE_DISK_ARRAY_H_
