#ifndef RDA_STORAGE_DISK_ARRAY_H_
#define RDA_STORAGE_DISK_ARRAY_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "io/io_engine.h"
#include "obs/obs.h"
#include "storage/disk.h"
#include "storage/fault_injector.h"
#include "storage/io_policy.h"
#include "storage/layout.h"
#include "storage/page.h"

namespace rda {

// Which array organization to use (paper Section 3).
enum class LayoutKind {
  kDataStriping,    // RAID-5 style rotated parity, Figures 1 / 4.
  kParityStriping,  // Gray et al. parity striping, Figures 2 / 5.
};

// The redundant disk array: a set of Disks addressed through a Layout.
// This class does raw page I/O only — parity *semantics* (twin-page states,
// XOR maintenance, recovery) live in the parity/ and recovery/ layers.
class DiskArray {
 public:
  struct Options {
    LayoutKind layout_kind = LayoutKind::kDataStriping;
    // The paper's N: data pages per parity group.
    uint32_t data_pages_per_group = 4;
    // 2 = twin page scheme (the paper's contribution); 1 = classic RAID
    // parity, kept for the ablation benchmarks.
    uint32_t parity_copies = 2;
    // Minimum number of logical data pages (the paper's S). Rounded up to
    // whole groups.
    uint32_t min_data_pages = 64;
    size_t page_size = 512;
    // Real wall-clock sleep per disk access (see Disk). 0 = instantaneous
    // (the default, and the only setting unit tests use); benches set it to
    // make cross-disk I/O overlap measurable in wall time.
    uint32_t real_access_delay_us = 0;
  };

  static Result<std::unique_ptr<DiskArray>> Create(const Options& options);

  DiskArray(const DiskArray&) = delete;
  DiskArray& operator=(const DiskArray&) = delete;

  // Stops the engine FIRST: its destructor drains any still-journaled
  // writes through PhysicalWriteForEngine, which touches injectors_ and
  // the per-disk counters — members that implicit destruction would have
  // torn down before engine_ (declaration order puts them after it).
  ~DiskArray() { engine_.reset(); }

  // Raw data-page I/O. Fails with kIoError if the owning disk has failed
  // (degraded-mode reconstruction is the recovery layer's job). Transient
  // I/O errors on a live disk are retried under the IoPolicy before the
  // error is surfaced; kCorruption is never retried. The rvalue write
  // overloads hand the image's buffer to the disk instead of copying.
  Status ReadData(PageId page, PageImage* out) const;
  Status WriteData(PageId page, const PageImage& image);
  Status WriteData(PageId page, PageImage&& image);

  // Raw parity-page I/O. `twin` in [0, parity_copies).
  Status ReadParity(GroupId group, uint32_t twin, PageImage* out) const;
  Status WriteParity(GroupId group, uint32_t twin, const PageImage& image);
  Status WriteParity(GroupId group, uint32_t twin, PageImage&& image);

  // Media-failure injection and repair plumbing. ReplaceDisk also resets
  // the disk's escalation state and error-budget count.
  Status FailDisk(DiskId disk);
  Status ReplaceDisk(DiskId disk);
  bool DiskFailed(DiskId disk) const;
  // Number of currently failed disks.
  uint32_t NumFailedDisks() const;

  // --- sector-fault plumbing (DESIGN.md section 10) ---

  // Retry/escalation behaviour of the raw I/O above, plus the async-engine
  // knobs: policy.width > 0 starts the per-disk submission-queue engine
  // (all writes become journaled-async, reads consult the journal first);
  // width 0 stops it and restores the synchronous path bit-for-bit.
  void SetIoPolicy(const IoPolicy& policy);
  const IoPolicy& io_policy() const { return policy_; }

  // The async engine, or null when policy.width == 0.
  io::IoEngine* io_engine() { return engine_.get(); }
  // Drains every submission queue (no-op without an engine). Returns the
  // first sticky drain error. Called before crash teardown, counter
  // resets, and at the end of rebuild/scrub sweeps.
  Status FlushIo();
  // Snapshot by value: the stats are mutated under the policy mutex by
  // concurrent I/O threads.
  IoPolicyStats policy_stats() const {
    std::lock_guard<std::mutex> lock(policy_mu_);
    return policy_stats_;
  }

  // Creates one FaultInjector per disk (seeded from config.seed and the
  // disk id so streams are independent) and attaches them. Replaces any
  // previous set; DisarmFaultInjection detaches and destroys them.
  void ArmFaultInjection(const FaultConfig& config);
  void DisarmFaultInjection();
  // The injector attached to `disk`, or null when disarmed / out of range.
  FaultInjector* injector(DiskId disk);
  // Sum of per-disk injector stats (all zero when disarmed).
  FaultStats fault_stats() const;

  // Charges one persistent sector error against `disk`'s error budget;
  // when the budget (policy.disk_error_budget, 0 = unlimited) is exhausted
  // the disk is escalated: force-failed and flagged until ReplaceDisk.
  // Called by the healing layer after a read needed reconstruction.
  void RecordSectorError(DiskId disk);
  // Disks force-failed by budget exhaustion and not yet replaced.
  std::vector<DiskId> EscalatedDisks() const;

  // Escalation listener: invoked (outside all array locks) right after
  // RecordSectorError force-fails a disk. The MaintenanceService registers
  // a non-blocking enqueue here so escalations trigger automatic rebuilds
  // instead of requiring a RepairEscalations() poll. Null detaches.
  void SetEscalationListener(std::function<void(DiskId)> listener);

  // --- online-rebuild bookkeeping (DESIGN.md section 14) ---
  //
  // A disk is marked "rebuilding" from the moment its fresh zeroed medium
  // is installed until the rebuild (online or quiescent) finishes. The flag
  // outlives a crash of the volatile layers, letting Recover() detect an
  // interrupted rebuild and finish it: a half-rebuilt medium reads stale
  // zeros *successfully*, so it must never be trusted silently.
  void SetRebuilding(DiskId disk, bool rebuilding);
  bool DiskRebuilding(DiskId disk) const;
  // Disks currently flagged as rebuilding, ascending.
  std::vector<DiskId> RebuildingDisks() const;

  const Layout& layout() const { return *layout_; }
  size_t page_size() const { return page_size_; }
  uint32_t num_data_pages() const { return layout_->num_data_pages(); }
  uint32_t num_groups() const { return layout_->num_groups(); }
  uint32_t num_disks() const { return layout_->num_disks(); }

  // Aggregate transfer counters over all disks, plus the array-level XOR
  // computation count.
  IoCounters counters() const;
  void ResetCounters();

  // Accounts `pages` page-sized XOR computations (parity maintenance /
  // reconstruction CPU work). Called by the parity layer.
  void AccountXor(uint64_t pages);

  // Hooks the array into the observability hub: per-disk and aggregate
  // read/write counters under `storage.*`, disk fail/replace trace events.
  // Null detaches; safe to call at any time.
  void AttachObs(obs::ObsHub* hub);

  // Service-time aggregation (see ServiceTimeModel): sum of per-disk busy
  // time, and the busiest disk (the parallel critical path).
  double TotalBusyMs() const;
  double MaxBusyMs() const;
  void ResetServiceClocks();
  void SetServiceModel(const ServiceTimeModel& model);

  // Test-only access to the raw disk (corruption injection etc.).
  Disk* disk(DiskId id) { return &disks_[id]; }

 private:
  DiskArray(std::unique_ptr<Layout> layout, size_t page_size);

  Status CheckPage(PageId page) const;
  Status CheckGroup(GroupId group, uint32_t twin) const;
  // The engine's drain callback: one physical slot write through the retry
  // machinery, bumping the transfer counters exactly like the sync path.
  // A persistent failure on a live disk escalates the disk (see
  // EscalateDisk) instead of returning the error: the submitter already
  // saw Ok, so redundancy — not an error code — must carry the durability.
  Status PhysicalWriteForEngine(DiskId disk, SlotId slot,
                                const PageImage& image);
  // Force-fails `disk` (at most once until ReplaceDisk): marks it
  // escalated, bumps the stats/trace/flight machinery and invokes the
  // escalation listener outside all array locks. Shared by the error-budget
  // path (RecordSectorError) and the engine's drain-failure path.
  void EscalateDisk(DiskId disk, const std::string& reason);
  // Shared body of the Write{Data,Parity} overloads once the location is
  // resolved: journals into the engine when one is running, otherwise the
  // synchronous write-with-retry plus counter bumps. The const overload
  // copies only when journaling (the sync path hands the ref through).
  Status WriteSlot(DiskId disk, SlotId slot, const PageImage& image,
                   bool is_parity);
  Status WriteSlot(DiskId disk, SlotId slot, PageImage&& image,
                   bool is_parity);
  // Retry loops around one disk access. Stats are mutable so the const
  // read path can account; the actual disk state never changes on retry.
  Status ReadWithRetry(DiskId disk, SlotId slot, PageImage* out) const;
  Status WriteWithRetry(DiskId disk, SlotId slot, const PageImage& image);
  Status WriteWithRetry(DiskId disk, SlotId slot, PageImage&& image);
  // Bookkeeping shared by both write overloads' retry loops.
  bool ShouldRetry(const Status& status, DiskId disk, uint32_t attempt,
                   uint32_t max_retries) const;
  void NoteAttemptOutcome(const Status& status, DiskId disk,
                          uint32_t attempts_used) const;
  void EmitDiskEvent(obs::EventKind kind, DiskId disk) const;

  std::unique_ptr<Layout> layout_;
  size_t page_size_;
  std::vector<Disk> disks_;
  std::atomic<uint64_t> xor_computations_{0};
  std::unique_ptr<io::IoEngine> engine_;

  IoPolicy policy_;
  // Guards the retry/escalation bookkeeping below (off the clean-path I/O:
  // taken only when a fault actually occurred).
  mutable std::mutex policy_mu_;
  mutable IoPolicyStats policy_stats_;
  std::vector<std::unique_ptr<FaultInjector>> injectors_;
  std::vector<uint32_t> sector_error_counts_;
  std::vector<bool> escalated_;
  std::vector<bool> rebuilding_;
  std::function<void(DiskId)> escalation_listener_;

  // Observability (null = disabled). The counter pointers are resolved once
  // in AttachObs so the I/O hot path pays only a null test. The hub is kept
  // so an engine started by a later SetIoPolicy call can attach too.
  obs::ObsHub* hub_ = nullptr;
  obs::TraceBuffer* trace_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;  // Dumped on escalation.
  obs::Counter* reads_counter_ = nullptr;
  obs::Counter* writes_counter_ = nullptr;
  obs::Counter* xor_counter_ = nullptr;
  obs::Counter* retries_counter_ = nullptr;
  obs::Counter* transients_counter_ = nullptr;
  obs::Counter* escalations_counter_ = nullptr;
  std::vector<obs::Counter*> disk_read_counters_;
  std::vector<obs::Counter*> disk_write_counters_;
};

}  // namespace rda

#endif  // RDA_STORAGE_DISK_ARRAY_H_
