#ifndef RDA_STORAGE_PAGE_H_
#define RDA_STORAGE_PAGE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace rda {

// State of a parity page, paper Figure 8. A parity page is:
//  - kCommitted: holds the parity of the last committed state of its group
//    (the "valid" twin when its timestamp is the higher committed one);
//  - kObsolete:  holds an old committed parity (the other twin);
//  - kWorking:   holds parity that includes updates of an active transaction;
//  - kInvalid:   the last transaction that updated it aborted.
// kFree marks a never-written page (also used for data pages, which do not
// use parity states).
enum class ParityState : uint8_t {
  kFree = 0,
  kCommitted = 1,
  kObsolete = 2,
  kWorking = 3,
  kInvalid = 4,
};

// Out-of-band PARITY page header. It travels with the page image on disk
// but is not covered by parity XOR. Data pages leave it at its defaults —
// their metadata is embedded inside the payload (storage/data_page_meta.h)
// so that media rebuild and parity undo reconstruct it.
//
// Fields: txn_id (the transaction whose update made this parity "working"),
// timestamp (Current_Parity selection, paper Figure 7), parity_state
// (Figure 8) and dirty_page (which data page of the group is covered by the
// working parity — what the in-memory Dirty_Set caches).
struct PageHeader {
  TxnId txn_id = kInvalidTxnId;
  ParityTimestamp timestamp = 0;
  ParityState parity_state = ParityState::kFree;
  PageId dirty_page = kInvalidPageId;

  bool operator==(const PageHeader&) const = default;
};

// A full physical page image: fixed-size payload plus the OOB header.
struct PageImage {
  std::vector<uint8_t> payload;
  PageHeader header;

  explicit PageImage(size_t page_size = 0) : payload(page_size, 0) {}

  bool operator==(const PageImage&) const = default;
};

}  // namespace rda

#endif  // RDA_STORAGE_PAGE_H_
