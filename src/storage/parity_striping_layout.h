#ifndef RDA_STORAGE_PARITY_STRIPING_LAYOUT_H_
#define RDA_STORAGE_PARITY_STRIPING_LAYOUT_H_

#include <memory>

#include "common/status.h"
#include "storage/layout.h"

namespace rda {

// Parity striping of disk arrays (Gray, Horst and Walker, VLDB 1990; paper
// Figures 2 and 5): data is NOT interleaved — logical pages are laid out
// sequentially within one disk, preserving per-disk sequentiality for OLTP —
// while parity areas rotate across disks.
//
// Construction used here: D = n + p disks, each divided into D equal areas
// of `area_size` slots. Consider area-row r = the D areas at area index r,
// one per disk. In row r, the areas on disks r, (r+1) % D, ... (p of them)
// hold parity; the other n areas hold data. A parity group is the set of
// blocks at the same offset k within the data areas of one row, plus the
// blocks at offset k of the row's parity areas:
//   GroupId = r * area_size + k.
// Logical data pages are numbered disk-major: all data blocks of disk 0
// first (in area order, skipping parity areas), then disk 1, etc. — so
// consecutive pages sit on the same disk, unlike data striping.
class ParityStripingLayout final : public Layout {
 public:
  // Creates a layout with capacity for at least `min_data_pages` data pages.
  // `parity_copies` must be 1 or 2; `data_pages_per_group` >= 1.
  static Result<std::unique_ptr<ParityStripingLayout>> Create(
      uint32_t data_pages_per_group, uint32_t parity_copies,
      uint32_t min_data_pages);

  uint32_t data_pages_per_group() const override { return n_; }
  uint32_t parity_copies() const override { return parity_copies_; }
  uint32_t num_disks() const override { return num_disks_; }
  SlotId slots_per_disk() const override { return num_disks_ * area_size_; }
  uint32_t num_groups() const override { return num_disks_ * area_size_; }
  uint32_t num_data_pages() const override { return n_ * num_groups(); }

  PhysicalLocation DataLocation(PageId page) const override;
  PhysicalLocation ParityLocation(GroupId group, uint32_t twin) const override;
  GroupId GroupOf(PageId page) const override;
  uint32_t IndexInGroup(PageId page) const override;
  PageId PageAt(GroupId group, uint32_t index) const override;

 private:
  ParityStripingLayout(uint32_t n, uint32_t parity_copies, SlotId area_size);

  // True iff on disk `disk`, the area at index `row` holds parity.
  bool IsParityArea(DiskId disk, uint32_t row) const;
  // Disk holding parity copy `twin` of row `row`.
  DiskId ParityDisk(uint32_t row, uint32_t twin) const;
  // The `index`-th data disk (increasing disk order) of row `row`.
  DiskId DataDisk(uint32_t row, uint32_t index) const;
  // Position of `disk` among the data disks of row `row`.
  uint32_t DataIndexOfDisk(uint32_t row, DiskId disk) const;
  // Ordinal of area-row `row` among the data rows of `disk`.
  uint32_t DataRowOrdinal(DiskId disk, uint32_t row) const;
  // Inverse of DataRowOrdinal.
  uint32_t RowOfDataOrdinal(DiskId disk, uint32_t ordinal) const;

  uint32_t n_;
  uint32_t parity_copies_;
  uint32_t num_disks_;
  SlotId area_size_;
};

}  // namespace rda

#endif  // RDA_STORAGE_PARITY_STRIPING_LAYOUT_H_
