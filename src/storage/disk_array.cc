#include "storage/disk_array.h"

#include <algorithm>

#include <string>
#include <utility>

#include "storage/data_striping_layout.h"
#include "storage/parity_striping_layout.h"

namespace rda {

Result<std::unique_ptr<DiskArray>> DiskArray::Create(const Options& options) {
  if (options.page_size == 0) {
    return Status::InvalidArgument("page_size must be > 0");
  }
  std::unique_ptr<Layout> layout;
  switch (options.layout_kind) {
    case LayoutKind::kDataStriping: {
      auto result = DataStripingLayout::Create(options.data_pages_per_group,
                                               options.parity_copies,
                                               options.min_data_pages);
      if (!result.ok()) {
        return result.status();
      }
      layout = std::move(result).value();
      break;
    }
    case LayoutKind::kParityStriping: {
      auto result = ParityStripingLayout::Create(options.data_pages_per_group,
                                                 options.parity_copies,
                                                 options.min_data_pages);
      if (!result.ok()) {
        return result.status();
      }
      layout = std::move(result).value();
      break;
    }
  }
  std::unique_ptr<DiskArray> array(
      new DiskArray(std::move(layout), options.page_size));
  if (options.real_access_delay_us > 0) {
    for (Disk& disk : array->disks_) {
      disk.set_real_access_delay_us(options.real_access_delay_us);
    }
  }
  return array;
}

DiskArray::DiskArray(std::unique_ptr<Layout> layout, size_t page_size)
    : layout_(std::move(layout)), page_size_(page_size) {
  disks_.reserve(layout_->num_disks());
  for (DiskId d = 0; d < layout_->num_disks(); ++d) {
    disks_.emplace_back(d, layout_->slots_per_disk(), page_size_);
  }
  sector_error_counts_.assign(disks_.size(), 0);
  escalated_.assign(disks_.size(), false);
  rebuilding_.assign(disks_.size(), false);
}

Status DiskArray::CheckPage(PageId page) const {
  if (page >= layout_->num_data_pages()) {
    return Status::InvalidArgument("data page " + std::to_string(page) +
                                   " out of range");
  }
  return Status::Ok();
}

Status DiskArray::CheckGroup(GroupId group, uint32_t twin) const {
  if (group >= layout_->num_groups()) {
    return Status::InvalidArgument("group " + std::to_string(group) +
                                   " out of range");
  }
  if (twin >= layout_->parity_copies()) {
    return Status::InvalidArgument("parity twin " + std::to_string(twin) +
                                   " out of range");
  }
  return Status::Ok();
}

void DiskArray::EmitDiskEvent(obs::EventKind kind, DiskId disk) const {
  if (trace_ == nullptr) {
    return;
  }
  obs::TraceEvent event;
  event.subsystem = obs::Subsystem::kStorage;
  event.kind = kind;
  event.value = static_cast<int64_t>(disk);
  obs::Emit(trace_, event);
}

bool DiskArray::ShouldRetry(const Status& status, DiskId disk,
                            uint32_t attempt, uint32_t max_retries) const {
  if (status.ok() || attempt >= max_retries ||
      !RetryableIoError(status, disks_[disk].failed())) {
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(policy_mu_);
    ++policy_stats_.io_retries;
  }
  obs::Inc(retries_counter_);
  disks_[disk].AddServiceDelay(RetryBackoffMs(policy_, attempt + 1));
  EmitDiskEvent(obs::EventKind::kIoRetry, disk);
  return true;
}

void DiskArray::NoteAttemptOutcome(const Status& status, DiskId disk,
                                   uint32_t attempts_used) const {
  if (status.ok()) {
    if (attempts_used > 0) {
      // A retry absorbed the fault, so it was transient by definition.
      {
        std::lock_guard<std::mutex> lock(policy_mu_);
        ++policy_stats_.transient_faults;
      }
      obs::Inc(transients_counter_);
    }
  } else if (!disks_[disk].failed()) {
    // Exhausted retries on a live disk, or corruption: a persistent
    // sector-level error. Degraded healing (and the error budget) is the
    // caller's move — this layer only reports honestly.
    {
      std::lock_guard<std::mutex> lock(policy_mu_);
      ++policy_stats_.sector_errors;
    }
    EmitDiskEvent(obs::EventKind::kIoFault, disk);
  }
}

Status DiskArray::ReadWithRetry(DiskId disk, SlotId slot,
                                PageImage* out) const {
  Status status = disks_[disk].Read(slot, out);
  uint32_t attempt = 0;
  while (ShouldRetry(status, disk, attempt, policy_.max_read_retries)) {
    ++attempt;
    status = disks_[disk].Read(slot, out);
  }
  NoteAttemptOutcome(status, disk, attempt);
  if (attempt > 0) {
    // A retried access is one logical transfer: the extra attempts the disk
    // already counted become io_retries, not page_reads (satellite: per-txn
    // attribution must not double-count retried reads).
    disks_[disk].ReclassifyRetries(attempt, /*is_read=*/true);
  }
  return status;
}

Status DiskArray::WriteWithRetry(DiskId disk, SlotId slot,
                                 const PageImage& image) {
  Status status = disks_[disk].Write(slot, image);
  uint32_t attempt = 0;
  while (ShouldRetry(status, disk, attempt, policy_.max_write_retries)) {
    ++attempt;
    status = disks_[disk].Write(slot, image);
  }
  NoteAttemptOutcome(status, disk, attempt);
  if (attempt > 0) {
    disks_[disk].ReclassifyRetries(attempt, /*is_read=*/false);
  }
  return status;
}

Status DiskArray::WriteWithRetry(DiskId disk, SlotId slot, PageImage&& image) {
  // The image is only consumed on success, so retrying after a transient
  // failure still has the intact buffer to hand over.
  Status status = disks_[disk].Write(slot, std::move(image));
  uint32_t attempt = 0;
  while (ShouldRetry(status, disk, attempt, policy_.max_write_retries)) {
    ++attempt;
    status = disks_[disk].Write(slot, std::move(image));
  }
  NoteAttemptOutcome(status, disk, attempt);
  if (attempt > 0) {
    disks_[disk].ReclassifyRetries(attempt, /*is_read=*/false);
  }
  return status;
}

Status DiskArray::PhysicalWriteForEngine(DiskId disk, SlotId slot,
                                         const PageImage& image) {
  if (disks_[disk].failed()) {
    // The disk died between submission and drain. Its whole medium is
    // gone, so the journaled bytes are moot — the history is "the write
    // landed, then the disk failed", same as the synchronous race.
    return Status::Ok();
  }
  const Status status = WriteWithRetry(disk, slot, image);
  if (!status.ok()) {
    if (disks_[disk].failed()) {
      return Status::Ok();  // Failed mid-write: same moot-medium argument.
    }
    // A journaled write that cannot land on a live disk must not be lost
    // silently: the submitter already saw Ok (the journal is modeled
    // durable), so there is no caller left to report `status` to. Treat
    // the slot's medium as lost and fail the whole disk — every page on it
    // is then served through parity reconstruction, and the update's
    // durability rides the redundancy (its parity delta was journaled to a
    // different disk) instead of the unwritable medium. The synchronous
    // path would instead have surfaced the error before commit reported.
    EscalateDisk(disk, "disk " + std::to_string(disk) +
                           " escalated: journaled write could not land (" +
                           status.ToString() + ")");
    return Status::Ok();
  }
  obs::Inc(writes_counter_);
  if (disk < disk_write_counters_.size()) {
    obs::Inc(disk_write_counters_[disk]);
  }
  return Status::Ok();
}

Status DiskArray::WriteSlot(DiskId disk, SlotId slot, const PageImage& image,
                            bool is_parity) {
  if (engine_ != nullptr && !disks_[disk].failed()) {
    engine_->SubmitWriteDetached(disk, slot, PageImage(image), is_parity);
    return Status::Ok();
  }
  RDA_RETURN_IF_ERROR(WriteWithRetry(disk, slot, image));
  obs::Inc(writes_counter_);
  if (disk < disk_write_counters_.size()) {
    obs::Inc(disk_write_counters_[disk]);
  }
  return Status::Ok();
}

Status DiskArray::WriteSlot(DiskId disk, SlotId slot, PageImage&& image,
                            bool is_parity) {
  if (engine_ != nullptr && !disks_[disk].failed()) {
    // Journaled-async: durable on return, physical transfer (and its
    // counters) deferred to the drain. A failed disk falls through to the
    // synchronous path so the caller sees the exact same error status.
    engine_->SubmitWriteDetached(disk, slot, std::move(image), is_parity);
    return Status::Ok();
  }
  RDA_RETURN_IF_ERROR(WriteWithRetry(disk, slot, std::move(image)));
  obs::Inc(writes_counter_);
  if (disk < disk_write_counters_.size()) {
    obs::Inc(disk_write_counters_[disk]);
  }
  return Status::Ok();
}

Status DiskArray::ReadData(PageId page, PageImage* out) const {
  RDA_RETURN_IF_ERROR(CheckPage(page));
  const PhysicalLocation loc = layout_->DataLocation(page);
  if (engine_ != nullptr && !disks_[loc.disk].failed() &&
      engine_->ReadFromQueue(loc.disk, loc.slot, out)) {
    return Status::Ok();  // Journal hit: a memory copy, not a transfer.
  }
  RDA_RETURN_IF_ERROR(ReadWithRetry(loc.disk, loc.slot, out));
  obs::Inc(reads_counter_);
  if (loc.disk < disk_read_counters_.size()) {
    obs::Inc(disk_read_counters_[loc.disk]);
  }
  return Status::Ok();
}

Status DiskArray::WriteData(PageId page, const PageImage& image) {
  RDA_RETURN_IF_ERROR(CheckPage(page));
  const PhysicalLocation loc = layout_->DataLocation(page);
  return WriteSlot(loc.disk, loc.slot, image, /*is_parity=*/false);
}

Status DiskArray::WriteData(PageId page, PageImage&& image) {
  RDA_RETURN_IF_ERROR(CheckPage(page));
  const PhysicalLocation loc = layout_->DataLocation(page);
  return WriteSlot(loc.disk, loc.slot, std::move(image), /*is_parity=*/false);
}

Status DiskArray::ReadParity(GroupId group, uint32_t twin,
                             PageImage* out) const {
  RDA_RETURN_IF_ERROR(CheckGroup(group, twin));
  const PhysicalLocation loc = layout_->ParityLocation(group, twin);
  if (engine_ != nullptr && !disks_[loc.disk].failed() &&
      engine_->ReadFromQueue(loc.disk, loc.slot, out)) {
    return Status::Ok();
  }
  RDA_RETURN_IF_ERROR(ReadWithRetry(loc.disk, loc.slot, out));
  obs::Inc(reads_counter_);
  if (loc.disk < disk_read_counters_.size()) {
    obs::Inc(disk_read_counters_[loc.disk]);
  }
  return Status::Ok();
}

Status DiskArray::WriteParity(GroupId group, uint32_t twin,
                              const PageImage& image) {
  RDA_RETURN_IF_ERROR(CheckGroup(group, twin));
  const PhysicalLocation loc = layout_->ParityLocation(group, twin);
  return WriteSlot(loc.disk, loc.slot, image, /*is_parity=*/true);
}

Status DiskArray::WriteParity(GroupId group, uint32_t twin,
                              PageImage&& image) {
  RDA_RETURN_IF_ERROR(CheckGroup(group, twin));
  const PhysicalLocation loc = layout_->ParityLocation(group, twin);
  return WriteSlot(loc.disk, loc.slot, std::move(image), /*is_parity=*/true);
}

void DiskArray::SetIoPolicy(const IoPolicy& policy) {
  // Stopping the old engine first drains anything journaled under the
  // previous policy, so a width change never strands a write.
  engine_.reset();
  policy_ = policy;
  if (policy.width > 0) {
    io::IoEngineOptions engine_options;
    engine_options.width = policy.width;
    engine_options.queue_watermark = policy.queue_watermark;
    engine_ = std::make_unique<io::IoEngine>(
        static_cast<uint32_t>(disks_.size()), engine_options,
        [this](DiskId disk, SlotId slot, const PageImage& image) {
          return PhysicalWriteForEngine(disk, slot, image);
        });
    engine_->AttachObs(hub_);
  }
}

Status DiskArray::FlushIo() {
  if (engine_ == nullptr) {
    return Status::Ok();
  }
  return engine_->Flush();
}

Status DiskArray::FailDisk(DiskId disk) {
  if (disk >= disks_.size()) {
    return Status::InvalidArgument("no such disk");
  }
  disks_[disk].Fail();
  if (engine_ != nullptr) {
    // Fail() first so new submissions reject, then drop the journal: the
    // queued bytes were headed for a medium that no longer exists.
    engine_->PurgeDisk(disk);
  }
  obs::TraceEvent event;
  event.subsystem = obs::Subsystem::kStorage;
  event.kind = obs::EventKind::kDiskFailed;
  event.value = static_cast<int64_t>(disk);
  obs::Emit(trace_, event);
  return Status::Ok();
}

Status DiskArray::ReplaceDisk(DiskId disk) {
  if (disk >= disks_.size()) {
    return Status::InvalidArgument("no such disk");
  }
  disks_[disk].Replace();
  if (engine_ != nullptr) {
    engine_->PurgeDisk(disk);  // Nothing queued should hit the fresh medium.
  }
  {
    std::lock_guard<std::mutex> lock(policy_mu_);
    sector_error_counts_[disk] = 0;  // New medium starts with a full budget.
    escalated_[disk] = false;
  }
  obs::TraceEvent event;
  event.subsystem = obs::Subsystem::kStorage;
  event.kind = obs::EventKind::kDiskReplaced;
  event.value = static_cast<int64_t>(disk);
  obs::Emit(trace_, event);
  return Status::Ok();
}

bool DiskArray::DiskFailed(DiskId disk) const {
  return disk < disks_.size() && disks_[disk].failed();
}

void DiskArray::ArmFaultInjection(const FaultConfig& config) {
  DisarmFaultInjection();
  injectors_.reserve(disks_.size());
  for (DiskId d = 0; d < disks_.size(); ++d) {
    FaultConfig per_disk = config;
    // Golden-ratio stride decorrelates the per-disk streams while keeping
    // the whole array a pure function of config.seed.
    per_disk.seed = config.seed + 0x9e3779b97f4a7c15ULL * (d + 1);
    injectors_.push_back(std::make_unique<FaultInjector>(per_disk));
    disks_[d].AttachFaultInjector(injectors_.back().get());
  }
}

void DiskArray::DisarmFaultInjection() {
  for (Disk& d : disks_) {
    d.AttachFaultInjector(nullptr);
  }
  injectors_.clear();
}

FaultInjector* DiskArray::injector(DiskId disk) {
  return disk < injectors_.size() ? injectors_[disk].get() : nullptr;
}

FaultStats DiskArray::fault_stats() const {
  FaultStats total;
  for (const auto& injector : injectors_) {
    total += injector->stats();
  }
  return total;
}

void DiskArray::RecordSectorError(DiskId disk) {
  if (disk >= disks_.size() || policy_.disk_error_budget == 0 ||
      disks_[disk].failed()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(policy_mu_);
    if (++sector_error_counts_[disk] < policy_.disk_error_budget) {
      return;
    }
  }
  // Budget exhausted: the drive is lying about its health often enough
  // that slot-by-slot healing is a losing game. Take it out, rebuild whole.
  EscalateDisk(disk, "disk " + std::to_string(disk) +
                         " escalated after exhausting its error budget");
}

void DiskArray::EscalateDisk(DiskId disk, const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(policy_mu_);
    if (escalated_[disk]) {
      return;  // A concurrent escalation already took the disk out.
    }
    escalated_[disk] = true;
    ++policy_stats_.escalations;
  }
  obs::Inc(escalations_counter_);
  EmitDiskEvent(obs::EventKind::kEscalation, disk);
  // Flight recorder: the escalation is the moment the timeline that led
  // here is about to scroll out of the rings — dump it now.
  obs::TriggerFlight(flight_, reason);
  (void)FailDisk(disk);
  std::function<void(DiskId)> listener;
  {
    std::lock_guard<std::mutex> lock(policy_mu_);
    listener = escalation_listener_;
  }
  if (listener) {
    listener(disk);
  }
}

void DiskArray::SetEscalationListener(std::function<void(DiskId)> listener) {
  std::lock_guard<std::mutex> lock(policy_mu_);
  escalation_listener_ = std::move(listener);
}

void DiskArray::SetRebuilding(DiskId disk, bool rebuilding) {
  if (disk >= disks_.size()) {
    return;
  }
  std::lock_guard<std::mutex> lock(policy_mu_);
  rebuilding_[disk] = rebuilding;
}

bool DiskArray::DiskRebuilding(DiskId disk) const {
  std::lock_guard<std::mutex> lock(policy_mu_);
  return disk < rebuilding_.size() && rebuilding_[disk];
}

std::vector<DiskId> DiskArray::RebuildingDisks() const {
  std::lock_guard<std::mutex> lock(policy_mu_);
  std::vector<DiskId> out;
  for (DiskId d = 0; d < rebuilding_.size(); ++d) {
    if (rebuilding_[d]) {
      out.push_back(d);
    }
  }
  return out;
}

std::vector<DiskId> DiskArray::EscalatedDisks() const {
  std::lock_guard<std::mutex> lock(policy_mu_);
  std::vector<DiskId> out;
  for (DiskId d = 0; d < escalated_.size(); ++d) {
    if (escalated_[d]) {
      out.push_back(d);
    }
  }
  return out;
}

uint32_t DiskArray::NumFailedDisks() const {
  uint32_t failed = 0;
  for (const Disk& d : disks_) {
    if (d.failed()) {
      ++failed;
    }
  }
  return failed;
}

IoCounters DiskArray::counters() const {
  IoCounters total;
  for (const Disk& d : disks_) {
    total += d.counters();
  }
  total.xor_computations = xor_computations_.load(std::memory_order_relaxed);
  return total;
}

void DiskArray::ResetCounters() {
  for (Disk& d : disks_) {
    d.ResetCounters();
  }
  xor_computations_.store(0, std::memory_order_relaxed);
}

void DiskArray::AccountXor(uint64_t pages) {
  xor_computations_.fetch_add(pages, std::memory_order_relaxed);
  obs::Inc(xor_counter_, pages);
}

void DiskArray::AttachObs(obs::ObsHub* hub) {
  hub_ = hub;
  if (engine_ != nullptr) {
    engine_->AttachObs(hub);
  }
  trace_ = obs::TraceOf(hub);
  flight_ = obs::FlightOf(hub);
  reads_counter_ = obs::GetCounter(hub, "storage.reads");
  writes_counter_ = obs::GetCounter(hub, "storage.writes");
  xor_counter_ = obs::GetCounter(hub, "storage.xor_computations");
  retries_counter_ = obs::GetCounter(hub, "storage.io_retries");
  transients_counter_ = obs::GetCounter(hub, "storage.transient_faults");
  escalations_counter_ = obs::GetCounter(hub, "storage.escalations");
  disk_read_counters_.assign(disks_.size(), nullptr);
  disk_write_counters_.assign(disks_.size(), nullptr);
  if (hub != nullptr) {
    for (size_t d = 0; d < disks_.size(); ++d) {
      const std::string prefix = "storage.disk" + std::to_string(d);
      disk_read_counters_[d] = obs::GetCounter(hub, prefix + ".reads");
      disk_write_counters_[d] = obs::GetCounter(hub, prefix + ".writes");
    }
  }
}

double DiskArray::TotalBusyMs() const {
  double total = 0;
  for (const Disk& d : disks_) {
    total += d.busy_ms();
  }
  return total;
}

double DiskArray::MaxBusyMs() const {
  double max = 0;
  for (const Disk& d : disks_) {
    max = std::max(max, d.busy_ms());
  }
  return max;
}

void DiskArray::ResetServiceClocks() {
  for (Disk& d : disks_) {
    d.ResetServiceClock();
  }
}

void DiskArray::SetServiceModel(const ServiceTimeModel& model) {
  for (Disk& d : disks_) {
    d.set_service_model(model);
  }
}

}  // namespace rda
