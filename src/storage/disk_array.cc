#include "storage/disk_array.h"

#include <algorithm>

#include <string>
#include <utility>

#include "storage/data_striping_layout.h"
#include "storage/parity_striping_layout.h"

namespace rda {

Result<std::unique_ptr<DiskArray>> DiskArray::Create(const Options& options) {
  if (options.page_size == 0) {
    return Status::InvalidArgument("page_size must be > 0");
  }
  std::unique_ptr<Layout> layout;
  switch (options.layout_kind) {
    case LayoutKind::kDataStriping: {
      auto result = DataStripingLayout::Create(options.data_pages_per_group,
                                               options.parity_copies,
                                               options.min_data_pages);
      if (!result.ok()) {
        return result.status();
      }
      layout = std::move(result).value();
      break;
    }
    case LayoutKind::kParityStriping: {
      auto result = ParityStripingLayout::Create(options.data_pages_per_group,
                                                 options.parity_copies,
                                                 options.min_data_pages);
      if (!result.ok()) {
        return result.status();
      }
      layout = std::move(result).value();
      break;
    }
  }
  return std::unique_ptr<DiskArray>(
      new DiskArray(std::move(layout), options.page_size));
}

DiskArray::DiskArray(std::unique_ptr<Layout> layout, size_t page_size)
    : layout_(std::move(layout)), page_size_(page_size) {
  disks_.reserve(layout_->num_disks());
  for (DiskId d = 0; d < layout_->num_disks(); ++d) {
    disks_.emplace_back(d, layout_->slots_per_disk(), page_size_);
  }
}

Status DiskArray::CheckPage(PageId page) const {
  if (page >= layout_->num_data_pages()) {
    return Status::InvalidArgument("data page " + std::to_string(page) +
                                   " out of range");
  }
  return Status::Ok();
}

Status DiskArray::CheckGroup(GroupId group, uint32_t twin) const {
  if (group >= layout_->num_groups()) {
    return Status::InvalidArgument("group " + std::to_string(group) +
                                   " out of range");
  }
  if (twin >= layout_->parity_copies()) {
    return Status::InvalidArgument("parity twin " + std::to_string(twin) +
                                   " out of range");
  }
  return Status::Ok();
}

Status DiskArray::ReadData(PageId page, PageImage* out) const {
  RDA_RETURN_IF_ERROR(CheckPage(page));
  const PhysicalLocation loc = layout_->DataLocation(page);
  return disks_[loc.disk].Read(loc.slot, out);
}

Status DiskArray::WriteData(PageId page, const PageImage& image) {
  RDA_RETURN_IF_ERROR(CheckPage(page));
  const PhysicalLocation loc = layout_->DataLocation(page);
  return disks_[loc.disk].Write(loc.slot, image);
}

Status DiskArray::ReadParity(GroupId group, uint32_t twin,
                             PageImage* out) const {
  RDA_RETURN_IF_ERROR(CheckGroup(group, twin));
  const PhysicalLocation loc = layout_->ParityLocation(group, twin);
  return disks_[loc.disk].Read(loc.slot, out);
}

Status DiskArray::WriteParity(GroupId group, uint32_t twin,
                              const PageImage& image) {
  RDA_RETURN_IF_ERROR(CheckGroup(group, twin));
  const PhysicalLocation loc = layout_->ParityLocation(group, twin);
  return disks_[loc.disk].Write(loc.slot, image);
}

Status DiskArray::FailDisk(DiskId disk) {
  if (disk >= disks_.size()) {
    return Status::InvalidArgument("no such disk");
  }
  disks_[disk].Fail();
  return Status::Ok();
}

Status DiskArray::ReplaceDisk(DiskId disk) {
  if (disk >= disks_.size()) {
    return Status::InvalidArgument("no such disk");
  }
  disks_[disk].Replace();
  return Status::Ok();
}

bool DiskArray::DiskFailed(DiskId disk) const {
  return disk < disks_.size() && disks_[disk].failed();
}

uint32_t DiskArray::NumFailedDisks() const {
  uint32_t failed = 0;
  for (const Disk& d : disks_) {
    if (d.failed()) {
      ++failed;
    }
  }
  return failed;
}

IoCounters DiskArray::counters() const {
  IoCounters total;
  for (const Disk& d : disks_) {
    total += d.counters();
  }
  return total;
}

void DiskArray::ResetCounters() {
  for (Disk& d : disks_) {
    d.ResetCounters();
  }
}

double DiskArray::TotalBusyMs() const {
  double total = 0;
  for (const Disk& d : disks_) {
    total += d.busy_ms();
  }
  return total;
}

double DiskArray::MaxBusyMs() const {
  double max = 0;
  for (const Disk& d : disks_) {
    max = std::max(max, d.busy_ms());
  }
  return max;
}

void DiskArray::ResetServiceClocks() {
  for (Disk& d : disks_) {
    d.ResetServiceClock();
  }
}

void DiskArray::SetServiceModel(const ServiceTimeModel& model) {
  for (Disk& d : disks_) {
    d.set_service_model(model);
  }
}

}  // namespace rda
