#include "storage/data_striping_layout.h"

#include <string>

namespace rda {

Result<std::unique_ptr<DataStripingLayout>> DataStripingLayout::Create(
    uint32_t data_pages_per_group, uint32_t parity_copies,
    uint32_t min_data_pages) {
  if (data_pages_per_group < 1) {
    return Status::InvalidArgument("data_pages_per_group must be >= 1");
  }
  if (parity_copies != 1 && parity_copies != 2) {
    return Status::InvalidArgument("parity_copies must be 1 or 2");
  }
  if (min_data_pages < 1) {
    return Status::InvalidArgument("min_data_pages must be >= 1");
  }
  const uint32_t num_groups =
      (min_data_pages + data_pages_per_group - 1) / data_pages_per_group;
  return std::unique_ptr<DataStripingLayout>(new DataStripingLayout(
      data_pages_per_group, parity_copies, num_groups));
}

DataStripingLayout::DataStripingLayout(uint32_t n, uint32_t parity_copies,
                                       uint32_t num_groups)
    : n_(n),
      parity_copies_(parity_copies),
      num_disks_(n + parity_copies),
      num_groups_(num_groups) {}

DiskId DataStripingLayout::ParityDisk(GroupId group, uint32_t twin) const {
  const uint32_t d = num_disks_;
  // Left-symmetric rotation; twin 1 sits on the previous disk (mod D) so the
  // two parity pages of a group are always on distinct disks.
  return (d - 1 - (group % d) + twin * (d - 1)) % d;
}

PhysicalLocation DataStripingLayout::DataLocation(PageId page) const {
  const GroupId group = GroupOf(page);
  const uint32_t index = IndexInGroup(page);
  // Data pages occupy, in increasing disk order, the disks of the stripe
  // that do not hold parity.
  uint32_t seen = 0;
  for (DiskId disk = 0; disk < num_disks_; ++disk) {
    bool is_parity = false;
    for (uint32_t t = 0; t < parity_copies_; ++t) {
      if (ParityDisk(group, t) == disk) {
        is_parity = true;
        break;
      }
    }
    if (is_parity) {
      continue;
    }
    if (seen == index) {
      return PhysicalLocation{disk, group};
    }
    ++seen;
  }
  // Unreachable for valid inputs: there are exactly n_ non-parity disks.
  return PhysicalLocation{};
}

PhysicalLocation DataStripingLayout::ParityLocation(GroupId group,
                                                    uint32_t twin) const {
  return PhysicalLocation{ParityDisk(group, twin), group};
}

}  // namespace rda
