#include "storage/fault_injector.h"

namespace rda {

FaultInjector::FaultInjector(const FaultConfig& config)
    : config_(config), rng_(config.seed) {}

void FaultInjector::InjectLatentSector(SlotId slot) {
  if (latent_.insert(slot).second) {
    ++stats_.latent_sectors;
  }
}

void FaultInjector::ScheduleTransientRead(SlotId slot, uint32_t count) {
  for (uint32_t i = 0; i < count; ++i) {
    scripted_reads_[slot].push_back({FaultKind::kTransientRead, 0, 0});
  }
}

void FaultInjector::ScheduleTransientWrite(SlotId slot, uint32_t count) {
  for (uint32_t i = 0; i < count; ++i) {
    scripted_writes_[slot].push_back({FaultKind::kTransientWrite, 0, 0});
  }
}

void FaultInjector::ScheduleBitFlip(SlotId slot, size_t offset, uint8_t mask) {
  scripted_reads_[slot].push_back(
      {FaultKind::kBitFlip, offset, mask == 0 ? uint8_t{0x01} : mask});
}

void FaultInjector::ScheduleTornWrite(SlotId slot) {
  scripted_writes_[slot].push_back({FaultKind::kTornWrite, 0, 0});
}

FaultDecision FaultInjector::OnRead(SlotId slot, size_t page_size) {
  // Sticky latent errors dominate everything: the slot is unreadable until
  // rewritten, no matter what else the dice would say.
  if (latent_.contains(slot)) {
    return {FaultKind::kLatentSector, 0, 0};
  }
  if (auto it = scripted_reads_.find(slot); it != scripted_reads_.end()) {
    const Scripted next = it->second.front();
    it->second.pop_front();
    if (it->second.empty()) {
      scripted_reads_.erase(it);
    }
    switch (next.kind) {
      case FaultKind::kTransientRead:
        ++stats_.transient_reads;
        break;
      case FaultKind::kLatentSector:
        InjectLatentSector(slot);
        break;
      case FaultKind::kBitFlip:
        ++stats_.bit_flips;
        break;
      default:
        break;
    }
    return {next.kind, next.offset, next.mask};
  }
  if (!RandomBudgetLeft()) {
    return {};
  }
  if (config_.transient_read_p > 0 && rng_.Bernoulli(config_.transient_read_p)) {
    ++stats_.transient_reads;
    ++random_faults_;
    return {FaultKind::kTransientRead, 0, 0};
  }
  if (config_.latent_sector_p > 0 && rng_.Bernoulli(config_.latent_sector_p)) {
    ++random_faults_;
    InjectLatentSector(slot);
    return {FaultKind::kLatentSector, 0, 0};
  }
  if (config_.bit_flip_p > 0 && rng_.Bernoulli(config_.bit_flip_p)) {
    ++stats_.bit_flips;
    ++random_faults_;
    const size_t offset = page_size == 0 ? 0 : rng_.Uniform(page_size);
    const uint8_t mask = static_cast<uint8_t>(1u << rng_.Uniform(8));
    return {FaultKind::kBitFlip, offset, mask};
  }
  return {};
}

FaultDecision FaultInjector::OnWrite(SlotId slot, size_t page_size) {
  if (auto it = scripted_writes_.find(slot); it != scripted_writes_.end()) {
    const Scripted next = it->second.front();
    it->second.pop_front();
    if (it->second.empty()) {
      scripted_writes_.erase(it);
    }
    switch (next.kind) {
      case FaultKind::kTransientWrite:
        ++stats_.transient_writes;
        break;
      case FaultKind::kTornWrite:
        ++stats_.torn_writes;
        break;
      default:
        break;
    }
    return {next.kind, next.offset != 0 ? next.offset : page_size / 2, 0};
  }
  if (!RandomBudgetLeft()) {
    return {};
  }
  if (config_.transient_write_p > 0 &&
      rng_.Bernoulli(config_.transient_write_p)) {
    ++stats_.transient_writes;
    ++random_faults_;
    return {FaultKind::kTransientWrite, 0, 0};
  }
  if (config_.torn_write_p > 0 && rng_.Bernoulli(config_.torn_write_p)) {
    ++stats_.torn_writes;
    ++random_faults_;
    return {FaultKind::kTornWrite, page_size / 2, 0};
  }
  return {};
}

void FaultInjector::ClearLatent(SlotId slot) { latent_.erase(slot); }

void FaultInjector::OnReplace() {
  latent_.clear();
  scripted_reads_.clear();
  scripted_writes_.clear();
}

}  // namespace rda
