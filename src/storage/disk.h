#ifndef RDA_STORAGE_DISK_H_
#define RDA_STORAGE_DISK_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/fault_injector.h"
#include "storage/io_stats.h"
#include "storage/page.h"

namespace rda {

// Simple positional service-time model: every access pays a settle time, a
// seek proportional to the slot distance travelled, and half a rotation —
// except strictly sequential accesses (next slot after the previous one),
// which pay the transfer only. This is what makes the sequentiality
// argument of parity striping (Gray et al., paper Section 3.2) measurable:
// transfer COUNTS are layout-independent, service TIME is not.
struct ServiceTimeModel {
  double min_seek_ms = 0.5;
  double seek_ms_per_slot = 0.01;
  double rotation_ms = 4.2;  // Half a rotation at 7200 rpm.
  double transfer_ms = 0.5;
};

// One simulated disk: a page-granular, randomly addressable device with
// failure injection and transfer accounting.
//
// Failure model: Fail() makes every subsequent read and write return
// kIoError until Replace() installs a fresh (zeroed) medium — this models a
// total media failure of the drive, the failure class the paper's arrays are
// designed to survive (Section 1). Content present before Fail() is lost.
//
// A per-page checksum is maintained on write and verified on read, modelling
// sector ECC: it turns silent corruption of the medium into a kCorruption
// error. Partial (sector-level) faults — transient errors, sticky latent
// sector errors, bit flips, torn writes — come from an attached
// FaultInjector; a detached disk (the default) pays one pointer test per
// access and behaves exactly like the fault-free model.
//
// Thread safety: each disk carries its own mutex held for the duration of
// one access — the hardware analogue of a drive serving one request at a
// time. Accesses to DIFFERENT disks proceed in parallel, which is exactly
// the concurrency the array layouts are designed to expose. `failed_` is
// atomic so health checks (retry policy, degraded-mode tests) need no lock.
class Disk {
 public:
  Disk(DiskId id, SlotId num_slots, size_t page_size);

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;
  // Moves exist only so DiskArray can build its vector<Disk> at
  // construction time (single-threaded); the mutex is freshly constructed.
  Disk(Disk&& other) noexcept;
  Disk& operator=(Disk&& other) noexcept;

  // Reads the page at `slot` into `*out`. Counts one page transfer.
  Status Read(SlotId slot, PageImage* out) const;

  // Writes `image` to `slot`. Counts one page transfer. The payload size
  // must equal the disk's page size. The rvalue overload adopts the image's
  // buffer instead of copying it — for callers whose image is expiring.
  Status Write(SlotId slot, const PageImage& image);
  Status Write(SlotId slot, PageImage&& image);

  // Injects a media failure: all content is lost, I/O fails until Replace().
  void Fail();

  // Installs a fresh medium; the disk becomes usable again. ALL per-medium
  // mutable state is reset: the head parks at slot 0 and any sticky
  // sector-fault state in the attached injector is cleared (new platters
  // have no latent errors). The service clock (busy_ms) and transfer
  // counters deliberately survive — they are accounting aggregates of the
  // drive BAY across media generations, not medium state, and resetting
  // them would silently drop the rebuild's own cost from reports.
  void Replace();

  // Attaches a sector-fault source (null detaches). Non-owning; the caller
  // (usually DiskArray) keeps the injector alive while attached.
  void AttachFaultInjector(FaultInjector* injector) {
    std::lock_guard<std::mutex> lock(mu_);
    injector_ = injector;
  }
  FaultInjector* fault_injector() { return injector_; }

  // Accumulated service time under the positional model.
  double busy_ms() const {
    std::lock_guard<std::mutex> lock(mu_);
    return busy_ms_;
  }
  void ResetServiceClock() {
    std::lock_guard<std::mutex> lock(mu_);
    busy_ms_ = 0;
  }
  void set_service_model(const ServiceTimeModel& model) {
    std::lock_guard<std::mutex> lock(mu_);
    model_ = model;
  }
  // Real (wall-clock) service delay per access, slept while the drive holds
  // its request slot. 0 — the default — keeps accesses instantaneous; the
  // busy-ms accounting model above is unaffected either way. With a nonzero
  // delay, accesses to different disks overlap in real time, which is what
  // makes parallel recovery's I/O overlap measurable on any host.
  void set_real_access_delay_us(uint32_t us) {
    std::lock_guard<std::mutex> lock(mu_);
    real_delay_us_ = us;
  }
  // Charges extra service time (retry backoff) to this disk.
  void AddServiceDelay(double ms) const {
    std::lock_guard<std::mutex> lock(mu_);
    busy_ms_ += ms;
  }

  // Reclassifies `attempts` already-counted transfers of this disk as
  // retries: a retried access is ONE logical page transfer plus N retry
  // attempts, not N+1 transfers (the per-txn attribution and the BENCH_perf
  // transfer columns count logical work). Called by the array's retry loop
  // once the final outcome of an access is known.
  void ReclassifyRetries(uint64_t attempts, bool is_read) const;

  bool failed() const { return failed_.load(std::memory_order_acquire); }
  DiskId id() const { return id_; }
  SlotId num_slots() const { return static_cast<SlotId>(pages_.size()); }
  size_t page_size() const { return page_size_; }
  IoCounters counters() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
  }
  void ResetCounters() {
    std::lock_guard<std::mutex> lock(mu_);
    counters_ = IoCounters();
  }

 private:
  uint32_t ChecksumOf(const PageImage& image) const;
  void AccountAccess(SlotId slot) const;
  // Shared validation + accounting of both Write overloads.
  Status CheckWrite(SlotId slot, const PageImage& image);
  // Consults the injector about this read; applies bit flips to the stored
  // page. Returns non-Ok for transient / latent faults.
  Status ApplyReadFaults(SlotId slot) const;
  // Consults the injector about this write. `handled` is set when the
  // fault consumed the write (transient: nothing stored; torn: a mixed
  // image was stored and success must be reported).
  Status ApplyWriteFaults(SlotId slot, const PageImage& image, bool* handled);

  DiskId id_;
  size_t page_size_;
  std::atomic<bool> failed_{false};
  // Serializes one access at a time (media, checksums, counters, head
  // position, injector decisions). Leaf lock: nothing is acquired under it.
  mutable std::mutex mu_;
  std::vector<PageImage> pages_;
  std::vector<uint32_t> checksums_;
  FaultInjector* injector_ = nullptr;
  mutable IoCounters counters_;
  ServiceTimeModel model_;
  mutable double busy_ms_ = 0;
  mutable SlotId head_slot_ = 0;  // Current head position.
  uint32_t real_delay_us_ = 0;    // Wall-clock sleep per access (0 = none).
};

}  // namespace rda

#endif  // RDA_STORAGE_DISK_H_
