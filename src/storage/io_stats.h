#ifndef RDA_STORAGE_IO_STATS_H_
#define RDA_STORAGE_IO_STATS_H_

#include <cstdint>

namespace rda {

// Page-transfer counters. The paper's evaluation measures every cost in
// "units of page transfers" (Section 5); these counters are the simulator's
// equivalent of that metric.
struct IoCounters {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;

  uint64_t total() const { return page_reads + page_writes; }

  IoCounters& operator+=(const IoCounters& other) {
    page_reads += other.page_reads;
    page_writes += other.page_writes;
    return *this;
  }

  IoCounters operator-(const IoCounters& other) const {
    return IoCounters{page_reads - other.page_reads,
                      page_writes - other.page_writes};
  }

  bool operator==(const IoCounters&) const = default;
};

}  // namespace rda

#endif  // RDA_STORAGE_IO_STATS_H_
