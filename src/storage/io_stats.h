#ifndef RDA_STORAGE_IO_STATS_H_
#define RDA_STORAGE_IO_STATS_H_

#include <cstdint>

#include "common/check.h"

namespace rda {

// Page-transfer counters. The paper's evaluation measures every cost in
// "units of page transfers" (Section 5); these counters are the simulator's
// equivalent of that metric. `xor_computations` tracks page-sized XOR
// operations separately — they are CPU work, not transfers, so total()
// deliberately excludes them. `io_retries` counts extra disk attempts the
// retry policy issued for one logical transfer; a retried read is still ONE
// page transfer in the paper's cost metric, so total() excludes retries too
// (they are accounted as service time, not transfers).
struct IoCounters {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t xor_computations = 0;
  uint64_t io_retries = 0;

  uint64_t total() const { return page_reads + page_writes; }

  IoCounters& operator+=(const IoCounters& other) {
    page_reads += other.page_reads;
    page_writes += other.page_writes;
    xor_computations += other.xor_computations;
    io_retries += other.io_retries;
    return *this;
  }

  IoCounters operator+(const IoCounters& other) const {
    IoCounters result = *this;
    result += other;
    return result;
  }

  // Deltas only make sense against an earlier snapshot of the same
  // counters; subtracting a larger value would silently wrap.
  IoCounters operator-(const IoCounters& other) const {
    RDA_CHECK(page_reads >= other.page_reads,
              "IoCounters delta would underflow page_reads");
    RDA_CHECK(page_writes >= other.page_writes,
              "IoCounters delta would underflow page_writes");
    RDA_CHECK(xor_computations >= other.xor_computations,
              "IoCounters delta would underflow xor_computations");
    RDA_CHECK(io_retries >= other.io_retries,
              "IoCounters delta would underflow io_retries");
    return IoCounters{page_reads - other.page_reads,
                      page_writes - other.page_writes,
                      xor_computations - other.xor_computations,
                      io_retries - other.io_retries};
  }

  bool operator==(const IoCounters&) const = default;
};

}  // namespace rda

#endif  // RDA_STORAGE_IO_STATS_H_
