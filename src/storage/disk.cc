#include "storage/disk.h"

#include <string>
#include <utility>

#include "common/crc32.h"

namespace rda {

Disk::Disk(DiskId id, SlotId num_slots, size_t page_size)
    : id_(id),
      page_size_(page_size),
      pages_(num_slots, PageImage(page_size)),
      checksums_(num_slots, 0) {
  // Checksums of zeroed pages are computed lazily: slot checksum 0 with an
  // all-default image means "never written", which ChecksumOf also yields.
  for (SlotId s = 0; s < num_slots; ++s) {
    checksums_[s] = ChecksumOf(pages_[s]);
  }
}

uint32_t Disk::ChecksumOf(const PageImage& image) const {
  uint32_t crc = Crc32c(image.payload.data(), image.payload.size());
  crc = Crc32c(&image.header.txn_id, sizeof(image.header.txn_id), crc);
  crc = Crc32c(&image.header.timestamp, sizeof(image.header.timestamp), crc);
  crc = Crc32c(&image.header.parity_state, sizeof(image.header.parity_state),
               crc);
  crc = Crc32c(&image.header.dirty_page, sizeof(image.header.dirty_page), crc);
  return crc;
}

void Disk::AccountAccess(SlotId slot) const {
  if (slot == head_slot_ + 1) {
    busy_ms_ += model_.transfer_ms;  // Sequential: no seek, no rotation.
  } else {
    const double distance = slot > head_slot_
                                ? static_cast<double>(slot - head_slot_)
                                : static_cast<double>(head_slot_ - slot);
    busy_ms_ += model_.min_seek_ms + model_.seek_ms_per_slot * distance +
                model_.rotation_ms + model_.transfer_ms;
  }
  head_slot_ = slot;
}

Status Disk::Read(SlotId slot, PageImage* out) const {
  if (failed_) {
    return Status::IoError("disk " + std::to_string(id_) + " failed");
  }
  if (slot >= pages_.size()) {
    return Status::InvalidArgument("slot " + std::to_string(slot) +
                                   " out of range on disk " +
                                   std::to_string(id_));
  }
  ++counters_.page_reads;
  AccountAccess(slot);
  if (ChecksumOf(pages_[slot]) != checksums_[slot]) {
    return Status::Corruption("checksum mismatch at disk " +
                              std::to_string(id_) + " slot " +
                              std::to_string(slot));
  }
  *out = pages_[slot];
  return Status::Ok();
}

Status Disk::Write(SlotId slot, const PageImage& image) {
  RDA_RETURN_IF_ERROR(CheckWrite(slot, image));
  // Copy-assignment reuses the stored page's existing buffer; steady-state
  // writes allocate nothing.
  pages_[slot] = image;
  checksums_[slot] = ChecksumOf(pages_[slot]);
  return Status::Ok();
}

Status Disk::Write(SlotId slot, PageImage&& image) {
  RDA_RETURN_IF_ERROR(CheckWrite(slot, image));
  pages_[slot] = std::move(image);
  checksums_[slot] = ChecksumOf(pages_[slot]);
  return Status::Ok();
}

Status Disk::CheckWrite(SlotId slot, const PageImage& image) {
  if (failed_) {
    return Status::IoError("disk " + std::to_string(id_) + " failed");
  }
  if (slot >= pages_.size()) {
    return Status::InvalidArgument("slot " + std::to_string(slot) +
                                   " out of range on disk " +
                                   std::to_string(id_));
  }
  if (image.payload.size() != page_size_) {
    return Status::InvalidArgument("payload size mismatch on disk " +
                                   std::to_string(id_));
  }
  ++counters_.page_writes;
  AccountAccess(slot);
  return Status::Ok();
}

void Disk::Fail() {
  failed_ = true;
  // Media failure destroys the content; Replace() must not resurrect it.
  for (auto& page : pages_) {
    page = PageImage(page_size_);
  }
  for (SlotId s = 0; s < pages_.size(); ++s) {
    checksums_[s] = ChecksumOf(pages_[s]);
  }
}

void Disk::Replace() { failed_ = false; }

}  // namespace rda
