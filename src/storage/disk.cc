#include "storage/disk.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "common/crc32.h"

namespace rda {

Disk::Disk(DiskId id, SlotId num_slots, size_t page_size)
    : id_(id),
      page_size_(page_size),
      pages_(num_slots, PageImage(page_size)),
      checksums_(num_slots, 0) {
  // Checksums of zeroed pages are computed lazily: slot checksum 0 with an
  // all-default image means "never written", which ChecksumOf also yields.
  for (SlotId s = 0; s < num_slots; ++s) {
    checksums_[s] = ChecksumOf(pages_[s]);
  }
}

Disk::Disk(Disk&& other) noexcept
    : id_(other.id_),
      page_size_(other.page_size_),
      failed_(other.failed_.load(std::memory_order_relaxed)),
      pages_(std::move(other.pages_)),
      checksums_(std::move(other.checksums_)),
      injector_(other.injector_),
      counters_(other.counters_),
      model_(other.model_),
      busy_ms_(other.busy_ms_),
      head_slot_(other.head_slot_),
      real_delay_us_(other.real_delay_us_) {}

Disk& Disk::operator=(Disk&& other) noexcept {
  id_ = other.id_;
  page_size_ = other.page_size_;
  failed_.store(other.failed_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  pages_ = std::move(other.pages_);
  checksums_ = std::move(other.checksums_);
  injector_ = other.injector_;
  counters_ = other.counters_;
  model_ = other.model_;
  busy_ms_ = other.busy_ms_;
  head_slot_ = other.head_slot_;
  real_delay_us_ = other.real_delay_us_;
  return *this;
}

uint32_t Disk::ChecksumOf(const PageImage& image) const {
  uint32_t crc = Crc32c(image.payload.data(), image.payload.size());
  crc = Crc32c(&image.header.txn_id, sizeof(image.header.txn_id), crc);
  crc = Crc32c(&image.header.timestamp, sizeof(image.header.timestamp), crc);
  crc = Crc32c(&image.header.parity_state, sizeof(image.header.parity_state),
               crc);
  crc = Crc32c(&image.header.dirty_page, sizeof(image.header.dirty_page), crc);
  return crc;
}

void Disk::AccountAccess(SlotId slot) const {
  if (slot == head_slot_ + 1) {
    busy_ms_ += model_.transfer_ms;  // Sequential: no seek, no rotation.
  } else {
    const double distance = slot > head_slot_
                                ? static_cast<double>(slot - head_slot_)
                                : static_cast<double>(head_slot_ - slot);
    busy_ms_ += model_.min_seek_ms + model_.seek_ms_per_slot * distance +
                model_.rotation_ms + model_.transfer_ms;
  }
  head_slot_ = slot;
  if (real_delay_us_ > 0) {
    // The mutex stays held: a drive serves one request at a time, so the
    // delay serializes THIS disk while other disks keep serving.
    std::this_thread::sleep_for(std::chrono::microseconds(real_delay_us_));
  }
}

Status Disk::Read(SlotId slot, PageImage* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (failed()) {
    return Status::IoError("disk " + std::to_string(id_) + " failed");
  }
  if (slot >= pages_.size()) {
    return Status::InvalidArgument("slot " + std::to_string(slot) +
                                   " out of range on disk " +
                                   std::to_string(id_));
  }
  ++counters_.page_reads;
  AccountAccess(slot);
  RDA_RETURN_IF_ERROR(ApplyReadFaults(slot));
  if (ChecksumOf(pages_[slot]) != checksums_[slot]) {
    return Status::Corruption("checksum mismatch at disk " +
                              std::to_string(id_) + " slot " +
                              std::to_string(slot));
  }
  *out = pages_[slot];
  return Status::Ok();
}

Status Disk::Write(SlotId slot, const PageImage& image) {
  std::lock_guard<std::mutex> lock(mu_);
  RDA_RETURN_IF_ERROR(CheckWrite(slot, image));
  bool handled = false;
  RDA_RETURN_IF_ERROR(ApplyWriteFaults(slot, image, &handled));
  if (handled) {
    return Status::Ok();
  }
  // Copy-assignment reuses the stored page's existing buffer; steady-state
  // writes allocate nothing.
  pages_[slot] = image;
  checksums_[slot] = ChecksumOf(pages_[slot]);
  if (injector_ != nullptr) {
    injector_->ClearLatent(slot);  // Rewriting remaps a latent sector.
  }
  return Status::Ok();
}

Status Disk::Write(SlotId slot, PageImage&& image) {
  std::lock_guard<std::mutex> lock(mu_);
  RDA_RETURN_IF_ERROR(CheckWrite(slot, image));
  bool handled = false;
  RDA_RETURN_IF_ERROR(ApplyWriteFaults(slot, image, &handled));
  if (handled) {
    return Status::Ok();
  }
  pages_[slot] = std::move(image);
  checksums_[slot] = ChecksumOf(pages_[slot]);
  if (injector_ != nullptr) {
    injector_->ClearLatent(slot);
  }
  return Status::Ok();
}

Status Disk::CheckWrite(SlotId slot, const PageImage& image) {
  if (failed()) {
    return Status::IoError("disk " + std::to_string(id_) + " failed");
  }
  if (slot >= pages_.size()) {
    return Status::InvalidArgument("slot " + std::to_string(slot) +
                                   " out of range on disk " +
                                   std::to_string(id_));
  }
  if (image.payload.size() != page_size_) {
    return Status::InvalidArgument("payload size mismatch on disk " +
                                   std::to_string(id_));
  }
  ++counters_.page_writes;
  AccountAccess(slot);
  return Status::Ok();
}

void Disk::ReclassifyRetries(uint64_t attempts, bool is_read) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (is_read) {
    attempts = std::min(attempts, counters_.page_reads);
    counters_.page_reads -= attempts;
  } else {
    attempts = std::min(attempts, counters_.page_writes);
    counters_.page_writes -= attempts;
  }
  counters_.io_retries += attempts;
}

void Disk::Fail() {
  std::lock_guard<std::mutex> lock(mu_);
  failed_.store(true, std::memory_order_release);
  // Media failure destroys the content; Replace() must not resurrect it.
  for (auto& page : pages_) {
    page = PageImage(page_size_);
  }
  for (SlotId s = 0; s < pages_.size(); ++s) {
    checksums_[s] = ChecksumOf(pages_[s]);
  }
}

Status Disk::ApplyReadFaults(SlotId slot) const {
  if (injector_ == nullptr) {
    return Status::Ok();
  }
  const FaultDecision d = injector_->OnRead(slot, page_size_);
  switch (d.kind) {
    case FaultKind::kNone:
      return Status::Ok();
    case FaultKind::kTransientRead:
      return Status::IoError("transient read fault at disk " +
                             std::to_string(id_) + " slot " +
                             std::to_string(slot));
    case FaultKind::kLatentSector:
      return Status::IoError("latent sector error at disk " +
                             std::to_string(id_) + " slot " +
                             std::to_string(slot));
    case FaultKind::kBitFlip: {
      // Bit rot physically mutates the medium even during a read; the page
      // store is device state, const only in the caller's view. The flip is
      // silent here — the checksum verify right after this call reports it.
      PageImage& page = const_cast<Disk*>(this)->pages_[slot];
      if (d.offset < page.payload.size()) {
        page.payload[d.offset] ^= d.mask;
      } else {
        page.header.timestamp ^= d.mask;  // Out-of-band header corruption.
      }
      return Status::Ok();
    }
    default:
      return Status::Ok();
  }
}

Status Disk::ApplyWriteFaults(SlotId slot, const PageImage& image,
                              bool* handled) {
  *handled = false;
  if (injector_ == nullptr) {
    return Status::Ok();
  }
  const FaultDecision d = injector_->OnWrite(slot, page_size_);
  switch (d.kind) {
    case FaultKind::kTransientWrite:
      // Nothing reached the medium; the slot — including any latent error
      // on it — is untouched.
      return Status::IoError("transient write fault at disk " +
                             std::to_string(id_) + " slot " +
                             std::to_string(slot));
    case FaultKind::kTornWrite: {
      // The head tore the sector: the first `offset` payload bytes keep the
      // OLD image, the rest and the header carry the new one. ECC was
      // computed for the intended image, so the next read of this slot
      // reports kCorruption — the write itself "succeeds".
      PageImage& stored = pages_[slot];
      const size_t split = std::min(d.offset, image.payload.size());
      std::copy(image.payload.begin() + static_cast<ptrdiff_t>(split),
                image.payload.end(),
                stored.payload.begin() + static_cast<ptrdiff_t>(split));
      stored.header = image.header;
      checksums_[slot] = ChecksumOf(image);
      injector_->ClearLatent(slot);  // The slot WAS physically rewritten.
      *handled = true;
      return Status::Ok();
    }
    default:
      return Status::Ok();
  }
}

void Disk::Replace() {
  std::lock_guard<std::mutex> lock(mu_);
  failed_.store(false, std::memory_order_release);
  head_slot_ = 0;  // A fresh drive parks its head at the outer track.
  if (injector_ != nullptr) {
    injector_->OnReplace();  // New platters carry no latent errors.
  }
}

}  // namespace rda
