#ifndef RDA_STORAGE_DATA_PAGE_META_H_
#define RDA_STORAGE_DATA_PAGE_META_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace rda {

// Metadata embedded in the first bytes of every DATA page payload (an
// on-page header, like real database pages). Because it lives inside the
// payload it is covered by the parity XOR: a media rebuild reconstructs it,
// and the twin-page undo D_old = (P xor P') xor D_new restores it exactly —
// including the TWIST chain link — with no extra machinery.
//
// Parity pages, in contrast, keep their metadata (state, timestamp, covered
// page) in the out-of-band PageImage::header: parity metadata describes the
// parity page itself and must not participate in the XOR.
struct DataPageMeta {
  // Transaction whose (uncommitted) update this propagated page carries;
  // kInvalidTxnId once the content is committed or undone. The parity undo
  // uses it as an idempotence stamp.
  TxnId txn_id = kInvalidTxnId;
  // pageLSN: stamp of the latest update included in this page image. REDO
  // applies a committed after-image iff its LSN is greater.
  Lsn page_lsn = 0;
  // Previous page propagated without UNDO logging by the same transaction
  // (TWIST-style chain, paper Section 4.3); kInvalidPageId terminates.
  PageId chain_prev = kInvalidPageId;

  bool operator==(const DataPageMeta&) const = default;
};

// Bytes reserved at the start of every data page payload for the embedded
// metadata. Records / user bytes start at this offset.
inline constexpr size_t kDataRegionOffset = 24;

// Serializes `meta` into the first kDataRegionOffset bytes of `payload`.
// Precondition: payload->size() >= kDataRegionOffset.
void StoreDataMeta(const DataPageMeta& meta, std::vector<uint8_t>* payload);

// Reads the embedded metadata back. Precondition: payload.size() >=
// kDataRegionOffset.
DataPageMeta LoadDataMeta(const std::vector<uint8_t>& payload);

}  // namespace rda

#endif  // RDA_STORAGE_DATA_PAGE_META_H_
