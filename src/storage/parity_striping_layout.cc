#include "storage/parity_striping_layout.h"

namespace rda {

Result<std::unique_ptr<ParityStripingLayout>> ParityStripingLayout::Create(
    uint32_t data_pages_per_group, uint32_t parity_copies,
    uint32_t min_data_pages) {
  if (data_pages_per_group < 1) {
    return Status::InvalidArgument("data_pages_per_group must be >= 1");
  }
  if (parity_copies != 1 && parity_copies != 2) {
    return Status::InvalidArgument("parity_copies must be 1 or 2");
  }
  if (min_data_pages < 1) {
    return Status::InvalidArgument("min_data_pages must be >= 1");
  }
  const uint32_t num_disks = data_pages_per_group + parity_copies;
  // Capacity per unit of area_size is num_disks rows * n pages per group.
  const uint32_t per_area_slot = num_disks * data_pages_per_group;
  const SlotId area_size =
      (min_data_pages + per_area_slot - 1) / per_area_slot;
  return std::unique_ptr<ParityStripingLayout>(new ParityStripingLayout(
      data_pages_per_group, parity_copies, area_size));
}

ParityStripingLayout::ParityStripingLayout(uint32_t n, uint32_t parity_copies,
                                           SlotId area_size)
    : n_(n),
      parity_copies_(parity_copies),
      num_disks_(n + parity_copies),
      area_size_(area_size) {}

bool ParityStripingLayout::IsParityArea(DiskId disk, uint32_t row) const {
  for (uint32_t t = 0; t < parity_copies_; ++t) {
    if (ParityDisk(row, t) == disk) {
      return true;
    }
  }
  return false;
}

DiskId ParityStripingLayout::ParityDisk(uint32_t row, uint32_t twin) const {
  return (row + twin) % num_disks_;
}

DiskId ParityStripingLayout::DataDisk(uint32_t row, uint32_t index) const {
  uint32_t seen = 0;
  for (DiskId disk = 0; disk < num_disks_; ++disk) {
    if (IsParityArea(disk, row)) {
      continue;
    }
    if (seen == index) {
      return disk;
    }
    ++seen;
  }
  return kInvalidDiskId;  // Unreachable for index < n_.
}

uint32_t ParityStripingLayout::DataIndexOfDisk(uint32_t row,
                                               DiskId disk) const {
  uint32_t seen = 0;
  for (DiskId d = 0; d < disk; ++d) {
    if (!IsParityArea(d, row)) {
      ++seen;
    }
  }
  return seen;
}

uint32_t ParityStripingLayout::DataRowOrdinal(DiskId disk,
                                              uint32_t row) const {
  // Parity rows of `disk` are rows r with ParityDisk(r, t) == disk, i.e.
  // r in {disk - t mod D}. Count data rows below `row`.
  uint32_t ordinal = 0;
  for (uint32_t r = 0; r < row; ++r) {
    if (!IsParityArea(disk, r)) {
      ++ordinal;
    }
  }
  return ordinal;
}

uint32_t ParityStripingLayout::RowOfDataOrdinal(DiskId disk,
                                                uint32_t ordinal) const {
  uint32_t seen = 0;
  for (uint32_t r = 0; r < num_disks_; ++r) {
    if (IsParityArea(disk, r)) {
      continue;
    }
    if (seen == ordinal) {
      return r;
    }
    ++seen;
  }
  return num_disks_;  // Unreachable for ordinal < D - p.
}

PhysicalLocation ParityStripingLayout::DataLocation(PageId page) const {
  const uint32_t data_per_disk = n_ * area_size_;
  const DiskId disk = page / data_per_disk;
  const uint32_t within = page % data_per_disk;
  const uint32_t ordinal = within / area_size_;  // Which data area of disk.
  const uint32_t offset = within % area_size_;
  const uint32_t row = RowOfDataOrdinal(disk, ordinal);
  return PhysicalLocation{disk, row * area_size_ + offset};
}

PhysicalLocation ParityStripingLayout::ParityLocation(GroupId group,
                                                      uint32_t twin) const {
  const uint32_t row = group / area_size_;
  const uint32_t offset = group % area_size_;
  return PhysicalLocation{ParityDisk(row, twin), row * area_size_ + offset};
}

GroupId ParityStripingLayout::GroupOf(PageId page) const {
  const PhysicalLocation loc = DataLocation(page);
  // slot = row * area_size + offset, and GroupId = row * area_size + offset.
  return loc.slot;
}

uint32_t ParityStripingLayout::IndexInGroup(PageId page) const {
  const PhysicalLocation loc = DataLocation(page);
  const uint32_t row = loc.slot / area_size_;
  return DataIndexOfDisk(row, loc.disk);
}

PageId ParityStripingLayout::PageAt(GroupId group, uint32_t index) const {
  const uint32_t row = group / area_size_;
  const uint32_t offset = group % area_size_;
  const DiskId disk = DataDisk(row, index);
  const uint32_t ordinal = DataRowOrdinal(disk, row);
  const uint32_t data_per_disk = n_ * area_size_;
  return disk * data_per_disk + ordinal * area_size_ + offset;
}

}  // namespace rda
