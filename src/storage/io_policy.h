#ifndef RDA_STORAGE_IO_POLICY_H_
#define RDA_STORAGE_IO_POLICY_H_

#include <cstdint>

namespace rda {

// How the array reacts to I/O errors (DESIGN.md section 10's retry /
// escalation state machine):
//
//   attempt -> kIoError (disk alive) -> retry up to max_*_retries with a
//   deterministic linear backoff charged to the disk's service clock ->
//   still failing (or kCorruption, which is never retried: checksums do
//   not heal by re-reading) -> persistent sector error, counted against
//   the disk's error budget -> budget exhausted -> the disk is escalated
//   to a full Fail() and must be rebuilt.
//
// Reads against a disk already marked failed are never retried — that is
// degraded mode, the recovery layer's job. The defaults retry transients
// but never escalate (disk_error_budget = 0), so an unconfigured array
// behaves exactly like the pre-policy code on the clean path. One
// exception ignores the budget: a journaled async write that exhausts its
// retries at drain time always escalates the disk, because its submitter
// already saw Ok and only redundancy can keep that promise (DESIGN.md
// section 16).
struct IoPolicy {
  // Extra attempts after the first failure. 0 disables retrying.
  uint32_t max_read_retries = 2;
  uint32_t max_write_retries = 2;
  // Service-time cost of the k-th retry is k * retry_backoff_ms, charged
  // to the disk's busy clock (deterministic, so simulations reproduce).
  double retry_backoff_ms = 0.5;
  // Persistent sector errors (exhausted retries or checksum mismatches)
  // tolerated per disk before it is escalated to Fail(). 0 = never
  // escalate.
  uint32_t disk_error_budget = 0;

  // --- asynchronous I/O engine (DESIGN.md section 16) ---

  // Worker threads of the per-disk submission-queue engine. 0 (the
  // default) disables the engine entirely: every write is synchronous and
  // the array behaves bit-for-bit like the pre-engine code.
  uint32_t width = 0;
  // Pending writes on one disk that wake its drain worker. Larger values
  // widen the coalescing window; Flush() always drains regardless.
  uint32_t queue_watermark = 32;
};

// Array-level accounting of the policy's work. Mirrored into the obs
// counters storage.io_retries / storage.transient_faults /
// storage.escalations when a hub is attached.
struct IoPolicyStats {
  // Re-attempts performed (every loop iteration after the first).
  uint64_t io_retries = 0;
  // Faults that a retry absorbed (the attempt after them succeeded).
  uint64_t transient_faults = 0;
  // Faults that survived all retries, plus checksum mismatches.
  uint64_t sector_errors = 0;
  // Disks force-failed after exhausting their error budget.
  uint64_t escalations = 0;
};

class Status;

// True when `status` is worth retrying under the policy: an I/O error on a
// disk that is still alive. Corruption is persistent (re-reading cannot
// fix a checksum) and a failed disk is degraded mode, not a transient.
bool RetryableIoError(const Status& status, bool disk_failed);

// Deterministic linear backoff of the `attempt`-th retry (1-based).
double RetryBackoffMs(const IoPolicy& policy, uint32_t attempt);

}  // namespace rda

#endif  // RDA_STORAGE_IO_POLICY_H_
