#ifndef RDA_STORAGE_FAULT_INJECTOR_H_
#define RDA_STORAGE_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "common/random.h"
#include "common/types.h"

namespace rda {

// The sector-level fault taxonomy (DESIGN.md section 10). Total media
// failure stays a separate mechanism (Disk::Fail); everything here is a
// *partial* fault of one slot — the failure class parity redundancy should
// absorb without declaring the whole drive dead.
enum class FaultKind : uint8_t {
  kNone = 0,
  // This read fails with kIoError; the device recovers by itself, so an
  // immediate retry succeeds (unless a new fault is drawn).
  kTransientRead,
  // This write fails with kIoError and stores nothing; a retry succeeds.
  kTransientWrite,
  // The slot develops a persistent (sticky) kIoError: every read fails
  // until the slot is rewritten, which remaps/clears it.
  kLatentSector,
  // One stored bit flips silently. The medium accepts reads, but the
  // per-page checksum no longer matches: kCorruption until rewritten.
  kBitFlip,
  // The write is torn: the first half of the slot keeps the OLD image, the
  // second half receives the new one. The write reports success; the next
  // read fails the checksum (computed over the intended image).
  kTornWrite,
};

// Per-access fault probabilities plus the seed. All probabilities default
// to zero, so an armed-but-default injector is a no-op — the zero-cost
// baseline the perf report asserts.
struct FaultConfig {
  // Master switch: Database::Open only attaches injectors when true.
  bool enabled = false;
  uint64_t seed = 1;
  double transient_read_p = 0;
  double transient_write_p = 0;
  double latent_sector_p = 0;  // Drawn per read access.
  double bit_flip_p = 0;       // Drawn per read access.
  double torn_write_p = 0;     // Drawn per write access.
  // Hard cap on probabilistically drawn faults (scripted injections are
  // not counted). Keeps long soaks from accumulating unbounded damage.
  uint64_t max_random_faults = UINT64_MAX;
};

// Everything this injector has done, by kind. `latent_sectors` counts
// distinct latent-error injections, not the (repeated) read hits they
// cause.
struct FaultStats {
  uint64_t transient_reads = 0;
  uint64_t transient_writes = 0;
  uint64_t latent_sectors = 0;
  uint64_t bit_flips = 0;
  uint64_t torn_writes = 0;

  uint64_t total() const {
    return transient_reads + transient_writes + latent_sectors + bit_flips +
           torn_writes;
  }
  FaultStats& operator+=(const FaultStats& other) {
    transient_reads += other.transient_reads;
    transient_writes += other.transient_writes;
    latent_sectors += other.latent_sectors;
    bit_flips += other.bit_flips;
    torn_writes += other.torn_writes;
    return *this;
  }
};

// What the Disk should do to the current access. For kBitFlip, `offset`
// and `mask` locate the flipped bits; offset == page_size addresses the
// out-of-band header timestamp (scripted header corruption). For
// kTornWrite, `offset` is the split point between old and new content.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  size_t offset = 0;
  uint8_t mask = 0;
};

// A seeded, scriptable fault source for ONE Disk. The Disk consults it on
// every access (a null-pointer test when detached); the injector decides,
// the Disk applies. Two modes compose:
//  - scripted: Inject*/Schedule* queue deterministic faults per slot,
//    consumed in FIFO order before any dice are rolled;
//  - probabilistic: per-access Bernoulli draws from FaultConfig.
// Latent-error stickiness lives here (per-slot set), so Disk::Replace can
// reset it wholesale with the rest of the medium state.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // --- scripted injection (deterministic tests) ---
  void InjectLatentSector(SlotId slot);
  void ScheduleTransientRead(SlotId slot, uint32_t count = 1);
  void ScheduleTransientWrite(SlotId slot, uint32_t count = 1);
  // offset defaults to mid-payload; pass page_size for the header flip.
  void ScheduleBitFlip(SlotId slot, size_t offset, uint8_t mask = 0x01);
  void ScheduleTornWrite(SlotId slot);

  // --- decision hooks (called by Disk) ---
  FaultDecision OnRead(SlotId slot, size_t page_size);
  FaultDecision OnWrite(SlotId slot, size_t page_size);

  // A successful (or torn) write remaps the slot: the latent error, if
  // any, is cleared.
  void ClearLatent(SlotId slot);
  bool HasLatent(SlotId slot) const { return latent_.contains(slot); }
  size_t latent_count() const { return latent_.size(); }

  // Replace() installed a fresh medium: all per-slot fault state (latent
  // errors, scripted queues) is gone. Stats and the RNG stream survive —
  // they describe the injector, not the medium.
  void OnReplace();

  const FaultStats& stats() const { return stats_; }

 private:
  struct Scripted {
    FaultKind kind = FaultKind::kNone;
    size_t offset = 0;
    uint8_t mask = 0;
  };

  bool RandomBudgetLeft() const { return random_faults_ < config_.max_random_faults; }

  FaultConfig config_;
  Random rng_;
  FaultStats stats_;
  uint64_t random_faults_ = 0;
  std::unordered_set<SlotId> latent_;
  std::unordered_map<SlotId, std::deque<Scripted>> scripted_reads_;
  std::unordered_map<SlotId, std::deque<Scripted>> scripted_writes_;
};

}  // namespace rda

#endif  // RDA_STORAGE_FAULT_INJECTOR_H_
