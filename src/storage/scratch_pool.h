#ifndef RDA_STORAGE_SCRATCH_POOL_H_
#define RDA_STORAGE_SCRATCH_POOL_H_

#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "storage/page.h"

namespace rda {

// A free list of page-sized PageImages for transient use on the I/O hot
// path. The parity layer performs 2-4 page-sized reads and XOR accumulations
// per propagation; without a pool each of those allocates (and frees) a
// page-sized vector. Acquire() hands out an image whose payload keeps its
// heap buffer across uses, so steady-state propagation performs no
// allocations at all.
//
// Ownership rules (see DESIGN.md section 9):
//  - A ScratchImage returns its buffer to the pool on destruction (RAII).
//  - Acquire() always returns a zeroed payload and a default header, so a
//    scratch image is usable both as an XOR accumulator and as a Read target.
//  - A payload that must outlive the scratch scope (e.g. a restored image
//    returned to the caller) is moved OUT of the image with TakePayload();
//    the pool then replaces the buffer lazily on the next Acquire().
//  - The free list is guarded by a leaf mutex, so concurrent parity
//    propagations (which may run under different group latches) can share
//    one pool; the mutex is touched only at Acquire/Release boundaries.
class ScratchPool {
 public:
  class ScratchImage;

  explicit ScratchPool(size_t page_size) : page_size_(page_size) {}

  ScratchPool(const ScratchPool&) = delete;
  ScratchPool& operator=(const ScratchPool&) = delete;

  // Returns a scratch image with a zeroed, page-sized payload.
  ScratchImage Acquire();

  size_t page_size() const { return page_size_; }
  // Buffers currently parked in the free list (observability for tests).
  size_t free_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }

  // RAII handle around a pooled PageImage.
  class ScratchImage {
   public:
    ScratchImage(ScratchImage&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          image_(std::move(other.image_)) {}
    ScratchImage& operator=(ScratchImage&&) = delete;
    ScratchImage(const ScratchImage&) = delete;
    ScratchImage& operator=(const ScratchImage&) = delete;

    ~ScratchImage() {
      if (pool_ != nullptr) {
        pool_->Release(std::move(image_));
      }
    }

    PageImage& image() { return image_; }
    PageImage* operator->() { return &image_; }
    PageImage& operator*() { return image_; }
    std::vector<uint8_t>& payload() { return image_.payload; }

    // Moves the payload out for callers that need to keep it; the scratch
    // buffer behind this image is gone and the pool reallocates lazily.
    std::vector<uint8_t> TakePayload() { return std::move(image_.payload); }

   private:
    friend class ScratchPool;
    ScratchImage(ScratchPool* pool, PageImage image)
        : pool_(pool), image_(std::move(image)) {}

    ScratchPool* pool_;
    PageImage image_;
  };

 private:
  void Release(PageImage image) {
    // Keep only buffers that still own page-sized storage (a TakePayload
    // leaves an empty vector behind; re-pooling it would just defer the
    // allocation to a hotter moment).
    if (image.payload.capacity() >= page_size_) {
      std::lock_guard<std::mutex> lock(mu_);
      free_.push_back(std::move(image));
    }
  }

  size_t page_size_;
  mutable std::mutex mu_;  // Leaf lock: guards free_ only.
  std::vector<PageImage> free_;
};

inline ScratchPool::ScratchImage ScratchPool::Acquire() {
  PageImage image;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      image = std::move(free_.back());
      free_.pop_back();
    }
  }
  if (image.payload.capacity() < page_size_) {
    return ScratchImage(this, PageImage(page_size_));
  }
  image.payload.assign(page_size_, 0);  // Reuses the retained capacity.
  image.header = PageHeader();
  return ScratchImage(this, std::move(image));
}

}  // namespace rda

#endif  // RDA_STORAGE_SCRATCH_POOL_H_
