#ifndef RDA_STORAGE_DATA_STRIPING_LAYOUT_H_
#define RDA_STORAGE_DATA_STRIPING_LAYOUT_H_

#include <memory>

#include "common/status.h"
#include "storage/layout.h"

namespace rda {

// RAID-5-style data striping with rotated parity (paper Figures 1 and 4).
//
// The array has D = n + p disks, where n = data pages per group and
// p = parity copies (2 for the twin-page scheme). Parity group g is stripe g:
// one page on every disk at slot g. The parity copies occupy disks
//   parity disk t of stripe g = (D - 1 - (g % D) + t*(D-1)) % D  (t = 0, 1)
// i.e. the classic left-symmetric rotation, with the second twin placed on
// the disk "before" the first so the twins rotate together but never collide.
// Data pages of the stripe fill the remaining disks in increasing disk
// order; consecutive logical pages therefore interleave across disks (large
// transfers hit all disks — the design goal of striping, Section 3.1).
class DataStripingLayout final : public Layout {
 public:
  // Creates a layout with capacity for at least `min_data_pages` data pages
  // (rounded up to whole stripes). `parity_copies` must be 1 or 2 and
  // `data_pages_per_group` >= 1.
  static Result<std::unique_ptr<DataStripingLayout>> Create(
      uint32_t data_pages_per_group, uint32_t parity_copies,
      uint32_t min_data_pages);

  uint32_t data_pages_per_group() const override { return n_; }
  uint32_t parity_copies() const override { return parity_copies_; }
  uint32_t num_disks() const override { return num_disks_; }
  SlotId slots_per_disk() const override { return num_groups_; }
  uint32_t num_groups() const override { return num_groups_; }
  uint32_t num_data_pages() const override { return n_ * num_groups_; }

  PhysicalLocation DataLocation(PageId page) const override;
  PhysicalLocation ParityLocation(GroupId group, uint32_t twin) const override;
  GroupId GroupOf(PageId page) const override { return page / n_; }
  uint32_t IndexInGroup(PageId page) const override { return page % n_; }
  PageId PageAt(GroupId group, uint32_t index) const override {
    return group * n_ + index;
  }

 private:
  DataStripingLayout(uint32_t n, uint32_t parity_copies, uint32_t num_groups);

  DiskId ParityDisk(GroupId group, uint32_t twin) const;

  uint32_t n_;
  uint32_t parity_copies_;
  uint32_t num_disks_;
  uint32_t num_groups_;
};

}  // namespace rda

#endif  // RDA_STORAGE_DATA_STRIPING_LAYOUT_H_
