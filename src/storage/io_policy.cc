#include "storage/io_policy.h"

#include "common/status.h"

namespace rda {

bool RetryableIoError(const Status& status, bool disk_failed) {
  return status.IsIoError() && !disk_failed;
}

double RetryBackoffMs(const IoPolicy& policy, uint32_t attempt) {
  return policy.retry_backoff_ms * static_cast<double>(attempt);
}

}  // namespace rda
