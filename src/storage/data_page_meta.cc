#include "storage/data_page_meta.h"

#include <cassert>
#include <cstring>

namespace rda {

void StoreDataMeta(const DataPageMeta& meta, std::vector<uint8_t>* payload) {
  assert(payload->size() >= kDataRegionOffset);
  uint8_t* p = payload->data();
  std::memcpy(p, &meta.txn_id, sizeof(meta.txn_id));
  std::memcpy(p + 8, &meta.page_lsn, sizeof(meta.page_lsn));
  std::memcpy(p + 16, &meta.chain_prev, sizeof(meta.chain_prev));
  // Bytes [20, 24) are reserved padding, left untouched.
}

DataPageMeta LoadDataMeta(const std::vector<uint8_t>& payload) {
  assert(payload.size() >= kDataRegionOffset);
  DataPageMeta meta;
  const uint8_t* p = payload.data();
  std::memcpy(&meta.txn_id, p, sizeof(meta.txn_id));
  std::memcpy(&meta.page_lsn, p + 8, sizeof(meta.page_lsn));
  std::memcpy(&meta.chain_prev, p + 16, sizeof(meta.chain_prev));
  return meta;
}

}  // namespace rda
