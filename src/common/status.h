#ifndef RDA_COMMON_STATUS_H_
#define RDA_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace rda {

// Error model of the library. No exceptions are used anywhere (following the
// project style guide); every fallible operation returns a Status or a
// Result<T>.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIoError,
    kCorruption,
    kDataLoss,
    kFailedPrecondition,
    kAborted,
    kNotSupported,
    kBusy,
  };

  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(Code::kDataLoss, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Busy(std::string msg) {
    return Status(Code::kBusy, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsIoError() const { return code_ == Code::kIoError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsDataLoss() const { return code_ == Code::kDataLoss; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsBusy() const { return code_ == Code::kBusy; }

  // Human-readable "CODE: message" string for logs and test diagnostics.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

// Value-or-error return type. `status()` is Ok iff a value is present.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`
  // like absl::StatusOr.
  Result(T value) : value_or_status_(std::move(value)) {}  // NOLINT
  Result(Status status) : value_or_status_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(value_or_status_); }

  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(value_or_status_);
  }

  // Precondition: ok().
  const T& value() const& { return std::get<T>(value_or_status_); }
  T& value() & { return std::get<T>(value_or_status_); }
  T&& value() && { return std::get<T>(std::move(value_or_status_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_or_status_;
};

// Propagates a non-Ok Status out of the current function.
#define RDA_RETURN_IF_ERROR(expr)               \
  do {                                          \
    ::rda::Status rda_return_status_ = (expr);  \
    if (!rda_return_status_.ok()) {             \
      return rda_return_status_;                \
    }                                           \
  } while (false)

// Unwraps a Result<T> into `lhs` or propagates its error status. The
// two-level concat forces __LINE__ to expand, so several uses can share a
// scope.
#define RDA_CONCAT_INNER_(a, b) a##b
#define RDA_CONCAT_(a, b) RDA_CONCAT_INNER_(a, b)
#define RDA_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                               \
  if (!result.ok()) {                                 \
    return result.status();                           \
  }                                                   \
  lhs = std::move(result).value()
#define RDA_ASSIGN_OR_RETURN(lhs, expr) \
  RDA_ASSIGN_OR_RETURN_IMPL_(RDA_CONCAT_(rda_result_, __LINE__), lhs, expr)

}  // namespace rda

#endif  // RDA_COMMON_STATUS_H_
