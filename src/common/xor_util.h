#ifndef RDA_COMMON_XOR_UTIL_H_
#define RDA_COMMON_XOR_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rda {

// XORs `size` bytes of `src` into `dst` (dst[i] ^= src[i]). This is the
// parity primitive of the whole library: RAID parity maintenance, twin-page
// undo (D_old = P xor P' xor D_new, paper Figure 6) and media rebuild all
// reduce to it.
void XorInto(uint8_t* dst, const uint8_t* src, size_t size);

// Convenience overload for equally sized vectors. Precondition: sizes match.
void XorInto(std::vector<uint8_t>* dst, const std::vector<uint8_t>& src);

// Returns true iff all `size` bytes of `data` are zero (e.g. parity of an
// empty group).
bool AllZero(const uint8_t* data, size_t size);

}  // namespace rda

#endif  // RDA_COMMON_XOR_UTIL_H_
