#include "common/status.h"

namespace rda {
namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Status::Code::kNotFound:
      return "NOT_FOUND";
    case Status::Code::kIoError:
      return "IO_ERROR";
    case Status::Code::kCorruption:
      return "CORRUPTION";
    case Status::Code::kDataLoss:
      return "DATA_LOSS";
    case Status::Code::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case Status::Code::kAborted:
      return "ABORTED";
    case Status::Code::kNotSupported:
      return "NOT_SUPPORTED";
    case Status::Code::kBusy:
      return "BUSY";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace rda
