#ifndef RDA_COMMON_TYPES_H_
#define RDA_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace rda {

// Identifier of a logical database page (0-based, dense).
using PageId = uint32_t;
// Identifier of a physical disk in the array (0-based).
using DiskId = uint32_t;
// Identifier of a parity group. A group is the set of data pages that share
// (twin) parity pages, cf. paper Section 4.1.
using GroupId = uint32_t;
// Physical slot index on one disk (page-granular offset).
using SlotId = uint32_t;
// Transaction identifier. Monotonically increasing, never reused.
using TxnId = uint64_t;
// Log sequence number: byte offset of a record in the (logical) log.
using Lsn = uint64_t;
// Logical timestamp used in twin parity page headers to pick the current
// parity page after a crash (paper Figure 7, algorithm Current_Parity).
using ParityTimestamp = uint64_t;
// Record slot within a slotted data page (record-logging mode).
using RecordSlot = uint16_t;

inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();
inline constexpr DiskId kInvalidDiskId = std::numeric_limits<DiskId>::max();
inline constexpr GroupId kInvalidGroupId = std::numeric_limits<GroupId>::max();
inline constexpr TxnId kInvalidTxnId = 0;
inline constexpr Lsn kInvalidLsn = std::numeric_limits<Lsn>::max();

}  // namespace rda

#endif  // RDA_COMMON_TYPES_H_
