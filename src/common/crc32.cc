#include "common/crc32.h"

#include <array>
#include <cstring>

#if defined(__x86_64__)
#include <nmmintrin.h>
#define RDA_CRC32_HW_X86 1
#elif defined(__aarch64__)
#include <arm_acle.h>
#if defined(__linux__)
#include <sys/auxv.h>
#endif
#define RDA_CRC32_HW_ARM 1
#endif

namespace rda {
namespace {

constexpr uint32_t kPolynomial = 0x82f63b78;  // CRC-32C, reflected.

// Slice-by-8 lookup tables: table k maps a byte that is k positions deep in
// the current 8-byte window to its CRC contribution, so the inner loop folds
// a whole word per iteration instead of one byte.
struct SliceTables {
  uint32_t t[8][256];
};

constexpr SliceTables MakeTables() {
  SliceTables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPolynomial : 0);
    }
    tables.t[0][i] = crc;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      tables.t[k][i] =
          (tables.t[k - 1][i] >> 8) ^ tables.t[0][tables.t[k - 1][i] & 0xff];
    }
  }
  return tables;
}

constexpr SliceTables kTables = MakeTables();

// All implementations share this signature and operate on the raw
// (pre-inverted) CRC state.
using CrcFn = uint32_t (*)(const uint8_t*, size_t, uint32_t);

uint32_t SoftwareRaw(const uint8_t* bytes, size_t size, uint32_t crc) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (size >= 8) {
    uint64_t word;
    std::memcpy(&word, bytes, 8);
    word ^= crc;
    crc = kTables.t[7][word & 0xff] ^ kTables.t[6][(word >> 8) & 0xff] ^
          kTables.t[5][(word >> 16) & 0xff] ^
          kTables.t[4][(word >> 24) & 0xff] ^
          kTables.t[3][(word >> 32) & 0xff] ^
          kTables.t[2][(word >> 40) & 0xff] ^
          kTables.t[1][(word >> 48) & 0xff] ^ kTables.t[0][(word >> 56) & 0xff];
    bytes += 8;
    size -= 8;
  }
#endif
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ bytes[i]) & 0xff];
  }
  return crc;
}

#if defined(RDA_CRC32_HW_X86)

__attribute__((target("sse4.2"))) uint32_t HardwareRaw(const uint8_t* bytes,
                                                       size_t size,
                                                       uint32_t crc) {
  while (size >= 8) {
    uint64_t word;
    std::memcpy(&word, bytes, 8);
    crc = static_cast<uint32_t>(_mm_crc32_u64(crc, word));
    bytes += 8;
    size -= 8;
  }
  if (size >= 4) {
    uint32_t word;
    std::memcpy(&word, bytes, 4);
    crc = _mm_crc32_u32(crc, word);
    bytes += 4;
    size -= 4;
  }
  while (size > 0) {
    crc = _mm_crc32_u8(crc, *bytes++);
    --size;
  }
  return crc;
}

bool DetectHardware() { return __builtin_cpu_supports("sse4.2") != 0; }
constexpr const char* kHardwareName = "sse4.2";

#elif defined(RDA_CRC32_HW_ARM)

__attribute__((target("+crc"))) uint32_t HardwareRaw(const uint8_t* bytes,
                                                     size_t size,
                                                     uint32_t crc) {
  while (size >= 8) {
    uint64_t word;
    std::memcpy(&word, bytes, 8);
    crc = __crc32cd(crc, word);
    bytes += 8;
    size -= 8;
  }
  if (size >= 4) {
    uint32_t word;
    std::memcpy(&word, bytes, 4);
    crc = __crc32cw(crc, word);
    bytes += 4;
    size -= 4;
  }
  while (size > 0) {
    crc = __crc32cb(crc, *bytes++);
    --size;
  }
  return crc;
}

bool DetectHardware() {
#if defined(__linux__) && defined(HWCAP_CRC32)
  return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
#else
  return false;
#endif
}
constexpr const char* kHardwareName = "armv8-crc";

#else

uint32_t HardwareRaw(const uint8_t* bytes, size_t size, uint32_t crc) {
  return SoftwareRaw(bytes, size, crc);
}
bool DetectHardware() { return false; }
constexpr const char* kHardwareName = "software";

#endif

// Resolved once; every Crc32c call afterwards is a plain indirect call.
CrcFn DispatchedImpl() {
  static const CrcFn impl = DetectHardware() ? &HardwareRaw : &SoftwareRaw;
  return impl;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  return ~DispatchedImpl()(static_cast<const uint8_t*>(data), size, ~seed);
}

uint32_t Crc32cSoftware(const void* data, size_t size, uint32_t seed) {
  return ~SoftwareRaw(static_cast<const uint8_t*>(data), size, ~seed);
}

bool Crc32cHardwareAvailable() {
  static const bool available = DetectHardware();
  return available;
}

uint32_t Crc32cHardware(const void* data, size_t size, uint32_t seed) {
  return ~HardwareRaw(static_cast<const uint8_t*>(data), size, ~seed);
}

const char* Crc32cImplName() {
  return Crc32cHardwareAvailable() ? kHardwareName : "software";
}

}  // namespace rda
