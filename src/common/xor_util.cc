#include "common/xor_util.h"

#include <cassert>
#include <cstring>

namespace rda {

void XorInto(uint8_t* dst, const uint8_t* src, size_t size) {
  size_t i = 0;
  // Word-at-a-time main loop; memcpy keeps it free of alignment UB and
  // compiles to plain loads/stores.
  for (; i + 8 <= size; i += 8) {
    uint64_t a;
    uint64_t b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < size; ++i) {
    dst[i] ^= src[i];
  }
}

void XorInto(std::vector<uint8_t>* dst, const std::vector<uint8_t>& src) {
  assert(dst->size() == src.size());
  XorInto(dst->data(), src.data(), src.size());
}

bool AllZero(const uint8_t* data, size_t size) {
  for (size_t i = 0; i < size; ++i) {
    if (data[i] != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace rda
