#include "common/xor_util.h"

#include <cstring>

#include "common/check.h"

namespace rda {

void XorInto(uint8_t* dst, const uint8_t* src, size_t size) {
  size_t i = 0;
  // Word-at-a-time main loop; memcpy keeps it free of alignment UB and
  // compiles to plain loads/stores.
  for (; i + 8 <= size; i += 8) {
    uint64_t a;
    uint64_t b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < size; ++i) {
    dst[i] ^= src[i];
  }
}

void XorInto(std::vector<uint8_t>* dst, const std::vector<uint8_t>& src) {
  RDA_CHECK(dst->size() == src.size(),
            "XorInto operands must be equally sized");
  XorInto(dst->data(), src.data(), src.size());
}

bool AllZero(const uint8_t* data, size_t size) {
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    uint64_t word;
    std::memcpy(&word, data + i, 8);
    if (word != 0) {
      return false;
    }
  }
  for (; i < size; ++i) {
    if (data[i] != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace rda
