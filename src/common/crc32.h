#ifndef RDA_COMMON_CRC32_H_
#define RDA_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace rda {

// CRC-32C (Castagnoli) over `size` bytes starting at `data`, continuing from
// `seed` (pass 0 for a fresh checksum). Used to protect log records and page
// images against torn writes and bit rot in the simulated disks.
//
// Dispatches at runtime to a hardware implementation (SSE4.2 crc32 on x86-64,
// the ARMv8 CRC32 extension on aarch64) when the CPU supports it, falling
// back to a slice-by-8 table implementation otherwise. All implementations
// produce identical results for identical input.
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

// The slice-by-8 software implementation, callable directly so tests and
// benchmarks can compare it against the hardware path on any machine.
uint32_t Crc32cSoftware(const void* data, size_t size, uint32_t seed = 0);

// True when this CPU has a usable hardware CRC32C instruction.
bool Crc32cHardwareAvailable();

// The hardware implementation. Precondition: Crc32cHardwareAvailable().
uint32_t Crc32cHardware(const void* data, size_t size, uint32_t seed = 0);

// Name of the implementation Crc32c dispatches to: "sse4.2", "armv8-crc" or
// "software". For logs and the perf report.
const char* Crc32cImplName();

}  // namespace rda

#endif  // RDA_COMMON_CRC32_H_
