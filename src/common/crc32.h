#ifndef RDA_COMMON_CRC32_H_
#define RDA_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace rda {

// CRC-32C (Castagnoli) over `size` bytes starting at `data`, continuing from
// `seed` (pass 0 for a fresh checksum). Used to protect log records and page
// images against torn writes and bit rot in the simulated disks.
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

}  // namespace rda

#endif  // RDA_COMMON_CRC32_H_
