#ifndef RDA_COMMON_CHECK_H_
#define RDA_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Always-on invariant check, active in Release builds too. Used where a
// violated precondition would silently corrupt parity or counters (sizes of
// XORed buffers, counter deltas): failing loudly beats producing wrong
// recovery results.
#define RDA_CHECK(condition, message)                                       \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "RDA_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, message, #condition);                \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#endif  // RDA_COMMON_CHECK_H_
