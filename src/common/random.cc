#include "common/random.h"

#include <cstddef>

namespace rda {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  // Seed expansion via SplitMix64 as recommended by the xoshiro authors;
  // guarantees a non-zero state for any seed.
  for (auto& word : state_) {
    word = SplitMix64(&seed);
  }
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

uint64_t Random::UniformRange(uint64_t lo, uint64_t hi) {
  return lo + Uniform(hi - lo + 1);
}

double Random::NextDouble() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

void Random::FillBytes(std::vector<uint8_t>* out) {
  size_t i = 0;
  while (i + 8 <= out->size()) {
    const uint64_t word = Next();
    for (int b = 0; b < 8; ++b) {
      (*out)[i++] = static_cast<uint8_t>(word >> (8 * b));
    }
  }
  if (i < out->size()) {
    uint64_t word = Next();
    while (i < out->size()) {
      (*out)[i++] = static_cast<uint8_t>(word);
      word >>= 8;
    }
  }
}

}  // namespace rda
