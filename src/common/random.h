#ifndef RDA_COMMON_RANDOM_H_
#define RDA_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace rda {

// Deterministic, fast PRNG (xoshiro256**). Used by workload generators,
// property tests and Monte-Carlo checks; seeded explicitly so every run is
// reproducible.
class Random {
 public:
  explicit Random(uint64_t seed);

  // Uniform over [0, 2^64).
  uint64_t Next();

  // Uniform over [0, bound). Precondition: bound > 0.
  uint64_t Uniform(uint64_t bound);

  // Uniform over [lo, hi] inclusive. Precondition: lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  // Uniform real in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Fills `out` with random bytes.
  void FillBytes(std::vector<uint8_t>* out);

 private:
  uint64_t state_[4];
};

}  // namespace rda

#endif  // RDA_COMMON_RANDOM_H_
