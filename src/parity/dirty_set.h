#ifndef RDA_PARITY_DIRTY_SET_H_
#define RDA_PARITY_DIRTY_SET_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace rda {

// Volatile per-group bookkeeping: which parity twin is valid, and — when the
// group is dirty — which data page was propagated without UNDO logging and
// by which transaction.
//
// This is the paper's main-memory table of Section 4.1: "A table in main
// memory is kept ... It contains the numbers of all parity groups that are
// in the dirty state ... the page number of the data page that caused the
// group to be in the dirty state (only log N bits) and one bit for the
// parity page". Being volatile, it is lost on a system crash and rebuilt
// from the parity page headers (TwinParityManager::RebuildDirectory).
struct GroupState {
  // Which twin currently holds the committed ("valid") parity of the group.
  uint32_t valid_twin = 0;
  // True iff a data page of the group has been written back to the database
  // carrying uncommitted data, covered by the working parity twin.
  bool dirty = false;
  // Twin holding the working parity. Meaningful iff dirty.
  uint32_t working_twin = 0;
  // The data page whose uncommitted content is covered. Meaningful iff dirty.
  PageId dirty_page = kInvalidPageId;
  // The transaction whose update dirtied the group. Meaningful iff dirty.
  TxnId dirty_txn = kInvalidTxnId;
};

class DirtySet {
 public:
  explicit DirtySet(uint32_t num_groups) : groups_(num_groups) {}

  const GroupState& Get(GroupId group) const { return groups_[group]; }

  void MarkDirty(GroupId group, PageId dirty_page, TxnId txn,
                 uint32_t working_twin) {
    GroupState& g = groups_[group];
    g.dirty = true;
    g.dirty_page = dirty_page;
    g.dirty_txn = txn;
    g.working_twin = working_twin;
  }

  // Cleans `group`; the committed parity now lives in `new_valid_twin`.
  void MarkClean(GroupId group, uint32_t new_valid_twin) {
    GroupState& g = groups_[group];
    g.dirty = false;
    g.dirty_page = kInvalidPageId;
    g.dirty_txn = kInvalidTxnId;
    g.valid_twin = new_valid_twin;
  }

  void SetValidTwin(GroupId group, uint32_t twin) {
    groups_[group].valid_twin = twin;
  }

  uint32_t num_groups() const { return static_cast<uint32_t>(groups_.size()); }

  // Number of groups currently dirty.
  uint32_t DirtyCount() const;

  // Groups dirtied by `txn` (linear scan; the transaction manager keeps its
  // own per-transaction list for the hot path, this is used by tests and
  // recovery).
  std::vector<GroupId> DirtyGroupsOf(TxnId txn) const;

  // All dirty groups, any owner.
  std::vector<GroupId> AllDirtyGroups() const;

 private:
  std::vector<GroupState> groups_;
};

}  // namespace rda

#endif  // RDA_PARITY_DIRTY_SET_H_
