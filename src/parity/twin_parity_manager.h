#ifndef RDA_PARITY_TWIN_PARITY_MANAGER_H_
#define RDA_PARITY_TWIN_PARITY_MANAGER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "exec/worker_pool.h"
#include "obs/obs.h"
#include "parity/dirty_set.h"
#include "storage/data_page_meta.h"
#include "storage/disk_array.h"
#include "storage/scratch_pool.h"

namespace rda {

// How a write of a data page must be propagated to the array — the outcome
// of the paper's Figure 3 decision rule plus the "no active transaction"
// case.
enum class PropagationKind {
  // Group is clean and the writer is an active transaction: the update may
  // be propagated WITHOUT an UNDO before-image; the group becomes dirty and
  // the obsolete twin receives the new (working) parity.
  kUnloggedFirst,
  // Group is dirty by the same (page, transaction): the page was stolen,
  // re-referenced, modified and stolen again before EOT. Still no UNDO
  // logging; the working twin is updated in place (the other twin keeps the
  // pre-transaction parity, so P xor P' still equals D_old xor D_new).
  kUnloggedRepeat,
  // Group is dirty by a different page or transaction: the caller MUST have
  // logged a before-image first. Both twins are XOR-updated so the undo
  // invariant of the dirty page is preserved (paper Section 4.1: "both P
  // and P' need to be updated").
  kLoggedDirtyGroup,
  // Plain redundant-array small write, no undo coverage needed: committed
  // data propagation, REDO during recovery, or RDA recovery disabled. The
  // valid twin is XOR-updated in place.
  kPlain,
};

// Outcome of a parity-based undo (UndoUnloggedUpdate).
struct ParityUndoResult {
  // The data page that was (or had already been) restored.
  PageId page = kInvalidPageId;
  // False when the undo had already happened (idempotent re-run after a
  // crash during a previous undo) and only the twin invalidation was redone.
  bool payload_restored = false;
  // The restored on-disk payload; set iff payload_restored. Callers use it
  // to repair buffer-frame snapshots without an extra read.
  std::vector<uint8_t> restored_payload;
  // Embedded metadata of the OVERWRITTEN (undone) image — its chain_prev
  // link lets recovery walk the TWIST chain.
  DataPageMeta overwritten_meta;
};

// Statistics of interest to the evaluation (counts of decision outcomes).
struct ParityStats {
  uint64_t unlogged_first = 0;
  uint64_t unlogged_repeat = 0;
  uint64_t logged_dirty_group = 0;
  uint64_t plain = 0;
  uint64_t parity_undos = 0;
  uint64_t logged_undos = 0;
  uint64_t commits_finalized = 0;  // Groups finalized at EOT.
  // Repair-on-read outcomes (DESIGN.md section 10): sticky kIoError sectors
  // healed by reconstruct + rewrite, and checksum-mismatch pages rebuilt.
  uint64_t latent_repairs = 0;
  uint64_t corruption_repairs = 0;
};

// The twin-page parity manager: owns the parity semantics of the array —
// XOR maintenance on every data write, the group state machine (Figure 3),
// the parity-page state machine (Figure 8), Current_Parity selection after
// a crash (Figure 7), parity-based UNDO (Figure 6: D_old = (P xor P') xor
// D_new) and parity recomputation ("scrub") utilities used by tests and
// media recovery.
//
// Atomicity model: one call (e.g. Propagate) performs up to ~5 page I/Os;
// the simulator treats a call as crash-atomic. Crash injection happens
// between calls — the windows the paper's protocol actually has to handle
// (between propagation and EOT, between EOT and twin finalization, during
// multi-group abort/commit). Real controllers close the intra-operation
// window with NVRAM write journaling; see DESIGN.md.
//
// Concurrency model (DESIGN.md section 11): a latch table with one
// RECURSIVE mutex per parity group serializes all group-state machinery —
// directory entry, twin shadow, twin pages — for that group; operations on
// different groups run in parallel. The latch is recursive because the
// manager's operations nest (Propagate reads old payloads via
// ReadDataHealed; ApplyLoggedUndo reuses Propagate), and it is exposed via
// LockGroup() so the transaction layer can pin a Classify verdict across
// the subsequent log write and Propagate call. Whole-array operations
// (FormatArray, RebuildDirectory, ReinitializeParityFromData,
// LoseVolatileState) and DirtySet scans assume a quiesced system — they are
// recovery/startup paths, never concurrent with transaction traffic.
class TwinParityManager {
 public:
  // `array` must outlive the manager and have parity_copies() == 2 for the
  // twin scheme (1 is allowed; then only kPlain propagation is legal and
  // Classify never returns an unlogged kind — used by ablation benches).
  explicit TwinParityManager(DiskArray* array);

  TwinParityManager(const TwinParityManager&) = delete;
  TwinParityManager& operator=(const TwinParityManager&) = delete;

  // Formats the array: zeroed data, twin 0 = committed parity of the zeroed
  // group, twin 1 obsolete. Resets the directory.
  Status FormatArray();

  // Acquires the latch of one parity group (or of the group owning `page`).
  // Blocks until available; a failed try-lock is counted as a latch wait
  // (`parity.latch_waits`). The latch is recursive, so a caller holding it
  // may invoke any group-scoped method of this manager on the same group.
  std::unique_lock<std::recursive_mutex> LockGroup(GroupId group);
  std::unique_lock<std::recursive_mutex> LockGroupOfPage(PageId page);

  // Decides how a steal of `page` by active transaction `txn` must be
  // handled. Never performs I/O. With parity_copies()==1, txn==kInvalid, or
  // a failed disk under the page or either twin (degraded mode: undo
  // coverage cannot be guaranteed), returns kPlain (caller must log if the
  // data is uncommitted).
  PropagationKind Classify(PageId page, TxnId txn) const;

  // Full-stripe write (paper Section 3.1's "large accesses"): replaces
  // every data page of a CLEAN group and installs freshly computed
  // committed parity — N+1 page writes, no reads, versus N read-modify-
  // write cycles. For committed data only (bulk load); payloads must embed
  // their DataPageMeta already.
  Status WriteFullGroup(GroupId group,
                        const std::vector<std::vector<uint8_t>>& payloads);

  // Propagates a data page to the array with parity maintenance per `kind`.
  // Data-page metadata (txn stamp, pageLSN, chain link) is embedded in
  // new_image.payload by the caller (storage/data_page_meta.h).
  // `old_payload` is the current on-disk payload if the caller has it
  // buffered (saves the a=4 vs a=3 read of the model); pass nullptr to let
  // the manager read it. Kind must match Classify's verdict for active
  // transactions (checked; returns kFailedPrecondition otherwise).
  Status Propagate(PageId page, TxnId txn, PropagationKind kind,
                   const std::vector<uint8_t>* old_payload,
                   const PageImage& new_image);

  // EOT finalization for one group dirtied by `txn`: the working twin is
  // committed (header state -> kCommitted, fresh timestamp) and becomes the
  // valid twin; the group becomes clean. Read-modify-write of one parity
  // page — the model's "2 p_l" term. Idempotent: finalizing a clean group
  // whose valid twin already committed is a no-op.
  Status FinalizeCommit(GroupId group, TxnId txn);

  // Parity-based UNDO of the unlogged update covering `group` (must be
  // dirty by `txn`): restores D_old = P_valid xor P_working xor D_current
  // (paper Figure 6) — including the embedded DataPageMeta, so pageLSN and
  // chain links come back exactly — invalidates the working twin and cleans
  // the group. Idempotent: if the data page no longer carries txn's stamp,
  // only the twin invalidation is (re)applied.
  Result<ParityUndoResult> UndoUnloggedUpdate(GroupId group, TxnId txn);

  // Log-based UNDO: restores the full `before` payload (embedded metadata
  // included) into `page` with parity maintenance (both twins if the group
  // is dirty, else the valid twin).
  Status ApplyLoggedUndo(PageId page, const std::vector<uint8_t>& before);

  // Outcome of rebuilding one group's member lost to a disk failure.
  struct GroupRebuildOutcome {
    uint32_t data_rebuilt = 0;
    uint32_t parity_rebuilt = 0;
    uint32_t obsolete_reset = 0;
    // Set when the lost page was the OLD (valid) twin of a dirty group: the
    // in-flight unlogged update of `lost_txn` can no longer be undone. The
    // working twin is finalized so the group stays consistent.
    bool undo_lost = false;
    TxnId lost_txn = kInvalidTxnId;
  };

  // Rebuilds the (at most one — group members sit on distinct disks) page
  // of `group` that lived on `disk`, which must already have been replaced
  // with a fresh medium. Data pages come back as XOR(siblings, consistent
  // twin); a lost consistent twin is recomputed from data; a lost obsolete
  // twin is reset.
  Result<GroupRebuildOutcome> RebuildGroupMember(GroupId group, DiskId disk);

  // --- online rebuild session (DESIGN.md section 14) ---
  //
  // An online rebuild replaces the quiescent RebuildDisk stop-the-world
  // window with a per-group "pending" bitmap: BeginOnlineRebuild installs
  // the fresh medium and marks every group with a member on the disk as
  // pending; from then on EVERY group-scoped entry point first ensures the
  // group is rebuilt (on-demand reconstruct-and-persist under the group
  // latch), so foreground traffic never observes the zeroed medium while
  // the background sweep drains the bitmap group by group.

  // Snapshot returned by BeginOnlineRebuild.
  struct OnlineRebuildInfo {
    uint32_t groups_total = 0;    // Groups with a member on the disk.
    uint32_t groups_pending = 0;  // == groups_total at Begin time.
    // Dirty groups whose valid (before-image) twin lived on the disk: their
    // in-flight unlogged updates lose undo coverage, exactly like the
    // quiescent rebuild reports.
    std::vector<TxnId> undo_coverage_lost;
  };

  // Starts an online rebuild of `disk` (must be the only failed disk):
  // builds the pending bitmap, replaces the disk, flags it as rebuilding on
  // the array and activates the on-demand hook. Foreground traffic may run
  // concurrently from the moment this returns.
  Result<OnlineRebuildInfo> BeginOnlineRebuild(DiskId disk);

  // Rebuilds `group` if it is still pending (the background sweep's unit of
  // work). *did_work is set false when another path (on-demand repair, a
  // foreground write promotion, a racing sweeper) got there first — then
  // the returned outcome is empty. Safe to call concurrently with traffic.
  Result<GroupRebuildOutcome> RebuildGroupIfPending(GroupId group,
                                                    bool* did_work);

  // Ends the session. Fails with kFailedPrecondition while groups are still
  // pending; on success clears the array's rebuilding flag.
  Status EndOnlineRebuild();

  bool OnlineRebuildActive() const {
    return rebuild_active_.load(std::memory_order_acquire);
  }
  DiskId online_rebuild_disk() const { return rebuild_disk_; }
  uint32_t OnlineRebuildGroupsTotal() const {
    return rebuild_groups_total_.load(std::memory_order_relaxed);
  }
  uint32_t OnlineRebuildGroupsRemaining() const {
    return rebuild_groups_remaining_.load(std::memory_order_relaxed);
  }
  // Lock-free peek (the sweep uses it to skip already-rebuilt groups
  // without taking the latch); the authoritative check under the latch
  // happens inside RebuildGroupIfPending.
  bool OnlineGroupPending(GroupId group) const;
  // Session counters (reset at Begin, retained after End for inspection).
  uint64_t OnlineOnDemandRepairs() const {
    return rebuild_on_demand_.load(std::memory_order_relaxed);
  }
  uint64_t OnlineWritePromotions() const {
    return rebuild_write_promotions_.load(std::memory_order_relaxed);
  }

  // Degraded-mode read: reconstructs (without writing) the payload of
  // `page` — whose disk may have failed — by XORing the other data pages of
  // its group with the parity twin that is consistent with on-disk data
  // (the working twin of a dirty group, else the valid twin).
  Result<std::vector<uint8_t>> ReconstructDataPayload(PageId page);

  // Allocation-free variant: reconstructs into `*out` (typically a
  // ScratchPool image — its page-sized buffer is reused by the parity read
  // and the XOR accumulation). The media-rebuild path loops this over every
  // lost page, so per-group buffer churn matters there.
  Status ReconstructDataPayloadInto(PageId page, PageImage* out);

  // Self-healing data read: like array()->ReadData, but a persistent
  // sector-level fault (kIoError surviving the retry policy, or a checksum
  // kCorruption) on a LIVE disk is served by group reconstruction and
  // repaired in place — the rebuilt page is written straight back (no
  // parity propagation: parity already encodes this content), which clears
  // a latent sector error. The fault is charged to the disk's error
  // budget. A page on a FAILED disk is served degraded — reconstructed
  // from the group with no write-back and no error charged — so callers
  // (recovery included) read through single-disk failures transparently.
  // An unreconstructable page (second fault in the group) returns the
  // original read error.
  Status ReadDataHealed(PageId page, PageImage* out);

  // Self-healing parity read. What "healing" means depends on the twin's
  // role: the consistent twin (working twin of a dirty group, valid twin
  // of a clean one) is recomputed from the group's data pages; an obsolete
  // twin is reset. The valid twin of a DIRTY group is before-image parity
  // that exists nowhere else — losing it loses the undo coverage of the
  // in-flight unlogged update, reported honestly as kDataLoss.
  Status ReadParityHealed(GroupId group, uint32_t twin, PageImage* out);

  // Test hook: the next sector repair aborts between reconstruction and
  // write-back (returns kAborted) — the crash window crash_point_test
  // probes. One-shot; self-disarms when it fires.
  void InjectCrashBeforeNextRepairWriteBack() {
    crash_before_writeback_.store(true, std::memory_order_relaxed);
  }

  // Recomputes the parity of `group` from its data pages and installs it as
  // the committed parity in the current valid twin slot (other twin becomes
  // obsolete). Used by tests, media recovery and post-crash scrubbing.
  // Precondition: group must be clean.
  Status ScrubGroup(GroupId group);

  // Reads all data pages and the valid parity of `group` and reports whether
  // XOR(data) == parity. I/O-counted like any other access.
  Result<bool> VerifyGroupParity(GroupId group);

  // Recomputes every group's parity from the on-disk data pages, installs
  // it as committed parity in twin 0 (twin 1 reset to obsolete) and resets
  // the directory to all-clean. Used by catastrophic (archive) restore,
  // where the parity pages themselves are untrustworthy. Groups are
  // independent (distinct directory/shadow slots, distinct pages), so with
  // a pool they fan out in contiguous bands; null keeps the serial loop.
  Status ReinitializeParityFromData(exec::WorkerPool* pool = nullptr);

  // Deep structural self-check of the twin/parity machinery, used by the
  // fuzzer's invariant oracle (and available to tests). For every group it
  // cross-checks the on-disk twin headers against the volatile directory
  // and the twin-state shadow: a clean group's valid twin must be committed
  // with the winning (Figure 7) timestamp and its sibling must not be
  // working; a dirty group's working twin header must name exactly the
  // (dirty_page, dirty_txn) the directory caches over a committed valid
  // twin; no header timestamp may exceed the in-memory counter. It also
  // checks online-rebuild bitmap conservation (set bits ==
  // groups_remaining <= groups_total). Twins on failed disks, groups still
  // pending in an active rebuild session, and sector-faulted twin reads are
  // skipped (they are healable, not inconsistent). Read-only — never
  // repairs. Caller must be quiesced; returns the first violation found as
  // kCorruption (kFailedPrecondition if the directory is invalid).
  Status CheckInvariants();

  // Rebuilds the volatile directory after a crash by reading both twin
  // headers of every group (the S/N-term of the paper's c'_s): valid twin =
  // committed twin with the highest timestamp; a working twin marks the
  // group dirty by (header.dirty_page, header.txn_id). Also restores the
  // timestamp counter.
  Status RebuildDirectory();

  // Drops all volatile state (simulates the crash itself). The directory
  // becomes unusable until RebuildDirectory().
  void LoseVolatileState();

  const DirtySet& directory() const { return directory_; }
  DiskArray* array() { return array_; }
  // Snapshot by value: counters are bumped under per-group latches, so a
  // reference would race with concurrent propagations.
  ParityStats stats() const;
  void ResetStats();

  // Hooks the manager into the observability hub: `parity.*` counters plus
  // the Figure 3 (kGroupTransition) and Figure 8 (kTwinTransition) trace
  // events at every state change. Null detaches.
  void AttachObs(obs::ObsHub* hub);

 private:
  uint32_t OtherTwin(uint32_t twin) const { return 1 - twin; }
  bool LocationHealthy(const PhysicalLocation& loc) const;
  // Data disk and both twin disks of `page`'s group are functional, so an
  // unlogged steal retains full undo + media coverage.
  bool FullyHealthyForUnlogged(PageId page) const;
  ParityTimestamp NextTimestamp() {
    return timestamp_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  bool directory_valid() const {
    return directory_valid_.load(std::memory_order_acquire);
  }

  Status ReadOldPayload(PageId page, const std::vector<uint8_t>* hint,
                        std::vector<uint8_t>* out);

  // On-demand arm of the online rebuild: if a session is active and `group`
  // is still pending, rebuilds it under the group latch before the caller
  // touches any of its pages. Clears the pending bit BEFORE rebuilding (the
  // latch is recursive and RebuildGroupMember re-enters the healed readers,
  // which re-enter this hook); restores it if the rebuild fails. No-op when
  // the rebuilding disk is (still or again) failed — the degraded-mode
  // machinery serves then.
  Status EnsureGroupRebuilt(GroupId group);
  // Shared by EnsureGroupRebuilt and the foreground write promotion: marks
  // `group` no longer pending. Caller holds the group latch and has
  // verified the bit was set. `on_demand` picks which session counter and
  // trace event to emit.
  void NotePendingCleared(GroupId group, bool on_demand);

  // Directory-rebuild fallback for a group whose only committed twin is
  // unreadable: recompute committed parity as the XOR of the group's data
  // pages and install it in twin slot `twin` (which must be on a live
  // disk). Sound because group members live on distinct disks, so a
  // single-disk failure leaves every data page of the group readable; if
  // any data read fails anyway (second fault), the caller's data-loss
  // verdict stands. `floor` is a timestamp the new twin must exceed so
  // Current_Parity selection picks it over the stale survivor.
  Status RecomputeCommittedTwin(GroupId group, uint32_t twin,
                                ParityTimestamp floor, PageImage* out);

  // True when `status` is the class of error repair-on-read can heal: a
  // persistent sector fault on a disk that is still alive.
  bool HealableFault(const Status& status, DiskId disk) const;
  // Accounting + kSectorRepair trace event for one completed repair;
  // `cause` picks latent (kIoError) vs corruption (checksum) counters.
  void NoteSectorRepair(const Status& cause, PageId page, GroupId group);

  // XOR of one page-sized payload into another, accounted as one XOR
  // computation on the array.
  void XorPage(std::vector<uint8_t>* dst, const std::vector<uint8_t>& src);

  // Silently records twin `state` (ParityState numeric value) in the
  // volatile shadow — used when (re)initializing, not for transitions.
  void SyncTwinShadow(GroupId group, uint32_t twin, uint8_t state);

  // Records a Figure 8 twin transition: emits a kTwinTransition event with
  // the accurate from-state (kept in the volatile shadow, so obsolete ->
  // working and invalid -> working are distinguishable without extra I/O)
  // and updates the shadow.
  void TraceTwinTransition(GroupId group, uint32_t twin, uint8_t to_state,
                           PageId page, TxnId txn);

  // Records a Figure 3 group transition (CLEAN <-> DIRTY).
  void TraceGroupTransition(GroupId group, bool to_dirty, PageId page,
                            TxnId txn);

  // Per-field atomic mirror of ParityStats (fields bumped under different
  // group latches must not race; stats() assembles a plain snapshot).
  struct AtomicParityStats {
    std::atomic<uint64_t> unlogged_first{0};
    std::atomic<uint64_t> unlogged_repeat{0};
    std::atomic<uint64_t> logged_dirty_group{0};
    std::atomic<uint64_t> plain{0};
    std::atomic<uint64_t> parity_undos{0};
    std::atomic<uint64_t> logged_undos{0};
    std::atomic<uint64_t> commits_finalized{0};
    std::atomic<uint64_t> latent_repairs{0};
    std::atomic<uint64_t> corruption_repairs{0};
  };

  DiskArray* array_;
  DirtySet directory_;
  std::atomic<ParityTimestamp> timestamp_{0};
  std::atomic<bool> directory_valid_{false};
  std::atomic<bool> crash_before_writeback_{false};
  AtomicParityStats stats_;

  // One recursive latch per parity group (see the class comment). The array
  // is sized at construction and never reallocated, so indexing is safe
  // without a global lock.
  std::unique_ptr<std::recursive_mutex[]> group_latches_;

  // Page-sized transient buffers for propagation, undo, reconstruction and
  // rebuild — steady-state parity maintenance allocates nothing (see
  // DESIGN.md section 9 for the ownership rules).
  ScratchPool scratch_;

  // Volatile per-group twin-state shadow (ParityState numeric values),
  // maintained whether or not observability is attached.
  std::vector<std::array<uint8_t, 2>> twin_shadow_;

  // Online-rebuild session state. The bitmap entries are atomic so the
  // background sweep can peek without latches (TSan-clean); every logical
  // transition — pending set at Begin, cleared by rebuild/promotion —
  // happens under the owning group's latch. rebuild_active_ is published
  // with release order after the bitmap and disk id are in place.
  std::atomic<bool> rebuild_active_{false};
  DiskId rebuild_disk_ = kInvalidDiskId;
  std::unique_ptr<std::atomic<uint8_t>[]> rebuild_pending_;
  std::atomic<uint32_t> rebuild_groups_total_{0};
  std::atomic<uint32_t> rebuild_groups_remaining_{0};
  std::atomic<uint64_t> rebuild_on_demand_{0};
  std::atomic<uint64_t> rebuild_write_promotions_{0};

  // Observability (null = disabled).
  obs::TraceBuffer* trace_ = nullptr;
  obs::Counter* unlogged_first_counter_ = nullptr;
  obs::Counter* unlogged_repeat_counter_ = nullptr;
  obs::Counter* logged_dirty_group_counter_ = nullptr;
  obs::Counter* plain_counter_ = nullptr;
  obs::Counter* parity_undos_counter_ = nullptr;
  obs::Counter* logged_undos_counter_ = nullptr;
  obs::Counter* commits_finalized_counter_ = nullptr;
  obs::Counter* degraded_reads_counter_ = nullptr;
  obs::Counter* latent_repairs_counter_ = nullptr;
  obs::Counter* corruption_repairs_counter_ = nullptr;
  obs::Counter* latch_waits_counter_ = nullptr;
  obs::Counter* online_on_demand_counter_ = nullptr;
  obs::Counter* online_write_promotions_counter_ = nullptr;
  // Latency spans (propagate/undo/rebuild) and the propagate-latency
  // histogram feeding the percentile reports.
  obs::SpanCollector* spans_ = nullptr;
  obs::Histogram* propagate_hist_ = nullptr;
};

}  // namespace rda

#endif  // RDA_PARITY_TWIN_PARITY_MANAGER_H_
