#include "parity/dirty_set.h"

namespace rda {

uint32_t DirtySet::DirtyCount() const {
  uint32_t count = 0;
  for (const GroupState& g : groups_) {
    if (g.dirty) {
      ++count;
    }
  }
  return count;
}

std::vector<GroupId> DirtySet::DirtyGroupsOf(TxnId txn) const {
  std::vector<GroupId> out;
  for (GroupId id = 0; id < groups_.size(); ++id) {
    if (groups_[id].dirty && groups_[id].dirty_txn == txn) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<GroupId> DirtySet::AllDirtyGroups() const {
  std::vector<GroupId> out;
  for (GroupId id = 0; id < groups_.size(); ++id) {
    if (groups_[id].dirty) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace rda
