#include "parity/twin_parity_manager.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/xor_util.h"

namespace rda {

TwinParityManager::TwinParityManager(DiskArray* array)
    : array_(array),
      directory_(array->num_groups()),
      group_latches_(
          std::make_unique<std::recursive_mutex[]>(array->num_groups())),
      scratch_(array->page_size()),
      twin_shadow_(array->num_groups(),
                   {static_cast<uint8_t>(ParityState::kCommitted),
                    static_cast<uint8_t>(ParityState::kObsolete)}) {}

std::unique_lock<std::recursive_mutex> TwinParityManager::LockGroup(
    GroupId group) {
  std::unique_lock<std::recursive_mutex> lock(group_latches_[group],
                                              std::try_to_lock);
  if (!lock.owns_lock()) {
    obs::Inc(latch_waits_counter_);
    lock.lock();
  }
  return lock;
}

std::unique_lock<std::recursive_mutex> TwinParityManager::LockGroupOfPage(
    PageId page) {
  return LockGroup(array_->layout().GroupOf(page));
}

ParityStats TwinParityManager::stats() const {
  ParityStats s;
  s.unlogged_first = stats_.unlogged_first.load(std::memory_order_relaxed);
  s.unlogged_repeat = stats_.unlogged_repeat.load(std::memory_order_relaxed);
  s.logged_dirty_group =
      stats_.logged_dirty_group.load(std::memory_order_relaxed);
  s.plain = stats_.plain.load(std::memory_order_relaxed);
  s.parity_undos = stats_.parity_undos.load(std::memory_order_relaxed);
  s.logged_undos = stats_.logged_undos.load(std::memory_order_relaxed);
  s.commits_finalized =
      stats_.commits_finalized.load(std::memory_order_relaxed);
  s.latent_repairs = stats_.latent_repairs.load(std::memory_order_relaxed);
  s.corruption_repairs =
      stats_.corruption_repairs.load(std::memory_order_relaxed);
  return s;
}

void TwinParityManager::ResetStats() {
  stats_.unlogged_first.store(0, std::memory_order_relaxed);
  stats_.unlogged_repeat.store(0, std::memory_order_relaxed);
  stats_.logged_dirty_group.store(0, std::memory_order_relaxed);
  stats_.plain.store(0, std::memory_order_relaxed);
  stats_.parity_undos.store(0, std::memory_order_relaxed);
  stats_.logged_undos.store(0, std::memory_order_relaxed);
  stats_.commits_finalized.store(0, std::memory_order_relaxed);
  stats_.latent_repairs.store(0, std::memory_order_relaxed);
  stats_.corruption_repairs.store(0, std::memory_order_relaxed);
}

void TwinParityManager::XorPage(std::vector<uint8_t>* dst,
                                const std::vector<uint8_t>& src) {
  XorInto(dst, src);
  array_->AccountXor(1);
}

void TwinParityManager::SyncTwinShadow(GroupId group, uint32_t twin,
                                       uint8_t state) {
  if (group < twin_shadow_.size() && twin < 2) {
    twin_shadow_[group][twin] = state;
  }
}

void TwinParityManager::TraceTwinTransition(GroupId group, uint32_t twin,
                                            uint8_t to_state, PageId page,
                                            TxnId txn) {
  const uint8_t from_state =
      (group < twin_shadow_.size() && twin < 2) ? twin_shadow_[group][twin]
                                                : 0;
  SyncTwinShadow(group, twin, to_state);
  if (trace_ == nullptr) {
    return;
  }
  obs::TraceEvent event;
  event.subsystem = obs::Subsystem::kParity;
  event.kind = obs::EventKind::kTwinTransition;
  event.group = group;
  event.page = page;
  event.txn = txn;
  event.detail = static_cast<int64_t>(twin);
  event.from_state = from_state;
  event.to_state = to_state;
  trace_->Record(event);
}

void TwinParityManager::TraceGroupTransition(GroupId group, bool to_dirty,
                                             PageId page, TxnId txn) {
  if (trace_ == nullptr) {
    return;
  }
  obs::TraceEvent event;
  event.subsystem = obs::Subsystem::kParity;
  event.kind = obs::EventKind::kGroupTransition;
  event.group = group;
  event.page = page;
  event.txn = txn;
  event.from_state = static_cast<uint8_t>(to_dirty ? obs::GroupFigState::kClean
                                                   : obs::GroupFigState::kDirty);
  event.to_state = static_cast<uint8_t>(to_dirty ? obs::GroupFigState::kDirty
                                                 : obs::GroupFigState::kClean);
  trace_->Record(event);
}

void TwinParityManager::AttachObs(obs::ObsHub* hub) {
  trace_ = obs::TraceOf(hub);
  unlogged_first_counter_ = obs::GetCounter(hub, "parity.unlogged_first");
  unlogged_repeat_counter_ = obs::GetCounter(hub, "parity.unlogged_repeat");
  logged_dirty_group_counter_ =
      obs::GetCounter(hub, "parity.logged_dirty_group");
  plain_counter_ = obs::GetCounter(hub, "parity.plain");
  parity_undos_counter_ = obs::GetCounter(hub, "parity.parity_undos");
  logged_undos_counter_ = obs::GetCounter(hub, "parity.logged_undos");
  commits_finalized_counter_ =
      obs::GetCounter(hub, "parity.commits_finalized");
  degraded_reads_counter_ = obs::GetCounter(hub, "parity.degraded_reads");
  latent_repairs_counter_ = obs::GetCounter(hub, "parity.latent_repairs");
  corruption_repairs_counter_ =
      obs::GetCounter(hub, "parity.corruption_repairs");
  latch_waits_counter_ = obs::GetCounter(hub, "parity.latch_waits");
  online_on_demand_counter_ =
      obs::GetCounter(hub, "parity.online_on_demand_rebuilds");
  online_write_promotions_counter_ =
      obs::GetCounter(hub, "parity.online_write_promotions");
  spans_ = obs::SpansOf(hub);
  propagate_hist_ = obs::GetHistogram(
      hub, "parity.propagate_us",
      {1, 5, 10, 25, 50, 100, 250, 500, 1000, 5000});
}

bool TwinParityManager::HealableFault(const Status& status,
                                      DiskId disk) const {
  return (status.IsIoError() || status.IsCorruption()) &&
         !array_->DiskFailed(disk);
}

void TwinParityManager::NoteSectorRepair(const Status& cause, PageId page,
                                         GroupId group) {
  const bool corruption = cause.IsCorruption();
  if (corruption) {
    stats_.corruption_repairs.fetch_add(1, std::memory_order_relaxed);
    obs::Inc(corruption_repairs_counter_);
  } else {
    stats_.latent_repairs.fetch_add(1, std::memory_order_relaxed);
    obs::Inc(latent_repairs_counter_);
  }
  if (trace_ == nullptr) {
    return;
  }
  obs::TraceEvent event;
  event.subsystem = obs::Subsystem::kParity;
  event.kind = obs::EventKind::kSectorRepair;
  event.page = page;
  event.group = group;
  event.detail = corruption ? 2 : 1;
  trace_->Record(event);
}

Status TwinParityManager::ReadDataHealed(PageId page, PageImage* out) {
  auto latch = LockGroupOfPage(page);
  // Online rebuild: a fresh replaced medium reads stale zeros SUCCESSFULLY,
  // so the group must be rebuilt before the raw read below can be trusted.
  RDA_RETURN_IF_ERROR(EnsureGroupRebuilt(array_->layout().GroupOf(page)));
  Status status = array_->ReadData(page, out);
  if (status.ok() || !directory_valid()) {
    return status;
  }
  const DiskId disk = array_->layout().DataLocation(page).disk;
  if (!HealableFault(status, disk)) {
    if (status.IsIoError() && array_->DiskFailed(disk)) {
      // Degraded read: the page's disk is out (failed or escalated, not
      // yet rebuilt), so its content is implicit in the rest of the group.
      // Reconstruct it; no write-back — there is no medium to repair. A
      // reconstruction failure is a second fault: report the original
      // read error, which names the failed disk.
      Result<std::vector<uint8_t>> rebuilt = ReconstructDataPayload(page);
      if (!rebuilt.ok()) {
        return status;
      }
      out->header = PageHeader();
      out->payload = std::move(rebuilt).value();
      return Status::Ok();
    }
    return status;
  }
  array_->RecordSectorError(disk);  // May escalate the disk to Fail().
  Result<std::vector<uint8_t>> rebuilt = ReconstructDataPayload(page);
  if (!rebuilt.ok()) {
    // Second fault in the group: nothing left to XOR from. Report the
    // original read error, not the reconstruction's.
    return status;
  }
  if (crash_before_writeback_.exchange(false, std::memory_order_relaxed)) {
    return Status::Aborted("injected crash before repair write-back");
  }
  out->header = PageHeader();
  out->payload = std::move(rebuilt).value();
  if (!array_->DiskFailed(disk)) {
    // Repair on read: write the page straight back — no parity propagation,
    // because parity already encodes exactly this content. The rewrite
    // clears a latent sector error. If the write-back itself fails, the
    // slot simply stays faulty and the next read heals it again.
    PageImage repaired(0);
    repaired.payload = out->payload;
    if (array_->WriteData(page, std::move(repaired)).ok()) {
      NoteSectorRepair(status, page, array_->layout().GroupOf(page));
    }
  }
  return Status::Ok();
}

Status TwinParityManager::ReadParityHealed(GroupId group, uint32_t twin,
                                           PageImage* out) {
  auto latch = LockGroup(group);
  RDA_RETURN_IF_ERROR(EnsureGroupRebuilt(group));
  Status status = array_->ReadParity(group, twin, out);
  if (status.ok() || !directory_valid()) {
    return status;
  }
  const DiskId disk = array_->layout().ParityLocation(group, twin).disk;
  if (!HealableFault(status, disk)) {
    return status;
  }
  array_->RecordSectorError(disk);
  const GroupState state = directory_.Get(group);
  if (state.dirty && twin == state.valid_twin) {
    // The valid twin of a dirty group is BEFORE-image parity: the data it
    // summarizes has already moved on, so no reconstruction can bring it
    // back. The in-flight unlogged update of dirty_txn is no longer
    // undoable — say so instead of fabricating parity.
    return Status::DataLoss("valid parity twin of dirty group " +
                            std::to_string(group) +
                            " unreadable: parity undo coverage lost");
  }
  PageImage repaired(array_->page_size());
  if (state.dirty || twin == state.valid_twin) {
    // The consistent twin (working twin of a dirty group, valid twin of a
    // clean one) equals XOR of the current data pages — the running
    // invariant of parity-first propagation.
    const Layout& layout = array_->layout();
    ScratchPool::ScratchImage data = scratch_.Acquire();
    for (uint32_t i = 0; i < layout.data_pages_per_group(); ++i) {
      RDA_RETURN_IF_ERROR(array_->ReadData(layout.PageAt(group, i), &*data));
      XorPage(&repaired.payload, data->payload);
    }
    if (state.dirty) {
      repaired.header.parity_state = ParityState::kWorking;
      repaired.header.txn_id = state.dirty_txn;
      repaired.header.dirty_page = state.dirty_page;
    } else {
      repaired.header.parity_state = ParityState::kCommitted;
    }
    repaired.header.timestamp = NextTimestamp();
  } else {
    // Obsolete twin: its content is dead weight; a reset is a full repair.
    repaired.header.parity_state = ParityState::kObsolete;
    repaired.header.timestamp = 0;
  }
  if (crash_before_writeback_.exchange(false, std::memory_order_relaxed)) {
    return Status::Aborted("injected crash before repair write-back");
  }
  *out = repaired;
  if (!array_->DiskFailed(disk)) {
    if (array_->WriteParity(group, twin, std::move(repaired)).ok()) {
      NoteSectorRepair(status, kInvalidPageId, group);
    }
  }
  return Status::Ok();
}

Status TwinParityManager::FormatArray() {
  const size_t page_size = array_->page_size();
  for (GroupId g = 0; g < array_->num_groups(); ++g) {
    PageImage committed(page_size);  // Parity of an all-zero group is zero.
    committed.header.parity_state = ParityState::kCommitted;
    committed.header.timestamp = NextTimestamp();
    RDA_RETURN_IF_ERROR(array_->WriteParity(g, 0, committed));
    SyncTwinShadow(g, 0, static_cast<uint8_t>(ParityState::kCommitted));
    if (array_->layout().parity_copies() == 2) {
      PageImage obsolete(page_size);
      obsolete.header.parity_state = ParityState::kObsolete;
      obsolete.header.timestamp = 0;
      RDA_RETURN_IF_ERROR(array_->WriteParity(g, 1, obsolete));
      SyncTwinShadow(g, 1, static_cast<uint8_t>(ParityState::kObsolete));
    }
    directory_.MarkClean(g, 0);
  }
  directory_valid_.store(true, std::memory_order_release);
  return Status::Ok();
}

bool TwinParityManager::LocationHealthy(const PhysicalLocation& loc) const {
  return !array_->DiskFailed(loc.disk);
}

bool TwinParityManager::FullyHealthyForUnlogged(PageId page) const {
  const Layout& layout = array_->layout();
  if (!LocationHealthy(layout.DataLocation(page))) {
    return false;
  }
  const GroupId group = layout.GroupOf(page);
  for (uint32_t t = 0; t < layout.parity_copies(); ++t) {
    if (!LocationHealthy(layout.ParityLocation(group, t))) {
      return false;
    }
  }
  return true;
}

PropagationKind TwinParityManager::Classify(PageId page, TxnId txn) const {
  if (array_->layout().parity_copies() != 2 || txn == kInvalidTxnId ||
      !directory_valid() || !FullyHealthyForUnlogged(page)) {
    return PropagationKind::kPlain;
  }
  const GroupId group = array_->layout().GroupOf(page);
  std::unique_lock<std::recursive_mutex> latch(group_latches_[group]);
  const GroupState& g = directory_.Get(group);
  if (!g.dirty) {
    return PropagationKind::kUnloggedFirst;
  }
  if (g.dirty_page == page && g.dirty_txn == txn) {
    return PropagationKind::kUnloggedRepeat;
  }
  return PropagationKind::kLoggedDirtyGroup;
}

Status TwinParityManager::ReadOldPayload(PageId page,
                                         const std::vector<uint8_t>* hint,
                                         std::vector<uint8_t>* out) {
  if (hint != nullptr) {
    if (hint->size() != array_->page_size()) {
      return Status::InvalidArgument("old payload size mismatch");
    }
    *out = *hint;  // The model's a=3 case: old data available in memory.
    return Status::Ok();
  }
  PageImage old_image;
  Status status = ReadDataHealed(page, &old_image);  // a=4 case.
  if (status.IsIoError()) {
    // Degraded mode: the page's disk is down; its content is implicit in
    // the rest of the group.
    RDA_ASSIGN_OR_RETURN(*out, ReconstructDataPayload(page));
    return Status::Ok();
  }
  RDA_RETURN_IF_ERROR(status);
  *out = std::move(old_image.payload);
  return Status::Ok();
}

Status TwinParityManager::Propagate(PageId page, TxnId txn,
                                    PropagationKind kind,
                                    const std::vector<uint8_t>* old_payload,
                                    const PageImage& new_image) {
  obs::ScopedSpan span(spans_, obs::SpanKind::kParityPropagate,
                       propagate_hist_, static_cast<int64_t>(page));
  if (!directory_valid()) {
    return Status::FailedPrecondition("parity directory not available");
  }
  if (new_image.payload.size() != array_->page_size()) {
    return Status::InvalidArgument("page payload size mismatch");
  }
  const GroupId group = array_->layout().GroupOf(page);
  auto latch = LockGroup(group);

  // Online rebuild: a write whose data page sits on the disk under rebuild
  // is promoted — the new image is persisted below anyway, so rebuilding
  // the old content first would be wasted work. The pending bit is cleared
  // up front (the nested healed reads re-enter EnsureGroupRebuilt, which
  // must see the group as handled) and restored by the guard if the
  // propagation fails before the data write lands. Every other pending
  // group is rebuilt on demand before its parity is touched.
  struct PendingGuard {
    std::atomic<uint8_t>* slot = nullptr;
    ~PendingGuard() {
      if (slot != nullptr) {
        slot->store(1, std::memory_order_relaxed);
      }
    }
  } promotion;
  std::vector<uint8_t> old_from_parity;
  if (rebuild_active_.load(std::memory_order_acquire) &&
      rebuild_pending_ != nullptr &&
      rebuild_pending_[group].load(std::memory_order_relaxed) != 0 &&
      !array_->DiskFailed(rebuild_disk_)) {
    if (array_->layout().DataLocation(page).disk == rebuild_disk_) {
      rebuild_pending_[group].store(0, std::memory_order_relaxed);
      promotion.slot = &rebuild_pending_[group];
      if (old_payload == nullptr) {
        // The fresh medium holds stale zeros; the logical old content lives
        // only in parity space. (The reconstruction's raw reads never touch
        // `page` itself — group members sit on distinct disks.)
        RDA_ASSIGN_OR_RETURN(old_from_parity, ReconstructDataPayload(page));
        old_payload = &old_from_parity;
      }
    } else {
      RDA_RETURN_IF_ERROR(EnsureGroupRebuilt(group));
    }
  }
  const GroupState& state = directory_.Get(group);

  // Validate the caller's decision against the Figure 3 rule.
  const bool unlogged = kind == PropagationKind::kUnloggedFirst ||
                        kind == PropagationKind::kUnloggedRepeat;
  if (unlogged) {
    const PropagationKind verdict = Classify(page, txn);
    if (verdict != kind) {
      if (verdict != PropagationKind::kUnloggedFirst &&
          verdict != PropagationKind::kUnloggedRepeat) {
        return Status::FailedPrecondition(
            "unlogged propagation not permitted for page " +
            std::to_string(page));
      }
      // The on-demand rebuild above may have finalized an undo-lost dirty
      // group between the caller's Classify and this call; both unlogged
      // kinds keep full undo coverage, so adopt the fresh verdict.
      kind = verdict;
    }
  } else if (state.dirty && kind == PropagationKind::kPlain) {
    // A plain write into a dirty group (e.g. checkpoint propagation of
    // committed data while another transaction keeps the group dirty) must
    // keep BOTH twins in sync so the dirty page stays undoable.
    kind = PropagationKind::kLoggedDirtyGroup;
  } else if (!state.dirty && kind == PropagationKind::kLoggedDirtyGroup) {
    kind = PropagationKind::kPlain;
  }

  // delta = D_old xor D_new; every affected parity payload absorbs it. Both
  // the delta and the parity read-modify-write below run on pooled scratch
  // buffers, so a steady-state propagation performs no allocations.
  ScratchPool::ScratchImage delta = scratch_.Acquire();
  RDA_RETURN_IF_ERROR(ReadOldPayload(page, old_payload, &delta.payload()));
  XorInto(delta.payload().data(), new_image.payload.data(),
          delta.payload().size());
  array_->AccountXor(1);

  switch (kind) {
    case PropagationKind::kUnloggedFirst: {
      stats_.unlogged_first.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(unlogged_first_counter_);
      ScratchPool::ScratchImage parity = scratch_.Acquire();
      RDA_RETURN_IF_ERROR(
          ReadParityHealed(group, state.valid_twin, &*parity));
      XorPage(&parity->payload, delta.payload());
      parity->header.parity_state = ParityState::kWorking;
      parity->header.txn_id = txn;
      parity->header.timestamp = NextTimestamp();
      parity->header.dirty_page = page;
      const uint32_t working = OtherTwin(state.valid_twin);
      RDA_RETURN_IF_ERROR(array_->WriteParity(group, working, *parity));
      TraceTwinTransition(group, working,
                          static_cast<uint8_t>(ParityState::kWorking), page,
                          txn);
      TraceGroupTransition(group, /*to_dirty=*/true, page, txn);
      directory_.MarkDirty(group, page, txn, working);
      break;
    }
    case PropagationKind::kUnloggedRepeat: {
      stats_.unlogged_repeat.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(unlogged_repeat_counter_);
      ScratchPool::ScratchImage parity = scratch_.Acquire();
      RDA_RETURN_IF_ERROR(
          ReadParityHealed(group, state.working_twin, &*parity));
      XorPage(&parity->payload, delta.payload());
      parity->header.timestamp = NextTimestamp();
      RDA_RETURN_IF_ERROR(
          array_->WriteParity(group, state.working_twin, *parity));
      // Figure 8 self-loop: the working twin absorbs another update.
      TraceTwinTransition(group, state.working_twin,
                          static_cast<uint8_t>(ParityState::kWorking), page,
                          txn);
      break;
    }
    case PropagationKind::kLoggedDirtyGroup: {
      stats_.logged_dirty_group.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(logged_dirty_group_counter_);
      // XOR the same delta into both twins: P xor P' is unchanged, so the
      // dirty page's parity undo stays exact (paper Section 4.1). In
      // degraded mode a twin on a failed disk is skipped — it goes stale
      // and is recomputed at rebuild time.
      for (const uint32_t twin : {state.valid_twin, state.working_twin}) {
        if (!LocationHealthy(
                array_->layout().ParityLocation(group, twin))) {
          continue;
        }
        ScratchPool::ScratchImage parity = scratch_.Acquire();
        RDA_RETURN_IF_ERROR(ReadParityHealed(group, twin, &*parity));
        XorPage(&parity->payload, delta.payload());
        RDA_RETURN_IF_ERROR(array_->WriteParity(group, twin, *parity));
      }
      break;
    }
    case PropagationKind::kPlain: {
      stats_.plain.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(plain_counter_);
      if (LocationHealthy(
              array_->layout().ParityLocation(group, state.valid_twin))) {
        ScratchPool::ScratchImage parity = scratch_.Acquire();
        RDA_RETURN_IF_ERROR(
            ReadParityHealed(group, state.valid_twin, &*parity));
        XorPage(&parity->payload, delta.payload());
        RDA_RETURN_IF_ERROR(
            array_->WriteParity(group, state.valid_twin, *parity));
      }
      break;
    }
  }

  // Parity first, then data: a torn sequence leaves parity "ahead", which
  // recovery repairs; the reverse order could lose undo coverage.
  if (!LocationHealthy(array_->layout().DataLocation(page))) {
    // Degraded write: the data disk is down, but the parity update above
    // already encodes the new content — degraded reads reconstruct it and
    // the rebuild materializes it. Reject only if the parity could not be
    // updated either (that would silently drop the write).
    if (state.dirty ||
        LocationHealthy(
            array_->layout().ParityLocation(group, state.valid_twin))) {
      return Status::Ok();
    }
    return Status::IoError("write not durable: data disk and parity disk "
                           "both unavailable");
  }
  Status write = array_->WriteData(page, new_image);
  if (promotion.slot != nullptr && write.ok()) {
    // The new image is durable on the replaced medium: the group needs no
    // background rebuild. Disarm the guard and account the promotion.
    promotion.slot = nullptr;
    NotePendingCleared(group, /*on_demand=*/false);
  }
  return write;
}

Status TwinParityManager::FinalizeCommit(GroupId group, TxnId txn) {
  if (!directory_valid()) {
    return Status::FailedPrecondition("parity directory not available");
  }
  auto latch = LockGroup(group);
  RDA_RETURN_IF_ERROR(EnsureGroupRebuilt(group));
  const GroupState state = directory_.Get(group);
  if (!state.dirty) {
    return Status::Ok();  // Already finalized (idempotent for recovery).
  }
  if (state.dirty_txn != txn) {
    return Status::FailedPrecondition(
        "group " + std::to_string(group) + " dirty by another transaction");
  }
  if (!LocationHealthy(
          array_->layout().ParityLocation(group, state.working_twin))) {
    // Degraded finalize: the working twin's disk is down. The commit record
    // is already stable (winners are rolled forward by recovery) and the
    // rebuild recomputes the consistent twin from data, so the in-memory
    // transition suffices.
    TraceTwinTransition(group, state.working_twin,
                        static_cast<uint8_t>(ParityState::kCommitted),
                        state.dirty_page, txn);
    TraceTwinTransition(group, state.valid_twin,
                        static_cast<uint8_t>(ParityState::kObsolete),
                        state.dirty_page, txn);
    TraceGroupTransition(group, /*to_dirty=*/false, state.dirty_page, txn);
    directory_.MarkClean(group, state.working_twin);
    stats_.commits_finalized.fetch_add(1, std::memory_order_relaxed);
    obs::Inc(commits_finalized_counter_);
    return Status::Ok();
  }
  ScratchPool::ScratchImage parity = scratch_.Acquire();
  RDA_RETURN_IF_ERROR(
      ReadParityHealed(group, state.working_twin, &*parity));
  parity->header.parity_state = ParityState::kCommitted;
  parity->header.timestamp = NextTimestamp();
  RDA_RETURN_IF_ERROR(array_->WriteParity(group, state.working_twin, *parity));
  // The freshly committed twin supersedes the old valid twin, which becomes
  // logically obsolete without a write (timestamps disambiguate after a
  // crash).
  TraceTwinTransition(group, state.working_twin,
                      static_cast<uint8_t>(ParityState::kCommitted),
                      state.dirty_page, txn);
  TraceTwinTransition(group, state.valid_twin,
                      static_cast<uint8_t>(ParityState::kObsolete),
                      state.dirty_page, txn);
  TraceGroupTransition(group, /*to_dirty=*/false, state.dirty_page, txn);
  directory_.MarkClean(group, state.working_twin);
  stats_.commits_finalized.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(commits_finalized_counter_);
  return Status::Ok();
}

Result<ParityUndoResult> TwinParityManager::UndoUnloggedUpdate(GroupId group,
                                                               TxnId txn) {
  obs::ScopedSpan span(spans_, obs::SpanKind::kParityUndo,
                       /*histogram=*/nullptr, static_cast<int64_t>(group));
  if (!directory_valid()) {
    return Status::FailedPrecondition("parity directory not available");
  }
  auto latch = LockGroup(group);
  RDA_RETURN_IF_ERROR(EnsureGroupRebuilt(group));
  const GroupState state = directory_.Get(group);
  if (!state.dirty || state.dirty_txn != txn) {
    return Status::FailedPrecondition("group " + std::to_string(group) +
                                      " not dirty by transaction " +
                                      std::to_string(txn));
  }
  stats_.parity_undos.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(parity_undos_counter_);

  PageImage data;
  // Decide degraded mode from the disk's health, NOT from the read status:
  // a sector fault on a live disk is healed in place and must take the
  // normal (data-restoring) path, or the stale on-disk page would survive.
  const bool data_disk_down =
      array_->DiskFailed(array_->layout().DataLocation(state.dirty_page).disk);
  if (data_disk_down) {
    // Degraded undo: the covered page's disk is down. Its current content
    // is implicit in the WORKING twin; after invalidating that twin the
    // group's valid parity makes degraded reads return the OLD content —
    // the undo happens entirely in parity space.
    RDA_ASSIGN_OR_RETURN(data.payload,
                         ReconstructDataPayload(state.dirty_page));
  } else {
    RDA_RETURN_IF_ERROR(ReadDataHealed(state.dirty_page, &data));
  }

  ParityUndoResult result;
  result.page = state.dirty_page;
  result.overwritten_meta = LoadDataMeta(data.payload);

  if (data_disk_down) {
    ScratchPool::ScratchImage working = scratch_.Acquire();
    RDA_RETURN_IF_ERROR(
        ReadParityHealed(group, state.working_twin, &*working));
    working->header.parity_state = ParityState::kInvalid;
    working->header.txn_id = kInvalidTxnId;
    working->header.dirty_page = kInvalidPageId;
    RDA_RETURN_IF_ERROR(
        array_->WriteParity(group, state.working_twin, *working));
    TraceTwinTransition(group, state.working_twin,
                        static_cast<uint8_t>(ParityState::kInvalid),
                        state.dirty_page, txn);
    TraceGroupTransition(group, /*to_dirty=*/false, state.dirty_page, txn);
    directory_.MarkClean(group, state.valid_twin);
    RDA_ASSIGN_OR_RETURN(result.restored_payload,
                         ReconstructDataPayload(state.dirty_page));
    result.payload_restored = true;
    return result;
  }

  if (result.overwritten_meta.txn_id == txn) {
    // D_old = (P xor P') xor D_new (paper Figure 6). The embedded metadata
    // (pageLSN, chain link) of the old image comes back byte-exactly.
    ScratchPool::ScratchImage restored = scratch_.Acquire();
    ScratchPool::ScratchImage working = scratch_.Acquire();
    RDA_RETURN_IF_ERROR(
        ReadParityHealed(group, state.valid_twin, &*restored));
    RDA_RETURN_IF_ERROR(
        ReadParityHealed(group, state.working_twin, &*working));
    restored->header = PageHeader();
    XorPage(&restored->payload, working->payload);
    XorPage(&restored->payload, data.payload);
    RDA_RETURN_IF_ERROR(array_->WriteData(state.dirty_page, *restored));
    result.payload_restored = true;
    result.restored_payload = restored.TakePayload();

    working->header.parity_state = ParityState::kInvalid;
    working->header.txn_id = kInvalidTxnId;
    working->header.dirty_page = kInvalidPageId;
    RDA_RETURN_IF_ERROR(
        array_->WriteParity(group, state.working_twin, *working));
  } else {
    // The data page no longer carries the transaction's stamp: its content
    // was already restored. Two distinct histories lead here and they leave
    // OPPOSITE twins covering the on-disk group:
    //  - a crash interrupted a previous parity undo after its data write —
    //    the VALID twin covers the restored group;
    //  - a logged before-image undo rewrote the dirty page while the group
    //    was dirty (a transaction that first stole with a logged
    //    before-image, then re-stole unlogged in a later epoch) — that
    //    rewrite XORs its delta into BOTH twins, so the WORKING twin covers
    //    the group and the valid twin is stale by (committed xor restored).
    // The stamp alone cannot distinguish them: audit the group's data XOR
    // and refresh the valid twin if it no longer covers the data, or the
    // group would be marked clean around permanently corrupt parity.
    ScratchPool::ScratchImage actual = scratch_.Acquire();
    ScratchPool::ScratchImage member = scratch_.Acquire();
    bool xor_known = true;
    for (uint32_t i = 0; i < array_->layout().data_pages_per_group(); ++i) {
      const PageId member_page = array_->layout().PageAt(group, i);
      if (!LocationHealthy(array_->layout().DataLocation(member_page)) ||
          !ReadDataHealed(member_page, &*member).ok()) {
        xor_known = false;  // Degraded member: nothing to audit against.
        break;
      }
      XorPage(&actual->payload, member->payload);
    }
    if (xor_known) {
      ScratchPool::ScratchImage valid = scratch_.Acquire();
      RDA_RETURN_IF_ERROR(
          ReadParityHealed(group, state.valid_twin, &*valid));
      if (valid->payload != actual->payload) {
        actual->header.parity_state = ParityState::kCommitted;
        actual->header.txn_id = kInvalidTxnId;
        actual->header.dirty_page = kInvalidPageId;
        actual->header.timestamp = NextTimestamp();
        RDA_RETURN_IF_ERROR(
            array_->WriteParity(group, state.valid_twin, *actual));
        TraceTwinTransition(group, state.valid_twin,
                            static_cast<uint8_t>(ParityState::kCommitted),
                            state.dirty_page, txn);
      }
    }
    ScratchPool::ScratchImage working = scratch_.Acquire();
    RDA_RETURN_IF_ERROR(
        ReadParityHealed(group, state.working_twin, &*working));
    working->header.parity_state = ParityState::kInvalid;
    working->header.txn_id = kInvalidTxnId;
    working->header.dirty_page = kInvalidPageId;
    RDA_RETURN_IF_ERROR(
        array_->WriteParity(group, state.working_twin, *working));
  }

  TraceTwinTransition(group, state.working_twin,
                      static_cast<uint8_t>(ParityState::kInvalid),
                      state.dirty_page, txn);
  TraceGroupTransition(group, /*to_dirty=*/false, state.dirty_page, txn);
  directory_.MarkClean(group, state.valid_twin);
  return result;
}

Status TwinParityManager::ApplyLoggedUndo(PageId page,
                                          const std::vector<uint8_t>& before) {
  obs::ScopedSpan span(spans_, obs::SpanKind::kParityUndo,
                       /*histogram=*/nullptr, static_cast<int64_t>(page));
  if (!directory_valid()) {
    return Status::FailedPrecondition("parity directory not available");
  }
  if (before.size() != array_->page_size()) {
    return Status::InvalidArgument("before-image size mismatch");
  }
  auto latch = LockGroupOfPage(page);
  stats_.logged_undos.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(logged_undos_counter_);
  PageImage restored(array_->page_size());
  restored.payload = before;
  // Reuse Propagate's parity maintenance; inside a dirty group both twins
  // absorb the delta, preserving P xor P' for the covered page.
  return Propagate(page, kInvalidTxnId, PropagationKind::kPlain,
                   /*old_payload=*/nullptr, restored);
}

Result<std::vector<uint8_t>> TwinParityManager::ReconstructDataPayload(
    PageId page) {
  ScratchPool::ScratchImage image = scratch_.Acquire();
  RDA_RETURN_IF_ERROR(ReconstructDataPayloadInto(page, &*image));
  // The payload escapes the scratch scope; the pool re-allocates lazily.
  return image.TakePayload();
}

Status TwinParityManager::ReconstructDataPayloadInto(PageId page,
                                                     PageImage* out) {
  if (!directory_valid()) {
    return Status::FailedPrecondition("parity directory not available");
  }
  const Layout& layout = array_->layout();
  const GroupId group = layout.GroupOf(page);
  auto latch = LockGroup(group);
  RDA_RETURN_IF_ERROR(EnsureGroupRebuilt(group));
  const GroupState& state = directory_.Get(group);
  const uint32_t twin = state.dirty ? state.working_twin : state.valid_twin;
  // Raw (unhealed) reads on purpose: reconstruction is what the healed
  // reads fall back ON. A faulted sibling or parity page here is a second
  // fault in the group — genuinely unrecoverable under single parity, so
  // the typed error must surface instead of recursing.
  RDA_RETURN_IF_ERROR(array_->ReadParity(group, twin, out));
  ScratchPool::ScratchImage data = scratch_.Acquire();
  for (uint32_t i = 0; i < layout.data_pages_per_group(); ++i) {
    const PageId sibling = layout.PageAt(group, i);
    if (sibling == page) {
      continue;
    }
    RDA_RETURN_IF_ERROR(array_->ReadData(sibling, &*data));
    XorPage(&out->payload, data->payload);
  }
  obs::Inc(degraded_reads_counter_);
  if (trace_ != nullptr) {
    obs::TraceEvent event;
    event.subsystem = obs::Subsystem::kParity;
    event.kind = obs::EventKind::kDegradedRead;
    event.page = page;
    event.group = group;
    trace_->Record(event);
  }
  return Status::Ok();
}

Result<TwinParityManager::GroupRebuildOutcome>
TwinParityManager::RebuildGroupMember(GroupId group, DiskId disk) {
  obs::ScopedSpan span(spans_, obs::SpanKind::kParityRebuild,
                       /*histogram=*/nullptr, static_cast<int64_t>(group));
  if (!directory_valid()) {
    return Status::FailedPrecondition("parity directory not available");
  }
  auto latch = LockGroup(group);
  GroupRebuildOutcome outcome;
  const Layout& layout = array_->layout();
  const GroupState state = directory_.Get(group);
  const uint32_t copies = layout.parity_copies();
  const uint32_t consistent_twin =
      state.dirty ? state.working_twin : state.valid_twin;

  // Lost data page?  Reconstructed into a scratch buffer and written back
  // by const reference, so a full-disk rebuild recycles the same pooled
  // pages group after group instead of allocating per group.
  for (uint32_t i = 0; i < layout.data_pages_per_group(); ++i) {
    const PageId page = layout.PageAt(group, i);
    if (layout.DataLocation(page).disk != disk) {
      continue;
    }
    ScratchPool::ScratchImage rebuilt = scratch_.Acquire();
    RDA_RETURN_IF_ERROR(ReconstructDataPayloadInto(page, &*rebuilt));
    // The reconstruction leaves the parity twin's header behind; a data
    // page carries no out-of-band state.
    rebuilt->header = PageHeader{};
    RDA_RETURN_IF_ERROR(array_->WriteData(page, *rebuilt));
    ++outcome.data_rebuilt;
    return outcome;
  }

  // Lost parity twin?
  for (uint32_t t = 0; t < copies; ++t) {
    if (layout.ParityLocation(group, t).disk != disk) {
      continue;
    }
    if (t == consistent_twin) {
      // Recompute the consistent parity from the (surviving) data pages.
      ScratchPool::ScratchImage parity = scratch_.Acquire();
      ScratchPool::ScratchImage data = scratch_.Acquire();
      for (uint32_t i = 0; i < layout.data_pages_per_group(); ++i) {
        RDA_RETURN_IF_ERROR(
            ReadDataHealed(layout.PageAt(group, i), &*data));
        XorPage(&parity->payload, data->payload);
      }
      if (state.dirty) {
        parity->header.parity_state = ParityState::kWorking;
        parity->header.txn_id = state.dirty_txn;
        parity->header.dirty_page = state.dirty_page;
      } else {
        parity->header.parity_state = ParityState::kCommitted;
      }
      parity->header.timestamp = NextTimestamp();
      RDA_RETURN_IF_ERROR(array_->WriteParity(group, t, *parity));
      SyncTwinShadow(group, t,
                     static_cast<uint8_t>(parity->header.parity_state));
      ++outcome.parity_rebuilt;
      return outcome;
    }
    if (!state.dirty) {
      // Stale obsolete twin: its content is not needed; reset it.
      ScratchPool::ScratchImage obsolete = scratch_.Acquire();
      obsolete->header.parity_state = ParityState::kObsolete;
      RDA_RETURN_IF_ERROR(array_->WriteParity(group, t, *obsolete));
      SyncTwinShadow(group, t, static_cast<uint8_t>(ParityState::kObsolete));
      ++outcome.obsolete_reset;
      return outcome;
    }
    // Worst case: the OLD (valid) twin of a dirty group is gone — the
    // before-state of the in-flight unlogged update is unrecoverable.
    // Finalize the working twin so the group stays internally consistent
    // and report the affected transaction to the caller.
    outcome.undo_lost = true;
    outcome.lost_txn = state.dirty_txn;
    PageImage working;
    RDA_RETURN_IF_ERROR(
        ReadParityHealed(group, state.working_twin, &working));
    working.header.parity_state = ParityState::kCommitted;
    working.header.timestamp = NextTimestamp();
    RDA_RETURN_IF_ERROR(
        array_->WriteParity(group, state.working_twin, working));
    PageImage obsolete(array_->page_size());
    obsolete.header.parity_state = ParityState::kObsolete;
    RDA_RETURN_IF_ERROR(array_->WriteParity(group, t, obsolete));
    TraceTwinTransition(group, state.working_twin,
                        static_cast<uint8_t>(ParityState::kCommitted),
                        state.dirty_page, state.dirty_txn);
    SyncTwinShadow(group, t, static_cast<uint8_t>(ParityState::kObsolete));
    TraceGroupTransition(group, /*to_dirty=*/false, state.dirty_page,
                         state.dirty_txn);
    directory_.MarkClean(group, state.working_twin);
    ++outcome.parity_rebuilt;
    return outcome;
  }
  return outcome;  // This group lost nothing.
}

Result<TwinParityManager::OnlineRebuildInfo>
TwinParityManager::BeginOnlineRebuild(DiskId disk) {
  if (!directory_valid()) {
    return Status::FailedPrecondition("parity directory not available");
  }
  if (rebuild_active_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("an online rebuild is already active");
  }
  if (!array_->DiskFailed(disk)) {
    return Status::FailedPrecondition("disk " + std::to_string(disk) +
                                      " has not failed");
  }
  if (array_->NumFailedDisks() != 1) {
    return Status::FailedPrecondition(
        "online rebuild requires exactly one failed disk");
  }
  const Layout& layout = array_->layout();
  const uint32_t groups = array_->num_groups();
  if (rebuild_pending_ == nullptr) {
    rebuild_pending_ = std::make_unique<std::atomic<uint8_t>[]>(groups);
  }
  OnlineRebuildInfo info;
  for (GroupId g = 0; g < groups; ++g) {
    auto latch = LockGroup(g);
    bool member = false;
    for (uint32_t i = 0; i < layout.data_pages_per_group() && !member; ++i) {
      member = layout.DataLocation(layout.PageAt(g, i)).disk == disk;
    }
    for (uint32_t t = 0; t < layout.parity_copies() && !member; ++t) {
      member = layout.ParityLocation(g, t).disk == disk;
    }
    if (member) {
      const GroupState& state = directory_.Get(g);
      if (state.dirty &&
          layout.ParityLocation(g, state.valid_twin).disk == disk) {
        // The before-image parity of this in-flight unlogged update sits on
        // the dead disk: its undo coverage is lost, exactly as the
        // quiescent rebuild reports. (New dirtiness cannot join this list —
        // after Begin every pending group is rebuilt before it is touched.)
        info.undo_coverage_lost.push_back(state.dirty_txn);
      }
      ++info.groups_total;
    }
    rebuild_pending_[g].store(member ? 1 : 0, std::memory_order_relaxed);
  }
  info.groups_pending = info.groups_total;
  std::sort(info.undo_coverage_lost.begin(), info.undo_coverage_lost.end());
  info.undo_coverage_lost.erase(std::unique(info.undo_coverage_lost.begin(),
                                            info.undo_coverage_lost.end()),
                                info.undo_coverage_lost.end());
  rebuild_disk_ = disk;
  rebuild_groups_total_.store(info.groups_total, std::memory_order_relaxed);
  rebuild_groups_remaining_.store(info.groups_total,
                                  std::memory_order_relaxed);
  rebuild_on_demand_.store(0, std::memory_order_relaxed);
  rebuild_write_promotions_.store(0, std::memory_order_relaxed);
  array_->SetRebuilding(disk, true);
  // Publish the session BEFORE installing the fresh medium: between the two
  // the disk still reads as failed, so EnsureGroupRebuilt stands down and
  // the degraded-mode machinery serves — the zeroed medium is never visible
  // without the hook armed.
  rebuild_active_.store(true, std::memory_order_release);
  Status replaced = array_->ReplaceDisk(disk);
  if (!replaced.ok()) {
    rebuild_active_.store(false, std::memory_order_release);
    array_->SetRebuilding(disk, false);
    rebuild_disk_ = kInvalidDiskId;
    return replaced;
  }
  return info;
}

Result<TwinParityManager::GroupRebuildOutcome>
TwinParityManager::RebuildGroupIfPending(GroupId group, bool* did_work) {
  *did_work = false;
  GroupRebuildOutcome none;
  if (!rebuild_active_.load(std::memory_order_acquire) ||
      rebuild_pending_ == nullptr ||
      rebuild_pending_[group].load(std::memory_order_relaxed) == 0) {
    return none;  // Lock-free skip: someone already handled this group.
  }
  auto latch = LockGroup(group);
  if (rebuild_pending_[group].load(std::memory_order_relaxed) == 0) {
    return none;  // Lost the race under the latch.
  }
  if (array_->DiskFailed(rebuild_disk_)) {
    return Status::IoError("disk " + std::to_string(rebuild_disk_) +
                           " failed during its online rebuild");
  }
  rebuild_pending_[group].store(0, std::memory_order_relaxed);
  Result<GroupRebuildOutcome> outcome = RebuildGroupMember(group,
                                                           rebuild_disk_);
  if (!outcome.ok()) {
    rebuild_pending_[group].store(1, std::memory_order_relaxed);
    return outcome.status();
  }
  rebuild_groups_remaining_.fetch_sub(1, std::memory_order_relaxed);
  *did_work = true;
  return outcome;
}

Status TwinParityManager::EndOnlineRebuild() {
  if (!rebuild_active_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("no online rebuild is active");
  }
  const uint32_t remaining =
      rebuild_groups_remaining_.load(std::memory_order_relaxed);
  if (remaining != 0) {
    return Status::FailedPrecondition(
        std::to_string(remaining) + " groups still pending rebuild of disk " +
        std::to_string(rebuild_disk_));
  }
  const DiskId disk = rebuild_disk_;
  rebuild_active_.store(false, std::memory_order_release);
  rebuild_disk_ = kInvalidDiskId;
  array_->SetRebuilding(disk, false);
  return Status::Ok();
}

bool TwinParityManager::OnlineGroupPending(GroupId group) const {
  return rebuild_active_.load(std::memory_order_acquire) &&
         rebuild_pending_ != nullptr && group < array_->num_groups() &&
         rebuild_pending_[group].load(std::memory_order_relaxed) != 0;
}

Status TwinParityManager::EnsureGroupRebuilt(GroupId group) {
  if (!rebuild_active_.load(std::memory_order_acquire)) {
    return Status::Ok();
  }
  auto latch = LockGroup(group);
  if (rebuild_pending_ == nullptr ||
      rebuild_pending_[group].load(std::memory_order_relaxed) == 0) {
    return Status::Ok();
  }
  if (array_->DiskFailed(rebuild_disk_)) {
    // Pre-replace window, or the new medium failed again: the group stays
    // pending and the degraded-mode machinery serves the access.
    return Status::Ok();
  }
  // Clear the bit BEFORE rebuilding: the latch is recursive and
  // RebuildGroupMember re-enters the healed readers, which re-enter this
  // hook — the bit is the recursion brake. Restored on failure so the
  // stale zeroed medium is never silently trusted.
  rebuild_pending_[group].store(0, std::memory_order_relaxed);
  Result<GroupRebuildOutcome> outcome = RebuildGroupMember(group,
                                                           rebuild_disk_);
  if (!outcome.ok()) {
    rebuild_pending_[group].store(1, std::memory_order_relaxed);
    return outcome.status();
  }
  NotePendingCleared(group, /*on_demand=*/true);
  return Status::Ok();
}

void TwinParityManager::NotePendingCleared(GroupId group, bool on_demand) {
  rebuild_groups_remaining_.fetch_sub(1, std::memory_order_relaxed);
  if (on_demand) {
    rebuild_on_demand_.fetch_add(1, std::memory_order_relaxed);
    obs::Inc(online_on_demand_counter_);
  } else {
    rebuild_write_promotions_.fetch_add(1, std::memory_order_relaxed);
    obs::Inc(online_write_promotions_counter_);
  }
  if (trace_ != nullptr) {
    obs::TraceEvent event;
    event.subsystem = obs::Subsystem::kParity;
    event.kind = obs::EventKind::kOnDemandRebuild;
    event.group = group;
    event.detail = on_demand ? 1 : 2;  // 1 = repair-on-access, 2 = promotion.
    event.value = static_cast<int64_t>(rebuild_disk_);
    trace_->Record(event);
  }
}

Status TwinParityManager::WriteFullGroup(
    GroupId group, const std::vector<std::vector<uint8_t>>& payloads) {
  if (!directory_valid()) {
    return Status::FailedPrecondition("parity directory not available");
  }
  const Layout& layout = array_->layout();
  if (payloads.size() != layout.data_pages_per_group()) {
    return Status::InvalidArgument("full-stripe write needs every page");
  }
  auto latch = LockGroup(group);
  RDA_RETURN_IF_ERROR(EnsureGroupRebuilt(group));
  const GroupState& state = directory_.Get(group);
  if (state.dirty) {
    return Status::FailedPrecondition(
        "full-stripe write into a dirty group would destroy undo coverage");
  }
  PageImage parity(array_->page_size());
  for (uint32_t i = 0; i < layout.data_pages_per_group(); ++i) {
    if (payloads[i].size() != array_->page_size()) {
      return Status::InvalidArgument("page payload size mismatch");
    }
    XorPage(&parity.payload, payloads[i]);
  }
  // Parity first (consistent with the small-write ordering), then data.
  parity.header.parity_state = ParityState::kCommitted;
  parity.header.timestamp = NextTimestamp();
  RDA_RETURN_IF_ERROR(array_->WriteParity(group, state.valid_twin, parity));
  SyncTwinShadow(group, state.valid_twin,
                 static_cast<uint8_t>(ParityState::kCommitted));
  for (uint32_t i = 0; i < layout.data_pages_per_group(); ++i) {
    PageImage image(0);
    image.payload = payloads[i];
    RDA_RETURN_IF_ERROR(
        array_->WriteData(layout.PageAt(group, i), std::move(image)));
  }
  return Status::Ok();
}

Status TwinParityManager::ScrubGroup(GroupId group) {
  if (!directory_valid()) {
    return Status::FailedPrecondition("parity directory not available");
  }
  auto latch = LockGroup(group);
  RDA_RETURN_IF_ERROR(EnsureGroupRebuilt(group));
  const GroupState& state = directory_.Get(group);
  if (state.dirty) {
    return Status::FailedPrecondition("cannot scrub a dirty group");
  }
  PageImage parity(array_->page_size());
  const Layout& layout = array_->layout();
  ScratchPool::ScratchImage data = scratch_.Acquire();
  for (uint32_t i = 0; i < layout.data_pages_per_group(); ++i) {
    // Healed reads make the scrub a read-verify pass over the data pages
    // too: a latent or corrupt data sector found here is repaired in place
    // before its content goes into the fresh parity.
    RDA_RETURN_IF_ERROR(ReadDataHealed(layout.PageAt(group, i), &*data));
    XorPage(&parity.payload, data->payload);
  }
  parity.header.parity_state = ParityState::kCommitted;
  parity.header.timestamp = NextTimestamp();
  RDA_RETURN_IF_ERROR(array_->WriteParity(group, state.valid_twin, parity));
  SyncTwinShadow(group, state.valid_twin,
                 static_cast<uint8_t>(ParityState::kCommitted));
  if (array_->layout().parity_copies() == 2) {
    PageImage obsolete(array_->page_size());
    obsolete.header.parity_state = ParityState::kObsolete;
    RDA_RETURN_IF_ERROR(
        array_->WriteParity(group, OtherTwin(state.valid_twin), obsolete));
    SyncTwinShadow(group, OtherTwin(state.valid_twin),
                   static_cast<uint8_t>(ParityState::kObsolete));
  }
  return Status::Ok();
}

Result<bool> TwinParityManager::VerifyGroupParity(GroupId group) {
  if (!directory_valid()) {
    return Status::FailedPrecondition("parity directory not available");
  }
  auto latch = LockGroup(group);
  RDA_RETURN_IF_ERROR(EnsureGroupRebuilt(group));
  const GroupState& state = directory_.Get(group);
  const uint32_t twin = state.dirty ? state.working_twin : state.valid_twin;
  PageImage expected(array_->page_size());
  const Layout& layout = array_->layout();
  ScratchPool::ScratchImage data = scratch_.Acquire();
  for (uint32_t i = 0; i < layout.data_pages_per_group(); ++i) {
    RDA_RETURN_IF_ERROR(ReadDataHealed(layout.PageAt(group, i), &*data));
    XorPage(&expected.payload, data->payload);
  }
  PageImage parity;
  RDA_RETURN_IF_ERROR(ReadParityHealed(group, twin, &parity));
  return expected.payload == parity.payload;
}

Status TwinParityManager::ReinitializeParityFromData(exec::WorkerPool* pool) {
  const Layout& layout = array_->layout();
  // Groups touch disjoint parity slots, directory entries and twin-shadow
  // elements, so the reinitialization fans out group-by-group with no shared
  // mutable state beyond the (thread-safe) scratch pool and disk mutexes.
  RDA_RETURN_IF_ERROR(exec::RunSharded(
      pool, array_->num_groups(), [&](uint64_t index) -> Status {
        const GroupId g = static_cast<GroupId>(index);
        ScratchPool::ScratchImage data = scratch_.Acquire();
        ScratchPool::ScratchImage parity = scratch_.Acquire();
        for (uint32_t i = 0; i < layout.data_pages_per_group(); ++i) {
          RDA_RETURN_IF_ERROR(array_->ReadData(layout.PageAt(g, i), &*data));
          XorPage(&parity->payload, data->payload);
        }
        parity->header.parity_state = ParityState::kCommitted;
        parity->header.timestamp = NextTimestamp();
        RDA_RETURN_IF_ERROR(array_->WriteParity(g, 0, *parity));
        SyncTwinShadow(g, 0, static_cast<uint8_t>(ParityState::kCommitted));
        if (layout.parity_copies() == 2) {
          // Reuse the data scratch as the zeroed obsolete image.
          std::fill(data->payload.begin(), data->payload.end(), 0);
          data->header = PageHeader{};
          data->header.parity_state = ParityState::kObsolete;
          RDA_RETURN_IF_ERROR(array_->WriteParity(g, 1, *data));
          SyncTwinShadow(g, 1, static_cast<uint8_t>(ParityState::kObsolete));
        }
        directory_.MarkClean(g, 0);
        return Status::Ok();
      }));
  directory_valid_.store(true, std::memory_order_release);
  return Status::Ok();
}

Status TwinParityManager::RecomputeCommittedTwin(GroupId group, uint32_t twin,
                                                 ParityTimestamp floor,
                                                 PageImage* out) {
  const Layout& layout = array_->layout();
  PageImage parity(array_->page_size());
  ScratchPool::ScratchImage data = scratch_.Acquire();
  for (uint32_t i = 0; i < layout.data_pages_per_group(); ++i) {
    // Plain (non-degraded) reads on purpose: reconstructing a missing data
    // page would need exactly the committed parity being recomputed here,
    // so an unreadable member means the group really is lost — propagate
    // the error and let the caller declare data loss.
    RDA_RETURN_IF_ERROR(array_->ReadData(layout.PageAt(group, i), &*data));
    XorPage(&parity.payload, data->payload);
  }
  parity.header.parity_state = ParityState::kCommitted;
  parity.header.timestamp = floor + 1;
  RDA_RETURN_IF_ERROR(array_->WriteParity(group, twin, parity));
  *out = std::move(parity);
  return Status::Ok();
}

Status TwinParityManager::RebuildDirectory() {
  ParityTimestamp max_seen = 0;
  for (GroupId g = 0; g < array_->num_groups(); ++g) {
    PageImage twins[2];
    const uint32_t copies = array_->layout().parity_copies();
    // The directory is not valid yet, so the healed-read machinery (which
    // consults it) cannot run; sector faults are handled inline instead.
    bool faulted[2] = {false, false};
    Status fault_cause[2];
    for (uint32_t t = 0; t < copies; ++t) {
      Status read = array_->ReadParity(g, t, &twins[t]);
      if (!read.ok()) {
        const DiskId disk = array_->layout().ParityLocation(g, t).disk;
        // A twin on a FAILED disk (recovering from a crash mid-rebuild with
        // the half-written medium re-failed) is handled like a faulted
        // sector — select from the survivor — except no error is charged:
        // the disk is already out.
        if (copies == 2 &&
            (HealableFault(read, disk) || array_->DiskFailed(disk))) {
          faulted[t] = true;
          fault_cause[t] = read;
          if (!array_->DiskFailed(disk)) {
            array_->RecordSectorError(disk);
          }
          continue;
        }
        return read;
      }
      max_seen = std::max(max_seen, twins[t].header.timestamp);
      SyncTwinShadow(g, t,
                     static_cast<uint8_t>(twins[t].header.parity_state));
    }
    if (copies == 1) {
      directory_.MarkClean(g, 0);
      continue;
    }
    if (faulted[0] && faulted[1]) {
      return Status::Corruption("both parity twins of group " +
                                std::to_string(g) + " unreadable");
    }
    if (faulted[0] || faulted[1]) {
      const uint32_t bad = faulted[0] ? 0 : 1;
      const uint32_t good = 1 - bad;
      if (twins[good].header.parity_state != ParityState::kCommitted) {
        // The survivor is not committed parity, so the unreadable twin held
        // the group's only committed copy. A single-disk failure leaves all
        // of the group's data pages readable (members sit on distinct
        // disks), so committed parity is still derivable: recompute it from
        // data into the surviving slot. Only when a data page is ALSO
        // unreadable (a second fault) is the group genuinely lost.
        const ParityTimestamp floor =
            std::max(max_seen, twins[good].header.timestamp);
        const Status recomputed =
            RecomputeCommittedTwin(g, good, floor, &twins[good]);
        if (!recomputed.ok()) {
          return Status::DataLoss("committed parity twin of group " +
                                  std::to_string(g) + " unreadable (" +
                                  recomputed.ToString() + ")");
        }
        max_seen = std::max(max_seen, twins[good].header.timestamp);
        SyncTwinShadow(g, good,
                       static_cast<uint8_t>(ParityState::kCommitted));
      }
      // The survivor is committed: treat the unreadable twin as obsolete
      // and reset it. If it was in fact a working twin, the in-flight
      // unlogged update it covered can no longer be undone in parity space
      // — log-based undo and the post-recovery scrub restore consistency.
      PageImage obsolete(array_->page_size());
      obsolete.header.parity_state = ParityState::kObsolete;
      if (array_->WriteParity(g, bad, obsolete).ok()) {
        NoteSectorRepair(fault_cause[bad], kInvalidPageId, g);
      }
      twins[bad] = std::move(obsolete);
      SyncTwinShadow(g, bad, static_cast<uint8_t>(ParityState::kObsolete));
    }
    // Current_Parity (paper Figure 7): the committed twin with the highest
    // timestamp is valid. A WORKING twin marks the group dirty; its header
    // tells which page and transaction it covers.
    uint32_t valid = 0;
    bool have_valid = false;
    for (uint32_t t = 0; t < 2; ++t) {
      const ParityState st = twins[t].header.parity_state;
      if (st != ParityState::kCommitted && st != ParityState::kObsolete) {
        continue;
      }
      if (!have_valid ||
          twins[t].header.timestamp > twins[valid].header.timestamp) {
        valid = t;
        have_valid = true;
      }
    }
    if (!have_valid) {
      return Status::Corruption("group " + std::to_string(g) +
                                " has no committed parity twin");
    }
    directory_.MarkClean(g, valid);
    for (uint32_t t = 0; t < 2; ++t) {
      if (twins[t].header.parity_state == ParityState::kWorking) {
        directory_.MarkDirty(g, twins[t].header.dirty_page,
                             twins[t].header.txn_id, t);
      }
    }
  }
  // Seed the timestamp counter from the highest twin-header timestamp seen,
  // never going backwards: handing out an already-used timestamp after a
  // restart would break Current_Parity selection (Figure 7) at the next
  // crash. max() also hardens the warm-restart case where the in-memory
  // counter is already ahead of anything on disk.
  timestamp_.store(
      std::max(timestamp_.load(std::memory_order_relaxed), max_seen),
      std::memory_order_relaxed);
  directory_valid_.store(true, std::memory_order_release);
  return Status::Ok();
}

Status TwinParityManager::CheckInvariants() {
  if (!directory_valid()) {
    return Status::FailedPrecondition("parity directory not available");
  }
  const Layout& layout = array_->layout();
  const uint32_t copies = layout.parity_copies();
  const bool rebuilding = OnlineRebuildActive();
  auto violation = [](GroupId g, const std::string& what) {
    return Status::Corruption("parity invariant violated in group " +
                              std::to_string(g) + ": " + what);
  };
  uint32_t pending_bits = 0;
  const ParityTimestamp counter = timestamp_.load(std::memory_order_relaxed);
  for (GroupId g = 0; g < array_->num_groups(); ++g) {
    auto latch = LockGroup(g);
    if (rebuilding && OnlineGroupPending(g)) {
      // The fresh medium under this group has not been reconstructed yet;
      // its twin headers are legitimately blank. Counted for conservation.
      ++pending_bits;
      continue;
    }
    const GroupState& state = directory_.Get(g);
    PageImage twins[2];
    bool readable[2] = {false, false};
    for (uint32_t t = 0; t < copies; ++t) {
      const DiskId disk = layout.ParityLocation(g, t).disk;
      if (array_->DiskFailed(disk)) {
        continue;  // Nothing to cross-check; degraded mode covers it.
      }
      Status read = array_->ReadParity(g, t, &twins[t]);
      if (!read.ok()) {
        if (HealableFault(read, disk)) {
          continue;  // A latent/corrupt sector, not an inconsistency.
        }
        return read;
      }
      readable[t] = true;
      const PageHeader& h = twins[t].header;
      if (h.timestamp > counter) {
        return violation(g, "twin " + std::to_string(t) + " timestamp " +
                                std::to_string(h.timestamp) +
                                " ahead of the in-memory counter " +
                                std::to_string(counter));
      }
      if (static_cast<uint8_t>(h.parity_state) != twin_shadow_[g][t]) {
        return violation(
            g, "twin " + std::to_string(t) + " on-disk state " +
                   std::to_string(static_cast<int>(h.parity_state)) +
                   " != volatile shadow " +
                   std::to_string(static_cast<int>(twin_shadow_[g][t])));
      }
    }
    if (state.dirty) {
      if (copies < 2) {
        return violation(g, "dirty with a single parity copy");
      }
      if (state.working_twin == state.valid_twin) {
        return violation(g, "working and valid twin coincide");
      }
      if (state.dirty_page == kInvalidPageId ||
          state.dirty_txn == kInvalidTxnId) {
        return violation(g, "dirty without a covered page/transaction");
      }
      if (readable[state.working_twin]) {
        const PageHeader& w = twins[state.working_twin].header;
        if (w.parity_state != ParityState::kWorking) {
          return violation(g, "working twin header not kWorking");
        }
        if (w.dirty_page != state.dirty_page || w.txn_id != state.dirty_txn) {
          return violation(g, "working twin header covers (page " +
                                  std::to_string(w.dirty_page) + ", txn " +
                                  std::to_string(w.txn_id) +
                                  ") but the directory says (page " +
                                  std::to_string(state.dirty_page) +
                                  ", txn " +
                                  std::to_string(state.dirty_txn) + ")");
        }
      }
      if (readable[state.valid_twin] &&
          twins[state.valid_twin].header.parity_state !=
              ParityState::kCommitted) {
        return violation(g, "dirty group's before-image twin not committed");
      }
    } else {
      if (readable[state.valid_twin] &&
          twins[state.valid_twin].header.parity_state !=
              ParityState::kCommitted) {
        return violation(g, "clean group's valid twin not committed");
      }
      if (copies == 2) {
        const uint32_t other = OtherTwin(state.valid_twin);
        if (readable[other]) {
          const PageHeader& o = twins[other].header;
          if (o.parity_state == ParityState::kWorking) {
            return violation(
                g, "directory says clean but a twin header is kWorking");
          }
          // Figure 7: when both twins are committed, the directory must
          // have selected the one with the winning timestamp.
          if (readable[state.valid_twin] &&
              o.parity_state == ParityState::kCommitted &&
              o.timestamp > twins[state.valid_twin].header.timestamp) {
            return violation(g, "valid twin lost Current_Parity selection");
          }
        }
      }
    }
  }
  if (rebuilding) {
    const uint32_t remaining =
        rebuild_groups_remaining_.load(std::memory_order_relaxed);
    const uint32_t total =
        rebuild_groups_total_.load(std::memory_order_relaxed);
    if (pending_bits != remaining || remaining > total ||
        total > array_->num_groups()) {
      return Status::Corruption(
          "online-rebuild bitmap conservation violated: " +
          std::to_string(pending_bits) + " pending bits, counter says " +
          std::to_string(remaining) + "/" + std::to_string(total));
    }
  }
  return Status::Ok();
}

void TwinParityManager::LoseVolatileState() {
  directory_ = DirtySet(array_->num_groups());
  directory_valid_.store(false, std::memory_order_release);
  timestamp_.store(0, std::memory_order_relaxed);
  // The progress bitmap is volatile too: an interrupted online rebuild is
  // detected after restart through the array's persistent rebuilding flag
  // (DiskArray::RebuildingDisks), not through this session state.
  rebuild_active_.store(false, std::memory_order_release);
  rebuild_disk_ = kInvalidDiskId;
  rebuild_groups_total_.store(0, std::memory_order_relaxed);
  rebuild_groups_remaining_.store(0, std::memory_order_relaxed);
}

}  // namespace rda
