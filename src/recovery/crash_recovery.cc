#include "recovery/crash_recovery.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/scoped.h"
#include "storage/data_page_meta.h"
#include "txn/record_page.h"
#include "wal/log_record.h"

namespace rda {

namespace {
bool RecoveryTraceEnabled() {
  static const bool enabled = std::getenv("RDA_RECOVERY_TRACE") != nullptr;
  return enabled;
}
}  // namespace

Status CrashRecovery::ConsumeFaultBudget() {
  if (!fault_armed_) {
    return Status::Ok();
  }
  // Concurrent recovery shards race for the remaining units, so each one is
  // claimed with CAS; whoever finds the budget empty trips the crash point.
  uint64_t budget = fault_budget_.load(std::memory_order_relaxed);
  while (budget > 0) {
    if (fault_budget_.compare_exchange_weak(budget, budget - 1,
                                            std::memory_order_relaxed)) {
      return Status::Ok();
    }
  }
  // Crash-point trip: capture the per-thread span/event timeline before
  // the recovery attempt unwinds.
  obs::TriggerFlight(obs::FlightOf(hub_),
                     "injected crash-point tripped during recovery");
  return Status::Aborted("injected crash during recovery");
}

Status CrashRecovery::RedoAfterImage(const LogRecord& record,
                                     uint64_t* applied, uint64_t* skipped) {
  PageImage current;
  RDA_RETURN_IF_ERROR(parity_->ReadDataHealed(record.page, &current));
  const DataPageMeta disk_meta = LoadDataMeta(current.payload);

  PageImage restored(0);
  DataPageMeta meta;
  if (!record.record_granular) {
    // Whole-page image: the captured payload embeds the pageLSN it
    // represents, so the skip test compares captured vs on-disk pageLSN —
    // a FORCEd page whose latest image already reached the disk is left
    // alone. Equal stamps do NOT imply equal content: the stamp is
    // next_lsn() at write time, and a buffered rewrite that follows an
    // unlogged steal (which appends nothing) carries the same stamp as the
    // stolen version already on disk. Break the tie on the data bytes.
    const DataPageMeta captured = LoadDataMeta(record.after);
    if (captured.page_lsn < disk_meta.page_lsn ||
        (captured.page_lsn == disk_meta.page_lsn &&
         std::equal(record.after.begin() + kDataRegionOffset,
                    record.after.end(),
                    current.payload.begin() + kDataRegionOffset))) {
      if (RecoveryTraceEnabled()) {
        std::fprintf(stderr,
                     "redo SKIP page=%llu lsn=%llu cap_lsn=%llu disk_lsn=%llu\n",
                     (unsigned long long)record.page,
                     (unsigned long long)record.lsn,
                     (unsigned long long)captured.page_lsn,
                     (unsigned long long)disk_meta.page_lsn);
      }
      ++*skipped;
      return Status::Ok();
    }
    restored.payload = record.after;
    meta = captured;
  } else {
    // Record-granular image: page-level LSN gating, replay in log order.
    // Equality does not prove the image landed: a page stamp is next_lsn()
    // at write time, and when the stamped write stays buffered past an
    // unlogged steal, the commit's after-image append consumes exactly that
    // LSN — same number, older bytes on disk. Skip on equality only when
    // the slot already holds the image (the idempotent re-recovery case).
    bool already_applied = false;
    if (record.lsn == disk_meta.page_lsn) {
      RecordPageView disk_view(&current.payload,
                               txn_manager_->config().record_size);
      std::vector<uint8_t> disk_slot;
      RDA_RETURN_IF_ERROR(disk_view.Read(record.slot, &disk_slot));
      already_applied = disk_slot == record.after;
    }
    if (record.lsn < disk_meta.page_lsn || already_applied) {
      if (RecoveryTraceEnabled()) {
        std::fprintf(stderr,
                     "redo SKIP page=%llu slot=%u lsn=%llu disk_lsn=%llu\n",
                     (unsigned long long)record.page, (unsigned)record.slot,
                     (unsigned long long)record.lsn,
                     (unsigned long long)disk_meta.page_lsn);
      }
      ++*skipped;
      return Status::Ok();
    }
    restored.payload = current.payload;
    RecordPageView view(&restored.payload,
                        txn_manager_->config().record_size);
    RDA_RETURN_IF_ERROR(view.Write(record.slot, record.after));
    meta = LoadDataMeta(restored.payload);
    meta.page_lsn = record.lsn;
  }
  meta.txn_id = kInvalidTxnId;
  meta.chain_prev = kInvalidPageId;
  StoreDataMeta(meta, &restored.payload);

  RDA_RETURN_IF_ERROR(parity_->Propagate(record.page, kInvalidTxnId,
                                         PropagationKind::kPlain,
                                         &current.payload, restored));
  if (RecoveryTraceEnabled()) {
    std::fprintf(stderr, "redo APPLY page=%llu slot=%u lsn=%llu granular=%d\n",
                 (unsigned long long)record.page, (unsigned)record.slot,
                 (unsigned long long)record.lsn, (int)record.record_granular);
  }
  ++*applied;
  return Status::Ok();
}

uint64_t CrashRecovery::TransfersNow() const {
  return parity_->array()->counters().total() + log_->counters().total();
}

Result<CrashRecoveryReport> CrashRecovery::Recover() {
  CrashRecoveryReport report;
  const auto transfers_now = [this] { return TransfersNow(); };

  // Phase 1: Current_Parity — rebuild the volatile parity directory.
  {
    obs::ScopedPhase phase(hub_, obs::RecoveryPhase::kDirectoryRebuild,
                           transfers_now, &report.phases);
    RDA_RETURN_IF_ERROR(parity_->RebuildDirectory());
  }

  // Phase 2: analysis — one forward scan that classifies transactions AND
  // pre-buckets the after-images for the sharded REDO of phase 5. Shard =
  // page id mod shard count, so every image of one page lands on one shard
  // and (the scan being forward) stays in LSN order within it. One shard
  // reproduces the serial replay exactly.
  const uint32_t redo_shard_count =
      pool_ != nullptr ? std::max<uint32_t>(pool_->width(), 1) : 1;
  std::vector<LogRecord> records;
  std::vector<std::vector<uint32_t>> redo_shards(redo_shard_count);
  std::unordered_set<TxnId> winners;
  std::unordered_set<TxnId> losers;
  // Per transaction, the LSN at which each page's unlogged window opened
  // (from its kChainHead marker). Consulted by the undo phases below.
  std::unordered_map<TxnId, std::unordered_map<PageId, Lsn>> window_start;
  TxnId max_txn = 0;
  {
    obs::ScopedPhase phase(hub_, obs::RecoveryPhase::kAnalysis, transfers_now,
                           &report.phases);
    RDA_RETURN_IF_ERROR(log_->Scan(0, &records));
    std::unordered_set<TxnId> seen;
    std::unordered_set<TxnId> finished;  // Committed or abort-complete.
    // Pre-size the transaction sets from the latest checkpoint's active-txn
    // list plus the rebuilt dirty set, instead of rehashing as the scan
    // grows them record by record.
    size_t checkpoint_active = 0;
    for (auto it = records.rbegin(); it != records.rend(); ++it) {
      if (it->type == LogRecordType::kCheckpoint) {
        checkpoint_active = it->active_txns.size();
        break;
      }
    }
    const size_t txn_hint =
        checkpoint_active + parity_->directory().DirtyCount() + 16;
    seen.reserve(txn_hint);
    finished.reserve(txn_hint);
    winners.reserve(txn_hint);
    losers.reserve(txn_hint);
    for (auto& shard : redo_shards) {
      shard.reserve(records.size() / redo_shard_count + 1);
    }
    for (uint32_t index = 0; index < records.size(); ++index) {
      const LogRecord& record = records[index];
      if (record.txn != kInvalidTxnId) {
        seen.insert(record.txn);
        max_txn = std::max(max_txn, record.txn);
      }
      switch (record.type) {
        case LogRecordType::kCommit:
          winners.insert(record.txn);
          finished.insert(record.txn);
          break;
        case LogRecordType::kAbortComplete:
          finished.insert(record.txn);
          break;
        case LogRecordType::kAfterImage:
          redo_shards[record.page % redo_shard_count].push_back(index);
          break;
        case LogRecordType::kChainHead:
          // Unlogged-window open marker: one per group dirtying. Its LSN
          // splits the transaction's before-images of that page into
          // pre-window (deferred past the parity undo, phase 4d) and
          // in-window (phase 4b). Later markers overwrite earlier ones —
          // only the window still open at the crash matters.
          window_start[record.txn][record.chain_head] = record.lsn;
          break;
        default:
          break;
      }
    }
    for (const TxnId txn : seen) {
      if (!finished.contains(txn)) {
        losers.insert(txn);
      }
    }
    // A dirty group whose owner never reached the log (BOT flushed with the
    // first propagation, so this is defensive) is a loser as well.
    for (const GroupId group : parity_->directory().AllDirtyGroups()) {
      const GroupState& state = parity_->directory().Get(group);
      if (!winners.contains(state.dirty_txn)) {
        losers.insert(state.dirty_txn);
      }
    }

    report.winners.assign(winners.begin(), winners.end());
    std::sort(report.winners.begin(), report.winners.end());
    report.losers.assign(losers.begin(), losers.end());
    std::sort(report.losers.begin(), report.losers.end());
  }

  // Phase 3: roll forward twin finalization for winners (crash landed
  // between the commit record and FinalizeCommit).
  {
    obs::ScopedPhase phase(hub_, obs::RecoveryPhase::kRollForward,
                           transfers_now, &report.phases);
    for (const GroupId group : parity_->directory().AllDirtyGroups()) {
      const GroupState& state = parity_->directory().Get(group);
      if (winners.contains(state.dirty_txn)) {
        RDA_RETURN_IF_ERROR(ConsumeFaultBudget());
        RDA_RETURN_IF_ERROR(parity_->FinalizeCommit(group, state.dirty_txn));
        ++report.groups_finalized;
      }
    }
  }

  // Phase 4a: audit-walk the TWIST chains of losers (the paper's mechanism
  // for identifying pages propagated without UNDO logging). The chain
  // heads are the dirty pages recorded in the rebuilt parity directory;
  // each page's embedded chain_prev link leads to the transaction's
  // previously unlogged page. The directory is authoritative — the walk
  // cross-checks it and feeds the report.
  {
    obs::ScopedPhase phase(hub_, obs::RecoveryPhase::kChainAudit,
                           transfers_now, &report.phases);
    std::unordered_set<PageId> visited;
    for (const GroupId group : parity_->directory().AllDirtyGroups()) {
      const GroupState& state = parity_->directory().Get(group);
      if (!losers.contains(state.dirty_txn)) {
        continue;
      }
      PageId cursor = state.dirty_page;
      while (cursor != kInvalidPageId && visited.insert(cursor).second) {
        PageImage data;
        RDA_RETURN_IF_ERROR(parity_->ReadDataHealed(cursor, &data));
        const DataPageMeta meta = LoadDataMeta(data.payload);
        if (meta.txn_id != state.dirty_txn) {
          break;  // Chain tail (or a page already undone).
        }
        ++report.chain_pages_walked;
        cursor = meta.chain_prev;
      }
    }
  }

  // Phases 4b-4d: loser undo, reverse-chronological PER PAGE. A
  // before-image from a steal INSIDE a group's unlogged window (LSN after
  // its kChainHead marker) can contain the loser's own bytes from the
  // unlogged steal; restoring it first re-creates exactly the state the
  // parity undo then cancels, so those go in 4b, before the parity undo
  // (DESIGN.md 4.3). A before-image logged BEFORE the window opened must
  // wait until 4d: applying it first would change the data page out from
  // under the XOR cancellation and the parity undo would "restore" garbage
  // (base xor new xor before).
  const auto apply_before_image = [&](const LogRecord& record) -> Status {
    if (!record.record_granular) {
      return parity_->ApplyLoggedUndo(record.page, record.before);
    }
    PageImage current;
    RDA_RETURN_IF_ERROR(parity_->ReadDataHealed(record.page, &current));
    std::vector<uint8_t> payload = std::move(current.payload);
    RecordPageView view(&payload, txn_manager_->config().record_size);
    RDA_RETURN_IF_ERROR(view.Write(record.slot, record.before));
    DataPageMeta meta = LoadDataMeta(payload);
    const GroupState& undo_group = parity_->directory().Get(
        parity_->array()->layout().GroupOf(record.page));
    if (!(undo_group.dirty && undo_group.dirty_page == record.page)) {
      // Keep the covering transaction's stamp so the parity undo of
      // phase 4c still recognizes its work.
      meta.txn_id = kInvalidTxnId;
    }
    meta.page_lsn = 0;  // Mixed state: let REDO replay decide per record.
    StoreDataMeta(meta, &payload);
    return parity_->ApplyLoggedUndo(record.page, payload);
  };
  std::vector<const LogRecord*> pre_window;
  {
    obs::ScopedPhase phase(hub_, obs::RecoveryPhase::kLoggedUndo,
                           transfers_now, &report.phases);
    for (auto it = records.rbegin(); it != records.rend(); ++it) {
      const LogRecord& record = *it;
      if (record.type != LogRecordType::kBeforeImage ||
          !losers.contains(record.txn)) {
        continue;
      }
      const GroupState& state = parity_->directory().Get(
          parity_->array()->layout().GroupOf(record.page));
      if (state.dirty && state.dirty_txn == record.txn &&
          state.dirty_page == record.page) {
        auto txn_windows = window_start.find(record.txn);
        if (txn_windows != window_start.end()) {
          auto window = txn_windows->second.find(record.page);
          if (window != txn_windows->second.end() &&
              record.lsn < window->second) {
            pre_window.push_back(&record);  // Kept in reverse LSN order.
            continue;
          }
        }
      }
      RDA_RETURN_IF_ERROR(ConsumeFaultBudget());
      if (RecoveryTraceEnabled()) {
        std::fprintf(stderr, "undo 4b page=%llu slot=%u lsn=%llu txn=%llu\n",
                     (unsigned long long)record.page, (unsigned)record.slot,
                     (unsigned long long)record.lsn,
                     (unsigned long long)record.txn);
      }
      RDA_RETURN_IF_ERROR(apply_before_image(record));
      ++report.logged_undos;
    }
  }

  // Phase 4c: parity-undo every dirty group owned by a loser. Each undo
  // touches only its own group (directory entry, twins, data page) under
  // that group's latch, so the dirty groups fan out across the pool.
  {
    obs::ScopedPhase phase(hub_, obs::RecoveryPhase::kParityUndo,
                           transfers_now, &report.phases);
    std::vector<std::pair<GroupId, TxnId>> undo_groups;
    for (const GroupId group : parity_->directory().AllDirtyGroups()) {
      const GroupState& state = parity_->directory().Get(group);
      if (losers.contains(state.dirty_txn)) {
        undo_groups.emplace_back(group, state.dirty_txn);
      }
    }
    RDA_RETURN_IF_ERROR(exec::RunSharded(
        pool_, undo_groups.size(), [&](uint64_t i) -> Status {
          RDA_RETURN_IF_ERROR(ConsumeFaultBudget());
          if (RecoveryTraceEnabled()) {
            std::fprintf(stderr, "undo 4c group=%llu txn=%llu\n",
                         (unsigned long long)undo_groups[i].first,
                         (unsigned long long)undo_groups[i].second);
          }
          return parity_
              ->UndoUnloggedUpdate(undo_groups[i].first, undo_groups[i].second)
              .status();
        }));
    report.parity_undos += undo_groups.size();

    // Phase 4d: pre-window before-images, still in reverse LSN order. The
    // parity undo above rewound their pages to each window's base image, so
    // these now apply to the state they were captured against.
    for (const LogRecord* record : pre_window) {
      RDA_RETURN_IF_ERROR(ConsumeFaultBudget());
      RDA_RETURN_IF_ERROR(apply_before_image(*record));
      ++report.logged_undos;
    }
  }

  // Phase 5: REDO committed after-images. Analysis pre-bucketed them so
  // each shard replays a disjoint page set in LSN order; the pageLSN check
  // skips work already on disk. Shards tally separately and the totals are
  // summed in shard order, so the report is deterministic.
  {
    obs::ScopedPhase phase(hub_, obs::RecoveryPhase::kRedo, transfers_now,
                           &report.phases);
    std::vector<uint64_t> applied(redo_shards.size(), 0);
    std::vector<uint64_t> skipped(redo_shards.size(), 0);
    RDA_RETURN_IF_ERROR(exec::RunSharded(
        pool_, redo_shards.size(), [&](uint64_t shard) -> Status {
          for (const uint32_t index : redo_shards[shard]) {
            const LogRecord& record = records[index];
            if (!winners.contains(record.txn)) {
              continue;
            }
            RDA_RETURN_IF_ERROR(ConsumeFaultBudget());
            RDA_RETURN_IF_ERROR(
                RedoAfterImage(record, &applied[shard], &skipped[shard]));
          }
          return Status::Ok();
        }));
    for (size_t shard = 0; shard < redo_shards.size(); ++shard) {
      report.redo_applied += applied[shard];
      report.redo_skipped += skipped[shard];
    }
  }

  // Phase 6: mark losers resolved so a crash during the next epoch does not
  // re-undo them.
  {
    obs::ScopedPhase phase(hub_, obs::RecoveryPhase::kLoserResolution,
                           transfers_now, &report.phases);
    for (const TxnId txn : report.losers) {
      LogRecord done;
      done.type = LogRecordType::kAbortComplete;
      done.txn = txn;
      RDA_RETURN_IF_ERROR(log_->Append(std::move(done)).status());
    }
    RDA_RETURN_IF_ERROR(log_->Flush());
  }

  txn_manager_->BumpNextTxnId(max_txn + 1);
  return report;
}

}  // namespace rda
