#ifndef RDA_RECOVERY_MEDIA_RECOVERY_H_
#define RDA_RECOVERY_MEDIA_RECOVERY_H_

#include <vector>

#include <atomic>

#include "common/status.h"
#include "common/types.h"
#include "exec/token_bucket.h"
#include "exec/worker_pool.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "parity/twin_parity_manager.h"

namespace rda {

// What a disk rebuild did.
struct MediaRecoveryReport {
  DiskId disk = kInvalidDiskId;
  uint32_t data_pages_rebuilt = 0;
  uint32_t parity_pages_rebuilt = 0;
  uint32_t obsolete_twins_reset = 0;
  // Transactions whose in-flight unlogged update lost its undo coverage
  // because the failed disk held the OLD (valid) parity twin of a dirty
  // group. Their data survives, but they can no longer be rolled back —
  // the documented limit of the twin-page scheme under a worst-case single
  // disk failure. The caller must resolve them (force-commit or accept
  // kDataLoss on abort).
  std::vector<TxnId> undo_coverage_lost;
  // Cost of the rebuild as a single kMediaRebuild phase (page transfers +
  // wall clock). Always filled, whether or not observability is attached.
  std::vector<obs::PhaseCost> phases;
  // --- online-rebuild extras (zero for the quiescent path) ---
  // Groups the background sweep reconstructed itself.
  uint32_t groups_background = 0;
  // Groups foreground traffic had already repaired on demand / promoted by
  // the time the sweep reached them (totals over the whole session).
  uint64_t groups_on_demand = 0;
  uint64_t write_promotions = 0;
  // False when the sweep returned early (cancelled) with groups still
  // pending; the session stays active and a later sweep resumes it.
  bool completed = true;
};

// Knobs of the online (non-quiescent) rebuild sweep. All optional; null
// means unlimited rate / never cancelled / never paused.
struct OnlineRebuildOptions {
  // Token bucket charged data_pages_per_group + 1 tokens per group band, so
  // rebuild I/O can be capped in pages/sec without starving foreground
  // commits. Not owned.
  exec::TokenBucket* throttle = nullptr;
  // Checked between groups; true stops the sweep (report.completed=false).
  const std::atomic<bool>* cancel = nullptr;
  // While true the sweep naps between groups (cancel still honoured).
  const std::atomic<bool>* pause = nullptr;
};

// Media recovery (the classic redundant-array pay-off the paper builds on):
// rebuilds a single failed disk from the surviving members of each parity
// group. Data pages are recovered as XOR(other data pages, consistent
// parity); lost parity twins are recomputed from data.
class MediaRecovery {
 public:
  // With a pool, the rebuild is striped: each worker owns a contiguous
  // band of parity groups (WorkerPool's block partition), and groups are
  // rebuilt independently under their group latches through ScratchPool
  // buffers — no shared mutable state per band. A null pool (the default)
  // keeps the serial ascending-group loop.
  explicit MediaRecovery(TwinParityManager* parity,
                         exec::WorkerPool* pool = nullptr)
      : parity_(parity), pool_(pool) {}

  MediaRecovery(const MediaRecovery&) = delete;
  MediaRecovery& operator=(const MediaRecovery&) = delete;

  // Replaces `disk` with a fresh medium and reconstructs every page it
  // held. Requires that no other disk is failed (single-failure model).
  Result<MediaRecoveryReport> RebuildDisk(DiskId disk);

  // Online rebuild: begins (or resumes) a TwinParityManager online-rebuild
  // session for `disk` and sweeps the pending groups serially while
  // foreground transactions keep committing — every group is reconstructed
  // under its own latch, and foreground accesses repair not-yet-swept
  // groups on demand. Ends the session when the bitmap drains; a cancel
  // leaves it active for a later resume (report.completed = false).
  Result<MediaRecoveryReport> RebuildDiskOnline(
      DiskId disk, const OnlineRebuildOptions& options = {});

  // Hooks rebuilds into the observability hub (kMediaRebuild phase cost
  // and kRebuildProgress trace events). Null detaches.
  void AttachObs(obs::ObsHub* hub) { hub_ = hub; }

 private:
  TwinParityManager* parity_;
  exec::WorkerPool* pool_ = nullptr;
  obs::ObsHub* hub_ = nullptr;
};

}  // namespace rda

#endif  // RDA_RECOVERY_MEDIA_RECOVERY_H_
