#ifndef RDA_RECOVERY_ARCHIVE_H_
#define RDA_RECOVERY_ARCHIVE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "exec/worker_pool.h"
#include "obs/obs.h"
#include "parity/twin_parity_manager.h"
#include "recovery/crash_recovery.h"
#include "txn/transaction_manager.h"
#include "wal/log_manager.h"

namespace rda {

// The traditional media-recovery substrate the paper contrasts redundant
// arrays with (Section 1: "media recovery is performed ... by periodically
// generating archive copies of the database and ... a redo log file").
// The array's parity survives any single-disk failure on its own; the
// archive covers the catastrophic case — more than one disk lost — and
// bounds the log: after a quiescent archive, the stable-log prefix can be
// truncated.
class ArchiveManager {
 public:
  // With a pool, the restore's page rewrite, parity reinitialization and
  // nested crash recovery all fan out over it; null keeps them serial.
  ArchiveManager(TransactionManager* txn_manager, TwinParityManager* parity,
                 LogManager* log, exec::WorkerPool* pool = nullptr)
      : txn_manager_(txn_manager), parity_(parity), log_(log), pool_(pool) {}

  ArchiveManager(const ArchiveManager&) = delete;
  ArchiveManager& operator=(const ArchiveManager&) = delete;

  // Takes a quiescent archive: requires no active transactions, propagates
  // every dirty buffer frame, snapshots all data-page payloads and the log
  // position; optionally truncates the stable log up to that position.
  // The snapshot read is I/O-accounted like any other scan of the array.
  Status TakeArchive(bool truncate_log);

  bool HasArchive() const { return archive_lsn_ != kInvalidLsn; }
  Lsn archive_lsn() const { return archive_lsn_; }
  uint64_t pages_archived() const {
    return static_cast<uint64_t>(snapshot_.size());
  }

  // Catastrophic restore: replaces any failed disks, rewrites every data
  // page from the snapshot, recomputes all parity from the restored data,
  // and re-runs restart recovery to REDO the work committed since the
  // archive. In-flight work since the archive is lost per the usual
  // winner/loser rules.
  Result<CrashRecoveryReport> RestoreFromArchive();

  // Hooks archiving into the observability hub: `recovery.archives_taken`
  // counter, and restores report kArchiveRestore/kParityReinit phase costs
  // ahead of the nested crash-recovery phases. Null detaches.
  void AttachObs(obs::ObsHub* hub);

 private:
  TransactionManager* txn_manager_;
  TwinParityManager* parity_;
  LogManager* log_;
  exec::WorkerPool* pool_ = nullptr;
  std::vector<std::vector<uint8_t>> snapshot_;
  Lsn archive_lsn_ = kInvalidLsn;
  obs::ObsHub* hub_ = nullptr;
  obs::Counter* archives_counter_ = nullptr;
};

}  // namespace rda

#endif  // RDA_RECOVERY_ARCHIVE_H_
