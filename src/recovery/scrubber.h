#ifndef RDA_RECOVERY_SCRUBBER_H_
#define RDA_RECOVERY_SCRUBBER_H_

#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "exec/token_bucket.h"
#include "exec/worker_pool.h"
#include "parity/twin_parity_manager.h"

namespace rda {

// Outcome of one scrub pass.
struct ScrubReport {
  uint32_t groups_checked = 0;
  uint32_t groups_skipped_dirty = 0;  // Left alone: covered by a live txn.
  std::vector<GroupId> repaired;      // Parity recomputed after a mismatch.
  // Faulty sectors (latent errors, checksum mismatches — data and parity
  // pages alike) healed in place by the verify pass's repair-on-read.
  uint64_t sectors_repaired = 0;
};

// Background parity scrubber — the paper's "background process ... that
// runs during the idle periods of the system" (Section 4.2). Walks every
// parity group, verifies XOR(data) against the consistent twin and
// recomputes the parity of clean groups that fail the check (silent
// corruption, firmware bugs, torn maintenance). Dirty groups are reported
// but never touched: their working parity is live undo state.
class ParityScrubber {
 public:
  // With a pool, the verify pass scans the array in contiguous bands of
  // groups (one per worker), each verified/repaired under its group latch;
  // per-group verdicts are merged in ascending group order, so the report
  // is identical at every thread count. Null pool = the serial loop.
  explicit ParityScrubber(TwinParityManager* parity,
                          exec::WorkerPool* pool = nullptr)
      : parity_(parity), pool_(pool) {}

  ParityScrubber(const ParityScrubber&) = delete;
  ParityScrubber& operator=(const ParityScrubber&) = delete;

  // Optional rate limit for background scrubs: charged N+1 tokens (one
  // group's pages) per group verified. Forces the serial scan (a shared
  // bucket would serialize the bands anyway). Not owned; null = unlimited.
  void SetThrottle(exec::TokenBucket* throttle) { throttle_ = throttle; }

  Result<ScrubReport> ScrubAll();

 private:
  TwinParityManager* parity_;
  exec::WorkerPool* pool_ = nullptr;
  exec::TokenBucket* throttle_ = nullptr;
};

}  // namespace rda

#endif  // RDA_RECOVERY_SCRUBBER_H_
