#include "recovery/checkpointer.h"

#include <utility>

#include "wal/log_record.h"

namespace rda {

Status Checkpointer::TakeCheckpoint() {
  RDA_RETURN_IF_ERROR(txn_manager_->pool()->PropagateAllDirty());
  LogRecord record;
  record.type = LogRecordType::kCheckpoint;
  record.active_txns = txn_manager_->ActiveTxns();
  RDA_ASSIGN_OR_RETURN(const Lsn lsn, log_->Append(std::move(record)));
  RDA_RETURN_IF_ERROR(log_->Flush());
  last_checkpoint_lsn_ = lsn;
  ++checkpoints_taken_;
  return Status::Ok();
}

}  // namespace rda
