#include "recovery/checkpointer.h"

#include <utility>

#include "wal/log_record.h"

namespace rda {

void Checkpointer::AttachObs(obs::ObsHub* hub) {
  trace_ = obs::TraceOf(hub);
  checkpoints_counter_ = obs::GetCounter(hub, "recovery.checkpoints");
}

Status Checkpointer::TakeCheckpoint() {
  RDA_RETURN_IF_ERROR(txn_manager_->pool()->PropagateAllDirty());
  LogRecord record;
  record.type = LogRecordType::kCheckpoint;
  record.active_txns = txn_manager_->ActiveTxns();
  const size_t active = record.active_txns.size();
  RDA_ASSIGN_OR_RETURN(const Lsn lsn, log_->Append(std::move(record)));
  RDA_RETURN_IF_ERROR(log_->Flush());
  last_checkpoint_lsn_ = lsn;
  ++checkpoints_taken_;
  obs::Inc(checkpoints_counter_);
  if (trace_ != nullptr) {
    obs::TraceEvent event;
    event.subsystem = obs::Subsystem::kRecovery;
    event.kind = obs::EventKind::kCheckpoint;
    event.detail = static_cast<int64_t>(active);
    event.value = static_cast<int64_t>(lsn);
    obs::Emit(trace_, event);
  }
  return Status::Ok();
}

}  // namespace rda
