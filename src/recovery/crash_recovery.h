#ifndef RDA_RECOVERY_CRASH_RECOVERY_H_
#define RDA_RECOVERY_CRASH_RECOVERY_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "exec/worker_pool.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "parity/twin_parity_manager.h"
#include "txn/transaction_manager.h"
#include "wal/log_manager.h"

namespace rda {

// What crash recovery did — surfaced so tests, examples and benches can
// assert the paper's claims (how much was undone via parity vs via the log).
struct CrashRecoveryReport {
  std::vector<TxnId> winners;
  std::vector<TxnId> losers;
  uint64_t groups_finalized = 0;   // Winner dirty groups rolled forward.
  uint64_t parity_undos = 0;       // Loser pages undone from twin parity.
  uint64_t logged_undos = 0;       // Loser images undone from the log.
  uint64_t redo_applied = 0;       // Committed after-images re-applied.
  uint64_t redo_skipped = 0;       // Skipped by the pageLSN check.
  uint64_t chain_pages_walked = 0; // TWIST chain links traversed (audit).
  // Per-phase cost breakdown (page transfers + wall clock), in execution
  // order. Always filled, whether or not observability is attached.
  std::vector<obs::PhaseCost> phases;
};

// System-failure recovery (paper Section 4.3), to be run against a
// TransactionManager whose volatile state was already dropped:
//
//  1. Rebuild the parity directory from the twin page headers
//     (Current_Parity, Figure 7; the S/N term of c'_s).
//  2. Analysis: scan the log; BOT without Commit/AbortComplete = loser.
//  3. Roll FORWARD: finalize dirty groups owned by winners (crash fell
//     between the commit record and twin finalization).
//  4. UNDO losers: parity-undo each dirty group owned by a loser (walking
//     the TWIST chain for audit), then re-apply logged before-images in
//     reverse LSN order.
//  5. REDO winners: re-apply committed after-images in LSN order wherever
//     the on-disk pageLSN shows them missing.
//  6. Log AbortComplete for every loser and flush.
//
// Idempotent: crashing during recovery and re-running it converges to the
// same committed state.
class CrashRecovery {
 public:
  CrashRecovery(TransactionManager* txn_manager, TwinParityManager* parity,
                LogManager* log)
      : txn_manager_(txn_manager), parity_(parity), log_(log) {}

  CrashRecovery(const CrashRecovery&) = delete;
  CrashRecovery& operator=(const CrashRecovery&) = delete;

  Result<CrashRecoveryReport> Recover();

  // Hooks recovery into the observability hub (`recovery.phase.*` counters
  // and kPhaseBegin/kPhaseEnd trace events). Null detaches.
  void AttachObs(obs::ObsHub* hub) { hub_ = hub; }

  // Fans the REDO and parity-UNDO phases out over `pool` (DESIGN.md §13:
  // REDO is sharded by page id so each page's after-images replay in LSN
  // order on one shard; parity undo runs per dirty group under the group
  // latches). Null (the default) keeps every phase on the serial path.
  void SetWorkerPool(exec::WorkerPool* pool) { pool_ = pool; }

  // Robustness hook: make Recover() fail with kAborted after `actions`
  // mutating recovery steps (finalizations, undos, redo applications),
  // simulating a crash in the middle of recovery.
  void InjectFaultAfterActions(uint64_t actions) {
    fault_armed_ = true;
    fault_budget_ = actions;
  }

 private:
  // Consumes one unit of the fault budget; fails when it runs out. Safe to
  // call from concurrent recovery shards (the budget is claimed with CAS).
  Status ConsumeFaultBudget();

  bool fault_armed_ = false;
  std::atomic<uint64_t> fault_budget_{0};

  // Applies (or LSN-skips) one committed after-image; tallies into the
  // caller's per-shard counters.
  Status RedoAfterImage(const LogRecord& record, uint64_t* applied,
                        uint64_t* skipped);

  // Array + log transfers so far (phase deltas are charged per phase).
  uint64_t TransfersNow() const;

  TransactionManager* txn_manager_;
  TwinParityManager* parity_;
  LogManager* log_;
  obs::ObsHub* hub_ = nullptr;
  exec::WorkerPool* pool_ = nullptr;
};

}  // namespace rda

#endif  // RDA_RECOVERY_CRASH_RECOVERY_H_
