#include "recovery/media_recovery.h"

#include <algorithm>

namespace rda {

Result<MediaRecoveryReport> MediaRecovery::RebuildDisk(DiskId disk) {
  DiskArray* array = parity_->array();
  if (!array->DiskFailed(disk)) {
    return Status::InvalidArgument("disk is not failed");
  }
  if (array->NumFailedDisks() != 1) {
    return Status::FailedPrecondition(
        "single-failure model: more than one disk is down");
  }

  MediaRecoveryReport report;
  report.disk = disk;
  RDA_RETURN_IF_ERROR(array->ReplaceDisk(disk));

  for (GroupId group = 0; group < array->num_groups(); ++group) {
    RDA_ASSIGN_OR_RETURN(TwinParityManager::GroupRebuildOutcome outcome,
                         parity_->RebuildGroupMember(group, disk));
    report.data_pages_rebuilt += outcome.data_rebuilt;
    report.parity_pages_rebuilt += outcome.parity_rebuilt;
    report.obsolete_twins_reset += outcome.obsolete_reset;
    if (outcome.undo_lost) {
      report.undo_coverage_lost.push_back(outcome.lost_txn);
    }
  }
  std::sort(report.undo_coverage_lost.begin(),
            report.undo_coverage_lost.end());
  report.undo_coverage_lost.erase(
      std::unique(report.undo_coverage_lost.begin(),
                  report.undo_coverage_lost.end()),
      report.undo_coverage_lost.end());
  return report;
}

}  // namespace rda
