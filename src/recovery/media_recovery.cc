#include "recovery/media_recovery.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <utility>
#include <vector>

#include "obs/scoped.h"

namespace rda {

Result<MediaRecoveryReport> MediaRecovery::RebuildDisk(DiskId disk) {
  DiskArray* array = parity_->array();
  if (!array->DiskFailed(disk)) {
    return Status::InvalidArgument("disk is not failed");
  }
  if (array->NumFailedDisks() != 1) {
    return Status::FailedPrecondition(
        "single-failure model: more than one disk is down");
  }

  MediaRecoveryReport report;
  report.disk = disk;
  obs::ScopedPhase phase(
      hub_, obs::RecoveryPhase::kMediaRebuild,
      [array] { return array->counters().total(); }, &report.phases);
  RDA_RETURN_IF_ERROR(array->ReplaceDisk(disk));

  obs::TraceBuffer* trace = obs::TraceOf(hub_);
  const GroupId num_groups = array->num_groups();
  // Striped rebuild: groups fan out over the pool in contiguous bands, each
  // rebuilt independently under its group latch. Per-group outcomes land in
  // disjoint slots and are aggregated afterwards in ascending group order,
  // so the report (and the undo_coverage_lost list) is identical at every
  // thread count; only `progress` (pages rebuilt so far, for the trace
  // feed) is a racy running total.
  std::vector<TwinParityManager::GroupRebuildOutcome> outcomes(num_groups);
  std::atomic<uint64_t> progress{0};
  RDA_RETURN_IF_ERROR(exec::RunSharded(
      pool_, num_groups, [&](uint64_t index) -> Status {
        const GroupId group = static_cast<GroupId>(index);
        auto outcome_or = parity_->RebuildGroupMember(group, disk);
        if (!outcome_or.ok()) {
          // A second disk failing while this one is mid-rebuild exceeds the
          // single-parity redundancy: the remaining groups cannot be
          // reconstructed. Report that as the typed data loss it is, rather
          // than a generic I/O error (the caller decides whether an archive
          // restore can still save the day).
          if (!outcome_or.status().IsDataLoss() &&
              array->NumFailedDisks() > 0) {
            return Status::DataLoss(
                "second disk failure during rebuild of disk " +
                std::to_string(disk) + " at group " + std::to_string(group) +
                ": " + outcome_or.status().message());
          }
          return outcome_or.status();
        }
        outcomes[group] = std::move(outcome_or).value();
        const TwinParityManager::GroupRebuildOutcome& outcome =
            outcomes[group];
        const uint64_t pages = outcome.data_rebuilt + outcome.parity_rebuilt;
        if (trace != nullptr && pages != 0) {
          obs::TraceEvent event;
          event.subsystem = obs::Subsystem::kRecovery;
          event.kind = obs::EventKind::kRebuildProgress;
          event.group = group;
          event.detail =
              progress.fetch_add(pages, std::memory_order_relaxed) + pages;
          event.value = disk;
          obs::Emit(trace, event);
        }
        return Status::Ok();
      }));
  for (GroupId group = 0; group < num_groups; ++group) {
    const TwinParityManager::GroupRebuildOutcome& outcome = outcomes[group];
    report.data_pages_rebuilt += outcome.data_rebuilt;
    report.parity_pages_rebuilt += outcome.parity_rebuilt;
    report.obsolete_twins_reset += outcome.obsolete_reset;
    if (outcome.undo_lost) {
      report.undo_coverage_lost.push_back(outcome.lost_txn);
    }
  }
  std::sort(report.undo_coverage_lost.begin(),
            report.undo_coverage_lost.end());
  report.undo_coverage_lost.erase(
      std::unique(report.undo_coverage_lost.begin(),
                  report.undo_coverage_lost.end()),
      report.undo_coverage_lost.end());
  return report;
}

}  // namespace rda
