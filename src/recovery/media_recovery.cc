#include "recovery/media_recovery.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/scoped.h"

namespace rda {

Result<MediaRecoveryReport> MediaRecovery::RebuildDisk(DiskId disk) {
  DiskArray* array = parity_->array();
  if (!array->DiskFailed(disk)) {
    return Status::InvalidArgument("disk is not failed");
  }
  if (array->NumFailedDisks() != 1) {
    return Status::FailedPrecondition(
        "single-failure model: more than one disk is down");
  }

  MediaRecoveryReport report;
  report.disk = disk;
  obs::ScopedPhase phase(
      hub_, obs::RecoveryPhase::kMediaRebuild,
      [array] { return array->counters().total(); }, &report.phases);
  // Flag the disk as rebuilding across the replace->reconstruct window: the
  // fresh medium reads stale zeros successfully, so if this quiescent
  // rebuild is interrupted (crash, second failure) the flag tells recovery
  // the medium cannot be trusted yet.
  array->SetRebuilding(disk, true);
  RDA_RETURN_IF_ERROR(array->ReplaceDisk(disk));

  obs::TraceBuffer* trace = obs::TraceOf(hub_);
  const GroupId num_groups = array->num_groups();
  // Striped rebuild: groups fan out over the pool in contiguous bands, each
  // rebuilt independently under its group latch. Per-group outcomes land in
  // disjoint slots and are aggregated afterwards in ascending group order,
  // so the report (and the undo_coverage_lost list) is identical at every
  // thread count; only `progress` (pages rebuilt so far, for the trace
  // feed) is a racy running total.
  std::vector<TwinParityManager::GroupRebuildOutcome> outcomes(num_groups);
  std::atomic<uint64_t> progress{0};
  RDA_RETURN_IF_ERROR(exec::RunSharded(
      pool_, num_groups, [&](uint64_t index) -> Status {
        const GroupId group = static_cast<GroupId>(index);
        auto outcome_or = parity_->RebuildGroupMember(group, disk);
        if (!outcome_or.ok()) {
          // A second disk failing while this one is mid-rebuild exceeds the
          // single-parity redundancy: the remaining groups cannot be
          // reconstructed. Report that as the typed data loss it is, rather
          // than a generic I/O error (the caller decides whether an archive
          // restore can still save the day).
          if (!outcome_or.status().IsDataLoss() &&
              array->NumFailedDisks() > 0) {
            return Status::DataLoss(
                "second disk failure during rebuild of disk " +
                std::to_string(disk) + " at group " + std::to_string(group) +
                ": " + outcome_or.status().message());
          }
          return outcome_or.status();
        }
        outcomes[group] = std::move(outcome_or).value();
        const TwinParityManager::GroupRebuildOutcome& outcome =
            outcomes[group];
        const uint64_t pages = outcome.data_rebuilt + outcome.parity_rebuilt;
        if (trace != nullptr && pages != 0) {
          obs::TraceEvent event;
          event.subsystem = obs::Subsystem::kRecovery;
          event.kind = obs::EventKind::kRebuildProgress;
          event.group = group;
          event.detail =
              progress.fetch_add(pages, std::memory_order_relaxed) + pages;
          event.value = disk;
          obs::Emit(trace, event);
        }
        return Status::Ok();
      }));
  for (GroupId group = 0; group < num_groups; ++group) {
    const TwinParityManager::GroupRebuildOutcome& outcome = outcomes[group];
    report.data_pages_rebuilt += outcome.data_rebuilt;
    report.parity_pages_rebuilt += outcome.parity_rebuilt;
    report.obsolete_twins_reset += outcome.obsolete_reset;
    if (outcome.undo_lost) {
      report.undo_coverage_lost.push_back(outcome.lost_txn);
    }
  }
  std::sort(report.undo_coverage_lost.begin(),
            report.undo_coverage_lost.end());
  report.undo_coverage_lost.erase(
      std::unique(report.undo_coverage_lost.begin(),
                  report.undo_coverage_lost.end()),
      report.undo_coverage_lost.end());
  // A rebuild is only done once the reconstructed pages are ON the medium,
  // not sitting in the async engine's journal.
  RDA_RETURN_IF_ERROR(array->FlushIo());
  array->SetRebuilding(disk, false);
  return report;
}

Result<MediaRecoveryReport> MediaRecovery::RebuildDiskOnline(
    DiskId disk, const OnlineRebuildOptions& options) {
  DiskArray* array = parity_->array();
  MediaRecoveryReport report;
  report.disk = disk;
  if (parity_->OnlineRebuildActive()) {
    if (parity_->online_rebuild_disk() != disk) {
      return Status::FailedPrecondition(
          "an online rebuild of disk " +
          std::to_string(parity_->online_rebuild_disk()) +
          " is already active");
    }
    // Resume after a cancelled sweep: the session (and its bitmap) is still
    // live; the undo_coverage_lost list was reported by the first call.
  } else {
    RDA_ASSIGN_OR_RETURN(TwinParityManager::OnlineRebuildInfo info,
                         parity_->BeginOnlineRebuild(disk));
    report.undo_coverage_lost = std::move(info.undo_coverage_lost);
  }

  obs::ScopedPhase phase(
      hub_, obs::RecoveryPhase::kMediaRebuild,
      [array] { return array->counters().total(); }, &report.phases);
  obs::TraceBuffer* trace = obs::TraceOf(hub_);
  const GroupId num_groups = array->num_groups();
  const uint64_t tokens_per_group =
      array->layout().data_pages_per_group() + 1;
  uint64_t progress = 0;
  bool cancelled = false;
  // Serial sweep on purpose: the rebuild is the background citizen here —
  // foreground transactions own the parallelism. Each group is one latch
  // acquisition, one token-bucket charge, one reconstruct-and-persist.
  for (GroupId group = 0; group < num_groups; ++group) {
    while (options.pause != nullptr &&
           options.pause->load(std::memory_order_acquire)) {
      if (options.cancel != nullptr &&
          options.cancel->load(std::memory_order_acquire)) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_acquire)) {
      cancelled = true;
      break;
    }
    if (!parity_->OnlineGroupPending(group)) {
      continue;  // Already served on demand (or not a member group).
    }
    if (options.throttle != nullptr &&
        !options.throttle->Acquire(tokens_per_group, options.cancel)) {
      cancelled = true;  // Cancelled while waiting for rate-limit tokens.
      break;
    }
    bool did_work = false;
    auto outcome_or = parity_->RebuildGroupIfPending(group, &did_work);
    if (!outcome_or.ok()) {
      if (!outcome_or.status().IsDataLoss() && array->NumFailedDisks() > 0) {
        return Status::DataLoss(
            "second disk failure during online rebuild of disk " +
            std::to_string(disk) + " at group " + std::to_string(group) +
            ": " + outcome_or.status().message());
      }
      return outcome_or.status();
    }
    if (!did_work) {
      continue;
    }
    const TwinParityManager::GroupRebuildOutcome& outcome = *outcome_or;
    report.data_pages_rebuilt += outcome.data_rebuilt;
    report.parity_pages_rebuilt += outcome.parity_rebuilt;
    report.obsolete_twins_reset += outcome.obsolete_reset;
    if (outcome.undo_lost) {
      report.undo_coverage_lost.push_back(outcome.lost_txn);
    }
    ++report.groups_background;
    const uint64_t pages = outcome.data_rebuilt + outcome.parity_rebuilt;
    if (trace != nullptr && pages != 0) {
      obs::TraceEvent event;
      event.subsystem = obs::Subsystem::kRecovery;
      event.kind = obs::EventKind::kRebuildProgress;
      event.group = group;
      progress += pages;
      event.detail = static_cast<int64_t>(progress);
      event.value = disk;
      obs::Emit(trace, event);
    }
  }
  std::sort(report.undo_coverage_lost.begin(),
            report.undo_coverage_lost.end());
  report.undo_coverage_lost.erase(
      std::unique(report.undo_coverage_lost.begin(),
                  report.undo_coverage_lost.end()),
      report.undo_coverage_lost.end());
  report.groups_on_demand = parity_->OnlineOnDemandRepairs();
  report.write_promotions = parity_->OnlineWritePromotions();
  if (cancelled || parity_->OnlineRebuildGroupsRemaining() != 0) {
    report.completed = false;  // Session stays active for a later resume.
    return report;
  }
  RDA_RETURN_IF_ERROR(array->FlushIo());  // Rebuilt pages must be on medium.
  RDA_RETURN_IF_ERROR(parity_->EndOnlineRebuild());
  return report;
}

}  // namespace rda
