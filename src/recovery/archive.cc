#include "recovery/archive.h"

#include <utility>

namespace rda {

Status ArchiveManager::TakeArchive(bool truncate_log) {
  if (!txn_manager_->ActiveTxns().empty()) {
    return Status::FailedPrecondition(
        "archive requires a quiescent point (no active transactions)");
  }
  // Make the on-disk state complete: propagate committed-but-buffered
  // pages, then force the log.
  RDA_RETURN_IF_ERROR(txn_manager_->pool()->PropagateAllDirty());
  RDA_RETURN_IF_ERROR(log_->Flush());

  DiskArray* array = parity_->array();
  std::vector<std::vector<uint8_t>> snapshot;
  snapshot.reserve(array->num_data_pages());
  for (PageId page = 0; page < array->num_data_pages(); ++page) {
    PageImage image;
    RDA_RETURN_IF_ERROR(array->ReadData(page, &image));
    snapshot.push_back(std::move(image.payload));
  }
  snapshot_ = std::move(snapshot);
  archive_lsn_ = log_->flushed_lsn();

  if (truncate_log) {
    // Everything before the archive point is now recoverable from the
    // archive alone: all earlier transactions are finished and their pages
    // were just propagated.
    RDA_RETURN_IF_ERROR(log_->Truncate(archive_lsn_));
  }
  return Status::Ok();
}

Result<CrashRecoveryReport> ArchiveManager::RestoreFromArchive() {
  if (!HasArchive()) {
    return Status::FailedPrecondition("no archive has been taken");
  }
  DiskArray* array = parity_->array();
  // Fresh media for every failed disk.
  for (DiskId disk = 0; disk < array->num_disks(); ++disk) {
    if (array->DiskFailed(disk)) {
      RDA_RETURN_IF_ERROR(array->ReplaceDisk(disk));
    }
  }
  // All volatile state is void after a catastrophe.
  txn_manager_->LoseVolatileState();
  parity_->LoseVolatileState();
  log_->LoseVolatileState();

  for (PageId page = 0; page < array->num_data_pages(); ++page) {
    PageImage image(0);
    image.payload = snapshot_[page];
    RDA_RETURN_IF_ERROR(array->WriteData(page, image));
  }
  RDA_RETURN_IF_ERROR(parity_->ReinitializeParityFromData());

  // Roll forward the work committed since the archive; restart recovery's
  // pageLSN checks make replaying from the (truncated) log start safe.
  CrashRecovery recovery(txn_manager_, parity_, log_);
  return recovery.Recover();
}

}  // namespace rda
