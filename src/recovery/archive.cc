#include "recovery/archive.h"

#include <utility>

#include "obs/scoped.h"

namespace rda {

void ArchiveManager::AttachObs(obs::ObsHub* hub) {
  hub_ = hub;
  archives_counter_ = obs::GetCounter(hub, "recovery.archives_taken");
}

Status ArchiveManager::TakeArchive(bool truncate_log) {
  if (!txn_manager_->ActiveTxns().empty()) {
    return Status::FailedPrecondition(
        "archive requires a quiescent point (no active transactions)");
  }
  // Make the on-disk state complete: propagate committed-but-buffered
  // pages, then force the log.
  RDA_RETURN_IF_ERROR(txn_manager_->pool()->PropagateAllDirty());
  RDA_RETURN_IF_ERROR(log_->Flush());

  DiskArray* array = parity_->array();
  std::vector<std::vector<uint8_t>> snapshot;
  snapshot.reserve(array->num_data_pages());
  for (PageId page = 0; page < array->num_data_pages(); ++page) {
    PageImage image;
    // Healed read: a faulty sector must not poison the snapshot — the
    // archive is the last line of defence.
    RDA_RETURN_IF_ERROR(parity_->ReadDataHealed(page, &image));
    snapshot.push_back(std::move(image.payload));
  }
  snapshot_ = std::move(snapshot);
  archive_lsn_ = log_->flushed_lsn();

  if (truncate_log) {
    // Everything before the archive point is now recoverable from the
    // archive alone: all earlier transactions are finished and their pages
    // were just propagated.
    RDA_RETURN_IF_ERROR(log_->Truncate(archive_lsn_));
  }
  obs::Inc(archives_counter_);
  return Status::Ok();
}

Result<CrashRecoveryReport> ArchiveManager::RestoreFromArchive() {
  if (!HasArchive()) {
    return Status::FailedPrecondition("no archive has been taken");
  }
  DiskArray* array = parity_->array();
  const auto transfers_now = [this, array] {
    return array->counters().total() + log_->counters().total();
  };
  std::vector<obs::PhaseCost> restore_phases;

  // Fresh media for every failed disk. The restore rewrites every page and
  // recomputes all parity below, so any interrupted-rebuild flag is moot.
  for (DiskId disk = 0; disk < array->num_disks(); ++disk) {
    if (array->DiskFailed(disk)) {
      RDA_RETURN_IF_ERROR(array->ReplaceDisk(disk));
    }
    array->SetRebuilding(disk, false);
  }
  // All volatile state is void after a catastrophe.
  txn_manager_->LoseVolatileState();
  parity_->LoseVolatileState();
  log_->LoseVolatileState();

  {
    obs::ScopedPhase phase(hub_, obs::RecoveryPhase::kArchiveRestore,
                           transfers_now, &restore_phases);
    // Distinct pages live on distinct slots, so the snapshot rewrite fans
    // out over the pool with no coordination beyond the per-disk mutexes.
    RDA_RETURN_IF_ERROR(exec::RunSharded(
        pool_, array->num_data_pages(), [&](uint64_t page) -> Status {
          PageImage image(0);
          image.payload = snapshot_[page];
          return array->WriteData(static_cast<PageId>(page), image);
        }));
  }
  {
    obs::ScopedPhase phase(hub_, obs::RecoveryPhase::kParityReinit,
                           transfers_now, &restore_phases);
    RDA_RETURN_IF_ERROR(parity_->ReinitializeParityFromData(pool_));
  }

  // Roll forward the work committed since the archive; restart recovery's
  // pageLSN checks make replaying from the (truncated) log start safe.
  CrashRecovery recovery(txn_manager_, parity_, log_);
  recovery.AttachObs(hub_);
  recovery.SetWorkerPool(pool_);
  RDA_ASSIGN_OR_RETURN(CrashRecoveryReport report, recovery.Recover());
  report.phases.insert(report.phases.begin(), restore_phases.begin(),
                       restore_phases.end());
  return report;
}

}  // namespace rda
