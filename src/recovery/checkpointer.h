#ifndef RDA_RECOVERY_CHECKPOINTER_H_
#define RDA_RECOVERY_CHECKPOINTER_H_

#include "common/status.h"
#include "common/types.h"
#include "obs/obs.h"
#include "txn/transaction_manager.h"
#include "wal/log_manager.h"

namespace rda {

// Checkpoint disciplines (paper Section 2, "Checkpointing Schemes"):
//  * TOC (transaction-oriented): equivalent to the FORCE discipline — every
//    commit propagates the transaction's pages, so no separate checkpoint
//    operation exists. TakeCheckpoint() is a no-op in that configuration.
//  * ACC (action-consistent): periodically propagate every modified buffer
//    page (a quiescent point between update actions) and log a checkpoint
//    record naming the transactions then active. Bounds REDO work after a
//    crash.
class Checkpointer {
 public:
  Checkpointer(TransactionManager* txn_manager, LogManager* log)
      : txn_manager_(txn_manager), log_(log) {}

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  // Takes an action-consistent checkpoint: propagates all dirty buffer
  // frames (uncommitted ones follow the Figure 3 steal rule — this is where
  // ACC algorithms harvest unlogged propagations), then appends and flushes
  // a kCheckpoint record.
  Status TakeCheckpoint();

  // LSN of the most recent completed checkpoint, or kInvalidLsn.
  Lsn last_checkpoint_lsn() const { return last_checkpoint_lsn_; }
  uint64_t checkpoints_taken() const { return checkpoints_taken_; }

  // Hooks checkpoints into the observability hub (`recovery.checkpoints`
  // counter and kCheckpoint trace events). Null detaches.
  void AttachObs(obs::ObsHub* hub);

 private:
  TransactionManager* txn_manager_;
  LogManager* log_;
  Lsn last_checkpoint_lsn_ = kInvalidLsn;
  uint64_t checkpoints_taken_ = 0;
  obs::TraceBuffer* trace_ = nullptr;
  obs::Counter* checkpoints_counter_ = nullptr;
};

}  // namespace rda

#endif  // RDA_RECOVERY_CHECKPOINTER_H_
