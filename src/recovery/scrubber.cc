#include "recovery/scrubber.h"

#include <cstdint>
#include <vector>

namespace rda {

Result<ScrubReport> ParityScrubber::ScrubAll() {
  ScrubReport report;
  DiskArray* array = parity_->array();
  // A scrub vouches for the MEDIUM, so the async journal must drain first:
  // a pending write masks its slot from the scan (reads hit the journal),
  // and any write fault it carries materializes only at the physical
  // transfer. Scrubbing across an undrained journal would report "clean"
  // while damage is still scheduled to land.
  RDA_RETURN_IF_ERROR(array->FlushIo());
  // The verify pass reads every page through the healed path, so sector
  // faults it trips over are repaired as a side effect; the counter delta
  // is this pass's contribution.
  const ParityStats before = parity_->stats();
  const GroupId num_groups = array->num_groups();
  // Banded parallel scan: per-group verdicts land in disjoint slots and are
  // folded into the report in ascending group order afterwards, so the
  // report matches the serial pass at every thread count.
  enum : uint8_t { kClean = 0, kSkippedDirty = 1, kRepaired = 2 };
  std::vector<uint8_t> verdicts(num_groups, kClean);
  const uint64_t tokens_per_group =
      array->layout().data_pages_per_group() + 1;
  // A throttled scrub is a background citizen: run it serially (the bucket
  // would serialize the bands anyway) and pay for each group up front.
  exec::WorkerPool* pool = throttle_ != nullptr ? nullptr : pool_;
  RDA_RETURN_IF_ERROR(exec::RunSharded(
      pool, num_groups, [&](uint64_t index) -> Status {
        const GroupId group = static_cast<GroupId>(index);
        if (throttle_ != nullptr) {
          throttle_->Acquire(tokens_per_group);
        }
        const GroupState& state = parity_->directory().Get(group);
        if (state.dirty) {
          verdicts[group] = kSkippedDirty;
          return Status::Ok();
        }
        RDA_ASSIGN_OR_RETURN(const bool consistent,
                             parity_->VerifyGroupParity(group));
        if (!consistent) {
          RDA_RETURN_IF_ERROR(parity_->ScrubGroup(group));
          verdicts[group] = kRepaired;
        }
        return Status::Ok();
      }));
  for (GroupId group = 0; group < num_groups; ++group) {
    ++report.groups_checked;
    if (verdicts[group] == kSkippedDirty) {
      ++report.groups_skipped_dirty;
    } else if (verdicts[group] == kRepaired) {
      report.repaired.push_back(group);
    }
  }
  // Scrub repairs are only real once drained out of the async journal.
  RDA_RETURN_IF_ERROR(array->FlushIo());
  const ParityStats after = parity_->stats();
  report.sectors_repaired = (after.latent_repairs - before.latent_repairs) +
                            (after.corruption_repairs -
                             before.corruption_repairs);
  return report;
}

}  // namespace rda
