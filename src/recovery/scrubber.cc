#include "recovery/scrubber.h"

namespace rda {

Result<ScrubReport> ParityScrubber::ScrubAll() {
  ScrubReport report;
  DiskArray* array = parity_->array();
  for (GroupId group = 0; group < array->num_groups(); ++group) {
    ++report.groups_checked;
    const GroupState& state = parity_->directory().Get(group);
    if (state.dirty) {
      ++report.groups_skipped_dirty;
      continue;
    }
    RDA_ASSIGN_OR_RETURN(const bool consistent,
                         parity_->VerifyGroupParity(group));
    if (!consistent) {
      RDA_RETURN_IF_ERROR(parity_->ScrubGroup(group));
      report.repaired.push_back(group);
    }
  }
  return report;
}

}  // namespace rda
