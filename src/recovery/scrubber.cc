#include "recovery/scrubber.h"

namespace rda {

Result<ScrubReport> ParityScrubber::ScrubAll() {
  ScrubReport report;
  DiskArray* array = parity_->array();
  // The verify pass reads every page through the healed path, so sector
  // faults it trips over are repaired as a side effect; the counter delta
  // is this pass's contribution.
  const ParityStats before = parity_->stats();
  for (GroupId group = 0; group < array->num_groups(); ++group) {
    ++report.groups_checked;
    const GroupState& state = parity_->directory().Get(group);
    if (state.dirty) {
      ++report.groups_skipped_dirty;
      continue;
    }
    RDA_ASSIGN_OR_RETURN(const bool consistent,
                         parity_->VerifyGroupParity(group));
    if (!consistent) {
      RDA_RETURN_IF_ERROR(parity_->ScrubGroup(group));
      report.repaired.push_back(group);
    }
  }
  const ParityStats after = parity_->stats();
  report.sectors_repaired = (after.latent_repairs - before.latent_repairs) +
                            (after.corruption_repairs -
                             before.corruption_repairs);
  return report;
}

}  // namespace rda
