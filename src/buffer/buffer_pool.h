#ifndef RDA_BUFFER_BUFFER_POOL_H_
#define RDA_BUFFER_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "obs/obs.h"
#include "storage/page.h"

namespace rda {

// In-buffer undo information for one record-granular update. Volatile
// bookkeeping only — the durable undo story is the twin parity / UNDO log;
// this exists so a runtime abort can revert a transaction's records inside
// a buffer frame that other transactions also modified (record locking
// allows sharing pages, paper footnote 12).
struct RecordMod {
  TxnId txn = kInvalidTxnId;
  RecordSlot slot = 0;
  std::vector<uint8_t> before;
  Lsn stamp = 0;  // Monotone stamp for reverse-order undo.
};

// A record slot modified since the frame was last propagated; the steal path
// derives before-image log records from these (before bytes come from
// `last_propagated`).
struct PendingMod {
  TxnId txn = kInvalidTxnId;
  RecordSlot slot = 0;
  // Slot content just before the first modification since the last
  // propagation — the logical before-image a steal must log. May contain
  // committed-but-unpropagated bytes of earlier transactions, which is
  // exactly why it can differ from last_propagated.
  std::vector<uint8_t> before;
};

// One buffer frame. `payload` is the current (possibly modified) content;
// `last_propagated` snapshots the content as of the last propagation to the
// array — it is what a RAID small write needs as "old data" (the model's
// a=3 case: old data available without an extra disk read).
struct Frame {
  PageId page = kInvalidPageId;
  std::vector<uint8_t> payload;
  std::vector<uint8_t> last_propagated;
  PageHeader header;
  bool dirty = false;
  uint32_t pins = 0;
  // Active transactions with unpropagated uncommitted changes in this frame.
  std::vector<TxnId> modifiers;
  // Record-granular in-buffer undo info (record-logging mode).
  std::vector<RecordMod> record_mods;
  // Slots modified since the last propagation (cleared on propagate).
  std::vector<PendingMod> pending_mods;
  // Whole-page logical before-image: payload as it was when the current
  // modifier first touched the frame after the last propagation (page-
  // logging mode). Reset on propagation and at the modifier's EOT.
  bool has_pending_before = false;
  std::vector<uint8_t> pending_before;
  // Position in the pool's recency list (front = most recent). Maintained
  // exclusively by BufferPool; singular for frames outside a pool.
  std::list<PageId>::iterator lru_pos;

  bool HasModifier(TxnId txn) const;
  void AddModifier(TxnId txn);
  void RemoveModifier(TxnId txn);
};

// Buffer-pool statistics (the model's communality C manifests as hit rate).
struct BufferStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t steals = 0;  // Evictions that propagated uncommitted data.
};

// Fixed-capacity page buffer with LRU replacement and a STEAL/no-STEAL
// policy knob. The pool is policy-free about *how* pages reach the disk:
// eviction calls back into the transaction manager (PropagateFn), which
// owns the Figure 3 logging decision and the parity maintenance.
class BufferPool {
 public:
  struct Options {
    uint32_t capacity = 64;  // The paper's B.
    size_t page_size = 512;
    // STEAL: modified pages of uncommitted transactions may be evicted
    // (propagated). The paper's RDA algorithms all assume STEAL.
    bool allow_steal = true;
  };

  // Reads a page image from the database (cache miss path).
  using FetchFn = std::function<Status(PageId, PageImage*)>;
  // Propagates a dirty frame to the database. On success the caller must
  // have written frame->payload to disk; the pool then updates
  // last_propagated and clears dirty.
  using PropagateFn = std::function<Status(Frame*)>;

  BufferPool(const Options& options, FetchFn fetch, PropagateFn propagate);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Returns the frame holding `page`, fetching (and possibly evicting a
  // victim) as needed. `cache_hit`, if non-null, reports whether the page
  // was already resident. The returned pointer is valid until the next
  // Fetch/Discard/LoseAll call.
  Result<Frame*> Fetch(PageId page, bool* cache_hit);

  // Returns the resident frame for `page`, or nullptr.
  Frame* Lookup(PageId page);

  // Propagates `frame` to the database now (used by FORCE commits and
  // checkpoints); clears dirty and refreshes last_propagated.
  Status PropagateFrame(Frame* frame);

  // Propagates every dirty frame (action-consistent checkpoint body).
  Status PropagateAllDirty();

  // Drops `page` from the pool without writing it (page-mode abort of a
  // never-propagated modification).
  void Discard(PageId page);

  // Simulates a crash: every frame is lost.
  void LoseAll();

  std::vector<PageId> DirtyPages() const;
  std::vector<PageId> ResidentPages() const;
  uint32_t size() const { return static_cast<uint32_t>(frames_.size()); }
  uint32_t capacity() const { return options_.capacity; }
  const BufferStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferStats(); }

  // Hooks the pool into the observability hub (`buffer.*` counters plus a
  // kSteal trace event per uncommitted-data eviction). Null detaches.
  void AttachObs(obs::ObsHub* hub);

 private:
  // Picks and evicts the least-recently-used evictable frame; propagates it
  // first if dirty (a steal when uncommitted modifiers exist). Fails with
  // kBusy if every frame is pinned or unstealable. O(1) in the common case:
  // the victim is found by walking the recency list from its cold end,
  // skipping only pinned/unstealable frames.
  Status EvictOne();

  Options options_;
  FetchFn fetch_;
  PropagateFn propagate_;
  std::unordered_map<PageId, Frame> frames_;
  // Recency list over resident pages: front = most recently used, back =
  // eviction candidate. Each frame holds its own position (lru_pos), so a
  // touch is an O(1) splice and eviction needs no full scan.
  std::list<PageId> lru_;
  BufferStats stats_;

  // Observability (null = disabled).
  obs::TraceBuffer* trace_ = nullptr;
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
  obs::Counter* steals_counter_ = nullptr;
};

}  // namespace rda

#endif  // RDA_BUFFER_BUFFER_POOL_H_
