#ifndef RDA_BUFFER_BUFFER_POOL_H_
#define RDA_BUFFER_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "obs/obs.h"
#include "storage/page.h"

namespace rda {

// In-buffer undo information for one record-granular update. Volatile
// bookkeeping only — the durable undo story is the twin parity / UNDO log;
// this exists so a runtime abort can revert a transaction's records inside
// a buffer frame that other transactions also modified (record locking
// allows sharing pages, paper footnote 12).
struct RecordMod {
  TxnId txn = kInvalidTxnId;
  RecordSlot slot = 0;
  std::vector<uint8_t> before;
  Lsn stamp = 0;  // Monotone stamp for reverse-order undo.
};

// A record slot modified since the frame was last propagated; the steal path
// derives before-image log records from these (before bytes come from
// `last_propagated`).
struct PendingMod {
  TxnId txn = kInvalidTxnId;
  RecordSlot slot = 0;
  // Slot content just before the first modification since the last
  // propagation — the logical before-image a steal must log. May contain
  // committed-but-unpropagated bytes of earlier transactions, which is
  // exactly why it can differ from last_propagated.
  std::vector<uint8_t> before;
};

// One buffer frame. `payload` is the current (possibly modified) content;
// `last_propagated` snapshots the content as of the last propagation to the
// array — it is what a RAID small write needs as "old data" (the model's
// a=3 case: old data available without an extra disk read).
struct Frame {
  PageId page = kInvalidPageId;
  std::vector<uint8_t> payload;
  std::vector<uint8_t> last_propagated;
  PageHeader header;
  bool dirty = false;
  uint32_t pins = 0;
  // Active transactions with unpropagated uncommitted changes in this frame.
  std::vector<TxnId> modifiers;
  // Record-granular in-buffer undo info (record-logging mode).
  std::vector<RecordMod> record_mods;
  // Slots modified since the last propagation (cleared on propagate).
  std::vector<PendingMod> pending_mods;
  // Whole-page logical before-image: payload as it was when the current
  // modifier first touched the frame after the last propagation (page-
  // logging mode). Reset on propagation and at the modifier's EOT.
  bool has_pending_before = false;
  std::vector<uint8_t> pending_before;
  // Position in the owning shard's recency list (front = most recent).
  // Maintained exclusively by BufferPool; singular for frames outside a
  // pool.
  std::list<PageId>::iterator lru_pos;

  bool HasModifier(TxnId txn) const;
  void AddModifier(TxnId txn);
  void RemoveModifier(TxnId txn);
};

// Buffer-pool statistics (the model's communality C manifests as hit rate).
struct BufferStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t steals = 0;  // Evictions that propagated uncommitted data.
};

// Fixed-capacity page buffer with LRU replacement and a STEAL/no-STEAL
// policy knob. The pool is policy-free about *how* pages reach the disk:
// eviction calls back into the transaction manager (PropagateFn), which
// owns the Figure 3 logging decision and the parity maintenance.
//
// Concurrency model (DESIGN.md section 11): the pool is split into
// `Options::shards` latch shards, each owning a page-keyed frame map, its
// own LRU recency list and a slice of the capacity. All frame access and
// replacement for a page happens under its shard's latch; pages hash to
// shards by page id, so operations on different shards run fully in
// parallel. Eviction invokes the PropagateFn callback while HOLDING the
// shard latch — the latch order is shard -> (txn, parity group, WAL), and
// nothing downstream ever calls back into the pool. A propagate that
// returns kBusy (e.g. the modifier is mid-commit on another thread) makes
// the eviction walk skip that victim rather than block.
//
// The raw Frame* returned by Fetch/Lookup stays valid until that page is
// evicted or discarded; single-threaded callers may use it directly.
// Concurrent callers must do all frame access inside WithFrame /
// WithFetchedFrame, which run the callback under the shard latch.
//
// The default shards=1 keeps one global LRU list, preserving the exact
// replacement order (and hit/miss counts) of the original single-threaded
// pool.
class BufferPool {
 public:
  struct Options {
    uint32_t capacity = 64;  // The paper's B.
    size_t page_size = 512;
    // STEAL: modified pages of uncommitted transactions may be evicted
    // (propagated). The paper's RDA algorithms all assume STEAL.
    bool allow_steal = true;
    // Latch shards. 1 (default) = one global LRU, byte-identical behaviour
    // to the pre-concurrency pool; concurrent workloads want 8+.
    uint32_t shards = 1;
  };

  // Reads a page image from the database (cache miss path).
  using FetchFn = std::function<Status(PageId, PageImage*)>;
  // Propagates a dirty frame to the database. On success the caller must
  // have written frame->payload to disk; the pool then updates
  // last_propagated and clears dirty.
  using PropagateFn = std::function<Status(Frame*)>;

  BufferPool(const Options& options, FetchFn fetch, PropagateFn propagate);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Returns the frame holding `page`, fetching (and possibly evicting a
  // victim) as needed. `cache_hit`, if non-null, reports whether the page
  // was already resident. The returned pointer is valid until the page is
  // evicted or discarded; see the class comment for the concurrent rules.
  Result<Frame*> Fetch(PageId page, bool* cache_hit);

  // Returns the resident frame for `page`, or nullptr.
  Frame* Lookup(PageId page);

  // Runs `fn` under the shard latch with the resident frame for `page`, or
  // with nullptr when the page is not resident. The latch pins the frame
  // for the duration of the callback; `fn` must not call back into the
  // pool (the shard latch is not recursive).
  Status WithFrame(PageId page, const std::function<Status(Frame*)>& fn);

  // Fetch + WithFrame in one latched step: fetches `page` (evicting as
  // needed) and runs `fn` on the frame while the shard latch is held.
  Status WithFetchedFrame(PageId page, bool* cache_hit,
                          const std::function<Status(Frame*)>& fn);

  // Thread-safe pin/unpin: a pinned frame is exempt from eviction. Pin
  // fetches the page if needed. Pins are counted; every Pin needs a
  // matching Unpin. Unpin of a non-resident page is a no-op.
  Status Pin(PageId page);
  void Unpin(PageId page);

  // Propagates `frame` to the database now (used by FORCE commits and
  // checkpoints); clears dirty and refreshes last_propagated. The caller
  // must hold the frame's shard latch (via WithFrame) or be single-threaded.
  Status PropagateFrame(Frame* frame);

  // Latched flavour: propagates `page`'s frame (if resident and dirty)
  // under its shard latch.
  Status PropagatePage(PageId page);

  // Propagates every dirty frame (action-consistent checkpoint body).
  Status PropagateAllDirty();

  // Drops `page` from the pool without writing it (page-mode abort of a
  // never-propagated modification).
  void Discard(PageId page);

  // Simulates a crash: every frame is lost.
  void LoseAll();

  std::vector<PageId> DirtyPages() const;
  std::vector<PageId> ResidentPages() const;
  uint32_t size() const;
  uint32_t capacity() const { return options_.capacity; }
  uint32_t shards() const { return static_cast<uint32_t>(num_shards_); }
  // Snapshot by value: counters are bumped concurrently.
  BufferStats stats() const;
  void ResetStats();

  // Hooks the pool into the observability hub (`buffer.*` counters, a
  // kSteal trace event per uncommitted-data eviction, and a latch-wait
  // counter). Null detaches.
  void AttachObs(obs::ObsHub* hub);

 private:
  struct Shard {
    std::mutex mu;
    std::unordered_map<PageId, Frame> frames;
    // Recency list over this shard's resident pages: front = most recently
    // used, back = eviction candidate. Each frame holds its own position
    // (lru_pos), so a touch is an O(1) splice and eviction needs no scan.
    std::list<PageId> lru;
    uint32_t capacity = 0;  // This shard's slice of options_.capacity.
  };

  Shard& ShardOf(PageId page) { return shards_[page % num_shards_]; }
  const Shard& ShardOf(PageId page) const {
    return shards_[page % num_shards_];
  }
  std::unique_lock<std::mutex> LockShard(Shard& shard);

  // Fetches `page` into `shard` (whose latch the caller holds), evicting as
  // needed, and returns the frame.
  Result<Frame*> FetchLocked(Shard& shard, PageId page, bool* cache_hit);

  // Picks and evicts the least-recently-used evictable frame of `shard`
  // (latch held by caller); propagates it first if dirty (a steal when
  // uncommitted modifiers exist). Fails with kBusy if every frame is
  // pinned, unstealable, or mid-EOT busy.
  Status EvictOneLocked(Shard& shard);

  Options options_;
  FetchFn fetch_;
  PropagateFn propagate_;
  size_t num_shards_;
  std::unique_ptr<Shard[]> shards_;

  // Per-field atomic stats: bumped under different shard latches.
  struct AtomicBufferStats {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> steals{0};
  };
  AtomicBufferStats stats_;

  // Observability (null = disabled).
  obs::TraceBuffer* trace_ = nullptr;
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
  obs::Counter* steals_counter_ = nullptr;
  obs::Counter* latch_waits_counter_ = nullptr;
  // Latency spans on the miss/evict paths only — a cache hit never reads
  // the clock.
  obs::SpanCollector* spans_ = nullptr;
};

}  // namespace rda

#endif  // RDA_BUFFER_BUFFER_POOL_H_
