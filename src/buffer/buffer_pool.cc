#include "buffer/buffer_pool.h"

#include <algorithm>
#include <string>
#include <utility>

namespace rda {

bool Frame::HasModifier(TxnId txn) const {
  return std::find(modifiers.begin(), modifiers.end(), txn) != modifiers.end();
}

void Frame::AddModifier(TxnId txn) {
  if (!HasModifier(txn)) {
    modifiers.push_back(txn);
  }
}

void Frame::RemoveModifier(TxnId txn) {
  modifiers.erase(std::remove(modifiers.begin(), modifiers.end(), txn),
                  modifiers.end());
}

BufferPool::BufferPool(const Options& options, FetchFn fetch,
                       PropagateFn propagate)
    : options_(options),
      fetch_(std::move(fetch)),
      propagate_(std::move(propagate)),
      num_shards_(std::max<uint32_t>(options.shards, 1)),
      shards_(std::make_unique<Shard[]>(num_shards_)) {
  // Split the capacity across shards, never below one frame per shard (a
  // zero-capacity shard could never fetch anything).
  const uint32_t per_shard = std::max<uint32_t>(
      1, (options_.capacity + static_cast<uint32_t>(num_shards_) - 1) /
             static_cast<uint32_t>(num_shards_));
  for (size_t s = 0; s < num_shards_; ++s) {
    shards_[s].capacity = per_shard;
  }
}

std::unique_lock<std::mutex> BufferPool::LockShard(Shard& shard) {
  std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    obs::Inc(latch_waits_counter_);
    lock.lock();
  }
  return lock;
}

Result<Frame*> BufferPool::FetchLocked(Shard& shard, PageId page,
                                       bool* cache_hit) {
  auto it = shard.frames.find(page);
  if (it != shard.frames.end()) {
    if (cache_hit != nullptr) {
      *cache_hit = true;
    }
    stats_.hits.fetch_add(1, std::memory_order_relaxed);
    obs::Inc(hits_counter_);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    return &it->second;
  }
  if (cache_hit != nullptr) {
    *cache_hit = false;
  }
  stats_.misses.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(misses_counter_);
  obs::ScopedSpan miss_span(spans_, obs::SpanKind::kBufferFetchMiss,
                            /*histogram=*/nullptr,
                            static_cast<int64_t>(page));
  while (shard.frames.size() >= shard.capacity) {
    RDA_RETURN_IF_ERROR(EvictOneLocked(shard));
  }
  PageImage image;
  RDA_RETURN_IF_ERROR(fetch_(page, &image));
  Frame frame;
  frame.page = page;
  frame.payload = image.payload;
  frame.last_propagated = std::move(image.payload);
  frame.header = image.header;
  auto [inserted, ok] = shard.frames.emplace(page, std::move(frame));
  (void)ok;
  shard.lru.push_front(page);
  inserted->second.lru_pos = shard.lru.begin();
  return &inserted->second;
}

Result<Frame*> BufferPool::Fetch(PageId page, bool* cache_hit) {
  Shard& shard = ShardOf(page);
  auto lock = LockShard(shard);
  return FetchLocked(shard, page, cache_hit);
}

Frame* BufferPool::Lookup(PageId page) {
  Shard& shard = ShardOf(page);
  auto lock = LockShard(shard);
  auto it = shard.frames.find(page);
  return it == shard.frames.end() ? nullptr : &it->second;
}

Status BufferPool::WithFrame(PageId page,
                             const std::function<Status(Frame*)>& fn) {
  Shard& shard = ShardOf(page);
  auto lock = LockShard(shard);
  auto it = shard.frames.find(page);
  return fn(it == shard.frames.end() ? nullptr : &it->second);
}

Status BufferPool::WithFetchedFrame(PageId page, bool* cache_hit,
                                    const std::function<Status(Frame*)>& fn) {
  Shard& shard = ShardOf(page);
  auto lock = LockShard(shard);
  RDA_ASSIGN_OR_RETURN(Frame * frame, FetchLocked(shard, page, cache_hit));
  return fn(frame);
}

Status BufferPool::Pin(PageId page) {
  Shard& shard = ShardOf(page);
  auto lock = LockShard(shard);
  RDA_ASSIGN_OR_RETURN(Frame * frame,
                       FetchLocked(shard, page, /*cache_hit=*/nullptr));
  ++frame->pins;
  return Status::Ok();
}

void BufferPool::Unpin(PageId page) {
  Shard& shard = ShardOf(page);
  auto lock = LockShard(shard);
  auto it = shard.frames.find(page);
  if (it != shard.frames.end() && it->second.pins > 0) {
    --it->second.pins;
  }
}

Status BufferPool::EvictOneLocked(Shard& shard) {
  obs::ScopedSpan evict_span(spans_, obs::SpanKind::kBufferEvict);
  // Walk the recency list from the cold end: the first evictable frame is
  // exactly the minimum-recency victim a full scan would have picked. A
  // frame whose propagation reports kBusy (its modifier is mid-EOT on
  // another thread) is skipped the same way a pinned frame is.
  for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
    Frame& frame = shard.frames.find(*it)->second;
    if (frame.pins > 0) {
      continue;
    }
    if (frame.dirty && !frame.modifiers.empty() && !options_.allow_steal) {
      continue;  // no-STEAL: uncommitted modifications may not leave RAM.
    }
    Frame* victim = &frame;
    if (victim->dirty) {
      const bool steal = !victim->modifiers.empty();
      // Capture attribution before propagation, which may retire modifiers.
      const TxnId steal_txn =
          steal ? victim->modifiers.front() : kInvalidTxnId;
      const size_t steal_count = victim->modifiers.size();
      const Status propagated = PropagateFrame(victim);
      if (propagated.IsBusy()) {
        continue;  // Mid-EOT elsewhere; the next victim may be free.
      }
      RDA_RETURN_IF_ERROR(propagated);
      if (steal) {
        stats_.steals.fetch_add(1, std::memory_order_relaxed);
        obs::Inc(steals_counter_);
        obs::TraceEvent event;
        event.subsystem = obs::Subsystem::kBuffer;
        event.kind = obs::EventKind::kSteal;
        event.page = victim->page;
        // A stolen frame can hold several uncommitted modifiers under
        // record locking; attribute the event to the first one.
        event.txn = steal_txn;
        event.detail = static_cast<int64_t>(steal_count);
        obs::Emit(trace_, event);
      }
    }
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    obs::Inc(evictions_counter_);
    shard.lru.erase(victim->lru_pos);
    shard.frames.erase(victim->page);
    return Status::Ok();
  }
  return Status::Busy("no evictable buffer frame");
}

Status BufferPool::PropagateFrame(Frame* frame) {
  if (!frame->dirty) {
    return Status::Ok();
  }
  RDA_RETURN_IF_ERROR(propagate_(frame));
  frame->last_propagated = frame->payload;
  frame->pending_mods.clear();
  frame->has_pending_before = false;
  frame->pending_before.clear();
  frame->dirty = false;
  return Status::Ok();
}

Status BufferPool::PropagatePage(PageId page) {
  return WithFrame(page, [this](Frame* frame) {
    return frame == nullptr ? Status::Ok() : PropagateFrame(frame);
  });
}

Status BufferPool::PropagateAllDirty() {
  // Deterministic order keeps tests and the simulator reproducible.
  std::vector<PageId> dirty = DirtyPages();
  std::sort(dirty.begin(), dirty.end());
  for (const PageId page : dirty) {
    RDA_RETURN_IF_ERROR(PropagatePage(page));
  }
  return Status::Ok();
}

void BufferPool::AttachObs(obs::ObsHub* hub) {
  trace_ = obs::TraceOf(hub);
  hits_counter_ = obs::GetCounter(hub, "buffer.hits");
  misses_counter_ = obs::GetCounter(hub, "buffer.misses");
  evictions_counter_ = obs::GetCounter(hub, "buffer.evictions");
  steals_counter_ = obs::GetCounter(hub, "buffer.steals");
  latch_waits_counter_ = obs::GetCounter(hub, "buffer.latch_waits");
  spans_ = obs::SpansOf(hub);
}

void BufferPool::Discard(PageId page) {
  Shard& shard = ShardOf(page);
  auto lock = LockShard(shard);
  auto it = shard.frames.find(page);
  if (it == shard.frames.end()) {
    return;
  }
  shard.lru.erase(it->second.lru_pos);
  shard.frames.erase(it);
}

void BufferPool::LoseAll() {
  for (size_t s = 0; s < num_shards_; ++s) {
    auto lock = LockShard(shards_[s]);
    shards_[s].frames.clear();
    shards_[s].lru.clear();
  }
}

std::vector<PageId> BufferPool::DirtyPages() const {
  std::vector<PageId> out;
  for (size_t s = 0; s < num_shards_; ++s) {
    Shard& shard = const_cast<Shard&>(shards_[s]);
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [page, frame] : shard.frames) {
      if (frame.dirty) {
        out.push_back(page);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PageId> BufferPool::ResidentPages() const {
  std::vector<PageId> out;
  for (size_t s = 0; s < num_shards_; ++s) {
    Shard& shard = const_cast<Shard&>(shards_[s]);
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [page, frame] : shard.frames) {
      out.push_back(page);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint32_t BufferPool::size() const {
  uint32_t total = 0;
  for (size_t s = 0; s < num_shards_; ++s) {
    Shard& shard = const_cast<Shard&>(shards_[s]);
    std::lock_guard<std::mutex> lock(shard.mu);
    total += static_cast<uint32_t>(shard.frames.size());
  }
  return total;
}

BufferStats BufferPool::stats() const {
  BufferStats s;
  s.hits = stats_.hits.load(std::memory_order_relaxed);
  s.misses = stats_.misses.load(std::memory_order_relaxed);
  s.evictions = stats_.evictions.load(std::memory_order_relaxed);
  s.steals = stats_.steals.load(std::memory_order_relaxed);
  return s;
}

void BufferPool::ResetStats() {
  stats_.hits.store(0, std::memory_order_relaxed);
  stats_.misses.store(0, std::memory_order_relaxed);
  stats_.evictions.store(0, std::memory_order_relaxed);
  stats_.steals.store(0, std::memory_order_relaxed);
}

}  // namespace rda
