#include "buffer/buffer_pool.h"

#include <algorithm>
#include <string>
#include <utility>

namespace rda {

bool Frame::HasModifier(TxnId txn) const {
  return std::find(modifiers.begin(), modifiers.end(), txn) != modifiers.end();
}

void Frame::AddModifier(TxnId txn) {
  if (!HasModifier(txn)) {
    modifiers.push_back(txn);
  }
}

void Frame::RemoveModifier(TxnId txn) {
  modifiers.erase(std::remove(modifiers.begin(), modifiers.end(), txn),
                  modifiers.end());
}

BufferPool::BufferPool(const Options& options, FetchFn fetch,
                       PropagateFn propagate)
    : options_(options),
      fetch_(std::move(fetch)),
      propagate_(std::move(propagate)) {}

Result<Frame*> BufferPool::Fetch(PageId page, bool* cache_hit) {
  auto it = frames_.find(page);
  if (it != frames_.end()) {
    if (cache_hit != nullptr) {
      *cache_hit = true;
    }
    ++stats_.hits;
    obs::Inc(hits_counter_);
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return &it->second;
  }
  if (cache_hit != nullptr) {
    *cache_hit = false;
  }
  ++stats_.misses;
  obs::Inc(misses_counter_);
  while (frames_.size() >= options_.capacity) {
    RDA_RETURN_IF_ERROR(EvictOne());
  }
  PageImage image;
  RDA_RETURN_IF_ERROR(fetch_(page, &image));
  Frame frame;
  frame.page = page;
  frame.payload = image.payload;
  frame.last_propagated = std::move(image.payload);
  frame.header = image.header;
  auto [inserted, ok] = frames_.emplace(page, std::move(frame));
  (void)ok;
  lru_.push_front(page);
  inserted->second.lru_pos = lru_.begin();
  return &inserted->second;
}

Frame* BufferPool::Lookup(PageId page) {
  auto it = frames_.find(page);
  return it == frames_.end() ? nullptr : &it->second;
}

Status BufferPool::EvictOne() {
  // Walk the recency list from the cold end: the first evictable frame is
  // exactly the minimum-recency victim the old full scan would have picked.
  Frame* victim = nullptr;
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    Frame& frame = frames_.find(*it)->second;
    if (frame.pins > 0) {
      continue;
    }
    if (frame.dirty && !frame.modifiers.empty() && !options_.allow_steal) {
      continue;  // no-STEAL: uncommitted modifications may not leave RAM.
    }
    victim = &frame;
    break;
  }
  if (victim == nullptr) {
    return Status::Busy("no evictable buffer frame");
  }
  if (victim->dirty) {
    if (!victim->modifiers.empty()) {
      ++stats_.steals;
      obs::Inc(steals_counter_);
      obs::TraceEvent event;
      event.subsystem = obs::Subsystem::kBuffer;
      event.kind = obs::EventKind::kSteal;
      event.page = victim->page;
      // A stolen frame can hold several uncommitted modifiers under record
      // locking; attribute the event to the first for traceability.
      event.txn = victim->modifiers.front();
      event.detail = static_cast<int64_t>(victim->modifiers.size());
      obs::Emit(trace_, event);
    }
    RDA_RETURN_IF_ERROR(PropagateFrame(victim));
  }
  ++stats_.evictions;
  obs::Inc(evictions_counter_);
  lru_.erase(victim->lru_pos);
  frames_.erase(victim->page);
  return Status::Ok();
}

Status BufferPool::PropagateFrame(Frame* frame) {
  if (!frame->dirty) {
    return Status::Ok();
  }
  RDA_RETURN_IF_ERROR(propagate_(frame));
  frame->last_propagated = frame->payload;
  frame->pending_mods.clear();
  frame->has_pending_before = false;
  frame->pending_before.clear();
  frame->dirty = false;
  return Status::Ok();
}

Status BufferPool::PropagateAllDirty() {
  // Deterministic order keeps tests and the simulator reproducible.
  std::vector<PageId> dirty = DirtyPages();
  std::sort(dirty.begin(), dirty.end());
  for (const PageId page : dirty) {
    Frame* frame = Lookup(page);
    if (frame != nullptr) {
      RDA_RETURN_IF_ERROR(PropagateFrame(frame));
    }
  }
  return Status::Ok();
}

void BufferPool::AttachObs(obs::ObsHub* hub) {
  trace_ = obs::TraceOf(hub);
  hits_counter_ = obs::GetCounter(hub, "buffer.hits");
  misses_counter_ = obs::GetCounter(hub, "buffer.misses");
  evictions_counter_ = obs::GetCounter(hub, "buffer.evictions");
  steals_counter_ = obs::GetCounter(hub, "buffer.steals");
}

void BufferPool::Discard(PageId page) {
  auto it = frames_.find(page);
  if (it == frames_.end()) {
    return;
  }
  lru_.erase(it->second.lru_pos);
  frames_.erase(it);
}

void BufferPool::LoseAll() {
  frames_.clear();
  lru_.clear();
}

std::vector<PageId> BufferPool::DirtyPages() const {
  std::vector<PageId> out;
  for (const auto& [page, frame] : frames_) {
    if (frame.dirty) {
      out.push_back(page);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PageId> BufferPool::ResidentPages() const {
  std::vector<PageId> out;
  for (const auto& [page, frame] : frames_) {
    out.push_back(page);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace rda
