#ifndef RDA_MODEL_PROBABILITIES_H_
#define RDA_MODEL_PROBABILITIES_H_

#include "model/params.h"

namespace rda::model {

// Probability that a modified page MUST be UNDO-logged when K pages,
// uniformly spread over the database, are to be written back by active
// transactions (paper Section 5.1, Equations 4/5). One page per parity
// group can be propagated without logging, so with E[X] = expected number
// of groups hit by the K pages:
//   p_log = 1 - E[X]/K = 1 - (S/(K N)) (1 - (1 - N/S)^K).
// Limits: K -> 0 gives 0 (a lone page is always first in its group);
// K -> inf gives 1.
double LogProbability(const ModelParams& p, double k);

// Probability that a page picked for replacement has been modified
// (not-FORCE algorithms, Section 5.2.2):
//   p_m = 1 - (1 - f_u p_u)^(1/(1-C)).
double ModifiedReplacementProbability(const ModelParams& p, double c);

// Probability that a given modified page is stolen from the buffer before
// EOT (Section 5.2.2):
//   p_s = 1 - (1 - 1/(B - C s))^((1-C) s (P-1)).
double StealProbability(const ModelParams& p, double c);

// Expected number of distinct buffer pages updated by the P f_u concurrent
// update transactions (Appendix):
//   s_u = B (1 - (1 - C s p_u / B)^(P f_u)).
double SharedBufferUpdatedPages(const ModelParams& p, double c);

// Proportion of replaced pages modified by concurrently executing
// transactions (Section 5.3.2): p_i = s_u / (B - C s).
double ConcurrentlyModifiedReplacementProbability(const ModelParams& p,
                                                  double c);

// Average record-log entry length (Section 5.3):
//   L = (d r + (s - d) e) / s.
double AvgLogEntryLength(const ModelParams& p);

// The paper's "log chain header" factor (p_l - p_l^n): probability weight
// for writing the chain head with the BOT record when some but not all of
// the n pages are logged.
double ChainTerm(double p_log, double n);

}  // namespace rda::model

#endif  // RDA_MODEL_PROBABILITIES_H_
