#ifndef RDA_MODEL_RELIABILITY_H_
#define RDA_MODEL_RELIABILITY_H_

#include <cstdint>

namespace rda::model {

// Reliability of the storage organizations the paper discusses (Section 1
// footnote: "Assuming an MTTF of 30,000 hours for each disk"). Standard
// Markov approximation with exponential failures (rate 1/mttf per disk) and
// repairs (rate 1/mttr): data is lost when a second, FATAL disk failure
// lands inside the repair window of the first.
struct ReliabilityParams {
  double disk_mttf_hours = 30000;  // The paper's footnote value.
  double repair_hours = 24;        // Replacement + rebuild window.
};

// Mean time to data loss of a mirrored pair (2 disks, loses data when the
// partner dies during repair): MTTF^2 / (2 * MTTR).
double MirroredPairMttdlHours(const ReliabilityParams& p);

// MTTDL of one parity group with `n` data disks and one parity disk
// (classic RAID-5 group): any second failure during repair is fatal.
double Raid5GroupMttdlHours(const ReliabilityParams& p, uint32_t n);

// MTTDL of one twin-parity group (`n` data disks + 2 parity twins). The
// group stores each datum once plus two parity pages, so it survives any
// single failure; during the repair window a second failure is fatal
// UNLESS the two failed disks are exactly the two parity twins (the data
// remains intact and both parities are recomputable).
double TwinGroupMttdlHours(const ReliabilityParams& p, uint32_t n);

// MTTDL of a whole array of `groups` independent groups (first group to
// die kills the array): MTTDL_group / groups. Only meaningful when groups
// occupy disjoint disks.
double ArrayMttdlHours(double group_mttdl_hours, uint32_t groups);

// MTTDL of one rotated-parity ARRAY of `num_disks` disks: because the
// parity (and twin) locations rotate per group, every pair of disks is a
// fatal pair for some group — loss rate D (D-1) MTTR / MTTF^2.
double RotatedArrayMttdlHours(const ReliabilityParams& p,
                              uint32_t num_disks);

// Storage overhead (redundant fraction of raw capacity) of each scheme,
// for comparison with the paper's "(100/N)%" discussion.
double MirroringOverheadPercent();                 // 100%.
double Raid5OverheadPercent(uint32_t n);           // 100/N %.
double TwinOverheadPercent(uint32_t n);            // 200/N %.

}  // namespace rda::model

#endif  // RDA_MODEL_RELIABILITY_H_
