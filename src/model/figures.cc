#include "model/figures.h"

#include <iomanip>
#include <ostream>

namespace rda::model {

const char* EnvironmentName(Environment env) {
  switch (env) {
    case Environment::kHighUpdate:
      return "high update frequency";
    case Environment::kHighRetrieval:
      return "high retrieval frequency";
  }
  return "unknown";
}

const char* AlgorithmName(AlgorithmClass algorithm) {
  switch (algorithm) {
    case AlgorithmClass::kPageForceToc:
      return "page logging, notATOMIC/STEAL/FORCE/TOC";
    case AlgorithmClass::kPageNoForceAcc:
      return "page logging, notATOMIC/STEAL/notFORCE/ACC";
    case AlgorithmClass::kRecordForceToc:
      return "record logging, FORCE/TOC";
    case AlgorithmClass::kRecordNoForceAcc:
      return "record logging, notFORCE/ACC";
  }
  return "unknown";
}

ModelParams ParamsFor(Environment env) {
  return env == Environment::kHighUpdate ? ModelParams::HighUpdate()
                                         : ModelParams::HighRetrieval();
}

CostBreakdown Evaluate(AlgorithmClass algorithm, const ModelParams& p,
                       double c, bool rda) {
  switch (algorithm) {
    case AlgorithmClass::kPageForceToc:
      return EvalPageForceToc(p, c, rda);
    case AlgorithmClass::kPageNoForceAcc:
      return EvalPageNoForceAcc(p, c, rda);
    case AlgorithmClass::kRecordForceToc:
      return EvalRecordForceToc(p, c, rda);
    case AlgorithmClass::kRecordNoForceAcc:
      return EvalRecordNoForceAcc(p, c, rda);
  }
  return CostBreakdown{};
}

std::vector<ThroughputPoint> FigureSeries(AlgorithmClass algorithm,
                                          Environment env, int num_points) {
  const ModelParams params = ParamsFor(env);
  std::vector<ThroughputPoint> series;
  series.reserve(num_points);
  for (int i = 0; i < num_points; ++i) {
    ThroughputPoint point;
    point.c = static_cast<double>(i) / (num_points - 1);
    point.baseline = Evaluate(algorithm, params, point.c, false).throughput;
    point.rda = Evaluate(algorithm, params, point.c, true).throughput;
    point.gain_percent =
        point.baseline > 0
            ? 100.0 * (point.rda - point.baseline) / point.baseline
            : 0.0;
    series.push_back(point);
  }
  return series;
}

std::vector<BenefitPoint> Figure13Series(
    double c, const std::vector<double>& s_values) {
  std::vector<BenefitPoint> series;
  series.reserve(s_values.size());
  for (const double s : s_values) {
    ModelParams params = ModelParams::HighUpdate();
    params.s = s;
    const double baseline =
        EvalRecordNoForceAcc(params, c, false).throughput;
    const double rda = EvalRecordNoForceAcc(params, c, true).throughput;
    BenefitPoint point;
    point.s = s;
    point.gain_percent =
        baseline > 0 ? 100.0 * (rda - baseline) / baseline : 0.0;
    series.push_back(point);
  }
  return series;
}

void PrintFigureTable(std::ostream& os, AlgorithmClass algorithm,
                      Environment env,
                      const std::vector<ThroughputPoint>& series) {
  os << "Algorithm:   " << AlgorithmName(algorithm) << "\n"
     << "Environment: " << EnvironmentName(env) << "\n"
     << std::setw(6) << "C" << std::setw(14) << "no-RDA r_t" << std::setw(14)
     << "RDA r_t" << std::setw(10) << "gain%" << "\n";
  for (const ThroughputPoint& point : series) {
    os << std::fixed << std::setprecision(2) << std::setw(6) << point.c
       << std::setprecision(0) << std::setw(14) << point.baseline
       << std::setw(14) << point.rda << std::setprecision(1) << std::setw(10)
       << point.gain_percent << "\n";
  }
}

}  // namespace rda::model
