#include "model/throughput.h"

#include <cmath>

namespace rda::model {

double MeanTransactionCost(const ModelParams& p, double c_r, double c_u) {
  return (1.0 - p.f_u) * c_r + p.f_u * c_u;
}

double TocThroughput(const ModelParams& p, double c_t, double c_s) {
  if (c_t <= 0) {
    return 0;
  }
  return (p.T - c_s) / c_t;
}

double AccThroughput(const ModelParams& p, double c_t, double c_c, double i,
                     const std::function<double(double)>& c_s_of_interval) {
  if (c_t <= 0 || i <= 0) {
    return 0;
  }
  const double c_s = c_s_of_interval(i);
  const double usable = p.T - c_s - c_c * (p.T - c_s - i / 2.0) / i;
  return usable / c_t;
}

double OptimizeAccThroughput(
    const ModelParams& p, double c_t, double c_c,
    const std::function<double(double)>& c_s_of_interval,
    double* best_interval, double* c_s_at_best) {
  // Golden-section search; r_t(I) is unimodal: dominated by c_c/I for small
  // I and by the growing crash-recovery cost for large I.
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double lo = std::max(1.0, c_t);
  double hi = p.T / 2.0;
  double x1 = hi - phi * (hi - lo);
  double x2 = lo + phi * (hi - lo);
  double f1 = AccThroughput(p, c_t, c_c, x1, c_s_of_interval);
  double f2 = AccThroughput(p, c_t, c_c, x2, c_s_of_interval);
  for (int iter = 0; iter < 200 && (hi - lo) > 1e-3 * hi; ++iter) {
    if (f1 < f2) {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + phi * (hi - lo);
      f2 = AccThroughput(p, c_t, c_c, x2, c_s_of_interval);
    } else {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - phi * (hi - lo);
      f1 = AccThroughput(p, c_t, c_c, x1, c_s_of_interval);
    }
  }
  const double best = (lo + hi) / 2.0;
  if (best_interval != nullptr) {
    *best_interval = best;
  }
  if (c_s_at_best != nullptr) {
    *c_s_at_best = c_s_of_interval(best);
  }
  return AccThroughput(p, c_t, c_c, best, c_s_of_interval);
}

double ClosedFormOptimalInterval(const ModelParams& p, double c_t, double c_c,
                                 double redo_per_txn, double fixed_c_s) {
  if (redo_per_txn <= 0 || p.f_u <= 0) {
    return p.T / 2.0;
  }
  return std::sqrt(2.0 * c_t * c_c * (p.T - fixed_c_s) /
                   (p.f_u * redo_per_txn));
}

}  // namespace rda::model
