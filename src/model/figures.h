#ifndef RDA_MODEL_FIGURES_H_
#define RDA_MODEL_FIGURES_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "model/algorithms.h"
#include "model/params.h"

namespace rda::model {

enum class Environment { kHighUpdate, kHighRetrieval };
enum class AlgorithmClass {
  kPageForceToc,      // Figure 9.
  kPageNoForceAcc,    // Figure 10.
  kRecordForceToc,    // Figure 11.
  kRecordNoForceAcc,  // Figures 12 and 13.
};

const char* EnvironmentName(Environment env);
const char* AlgorithmName(AlgorithmClass algorithm);
ModelParams ParamsFor(Environment env);

// Dispatches to the right Section-5 evaluator.
CostBreakdown Evaluate(AlgorithmClass algorithm, const ModelParams& p,
                       double c, bool rda);

// One point of a throughput-vs-communality curve pair.
struct ThroughputPoint {
  double c = 0;
  double baseline = 0;      // r_t without RDA.
  double rda = 0;           // r_t with RDA recovery.
  double gain_percent = 0;  // 100 (rda - baseline) / baseline.
};

// The paper's Figures 9-12: throughput as a function of C in [0, 1] for
// one algorithm class in one environment, with and without RDA.
std::vector<ThroughputPoint> FigureSeries(AlgorithmClass algorithm,
                                          Environment env, int num_points);

// One point of Figure 13 (benefit vs transaction size).
struct BenefitPoint {
  double s = 0;
  double gain_percent = 0;
};

// Figure 13: percent RDA gain for the record-logging notFORCE/ACC
// algorithm in the high-update environment at communality `c`, as s sweeps
// over [5, 45].
std::vector<BenefitPoint> Figure13Series(double c,
                                         const std::vector<double>& s_values);

// Shared table printer for the bench binaries: a paper-figure-style table
// with one row per C value.
void PrintFigureTable(std::ostream& os, AlgorithmClass algorithm,
                      Environment env,
                      const std::vector<ThroughputPoint>& series);

}  // namespace rda::model

#endif  // RDA_MODEL_FIGURES_H_
