#include "model/probabilities.h"

#include <algorithm>
#include <cmath>

namespace rda::model {
namespace {

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

}  // namespace

double LogProbability(const ModelParams& p, double k) {
  if (k <= 0) {
    return 0.0;
  }
  const double groups = p.S / p.N;
  const double hit = groups * (1.0 - std::pow(1.0 - p.N / p.S, k));
  return Clamp01(1.0 - hit / k);
}

double ModifiedReplacementProbability(const ModelParams& p, double c) {
  c = std::min(c, 0.999);  // The exponent diverges at C = 1.
  return Clamp01(1.0 - std::pow(1.0 - p.f_u * p.p_u, 1.0 / (1.0 - c)));
}

double StealProbability(const ModelParams& p, double c) {
  const double frames = p.B - c * p.s;
  if (frames <= 1.0) {
    return 1.0;
  }
  const double refs = (1.0 - c) * p.s * (p.P - 1.0);
  return Clamp01(1.0 - std::pow(1.0 - 1.0 / frames, refs));
}

double SharedBufferUpdatedPages(const ModelParams& p, double c) {
  const double per_txn = c * p.s * p.p_u / p.B;
  if (per_txn >= 1.0) {
    return p.B;
  }
  return p.B * (1.0 - std::pow(1.0 - per_txn, p.P * p.f_u));
}

double ConcurrentlyModifiedReplacementProbability(const ModelParams& p,
                                                  double c) {
  const double frames = p.B - c * p.s;
  if (frames <= 0.0) {
    return 1.0;
  }
  return Clamp01(SharedBufferUpdatedPages(p, c) / frames);
}

double AvgLogEntryLength(const ModelParams& p) {
  return (p.d * p.r + (p.s - p.d) * p.e) / p.s;
}

double ChainTerm(double p_log, double n) {
  if (n <= 0) {
    return 0.0;
  }
  return std::max(0.0, p_log - std::pow(p_log, n));
}

}  // namespace rda::model
