#ifndef RDA_MODEL_PARAMS_H_
#define RDA_MODEL_PARAMS_H_

namespace rda::model {

// Parameters of the paper's analytical model (Section 5), with the values
// the paper takes from Reuter, "Performance analysis of recovery
// techniques", TODS 1984 ([14] in the paper).
//
// All cost quantities are measured in page transfers; T is the length of an
// availability interval in page transfers; throughput r_t is transactions
// per availability interval.
struct ModelParams {
  double B = 300;     // Buffer size in pages.
  double S = 5000;    // Database size in pages.
  double N = 10;      // Data pages per parity group.
  double P = 6;       // Concurrently executing transactions.
  double p_b = 0.01;  // Probability a transaction aborts.
  double T = 5e6;     // Availability interval (page transfers).

  double s = 40;     // Pages referenced per transaction.
  double f_u = 0.8;  // Fraction of update transactions.
  double p_u = 0.9;  // Probability a referenced page is updated.

  // Record-logging parameters (Section 5.3).
  double d = 3;       // Update statements per transaction.
  double r = 100;     // Length of a long log entry (bytes).
  double e = 10;      // Length of a short log entry (bytes).
  double l_bc = 16;   // Length of BOT and EOT records (bytes).
  double l_p = 2020;  // Length of a physical page (bytes).
  double l_h = 4;     // Length of a log chain header (bytes).

  // The paper evaluates two environments (Figures 9-12). The assignment of
  // s to the environments is recovered from the published Figure 9 axis
  // values: with s=10/f_u=0.8/p_u=0.9 the high-update curves reproduce the
  // printed ticks (48800 at C=0 and 54500 at C=1 for the baseline, 77300
  // for RDA at C=1), and with s=40/f_u=0.1/p_u=0.3 the high-retrieval
  // baseline lands on 91800 at C=0. See EXPERIMENTS.md.
  static ModelParams HighUpdate() {
    ModelParams p;
    p.s = 10;
    p.f_u = 0.8;
    p.p_u = 0.9;
    p.d = 3;
    return p;
  }

  static ModelParams HighRetrieval() {
    ModelParams p;
    p.s = 40;
    p.f_u = 0.1;
    p.p_u = 0.3;
    p.d = 8;
    return p;
  }
};

}  // namespace rda::model

#endif  // RDA_MODEL_PARAMS_H_
