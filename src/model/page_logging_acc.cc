#include "model/algorithms.h"
#include "model/probabilities.h"

namespace rda::model {

// Section 5.2.2: page logging, notFORCE, action-consistent checkpoints.
// Before- and after-images go to the log; modified pages stay in the
// buffer until replaced (cost charged through p_m) or until a checkpoint
// propagates them.
CostBreakdown EvalPageNoForceAcc(const ModelParams& p, double c, bool rda) {
  CostBreakdown out;
  const double sp = p.s * p.p_u;
  const double pf = p.P * p.f_u;
  const double pm = ModifiedReplacementProbability(p, c);

  double undo_active_per_txn = 0;  // UNDO work per active txn at a crash.

  if (!rda) {
    // c_l = 4 (2 s p_u + 2): before- and after-images of every modified
    // page plus BOT/EOT.
    out.c_l = 4.0 * (2.0 * sp + 2.0);

    // Replacement writes of modified pages cost a = 4.
    out.c_r = p.s * (1.0 - c) + 4.0 * p.s * (1.0 - c) * pm;

    // Backout reads twice as much log (before- AND after-images are
    // interleaved); only pages already stolen (1 - C proxy) need disk
    // undo at cost 4.
    out.c_b = 2.0 * (sp / 2.0) * pf + 4.0 * (sp / 2.0) * (1.0 - c) + 4.0;

    // ACC checkpoint: propagate every modified buffer page (B p_m of them)
    // at cost 4, plus the checkpoint record.
    out.c_c = 4.0 * (p.B * pm + 2.0);

    undo_active_per_txn = out.c_l / 4.0 + 4.0 * sp;
  } else {
    const double ps = StealProbability(p, c);
    // K = P s f_u p_u p_s / 2 (only stolen pages are candidates).
    const double k = pf * sp * ps / 2.0;
    const double pl = LogProbability(p, k);
    out.p_log = pl;
    const double chain = ChainTerm(pl, sp * ps);

    // Before-images are saved only for pages that are stolen AND covered
    // by parity: the logged volume shrinks from 2 s p_u to
    // s p_u (2 - p_s (1 - p_log)).
    out.c_l = 4.0 * (sp * (2.0 - ps * (1.0 - pl)) + 2.0) + 4.0 * chain;

    // Replacement writes pay the twin update for logged steals.
    out.c_r = p.s * (1.0 - c) + (4.0 + 2.0 * pl) * p.s * (1.0 - c) * pm;

    // Backout: reduced log read; stolen pages are undone via parity (6) or
    // log (5); unstolen-but-evicted committed-path writes keep cost
    // (4 + 2 p_log).
    out.c_b = (sp / 2.0) * pf * (2.0 - ps * (1.0 - pl)) +
              (sp / 2.0) * ((4.0 + 2.0 * pl) * (1.0 - c) * (1.0 - ps) +
                            ps * (6.0 * (1.0 - pl) + 5.0 * pl)) +
              4.0;

    // Checkpoint propagation pays the twin update as well.
    out.c_c = (4.0 + 2.0 * pl) * p.B * pm + 8.0;

    undo_active_per_txn =
        out.c_l / 4.0 +
        (sp / 2.0) * (ps * (6.0 * (1.0 - pl) + 5.0 * pl) +
                      (1.0 - ps) * (1.0 - c) * 4.0);
  }

  // Equation 3: the update transaction pays the same fault/replacement
  // costs as a retrieval plus logging and the abort-weighted backout.
  out.c_u = out.c_r + out.c_l + p.p_b * out.c_b;
  out.c_t = MeanTransactionCost(p, out.c_r, out.c_u);

  // Crash recovery: REDO the transactions committed since the last
  // checkpoint (on average r_c / 2 = I / (2 c_t) of them) and UNDO the P
  // active ones; with RDA add S/N for the Current_Parity bit map.
  const double redo_per_txn = out.c_l / 4.0 + 4.0 * sp;
  const double fixed = pf * undo_active_per_txn + (rda ? p.S / p.N : 0.0);
  const double c_t = out.c_t;
  const double f_u = p.f_u;
  auto c_s_of_interval = [=](double interval) {
    return (interval / (2.0 * c_t)) * f_u * redo_per_txn + fixed;
  };
  out.throughput = OptimizeAccThroughput(p, out.c_t, out.c_c,
                                         c_s_of_interval, &out.interval,
                                         &out.c_s);
  return out;
}

}  // namespace rda::model
