#include "model/algorithms.h"
#include "model/probabilities.h"

namespace rda::model {

// Section 5.2.1: page logging, FORCE at EOT, transaction-oriented
// checkpoints (no separate checkpoint cost, c_c = 0; modified pages are
// never re-referenced after EOT so p_m = 0 and the write-back cost is
// folded into c_l).
CostBreakdown EvalPageForceToc(const ModelParams& p, double c, bool rda) {
  CostBreakdown out;
  const double sp = p.s * p.p_u;  // Pages modified per update transaction.
  const double pf = p.P * p.f_u;  // Concurrent update transactions.

  // Retrieval cost: faults for pages not found in the buffer (Equation 2
  // with p_m = 0).
  out.c_r = p.s * (1.0 - c);

  if (!rda) {
    // c_l = 3 s p_u            -- write each modified page back (a = 3)
    //     + 4 (2 s p_u)        -- before- and after-images to the UNDO and
    //                             REDO log files (4 transfers per page)
    //     + 4 * 4              -- BOT and EOT records to each log file.
    out.c_l = 3.0 * sp + 4.0 * (2.0 * sp) + 16.0;

    // Backout: read the log back to BOT through the interleaved records of
    // the other concurrent transactions (assumed halfway done), re-write
    // the aborted transaction's pages, plus BOT/EOT handling.
    out.c_b = pf * (sp / 2.0) + 4.0 * (sp / 2.0) + 4.0;

    // Crash recovery: for each active update transaction, read its log
    // (s p_u images + BOT/EOT) and write back the before-images of the
    // half of its pages already propagated.
    out.c_s = pf * (sp + 2.0) + 4.0 * pf * (sp / 2.0);
  } else {
    // K = half the pages written by concurrent update transactions
    // (Section 5.2.1).
    const double k = pf * sp / 2.0;
    const double pl = LogProbability(p, k);
    out.p_log = pl;
    const double chain = ChainTerm(pl, sp);

    // c'_l: writes cost 3 + 2 p_log (a logged page goes to a dirty group,
    // so both twins are updated); the REDO file still takes every
    // after-image but the UNDO file only the p_log fraction; the last term
    // is the log chain header written with the BOT record.
    out.c_l = (3.0 + 2.0 * pl) * sp + 4.0 * (sp + sp * pl + 4.0) +
              4.0 * chain;

    // c'_b: less log to read (only logged images exist); undoing a page
    // costs 6 transfers via parity (probability 1 - p_log) or 5 via the
    // log.
    out.c_b = pf * (sp * pl / 2.0) + pf * chain + pf +
              (sp / 2.0) * (6.0 * (1.0 - pl) + 5.0 * pl) + 4.0;

    // c'_s: same structure as c_s plus S/N to reconstruct the
    // Current_Parity bit map by reading the twin headers of every group.
    out.c_s = pf * (sp * pl + 2.0 * chain + 2.0) +
              pf * (sp / 2.0) * (6.0 * (1.0 - pl) + 5.0 * pl) + p.S / p.N;
  }

  out.c_u = p.s * (1.0 - c) + out.c_l + p.p_b * out.c_b;  // Equation 3.
  out.c_t = MeanTransactionCost(p, out.c_r, out.c_u);
  out.c_c = 0;
  out.interval = 0;
  out.throughput = TocThroughput(p, out.c_t, out.c_s);
  return out;
}

}  // namespace rda::model
