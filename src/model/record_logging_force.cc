#include "model/algorithms.h"
#include "model/probabilities.h"

namespace rda::model {

// Section 5.3.1: record logging, FORCE / TOC. Only modified records are
// logged; log volume is measured in bytes and converted to pages via l_p.
// Record locking lets concurrent transactions share pages, so the number
// of distinct modified buffer pages is s_u (Appendix) and K = s_u / 2.
CostBreakdown EvalRecordForceToc(const ModelParams& p, double c, bool rda) {
  CostBreakdown out;
  const double sp = p.s * p.p_u;  // Records modified per update txn.
  const double pf = p.P * p.f_u;
  const double el = AvgLogEntryLength(p);  // L.

  out.c_r = p.s * (1.0 - c);

  if (!rda) {
    // c_l = 3 s p_u + 4 * 2 (2 l_bc + s p_u (l_bc + L)) / l_p:
    // force the modified pages, and write (BOT + EOT + one entry per
    // updated record) to both the UNDO and REDO log files.
    out.c_l = 3.0 * sp +
              8.0 * (2.0 * p.l_bc + sp * (p.l_bc + el)) / p.l_p;

    // Backout: read back through the UNDO log (half the concurrent
    // volume), then re-write the transaction's pages.
    out.c_b = pf * (p.l_bc + sp * (p.l_bc + el) / 2.0) / p.l_p +
              4.0 * (sp / 2.0) + 4.0;

    out.c_s = pf * (2.0 * p.l_bc + sp * (p.l_bc + el)) / p.l_p +
              4.0 * pf * (sp / 2.0);
  } else {
    const double su = SharedBufferUpdatedPages(p, c);
    const double pl = LogProbability(p, su / 2.0);
    out.p_log = pl;
    const double chain = ChainTerm(pl, sp);

    // c'_l: forcing costs 3 + 2 p_log per page; the REDO file is unchanged
    // while the UNDO file shrinks to the p_log fraction plus the chain
    // header (l_bc + l_h).
    out.c_l = (3.0 + 2.0 * pl) * sp +
              4.0 * (2.0 * p.l_bc + sp * (p.l_bc + el)) / p.l_p +
              4.0 * (2.0 * p.l_bc + sp * (p.l_bc + el) * pl +
                     (p.l_bc + p.l_h) * chain) / p.l_p;

    out.c_b = pf * (p.l_bc + sp * (p.l_bc + el) * pl / 2.0 +
                    (p.l_bc + p.l_h) * chain) / p.l_p +
              (sp / 2.0) * (6.0 * (1.0 - pl) + 5.0 * pl) + 4.0;

    out.c_s = pf * (2.0 * p.l_bc + sp * (p.l_bc + el) * pl +
                    2.0 * (p.l_bc + p.l_h) * chain) / p.l_p +
              pf * (sp / 2.0) * (6.0 * (1.0 - pl) + 5.0 * pl) + p.S / p.N;
  }

  out.c_u = out.c_r + out.c_l + p.p_b * out.c_b;
  out.c_t = MeanTransactionCost(p, out.c_r, out.c_u);
  out.c_c = 0;
  out.interval = 0;
  out.throughput = TocThroughput(p, out.c_t, out.c_s);
  return out;
}

}  // namespace rda::model
