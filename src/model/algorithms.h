#ifndef RDA_MODEL_ALGORITHMS_H_
#define RDA_MODEL_ALGORITHMS_H_

#include "model/params.h"
#include "model/throughput.h"

namespace rda::model {

// The four recovery-algorithm classes the paper evaluates, each with and
// without RDA recovery. `c` is the communality C in [0, 1]; `rda` selects
// the twin-page variant. Every function fills a complete CostBreakdown,
// including the optimal checkpoint interval for the ACC algorithms.
//
// Conventions shared by all evaluators (see DESIGN.md Section 5 and
// EXPERIMENTS.md for the OCR-ambiguity notes):
//  * p_log is the paper's p_l: probability a modified page must be logged
//    (equivalently: its parity group is already dirty). A page that must be
//    logged is written to a dirty group, which updates BOTH parity twins —
//    hence the write cost 3 + 2 p_log instead of a = 3.
//  * Undoing one page costs 6 transfers via parity and 5 via the log
//    (Section 5.2.1); the traditional algorithms pay 4 (a plain re-write).
//  * Log pages are written at cost 4 per page (UNDO and REDO files, each
//    duplexed), matching the paper's coefficients.

// Section 5.2.1 — page logging, notATOMIC / STEAL / FORCE / TOC (Figure 9).
CostBreakdown EvalPageForceToc(const ModelParams& p, double c, bool rda);

// Section 5.2.2 — page logging, notATOMIC / STEAL / notFORCE / ACC
// (Figure 10).
CostBreakdown EvalPageNoForceAcc(const ModelParams& p, double c, bool rda);

// Section 5.3.1 — record logging, FORCE / TOC (Figure 11).
CostBreakdown EvalRecordForceToc(const ModelParams& p, double c, bool rda);

// Section 5.3.2 — record logging, notFORCE / ACC (Figures 12 and 13).
CostBreakdown EvalRecordNoForceAcc(const ModelParams& p, double c, bool rda);

}  // namespace rda::model

#endif  // RDA_MODEL_ALGORITHMS_H_
