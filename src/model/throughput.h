#ifndef RDA_MODEL_THROUGHPUT_H_
#define RDA_MODEL_THROUGHPUT_H_

#include <functional>

#include "model/params.h"

namespace rda::model {

// All cost components of one algorithm configuration at one communality
// value, in page transfers (paper Section 5).
struct CostBreakdown {
  double p_log = 0;   // Probability a modified page must be UNDO-logged.
  double c_r = 0;     // Cost of a retrieval transaction.
  double c_u = 0;     // Cost of an update transaction.
  double c_l = 0;     // Logging component of c_u.
  double c_b = 0;     // Transaction backout (abort) cost.
  double c_c = 0;     // Cost of generating one checkpoint (0 for TOC).
  double c_s = 0;     // Crash-recovery cost per availability interval.
  double c_t = 0;     // Mean transaction cost: (1-f_u) c_r + f_u c_u.
  double interval = 0;    // Optimal checkpoint interval I (0 for TOC).
  double throughput = 0;  // r_t, transactions per availability interval.
};

// Mean transaction cost.
double MeanTransactionCost(const ModelParams& p, double c_r, double c_u);

// Throughput of a transaction-oriented-checkpoint (FORCE/TOC) algorithm:
// no separate checkpoints, r_t = (T - c_s) / c_t.
double TocThroughput(const ModelParams& p, double c_t, double c_s);

// Throughput of an ACC-checkpointing algorithm at checkpoint interval I,
// where crash-recovery cost depends on I through r_c = I / c_t:
//   r_t(I) = (T - c_s(I) - c_c (T - c_s(I) - I/2) / I) / c_t.
double AccThroughput(const ModelParams& p, double c_t, double c_c, double i,
                     const std::function<double(double)>& c_s_of_interval);

// Maximizes AccThroughput over I by golden-section search; returns the
// optimal interval via *best_interval and the crash cost at the optimum via
// *c_s_at_best.
double OptimizeAccThroughput(
    const ModelParams& p, double c_t, double c_c,
    const std::function<double(double)>& c_s_of_interval,
    double* best_interval, double* c_s_at_best);

// Closed-form optimal interval (paper Equation 1 solved with
// c_s(I) = (I / (2 c_t)) f_u redo_per_txn + fixed):
//   I* = sqrt(2 c_t c_c (T - fixed) / (f_u redo_per_txn)).
// Used by tests to validate the numeric optimizer.
double ClosedFormOptimalInterval(const ModelParams& p, double c_t, double c_c,
                                 double redo_per_txn, double fixed_c_s);

}  // namespace rda::model

#endif  // RDA_MODEL_THROUGHPUT_H_
