#include "model/algorithms.h"
#include "model/probabilities.h"

namespace rda::model {

// Section 5.3.2: record logging, notFORCE / ACC — the paper's best
// traditional algorithm, and the configuration of Figures 12 and 13.
//
// Stealing a page modified by concurrently executing transactions requires
// their records to be logged first; the proportion of such replacement
// victims is p_i = s_u / (B - C s), adding 2 p_i to the replacement-write
// factor (2 p_i p_log with RDA — the main lever of the RDA gain here).
CostBreakdown EvalRecordNoForceAcc(const ModelParams& p, double c, bool rda) {
  CostBreakdown out;
  const double sp = p.s * p.p_u;
  const double pf = p.P * p.f_u;
  const double el = AvgLogEntryLength(p);
  const double pm = ModifiedReplacementProbability(p, c);
  const double pi = ConcurrentlyModifiedReplacementProbability(p, c);
  const double ps = StealProbability(p, c);
  const double su = SharedBufferUpdatedPages(p, c);

  double undo_active_per_txn = 0;

  if (!rda) {
    // Before- and after-images (2L per record) plus BOT/EOT, bytes to
    // pages.
    out.c_l = 4.0 * (2.0 * p.l_bc + sp * (p.l_bc + 2.0 * el)) / p.l_p;

    out.c_r = p.s * (1.0 - c) +
              4.0 * p.s * (1.0 - c) * (pm + 2.0 * pi);

    out.c_b = pf * (out.c_l / 8.0) + 4.0 * (sp / 2.0) * (1.0 - c) + 4.0;

    out.c_c = 4.0 * (p.B * pm + 2.0);

    undo_active_per_txn = out.c_l / 4.0 + 4.0 * sp;
  } else {
    const double pl = LogProbability(p, su * ps / 2.0);
    out.p_log = pl;
    const double chain = ChainTerm(pl, sp * ps);

    // Stolen-and-covered records skip the before-image: volume factor
    // L (2 - p_s (1 - p_log)).
    out.c_l = 4.0 * (2.0 * p.l_bc +
                     sp * (p.l_bc + el * (2.0 - ps * (1.0 - pl))) +
                     (p.l_bc + p.l_h) * chain) / p.l_p;

    out.c_r = p.s * (1.0 - c) +
              4.0 * p.s * (1.0 - c) * (pm + 2.0 * pi * pl);

    out.c_b = pf * (out.c_l / 8.0) +
              (sp / 2.0) * ((4.0 + 2.0 * pl) * (1.0 - c) * (1.0 - ps) +
                            ps * (6.0 * (1.0 - pl) + 5.0 * pl)) +
              4.0;

    out.c_c = (4.0 + 2.0 * pl) * p.B * pm + 8.0;

    undo_active_per_txn =
        out.c_l / 4.0 +
        (sp / 2.0) * (ps * (6.0 * (1.0 - pl) + 5.0 * pl) +
                      (1.0 - ps) * (1.0 - c) * 4.0);
  }

  out.c_u = out.c_r + out.c_l + p.p_b * out.c_b;
  out.c_t = MeanTransactionCost(p, out.c_r, out.c_u);

  const double redo_per_txn = out.c_l / 4.0 + 4.0 * sp;
  const double fixed = pf * undo_active_per_txn + (rda ? p.S / p.N : 0.0);
  const double c_t = out.c_t;
  const double f_u = p.f_u;
  auto c_s_of_interval = [=](double interval) {
    return (interval / (2.0 * c_t)) * f_u * redo_per_txn + fixed;
  };
  out.throughput = OptimizeAccThroughput(p, out.c_t, out.c_c,
                                         c_s_of_interval, &out.interval,
                                         &out.c_s);
  return out;
}

}  // namespace rda::model
