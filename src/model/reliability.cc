#include "model/reliability.h"

namespace rda::model {

double MirroredPairMttdlHours(const ReliabilityParams& p) {
  return p.disk_mttf_hours * p.disk_mttf_hours / (2.0 * p.repair_hours);
}

double Raid5GroupMttdlHours(const ReliabilityParams& p, uint32_t n) {
  // n + 1 disks; after any first failure, every one of the remaining n
  // disks is a fatal partner during the repair window:
  //   loss rate = (n+1) n MTTR / MTTF^2.
  const double mttf = p.disk_mttf_hours;
  return mttf * mttf /
         (static_cast<double>(n) * (n + 1.0) * p.repair_hours);
}

double TwinGroupMttdlHours(const ReliabilityParams& p, uint32_t n) {
  // n + 2 disks, but not every second failure is fatal:
  //  * first failure = data disk (n of them): fatal partners are the other
  //    n-1 data disks plus the CONSISTENT twin (the stale twin's loss is
  //    survivable) -> n fatal partners;
  //  * first failure = consistent twin: data intact; only a data-disk loss
  //    before the recompute finishes is fatal -> n fatal partners;
  //  * first failure = obsolete twin: nothing else is fatal -> 0.
  // Summed loss rate = (n*n + 1*n + 1*0) MTTR / MTTF^2 = n (n+1) MTTR /
  // MTTF^2 — the same MTTDL as the (n+1)-disk RAID-5 group: the twin
  // scheme's extra disk costs no reliability while buying the undo
  // capability.
  const double mttf = p.disk_mttf_hours;
  return mttf * mttf /
         (static_cast<double>(n) * (n + 1.0) * p.repair_hours);
}

double ArrayMttdlHours(double group_mttdl_hours, uint32_t groups) {
  return groups == 0 ? 0.0 : group_mttdl_hours / groups;
}

double RotatedArrayMttdlHours(const ReliabilityParams& p,
                              uint32_t num_disks) {
  if (num_disks < 2) {
    return p.disk_mttf_hours;
  }
  const double mttf = p.disk_mttf_hours;
  return mttf * mttf / (static_cast<double>(num_disks) *
                        (num_disks - 1.0) * p.repair_hours);
}

double MirroringOverheadPercent() { return 100.0; }

double Raid5OverheadPercent(uint32_t n) {
  return n == 0 ? 0.0 : 100.0 / n;
}

double TwinOverheadPercent(uint32_t n) {
  return n == 0 ? 0.0 : 200.0 / n;
}

}  // namespace rda::model
