#include "core/maintenance_service.h"

#include <algorithm>
#include <string>
#include <utility>

namespace rda {

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kRebuilding:
      return "rebuilding";
  }
  return "unknown";
}

MaintenanceService::MaintenanceService(TwinParityManager* parity,
                                       const MaintenanceOptions& options)
    : parity_(parity),
      options_(options),
      rebuild_bucket_(options.rebuild_pages_per_sec),
      scrub_bucket_(options.scrub_pages_per_sec) {}

MaintenanceService::~MaintenanceService() { Stop(); }

void MaintenanceService::AttachObs(obs::ObsHub* hub) {
  hub_ = hub;
  trace_ = obs::TraceOf(hub);
  spans_ = obs::SpansOf(hub);
  flight_ = obs::FlightOf(hub);
  health_gauge_ = obs::GetGauge(hub, "maintenance.health");
  rebuilds_counter_ = obs::GetCounter(hub, "maintenance.rebuilds_completed");
  scrubs_counter_ = obs::GetCounter(hub, "maintenance.scrubs_completed");
  enqueued_counter_ = obs::GetCounter(hub, "maintenance.jobs_enqueued");
  cancelled_counter_ = obs::GetCounter(hub, "maintenance.jobs_cancelled");
  UpdateHealth();
}

void MaintenanceService::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) {
    return;
  }
  running_ = true;
  stop_requested_ = false;
  worker_ = std::thread([this] { WorkerLoop(); });
}

void MaintenanceService::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) {
      return;
    }
    stop_requested_ = true;
    queue_.clear();
    cancel_current_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  if (worker_.joinable()) {
    worker_.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool MaintenanceService::RequestRebuild(DiskId disk) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_ || stop_requested_) {
      return false;
    }
    for (const Job& job : queue_) {
      if (job.kind == Job::Kind::kRebuild && job.disk == disk) {
        return false;  // Already queued.
      }
    }
    queue_.push_back(Job{Job::Kind::kRebuild, disk});
  }
  obs::Inc(enqueued_counter_);
  cv_.notify_all();
  return true;
}

bool MaintenanceService::RequestScrub() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_ || stop_requested_) {
      return false;
    }
    for (const Job& job : queue_) {
      if (job.kind == Job::Kind::kScrub) {
        return false;
      }
    }
    queue_.push_back(Job{Job::Kind::kScrub, kInvalidDiskId});
  }
  obs::Inc(enqueued_counter_);
  cv_.notify_all();
  return true;
}

void MaintenanceService::OnEscalation(DiskId disk) {
  UpdateHealth();  // The disk just force-failed: healthy -> degraded.
  if (options_.auto_rebuild_on_escalation) {
    RequestRebuild(disk);
  }
}

void MaintenanceService::Pause() {
  paused_.store(true, std::memory_order_release);
}

void MaintenanceService::Resume() {
  paused_.store(false, std::memory_order_release);
  cv_.notify_all();
}

void MaintenanceService::CancelCurrent() {
  cancel_current_.store(true, std::memory_order_release);
  paused_.store(false, std::memory_order_release);
  cv_.notify_all();
}

void MaintenanceService::CancelAndDrain() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!running_) {
    return;
  }
  queue_.clear();
  cancel_current_.store(true, std::memory_order_release);
  paused_.store(false, std::memory_order_release);
  cv_.notify_all();
  cv_.wait(lock, [this] { return !busy_ && queue_.empty(); });
}

MaintenanceProgress MaintenanceService::Progress() {
  UpdateHealth();
  MaintenanceProgress progress;
  {
    std::lock_guard<std::mutex> lock(mu_);
    progress.running = running_;
    progress.busy = busy_;
    progress.jobs_queued = queue_.size();
  }
  progress.paused = paused_.load(std::memory_order_acquire);
  progress.rebuild_active = parity_->OnlineRebuildActive();
  if (progress.rebuild_active) {
    progress.rebuild_disk = parity_->online_rebuild_disk();
    progress.rebuild_groups_total = parity_->OnlineRebuildGroupsTotal();
    progress.rebuild_groups_remaining =
        parity_->OnlineRebuildGroupsRemaining();
  }
  progress.on_demand_repairs = parity_->OnlineOnDemandRepairs();
  progress.write_promotions = parity_->OnlineWritePromotions();
  progress.rebuilds_completed =
      rebuilds_completed_.load(std::memory_order_relaxed);
  progress.rebuilds_failed = rebuilds_failed_.load(std::memory_order_relaxed);
  progress.scrubs_completed =
      scrubs_completed_.load(std::memory_order_relaxed);
  progress.jobs_cancelled = jobs_cancelled_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    progress.health = health_;
  }
  return progress;
}

HealthState MaintenanceService::health() {
  UpdateHealth();
  std::lock_guard<std::mutex> lock(health_mu_);
  return health_;
}

void MaintenanceService::SetRebuildDoneCallback(
    std::function<void(const MediaRecoveryReport&)> callback) {
  std::lock_guard<std::mutex> lock(callback_mu_);
  rebuild_done_ = std::move(callback);
}

void MaintenanceService::UpdateHealth() {
  DiskArray* array = parity_->array();
  HealthState next = HealthState::kHealthy;
  bool job_running;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_running = busy_;
  }
  if (array->NumFailedDisks() > 0) {
    next = HealthState::kDegraded;
  } else if (parity_->OnlineRebuildActive() || job_running ||
             !array->RebuildingDisks().empty()) {
    next = HealthState::kRebuilding;
  }
  HealthState prev;
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    prev = health_;
    if (prev == next) {
      return;
    }
    health_ = next;
  }
  if (health_gauge_ != nullptr) {
    health_gauge_->Set(static_cast<int64_t>(next));
  }
  if (trace_ != nullptr) {
    obs::TraceEvent event;
    event.subsystem = obs::Subsystem::kRecovery;
    event.kind = obs::EventKind::kHealthChange;
    event.from_state = static_cast<uint8_t>(prev);
    event.to_state = static_cast<uint8_t>(next);
    trace_->Record(event);
  }
  if (next == HealthState::kDegraded) {
    obs::TriggerFlight(flight_, "array degraded: a disk failed");
  }
}

void MaintenanceService::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_requested_ || !queue_.empty(); });
      if (stop_requested_) {
        return;
      }
      job = queue_.front();
      queue_.pop_front();
      busy_ = true;
      cancel_current_.store(false, std::memory_order_release);
    }
    UpdateHealth();
    RunJob(job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      busy_ = false;
    }
    UpdateHealth();
    cv_.notify_all();  // Wake CancelAndDrain waiters.
  }
}

void MaintenanceService::RunJob(const Job& job) {
  obs::ScopedSpan span(spans_, obs::SpanKind::kMaintenanceJob,
                       /*histogram=*/nullptr,
                       static_cast<int64_t>(job.disk));
  if (job.kind == Job::Kind::kRebuild) {
    MediaRecovery media(parity_);
    OnlineRebuildOptions options;
    options.throttle =
        options_.rebuild_pages_per_sec != 0 ? &rebuild_bucket_ : nullptr;
    options.cancel = &cancel_current_;
    options.pause = &paused_;
    Result<MediaRecoveryReport> report = media.RebuildDiskOnline(job.disk,
                                                                 options);
    if (!report.ok()) {
      rebuilds_failed_.fetch_add(1, std::memory_order_relaxed);
      obs::TriggerFlight(flight_, "background rebuild of disk " +
                                      std::to_string(job.disk) +
                                      " failed: " +
                                      report.status().ToString());
      return;
    }
    if (!report->completed) {
      jobs_cancelled_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(cancelled_counter_);
      // The session stays active; a later RequestRebuild resumes it.
      return;
    }
    rebuilds_completed_.fetch_add(1, std::memory_order_relaxed);
    obs::Inc(rebuilds_counter_);
    std::function<void(const MediaRecoveryReport&)> done;
    {
      std::lock_guard<std::mutex> lock(callback_mu_);
      done = rebuild_done_;
    }
    if (done) {
      done(*report);
    }
    return;
  }
  ParityScrubber scrubber(parity_);
  if (options_.scrub_pages_per_sec != 0) {
    scrubber.SetThrottle(&scrub_bucket_);
  }
  Result<ScrubReport> report = scrubber.ScrubAll();
  if (report.ok()) {
    scrubs_completed_.fetch_add(1, std::memory_order_relaxed);
    obs::Inc(scrubs_counter_);
  }
}

}  // namespace rda
