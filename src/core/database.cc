#include "core/database.h"

#include "storage/data_page_meta.h"

#include <fstream>
#include <utility>

namespace rda {

Database::Database(const DatabaseOptions& options) : options_(options) {}

Result<std::unique_ptr<Database>> Database::Open(
    const DatabaseOptions& options) {
  DatabaseOptions opts = options;
  // The buffer and log operate on the same page size as the array.
  opts.buffer.page_size = opts.array.page_size;
  opts.log.page_size = opts.array.page_size;
  if (opts.txn.rda_undo && opts.array.parity_copies != 2) {
    return Status::InvalidArgument(
        "RDA undo recovery requires the twin-page scheme (parity_copies=2)");
  }
  if (!opts.txn.force && !opts.txn.log_after_images) {
    return Status::InvalidArgument(
        "notFORCE configurations need after-image logging for REDO");
  }

  std::unique_ptr<Database> db(new Database(opts));
  if (opts.recovery.recovery_threads > 1) {
    db->recovery_pool_ =
        std::make_unique<exec::WorkerPool>(opts.recovery.recovery_threads);
  }
  auto array = DiskArray::Create(opts.array);
  if (!array.ok()) {
    return array.status();
  }
  db->array_ = std::move(array).value();
  db->array_->SetIoPolicy(opts.io);
  db->parity_ = std::make_unique<TwinParityManager>(db->array_.get());
  RDA_RETURN_IF_ERROR(db->parity_->FormatArray());
  db->array_->ResetCounters();  // Formatting is not workload I/O.
  if (opts.fault.enabled) {
    // Armed after formatting so the clean initial image is fault-free.
    db->array_->ArmFaultInjection(opts.fault);
  }
  db->log_ = std::make_unique<LogManager>(opts.log);
  db->locks_ = std::make_unique<LockManager>();
  db->txn_manager_ = std::make_unique<TransactionManager>(
      opts.txn, db->parity_.get(), db->log_.get(), db->locks_.get(),
      opts.buffer);
  db->checkpointer_ = std::make_unique<Checkpointer>(db->txn_manager_.get(),
                                                     db->log_.get());
  db->archive_ = std::make_unique<ArchiveManager>(
      db->txn_manager_.get(), db->parity_.get(), db->log_.get(),
      db->recovery_pool_.get());
  // Attach observability last, after formatting: format I/O is not workload
  // I/O, and the obs counters should match the freshly reset array counters.
  if (opts.obs.enable_metrics || opts.obs.enable_trace ||
      opts.obs.enable_spans) {
    db->obs_ = std::make_unique<obs::ObsHub>(opts.obs);
    if (db->recovery_pool_ != nullptr) {
      db->recovery_pool_->AttachObs(db->obs_.get());
    }
    db->array_->AttachObs(db->obs_.get());
    db->parity_->AttachObs(db->obs_.get());
    db->log_->AttachObs(db->obs_.get());
    db->txn_manager_->AttachObs(db->obs_.get());  // Also attaches the pool.
    db->checkpointer_->AttachObs(db->obs_.get());
    db->archive_->AttachObs(db->obs_.get());
  }
  return db;
}

Status Database::MaybeAutoCheckpoint() {
  if (options_.checkpoint_interval_updates == 0) {
    return Status::Ok();
  }
  if (updates_since_checkpoint_.fetch_add(1, std::memory_order_relaxed) + 1 >=
      options_.checkpoint_interval_updates) {
    updates_since_checkpoint_.store(0, std::memory_order_relaxed);
    return checkpointer_->TakeCheckpoint();
  }
  return Status::Ok();
}

Status Database::WritePage(TxnId txn, PageId page,
                           const std::vector<uint8_t>& bytes) {
  RDA_RETURN_IF_ERROR(txn_manager_->WritePage(txn, page, bytes));
  return MaybeAutoCheckpoint();
}

Status Database::WriteRecord(TxnId txn, PageId page, RecordSlot slot,
                             const std::vector<uint8_t>& bytes) {
  RDA_RETURN_IF_ERROR(txn_manager_->WriteRecord(txn, page, slot, bytes));
  return MaybeAutoCheckpoint();
}

Status Database::Abort(TxnId txn) {
  if (undo_lost_txns_.contains(txn)) {
    return Status::DataLoss(
        "undo coverage for this transaction was destroyed by a media "
        "failure; it can only commit");
  }
  return txn_manager_->Abort(txn);
}

void Database::Crash() {
  txn_manager_->LoseVolatileState();
  parity_->LoseVolatileState();
  log_->LoseVolatileState();
  undo_lost_txns_.clear();
  updates_since_checkpoint_ = 0;
}

Result<CrashRecoveryReport> Database::Recover() {
  CrashRecovery recovery(txn_manager_.get(), parity_.get(), log_.get());
  recovery.AttachObs(obs_.get());
  recovery.SetWorkerPool(recovery_pool_.get());
  return recovery.Recover();
}

Result<CrashRecoveryReport> Database::RecoverWithInjectedFault(
    uint64_t actions) {
  CrashRecovery recovery(txn_manager_.get(), parity_.get(), log_.get());
  recovery.AttachObs(obs_.get());
  recovery.SetWorkerPool(recovery_pool_.get());
  recovery.InjectFaultAfterActions(actions);
  return recovery.Recover();
}

Status Database::BulkLoad(const std::vector<std::vector<uint8_t>>& user_pages) {
  if (!txn_manager_->ActiveTxns().empty()) {
    return Status::FailedPrecondition("bulk load requires quiescence");
  }
  if (user_pages.size() > num_pages()) {
    return Status::InvalidArgument("more pages than the array holds");
  }
  const Layout& layout = array_->layout();
  const uint32_t n = layout.data_pages_per_group();
  const size_t page_size = array_->page_size();
  PageId page = 0;
  // Full stripes first.
  while (page + n <= user_pages.size()) {
    const GroupId group = layout.GroupOf(page);
    std::vector<std::vector<uint8_t>> payloads(n);
    for (uint32_t i = 0; i < n; ++i) {
      const PageId target = layout.PageAt(group, i);
      if (user_pages[target].size() != user_page_size()) {
        return Status::InvalidArgument("user page size mismatch");
      }
      payloads[i].assign(page_size, 0);
      std::copy(user_pages[target].begin(), user_pages[target].end(),
                payloads[i].begin() + kDataRegionOffset);
      StoreDataMeta(DataPageMeta{}, &payloads[i]);
    }
    RDA_RETURN_IF_ERROR(parity_->WriteFullGroup(group, payloads));
    page += n;
  }
  // Tail: plain small writes.
  for (; page < user_pages.size(); ++page) {
    if (user_pages[page].size() != user_page_size()) {
      return Status::InvalidArgument("user page size mismatch");
    }
    PageImage image(page_size);
    std::copy(user_pages[page].begin(), user_pages[page].end(),
              image.payload.begin() + kDataRegionOffset);
    StoreDataMeta(DataPageMeta{}, &image.payload);
    RDA_RETURN_IF_ERROR(parity_->Propagate(page, kInvalidTxnId,
                                           PropagationKind::kPlain, nullptr,
                                           image));
    // Drop any stale cached copy.
    txn_manager_->pool()->Discard(page);
  }
  for (PageId loaded = 0; loaded + n <= user_pages.size(); ++loaded) {
    txn_manager_->pool()->Discard(loaded);
  }
  return Status::Ok();
}

Result<MediaRecoveryReport> Database::RebuildDisk(DiskId disk) {
  MediaRecovery recovery(parity_.get(), recovery_pool_.get());
  recovery.AttachObs(obs_.get());
  auto report = recovery.RebuildDisk(disk);
  if (report.ok()) {
    for (const TxnId txn : report->undo_coverage_lost) {
      undo_lost_txns_.insert(txn);
    }
  }
  return report;
}

Result<uint32_t> Database::RepairEscalations() {
  uint32_t repaired = 0;
  for (const DiskId disk : array_->EscalatedDisks()) {
    RDA_RETURN_IF_ERROR(RebuildDisk(disk).status());
    ++repaired;
  }
  return repaired;
}

Result<bool> Database::VerifyAllParity() {
  for (GroupId group = 0; group < array_->num_groups(); ++group) {
    auto consistent = parity_->VerifyGroupParity(group);
    if (!consistent.ok()) {
      return consistent.status();
    }
    if (!*consistent) {
      return false;
    }
  }
  return true;
}

Result<std::vector<uint8_t>> Database::RawReadPage(PageId page) {
  PageImage image;
  Status status = parity_->ReadDataHealed(page, &image);
  if (status.IsIoError()) {
    return parity_->ReconstructDataPayload(page);
  }
  if (!status.ok()) {
    return status;
  }
  return std::move(image.payload);
}

Database::StatsSnapshot Database::Stats() const {
  StatsSnapshot snapshot;
  snapshot.array = array_->counters();
  snapshot.log = log_->counters();
  snapshot.array_total_busy_ms = array_->TotalBusyMs();
  snapshot.array_max_busy_ms = array_->MaxBusyMs();
  snapshot.buffer = txn_manager_->pool()->stats();
  snapshot.parity = parity_->stats();
  snapshot.txn = txn_manager_->stats();
  snapshot.checkpoints = checkpointer_->checkpoints_taken();
  snapshot.dirty_groups = parity_->directory().DirtyCount();
  snapshot.failed_disks = array_->NumFailedDisks();
  return snapshot;
}

std::string Database::FormatStats() const {
  const StatsSnapshot s = Stats();
  std::string out;
  auto line = [&out](const std::string& text) {
    out += text;
    out += '\n';
  };
  line("array:  " + std::to_string(s.array.page_reads) + " reads, " +
       std::to_string(s.array.page_writes) + " writes, busy " +
       std::to_string(static_cast<uint64_t>(s.array_total_busy_ms)) +
       " ms (max disk " +
       std::to_string(static_cast<uint64_t>(s.array_max_busy_ms)) + " ms)");
  line("log:    " + std::to_string(s.log.page_writes) + " page writes, " +
       std::to_string(s.log.page_reads) + " page reads");
  line("buffer: " + std::to_string(s.buffer.hits) + " hits / " +
       std::to_string(s.buffer.misses) + " misses, " +
       std::to_string(s.buffer.steals) + " steals");
  line("parity: " +
       std::to_string(s.parity.unlogged_first + s.parity.unlogged_repeat) +
       " unlogged propagations, " +
       std::to_string(s.parity.logged_dirty_group) + " dirty-group writes, " +
       std::to_string(s.parity.parity_undos) + " parity undos, " +
       std::to_string(s.parity.commits_finalized) + " twins finalized");
  line("txns:   " + std::to_string(s.txn.begun) + " begun, " +
       std::to_string(s.txn.committed) + " committed, " +
       std::to_string(s.txn.aborted) + " aborted; before-images " +
       std::to_string(s.txn.before_images_logged) + " logged / " +
       std::to_string(s.txn.before_images_avoided) + " avoided");
  line("state:  " + std::to_string(s.dirty_groups) + " dirty groups, " +
       std::to_string(s.failed_disks) + " failed disks, " +
       std::to_string(s.checkpoints) + " checkpoints");
  return out;
}

uint64_t Database::TotalPageTransfers() const {
  return array_->counters().total() + log_->counters().total();
}

obs::MetricsSnapshot Database::SnapshotMetrics() const {
  const obs::MetricsRegistry* registry =
      obs_ != nullptr ? obs_->metrics() : nullptr;
  return registry != nullptr ? registry->Snapshot() : obs::MetricsSnapshot();
}

namespace {

Status WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out << text;
  out.close();
  if (!out) {
    return Status::IoError("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace

Status Database::DumpTrace(const std::string& path) const {
  const obs::TraceBuffer* trace = obs_ != nullptr ? obs_->trace() : nullptr;
  if (trace == nullptr) {
    return Status::FailedPrecondition("tracing is disabled");
  }
  return WriteTextFile(path, obs::TraceToJson(*trace));
}

Status Database::DumpMetrics(const std::string& path) const {
  if (obs_ == nullptr || obs_->metrics() == nullptr) {
    return Status::FailedPrecondition("metrics are disabled");
  }
  return WriteTextFile(path, MetricsJson());
}

Status Database::DumpChromeTrace(const std::string& path) const {
  const obs::SpanCollector* spans = obs_ != nullptr ? obs_->spans() : nullptr;
  const obs::TraceBuffer* trace = obs_ != nullptr ? obs_->trace() : nullptr;
  if (spans == nullptr && trace == nullptr) {
    return Status::FailedPrecondition("spans and tracing are disabled");
  }
  return WriteTextFile(path, obs::ChromeTraceJson(spans, trace));
}

}  // namespace rda
