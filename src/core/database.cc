#include "core/database.h"

#include "storage/data_page_meta.h"

#include <fstream>
#include <utility>

namespace rda {

Database::Database(const DatabaseOptions& options) : options_(options) {}

Database::~Database() {
  if (array_ != nullptr) {
    array_->SetEscalationListener(nullptr);
  }
}

Result<std::unique_ptr<Database>> Database::Open(
    const DatabaseOptions& options) {
  DatabaseOptions opts = options;
  // The buffer and log operate on the same page size as the array.
  opts.buffer.page_size = opts.array.page_size;
  opts.log.page_size = opts.array.page_size;
  if (opts.txn.rda_undo && opts.array.parity_copies != 2) {
    return Status::InvalidArgument(
        "RDA undo recovery requires the twin-page scheme (parity_copies=2)");
  }
  if (!opts.txn.force && !opts.txn.log_after_images) {
    return Status::InvalidArgument(
        "notFORCE configurations need after-image logging for REDO");
  }

  std::unique_ptr<Database> db(new Database(opts));
  if (opts.recovery.recovery_threads > 1) {
    db->recovery_pool_ =
        std::make_unique<exec::WorkerPool>(opts.recovery.recovery_threads);
  }
  auto array = DiskArray::Create(opts.array);
  if (!array.ok()) {
    return array.status();
  }
  db->array_ = std::move(array).value();
  db->array_->SetIoPolicy(opts.io);
  // Same-group FORCE propagations back-to-back feed the engine's
  // coalescing; without the engine the historical order stays bit-for-bit.
  opts.txn.elevator_force = opts.io.width > 0;
  db->options_.txn.elevator_force = opts.txn.elevator_force;
  db->parity_ = std::make_unique<TwinParityManager>(db->array_.get());
  RDA_RETURN_IF_ERROR(db->parity_->FormatArray());
  // Formatting is not workload I/O: drain any journaled format writes
  // first, or they would land after the reset and count as workload.
  RDA_RETURN_IF_ERROR(db->array_->FlushIo());
  db->array_->ResetCounters();
  if (opts.fault.enabled) {
    // Armed after formatting so the clean initial image is fault-free.
    db->array_->ArmFaultInjection(opts.fault);
  }
  db->log_ = std::make_unique<LogManager>(opts.log);
  // Provider, not pointer: SetIoPolicy recreates the engine, and the log
  // must always duplex through the array's CURRENT one (or serially, when
  // a later policy turns the engine off).
  db->log_->AttachIoEngine(
      [array = db->array_.get()] { return array->io_engine(); });
  db->locks_ = std::make_unique<LockManager>();
  db->txn_manager_ = std::make_unique<TransactionManager>(
      opts.txn, db->parity_.get(), db->log_.get(), db->locks_.get(),
      opts.buffer);
  db->checkpointer_ = std::make_unique<Checkpointer>(db->txn_manager_.get(),
                                                     db->log_.get());
  db->archive_ = std::make_unique<ArchiveManager>(
      db->txn_manager_.get(), db->parity_.get(), db->log_.get(),
      db->recovery_pool_.get());
  db->maintenance_ = std::make_unique<MaintenanceService>(db->parity_.get(),
                                                          opts.maintenance);
  Database* raw = db.get();
  // Completed background rebuilds report transactions whose unlogged-undo
  // coverage the failed disk destroyed; fold them into the abort blocklist.
  db->maintenance_->SetRebuildDoneCallback(
      [raw](const MediaRecoveryReport& report) {
        raw->MergeUndoLost(report.undo_coverage_lost);
      });
  // Attach observability last, after formatting: format I/O is not workload
  // I/O, and the obs counters should match the freshly reset array counters.
  if (opts.obs.enable_metrics || opts.obs.enable_trace ||
      opts.obs.enable_spans) {
    db->obs_ = std::make_unique<obs::ObsHub>(opts.obs);
    if (db->recovery_pool_ != nullptr) {
      db->recovery_pool_->AttachObs(db->obs_.get());
    }
    db->array_->AttachObs(db->obs_.get());
    db->parity_->AttachObs(db->obs_.get());
    db->log_->AttachObs(db->obs_.get());
    db->txn_manager_->AttachObs(db->obs_.get());  // Also attaches the pool.
    db->checkpointer_->AttachObs(db->obs_.get());
    db->archive_->AttachObs(db->obs_.get());
    db->maintenance_->AttachObs(db->obs_.get());
  }
  if (opts.maintenance.enabled) {
    MaintenanceService* svc = db->maintenance_.get();
    db->array_->SetEscalationListener(
        [svc](DiskId disk) { svc->OnEscalation(disk); });
    db->maintenance_->Start();
  }
  return db;
}

Status Database::MaybeAutoCheckpoint() {
  if (options_.checkpoint_interval_updates == 0) {
    return Status::Ok();
  }
  if (updates_since_checkpoint_.fetch_add(1, std::memory_order_relaxed) + 1 >=
      options_.checkpoint_interval_updates) {
    updates_since_checkpoint_.store(0, std::memory_order_relaxed);
    return checkpointer_->TakeCheckpoint();
  }
  return Status::Ok();
}

Status Database::WritePage(TxnId txn, PageId page,
                           const std::vector<uint8_t>& bytes) {
  RDA_RETURN_IF_ERROR(txn_manager_->WritePage(txn, page, bytes));
  return MaybeAutoCheckpoint();
}

Status Database::WriteRecord(TxnId txn, PageId page, RecordSlot slot,
                             const std::vector<uint8_t>& bytes) {
  RDA_RETURN_IF_ERROR(txn_manager_->WriteRecord(txn, page, slot, bytes));
  return MaybeAutoCheckpoint();
}

Status Database::Abort(TxnId txn) {
  {
    std::lock_guard<std::mutex> lock(undo_lost_mu_);
    if (undo_lost_txns_.contains(txn)) {
      return Status::DataLoss(
          "undo coverage for this transaction was destroyed by a media "
          "failure; it can only commit");
    }
  }
  return txn_manager_->Abort(txn);
}

void Database::MergeUndoLost(const std::vector<TxnId>& txns) {
  if (txns.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(undo_lost_mu_);
  for (const TxnId txn : txns) {
    undo_lost_txns_.insert(txn);
  }
}

void Database::Crash() {
  // Quiesce maintenance I/O first: a sweep mid-group would otherwise race
  // the volatile-state teardown below. The interrupted rebuild's persistent
  // flag (DiskArray::DiskRebuilding) survives for Recover() to act on.
  maintenance_->CancelAndDrain();
  // The submission queues model an NVRAM write journal: everything
  // journaled before the crash reaches the medium, exactly as if the
  // writes had been synchronous. Drain before volatile teardown. A write
  // that cannot land on a live disk escalates the disk inside the drain
  // (PhysicalWriteForEngine), so a non-Ok status here means the durability
  // machinery itself broke — remember it for Recover() instead of
  // swallowing it.
  const Status flush_status = array_->FlushIo();
  if (!flush_status.ok()) {
    crash_flush_error_ = flush_status;
  }
  txn_manager_->LoseVolatileState();
  parity_->LoseVolatileState();
  log_->LoseVolatileState();
  {
    std::lock_guard<std::mutex> lock(undo_lost_mu_);
    undo_lost_txns_.clear();
  }
  updates_since_checkpoint_ = 0;
}

Status Database::FinishInterruptedRebuilds() {
  for (const DiskId disk : array_->RebuildingDisks()) {
    // The replacement medium reads stale zeros for every group the
    // interrupted sweep had not reached; only parity can tell which. Fail
    // the disk so every read goes through reconstruction, then redo the
    // rebuild from scratch (idempotent: already-rebuilt groups produce the
    // same bytes again).
    if (!array_->DiskFailed(disk)) {
      RDA_RETURN_IF_ERROR(array_->FailDisk(disk));
    }
    // The media rebuild needs Current_Parity; rebuild the directory with
    // the suspect disk out (its twins are selected around). CrashRecovery
    // rebuilds it again afterwards, then on a fully healthy array.
    RDA_RETURN_IF_ERROR(parity_->RebuildDirectory());
    MediaRecovery recovery(parity_.get(), recovery_pool_.get());
    recovery.AttachObs(obs_.get());
    RDA_ASSIGN_OR_RETURN(MediaRecoveryReport report,
                         recovery.RebuildDisk(disk));
    MergeUndoLost(report.undo_coverage_lost);
    // If the lost disk held a group's NEWEST committed twin, the directory
    // rebuild above could only select the stale older survivor — data is
    // current, parity is not. A scrub spots exactly those groups by the
    // XOR check and recomputes their parity from data.
    ParityScrubber scrubber(parity_.get(), recovery_pool_.get());
    RDA_RETURN_IF_ERROR(scrubber.ScrubAll().status());
  }
  return Status::Ok();
}

Status Database::ConsumeCrashFlushError() {
  // The crash-time journal drain could not land every submitted write (and
  // escalation could not absorb the failure): some page the engine promised
  // durable is not on any medium. Recovery from the array would silently
  // produce a stale state, so refuse; only RestoreFromArchive can
  // re-establish a trustworthy image. Reported once per crash.
  Status error = crash_flush_error_;
  crash_flush_error_ = Status::Ok();
  return error;
}

Result<CrashRecoveryReport> Database::Recover() {
  RDA_RETURN_IF_ERROR(ConsumeCrashFlushError());
  RDA_RETURN_IF_ERROR(FinishInterruptedRebuilds());
  CrashRecovery recovery(txn_manager_.get(), parity_.get(), log_.get());
  recovery.AttachObs(obs_.get());
  recovery.SetWorkerPool(recovery_pool_.get());
  return recovery.Recover();
}

Result<CrashRecoveryReport> Database::RecoverWithInjectedFault(
    uint64_t actions) {
  RDA_RETURN_IF_ERROR(ConsumeCrashFlushError());
  RDA_RETURN_IF_ERROR(FinishInterruptedRebuilds());
  CrashRecovery recovery(txn_manager_.get(), parity_.get(), log_.get());
  recovery.AttachObs(obs_.get());
  recovery.SetWorkerPool(recovery_pool_.get());
  recovery.InjectFaultAfterActions(actions);
  return recovery.Recover();
}

Result<CrashRecoveryReport> Database::RestoreFromArchive() {
  // A background sweep mid-restore would fight the snapshot rewrite; the
  // restore replaces every failed disk and rewrites all pages anyway, so
  // any in-flight rebuild is moot.
  maintenance_->CancelAndDrain();
  {
    std::lock_guard<std::mutex> lock(undo_lost_mu_);
    undo_lost_txns_.clear();
  }
  // The snapshot rewrite replaces every page, so a write the crash-time
  // drain lost is superseded — the restore clears the refusal.
  crash_flush_error_ = Status::Ok();
  return archive_->RestoreFromArchive();
}

Status Database::BulkLoad(const std::vector<std::vector<uint8_t>>& user_pages) {
  if (!txn_manager_->ActiveTxns().empty()) {
    return Status::FailedPrecondition("bulk load requires quiescence");
  }
  if (user_pages.size() > num_pages()) {
    return Status::InvalidArgument("more pages than the array holds");
  }
  const Layout& layout = array_->layout();
  const uint32_t n = layout.data_pages_per_group();
  const size_t page_size = array_->page_size();
  PageId page = 0;
  // Full stripes first.
  while (page + n <= user_pages.size()) {
    const GroupId group = layout.GroupOf(page);
    std::vector<std::vector<uint8_t>> payloads(n);
    for (uint32_t i = 0; i < n; ++i) {
      const PageId target = layout.PageAt(group, i);
      if (user_pages[target].size() != user_page_size()) {
        return Status::InvalidArgument("user page size mismatch");
      }
      payloads[i].assign(page_size, 0);
      std::copy(user_pages[target].begin(), user_pages[target].end(),
                payloads[i].begin() + kDataRegionOffset);
      StoreDataMeta(DataPageMeta{}, &payloads[i]);
    }
    RDA_RETURN_IF_ERROR(parity_->WriteFullGroup(group, payloads));
    page += n;
  }
  // Tail: plain small writes.
  for (; page < user_pages.size(); ++page) {
    if (user_pages[page].size() != user_page_size()) {
      return Status::InvalidArgument("user page size mismatch");
    }
    PageImage image(page_size);
    std::copy(user_pages[page].begin(), user_pages[page].end(),
              image.payload.begin() + kDataRegionOffset);
    StoreDataMeta(DataPageMeta{}, &image.payload);
    RDA_RETURN_IF_ERROR(parity_->Propagate(page, kInvalidTxnId,
                                           PropagationKind::kPlain, nullptr,
                                           image));
    // Drop any stale cached copy.
    txn_manager_->pool()->Discard(page);
  }
  for (PageId loaded = 0; loaded + n <= user_pages.size(); ++loaded) {
    txn_manager_->pool()->Discard(loaded);
  }
  return Status::Ok();
}

Result<MediaRecoveryReport> Database::RebuildDisk(DiskId disk) {
  MediaRecovery recovery(parity_.get(), recovery_pool_.get());
  recovery.AttachObs(obs_.get());
  auto report = recovery.RebuildDisk(disk);
  if (report.ok()) {
    MergeUndoLost(report->undo_coverage_lost);
  }
  return report;
}

Result<MediaRecoveryReport> Database::RebuildDiskOnline(
    DiskId disk, const OnlineRebuildOptions& options) {
  MediaRecovery recovery(parity_.get(), recovery_pool_.get());
  recovery.AttachObs(obs_.get());
  auto report = recovery.RebuildDiskOnline(disk, options);
  if (report.ok()) {
    MergeUndoLost(report->undo_coverage_lost);
  }
  return report;
}

Result<Database::EscalationRepairReport> Database::RepairEscalations() {
  EscalationRepairReport report;
  // EscalatedDisks() is already ascending; one disk at a time keeps the
  // single-failure invariant (rebuild d0 fully before touching d1). A disk
  // whose rebuild fails stays failed and is reported, but does not rob the
  // remaining disks of their repair attempt.
  for (const DiskId disk : array_->EscalatedDisks()) {
    const Status status = RebuildDisk(disk).status();
    if (status.ok()) {
      ++report.repaired;
    } else {
      report.unrepaired.push_back(disk);
      if (report.first_error.ok()) {
        report.first_error = status;
      }
    }
  }
  return report;
}

Result<bool> Database::VerifyAllParity() {
  // Sharded scan: each worker verifies a contiguous band of groups (under
  // the group latches); one inconsistent group flips the shared verdict.
  // Serial (null pool) and parallel runs see the same groups and return
  // the same verdict.
  std::atomic<bool> all_consistent{true};
  RDA_RETURN_IF_ERROR(exec::RunSharded(
      recovery_pool_.get(), array_->num_groups(),
      [&](uint64_t index) -> Status {
        if (!all_consistent.load(std::memory_order_relaxed)) {
          return Status::Ok();  // Verdict already settled; finish fast.
        }
        RDA_ASSIGN_OR_RETURN(
            const bool consistent,
            parity_->VerifyGroupParity(static_cast<GroupId>(index)));
        if (!consistent) {
          all_consistent.store(false, std::memory_order_relaxed);
        }
        return Status::Ok();
      }));
  return all_consistent.load(std::memory_order_relaxed);
}

Result<std::vector<uint8_t>> Database::RawReadPage(PageId page) {
  PageImage image;
  Status status = parity_->ReadDataHealed(page, &image);
  if (status.IsIoError()) {
    return parity_->ReconstructDataPayload(page);
  }
  if (!status.ok()) {
    return status;
  }
  return std::move(image.payload);
}

Database::StatsSnapshot Database::Stats() const {
  StatsSnapshot snapshot;
  snapshot.array = array_->counters();
  snapshot.log = log_->counters();
  snapshot.array_total_busy_ms = array_->TotalBusyMs();
  snapshot.array_max_busy_ms = array_->MaxBusyMs();
  snapshot.buffer = txn_manager_->pool()->stats();
  snapshot.parity = parity_->stats();
  snapshot.txn = txn_manager_->stats();
  snapshot.checkpoints = checkpointer_->checkpoints_taken();
  snapshot.dirty_groups = parity_->directory().DirtyCount();
  snapshot.failed_disks = array_->NumFailedDisks();
  return snapshot;
}

std::string Database::FormatStats() const {
  const StatsSnapshot s = Stats();
  std::string out;
  auto line = [&out](const std::string& text) {
    out += text;
    out += '\n';
  };
  line("array:  " + std::to_string(s.array.page_reads) + " reads, " +
       std::to_string(s.array.page_writes) + " writes, busy " +
       std::to_string(static_cast<uint64_t>(s.array_total_busy_ms)) +
       " ms (max disk " +
       std::to_string(static_cast<uint64_t>(s.array_max_busy_ms)) + " ms)");
  line("log:    " + std::to_string(s.log.page_writes) + " page writes, " +
       std::to_string(s.log.page_reads) + " page reads");
  line("buffer: " + std::to_string(s.buffer.hits) + " hits / " +
       std::to_string(s.buffer.misses) + " misses, " +
       std::to_string(s.buffer.steals) + " steals");
  line("parity: " +
       std::to_string(s.parity.unlogged_first + s.parity.unlogged_repeat) +
       " unlogged propagations, " +
       std::to_string(s.parity.logged_dirty_group) + " dirty-group writes, " +
       std::to_string(s.parity.parity_undos) + " parity undos, " +
       std::to_string(s.parity.commits_finalized) + " twins finalized");
  line("txns:   " + std::to_string(s.txn.begun) + " begun, " +
       std::to_string(s.txn.committed) + " committed, " +
       std::to_string(s.txn.aborted) + " aborted; before-images " +
       std::to_string(s.txn.before_images_logged) + " logged / " +
       std::to_string(s.txn.before_images_avoided) + " avoided");
  line("state:  " + std::to_string(s.dirty_groups) + " dirty groups, " +
       std::to_string(s.failed_disks) + " failed disks, " +
       std::to_string(s.checkpoints) + " checkpoints");
  return out;
}

uint64_t Database::TotalPageTransfers() const {
  return array_->counters().total() + log_->counters().total();
}

obs::MetricsSnapshot Database::SnapshotMetrics() const {
  const obs::MetricsRegistry* registry =
      obs_ != nullptr ? obs_->metrics() : nullptr;
  return registry != nullptr ? registry->Snapshot() : obs::MetricsSnapshot();
}

namespace {

Status WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out << text;
  out.close();
  if (!out) {
    return Status::IoError("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace

Status Database::DumpTrace(const std::string& path) const {
  const obs::TraceBuffer* trace = obs_ != nullptr ? obs_->trace() : nullptr;
  if (trace == nullptr) {
    return Status::FailedPrecondition("tracing is disabled");
  }
  return WriteTextFile(path, obs::TraceToJson(*trace));
}

Status Database::DumpMetrics(const std::string& path) const {
  if (obs_ == nullptr || obs_->metrics() == nullptr) {
    return Status::FailedPrecondition("metrics are disabled");
  }
  return WriteTextFile(path, MetricsJson());
}

Status Database::DumpChromeTrace(const std::string& path) const {
  const obs::SpanCollector* spans = obs_ != nullptr ? obs_->spans() : nullptr;
  const obs::TraceBuffer* trace = obs_ != nullptr ? obs_->trace() : nullptr;
  if (spans == nullptr && trace == nullptr) {
    return Status::FailedPrecondition("spans and tracing are disabled");
  }
  return WriteTextFile(path, obs::ChromeTraceJson(spans, trace));
}

}  // namespace rda
