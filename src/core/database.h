#ifndef RDA_CORE_DATABASE_H_
#define RDA_CORE_DATABASE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "buffer/buffer_pool.h"
#include "common/status.h"
#include "common/types.h"
#include "core/maintenance_service.h"
#include "exec/worker_pool.h"
#include "lock/lock_manager.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "parity/twin_parity_manager.h"
#include "recovery/archive.h"
#include "recovery/checkpointer.h"
#include "recovery/crash_recovery.h"
#include "recovery/media_recovery.h"
#include "recovery/scrubber.h"
#include "storage/disk_array.h"
#include "txn/transaction_manager.h"
#include "wal/log_manager.h"

namespace rda {

// Everything needed to stand up one database instance. The defaults give a
// small array suitable for tests; the simulator scales them to the paper's
// parameters (B=300, S=5000, N=10, ...).
struct DatabaseOptions {
  DiskArray::Options array;
  BufferPool::Options buffer;
  TxnConfig txn;
  LogManager::Options log;
  // ACC checkpoint interval, measured in update operations; 0 disables
  // automatic checkpoints (TOC / FORCE configurations).
  uint64_t checkpoint_interval_updates = 0;
  // Engine-wide metrics + trace + latency spans. Disabling all of them
  // makes the hub null and instrumentation collapses to a pointer test
  // per site.
  obs::ObsOptions obs;
  // Sector-level fault injection (DESIGN.md section 10). With
  // fault.enabled false (the default) no injectors are created and every
  // disk access pays exactly one extra pointer test.
  FaultConfig fault;
  // Retry / escalation reaction to I/O errors. The defaults retry
  // transients but never escalate, matching pre-policy behaviour.
  IoPolicy io;
  // Parallel recovery (DESIGN.md section 13). recovery_threads=1 (the
  // default) keeps every recovery path bit-for-bit identical to the serial
  // algorithms: no pool is created and each loop runs inline.
  exec::RecoveryOptions recovery;
  // Background maintenance thread (DESIGN.md section 14): online media
  // rebuild and throttled scrubs. Disabled by default; when enabled, disks
  // escalated by the I/O policy are rebuilt online automatically.
  MaintenanceOptions maintenance;
};

// The public facade of the library: a single-node database engine whose
// recovery component implements the paper's RDA scheme (twin-page parity
// over a redundant disk array) alongside the traditional log-only baseline.
//
// Lifecycle of the interesting events:
//   Begin / ReadPage / WritePage / ReadRecord / WriteRecord / Commit / Abort
//   Crash()  -> all volatile state is gone ->  Recover()
//   FailDisk(d)  -> degraded reads keep working
//     -> RebuildDiskOnline(d) / MaintenanceService: transactions keep
//        committing while the replacement disk fills group by group
//        (touched groups are repaired on demand, ahead of the sweep)
//     -> healthy again  (RebuildDisk(d) is the quiescent variant)
class Database {
 public:
  static Result<std::unique_ptr<Database>> Open(const DatabaseOptions& options);

  // Detaches the array's escalation listener before members die: the
  // engine's destructor drains the write journal, and a drain failure
  // escalates — which must not call into the MaintenanceService (destroyed
  // first, see the member order below).
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- transaction API (thin forwarding; see TransactionManager) ---
  Result<TxnId> Begin() { return txn_manager_->Begin(); }
  Status ReadPage(TxnId txn, PageId page, std::vector<uint8_t>* out) {
    return txn_manager_->ReadPage(txn, page, out);
  }
  Status WritePage(TxnId txn, PageId page, const std::vector<uint8_t>& bytes);
  Status ReadRecord(TxnId txn, PageId page, RecordSlot slot,
                    std::vector<uint8_t>* out) {
    return txn_manager_->ReadRecord(txn, page, slot, out);
  }
  Status WriteRecord(TxnId txn, PageId page, RecordSlot slot,
                     const std::vector<uint8_t>& bytes);
  Status Commit(TxnId txn) { return txn_manager_->Commit(txn); }

  // Aborts `txn`. Returns kDataLoss — without aborting — if a disk failure
  // destroyed the undo coverage of one of its unlogged updates (see
  // MediaRecoveryReport::undo_coverage_lost); such a transaction can only
  // commit.
  Status Abort(TxnId txn);

  // Bulk-loads committed pages starting at page 0 using full-stripe writes
  // for every complete parity group (the paper's Section 3.1 "large
  // accesses": N+1 writes per group, no reads) and plain small writes for
  // the tail. Requires a quiescent database (no active transactions).
  // `user_pages[i]` covers the user region of page i.
  Status BulkLoad(const std::vector<std::vector<uint8_t>>& user_pages);

  // --- checkpointing ---
  Status Checkpoint() { return checkpointer_->TakeCheckpoint(); }

  // --- archive (catastrophic media recovery + log truncation) ---
  // Quiescent full snapshot; truncates the stable log prefix by default.
  Status TakeArchive(bool truncate_log = true) {
    return archive_->TakeArchive(truncate_log);
  }
  bool HasArchive() const { return archive_->HasArchive(); }
  // Restores after a catastrophe the array cannot survive (e.g. two disks
  // lost): replaces failed media, rewrites all pages from the snapshot,
  // recomputes parity and rolls committed work forward from the log.
  // Quiesces the maintenance thread first.
  Result<CrashRecoveryReport> RestoreFromArchive();

  // Background parity scrub: verify all groups, repair clean ones that
  // fail the XOR check.
  Result<ScrubReport> Scrub() {
    ParityScrubber scrubber(parity_.get(), recovery_pool_.get());
    return scrubber.ScrubAll();
  }

  // --- failure injection & recovery ---
  // System crash: buffer pool, lock table, parity directory and unflushed
  // log records are lost. Quiesces the maintenance thread first (its job
  // queue is volatile state; a half-done online rebuild leaves the disk's
  // persistent rebuilding flag set for Recover() to finish).
  void Crash();
  // Restart after Crash(): runs the Section 4.3 algorithm. Disks that were
  // mid-rebuild at the crash are failed (their media holds stale zeros for
  // un-rebuilt groups) and rebuilt quiescently before normal recovery.
  Result<CrashRecoveryReport> Recover();
  // Test/robustness hook: like Recover(), but fails with kAborted after
  // `actions` recovery mutations — simulating a crash DURING recovery.
  // Call Crash() and Recover() again afterwards; convergence is tested.
  Result<CrashRecoveryReport> RecoverWithInjectedFault(uint64_t actions);
  Status FailDisk(DiskId disk) { return array_->FailDisk(disk); }
  // Quiescent rebuild: replaces the disk and reconstructs every group in
  // one sweep. Correct only when no transactions run concurrently.
  Result<MediaRecoveryReport> RebuildDisk(DiskId disk);
  // Online rebuild: replaces the disk and reconstructs group by group under
  // the group latches while transactions keep running. Foreground access to
  // a not-yet-rebuilt group repairs it on demand; the sweep is optionally
  // throttled / pausable / cancellable via `options`. This is the
  // synchronous form of what the MaintenanceService runs in the background.
  Result<MediaRecoveryReport> RebuildDiskOnline(
      DiskId disk, const OnlineRebuildOptions& options = {});

  // Outcome of one RepairEscalations() pass. A disk whose rebuild fails no
  // longer aborts the pass: later escalated disks still get their turn, the
  // stragglers are reported, and the first error is preserved typed (e.g.
  // kDataLoss when two disks are down and only the archive can help).
  struct EscalationRepairReport {
    uint32_t repaired = 0;
    std::vector<DiskId> unrepaired;    // Ascending disk order.
    Status first_error = Status::Ok();
  };
  // Rebuilds every disk the I/O policy escalated (error budget exhausted):
  // replace + full media rebuild, one disk at a time in ascending disk
  // order. Safe to call periodically; a no-op when none. With the
  // maintenance service enabled this polling is unnecessary — escalations
  // queue an online rebuild automatically.
  Result<EscalationRepairReport> RepairEscalations();

  // The background maintenance service (never null; idle unless
  // options.maintenance.enabled or Start() is called explicitly).
  MaintenanceService* maintenance() { return maintenance_.get(); }

  // --- inspection ---
  // True iff every parity group's consistent twin equals XOR(data pages).
  Result<bool> VerifyAllParity();
  // Committed on-disk payload of a page (bypasses transactions; test/demo
  // helper). Reconstructs through parity if the owning disk is down.
  Result<std::vector<uint8_t>> RawReadPage(PageId page);

  DiskArray* array() { return array_.get(); }
  TwinParityManager* parity() { return parity_.get(); }
  LogManager* log() { return log_.get(); }
  TransactionManager* txn_manager() { return txn_manager_.get(); }
  Checkpointer* checkpointer() { return checkpointer_.get(); }
  const DatabaseOptions& options() const { return options_; }

  uint32_t num_pages() const { return array_->num_data_pages(); }
  size_t user_page_size() const { return txn_manager_->user_page_size(); }
  uint32_t records_per_page() const {
    return txn_manager_->records_per_page();
  }

  // Total page transfers so far (array + log), the paper's cost metric.
  uint64_t TotalPageTransfers() const;

  // One coherent snapshot of every counter the engine keeps.
  struct StatsSnapshot {
    IoCounters array;
    IoCounters log;
    double array_total_busy_ms = 0;
    double array_max_busy_ms = 0;
    BufferStats buffer;
    ParityStats parity;
    TxnStats txn;
    uint64_t checkpoints = 0;
    uint32_t dirty_groups = 0;
    uint32_t failed_disks = 0;
  };
  StatsSnapshot Stats() const;
  // Human-readable multi-line rendering of Stats() for logs and examples.
  std::string FormatStats() const;

  // --- observability ---
  // The hub (null iff both metrics and trace were disabled in options).
  obs::ObsHub* obs() { return obs_.get(); }
  // Point-in-time copy of every counter/gauge/histogram. Empty snapshot
  // when metrics are disabled.
  obs::MetricsSnapshot SnapshotMetrics() const;
  // JSON / CSV renderings of SnapshotMetrics().
  std::string MetricsJson() const { return obs::MetricsToJson(SnapshotMetrics()); }
  std::string MetricsCsv() const { return obs::MetricsToCsv(SnapshotMetrics()); }
  // Writes the retained trace (JSON) / metrics (JSON) to `path`.
  Status DumpTrace(const std::string& path) const;
  Status DumpMetrics(const std::string& path) const;
  // Writes the recorded latency spans (plus trace events) as a Chrome
  // Trace Event Format file, loadable in Perfetto / chrome://tracing.
  Status DumpChromeTrace(const std::string& path) const;

 private:
  explicit Database(const DatabaseOptions& options);

  Status MaybeAutoCheckpoint();
  // Recover() prologue: any disk whose persistent rebuilding flag is set
  // crashed mid-rebuild — its medium holds stale zeros wherever the sweep
  // had not reached. Fail it (so the directory rebuild reconstructs through
  // the survivors) and redo the rebuild quiescently.
  Status FinishInterruptedRebuilds();
  // Returns (and clears) the error a crash-time journal drain reported —
  // Recover() refuses to run on an array that silently lost a write.
  Status ConsumeCrashFlushError();
  void MergeUndoLost(const std::vector<TxnId>& txns);

  DatabaseOptions options_;
  std::unique_ptr<obs::ObsHub> obs_;
  // Shared worker pool behind every parallel recovery path (crash recovery,
  // media rebuild, scrub, archive restore). Null when recovery_threads <= 1.
  std::unique_ptr<exec::WorkerPool> recovery_pool_;
  std::unique_ptr<DiskArray> array_;
  std::unique_ptr<TwinParityManager> parity_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<LockManager> locks_;
  std::unique_ptr<TransactionManager> txn_manager_;
  std::unique_ptr<Checkpointer> checkpointer_;
  std::unique_ptr<ArchiveManager> archive_;
  std::atomic<uint64_t> updates_since_checkpoint_{0};
  // Error the last Crash()-time FlushIo reported (Ok normally: a drain
  // failure on a live disk escalates the disk instead of erroring). Crash/
  // Recover are externally serialized, like the rest of the crash API.
  Status crash_flush_error_ = Status::Ok();
  // Transactions whose unlogged-undo coverage a media failure destroyed.
  // Guarded by undo_lost_mu_: the maintenance thread's rebuild-done
  // callback merges into it while the foreground calls Abort().
  mutable std::mutex undo_lost_mu_;
  std::unordered_set<TxnId> undo_lost_txns_;
  // Declared last: destroyed first, so the worker thread is joined while
  // every component it touches is still alive.
  std::unique_ptr<MaintenanceService> maintenance_;
};

}  // namespace rda

#endif  // RDA_CORE_DATABASE_H_
