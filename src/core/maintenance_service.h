#ifndef RDA_CORE_MAINTENANCE_SERVICE_H_
#define RDA_CORE_MAINTENANCE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

#include "common/status.h"
#include "common/types.h"
#include "exec/token_bucket.h"
#include "obs/obs.h"
#include "recovery/media_recovery.h"
#include "recovery/scrubber.h"

namespace rda {

// Knobs of the background maintenance thread (DatabaseOptions::maintenance).
struct MaintenanceOptions {
  // Off by default: the service is created but Start() is never called, so
  // existing single-threaded tests and benches see zero behaviour change.
  bool enabled = false;
  // Token-bucket rate limits in pages/sec for background work; 0 = run at
  // full speed. Foreground on-demand repairs are never throttled.
  uint64_t rebuild_pages_per_sec = 0;
  uint64_t scrub_pages_per_sec = 0;
  // Automatically queue an online rebuild when the I/O policy escalates a
  // disk (error-budget exhaustion) — replaces RepairEscalations() polling.
  bool auto_rebuild_on_escalation = true;
};

// The availability ladder the paper's Section 1 promises: a disk failure
// degrades the array but never stops it, a rebuild runs in the background,
// and the system returns to healthy without a quiescent window.
enum class HealthState : uint8_t {
  kHealthy = 0,     // All disks live, nothing rebuilding.
  kDegraded = 1,    // A disk is failed (reads reconstruct through parity).
  kRebuilding = 2,  // An online rebuild session / job is in flight.
};

const char* HealthStateName(HealthState state);

// Progress snapshot (all fields are consistent under the service mutex).
struct MaintenanceProgress {
  HealthState health = HealthState::kHealthy;
  bool running = false;      // Service thread started and not stopped.
  bool busy = false;         // A job is executing right now.
  bool paused = false;
  size_t jobs_queued = 0;
  // Online-rebuild session view (zero / invalid when none is active).
  bool rebuild_active = false;
  DiskId rebuild_disk = kInvalidDiskId;
  uint32_t rebuild_groups_total = 0;
  uint32_t rebuild_groups_remaining = 0;
  uint64_t on_demand_repairs = 0;
  uint64_t write_promotions = 0;
  // Lifetime job counters.
  uint64_t rebuilds_completed = 0;
  uint64_t rebuilds_failed = 0;
  uint64_t scrubs_completed = 0;
  uint64_t jobs_cancelled = 0;
};

// Background maintenance thread owned by Database: runs online disk
// rebuilds and parity scrubs off a small dedup'd job queue, throttled by
// token buckets so maintenance I/O does not starve foreground commits.
// Escalations reported by the DiskArray's I/O policy feed the queue
// directly (OnEscalation is async-signal-ish: non-blocking enqueue + wake).
class MaintenanceService {
 public:
  MaintenanceService(TwinParityManager* parity,
                     const MaintenanceOptions& options);
  ~MaintenanceService();  // Stop()s.

  MaintenanceService(const MaintenanceService&) = delete;
  MaintenanceService& operator=(const MaintenanceService&) = delete;

  // Starts / stops the worker thread. Stop cancels the current job, drains
  // the queue and joins; both are idempotent.
  void Start();
  void Stop();

  // Queue a job. RequestRebuild dedups per disk; returns false if the job
  // was already queued / running or the service is stopped. Safe from any
  // thread, including the array's escalation callback path.
  bool RequestRebuild(DiskId disk);
  bool RequestScrub();
  // The DiskArray escalation listener (registered by Database). Honors
  // options.auto_rebuild_on_escalation.
  void OnEscalation(DiskId disk);

  // Pause/resume the current sweep (the job keeps its queue slot; foreground
  // on-demand repairs continue). CancelCurrent stops the in-flight job only;
  // CancelAndDrain also empties the queue and waits until the worker is
  // idle — Database::Crash uses it to quiesce maintenance I/O first.
  void Pause();
  void Resume();
  void CancelCurrent();
  void CancelAndDrain();

  // Both recompute health first, so a poll observes degraded -> rebuilding
  // transitions that happen inside a long-running job.
  MaintenanceProgress Progress();
  HealthState health();

  // Called (from the worker thread) with each completed rebuild report —
  // Database merges undo_coverage_lost into its lost-transaction set.
  void SetRebuildDoneCallback(
      std::function<void(const MediaRecoveryReport&)> callback);

  // Wires "maintenance.*" gauges/counters, kMaintenanceJob spans and
  // kHealthChange trace events (flight dump on entering kDegraded).
  void AttachObs(obs::ObsHub* hub);

 private:
  struct Job {
    enum class Kind : uint8_t { kRebuild, kScrub } kind = Kind::kScrub;
    DiskId disk = kInvalidDiskId;
  };

  void WorkerLoop();
  void RunJob(const Job& job);
  // Recomputes health from the array + session state and emits the
  // transition (gauge, trace event, flight on degraded). Callable from any
  // thread; serialized by health_mu_.
  void UpdateHealth();

  TwinParityManager* parity_;
  const MaintenanceOptions options_;
  exec::TokenBucket rebuild_bucket_;
  exec::TokenBucket scrub_bucket_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // Worker wait / drain wait.
  std::deque<Job> queue_;             // Guarded by mu_.
  bool running_ = false;              // Guarded by mu_.
  bool busy_ = false;                 // Guarded by mu_.
  bool stop_requested_ = false;       // Guarded by mu_.
  std::thread worker_;

  std::atomic<bool> cancel_current_{false};
  std::atomic<bool> paused_{false};

  std::atomic<uint64_t> rebuilds_completed_{0};
  std::atomic<uint64_t> rebuilds_failed_{0};
  std::atomic<uint64_t> scrubs_completed_{0};
  std::atomic<uint64_t> jobs_cancelled_{0};

  std::mutex callback_mu_;
  std::function<void(const MediaRecoveryReport&)> rebuild_done_;

  mutable std::mutex health_mu_;
  HealthState health_ = HealthState::kHealthy;  // Guarded by health_mu_.

  // Observability (null = disabled).
  obs::ObsHub* hub_ = nullptr;
  obs::TraceBuffer* trace_ = nullptr;
  obs::SpanCollector* spans_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  obs::Gauge* health_gauge_ = nullptr;
  obs::Counter* rebuilds_counter_ = nullptr;
  obs::Counter* scrubs_counter_ = nullptr;
  obs::Counter* enqueued_counter_ = nullptr;
  obs::Counter* cancelled_counter_ = nullptr;
};

}  // namespace rda

#endif  // RDA_CORE_MAINTENANCE_SERVICE_H_
