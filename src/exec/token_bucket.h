#ifndef RDA_EXEC_TOKEN_BUCKET_H_
#define RDA_EXEC_TOKEN_BUCKET_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>

namespace rda::exec {

// A small token-bucket rate limiter for background maintenance I/O: one
// token per page touched. Rate 0 means unlimited (Acquire is a no-op), so
// callers can thread a bucket unconditionally. The bucket holds at most one
// second of tokens, which bounds the burst after an idle period.
//
// The bucket starts EMPTY: a consumer created right before a burst of work
// (the online-rebuild sweep) pays the configured rate from its very first
// Acquire instead of getting a free capacity-sized burst exactly when the
// foreground is most exposed. Callers that want pre-charged tokens (none in
// this repo) can say so explicitly via `initial_tokens`.
//
// Acquire blocks in short naps (so a cancel flag is observed within ~10ms)
// until the tokens are available; it never fails except on cancellation.
// Thread-safe; intended for a single consumer but correct for several.
class TokenBucket {
 public:
  explicit TokenBucket(uint64_t tokens_per_sec, uint64_t initial_tokens = 0)
      : rate_(tokens_per_sec),
        capacity_(std::max<uint64_t>(tokens_per_sec, 1)),
        tokens_(static_cast<double>(std::min(initial_tokens, capacity_))),
        last_refill_(Clock::now()) {}

  TokenBucket(const TokenBucket&) = delete;
  TokenBucket& operator=(const TokenBucket&) = delete;

  uint64_t rate() const { return rate_; }

  // Blocks until `tokens` are available and consumes them. Returns false
  // only when `cancel` (optional) became true while waiting. Requests
  // larger than the bucket capacity are allowed: the caller goes into debt
  // and pays it off before the next Acquire returns.
  bool Acquire(uint64_t tokens, const std::atomic<bool>* cancel = nullptr) {
    if (rate_ == 0 || tokens == 0) {
      return true;
    }
    for (;;) {
      if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
        return false;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        Refill();
        if (tokens_ >= static_cast<double>(tokens) ||
            static_cast<double>(tokens) > static_cast<double>(capacity_)) {
          // Oversized requests drive the balance negative instead of
          // stalling forever on a bucket that can never hold them.
          tokens_ -= static_cast<double>(tokens);
          return true;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

 private:
  using Clock = std::chrono::steady_clock;

  // Caller holds mu_.
  void Refill() {
    const Clock::time_point now = Clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - last_refill_).count();
    last_refill_ = now;
    tokens_ = std::min(tokens_ + elapsed * static_cast<double>(rate_),
                       static_cast<double>(capacity_));
  }

  const uint64_t rate_;
  const uint64_t capacity_;
  std::mutex mu_;
  double tokens_;  // Guarded by mu_; may go negative (oversized requests).
  Clock::time_point last_refill_;  // Guarded by mu_.
};

}  // namespace rda::exec

#endif  // RDA_EXEC_TOKEN_BUCKET_H_
