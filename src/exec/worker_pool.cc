#include "exec/worker_pool.h"

#include <algorithm>
#include <atomic>

#include "obs/span.h"

namespace rda::exec {

// One ParallelFor in flight. Lives on the shared queue until every chunk
// is claimed; the submitting thread keeps it alive past that via its
// shared_ptr, so a worker popping an exhausted job never races teardown.
struct WorkerPool::Job {
  uint64_t count = 0;
  uint32_t chunks = 0;
  // The caller's fn, borrowed for the job's lifetime (ParallelFor returns
  // only after `finished`, so the pointer cannot dangle).
  const ShardFn* fn = nullptr;
  std::atomic<uint32_t> next_chunk{0};
  // Set after any failure; chunks poll it between indexes (best-effort
  // early exit, mirroring the serial loop's stop-on-first-error).
  std::atomic<bool> cancel{false};
  std::mutex mu;  // Guards the completion/error fields below.
  std::condition_variable done_cv;
  uint32_t done_chunks = 0;
  bool finished = false;
  // Real errors and cancellation-class (kAborted) statuses aggregate
  // separately: a chunk that merely observed an external cancel must never
  // mask the lowest-chunk real error it raced with.
  uint32_t error_chunk = UINT32_MAX;
  Status error;
  uint32_t abort_chunk = UINT32_MAX;
  Status abort_status;
};

WorkerPool::WorkerPool(uint32_t width) : width_(std::max<uint32_t>(width, 1)) {
  threads_.reserve(width_ - 1);
  for (uint32_t i = 0; i + 1 < width_; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void WorkerPool::AttachObs(obs::ObsHub* hub) {
  parallel_fors_counter_ = obs::GetCounter(hub, "exec.parallel_fors");
  chunks_counter_ = obs::GetCounter(hub, "exec.chunks");
  spans_ = obs::SpansOf(hub);
}

void WorkerPool::WorkerMain() {
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // Shutdown with nothing left to help with.
      }
      job = queue_.front();
      if (job->next_chunk.load(std::memory_order_relaxed) >= job->chunks) {
        // Fully claimed: whoever holds its chunks will finish them; the
        // queue slot is just stale.
        queue_.pop_front();
        continue;
      }
    }
    RunChunks(job);
  }
}

void WorkerPool::RunChunks(const std::shared_ptr<Job>& job) {
  while (true) {
    const uint32_t chunk =
        job->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job->chunks) {
      return;
    }
    obs::Inc(chunks_counter_);
    // Deterministic contiguous partition (see the class comment).
    const uint64_t begin = job->count * chunk / job->chunks;
    const uint64_t end = job->count * (chunk + 1) / job->chunks;
    Status status;
    for (uint64_t i = begin; i < end; ++i) {
      if (job->cancel.load(std::memory_order_relaxed)) {
        break;
      }
      status = (*job->fn)(i);
      if (!status.ok()) {
        job->cancel.store(true, std::memory_order_relaxed);
        break;
      }
    }
    std::lock_guard<std::mutex> lock(job->mu);
    if (!status.ok()) {
      if (status.IsAborted()) {
        if (chunk < job->abort_chunk) {
          job->abort_chunk = chunk;
          job->abort_status = status;
        }
      } else if (chunk < job->error_chunk) {
        job->error_chunk = chunk;
        job->error = status;
      }
    }
    if (++job->done_chunks == job->chunks) {
      job->finished = true;
      job->done_cv.notify_all();
    }
  }
}

Status WorkerPool::ParallelFor(uint64_t count, const ShardFn& fn) {
  if (count == 0) {
    return Status::Ok();
  }
  const uint32_t chunks =
      static_cast<uint32_t>(std::min<uint64_t>(width_, count));
  if (chunks <= 1) {
    // Inline serial path: identical to the plain loop, including stopping
    // at the first error.
    for (uint64_t i = 0; i < count; ++i) {
      RDA_RETURN_IF_ERROR(fn(i));
    }
    return Status::Ok();
  }

  obs::Inc(parallel_fors_counter_);
  obs::ScopedSpan span(spans_, obs::SpanKind::kExecParallelFor,
                       /*histogram=*/nullptr, static_cast<int64_t>(count));
  auto job = std::make_shared<Job>();
  job->count = count;
  job->chunks = chunks;
  job->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(job);
  }
  work_cv_.notify_all();
  RunChunks(job);  // The caller works too; it can finish the job alone.
  std::unique_lock<std::mutex> lock(job->mu);
  job->done_cv.wait(lock, [&job] { return job->finished; });
  // A real error (whatever its chunk) outranks any kAborted: cancellation
  // statuses only surface when nothing actually failed.
  if (job->error_chunk != UINT32_MAX) {
    return job->error;
  }
  if (job->abort_chunk != UINT32_MAX) {
    return job->abort_status;
  }
  return Status::Ok();
}

Status RunSharded(WorkerPool* pool, uint64_t count,
                  const WorkerPool::ShardFn& fn) {
  if (pool == nullptr || pool->width() <= 1) {
    for (uint64_t i = 0; i < count; ++i) {
      RDA_RETURN_IF_ERROR(fn(i));
    }
    return Status::Ok();
  }
  return pool->ParallelFor(count, fn);
}

}  // namespace rda::exec
