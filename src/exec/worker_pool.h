#ifndef RDA_EXEC_WORKER_POOL_H_
#define RDA_EXEC_WORKER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/obs.h"

namespace rda::exec {

// Parallelism knob for the recovery paths (crash recovery, media rebuild,
// parity scrub, archive restore). Threaded from DatabaseOptions down to
// every recovery algorithm; 1 (the default) keeps every path on the plain
// serial loop — bit-for-bit identical to a build without the pool.
struct RecoveryOptions {
  uint32_t recovery_threads = 1;
};

// A fixed-width pool of workers driving deterministic ParallelFor loops.
//
// Sharding: ParallelFor(count, fn) splits [0, count) into at most width()
// contiguous chunks — chunk c covers [count*c/W, count*(c+1)/W) — and runs
// each chunk's indexes in ascending order. The partition depends only on
// (count, width), never on timing, so which worker owns which indexes is
// reproducible run to run; only the interleaving BETWEEN chunks varies.
//
// Caller participation: the calling thread executes chunks alongside the
// width()-1 background threads and, in its claiming loop, will finish every
// unclaimed chunk itself. A ParallelFor therefore always completes even if
// all background workers are busy with other jobs — the pool cannot
// deadlock on its own queue (tasks never wait on other tasks).
//
// Error aggregation: a failing index stops its own chunk at that index and
// cancels the remaining indexes of other chunks (best effort, checked
// between indexes). The Status returned is the error of the lowest-numbered
// failing chunk — with a single failing index this is deterministically
// that index's error; with several, cancellation may let an earlier chunk
// skip past its own failure, so any one of the observed errors surfaces.
// kAborted statuses (the cancellation class — e.g. a throttle observing an
// external cancel flag) aggregate separately and NEVER outrank a real
// error: when a chunk error and a cancel race, the caller sees the error.
// At width 1 (or count <= 1) the loop runs inline and stops at the first
// error, exactly like the serial code it replaces.
class WorkerPool {
 public:
  using ShardFn = std::function<Status(uint64_t)>;

  // `width` = total workers including the caller; the pool spawns width-1
  // background threads (0 is clamped to 1: caller-only, always inline).
  explicit WorkerPool(uint32_t width);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Runs fn(i) for every i in [0, count). Blocks until all chunks finished
  // (or were cancelled after an error). Thread-safe: concurrent
  // ParallelFor calls from different threads share the worker set.
  Status ParallelFor(uint64_t count, const ShardFn& fn);

  uint32_t width() const { return width_; }

  // Hooks the pool into the observability hub (`exec.parallel_fors` /
  // `exec.chunks` counters and exec.parallel_for spans). Null detaches.
  void AttachObs(obs::ObsHub* hub);

 private:
  struct Job;

  void WorkerMain();
  // Claims and runs chunks of `job` until none remain.
  void RunChunks(const std::shared_ptr<Job>& job);

  const uint32_t width_;
  std::mutex mu_;  // Guards queue_ + shutdown_.
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;

  // Observability (null = disabled).
  obs::Counter* parallel_fors_counter_ = nullptr;
  obs::Counter* chunks_counter_ = nullptr;
  obs::SpanCollector* spans_ = nullptr;
};

// Runs fn over [0, count) through `pool`, or — when pool is null or has
// width 1 — inline, in order, stopping at the first error: the exact serial
// loop every recovery path ran before the pool existed. All recovery call
// sites go through this helper so recovery_threads=1 (null pool) is
// guaranteed to stay byte-identical to the pre-pool behavior.
Status RunSharded(WorkerPool* pool, uint64_t count,
                  const WorkerPool::ShardFn& fn);

}  // namespace rda::exec

#endif  // RDA_EXEC_WORKER_POOL_H_
