#ifndef RDA_KV_BTREE_H_
#define RDA_KV_BTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/database.h"

namespace rda {

// A transactional B+-tree over the page API (page-logging mode): fixed
// 64-bit keys and values, ordered iteration, top-down insertion with node
// splits. Every structural modification — leaf splits, parent updates, root
// growth, page allocation — happens inside the caller's transaction, so a
// split interrupted by an abort or a crash rolls back atomically through
// the engine's ordinary recovery machinery. This makes the tree the most
// demanding client of the recovery protocol in the repository: a single
// insert can touch a whole root-to-leaf path.
//
// Page layout (user region): byte 0 = node type, bytes 2..3 = entry count.
//   Leaf:     entries of (key u64, value u64), sorted by key.
//   Internal: leftmost child u32, then entries of (separator u64, child
//             u32); subtree i holds keys < separator_i, the last child
//             holds the rest.
// Page 0 of the tree's region is the meta page: root page id + allocation
// cursor. Deletion removes keys without rebalancing (nodes may underflow;
// the classic simplification) — emptied pages are not reclaimed.
class BTree {
 public:
  struct Options {
    PageId first_page = 0;   // Meta page; nodes allocated after it.
    uint32_t num_pages = 64; // Region the tree may use.
  };

  // Attaches to `db` (page-logging mode). If the meta page is unformatted
  // (all zero), the next Insert lazily formats an empty tree inside its
  // transaction.
  static Result<std::unique_ptr<BTree>> Attach(Database* db,
                                               const Options& options);

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  // Inserts or overwrites. kResourceExhausted (as kBusy) when the page
  // region is exhausted by splits.
  Status Insert(TxnId txn, uint64_t key, uint64_t value);

  // Point lookup; kNotFound if absent.
  Result<uint64_t> Get(TxnId txn, uint64_t key);

  // Removes the key. kNotFound if absent.
  Status Delete(TxnId txn, uint64_t key);

  // Appends all (key, value) pairs with lo <= key <= hi, in key order.
  Status Scan(TxnId txn, uint64_t lo, uint64_t hi,
              std::vector<std::pair<uint64_t, uint64_t>>* out);

  // Structural audit: every node's keys sorted, separators bracket their
  // subtrees, all leaves at the same depth. Test helper.
  Status CheckInvariants(TxnId txn);

  uint32_t leaf_capacity() const { return leaf_capacity_; }
  uint32_t internal_capacity() const { return internal_capacity_; }

 private:
  enum NodeType : uint8_t { kFree = 0, kLeaf = 1, kInternal = 2 };

  struct Node {
    NodeType type = kFree;
    std::vector<uint64_t> keys;
    std::vector<uint64_t> values;    // Leaf payloads.
    std::vector<uint32_t> children;  // Internal: keys.size() + 1 entries.
  };

  struct Meta {
    uint32_t root = 0;       // 0 = tree not yet formatted.
    uint32_t next_alloc = 0;
  };

  BTree(Database* db, const Options& options);

  Result<Meta> ReadMeta(TxnId txn);
  Status WriteMeta(TxnId txn, const Meta& meta);
  Result<Node> ReadNode(TxnId txn, PageId page);
  Status WriteNode(TxnId txn, PageId page, const Node& node);
  Result<PageId> AllocatePage(TxnId txn, Meta* meta);
  // Ensures the tree exists; returns the root page.
  Result<PageId> EnsureFormatted(TxnId txn, Meta* meta);

  // Recursive insert; on split sets *split_key / *split_page for the parent.
  Status InsertInto(TxnId txn, Meta* meta, PageId page, uint64_t key,
                    uint64_t value, bool* split, uint64_t* split_key,
                    PageId* split_page);

  Status CheckNode(TxnId txn, PageId page, uint64_t lo, uint64_t hi,
                   int depth, int* leaf_depth);

  Database* db_;
  Options options_;
  uint32_t leaf_capacity_;
  uint32_t internal_capacity_;
};

}  // namespace rda

#endif  // RDA_KV_BTREE_H_
