#include "kv/kv_store.h"

#include <cstring>
#include <utility>

namespace rda {
namespace {

// FNV-1a, stable across platforms (keys hash to the same slot after a
// crash or on another build).
uint64_t Fnv1a(std::string_view bytes) {
  uint64_t hash = 1469598103934665603ULL;
  for (const char c : bytes) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace

KvStore::KvStore(Database* db, const Options& options)
    : db_(db),
      options_(options),
      slots_per_page_(db->records_per_page()),
      total_slots_(static_cast<uint64_t>(options.num_pages) *
                   db->records_per_page()),
      record_size_(db->options().txn.record_size) {}

Result<std::unique_ptr<KvStore>> KvStore::Attach(Database* db,
                                                 const Options& options) {
  if (db->options().txn.logging_mode != LoggingMode::kRecordLogging) {
    return Status::InvalidArgument("KvStore requires record-logging mode");
  }
  if (db->options().txn.record_size < KvStore::kSlotHeaderSize + 2) {
    return Status::InvalidArgument("record_size too small for KV slots");
  }
  if (options.num_pages == 0 ||
      options.first_page + options.num_pages > db->num_pages()) {
    return Status::InvalidArgument("KV table exceeds the database");
  }
  if (db->records_per_page() == 0) {
    return Status::InvalidArgument("page too small for any record slot");
  }
  return std::unique_ptr<KvStore>(new KvStore(db, options));
}

size_t KvStore::max_key_size() const {
  // One byte of key length; leave at least one value byte of headroom.
  const size_t payload = record_size_ - kSlotHeaderSize;
  return std::min<size_t>(255, payload > 0 ? payload - 1 : 0);
}

size_t KvStore::max_value_size(std::string_view key) const {
  const size_t payload = record_size_ - kSlotHeaderSize;
  return payload > key.size() ? payload - key.size() : 0;
}

uint64_t KvStore::HashOf(std::string_view key) const {
  return Fnv1a(key) % total_slots_;
}

void KvStore::SlotLocation(uint64_t index, PageId* page,
                           RecordSlot* slot) const {
  *page = options_.first_page + static_cast<PageId>(index / slots_per_page_);
  *slot = static_cast<RecordSlot>(index % slots_per_page_);
}

KvStore::DecodedSlot KvStore::Decode(const std::vector<uint8_t>& record) {
  DecodedSlot out;
  if (record.size() < kSlotHeaderSize) {
    return out;
  }
  out.state = static_cast<SlotState>(record[0]);
  const size_t klen = record[1];
  uint16_t vlen = 0;
  std::memcpy(&vlen, record.data() + 2, sizeof(vlen));
  if (kSlotHeaderSize + klen + vlen > record.size()) {
    out.state = SlotState::kEmpty;  // Corrupt-shaped slot: treat as empty.
    return out;
  }
  out.key.assign(record.begin() + kSlotHeaderSize,
                 record.begin() + kSlotHeaderSize + klen);
  out.value.assign(record.begin() + kSlotHeaderSize + klen,
                   record.begin() + kSlotHeaderSize + klen + vlen);
  return out;
}

std::vector<uint8_t> KvStore::Encode(SlotState state, std::string_view key,
                                     std::string_view value) const {
  std::vector<uint8_t> record(record_size_, 0);
  record[0] = static_cast<uint8_t>(state);
  record[1] = static_cast<uint8_t>(key.size());
  const uint16_t vlen = static_cast<uint16_t>(value.size());
  std::memcpy(record.data() + 2, &vlen, sizeof(vlen));
  std::memcpy(record.data() + kSlotHeaderSize, key.data(), key.size());
  std::memcpy(record.data() + kSlotHeaderSize + key.size(), value.data(),
              value.size());
  return record;
}

Status KvStore::Put(TxnId txn, std::string_view key, std::string_view value) {
  if (key.empty() || key.size() > max_key_size()) {
    return Status::InvalidArgument("key size out of range");
  }
  if (value.size() > max_value_size(key)) {
    return Status::InvalidArgument("value too large for slot");
  }
  const uint64_t start = HashOf(key);
  uint64_t reusable = total_slots_;  // First tombstone seen, if any.
  for (uint32_t probe = 0;
       probe < options_.max_probe && probe < total_slots_; ++probe) {
    const uint64_t index = (start + probe) % total_slots_;
    PageId page;
    RecordSlot slot;
    SlotLocation(index, &page, &slot);
    std::vector<uint8_t> record;
    RDA_RETURN_IF_ERROR(db_->ReadRecord(txn, page, slot, &record));
    const DecodedSlot decoded = Decode(record);
    if (decoded.state == SlotState::kLive && decoded.key == key) {
      return db_->WriteRecord(txn, page, slot,
                              Encode(SlotState::kLive, key, value));
    }
    if (decoded.state == SlotState::kTombstone &&
        reusable == total_slots_) {
      reusable = index;  // Remember, but keep scanning for a duplicate.
    }
    if (decoded.state == SlotState::kEmpty) {
      const uint64_t target = reusable != total_slots_ ? reusable : index;
      SlotLocation(target, &page, &slot);
      return db_->WriteRecord(txn, page, slot,
                              Encode(SlotState::kLive, key, value));
    }
  }
  if (reusable != total_slots_) {
    PageId page;
    RecordSlot slot;
    SlotLocation(reusable, &page, &slot);
    return db_->WriteRecord(txn, page, slot,
                            Encode(SlotState::kLive, key, value));
  }
  return Status::Busy("KV table full along the probe sequence");
}

Result<std::string> KvStore::Get(TxnId txn, std::string_view key) {
  const uint64_t start = HashOf(key);
  for (uint32_t probe = 0;
       probe < options_.max_probe && probe < total_slots_; ++probe) {
    const uint64_t index = (start + probe) % total_slots_;
    PageId page;
    RecordSlot slot;
    SlotLocation(index, &page, &slot);
    std::vector<uint8_t> record;
    RDA_RETURN_IF_ERROR(db_->ReadRecord(txn, page, slot, &record));
    const DecodedSlot decoded = Decode(record);
    if (decoded.state == SlotState::kEmpty) {
      return Status::NotFound("key absent");
    }
    if (decoded.state == SlotState::kLive && decoded.key == key) {
      return decoded.value;
    }
  }
  return Status::NotFound("key absent (probe limit)");
}

Status KvStore::Delete(TxnId txn, std::string_view key) {
  const uint64_t start = HashOf(key);
  for (uint32_t probe = 0;
       probe < options_.max_probe && probe < total_slots_; ++probe) {
    const uint64_t index = (start + probe) % total_slots_;
    PageId page;
    RecordSlot slot;
    SlotLocation(index, &page, &slot);
    std::vector<uint8_t> record;
    RDA_RETURN_IF_ERROR(db_->ReadRecord(txn, page, slot, &record));
    const DecodedSlot decoded = Decode(record);
    if (decoded.state == SlotState::kEmpty) {
      return Status::NotFound("key absent");
    }
    if (decoded.state == SlotState::kLive && decoded.key == key) {
      return db_->WriteRecord(txn, page, slot,
                              Encode(SlotState::kTombstone, key, ""));
    }
  }
  return Status::NotFound("key absent (probe limit)");
}

Result<uint64_t> KvStore::Count(TxnId txn) {
  uint64_t live = 0;
  for (uint64_t index = 0; index < total_slots_; ++index) {
    PageId page;
    RecordSlot slot;
    SlotLocation(index, &page, &slot);
    std::vector<uint8_t> record;
    RDA_RETURN_IF_ERROR(db_->ReadRecord(txn, page, slot, &record));
    if (Decode(record).state == SlotState::kLive) {
      ++live;
    }
  }
  return live;
}

}  // namespace rda
