#include "kv/btree.h"

#include <algorithm>
#include <cstring>
#include <string>

namespace rda {
namespace {

constexpr size_t kHeaderSize = 8;       // type u8, pad, count u16, pad.
constexpr size_t kLeafEntrySize = 16;   // key u64 + value u64.
constexpr size_t kChildSize = 4;        // child page id u32.
constexpr size_t kInternalEntrySize = 12;  // separator u64 + child u32.

template <typename T>
T Load(const std::vector<uint8_t>& bytes, size_t offset) {
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  return value;
}

template <typename T>
void Store(std::vector<uint8_t>* bytes, size_t offset, T value) {
  std::memcpy(bytes->data() + offset, &value, sizeof(T));
}

}  // namespace

BTree::BTree(Database* db, const Options& options)
    : db_(db), options_(options) {
  const size_t user = db->user_page_size();
  leaf_capacity_ =
      static_cast<uint32_t>((user - kHeaderSize) / kLeafEntrySize);
  internal_capacity_ = static_cast<uint32_t>(
      (user - kHeaderSize - kChildSize) / kInternalEntrySize);
}

Result<std::unique_ptr<BTree>> BTree::Attach(Database* db,
                                             const Options& options) {
  if (db->options().txn.logging_mode != LoggingMode::kPageLogging) {
    return Status::InvalidArgument("BTree requires page-logging mode");
  }
  if (options.num_pages < 4 ||
      options.first_page + options.num_pages > db->num_pages()) {
    return Status::InvalidArgument("BTree region invalid");
  }
  std::unique_ptr<BTree> tree(new BTree(db, options));
  if (tree->leaf_capacity_ < 3 || tree->internal_capacity_ < 3) {
    return Status::InvalidArgument("pages too small for BTree nodes");
  }
  return tree;
}

Result<BTree::Meta> BTree::ReadMeta(TxnId txn) {
  std::vector<uint8_t> bytes;
  RDA_RETURN_IF_ERROR(db_->ReadPage(txn, options_.first_page, &bytes));
  Meta meta;
  meta.root = Load<uint32_t>(bytes, 0);       // Stored as root + 1.
  meta.next_alloc = Load<uint32_t>(bytes, 4);
  return meta;
}

Status BTree::WriteMeta(TxnId txn, const Meta& meta) {
  std::vector<uint8_t> bytes(db_->user_page_size(), 0);
  Store(&bytes, 0, meta.root);
  Store(&bytes, 4, meta.next_alloc);
  return db_->WritePage(txn, options_.first_page, bytes);
}

Result<BTree::Node> BTree::ReadNode(TxnId txn, PageId page) {
  std::vector<uint8_t> bytes;
  RDA_RETURN_IF_ERROR(db_->ReadPage(txn, page, &bytes));
  Node node;
  node.type = static_cast<NodeType>(bytes[0]);
  const uint16_t count = Load<uint16_t>(bytes, 2);
  if (node.type == kLeaf) {
    for (uint16_t i = 0; i < count; ++i) {
      const size_t offset = kHeaderSize + i * kLeafEntrySize;
      node.keys.push_back(Load<uint64_t>(bytes, offset));
      node.values.push_back(Load<uint64_t>(bytes, offset + 8));
    }
  } else if (node.type == kInternal) {
    node.children.push_back(Load<uint32_t>(bytes, kHeaderSize));
    for (uint16_t i = 0; i < count; ++i) {
      const size_t offset =
          kHeaderSize + kChildSize + i * kInternalEntrySize;
      node.keys.push_back(Load<uint64_t>(bytes, offset));
      node.children.push_back(Load<uint32_t>(bytes, offset + 8));
    }
  }
  return node;
}

Status BTree::WriteNode(TxnId txn, PageId page, const Node& node) {
  std::vector<uint8_t> bytes(db_->user_page_size(), 0);
  bytes[0] = static_cast<uint8_t>(node.type);
  Store(&bytes, 2, static_cast<uint16_t>(node.keys.size()));
  if (node.type == kLeaf) {
    for (size_t i = 0; i < node.keys.size(); ++i) {
      const size_t offset = kHeaderSize + i * kLeafEntrySize;
      Store(&bytes, offset, node.keys[i]);
      Store(&bytes, offset + 8, node.values[i]);
    }
  } else {
    Store(&bytes, kHeaderSize, node.children[0]);
    for (size_t i = 0; i < node.keys.size(); ++i) {
      const size_t offset =
          kHeaderSize + kChildSize + i * kInternalEntrySize;
      Store(&bytes, offset, node.keys[i]);
      Store(&bytes, offset + 8, node.children[i + 1]);
    }
  }
  return db_->WritePage(txn, page, bytes);
}

Result<PageId> BTree::AllocatePage(TxnId txn, Meta* meta) {
  // Node pages live right after the meta page; next_alloc counts them.
  if (meta->next_alloc + 1 >= options_.num_pages) {
    return Status::Busy("BTree page region exhausted");
  }
  const PageId page = options_.first_page + 1 + meta->next_alloc;
  ++meta->next_alloc;
  RDA_RETURN_IF_ERROR(WriteMeta(txn, *meta));
  return page;
}

Result<PageId> BTree::EnsureFormatted(TxnId txn, Meta* meta) {
  if (meta->root != 0) {
    return static_cast<PageId>(meta->root - 1);
  }
  RDA_ASSIGN_OR_RETURN(const PageId root, AllocatePage(txn, meta));
  Node leaf;
  leaf.type = kLeaf;
  RDA_RETURN_IF_ERROR(WriteNode(txn, root, leaf));
  meta->root = root + 1;
  RDA_RETURN_IF_ERROR(WriteMeta(txn, *meta));
  return root;
}

Status BTree::InsertInto(TxnId txn, Meta* meta, PageId page, uint64_t key,
                         uint64_t value, bool* split, uint64_t* split_key,
                         PageId* split_page) {
  *split = false;
  RDA_ASSIGN_OR_RETURN(Node node, ReadNode(txn, page));
  if (node.type == kLeaf) {
    auto it = std::lower_bound(node.keys.begin(), node.keys.end(), key);
    const size_t pos = it - node.keys.begin();
    if (it != node.keys.end() && *it == key) {
      node.values[pos] = value;  // Overwrite in place.
      return WriteNode(txn, page, node);
    }
    node.keys.insert(it, key);
    node.values.insert(node.values.begin() + pos, value);
    if (node.keys.size() <= leaf_capacity_) {
      return WriteNode(txn, page, node);
    }
    // Leaf split: upper half moves to a fresh right sibling; the parent
    // receives the right sibling's first key as separator.
    const size_t mid = node.keys.size() / 2;
    Node right;
    right.type = kLeaf;
    right.keys.assign(node.keys.begin() + mid, node.keys.end());
    right.values.assign(node.values.begin() + mid, node.values.end());
    node.keys.resize(mid);
    node.values.resize(mid);
    RDA_ASSIGN_OR_RETURN(const PageId right_page, AllocatePage(txn, meta));
    RDA_RETURN_IF_ERROR(WriteNode(txn, right_page, right));
    RDA_RETURN_IF_ERROR(WriteNode(txn, page, node));
    *split = true;
    *split_key = right.keys.front();
    *split_page = right_page;
    return Status::Ok();
  }
  if (node.type != kInternal) {
    return Status::Corruption("BTree node has invalid type at page " +
                              std::to_string(page));
  }

  // Child index: first separator strictly greater than the key.
  const size_t idx =
      std::upper_bound(node.keys.begin(), node.keys.end(), key) -
      node.keys.begin();
  bool child_split = false;
  uint64_t child_key = 0;
  PageId child_page = 0;
  RDA_RETURN_IF_ERROR(InsertInto(txn, meta, node.children[idx], key, value,
                                 &child_split, &child_key, &child_page));
  if (!child_split) {
    return Status::Ok();
  }
  node.keys.insert(node.keys.begin() + idx, child_key);
  node.children.insert(node.children.begin() + idx + 1, child_page);
  if (node.keys.size() <= internal_capacity_) {
    return WriteNode(txn, page, node);
  }
  // Internal split: the median separator is promoted, not kept.
  const size_t mid = node.keys.size() / 2;
  Node right;
  right.type = kInternal;
  right.keys.assign(node.keys.begin() + mid + 1, node.keys.end());
  right.children.assign(node.children.begin() + mid + 1,
                        node.children.end());
  const uint64_t promoted = node.keys[mid];
  node.keys.resize(mid);
  node.children.resize(mid + 1);
  RDA_ASSIGN_OR_RETURN(const PageId right_page, AllocatePage(txn, meta));
  RDA_RETURN_IF_ERROR(WriteNode(txn, right_page, right));
  RDA_RETURN_IF_ERROR(WriteNode(txn, page, node));
  *split = true;
  *split_key = promoted;
  *split_page = right_page;
  return Status::Ok();
}

Status BTree::Insert(TxnId txn, uint64_t key, uint64_t value) {
  RDA_ASSIGN_OR_RETURN(Meta meta, ReadMeta(txn));
  RDA_ASSIGN_OR_RETURN(const PageId root, EnsureFormatted(txn, &meta));
  bool split = false;
  uint64_t split_key = 0;
  PageId split_page = 0;
  RDA_RETURN_IF_ERROR(InsertInto(txn, &meta, root, key, value, &split,
                                 &split_key, &split_page));
  if (!split) {
    return Status::Ok();
  }
  // Root split: the tree grows one level.
  RDA_ASSIGN_OR_RETURN(const PageId new_root, AllocatePage(txn, &meta));
  Node node;
  node.type = kInternal;
  node.keys.push_back(split_key);
  node.children.push_back(root);
  node.children.push_back(split_page);
  RDA_RETURN_IF_ERROR(WriteNode(txn, new_root, node));
  meta.root = new_root + 1;
  return WriteMeta(txn, meta);
}

Result<uint64_t> BTree::Get(TxnId txn, uint64_t key) {
  RDA_ASSIGN_OR_RETURN(const Meta meta, ReadMeta(txn));
  if (meta.root == 0) {
    return Status::NotFound("empty tree");
  }
  PageId page = meta.root - 1;
  for (;;) {
    RDA_ASSIGN_OR_RETURN(const Node node, ReadNode(txn, page));
    if (node.type == kLeaf) {
      auto it = std::lower_bound(node.keys.begin(), node.keys.end(), key);
      if (it != node.keys.end() && *it == key) {
        return node.values[it - node.keys.begin()];
      }
      return Status::NotFound("key absent");
    }
    const size_t idx =
        std::upper_bound(node.keys.begin(), node.keys.end(), key) -
        node.keys.begin();
    page = node.children[idx];
  }
}

Status BTree::Delete(TxnId txn, uint64_t key) {
  RDA_ASSIGN_OR_RETURN(const Meta meta, ReadMeta(txn));
  if (meta.root == 0) {
    return Status::NotFound("empty tree");
  }
  PageId page = meta.root - 1;
  for (;;) {
    RDA_ASSIGN_OR_RETURN(Node node, ReadNode(txn, page));
    if (node.type == kLeaf) {
      auto it = std::lower_bound(node.keys.begin(), node.keys.end(), key);
      if (it == node.keys.end() || *it != key) {
        return Status::NotFound("key absent");
      }
      const size_t pos = it - node.keys.begin();
      node.keys.erase(it);
      node.values.erase(node.values.begin() + pos);
      return WriteNode(txn, page, node);  // Underflow tolerated.
    }
    const size_t idx =
        std::upper_bound(node.keys.begin(), node.keys.end(), key) -
        node.keys.begin();
    page = node.children[idx];
  }
}

Status BTree::Scan(TxnId txn, uint64_t lo, uint64_t hi,
                   std::vector<std::pair<uint64_t, uint64_t>>* out) {
  RDA_ASSIGN_OR_RETURN(const Meta meta, ReadMeta(txn));
  if (meta.root == 0) {
    return Status::Ok();
  }
  // Iterative in-order traversal with separator pruning.
  std::vector<PageId> stack = {static_cast<PageId>(meta.root - 1)};
  while (!stack.empty()) {
    const PageId page = stack.back();
    stack.pop_back();
    RDA_ASSIGN_OR_RETURN(const Node node, ReadNode(txn, page));
    if (node.type == kLeaf) {
      for (size_t i = 0; i < node.keys.size(); ++i) {
        if (node.keys[i] >= lo && node.keys[i] <= hi) {
          out->emplace_back(node.keys[i], node.values[i]);
        }
      }
      continue;
    }
    // Children overlapping [lo, hi], pushed in REVERSE so the stack pops
    // them in key order.
    const size_t first =
        std::upper_bound(node.keys.begin(), node.keys.end(), lo) -
        node.keys.begin();
    size_t last =
        std::upper_bound(node.keys.begin(), node.keys.end(), hi) -
        node.keys.begin();
    last = std::min(last, node.children.size() - 1);
    for (size_t i = last + 1; i-- > first;) {
      stack.push_back(node.children[i]);
    }
  }
  // Leaves were visited in key order but interleaved pushes could disturb
  // within-range ordering only if separators were wrong; sort defensively
  // is unnecessary — assert order in debug via CheckInvariants instead.
  return Status::Ok();
}

Status BTree::CheckNode(TxnId txn, PageId page, uint64_t lo, uint64_t hi,
                        int depth, int* leaf_depth) {
  RDA_ASSIGN_OR_RETURN(const Node node, ReadNode(txn, page));
  if (!std::is_sorted(node.keys.begin(), node.keys.end())) {
    return Status::Corruption("unsorted keys in page " +
                              std::to_string(page));
  }
  for (const uint64_t key : node.keys) {
    if (key < lo || key > hi) {
      return Status::Corruption("key outside separator bounds in page " +
                                std::to_string(page));
    }
  }
  if (node.type == kLeaf) {
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("leaves at different depths");
    }
    return Status::Ok();
  }
  if (node.children.size() != node.keys.size() + 1) {
    return Status::Corruption("child/key count mismatch");
  }
  uint64_t child_lo = lo;
  for (size_t i = 0; i < node.children.size(); ++i) {
    const uint64_t child_hi =
        i < node.keys.size() ? node.keys[i] - 1 : hi;
    RDA_RETURN_IF_ERROR(CheckNode(txn, node.children[i], child_lo, child_hi,
                                  depth + 1, leaf_depth));
    child_lo = i < node.keys.size() ? node.keys[i] : child_lo;
  }
  return Status::Ok();
}

Status BTree::CheckInvariants(TxnId txn) {
  RDA_ASSIGN_OR_RETURN(const Meta meta, ReadMeta(txn));
  if (meta.root == 0) {
    return Status::Ok();
  }
  int leaf_depth = -1;
  return CheckNode(txn, meta.root - 1, 0,
                   std::numeric_limits<uint64_t>::max(), 0, &leaf_depth);
}

}  // namespace rda
