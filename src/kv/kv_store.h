#ifndef RDA_KV_KV_STORE_H_
#define RDA_KV_KV_STORE_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/types.h"
#include "core/database.h"

namespace rda {

// A transactional key-value access method layered on the record API — what
// adopting the recovery engine looks like from above. Open addressing
// (linear probing) over the database's fixed-size record slots; every
// operation runs inside a caller-supplied transaction and inherits the
// engine's atomicity, locking and recovery story (abort rolls Puts back,
// crash recovery preserves exactly the committed map).
//
// Slot layout: [state:1][klen:1][vlen:2][key bytes][value bytes]; capacity
// is fixed at attach time (no online rehash — kResourceExhausted surfaces
// when a probe sequence exceeds max_probe).
class KvStore {
 public:
  struct Options {
    // Pages of the underlying database reserved for the table, starting at
    // page `first_page`.
    PageId first_page = 0;
    uint32_t num_pages = 64;
    // Probe-sequence cap; hitting it on insert reports a full table.
    uint32_t max_probe = 128;
  };

  // Attaches a view over `db`, which must be in record-logging mode with
  // record_size >= kSlotHeaderSize + 2. The pages are used as-is: an
  // all-zero (freshly formatted) region is an empty table.
  static Result<std::unique_ptr<KvStore>> Attach(Database* db,
                                                 const Options& options);

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  // Inserts or overwrites. Key must be non-empty and <= max_key_size();
  // value <= max_value_size(key).
  Status Put(TxnId txn, std::string_view key, std::string_view value);

  // Returns the value, or kNotFound.
  Result<std::string> Get(TxnId txn, std::string_view key);

  // Removes the key (tombstone). kNotFound if absent.
  Status Delete(TxnId txn, std::string_view key);

  // Number of live entries (full scan; test/inspection helper).
  Result<uint64_t> Count(TxnId txn);

  uint64_t capacity() const { return total_slots_; }
  size_t max_key_size() const;
  size_t max_value_size(std::string_view key) const;

  static constexpr size_t kSlotHeaderSize = 4;

 private:
  enum class SlotState : uint8_t { kEmpty = 0, kLive = 1, kTombstone = 2 };

  KvStore(Database* db, const Options& options);

  uint64_t HashOf(std::string_view key) const;
  void SlotLocation(uint64_t index, PageId* page, RecordSlot* slot) const;

  struct DecodedSlot {
    SlotState state = SlotState::kEmpty;
    std::string key;
    std::string value;
  };
  static DecodedSlot Decode(const std::vector<uint8_t>& record);
  std::vector<uint8_t> Encode(SlotState state, std::string_view key,
                              std::string_view value) const;

  Database* db_;
  Options options_;
  uint32_t slots_per_page_;
  uint64_t total_slots_;
  size_t record_size_;
};

}  // namespace rda

#endif  // RDA_KV_KV_STORE_H_
