#include "sim/simulator.h"

#include <utility>

namespace rda::sim {

Simulator::Simulator(const SimOptions& options)
    : options_(options),
      workload_(options.workload),
      rng_(options.seed ^ 0x5157ULL) {}

Status Simulator::Init() {
  if (db_ != nullptr) {
    return Status::Ok();
  }
  DatabaseOptions db_options = options_.db;
  db_options.array.min_data_pages = options_.workload.num_pages;
  RDA_ASSIGN_OR_RETURN(db_, Database::Open(db_options));
  return Status::Ok();
}

std::vector<uint8_t> Simulator::RandomPagePayload() {
  std::vector<uint8_t> bytes(db_->user_page_size());
  rng_.FillBytes(&bytes);
  return bytes;
}

std::vector<uint8_t> Simulator::RandomRecord() {
  std::vector<uint8_t> bytes(options_.db.txn.record_size);
  rng_.FillBytes(&bytes);
  return bytes;
}

Status Simulator::StartTxn(ActiveTxn* slot) {
  RDA_ASSIGN_OR_RETURN(slot->id, db_->Begin());
  slot->script = workload_.Next();
  slot->next_op = 0;
  slot->stall_rounds = 0;
  return Status::Ok();
}

Result<bool> Simulator::Step(ActiveTxn* txn) {
  if (txn->next_op >= txn->script.ops.size()) {
    // EOT.
    if (txn->script.client_aborts) {
      RDA_RETURN_IF_ERROR(db_->Abort(txn->id));
      ++result_.client_aborts;
    } else {
      RDA_RETURN_IF_ERROR(db_->Commit(txn->id));
      ++result_.committed;
    }
    return true;
  }

  const TxnOp& op = txn->script.ops[txn->next_op];
  Status status;
  const bool record_mode =
      options_.db.txn.logging_mode == LoggingMode::kRecordLogging;
  if (op.is_update) {
    status = record_mode
                 ? db_->WriteRecord(txn->id, op.page, op.slot, RandomRecord())
                 : db_->WritePage(txn->id, op.page, RandomPagePayload());
  } else {
    std::vector<uint8_t> scratch;
    status = record_mode
                 ? db_->ReadRecord(txn->id, op.page, op.slot, &scratch)
                 : db_->ReadPage(txn->id, op.page, &scratch);
  }

  if (status.ok()) {
    ++txn->next_op;
    txn->stall_rounds = 0;
    return false;
  }
  if (!status.IsBusy()) {
    return status;
  }
  // Lock conflict: become a deadlock victim, give up after prolonged
  // starvation, or simply retry on the next round.
  ++txn->stall_rounds;
  if (db_->txn_manager()->WouldDeadlock(txn->id) ||
      txn->stall_rounds > options_.max_stall_rounds) {
    RDA_RETURN_IF_ERROR(db_->Abort(txn->id));
    ++result_.deadlock_aborts;
    return true;
  }
  return false;
}

Result<SimResult> Simulator::Run() {
  RDA_RETURN_IF_ERROR(Init());
  result_ = SimResult();
  db_->array()->ResetCounters();
  db_->log()->ResetCounters();
  db_->txn_manager()->ResetStats();
  db_->parity()->ResetStats();
  db_->txn_manager()->pool()->ResetStats();

  std::vector<ActiveTxn> active(options_.concurrency);
  for (ActiveTxn& slot : active) {
    RDA_RETURN_IF_ERROR(StartTxn(&slot));
  }

  uint64_t finished = 0;
  while (finished < options_.num_transactions) {
    bool progressed = false;
    for (ActiveTxn& slot : active) {
      if (finished >= options_.num_transactions) {
        break;
      }
      RDA_ASSIGN_OR_RETURN(const bool done, Step(&slot));
      progressed = true;
      if (done) {
        ++finished;
        RDA_RETURN_IF_ERROR(StartTxn(&slot));
      }
    }
    if (!progressed) {
      return Status::Aborted("simulator made no progress");
    }
  }
  // Drain the still-active transactions so the run ends at a clean point.
  for (ActiveTxn& slot : active) {
    for (uint32_t round = 0; round < options_.max_stall_rounds * 2; ++round) {
      RDA_ASSIGN_OR_RETURN(const bool done, Step(&slot));
      if (done) {
        break;
      }
    }
  }

  result_.array_transfers = db_->array()->counters().total();
  result_.log_transfers = db_->log()->counters().total();
  result_.total_transfers = result_.array_transfers + result_.log_transfers;
  result_.buffer = db_->txn_manager()->pool()->stats();
  result_.parity = db_->parity()->stats();
  result_.txn = db_->txn_manager()->stats();
  if (result_.committed > 0) {
    result_.transfers_per_commit =
        static_cast<double>(result_.total_transfers) /
        static_cast<double>(result_.committed);
    result_.interval_t = 5e6;
    result_.throughput_per_interval =
        result_.interval_t / result_.transfers_per_commit;
  }

  if (options_.db.fault.enabled) {
    result_.faults = db_->array()->fault_stats();
    result_.io = db_->array()->policy_stats();
    // End-of-run maintenance, AFTER the workload counters were captured
    // (rebuild I/O is not workload I/O): any disk the error budget
    // escalated is rebuilt so the run hands back a healthy array.
    RDA_ASSIGN_OR_RETURN(auto repairs, db_->RepairEscalations());
    if (!repairs.unrepaired.empty()) {
      return repairs.first_error;
    }
    result_.escalations_repaired = repairs.repaired;
  }

  // Publish the headline numbers as gauges so one metrics export carries
  // the run outcome alongside the subsystem counters.
  if (obs::ObsHub* hub = db_->obs(); hub != nullptr) {
    auto set = [hub](std::string_view name, int64_t value) {
      if (obs::Gauge* gauge = obs::GetGauge(hub, name)) {
        gauge->Set(value);
      }
    };
    set("sim.committed", static_cast<int64_t>(result_.committed));
    set("sim.client_aborts", static_cast<int64_t>(result_.client_aborts));
    set("sim.deadlock_aborts",
        static_cast<int64_t>(result_.deadlock_aborts));
    set("sim.total_transfers",
        static_cast<int64_t>(result_.total_transfers));
    set("sim.transfers_per_commit_x1000",
        static_cast<int64_t>(result_.transfers_per_commit * 1000.0));
    if (options_.db.fault.enabled) {
      set("sim.faults_injected", static_cast<int64_t>(result_.faults.total()));
      set("sim.io_retries", static_cast<int64_t>(result_.io.io_retries));
      set("sim.sectors_repaired",
          static_cast<int64_t>(result_.parity.latent_repairs +
                               result_.parity.corruption_repairs));
      set("sim.escalations_repaired",
          static_cast<int64_t>(result_.escalations_repaired));
    }
  }
  return result_;
}

}  // namespace rda::sim
