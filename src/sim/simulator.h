#ifndef RDA_SIM_SIMULATOR_H_
#define RDA_SIM_SIMULATOR_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/database.h"
#include "sim/workload.h"

namespace rda::sim {

struct SimOptions {
  DatabaseOptions db;
  WorkloadOptions workload;
  // Transactions to complete (committed + aborted).
  uint32_t num_transactions = 200;
  // Concurrently active transactions (the model's P); the simulator
  // interleaves their operations round-robin.
  uint32_t concurrency = 4;
  // A transaction blocked this many consecutive scheduling rounds without
  // a deadlock being detected is aborted anyway (starvation backstop).
  uint32_t max_stall_rounds = 1000;
  uint64_t seed = 1;
};

// Outcome of a simulation run, in the paper's metric (page transfers).
struct SimResult {
  uint64_t committed = 0;
  uint64_t client_aborts = 0;    // Aborts requested by the workload (p_b).
  uint64_t deadlock_aborts = 0;  // Victims of wait-for cycles.
  uint64_t array_transfers = 0;
  uint64_t log_transfers = 0;
  uint64_t total_transfers = 0;
  double transfers_per_commit = 0;
  // Committed transactions per T page transfers — directly comparable to
  // the model's r_t.
  double throughput_per_interval = 0;
  double interval_t = 0;  // The T used for the line above.
  BufferStats buffer;
  ParityStats parity;
  TxnStats txn;
  // Fault-schedule outcome (all zero when options.db.fault is disabled):
  // what the injectors did, what the retry policy absorbed, and how many
  // budget-escalated disks the end-of-run maintenance pass rebuilt.
  FaultStats faults;
  IoPolicyStats io;
  uint32_t escalations_repaired = 0;
};

// Drives a real Database with the Reuter-parameterized workload,
// interleaving `concurrency` transactions, handling lock conflicts and
// deadlock victims, and measuring page transfers. Used by the validation
// benches to check the analytical model's shape and by integration tests.
class Simulator {
 public:
  explicit Simulator(const SimOptions& options);

  // Opens the database (idempotent; called by Run if needed).
  Status Init();

  // Runs `options.num_transactions` to completion and reports.
  Result<SimResult> Run();

  Database* db() { return db_.get(); }
  const SimOptions& options() const { return options_; }

 private:
  struct ActiveTxn {
    TxnId id = kInvalidTxnId;
    TxnScript script;
    size_t next_op = 0;
    uint32_t stall_rounds = 0;
  };

  // Executes one operation (or EOT) of `slot`; returns true if the
  // transaction finished (committed or aborted).
  Result<bool> Step(ActiveTxn* txn);
  Status StartTxn(ActiveTxn* slot);
  std::vector<uint8_t> RandomPagePayload();
  std::vector<uint8_t> RandomRecord();

  SimOptions options_;
  std::unique_ptr<Database> db_;
  WorkloadGenerator workload_;
  Random rng_;
  SimResult result_;
};

}  // namespace rda::sim

#endif  // RDA_SIM_SIMULATOR_H_
