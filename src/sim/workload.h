#ifndef RDA_SIM_WORKLOAD_H_
#define RDA_SIM_WORKLOAD_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "txn/transaction_manager.h"

namespace rda::sim {

// Knobs mirroring the analytical model's workload parameters (Section 5):
// s page references per transaction, fraction f_u of update transactions,
// update probability p_u per referenced page, abort probability p_b, and
// communality C — the probability that a reference hits a page referenced
// recently enough to still be buffer-resident.
struct WorkloadOptions {
  uint32_t num_pages = 64;          // S.
  uint32_t pages_per_txn = 8;       // s.
  double communality = 0.5;         // C.
  double update_txn_fraction = 0.5; // f_u.
  double update_probability = 0.5;  // p_u.
  double abort_probability = 0.0;   // p_b (requested client-side aborts).
  LoggingMode mode = LoggingMode::kPageLogging;
  uint32_t records_per_page = 4;    // Record-mode slot fan-out.
  // Size of the "hot window" from which communality hits are drawn; should
  // be at most the buffer capacity B for C to approximate the hit rate.
  uint32_t hot_window = 64;
  uint64_t seed = 1;
  // All references are offset by this page id: the generator draws from
  // [base_page, base_page + num_pages). Lets several generators (one per
  // worker thread in the schedule fuzzer) address disjoint partitions of
  // one database without coordinating.
  PageId base_page = 0;
};

// One page/record reference of a transaction script.
struct TxnOp {
  PageId page = kInvalidPageId;
  RecordSlot slot = 0;
  bool is_update = false;
};

// A pre-generated transaction: its references, whether it is an update
// transaction, and whether the client will abort it at the end.
struct TxnScript {
  bool is_update_txn = false;
  bool client_aborts = false;
  std::vector<TxnOp> ops;
};

// Deterministic workload generator. Communality is realised by drawing a
// reference, with probability C, from a sliding window of recently
// referenced pages (which the buffer keeps resident), and otherwise
// uniformly from the database.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(const WorkloadOptions& options);

  TxnScript Next();

  const WorkloadOptions& options() const { return options_; }

 private:
  PageId NextPage();

  WorkloadOptions options_;
  Random rng_;
  std::deque<PageId> hot_window_;
};

}  // namespace rda::sim

#endif  // RDA_SIM_WORKLOAD_H_
