#include "sim/workload.h"

#include <algorithm>

namespace rda::sim {

WorkloadGenerator::WorkloadGenerator(const WorkloadOptions& options)
    : options_(options), rng_(options.seed) {}

PageId WorkloadGenerator::NextPage() {
  PageId page;
  if (!hot_window_.empty() && rng_.Bernoulli(options_.communality)) {
    page = hot_window_[rng_.Uniform(hot_window_.size())];
  } else {
    page = options_.base_page +
           static_cast<PageId>(rng_.Uniform(options_.num_pages));
  }
  // Referencing a page keeps it hot.
  hot_window_.push_back(page);
  while (hot_window_.size() > options_.hot_window) {
    hot_window_.pop_front();
  }
  return page;
}

TxnScript WorkloadGenerator::Next() {
  TxnScript script;
  script.is_update_txn = rng_.Bernoulli(options_.update_txn_fraction);
  script.client_aborts =
      script.is_update_txn && rng_.Bernoulli(options_.abort_probability);
  script.ops.reserve(options_.pages_per_txn);
  for (uint32_t i = 0; i < options_.pages_per_txn; ++i) {
    TxnOp op;
    op.page = NextPage();
    op.is_update =
        script.is_update_txn && rng_.Bernoulli(options_.update_probability);
    if (options_.mode == LoggingMode::kRecordLogging) {
      op.slot = static_cast<RecordSlot>(
          rng_.Uniform(std::max<uint32_t>(1, options_.records_per_page)));
    }
    script.ops.push_back(op);
  }
  return script;
}

}  // namespace rda::sim
