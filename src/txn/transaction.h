#ifndef RDA_TXN_TRANSACTION_H_
#define RDA_TXN_TRANSACTION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/types.h"

namespace rda {

enum class TxnState : uint8_t { kActive, kCommitted, kAborted };

// In-memory copy of one logged before-image, kept so a runtime abort can
// undo without re-scanning the log (crash recovery scans the log instead).
struct LoggedUndo {
  PageId page = kInvalidPageId;
  bool record_granular = false;
  RecordSlot slot = 0;
  std::vector<uint8_t> before;  // Whole payload (page) or record bytes.
  Lsn lsn = kInvalidLsn;
};

// Latest value a transaction wrote to one record slot (record-logging mode);
// used to build after-images at commit even if the frame was evicted.
struct RecordWrite {
  PageId page = kInvalidPageId;
  RecordSlot slot = 0;
  std::vector<uint8_t> after;
  Lsn stamp = 0;  // Update stamp (pageLSN source).
};

// Per-transaction state tracked by the TransactionManager. A passive data
// holder; all protocol logic lives in the manager.
//
// Concurrency: all mutable fields are owned by the worker thread running
// the transaction, with one cross-thread exception — buffer-pool eviction
// (PropagateFrame) may log undo information on behalf of a frame's
// modifiers from any thread. `mu` serializes that: the owner takes it in
// brief sections (never across a pool call), evictions only try_lock it
// and treat failure as kBusy. `in_eot`, set under `mu` at the start of
// Commit/Abort, tells evictions to keep their hands off while EOT
// processing rewrites the transaction's state wholesale.
class Transaction {
 public:
  explicit Transaction(TxnId id) : id_(id) {}

  TxnId id() const { return id_; }

  // Guards every field below (see the class comment). Acquired after the
  // buffer shard latch and parity group latch, before the WAL mutex.
  std::mutex mu;
  // True while Commit/Abort runs. The EOT thread sets it under `mu` — the
  // acquisition doubles as a barrier that waits out any in-flight eviction
  // touch — then works without `mu`, exclusivity guaranteed because
  // evictions seeing the flag back off with kBusy.
  bool in_eot = false;

  std::atomic<TxnState> state{TxnState::kActive};

  // Begin-of-transaction record is written lazily, "before it writes back
  // any modified pages" (paper Section 4.3).
  bool bot_logged = false;
  Lsn bot_lsn = kInvalidLsn;

  // Whether a kChainHead record has been logged for this transaction.
  bool chain_head_logged = false;
  // Most recently unlogged-propagated page (head of the TWIST chain).
  PageId chain_head = kInvalidPageId;

  // Parity groups this transaction dirtied via unlogged propagation, in
  // order of first dirtying, each with the LSN of the kChainHead record its
  // kUnloggedFirst steal logged. That LSN is the group's undo-order
  // boundary: a logged before-image of the dirty page with a SMALLER LSN
  // predates the unlogged window and must be applied only after the parity
  // undo has cancelled the window's delta (reverse chronology per page).
  std::vector<GroupId> dirtied_groups;
  std::vector<Lsn> dirtied_group_window_lsn;  // Parallel to dirtied_groups.

  // Pages modified (page-logging granularity bookkeeping), insertion order,
  // de-duplicated.
  std::vector<PageId> modified_pages;

  // Logged before-images, append order (undo applies them in reverse).
  std::vector<LoggedUndo> logged_undos;

  // Record-mode writes (latest value per (page, slot)).
  std::vector<RecordWrite> record_writes;

  // Begin() wall clock, for the begin->EOT lifetime latency span (the
  // begin and end live in different manager calls, so RAII cannot span it).
  std::chrono::steady_clock::time_point begin_time;

  // Statistics for the simulator.
  uint64_t page_updates = 0;
  uint64_t record_updates = 0;
  uint64_t reads = 0;
  // Page transfers (array + log) attributed to this transaction's own
  // operations, EOT processing included. Maintained only while the
  // TransactionManager has an observability hub attached.
  uint64_t transfers = 0;

  void NoteModifiedPage(PageId page);
  void NoteDirtiedGroup(GroupId group, Lsn window_lsn);
  RecordWrite* FindRecordWrite(PageId page, RecordSlot slot);

 private:
  TxnId id_;
};

}  // namespace rda

#endif  // RDA_TXN_TRANSACTION_H_
