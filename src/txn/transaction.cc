#include "txn/transaction.h"

#include <algorithm>

namespace rda {

void Transaction::NoteModifiedPage(PageId page) {
  if (std::find(modified_pages.begin(), modified_pages.end(), page) ==
      modified_pages.end()) {
    modified_pages.push_back(page);
  }
}

void Transaction::NoteDirtiedGroup(GroupId group, Lsn window_lsn) {
  if (std::find(dirtied_groups.begin(), dirtied_groups.end(), group) ==
      dirtied_groups.end()) {
    dirtied_groups.push_back(group);
    dirtied_group_window_lsn.push_back(window_lsn);
  }
}

RecordWrite* Transaction::FindRecordWrite(PageId page, RecordSlot slot) {
  for (RecordWrite& write : record_writes) {
    if (write.page == page && write.slot == slot) {
      return &write;
    }
  }
  return nullptr;
}

}  // namespace rda
