#include "txn/transaction_manager.h"

#include <algorithm>
#include <random>
#include <string>
#include <thread>
#include <utility>

#include "storage/data_page_meta.h"
#include "txn/record_page.h"
#include "wal/log_record.h"

namespace rda {

TransactionManager::TransactionManager(const TxnConfig& config,
                                       TwinParityManager* parity,
                                       LogManager* log, LockManager* locks,
                                       const BufferPool::Options& pool_options)
    : config_(config),
      parity_(parity),
      log_(log),
      locks_(locks),
      pool_(
          pool_options,
          [this](PageId page, PageImage* out) {
            // Healed read: sector faults on live disks are repaired in
            // place; only a genuinely failed disk reaches the fallback.
            Status status = parity_->ReadDataHealed(page, out);
            if (status.IsIoError()) {
              // Degraded mode: reconstruct the page from its parity group
              // while the disk awaits rebuild.
              Result<std::vector<uint8_t>> rebuilt =
                  parity_->ReconstructDataPayload(page);
              if (!rebuilt.ok()) {
                return status;
              }
              out->payload = std::move(rebuilt).value();
              out->header = PageHeader{};
              return Status::Ok();
            }
            return status;
          },
          [this](Frame* frame) { return PropagateFrame(frame); }) {}

size_t TransactionManager::user_page_size() const {
  return parity_->array()->page_size() - kDataRegionOffset;
}

uint32_t TransactionManager::records_per_page() const {
  return RecordPageView::SlotsPerPage(parity_->array()->page_size(),
                                      config_.record_size);
}

uint64_t TransactionManager::TransfersNow() const {
  return parity_->array()->counters().total() + log_->counters().total();
}

void TransactionManager::AttachObs(obs::ObsHub* hub) {
  pool_.AttachObs(hub);
  trace_ = obs::TraceOf(hub);
  begun_counter_ = obs::GetCounter(hub, "txn.begun");
  committed_counter_ = obs::GetCounter(hub, "txn.committed");
  aborted_counter_ = obs::GetCounter(hub, "txn.aborted");
  before_logged_counter_ = obs::GetCounter(hub, "txn.before_images_logged");
  before_avoided_counter_ = obs::GetCounter(hub, "txn.before_images_avoided");
  transfers_per_commit_ = obs::GetHistogram(
      hub, "txn.transfers_per_commit", {1, 2, 4, 8, 16, 32, 64, 128, 256});
  const std::vector<double> us_bounds = {5,    10,   25,   50,    100,  250,
                                         500,  1000, 2500, 5000,  10000};
  commit_us_hist_ = obs::GetHistogram(hub, "txn.commit_us", us_bounds);
  abort_us_hist_ = obs::GetHistogram(hub, "txn.abort_us", us_bounds);
  spans_ = obs::SpansOf(hub);
  obs_attached_ = hub != nullptr;
}

TxnStats TransactionManager::stats() const {
  TxnStats s;
  s.begun = stats_.begun.load(std::memory_order_relaxed);
  s.committed = stats_.committed.load(std::memory_order_relaxed);
  s.aborted = stats_.aborted.load(std::memory_order_relaxed);
  s.before_images_logged =
      stats_.before_images_logged.load(std::memory_order_relaxed);
  s.before_images_avoided =
      stats_.before_images_avoided.load(std::memory_order_relaxed);
  return s;
}

void TransactionManager::ResetStats() {
  stats_.begun.store(0, std::memory_order_relaxed);
  stats_.committed.store(0, std::memory_order_relaxed);
  stats_.aborted.store(0, std::memory_order_relaxed);
  stats_.before_images_logged.store(0, std::memory_order_relaxed);
  stats_.before_images_avoided.store(0, std::memory_order_relaxed);
}

Result<TxnId> TransactionManager::Begin() {
  TxnId id;
  {
    std::lock_guard<std::mutex> lock(txns_mu_);
    id = next_txn_++;
    auto txn = std::make_unique<Transaction>(id);
    if (spans_ != nullptr) {
      txn->begin_time = std::chrono::steady_clock::now();
    }
    txns_.emplace(id, std::move(txn));
  }
  stats_.begun.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(begun_counter_);
  if (trace_ != nullptr) {
    obs::TraceEvent event;
    event.subsystem = obs::Subsystem::kTxn;
    event.kind = obs::EventKind::kTxnBegin;
    event.txn = id;
    trace_->Record(event);
  }
  return id;
}

Transaction* TransactionManager::Find(TxnId txn) {
  std::lock_guard<std::mutex> lock(txns_mu_);
  auto it = txns_.find(txn);
  return it == txns_.end() ? nullptr : it->second.get();
}

std::vector<TxnId> TransactionManager::ActiveTxns() const {
  std::vector<TxnId> out;
  {
    std::lock_guard<std::mutex> lock(txns_mu_);
    for (const auto& [id, txn] : txns_) {
      if (txn->state == TxnState::kActive) {
        out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void TransactionManager::BumpNextTxnId(TxnId floor) {
  std::lock_guard<std::mutex> lock(txns_mu_);
  next_txn_ = std::max(next_txn_, floor);
}

namespace {

Status RequireActive(Transaction* txn) {
  if (txn == nullptr) {
    return Status::NotFound("unknown transaction");
  }
  if (txn->state != TxnState::kActive) {
    return Status::FailedPrecondition("transaction not active");
  }
  return Status::Ok();
}

// Thread-local EOT markers: which transaction (of which manager) this
// thread is currently committing or aborting. PropagateFrame consults them
// so that the EOT's OWN propagations (the FORCE loop) pass the mid-EOT
// guard that turns everyone else away.
thread_local const void* tls_eot_manager = nullptr;
thread_local TxnId tls_eot_txn = kInvalidTxnId;

// Start-of-EOT barrier: sets txn->in_eot under the transaction mutex —
// the acquisition waits out any eviction currently touching the
// transaction; every later eviction sees the flag and answers kBusy — so
// the EOT body runs with exclusive use of the transaction without holding
// its mutex across pool or parity calls. Cleared on scope exit (error
// paths included).
class EotScope {
 public:
  EotScope(const void* manager, Transaction* txn) : txn_(txn) {
    {
      std::lock_guard<std::mutex> lock(txn->mu);
      txn->in_eot = true;
    }
    tls_eot_manager = manager;
    tls_eot_txn = txn->id();
  }
  ~EotScope() {
    tls_eot_manager = nullptr;
    tls_eot_txn = kInvalidTxnId;
    std::lock_guard<std::mutex> lock(txn_->mu);
    txn_->in_eot = false;
  }

 private:
  Transaction* txn_;
};

}  // namespace

Status TransactionManager::EnsureBot(Transaction* txn) {
  if (txn->bot_logged) {
    return Status::Ok();
  }
  LogRecord bot;
  bot.type = LogRecordType::kBot;
  bot.txn = txn->id();
  RDA_ASSIGN_OR_RETURN(txn->bot_lsn, log_->Append(std::move(bot)));
  txn->bot_logged = true;
  return Status::Ok();
}

Status TransactionManager::ReadPage(TxnId txn_id, PageId page,
                                    std::vector<uint8_t>* out) {
  Transaction* txn = Find(txn_id);
  RDA_RETURN_IF_ERROR(RequireActive(txn));
  if (config_.logging_mode != LoggingMode::kPageLogging) {
    return Status::FailedPrecondition("page API requires page logging mode");
  }
  RDA_RETURN_IF_ERROR(locks_->Acquire(txn_id, LockKey::Page(page),
                                      LockMode::kShared));
  const uint64_t transfers_start = TransfersStart();
  RDA_RETURN_IF_ERROR(pool_.WithFetchedFrame(
      page, nullptr, [out](Frame* frame) {
        out->assign(frame->payload.begin() + kDataRegionOffset,
                    frame->payload.end());
        return Status::Ok();
      }));
  std::lock_guard<std::mutex> lock(txn->mu);
  ++txn->reads;
  AttributeTransfers(txn, transfers_start);
  return Status::Ok();
}

Status TransactionManager::WritePage(TxnId txn_id, PageId page,
                                     const std::vector<uint8_t>& bytes) {
  Transaction* txn = Find(txn_id);
  RDA_RETURN_IF_ERROR(RequireActive(txn));
  if (config_.logging_mode != LoggingMode::kPageLogging) {
    return Status::FailedPrecondition("page API requires page logging mode");
  }
  if (bytes.size() != user_page_size()) {
    return Status::InvalidArgument("page write must cover the user region");
  }
  RDA_RETURN_IF_ERROR(locks_->Acquire(txn_id, LockKey::Page(page),
                                      LockMode::kExclusive));
  {
    std::lock_guard<std::mutex> lock(txn->mu);
    RDA_RETURN_IF_ERROR(EnsureBot(txn));
  }
  const uint64_t transfers_start = TransfersStart();
  RDA_RETURN_IF_ERROR(pool_.WithFetchedFrame(
      page, nullptr, [&](Frame* frame) {
        if (!frame->has_pending_before) {
          // Logical before-image for this propagation epoch: what an abort
          // (or a before-image log record) must restore. It may contain
          // committed-but-unpropagated bytes of earlier transactions —
          // which is why it is captured here and not derived from
          // last_propagated.
          frame->pending_before = frame->payload;
          frame->has_pending_before = true;
        }
        std::copy(bytes.begin(), bytes.end(),
                  frame->payload.begin() + kDataRegionOffset);
        DataPageMeta meta = LoadDataMeta(frame->payload);
        meta.page_lsn = log_->next_lsn();  // Monotone update stamp.
        StoreDataMeta(meta, &frame->payload);
        frame->dirty = true;
        frame->AddModifier(txn_id);
        return Status::Ok();
      }));
  std::lock_guard<std::mutex> lock(txn->mu);
  txn->NoteModifiedPage(page);
  ++txn->page_updates;
  AttributeTransfers(txn, transfers_start);
  return Status::Ok();
}

Status TransactionManager::ReadRecord(TxnId txn_id, PageId page,
                                      RecordSlot slot,
                                      std::vector<uint8_t>* out) {
  Transaction* txn = Find(txn_id);
  RDA_RETURN_IF_ERROR(RequireActive(txn));
  if (config_.logging_mode != LoggingMode::kRecordLogging) {
    return Status::FailedPrecondition(
        "record API requires record logging mode");
  }
  RDA_RETURN_IF_ERROR(locks_->Acquire(txn_id, LockKey::Record(page, slot),
                                      LockMode::kShared));
  const uint64_t transfers_start = TransfersStart();
  RDA_RETURN_IF_ERROR(pool_.WithFetchedFrame(
      page, nullptr, [&](Frame* frame) {
        RecordPageView view(&frame->payload, config_.record_size);
        return view.Read(slot, out);
      }));
  std::lock_guard<std::mutex> lock(txn->mu);
  ++txn->reads;
  AttributeTransfers(txn, transfers_start);
  return Status::Ok();
}

Status TransactionManager::WriteRecord(TxnId txn_id, PageId page,
                                       RecordSlot slot,
                                       const std::vector<uint8_t>& bytes) {
  Transaction* txn = Find(txn_id);
  RDA_RETURN_IF_ERROR(RequireActive(txn));
  if (config_.logging_mode != LoggingMode::kRecordLogging) {
    return Status::FailedPrecondition(
        "record API requires record logging mode");
  }
  RDA_RETURN_IF_ERROR(locks_->Acquire(txn_id, LockKey::Record(page, slot),
                                      LockMode::kExclusive));
  {
    std::lock_guard<std::mutex> lock(txn->mu);
    RDA_RETURN_IF_ERROR(EnsureBot(txn));
  }
  const uint64_t transfers_start = TransfersStart();
  Lsn stamp = kInvalidLsn;
  std::vector<uint8_t> after;
  RDA_RETURN_IF_ERROR(pool_.WithFetchedFrame(
      page, nullptr, [&](Frame* frame) {
        RecordPageView view(&frame->payload, config_.record_size);
        stamp = log_->next_lsn();

        // In-buffer undo info: value before this modification.
        RecordMod mod;
        mod.txn = txn_id;
        mod.slot = slot;
        mod.stamp = stamp;
        RDA_RETURN_IF_ERROR(view.Read(slot, &mod.before));
        frame->record_mods.push_back(std::move(mod));

        RDA_RETURN_IF_ERROR(view.Write(slot, bytes));
        DataPageMeta meta = LoadDataMeta(frame->payload);
        meta.page_lsn = stamp;
        StoreDataMeta(meta, &frame->payload);

        bool pending_known = false;
        for (const PendingMod& pending : frame->pending_mods) {
          if (pending.txn == txn_id && pending.slot == slot) {
            pending_known = true;
            break;
          }
        }
        if (!pending_known) {
          PendingMod pending;
          pending.txn = txn_id;
          pending.slot = slot;
          pending.before = frame->record_mods.back().before;
          frame->pending_mods.push_back(std::move(pending));
        }

        RDA_RETURN_IF_ERROR(view.Read(slot, &after));
        frame->dirty = true;
        frame->AddModifier(txn_id);
        return Status::Ok();
      }));

  std::lock_guard<std::mutex> lock(txn->mu);
  if (RecordWrite* existing = txn->FindRecordWrite(page, slot)) {
    existing->after = std::move(after);
    existing->stamp = stamp;
  } else {
    txn->record_writes.push_back(
        RecordWrite{page, slot, std::move(after), stamp});
  }
  txn->NoteModifiedPage(page);
  ++txn->record_updates;
  AttributeTransfers(txn, transfers_start);
  return Status::Ok();
}

Status TransactionManager::LogBeforeImagesForSteal(
    Frame* frame, const std::vector<Transaction*>& modifiers) {
  for (Transaction* txn : modifiers) {
    const TxnId txn_id = txn->id();
    RDA_RETURN_IF_ERROR(EnsureBot(txn));
    if (config_.logging_mode == LoggingMode::kPageLogging) {
      // The logical before-image captured at the transaction's first touch
      // of this propagation epoch (it may carry committed-but-unpropagated
      // bytes of earlier transactions — last_propagated may not).
      const std::vector<uint8_t>& before =
          frame->has_pending_before ? frame->pending_before
                                    : frame->last_propagated;
      LogRecord bi;
      bi.type = LogRecordType::kBeforeImage;
      bi.txn = txn_id;
      bi.page = frame->page;
      bi.before = before;
      RDA_ASSIGN_OR_RETURN(const Lsn lsn, log_->Append(bi));
      txn->logged_undos.push_back(
          LoggedUndo{frame->page, false, 0, before, lsn});
      stats_.before_images_logged.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(before_logged_counter_);
    } else {
      // One record-granular before-image per slot this transaction touched
      // since the last propagation, valued at the slot's logical
      // before-state (captured with the pending entry).
      std::vector<RecordSlot> seen;
      for (const PendingMod& pending : frame->pending_mods) {
        if (pending.txn != txn_id ||
            std::find(seen.begin(), seen.end(), pending.slot) !=
                seen.end()) {
          continue;
        }
        seen.push_back(pending.slot);
        LogRecord bi;
        bi.type = LogRecordType::kBeforeImage;
        bi.txn = txn_id;
        bi.page = frame->page;
        bi.slot = pending.slot;
        bi.record_granular = true;
        bi.before = pending.before;
        RDA_ASSIGN_OR_RETURN(const Lsn lsn, log_->Append(bi));
        txn->logged_undos.push_back(
            LoggedUndo{frame->page, true, pending.slot, pending.before,
                       lsn});
        stats_.before_images_logged.fetch_add(1, std::memory_order_relaxed);
        obs::Inc(before_logged_counter_);
      }
    }
  }
  // WAL: undo information must be stable before the page is overwritten.
  return log_->Flush();
}

bool TransactionManager::UnloggedCoverageExact(Frame* frame, TxnId txn) {
  // Parity undo restores the page to its last PROPAGATED state. That is
  // only the correct logical rollback if everything the frame changed since
  // the last propagation belongs to `txn`: any committed-but-unpropagated
  // bytes of earlier transactions (notFORCE) would be wiped with it. When
  // the logical before-state differs from the propagated state, fall back
  // to a logged steal whose before-image carries the committed bytes.
  if (config_.logging_mode == LoggingMode::kPageLogging) {
    return !frame->has_pending_before ||
           frame->pending_before == frame->last_propagated;
  }
  // Record mode: reconstruct "last_propagated + txn's pending changes" and
  // require it to equal the current payload outside the meta region.
  std::vector<uint8_t> expected = frame->last_propagated;
  RecordPageView expected_view(&expected, config_.record_size);
  std::vector<uint8_t> snapshot = frame->payload;
  RecordPageView payload_view(&snapshot, config_.record_size);
  for (const PendingMod& pending : frame->pending_mods) {
    if (pending.txn != txn) {
      return false;  // Another (committed) txn's pending change.
    }
    // The slot's pre-modification value must be the propagated one.
    std::vector<uint8_t> propagated;
    if (!expected_view.Read(pending.slot, &propagated).ok() ||
        propagated != pending.before) {
      return false;
    }
    std::vector<uint8_t> current;
    if (!payload_view.Read(pending.slot, &current).ok() ||
        !expected_view.Write(pending.slot, current).ok()) {
      return false;
    }
  }
  return std::equal(expected.begin() + kDataRegionOffset, expected.end(),
                    snapshot.begin() + kDataRegionOffset);
}

Status TransactionManager::PropagateFrame(Frame* frame) {
  // Called by the pool with the frame's shard latch held. Gather the active
  // modifiers, TRY-locking each one's mutex — holding them pins the
  // transactions' undo bookkeeping for the duration of the steal. A
  // contended mutex, or a modifier mid-EOT on another thread, turns the
  // whole propagation into kBusy: the eviction walk skips this victim
  // instead of blocking (the latch order forbids waiting on a transaction
  // mutex here, and a mid-EOT transaction owns its state exclusively).
  std::vector<Transaction*> modifiers;
  std::vector<std::unique_lock<std::mutex>> held;
  for (const TxnId id : frame->modifiers) {
    Transaction* txn = Find(id);
    if (txn == nullptr) {
      continue;
    }
    const bool own_eot = tls_eot_manager == this && tls_eot_txn == id;
    std::unique_lock<std::mutex> lock(txn->mu, std::try_to_lock);
    if (!lock.owns_lock()) {
      // Own-EOT propagations never contend here: the EOT thread dropped
      // the mutex before calling into the pool.
      return Status::Busy("frame modifier busy");
    }
    if (txn->in_eot && !own_eot) {
      return Status::Busy("frame modifier mid-EOT");
    }
    if (txn->state != TxnState::kActive) {
      continue;  // Committed/aborted modifiers were detached at EOT.
    }
    modifiers.push_back(txn);
    held.push_back(std::move(lock));
  }

  DataPageMeta meta = LoadDataMeta(frame->payload);
  meta.chain_prev = kInvalidPageId;

  // Group latch held across classify -> chain-head log -> propagate: pins
  // the Figure 3 classification against concurrent propagations into the
  // same group from other buffer shards.
  auto group_latch = parity_->LockGroupOfPage(frame->page);

  if (modifiers.size() == 1 && config_.rda_undo &&
      UnloggedCoverageExact(frame, modifiers[0]->id())) {
    Transaction* txn = modifiers[0];
    const TxnId owner = txn->id();
    const PropagationKind kind = parity_->Classify(frame->page, owner);
    if (kind == PropagationKind::kUnloggedFirst ||
        kind == PropagationKind::kUnloggedRepeat) {
      RDA_RETURN_IF_ERROR(EnsureBot(txn));
      Lsn window_lsn = kInvalidLsn;
      if (kind == PropagationKind::kUnloggedFirst) {
        // The paper pairs the chain head with the BOT record (the
        // (l_bc + l_h) term). The kChainHead record doubles as the
        // unlogged window's open marker: its LSN orders the window against
        // the transaction's logged before-images (a before-image of this
        // page with a smaller LSN predates the window and must be undone
        // only after the parity undo — see UndoDiskState and recovery
        // phase 4d). The marker is load-bearing only when such a
        // before-image actually exists; otherwise recovery's no-marker
        // default (everything in-window) is already right, so skip the
        // append past the transaction's first chain head and keep the log
        // at the paper's volume.
        bool prior_before_image = false;
        for (const LoggedUndo& undo : txn->logged_undos) {
          if (undo.page == frame->page) {
            prior_before_image = true;
            break;
          }
        }
        if (!txn->chain_head_logged || prior_before_image) {
          LogRecord head;
          head.type = LogRecordType::kChainHead;
          head.txn = owner;
          head.chain_head = frame->page;
          RDA_ASSIGN_OR_RETURN(window_lsn,
                               log_->Append(std::move(head)));
          txn->chain_head_logged = true;
        } else {
          // No durable marker needed: the window boundary for the runtime
          // abort path is simply "everything this transaction logs from
          // here on is in-window".
          window_lsn = log_->next_lsn();
        }
      }
      RDA_RETURN_IF_ERROR(log_->Flush());

      meta.txn_id = owner;
      meta.chain_prev =
          (kind == PropagationKind::kUnloggedFirst) ? txn->chain_head
                                                    : meta.chain_prev;
      if (kind == PropagationKind::kUnloggedRepeat) {
        // Re-steal of the same page: it is already on the chain.
        meta.chain_prev = LoadDataMeta(frame->payload).chain_prev;
      }
      StoreDataMeta(meta, &frame->payload);

      PageImage image(0);
      image.payload = frame->payload;
      RDA_RETURN_IF_ERROR(parity_->Propagate(frame->page, owner, kind,
                                             &frame->last_propagated, image));
      if (kind == PropagationKind::kUnloggedFirst) {
        txn->NoteDirtiedGroup(
            parity_->array()->layout().GroupOf(frame->page), window_lsn);
        txn->chain_head = frame->page;
      }
      stats_.before_images_avoided.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(before_avoided_counter_);
      return Status::Ok();
    }
  }

  // Logged (or plain committed-data) propagation.
  if (!modifiers.empty()) {
    RDA_RETURN_IF_ERROR(LogBeforeImagesForSteal(frame, modifiers));
  }
  // If this page is the covered (dirty) page of its group, its embedded
  // txn stamp and chain link are the parity-undo bookkeeping of the
  // covering transaction — a logged rewrite must NOT clear them.
  const GroupState& group_state = parity_->directory().Get(
      parity_->array()->layout().GroupOf(frame->page));
  if (group_state.dirty && group_state.dirty_page == frame->page) {
    meta.txn_id = group_state.dirty_txn;
    meta.chain_prev = LoadDataMeta(frame->payload).chain_prev;
  } else {
    meta.txn_id = kInvalidTxnId;
  }
  StoreDataMeta(meta, &frame->payload);
  PageImage image(0);
  image.payload = frame->payload;
  return parity_->Propagate(frame->page, kInvalidTxnId,
                            PropagationKind::kPlain, &frame->last_propagated,
                            image);
}

Status TransactionManager::LogAfterImages(Transaction* txn) {
  if (!config_.log_after_images) {
    return Status::Ok();
  }
  if (config_.logging_mode == LoggingMode::kPageLogging) {
    for (const PageId page : txn->modified_pages) {
      LogRecord ai;
      ai.type = LogRecordType::kAfterImage;
      ai.txn = txn->id();
      ai.page = page;
      bool resident = false;
      RDA_RETURN_IF_ERROR(pool_.WithFrame(page, [&](Frame* frame) {
        if (frame != nullptr) {
          resident = true;
          ai.after = frame->payload;
        }
        return Status::Ok();
      }));
      if (!resident) {
        // Stolen and evicted: the latest content is on disk.
        PageImage image;
        RDA_RETURN_IF_ERROR(parity_->ReadDataHealed(page, &image));
        ai.after = std::move(image.payload);
      }
      RDA_RETURN_IF_ERROR(log_->Append(std::move(ai)).status());
    }
    return Status::Ok();
  }
  for (const RecordWrite& write : txn->record_writes) {
    LogRecord ai;
    ai.type = LogRecordType::kAfterImage;
    ai.txn = txn->id();
    ai.page = write.page;
    ai.slot = write.slot;
    ai.record_granular = true;
    ai.after = write.after;
    RDA_RETURN_IF_ERROR(log_->Append(std::move(ai)).status());
  }
  return Status::Ok();
}

Status TransactionManager::Commit(TxnId txn_id) {
  Transaction* txn = Find(txn_id);
  RDA_RETURN_IF_ERROR(RequireActive(txn));
  // From here to return, this thread has exclusive use of `txn` without
  // holding its mutex: evictions answer kBusy to the in_eot flag.
  EotScope eot(this, txn);
  obs::ScopedSpan commit_span(spans_, obs::SpanKind::kTxnCommit,
                              commit_us_hist_, static_cast<int64_t>(txn_id));
  const uint64_t transfers_start = TransfersStart();

  if (config_.force) {
    // FORCE discipline: propagate every modified page before EOT. The
    // transaction is still active, so Figure 3 applies — this is where the
    // FORCE/TOC algorithms harvest unlogged propagations. A kBusy from a
    // shared frame (another modifier mid-flight) aborts the attempt; the
    // caller retries the commit.
    obs::ScopedSpan force_span(
        spans_, obs::SpanKind::kCommitForcePages, /*histogram=*/nullptr,
        static_cast<int64_t>(txn->modified_pages.size()));
    if (config_.elevator_force && txn->modified_pages.size() > 1) {
      // Group-then-page order: same-group propagations become back-to-back
      // RMWs on the same parity slot, which the async engine coalesces
      // into one physical write. Order does not affect correctness here —
      // each propagation is independent and the group latch serializes
      // parity state — so only the async path opts in.
      std::vector<PageId> ordered = txn->modified_pages;
      const Layout& layout = parity_->array()->layout();
      std::sort(ordered.begin(), ordered.end(),
                [&layout](PageId a, PageId b) {
                  const GroupId ga = layout.GroupOf(a);
                  const GroupId gb = layout.GroupOf(b);
                  return ga != gb ? ga < gb : a < b;
                });
      for (const PageId page : ordered) {
        RDA_RETURN_IF_ERROR(pool_.PropagatePage(page));
      }
    } else {
      for (const PageId page : txn->modified_pages) {
        RDA_RETURN_IF_ERROR(pool_.PropagatePage(page));
      }
    }
  }

  if (txn->bot_logged) {
    obs::ScopedSpan wal_span(spans_, obs::SpanKind::kCommitWalFlush,
                             /*histogram=*/nullptr,
                             static_cast<int64_t>(txn_id));
    RDA_RETURN_IF_ERROR(LogAfterImages(txn));
    LogRecord commit;
    commit.type = LogRecordType::kCommit;
    commit.txn = txn_id;
    RDA_ASSIGN_OR_RETURN(const Lsn commit_lsn,
                         log_->Append(std::move(commit)));
    // Group commit: ride a batch flush with concurrent committers instead
    // of forcing the log alone.
    RDA_RETURN_IF_ERROR(log_->CommitFlush(commit_lsn));
  }

  {
    // After the commit point, finalize the twin parity of dirtied groups
    // (crash between the two is rolled forward by recovery).
    obs::ScopedSpan parity_span(
        spans_, obs::SpanKind::kCommitParityFinalize, /*histogram=*/nullptr,
        static_cast<int64_t>(txn->dirtied_groups.size()));
    for (const GroupId group : txn->dirtied_groups) {
      RDA_RETURN_IF_ERROR(parity_->FinalizeCommit(group, txn_id));
    }
  }

  for (const PageId page : txn->modified_pages) {
    RDA_RETURN_IF_ERROR(pool_.WithFrame(page, [&](Frame* frame) {
      if (frame == nullptr) {
        return Status::Ok();
      }
      frame->RemoveModifier(txn_id);
      frame->record_mods.erase(
          std::remove_if(frame->record_mods.begin(),
                         frame->record_mods.end(),
                         [txn_id](const RecordMod& mod) {
                           return mod.txn == txn_id;
                         }),
          frame->record_mods.end());
      // Committed data needs no UNDO; drop this transaction's entries.
      frame->pending_mods.erase(
          std::remove_if(frame->pending_mods.begin(),
                         frame->pending_mods.end(),
                         [txn_id](const PendingMod& mod) {
                           return mod.txn == txn_id;
                         }),
          frame->pending_mods.end());
      // The next transaction's first write must capture ITS logical
      // before-state (which now includes this commit's bytes).
      if (frame->modifiers.empty()) {
        frame->has_pending_before = false;
        frame->pending_before.clear();
      }
      return Status::Ok();
    }));
  }

  locks_->ReleaseAll(txn_id);
  txn->state = TxnState::kCommitted;
  stats_.committed.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(committed_counter_);
  AttributeTransfers(txn, transfers_start);
  obs::Observe(transfers_per_commit_, static_cast<double>(txn->transfers));
  if (trace_ != nullptr) {
    obs::TraceEvent event;
    event.subsystem = obs::Subsystem::kTxn;
    event.kind = obs::EventKind::kTxnCommit;
    event.txn = txn_id;
    event.value = static_cast<int64_t>(txn->transfers);
    trace_->Record(event);
  }
  if (spans_ != nullptr) {
    spans_->RecordInterval(obs::SpanKind::kTxnLifetime, txn->begin_time,
                           std::chrono::steady_clock::now(),
                           static_cast<int64_t>(txn_id));
  }
  return Status::Ok();
}

Status TransactionManager::UndoDiskState(
    Transaction* txn,
    std::unordered_map<PageId, std::vector<uint8_t>>* restored_disk) {
  // Undo must be reverse-chronological PER PAGE. Logged before-images taken
  // INSIDE a group's unlogged window (after its kUnloggedFirst steal) go
  // first: such an image can contain this transaction's own bytes from the
  // unlogged steal, and restoring it re-creates exactly the state the
  // parity undo then cancels — P xor P' equals the unlogged delta, so the
  // parity undo lands on the window's base image (see DESIGN.md 4.3). A
  // before-image logged BEFORE the window opened must instead be applied
  // only AFTER the parity undo: applying it first would change the data
  // page out from under the XOR cancellation and the parity undo would
  // "restore" garbage (base xor new xor before).
  std::unordered_map<PageId, Lsn> window_start;
  for (size_t i = 0; i < txn->dirtied_groups.size(); ++i) {
    const GroupState& state =
        parity_->directory().Get(txn->dirtied_groups[i]);
    if (state.dirty && state.dirty_txn == txn->id()) {
      window_start[state.dirty_page] = txn->dirtied_group_window_lsn[i];
    }
  }
  const auto apply_logged_undo = [&](const LoggedUndo& undo) -> Status {
    if (!undo.record_granular) {
      RDA_RETURN_IF_ERROR(parity_->ApplyLoggedUndo(undo.page, undo.before));
      (*restored_disk)[undo.page] = undo.before;
      return Status::Ok();
    }
    // Record-granular: patch the slot inside the current on-disk payload.
    // The group latch spans the read-modify-write and the dirty-group
    // directory check.
    auto group_latch = parity_->LockGroupOfPage(undo.page);
    std::vector<uint8_t> payload;
    auto cached = restored_disk->find(undo.page);
    if (cached != restored_disk->end()) {
      payload = cached->second;
    } else {
      PageImage image;
      RDA_RETURN_IF_ERROR(parity_->ReadDataHealed(undo.page, &image));
      payload = std::move(image.payload);
    }
    RecordPageView view(&payload, config_.record_size);
    RDA_RETURN_IF_ERROR(view.Write(undo.slot, undo.before));
    DataPageMeta meta = LoadDataMeta(payload);
    const GroupState& undo_group = parity_->directory().Get(
        parity_->array()->layout().GroupOf(undo.page));
    if (!(undo_group.dirty && undo_group.dirty_page == undo.page)) {
      meta.txn_id = kInvalidTxnId;  // Keep the covering txn's stamp intact.
    }
    meta.page_lsn = 0;  // Mixed state: force full REDO replay after a crash.
    StoreDataMeta(meta, &payload);
    RDA_RETURN_IF_ERROR(parity_->ApplyLoggedUndo(undo.page, payload));
    (*restored_disk)[undo.page] = std::move(payload);
    return Status::Ok();
  };

  std::vector<const LoggedUndo*> pre_window;
  for (auto it = txn->logged_undos.rbegin(); it != txn->logged_undos.rend();
       ++it) {
    const LoggedUndo& undo = *it;
    auto window = window_start.find(undo.page);
    if (window != window_start.end() && undo.lsn < window->second) {
      pre_window.push_back(&undo);  // Kept in reverse LSN order.
      continue;
    }
    RDA_RETURN_IF_ERROR(apply_logged_undo(undo));
  }

  // Parity undo: cancels each dirtied group's unlogged delta exactly.
  for (const GroupId group : txn->dirtied_groups) {
    auto group_latch = parity_->LockGroup(group);
    const GroupState& state = parity_->directory().Get(group);
    if (!state.dirty || state.dirty_txn != txn->id()) {
      continue;  // Already finalized or undone.
    }
    RDA_ASSIGN_OR_RETURN(ParityUndoResult undo,
                         parity_->UndoUnloggedUpdate(group, txn->id()));
    if (undo.payload_restored) {
      (*restored_disk)[undo.page] = std::move(undo.restored_payload);
    }
  }

  // Pre-window before-images LAST, still in reverse LSN order: the parity
  // undo above has rewound their pages to each window's base image, so
  // these now apply to the state they were captured against.
  for (const LoggedUndo* undo : pre_window) {
    RDA_RETURN_IF_ERROR(apply_logged_undo(*undo));
  }
  return Status::Ok();
}

void TransactionManager::CleanBufferAfterAbort(
    Transaction* txn,
    const std::unordered_map<PageId, std::vector<uint8_t>>& restored_disk) {
  if (config_.logging_mode == LoggingMode::kPageLogging) {
    // Pages are not shared between active transactions under page locking,
    // but the frame may hold committed-but-unpropagated bytes of EARLIER
    // transactions (notFORCE) underneath this one's writes — so instead of
    // discarding, restore the frame to the logical before-state: the
    // disk-undo result if the page was propagated, else the captured
    // pending_before snapshot.
    for (const PageId page : txn->modified_pages) {
      auto restored = restored_disk.find(page);
      pool_.WithFrame(page, [&](Frame* frame) {
        if (frame == nullptr) {
          return Status::Ok();
        }
        if (restored != restored_disk.end()) {
          frame->payload = restored->second;
          frame->last_propagated = restored->second;
        } else if (frame->has_pending_before) {
          frame->payload = frame->pending_before;
        }
        frame->RemoveModifier(txn->id());
        frame->pending_mods.clear();
        frame->has_pending_before = false;
        frame->pending_before.clear();
        frame->dirty = frame->payload != frame->last_propagated;
        return Status::Ok();
      }).ok();
    }
    return;
  }
  for (const PageId page : txn->modified_pages) {
    auto restored = restored_disk.find(page);
    pool_.WithFrame(page, [&](Frame* frame) {
      if (frame == nullptr) {
        return Status::Ok();
      }
      if (restored != restored_disk.end()) {
        // The disk-level undo rewrote this page; the frame may hold stale
        // content from before an earlier steal (its in-buffer undo info was
        // lost with the eviction). Reconcile: every slot this transaction
        // ever wrote takes its restored on-disk (pre-transaction) value;
        // every other slot keeps the buffer value — that preserves other
        // active transactions' changes and committed-but-unpropagated data.
        RecordPageView frame_view(&frame->payload, config_.record_size);
        std::vector<uint8_t> restored_copy = restored->second;
        RecordPageView disk_view(&restored_copy, config_.record_size);
        for (const RecordWrite& write : txn->record_writes) {
          if (write.page != page) {
            continue;
          }
          std::vector<uint8_t> bytes;
          if (disk_view.Read(write.slot, &bytes).ok()) {
            frame_view.Write(write.slot, bytes).ok();
          }
        }
      } else {
        // Never propagated: revert this transaction's record modifications
        // in reverse append order (stamps can tie when no log append
        // happened between updates, so the vector order is the authority).
        std::vector<const RecordMod*> mine;
        for (const RecordMod& mod : frame->record_mods) {
          if (mod.txn == txn->id()) {
            mine.push_back(&mod);
          }
        }
        RecordPageView view(&frame->payload, config_.record_size);
        for (auto it = mine.rbegin(); it != mine.rend(); ++it) {
          view.Write((*it)->slot, (*it)->before).ok();
        }
      }
      frame->record_mods.erase(
          std::remove_if(
              frame->record_mods.begin(), frame->record_mods.end(),
              [txn](const RecordMod& mod) { return mod.txn == txn->id(); }),
          frame->record_mods.end());
      frame->pending_mods.erase(
          std::remove_if(
              frame->pending_mods.begin(), frame->pending_mods.end(),
              [txn](const PendingMod& mod) { return mod.txn == txn->id(); }),
          frame->pending_mods.end());
      frame->RemoveModifier(txn->id());
      if (restored != restored_disk.end()) {
        frame->last_propagated = restored->second;
      }
      if (frame->modifiers.empty() && frame->record_mods.empty() &&
          frame->payload == frame->last_propagated) {
        frame->dirty = false;
      }
      return Status::Ok();
    }).ok();
  }
}

Status TransactionManager::Abort(TxnId txn_id) {
  Transaction* txn = Find(txn_id);
  RDA_RETURN_IF_ERROR(RequireActive(txn));
  EotScope eot(this, txn);
  obs::ScopedSpan abort_span(spans_, obs::SpanKind::kTxnAbort,
                             abort_us_hist_, static_cast<int64_t>(txn_id));
  const uint64_t transfers_start = TransfersStart();

  std::unordered_map<PageId, std::vector<uint8_t>> restored_disk;
  RDA_RETURN_IF_ERROR(UndoDiskState(txn, &restored_disk));
  CleanBufferAfterAbort(txn, restored_disk);

  if (txn->bot_logged) {
    LogRecord done;
    done.type = LogRecordType::kAbortComplete;
    done.txn = txn_id;
    RDA_RETURN_IF_ERROR(log_->Append(std::move(done)).status());
    RDA_RETURN_IF_ERROR(log_->Flush());
  }

  locks_->ReleaseAll(txn_id);
  txn->state = TxnState::kAborted;
  stats_.aborted.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(aborted_counter_);
  AttributeTransfers(txn, transfers_start);
  if (trace_ != nullptr) {
    obs::TraceEvent event;
    event.subsystem = obs::Subsystem::kTxn;
    event.kind = obs::EventKind::kTxnAbort;
    event.txn = txn_id;
    event.value = static_cast<int64_t>(txn->transfers);
    trace_->Record(event);
  }
  if (spans_ != nullptr) {
    spans_->RecordInterval(obs::SpanKind::kTxnLifetime, txn->begin_time,
                           std::chrono::steady_clock::now(),
                           static_cast<int64_t>(txn_id));
  }
  return Status::Ok();
}

Result<ConcurrentResult> TransactionManager::RunConcurrent(
    const ConcurrentWorkload& workload) {
  if (workload.threads == 0 || workload.pages == 0) {
    return Status::InvalidArgument("empty concurrent workload");
  }
  struct Op {
    bool write = false;
    PageId page = 0;
    RecordSlot slot = 0;
    uint8_t value = 0;
  };
  struct WorkerOutcome {
    ConcurrentResult result;
    Status error = Status::Ok();
  };
  const bool record_mode = config_.logging_mode == LoggingMode::kRecordLogging;
  const size_t write_size =
      record_mode ? config_.record_size : user_page_size();
  const uint32_t slots = record_mode ? records_per_page() : 1;

  std::vector<WorkerOutcome> outcomes(workload.threads);
  std::atomic<bool> failed{false};

  auto worker = [&](uint32_t worker_id) {
    WorkerOutcome& out = outcomes[worker_id];
    std::mt19937_64 rng(workload.seed +
                        worker_id * uint64_t{0x9e3779b97f4a7c15});
    std::vector<uint8_t> scratch;
    for (uint32_t t = 0; t < workload.txns_per_thread; ++t) {
      // Draw the transaction's op script once; retries replay it.
      std::vector<Op> ops(workload.ops_per_txn);
      for (Op& op : ops) {
        op.write = (static_cast<double>(rng() % 1000) / 1000.0) <
                   workload.write_fraction;
        op.page = static_cast<PageId>(rng() % workload.pages);
        op.slot = static_cast<RecordSlot>(rng() % slots);
        op.value = static_cast<uint8_t>(rng());
      }
      bool committed = false;
      for (uint32_t attempt = 0;
           attempt < workload.max_attempts && !committed; ++attempt) {
        if (failed.load(std::memory_order_relaxed)) {
          return;
        }
        Result<TxnId> begun = Begin();
        if (!begun.ok()) {
          out.error = begun.status();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        const TxnId id = begun.value();
        bool busy = false;
        Status hard = Status::Ok();
        for (const Op& op : ops) {
          Status s;
          if (op.write) {
            std::vector<uint8_t> bytes(write_size, op.value);
            s = record_mode ? WriteRecord(id, op.page, op.slot, bytes)
                            : WritePage(id, op.page, bytes);
          } else {
            s = record_mode ? ReadRecord(id, op.page, op.slot, &scratch)
                            : ReadPage(id, op.page, &scratch);
          }
          if (s.IsBusy()) {
            busy = true;
            break;
          }
          if (!s.ok()) {
            hard = s;
            break;
          }
        }
        if (!busy && hard.ok()) {
          const Status c = Commit(id);
          if (c.IsBusy()) {
            busy = true;
          } else if (!c.ok()) {
            hard = c;
          } else {
            committed = true;
            ++out.result.committed;
          }
        }
        if (!committed) {
          const Status a = Abort(id);
          if (!a.ok() && hard.ok()) {
            hard = a;
          }
          ++out.result.aborted;
          if (busy) {
            ++out.result.busy_retries;
            std::this_thread::yield();
          }
        }
        if (!hard.ok()) {
          out.error = hard;
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
      if (!committed) {
        out.error = Status::Aborted("concurrent workload livelocked");
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workload.threads);
  for (uint32_t i = 0; i < workload.threads; ++i) {
    threads.emplace_back(worker, i);
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  ConcurrentResult total;
  for (const WorkerOutcome& out : outcomes) {
    if (!out.error.ok()) {
      return out.error;
    }
    total.committed += out.result.committed;
    total.aborted += out.result.aborted;
    total.busy_retries += out.result.busy_retries;
  }
  return total;
}

void TransactionManager::LoseVolatileState() {
  pool_.LoseAll();
  locks_->Clear();
  std::lock_guard<std::mutex> lock(txns_mu_);
  txns_.clear();
}

}  // namespace rda
