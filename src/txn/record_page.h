#ifndef RDA_TXN_RECORD_PAGE_H_
#define RDA_TXN_RECORD_PAGE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace rda {

// A fixed-size-record slotted view over a data page payload. The record
// region starts after the embedded page metadata (kDataRegionOffset); all
// slots have the same size, which keeps the record-logging arithmetic of the
// paper's model (record length r / e, page length l_p) straightforward.
//
// The view does not own the payload; it reads/writes the caller's buffer.
class RecordPageView {
 public:
  // Number of record slots a page of `page_size` offers for `record_size`.
  static uint32_t SlotsPerPage(size_t page_size, size_t record_size);

  RecordPageView(std::vector<uint8_t>* payload, size_t record_size);

  uint32_t num_slots() const;

  // Copies the record at `slot` into `*out` (resized to record_size).
  Status Read(RecordSlot slot, std::vector<uint8_t>* out) const;

  // Writes `bytes` into `slot`. bytes.size() must be <= record_size; the
  // remainder of the slot is zero-filled.
  Status Write(RecordSlot slot, const std::vector<uint8_t>& bytes);

  // Byte offset of `slot` within the payload (tests / log bookkeeping).
  size_t SlotOffset(RecordSlot slot) const;
  size_t record_size() const { return record_size_; }

 private:
  std::vector<uint8_t>* payload_;
  size_t record_size_;
};

}  // namespace rda

#endif  // RDA_TXN_RECORD_PAGE_H_
