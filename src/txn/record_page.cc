#include "txn/record_page.h"

#include <cstring>
#include <string>

#include "storage/data_page_meta.h"

namespace rda {

uint32_t RecordPageView::SlotsPerPage(size_t page_size, size_t record_size) {
  if (record_size == 0 || page_size <= kDataRegionOffset) {
    return 0;
  }
  return static_cast<uint32_t>((page_size - kDataRegionOffset) / record_size);
}

RecordPageView::RecordPageView(std::vector<uint8_t>* payload,
                               size_t record_size)
    : payload_(payload), record_size_(record_size) {}

uint32_t RecordPageView::num_slots() const {
  return SlotsPerPage(payload_->size(), record_size_);
}

size_t RecordPageView::SlotOffset(RecordSlot slot) const {
  return kDataRegionOffset + static_cast<size_t>(slot) * record_size_;
}

Status RecordPageView::Read(RecordSlot slot, std::vector<uint8_t>* out) const {
  if (slot >= num_slots()) {
    return Status::InvalidArgument("record slot " + std::to_string(slot) +
                                   " out of range");
  }
  out->assign(payload_->begin() + SlotOffset(slot),
              payload_->begin() + SlotOffset(slot) + record_size_);
  return Status::Ok();
}

Status RecordPageView::Write(RecordSlot slot,
                             const std::vector<uint8_t>& bytes) {
  if (slot >= num_slots()) {
    return Status::InvalidArgument("record slot " + std::to_string(slot) +
                                   " out of range");
  }
  if (bytes.size() > record_size_) {
    return Status::InvalidArgument("record too large for slot");
  }
  uint8_t* dst = payload_->data() + SlotOffset(slot);
  std::memcpy(dst, bytes.data(), bytes.size());
  std::memset(dst + bytes.size(), 0, record_size_ - bytes.size());
  return Status::Ok();
}

}  // namespace rda
