#ifndef RDA_TXN_TRANSACTION_MANAGER_H_
#define RDA_TXN_TRANSACTION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "buffer/buffer_pool.h"
#include "common/status.h"
#include "common/types.h"
#include "lock/lock_manager.h"
#include "obs/obs.h"
#include "parity/twin_parity_manager.h"
#include "txn/transaction.h"
#include "wal/log_manager.h"

namespace rda {

// Logging granularity (paper Sections 5.2 vs 5.3).
enum class LoggingMode : uint8_t { kPageLogging, kRecordLogging };

// Recovery-algorithm configuration, expressed in the paper's taxonomy
// (Haerder & Reuter): propagation is always notATOMIC (update-in-place),
// page replacement is always STEAL — the combination the paper restricts
// itself to ("the use of a log chain makes UNDO logging ... STEAL policy",
// Section 4.4) — while FORCE/notFORCE and RDA on/off are knobs.
struct TxnConfig {
  LoggingMode logging_mode = LoggingMode::kPageLogging;
  // FORCE: all pages a transaction modified are propagated before EOT
  // (TOC-style, no separate checkpoints). notFORCE pairs with ACC
  // checkpoints driven by recovery/Checkpointer.
  bool force = true;
  // Use the twin-page parity scheme to skip UNDO logging where Figure 3
  // permits. Off = the traditional baseline.
  bool rda_undo = true;
  // Log after-images at commit (REDO). Required for notFORCE; kept on for
  // FORCE too, matching the paper's cost model (UNDO and REDO log files).
  bool log_after_images = true;
  // Record size for kRecordLogging (fixed-size slots).
  size_t record_size = 64;
  // FORCE the commit's page propagations in (parity group, page) order so
  // same-group writes land adjacently in the async engine's submission
  // queues (elevator-friendly, maximizes parity-slot coalescing). Set by
  // Database::Open when the engine is on; off keeps the insertion order the
  // synchronous path has always used, bit-for-bit.
  bool elevator_force = false;
};

// Outcome counters used by the simulator to report the paper's metrics.
struct TxnStats {
  uint64_t begun = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t before_images_logged = 0;
  uint64_t before_images_avoided = 0;  // Unlogged steals (the RDA win).
};

// Parameters for RunConcurrent: a closed-loop multi-threaded workload where
// each worker runs transactions back to back until its quota of commits is
// reached. Lock conflicts and mid-EOT frame collisions surface as kBusy and
// are resolved by abort-and-retry (deadlock victims included).
struct ConcurrentWorkload {
  uint32_t threads = 4;
  uint32_t txns_per_thread = 25;  // Commits each worker must complete.
  uint32_t ops_per_txn = 4;
  uint32_t pages = 64;      // Page ids drawn uniformly from [0, pages).
  double write_fraction = 1.0;
  uint64_t seed = 1;
  // Abort-and-retry attempts per transaction before giving up (livelock
  // guard; hitting it is an error).
  uint32_t max_attempts = 10000;
};

struct ConcurrentResult {
  uint64_t committed = 0;
  uint64_t aborted = 0;      // Abort-and-retry cycles (all retried).
  uint64_t busy_retries = 0;  // kBusy occurrences that triggered a retry.
};

// The transaction manager: BOT/EOT processing, page- and record-granular
// updates through the buffer pool, the Figure 3 UNDO-logging decision on
// every steal, commit finalization of dirtied parity groups, and runtime
// abort via parity and/or logged before-images.
//
// Thread safety (DESIGN.md section 11): distinct transactions may run on
// distinct threads concurrently — one thread per transaction at a time.
// Lock conflicts surface as kBusy for the caller to retry or resolve via
// deadlock-victim abort, exactly as in the cooperative single-threaded
// simulator. Internally the manager relies on the buffer pool's shard
// latches for frame state, per-parity-group latches for group state, the
// per-transaction mutex for cross-thread eviction touches, and a small
// table mutex for the transaction map. The latch order is
//   buffer shard -> parity group -> txn mutex -> WAL / disk / lock table,
// and the only place a later lock is awaited while holding an earlier one
// is the eviction callback — which only ever try_locks transaction
// mutexes, so it can skip (kBusy) instead of deadlocking.
class TransactionManager {
 public:
  TransactionManager(const TxnConfig& config, TwinParityManager* parity,
                     LogManager* log, LockManager* locks,
                     const BufferPool::Options& pool_options);

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  Result<TxnId> Begin();

  // Page-granular API (kPageLogging). `out`/`bytes` cover the user region
  // of the page: page_size - kDataRegionOffset bytes.
  Status ReadPage(TxnId txn, PageId page, std::vector<uint8_t>* out);
  Status WritePage(TxnId txn, PageId page, const std::vector<uint8_t>& bytes);

  // Record-granular API (kRecordLogging). `bytes` at most record_size.
  Status ReadRecord(TxnId txn, PageId page, RecordSlot slot,
                    std::vector<uint8_t>* out);
  Status WriteRecord(TxnId txn, PageId page, RecordSlot slot,
                     const std::vector<uint8_t>& bytes);

  Status Commit(TxnId txn);
  Status Abort(TxnId txn);

  // Runs `workload.threads` worker threads, each committing
  // `workload.txns_per_thread` transactions of `workload.ops_per_txn`
  // random page (or record) operations. kBusy outcomes abort and retry the
  // transaction. Returns aggregate outcome counts, or the first hard error
  // any worker hit.
  Result<ConcurrentResult> RunConcurrent(const ConcurrentWorkload& workload);

  // True iff `txn` is blocked in a deadlock cycle (scheduler picks victims).
  bool WouldDeadlock(TxnId txn) const { return locks_->WouldDeadlock(txn); }

  // Drops all volatile state: buffer, lock table, active-transaction table.
  void LoseVolatileState();

  Transaction* Find(TxnId txn);
  std::vector<TxnId> ActiveTxns() const;

  BufferPool* pool() { return &pool_; }
  TwinParityManager* parity() { return parity_; }
  LogManager* log() { return log_; }
  const TxnConfig& config() const { return config_; }
  // Snapshot by value: counters are bumped concurrently.
  TxnStats stats() const;
  void ResetStats();
  size_t user_page_size() const;
  uint32_t records_per_page() const;

  // Restores the transaction-id counter after recovery so new transactions
  // never reuse the id of a pre-crash one.
  void BumpNextTxnId(TxnId floor);

  // Hooks the manager (and its buffer pool) into the observability hub:
  // `txn.*` counters, per-transaction page-transfer attribution and the
  // txn-lifecycle trace events. Null detaches.
  void AttachObs(obs::ObsHub* hub);

 private:
  // Eviction/propagation callback registered with the buffer pool: applies
  // the Figure 3 decision and performs logging + parity-maintained writes.
  // Runs under the frame's shard latch; takes the page's parity-group latch
  // across classify -> log -> propagate and try_locks every active
  // modifier's mutex — a busy or mid-EOT modifier makes it return kBusy so
  // the eviction walk can pick another victim.
  Status PropagateFrame(Frame* frame);

  // True iff parity undo of `frame`'s current propagation epoch would land
  // exactly on the logical before-state of `txn` (no committed-but-
  // unpropagated bytes of other transactions would be wiped).
  bool UnloggedCoverageExact(Frame* frame, TxnId txn);

  // Writes the BOT record if this is the transaction's first update. The
  // caller must hold txn->mu or have EOT exclusivity.
  Status EnsureBot(Transaction* txn);

  // Logs before-images for a steal that cannot use parity coverage, for
  // every active modifier of the frame (whose mutexes the caller holds),
  // then flushes (WAL rule).
  Status LogBeforeImagesForSteal(Frame* frame,
                                 const std::vector<Transaction*>& modifiers);

  // Disk-level undo of everything `txn` propagated: parity undo of dirtied
  // groups first, then logged before-images in reverse. Fills
  // `restored_disk` with the page payloads now on disk.
  Status UndoDiskState(Transaction* txn,
                       std::unordered_map<PageId, std::vector<uint8_t>>*
                           restored_disk);

  // Reverts txn's record modifications inside resident frames and detaches
  // the transaction from them.
  void CleanBufferAfterAbort(
      Transaction* txn,
      const std::unordered_map<PageId, std::vector<uint8_t>>& restored_disk);

  Status LogAfterImages(Transaction* txn);

  // Array + log page transfers so far; deltas around an operation are the
  // transfers it caused (steals included — cost goes to the op that forced
  // them). Only consulted while observability is attached.
  uint64_t TransfersNow() const;
  uint64_t TransfersStart() const {
    return obs_attached_ ? TransfersNow() : 0;
  }
  void AttributeTransfers(Transaction* txn, uint64_t start) {
    if (obs_attached_ && txn != nullptr) {
      txn->transfers += TransfersNow() - start;
    }
  }

  TxnConfig config_;
  TwinParityManager* parity_;
  LogManager* log_;
  LockManager* locks_;
  BufferPool pool_;
  // Guards the map and the id counter only (leaf lock, held briefly);
  // Transaction objects are pointer-stable and carry their own mutex.
  mutable std::mutex txns_mu_;
  std::unordered_map<TxnId, std::unique_ptr<Transaction>> txns_;
  TxnId next_txn_ = 1;

  // Per-field atomic stats: bumped from several worker threads.
  struct AtomicTxnStats {
    std::atomic<uint64_t> begun{0};
    std::atomic<uint64_t> committed{0};
    std::atomic<uint64_t> aborted{0};
    std::atomic<uint64_t> before_images_logged{0};
    std::atomic<uint64_t> before_images_avoided{0};
  };
  AtomicTxnStats stats_;

  // Observability (null / false = disabled).
  bool obs_attached_ = false;
  obs::TraceBuffer* trace_ = nullptr;
  obs::Counter* begun_counter_ = nullptr;
  obs::Counter* committed_counter_ = nullptr;
  obs::Counter* aborted_counter_ = nullptr;
  obs::Counter* before_logged_counter_ = nullptr;
  obs::Counter* before_avoided_counter_ = nullptr;
  obs::Histogram* transfers_per_commit_ = nullptr;
  // Latency spans: the whole Commit()/Abort() plus its force/WAL/parity
  // segments, and the begin->EOT lifetime interval.
  obs::SpanCollector* spans_ = nullptr;
  obs::Histogram* commit_us_hist_ = nullptr;
  obs::Histogram* abort_us_hist_ = nullptr;
};

}  // namespace rda

#endif  // RDA_TXN_TRANSACTION_MANAGER_H_
