#ifndef RDA_LOCK_LOCK_MANAGER_H_
#define RDA_LOCK_LOCK_MANAGER_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace rda {

enum class LockMode : uint8_t { kShared, kExclusive };

// A lockable resource: a whole page (page-logging mode) or one record slot
// (record-logging mode — "record locking is used in order to enhance
// concurrency", paper Section 5.3.1).
struct LockKey {
  PageId page = kInvalidPageId;
  RecordSlot slot = 0;
  bool record_granular = false;

  static LockKey Page(PageId page) { return LockKey{page, 0, false}; }
  static LockKey Record(PageId page, RecordSlot slot) {
    return LockKey{page, slot, true};
  }

  uint64_t Encoded() const {
    return (static_cast<uint64_t>(page) << 32) |
           (static_cast<uint64_t>(slot) << 1) | (record_granular ? 1 : 0);
  }
};

// Strict two-phase locking: Acquire either grants immediately or returns
// kBusy and records a wait-for edge; the caller (scheduler or worker
// thread) retries or aborts the transaction if WouldDeadlock reports a
// cycle. Locks are held until ReleaseAll at EOT — the paper's protocols
// all assume strictness.
//
// Thread safety: one internal mutex guards the lock table and the wait-for
// graph; every public method takes it. The mutex is a leaf in the latch
// order — no callback runs under it, so it can never participate in a
// latch deadlock (transaction-level deadlocks surface as kBusy +
// WouldDeadlock, never as blocked threads).
class LockManager {
 public:
  LockManager() = default;

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  // Grants or upgrades the lock, or returns kBusy (wait-for edges recorded).
  Status Acquire(TxnId txn, const LockKey& key, LockMode mode);

  // True iff `txn` currently holds a lock on `key` at least as strong as
  // `mode`.
  bool Holds(TxnId txn, const LockKey& key, LockMode mode) const;

  // True iff txn participates in a wait-for cycle (deadlock victim check).
  bool WouldDeadlock(TxnId txn) const;

  // Forgets txn's wait-for edges (call when giving up a blocked request).
  void CancelWaits(TxnId txn);

  // Releases every lock of txn and its wait-for edges (EOT / abort).
  void ReleaseAll(TxnId txn);

  // Drops every lock and wait-for edge (system crash: lock tables are
  // volatile).
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    table_.clear();
    waits_for_.clear();
  }

  // Number of distinct resources currently locked (tests/metrics).
  size_t LockedResourceCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return table_.size();
  }
  // Number of locks held by txn.
  size_t HeldCount(TxnId txn) const;

 private:
  struct Entry {
    // Holders; all-shared, or a single exclusive holder.
    std::unordered_map<TxnId, LockMode> holders;
  };

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Entry> table_;
  // wait-for graph: blocked txn -> txns it waits on.
  std::unordered_map<TxnId, std::unordered_set<TxnId>> waits_for_;
};

}  // namespace rda

#endif  // RDA_LOCK_LOCK_MANAGER_H_
