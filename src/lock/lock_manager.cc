#include "lock/lock_manager.h"

#include <string>

namespace rda {

Status LockManager::Acquire(TxnId txn, const LockKey& key, LockMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = table_[key.Encoded()];
  auto self = entry.holders.find(txn);
  if (self != entry.holders.end()) {
    if (self->second == LockMode::kExclusive || mode == LockMode::kShared) {
      return Status::Ok();  // Already strong enough.
    }
    // Upgrade S -> X: legal only as the sole holder.
    if (entry.holders.size() == 1) {
      self->second = LockMode::kExclusive;
      waits_for_.erase(txn);
      return Status::Ok();
    }
    for (const auto& [holder, holder_mode] : entry.holders) {
      if (holder != txn) {
        waits_for_[txn].insert(holder);
      }
    }
    return Status::Busy("lock upgrade conflict");
  }

  bool compatible = true;
  if (mode == LockMode::kExclusive) {
    compatible = entry.holders.empty();
  } else {
    for (const auto& [holder, holder_mode] : entry.holders) {
      if (holder_mode == LockMode::kExclusive) {
        compatible = false;
        break;
      }
    }
  }
  if (compatible) {
    entry.holders.emplace(txn, mode);
    waits_for_.erase(txn);
    return Status::Ok();
  }
  for (const auto& [holder, holder_mode] : entry.holders) {
    if (holder != txn &&
        (mode == LockMode::kExclusive ||
         holder_mode == LockMode::kExclusive)) {
      waits_for_[txn].insert(holder);
    }
  }
  return Status::Busy("lock conflict");
}

bool LockManager::Holds(TxnId txn, const LockKey& key, LockMode mode) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(key.Encoded());
  if (it == table_.end()) {
    return false;
  }
  auto holder = it->second.holders.find(txn);
  if (holder == it->second.holders.end()) {
    return false;
  }
  return holder->second == LockMode::kExclusive || mode == LockMode::kShared;
}

bool LockManager::WouldDeadlock(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  // DFS from txn through the wait-for graph looking for a cycle back to txn.
  std::unordered_set<TxnId> visited;
  std::vector<TxnId> stack;
  auto edges = waits_for_.find(txn);
  if (edges == waits_for_.end()) {
    return false;
  }
  for (const TxnId next : edges->second) {
    stack.push_back(next);
  }
  while (!stack.empty()) {
    const TxnId current = stack.back();
    stack.pop_back();
    if (current == txn) {
      return true;
    }
    if (!visited.insert(current).second) {
      continue;
    }
    auto it = waits_for_.find(current);
    if (it == waits_for_.end()) {
      continue;
    }
    for (const TxnId next : it->second) {
      stack.push_back(next);
    }
  }
  return false;
}

void LockManager::CancelWaits(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  waits_for_.erase(txn);
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  waits_for_.erase(txn);
  for (auto& [key, txns] : waits_for_) {
    txns.erase(txn);
  }
  for (auto it = table_.begin(); it != table_.end();) {
    it->second.holders.erase(txn);
    if (it->second.holders.empty()) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t LockManager::HeldCount(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (const auto& [key, entry] : table_) {
    if (entry.holders.contains(txn)) {
      ++count;
    }
  }
  return count;
}

}  // namespace rda
