#include "wal/log_manager.h"

#include <cstring>

#include "common/crc32.h"

namespace rda {
namespace {

// Frame layout: u32 payload length, u32 CRC-32C of payload, payload bytes.
constexpr size_t kFrameHeaderSize = 8;

}  // namespace

LogManager::LogManager(const Options& options)
    : options_(options), stable_(options.copies) {}

Result<Lsn> LogManager::Append(LogRecord record) {
  const Lsn lsn = next_lsn_;
  record.lsn = lsn;
  const std::vector<uint8_t> payload = EncodeLogRecord(record);
  const uint32_t length = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32c(payload.data(), payload.size());

  const size_t offset = buffer_.size();
  buffer_.resize(offset + kFrameHeaderSize + payload.size());
  std::memcpy(buffer_.data() + offset, &length, sizeof(length));
  std::memcpy(buffer_.data() + offset + 4, &crc, sizeof(crc));
  std::memcpy(buffer_.data() + offset + kFrameHeaderSize, payload.data(),
              payload.size());
  next_lsn_ += kFrameHeaderSize + payload.size();
  obs::Inc(records_counter_);
  obs::Inc(bytes_counter_, kFrameHeaderSize + payload.size());
  return lsn;
}

Status LogManager::Flush() {
  if (buffer_.empty()) {
    return Status::Ok();
  }
  // Pages touched by this flush, tail page re-write included.
  const uint64_t first_page = flushed_bytes_ / options_.page_size;
  const uint64_t new_total = flushed_bytes_ + buffer_.size();
  const uint64_t last_page = (new_total - 1) / options_.page_size;
  const uint64_t pages = last_page - first_page + 1;
  counters_.page_writes += pages * options_.copies;
  obs::Inc(forces_counter_);
  obs::Inc(pages_flushed_counter_, pages * options_.copies);

  for (auto& copy : stable_) {
    copy.insert(copy.end(), buffer_.begin(), buffer_.end());
  }
  flushed_bytes_ = new_total;
  buffer_.clear();
  return Status::Ok();
}

Status LogManager::Scan(Lsn from, std::vector<LogRecord>* out) const {
  out->clear();
  Lsn pos = base_lsn_;
  while (pos + kFrameHeaderSize <= flushed_bytes_) {
    const size_t offset = pos - base_lsn_;
    uint32_t length = 0;
    LogRecord record;
    bool decoded = false;
    for (uint32_t copy = 0; copy < options_.copies && !decoded; ++copy) {
      const std::vector<uint8_t>& data = stable_[copy];
      std::memcpy(&length, data.data() + offset, sizeof(length));
      if (pos + kFrameHeaderSize + length > flushed_bytes_) {
        continue;  // Frame header itself damaged on this copy.
      }
      uint32_t stored_crc = 0;
      std::memcpy(&stored_crc, data.data() + offset + 4, sizeof(stored_crc));
      const uint8_t* payload = data.data() + offset + kFrameHeaderSize;
      if (Crc32c(payload, length) != stored_crc) {
        continue;  // Corrupted on this copy; try the next one.
      }
      Result<LogRecord> result = DecodeLogRecord(payload, length);
      if (!result.ok()) {
        continue;
      }
      record = std::move(result).value();
      decoded = true;
    }
    if (!decoded) {
      return Status::Corruption("log record at " + std::to_string(pos) +
                                " unreadable on all copies");
    }
    // LSNs are positional, not serialized: stamp from the frame offset.
    record.lsn = pos;
    if (pos >= from) {
      out->push_back(std::move(record));
    }
    pos += kFrameHeaderSize + length;
  }
  // Account the sequential read of the scanned portion, once (a recovery
  // scan reads one copy unless it hits corruption; close enough for the
  // simulator's accounting).
  counters_.page_reads += (flushed_bytes_ - base_lsn_ + options_.page_size -
                           1) /
                          options_.page_size;
  return Status::Ok();
}

Status LogManager::Truncate(Lsn up_to) {
  if (up_to < base_lsn_ || up_to > flushed_bytes_) {
    return Status::InvalidArgument("truncation point outside stable log");
  }
  // Validate that up_to is a frame boundary by walking frames from base.
  Lsn pos = base_lsn_;
  while (pos < up_to) {
    if (pos + kFrameHeaderSize > flushed_bytes_) {
      return Status::InvalidArgument("truncation point not a boundary");
    }
    uint32_t length = 0;
    std::memcpy(&length, stable_[0].data() + (pos - base_lsn_),
                sizeof(length));
    pos += kFrameHeaderSize + length;
  }
  if (pos != up_to) {
    return Status::InvalidArgument("truncation point not a record boundary");
  }
  const size_t drop = up_to - base_lsn_;
  for (auto& copy : stable_) {
    copy.erase(copy.begin(), copy.begin() + drop);
  }
  base_lsn_ = up_to;
  return Status::Ok();
}

void LogManager::AttachObs(obs::ObsHub* hub) {
  records_counter_ = obs::GetCounter(hub, "wal.records");
  bytes_counter_ = obs::GetCounter(hub, "wal.bytes_appended");
  forces_counter_ = obs::GetCounter(hub, "wal.forces");
  pages_flushed_counter_ = obs::GetCounter(hub, "wal.pages_flushed");
}

void LogManager::LoseVolatileState() {
  buffer_.clear();
  next_lsn_ = flushed_bytes_;
}

void LogManager::CorruptStableByteForTest(uint32_t copy, size_t offset) {
  if (copy < stable_.size() && offset < stable_[copy].size()) {
    stable_[copy][offset] ^= 0xff;
  }
}

}  // namespace rda
