#include "wal/log_manager.h"

#include <algorithm>
#include <cstring>

#include "common/crc32.h"

namespace rda {
namespace {

// Frame layout: u32 payload length, u32 CRC-32C of payload, payload bytes.
constexpr size_t kFrameHeaderSize = 8;

}  // namespace

LogManager::LogManager(const Options& options)
    : options_(options), stable_(options.copies) {}

Result<Lsn> LogManager::Append(LogRecord record) {
  const Lsn lsn = next_lsn_;
  record.lsn = lsn;
  // Encode straight into the append buffer (no per-record payload vector),
  // then backfill the frame header once the length is known.
  const size_t offset = buffer_.size();
  buffer_.resize(offset + kFrameHeaderSize);
  EncodeLogRecordTo(record, &buffer_);
  const uint32_t length =
      static_cast<uint32_t>(buffer_.size() - offset - kFrameHeaderSize);
  const uint32_t crc =
      Crc32c(buffer_.data() + offset + kFrameHeaderSize, length);
  std::memcpy(buffer_.data() + offset, &length, sizeof(length));
  std::memcpy(buffer_.data() + offset + 4, &crc, sizeof(crc));
  pending_index_.push_back(lsn);
  next_lsn_ += kFrameHeaderSize + length;
  obs::Inc(records_counter_);
  obs::Inc(bytes_counter_, kFrameHeaderSize + length);
  return lsn;
}

Status LogManager::Flush() {
  if (buffer_.empty()) {
    return Status::Ok();
  }
  // Pages touched by this flush, tail page re-write included.
  const uint64_t first_page = flushed_bytes_ / options_.page_size;
  const uint64_t new_total = flushed_bytes_ + buffer_.size();
  const uint64_t last_page = (new_total - 1) / options_.page_size;
  const uint64_t pages = last_page - first_page + 1;
  counters_.page_writes += pages * options_.copies;
  obs::Inc(forces_counter_);
  obs::Inc(pages_flushed_counter_, pages * options_.copies);

  for (auto& copy : stable_) {
    copy.insert(copy.end(), buffer_.begin(), buffer_.end());
  }
  stable_index_.insert(stable_index_.end(), pending_index_.begin(),
                       pending_index_.end());
  pending_index_.clear();
  flushed_bytes_ = new_total;
  buffer_.clear();
  return Status::Ok();
}

Status LogManager::Scan(Lsn from, std::vector<LogRecord>* out) const {
  out->clear();
  // Seek: the boundary index hands us the first record with lsn >= from
  // directly — the skipped prefix is neither read nor re-deserialized.
  const auto begin = std::lower_bound(stable_index_.begin(),
                                      stable_index_.end(), from);
  const Lsn start_pos =
      begin == stable_index_.end() ? flushed_bytes_ : *begin;
  out->reserve(stable_index_.end() - begin);
  for (auto it = begin; it != stable_index_.end(); ++it) {
    const Lsn pos = *it;
    const Lsn next =
        (it + 1) == stable_index_.end() ? flushed_bytes_ : *(it + 1);
    const size_t offset = pos - base_lsn_;
    const uint32_t frame_length =
        static_cast<uint32_t>(next - pos - kFrameHeaderSize);
    LogRecord record;
    bool decoded = false;
    for (uint32_t copy = 0; copy < options_.copies && !decoded; ++copy) {
      const std::vector<uint8_t>& data = stable_[copy];
      uint32_t stored_length = 0;
      std::memcpy(&stored_length, data.data() + offset,
                  sizeof(stored_length));
      if (stored_length != frame_length) {
        continue;  // Frame header damaged on this copy; the index knows
                   // the true framing.
      }
      uint32_t stored_crc = 0;
      std::memcpy(&stored_crc, data.data() + offset + 4, sizeof(stored_crc));
      const uint8_t* payload = data.data() + offset + kFrameHeaderSize;
      if (Crc32c(payload, frame_length) != stored_crc) {
        continue;  // Corrupted on this copy; try the next one.
      }
      Result<LogRecord> result = DecodeLogRecord(payload, frame_length);
      if (!result.ok()) {
        continue;
      }
      record = std::move(result).value();
      decoded = true;
    }
    if (!decoded) {
      return Status::Corruption("log record at " + std::to_string(pos) +
                                " unreadable on all copies");
    }
    // LSNs are positional, not serialized: stamp from the frame offset.
    record.lsn = pos;
    out->push_back(std::move(record));
  }
  // Account the sequential read of the scanned portion, once (a recovery
  // scan reads one copy unless it hits corruption; close enough for the
  // simulator's accounting). Seeking past a prefix means not paying for it.
  counters_.page_reads += (flushed_bytes_ - start_pos + options_.page_size -
                           1) /
                          options_.page_size;
  return Status::Ok();
}

Status LogManager::Truncate(Lsn up_to) {
  if (up_to < base_lsn_ || up_to > flushed_bytes_) {
    return Status::InvalidArgument("truncation point outside stable log");
  }
  // `up_to` must be a record boundary: the start of a stable record (index
  // lookup) or the end of the stable log.
  const auto it = std::lower_bound(stable_index_.begin(), stable_index_.end(),
                                   up_to);
  const bool is_boundary =
      up_to == flushed_bytes_ || (it != stable_index_.end() && *it == up_to);
  if (!is_boundary) {
    return Status::InvalidArgument("truncation point not a record boundary");
  }
  const size_t drop = up_to - base_lsn_;
  for (auto& copy : stable_) {
    copy.erase(copy.begin(), copy.begin() + drop);
  }
  stable_index_.erase(stable_index_.begin(), it);
  base_lsn_ = up_to;
  return Status::Ok();
}

void LogManager::AttachObs(obs::ObsHub* hub) {
  records_counter_ = obs::GetCounter(hub, "wal.records");
  bytes_counter_ = obs::GetCounter(hub, "wal.bytes_appended");
  forces_counter_ = obs::GetCounter(hub, "wal.forces");
  pages_flushed_counter_ = obs::GetCounter(hub, "wal.pages_flushed");
}

void LogManager::LoseVolatileState() {
  buffer_.clear();
  pending_index_.clear();
  next_lsn_ = flushed_bytes_;
}

void LogManager::CorruptStableByteForTest(uint32_t copy, size_t offset) {
  if (copy < stable_.size() && offset < stable_[copy].size()) {
    stable_[copy][offset] ^= 0xff;
  }
}

}  // namespace rda
