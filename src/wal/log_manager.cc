#include "wal/log_manager.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/crc32.h"

namespace rda {
namespace {

// Frame layout: u32 payload length, u32 CRC-32C of payload, payload bytes.
constexpr size_t kFrameHeaderSize = 8;

}  // namespace

LogManager::LogManager(const Options& options)
    : options_(options), stable_(options.copies) {}

Result<Lsn> LogManager::Append(LogRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  const Lsn lsn = next_lsn_.load(std::memory_order_relaxed);
  record.lsn = lsn;
  if (record.type == LogRecordType::kCommit) {
    ++buffered_commits_;
  }
  // Encode straight into the append buffer (no per-record payload vector),
  // then backfill the frame header once the length is known.
  const size_t offset = buffer_.size();
  buffer_.resize(offset + kFrameHeaderSize);
  EncodeLogRecordTo(record, &buffer_);
  const uint32_t length =
      static_cast<uint32_t>(buffer_.size() - offset - kFrameHeaderSize);
  const uint32_t crc =
      Crc32c(buffer_.data() + offset + kFrameHeaderSize, length);
  std::memcpy(buffer_.data() + offset, &length, sizeof(length));
  std::memcpy(buffer_.data() + offset + 4, &crc, sizeof(crc));
  pending_index_.push_back(lsn);
  next_lsn_.store(lsn + kFrameHeaderSize + length, std::memory_order_release);
  obs::Inc(records_counter_);
  obs::Inc(bytes_counter_, kFrameHeaderSize + length);
  return lsn;
}

Status LogManager::FlushLocked() {
  if (buffer_.empty()) {
    return Status::Ok();
  }
  std::vector<uint8_t> chunk = std::move(buffer_);
  buffer_.clear();
  std::vector<Lsn> chunk_index = std::move(pending_index_);
  pending_index_.clear();
  buffered_commits_ = 0;

  // Pages touched by this flush, tail page re-write included.
  const uint64_t flushed = flushed_bytes_.load(std::memory_order_relaxed);
  const uint64_t first_page = flushed / options_.page_size;
  const uint64_t new_total = flushed + chunk.size();
  const uint64_t last_page = (new_total - 1) / options_.page_size;
  const uint64_t pages = last_page - first_page + 1;
  counters_.page_writes += pages * options_.copies;
  obs::Inc(forces_counter_);
  obs::Inc(pages_flushed_counter_, pages * options_.copies);

  io::IoEngine* engine =
      engine_provider_ ? engine_provider_() : nullptr;
  if (engine != nullptr && engine->width() > 1 && stable_.size() > 1) {
    // Duplex in parallel: copies 1..n ride the engine's job lanes while
    // this thread appends copy 0. All futures are collected before mu_ is
    // released, so nothing observes a half-duplexed flush.
    std::vector<std::shared_future<Status>> appends;
    appends.reserve(stable_.size() - 1);
    for (uint32_t c = 1; c < stable_.size(); ++c) {
      std::vector<uint8_t>* copy = &stable_[c];
      const std::vector<uint8_t>* src = &chunk;
      appends.push_back(engine->SubmitJob(c - 1, [copy, src] {
        copy->insert(copy->end(), src->begin(), src->end());
        return Status::Ok();
      }));
    }
    stable_[0].insert(stable_[0].end(), chunk.begin(), chunk.end());
    for (auto& append : appends) {
      append.wait();
    }
  } else {
    for (auto& copy : stable_) {
      copy.insert(copy.end(), chunk.begin(), chunk.end());
    }
  }
  stable_index_.insert(stable_index_.end(), chunk_index.begin(),
                       chunk_index.end());
  flushed_bytes_.store(new_total, std::memory_order_release);
  return Status::Ok();
}

Status LogManager::Flush() {
  obs::ScopedSpan span(spans_, obs::SpanKind::kWalFlush, flush_hist_);
  std::unique_lock<std::mutex> lock(mu_);
  return FlushLocked();
}

Status LogManager::CommitFlush(Lsn lsn) {
  // Group-commit wait latency is the whole point of the leader/follower
  // split, so measure from call entry: a follower's time is dominated by
  // the cv wait, a leader's by linger + flush + device delay.
  const bool timed = spans_ != nullptr || wait_hist_ != nullptr;
  std::chrono::steady_clock::time_point entry;
  if (timed) {
    entry = std::chrono::steady_clock::now();
  }
  std::unique_lock<std::mutex> lock(mu_);
  bool waited = false;
  for (;;) {
    if (lsn < commit_durable_bytes_) {
      // A completed batch already covered this commit.
      if (timed && waited) {
        const auto now = std::chrono::steady_clock::now();
        const double wait_us =
            std::chrono::duration<double, std::micro>(now - entry).count();
        obs::Observe(wait_hist_, wait_us);
        obs::Observe(follower_wait_hist_, wait_us);
        if (spans_ != nullptr) {
          spans_->RecordInterval(obs::SpanKind::kWalGroupFollow, entry, now);
        }
      }
      return Status::Ok();
    }
    if (!flush_active_) {
      break;  // No batch in flight: this thread leads the next one.
    }
    waited = true;
    cv_.wait(lock);  // Follower: the leader's wake-up re-checks coverage.
  }
  flush_active_ = true;
  if (options_.group_commit_window_us > 0) {
    // Linger to gather followers into the batch before paying the flush.
    lock.unlock();
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.group_commit_window_us));
    lock.lock();
  }
  const uint64_t batch = std::max<uint64_t>(buffered_commits_, 1);
  // Publish first, then pay the device latency with mu_ released. The whole
  // point of group commit: concurrent transactions append (and queue up as
  // the next batch) while this batch's latency elapses — and plain WAL-rule
  // flushes publish freely in the meantime, ordered after this batch.
  const Status status = FlushLocked();
  const uint64_t published = flushed_bytes_.load(std::memory_order_relaxed);
  if (status.ok() && options_.flush_delay_us > 0) {
    lock.unlock();
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.flush_delay_us));
    lock.lock();
  }
  commit_durable_bytes_ = std::max(commit_durable_bytes_, published);
  flush_active_ = false;
  obs::Inc(batches_counter_);
  obs::Observe(batch_size_hist_, static_cast<double>(batch));
  if (timed) {
    const auto now = std::chrono::steady_clock::now();
    const double lead_us =
        std::chrono::duration<double, std::micro>(now - entry).count();
    obs::Observe(wait_hist_, lead_us);
    obs::Observe(leader_flush_hist_, lead_us);
    if (spans_ != nullptr) {
      spans_->RecordInterval(obs::SpanKind::kWalGroupLead, entry, now,
                             static_cast<int64_t>(batch));
    }
  }
  cv_.notify_all();
  return status;
}

Status LogManager::Scan(Lsn from, std::vector<LogRecord>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out->clear();
  const uint64_t flushed = flushed_bytes_.load(std::memory_order_relaxed);
  // Seek: the boundary index hands us the first record with lsn >= from
  // directly — the skipped prefix is neither read nor re-deserialized.
  const auto begin = std::lower_bound(stable_index_.begin(),
                                      stable_index_.end(), from);
  const Lsn start_pos = begin == stable_index_.end() ? flushed : *begin;
  out->reserve(stable_index_.end() - begin);
  for (auto it = begin; it != stable_index_.end(); ++it) {
    const Lsn pos = *it;
    const Lsn next = (it + 1) == stable_index_.end() ? flushed : *(it + 1);
    const size_t offset = pos - base_lsn_;
    const uint32_t frame_length =
        static_cast<uint32_t>(next - pos - kFrameHeaderSize);
    LogRecord record;
    bool decoded = false;
    for (uint32_t copy = 0; copy < options_.copies && !decoded; ++copy) {
      const std::vector<uint8_t>& data = stable_[copy];
      uint32_t stored_length = 0;
      std::memcpy(&stored_length, data.data() + offset,
                  sizeof(stored_length));
      if (stored_length != frame_length) {
        continue;  // Frame header damaged on this copy; the index knows
                   // the true framing.
      }
      uint32_t stored_crc = 0;
      std::memcpy(&stored_crc, data.data() + offset + 4, sizeof(stored_crc));
      const uint8_t* payload = data.data() + offset + kFrameHeaderSize;
      if (Crc32c(payload, frame_length) != stored_crc) {
        continue;  // Corrupted on this copy; try the next one.
      }
      Result<LogRecord> result = DecodeLogRecord(payload, frame_length);
      if (!result.ok()) {
        continue;
      }
      record = std::move(result).value();
      decoded = true;
    }
    if (!decoded) {
      return Status::Corruption("log record at " + std::to_string(pos) +
                                " unreadable on all copies");
    }
    // LSNs are positional, not serialized: stamp from the frame offset.
    record.lsn = pos;
    out->push_back(std::move(record));
  }
  // Account the sequential read of the scanned portion, once (a recovery
  // scan reads one copy unless it hits corruption; close enough for the
  // simulator's accounting). Seeking past a prefix means not paying for it.
  counters_.page_reads +=
      (flushed - start_pos + options_.page_size - 1) / options_.page_size;
  return Status::Ok();
}

Status LogManager::Truncate(Lsn up_to) {
  std::unique_lock<std::mutex> lock(mu_);
  // A group-commit leader may have PUBLISHED its batch (flushed_bytes_
  // advanced) while still sleeping out the device latency: those records
  // are stable but their commits are not yet acknowledged. Truncating into
  // that window would erase records whose CommitFlush is still pending, so
  // wait for the watermark — the leader's wake-up advances
  // commit_durable_bytes_ to the published tail and clears flush_active_.
  cv_.wait(lock, [this] { return !flush_active_; });
  const uint64_t flushed = flushed_bytes_.load(std::memory_order_relaxed);
  if (up_to < base_lsn_ || up_to > flushed) {
    return Status::InvalidArgument("truncation point outside stable log");
  }
  // `up_to` must be a record boundary: the start of a stable record (index
  // lookup) or the end of the stable log.
  const auto it = std::lower_bound(stable_index_.begin(), stable_index_.end(),
                                   up_to);
  const bool is_boundary =
      up_to == flushed || (it != stable_index_.end() && *it == up_to);
  if (!is_boundary) {
    return Status::InvalidArgument("truncation point not a record boundary");
  }
  const size_t drop = up_to - base_lsn_;
  for (auto& copy : stable_) {
    copy.erase(copy.begin(), copy.begin() + drop);
  }
  stable_index_.erase(stable_index_.begin(), it);
  base_lsn_ = up_to;
  return Status::Ok();
}

void LogManager::AttachObs(obs::ObsHub* hub) {
  records_counter_ = obs::GetCounter(hub, "wal.records");
  bytes_counter_ = obs::GetCounter(hub, "wal.bytes_appended");
  forces_counter_ = obs::GetCounter(hub, "wal.forces");
  pages_flushed_counter_ = obs::GetCounter(hub, "wal.pages_flushed");
  batches_counter_ = obs::GetCounter(hub, "wal.group_commit_batches");
  batch_size_hist_ = obs::GetHistogram(hub, "wal.group_commit_batch_size",
                                       {1, 2, 4, 8, 16, 32});
  const std::vector<double> us_bounds = {10,   50,   100,   250,   500,
                                         1000, 2500, 5000,  10000, 25000};
  wait_hist_ = obs::GetHistogram(hub, "wal.group_commit_wait_us", us_bounds);
  leader_flush_hist_ =
      obs::GetHistogram(hub, "wal.group_commit_leader_flush_us", us_bounds);
  follower_wait_hist_ =
      obs::GetHistogram(hub, "wal.group_commit_follower_wait_us", us_bounds);
  flush_hist_ = obs::GetHistogram(
      hub, "wal.flush_us", {1, 5, 10, 25, 50, 100, 250, 500, 1000, 5000});
  spans_ = obs::SpansOf(hub);
}

void LogManager::LoseVolatileState() {
  std::lock_guard<std::mutex> lock(mu_);
  buffer_.clear();
  pending_index_.clear();
  buffered_commits_ = 0;
  // Everything published survived the crash; the latency watermark is a
  // runtime accounting artifact, so it catches up to the stable tail.
  commit_durable_bytes_ = flushed_bytes_.load(std::memory_order_relaxed);
  next_lsn_.store(flushed_bytes_.load(std::memory_order_relaxed),
                  std::memory_order_release);
}

void LogManager::CorruptStableByteForTest(uint32_t copy, size_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  if (copy < stable_.size() && offset < stable_[copy].size()) {
    stable_[copy][offset] ^= 0xff;
  }
}

}  // namespace rda
