#include "wal/log_record.h"

#include <cstring>

namespace rda {
namespace {

// Little-endian, append-based primitives. The format is
// self-describing enough for the decoder to validate lengths.

template <typename T>
void PutFixed(std::vector<uint8_t>* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const size_t offset = out->size();
  out->resize(offset + sizeof(T));
  std::memcpy(out->data() + offset, &value, sizeof(T));
}

void PutBytes(std::vector<uint8_t>* out, const std::vector<uint8_t>& bytes) {
  PutFixed<uint32_t>(out, static_cast<uint32_t>(bytes.size()));
  out->insert(out->end(), bytes.begin(), bytes.end());
}

class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool Get(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > size_) {
      return false;
    }
    std::memcpy(value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool GetBytes(std::vector<uint8_t>* bytes) {
    uint32_t len = 0;
    if (!Get(&len) || pos_ + len > size_) {
      return false;
    }
    bytes->assign(data_ + pos_, data_ + pos_ + len);
    pos_ += len;
    return true;
  }

  bool Done() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

void PutHeader(std::vector<uint8_t>* out, const PageHeader& h) {
  PutFixed(out, h.txn_id);
  PutFixed(out, h.timestamp);
  PutFixed(out, static_cast<uint8_t>(h.parity_state));
  PutFixed(out, h.dirty_page);
}

bool GetHeader(Reader* r, PageHeader* h) {
  uint8_t state = 0;
  if (!r->Get(&h->txn_id) || !r->Get(&h->timestamp) || !r->Get(&state) ||
      !r->Get(&h->dirty_page)) {
    return false;
  }
  h->parity_state = static_cast<ParityState>(state);
  return true;
}

}  // namespace

std::vector<uint8_t> EncodeLogRecord(const LogRecord& record) {
  std::vector<uint8_t> out;
  EncodeLogRecordTo(record, &out);
  return out;
}

void EncodeLogRecordTo(const LogRecord& record, std::vector<uint8_t>* out) {
  PutFixed(out, static_cast<uint8_t>(record.type));
  PutFixed(out, record.txn);
  PutFixed(out, record.page);
  PutFixed(out, record.slot);
  PutFixed(out, static_cast<uint8_t>(record.record_granular ? 1 : 0));
  PutHeader(out, record.page_header);
  PutBytes(out, record.before);
  PutBytes(out, record.after);
  PutFixed(out, static_cast<uint32_t>(record.active_txns.size()));
  for (const TxnId txn : record.active_txns) {
    PutFixed(out, txn);
  }
  PutFixed(out, record.chain_head);
}

Result<LogRecord> DecodeLogRecord(const uint8_t* data, size_t size) {
  Reader reader(data, size);
  LogRecord record;
  uint8_t type = 0;
  uint8_t record_granular = 0;
  uint32_t num_active = 0;
  if (!reader.Get(&type) || !reader.Get(&record.txn) ||
      !reader.Get(&record.page) || !reader.Get(&record.slot) ||
      !reader.Get(&record_granular) ||
      !GetHeader(&reader, &record.page_header) ||
      !reader.GetBytes(&record.before) || !reader.GetBytes(&record.after) ||
      !reader.Get(&num_active)) {
    return Status::Corruption("truncated log record");
  }
  if (type < static_cast<uint8_t>(LogRecordType::kBot) ||
      type > static_cast<uint8_t>(LogRecordType::kCheckpoint)) {
    return Status::Corruption("unknown log record type");
  }
  record.type = static_cast<LogRecordType>(type);
  record.record_granular = record_granular != 0;
  record.active_txns.resize(num_active);
  for (uint32_t i = 0; i < num_active; ++i) {
    if (!reader.Get(&record.active_txns[i])) {
      return Status::Corruption("truncated active transaction list");
    }
  }
  if (!reader.Get(&record.chain_head) || !reader.Done()) {
    return Status::Corruption("malformed log record tail");
  }
  return record;
}

}  // namespace rda
