#ifndef RDA_WAL_LOG_MANAGER_H_
#define RDA_WAL_LOG_MANAGER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "obs/obs.h"
#include "storage/io_stats.h"
#include "wal/log_record.h"

namespace rda {

// Append-only, duplexed log on dedicated log disks (the paper keeps log
// files "stored separately" from the array and duplexes them against media
// errors — Section 5.2.1 charges every log page to multiple copies).
//
// Volatile/stable split: Append() buffers; Flush() (called at commit and
// before any propagation that depends on the record, per WAL) moves the
// buffer to the stable copies. A crash (LoseVolatileState) drops unflushed
// records only.
//
// Transfer accounting mirrors the paper's metric: every Flush counts the
// log pages it touches (including the re-write of a partially filled tail
// page) once per copy.
class LogManager {
 public:
  struct Options {
    size_t page_size = 512;
    // Number of stable copies. The paper duplexes the log; 2 is default.
    uint32_t copies = 2;
  };

  explicit LogManager(const Options& options);

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  // Buffers `record`, assigns and returns its LSN.
  Result<Lsn> Append(LogRecord record);

  // Forces all buffered records to every stable copy.
  Status Flush();

  // First LSN not yet assigned.
  Lsn next_lsn() const { return next_lsn_; }
  // All records with lsn < flushed_lsn() survive a crash.
  Lsn flushed_lsn() const { return flushed_bytes_; }

  // Decodes all *stable* records with lsn >= from, in LSN order. The
  // LSN->offset boundary index positions the scan directly at the first
  // matching record — no re-deserialization of the skipped prefix. Each
  // record's frame is CRC-checked against copy 0 and falls back to the next
  // copy on corruption (the duplexing pay-off).
  Status Scan(Lsn from, std::vector<LogRecord>* out) const;

  // Drops the unflushed buffer (system crash).
  void LoseVolatileState();

  // Discards all stable records with lsn < up_to (archive truncation).
  // `up_to` must be a record boundary at or below flushed_lsn(); LSNs stay
  // absolute — Scan afterwards yields records starting at `up_to`.
  Status Truncate(Lsn up_to);

  // First LSN still present in the stable log (0 until truncated).
  Lsn base_lsn() const { return base_lsn_; }

  // Test hook: flips a byte in stable copy `copy` at byte offset `offset`.
  void CorruptStableByteForTest(uint32_t copy, size_t offset);

  const IoCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = IoCounters(); }
  uint64_t stable_bytes() const { return flushed_bytes_; }

  // Hooks the log into the observability hub (`wal.*` counters). Null
  // detaches.
  void AttachObs(obs::ObsHub* hub);

 private:
  Options options_;
  std::vector<std::vector<uint8_t>> stable_;  // One byte stream per copy.
  std::vector<uint8_t> buffer_;               // Volatile tail.
  Lsn next_lsn_ = 0;
  uint64_t flushed_bytes_ = 0;
  // Absolute LSN of the first byte still stored in stable_ (see Truncate).
  Lsn base_lsn_ = 0;
  // LSN -> byte-offset index: the absolute LSN of every STABLE record
  // frame, sorted (appends are monotone). Scan binary-searches it to seek;
  // Truncate uses it to validate boundaries without walking frames. The
  // index is volatile but exactly reconstructible from the records it
  // describes, which all passed through Append/Flush in-process.
  std::vector<Lsn> stable_index_;
  // LSNs of records sitting in the volatile buffer; moved to stable_index_
  // by Flush, dropped by LoseVolatileState.
  std::vector<Lsn> pending_index_;
  // Scan() is logically const but accounts its reads.
  mutable IoCounters counters_;

  // Observability (null = disabled).
  obs::Counter* records_counter_ = nullptr;
  obs::Counter* bytes_counter_ = nullptr;
  obs::Counter* forces_counter_ = nullptr;
  obs::Counter* pages_flushed_counter_ = nullptr;
};

}  // namespace rda

#endif  // RDA_WAL_LOG_MANAGER_H_
