#ifndef RDA_WAL_LOG_MANAGER_H_
#define RDA_WAL_LOG_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "io/io_engine.h"
#include "obs/obs.h"
#include "storage/io_stats.h"
#include "wal/log_record.h"

namespace rda {

// Append-only, duplexed log on dedicated log disks (the paper keeps log
// files "stored separately" from the array and duplexes them against media
// errors — Section 5.2.1 charges every log page to multiple copies).
//
// Volatile/stable split: Append() buffers; Flush() (called at commit and
// before any propagation that depends on the record, per WAL) moves the
// buffer to the stable copies. A crash (LoseVolatileState) drops unflushed
// records only.
//
// Transfer accounting mirrors the paper's metric: every Flush counts the
// log pages it touches (including the re-write of a partially filled tail
// page) once per copy.
//
// Thread safety + group commit: all mutation is serialized under one mutex.
// CommitFlush(lsn) implements leader/follower group commit — the first
// committer to find no flush in progress becomes the leader, optionally
// lingers for `group_commit_window_us` to let more committers append,
// publishes the whole buffered batch to the stable streams, then sleeps out
// the simulated device latency (`flush_delay_us`) with the mutex RELEASED.
// Commit durability is tracked by a separate watermark that advances only
// when the leader's latency elapses, so every commit in the batch waits out
// the (single, shared) device delay; committers arriving during that window
// append into the next batch. One delay therefore covers many commits — the
// classic group-commit amortization. Plain Flush() publishes immediately
// and never queues behind a sleeping leader: the modeled latency charges
// commit durability only, keeping WAL-rule forces (steal, propagation,
// checkpoint) cheap and deterministic.
class LogManager {
 public:
  struct Options {
    size_t page_size = 512;
    // Number of stable copies. The paper duplexes the log; 2 is default.
    uint32_t copies = 2;
    // Simulated device latency of one stable flush, slept with the log
    // mutex released so concurrent appenders proceed. 0 = instantaneous
    // (the single-threaded / deterministic-test default).
    uint32_t flush_delay_us = 0;
    // How long a group-commit leader lingers (mutex released) before
    // flushing, to gather followers into its batch. 0 = flush immediately;
    // with a nonzero flush_delay_us the delay itself already batches.
    uint32_t group_commit_window_us = 0;
  };

  explicit LogManager(const Options& options);

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  // Buffers `record`, assigns and returns its LSN.
  Result<Lsn> Append(LogRecord record);

  // Forces all buffered records to every stable copy, immediately — it
  // neither pays flush_delay_us nor waits for a leader sleeping one out
  // (that latency models the commit-path force only; steal/checkpoint/
  // propagation forces stay cheap and deterministic).
  Status Flush();

  // Group-commit force: blocks until the record at `lsn` is commit-durable.
  // Either the batch in flight already covers it (follower: wait for the
  // leader's wake-up), or this thread leads the next batch and pays the
  // (shared) flush_delay_us for every commit batched behind it.
  Status CommitFlush(Lsn lsn);

  // First LSN not yet assigned.
  Lsn next_lsn() const { return next_lsn_.load(std::memory_order_acquire); }
  // All records with lsn < flushed_lsn() survive a crash.
  Lsn flushed_lsn() const {
    return flushed_bytes_.load(std::memory_order_acquire);
  }

  // Decodes all *stable* records with lsn >= from, in LSN order. The
  // LSN->offset boundary index positions the scan directly at the first
  // matching record — no re-deserialization of the skipped prefix. Each
  // record's frame is CRC-checked against copy 0 and falls back to the next
  // copy on corruption (the duplexing pay-off).
  Status Scan(Lsn from, std::vector<LogRecord>* out) const;

  // Drops the unflushed buffer (system crash).
  void LoseVolatileState();

  // Discards all stable records with lsn < up_to (archive truncation).
  // `up_to` must be a record boundary at or below flushed_lsn(); LSNs stay
  // absolute — Scan afterwards yields records starting at `up_to`. If a
  // group-commit batch is in flight (published but not yet commit-durable),
  // Truncate waits for its watermark first: records of a batch whose
  // CommitFlush callers are still blocked are never erased.
  Status Truncate(Lsn up_to);

  // High-water mark of commit durability: every commit record below it has
  // had its batch's flush_delay_us fully paid and its CommitFlush callers
  // released. Lags flushed_lsn() while a group-commit leader sleeps.
  Lsn commit_durable_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return commit_durable_bytes_;
  }

  // First LSN still present in the stable log (0 until truncated).
  Lsn base_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return base_lsn_;
  }

  // Test hook: flips a byte in stable copy `copy` at byte offset `offset`.
  void CorruptStableByteForTest(uint32_t copy, size_t offset);

  // Snapshot by value: concurrent flushes mutate the counters under mu_.
  IoCounters counters() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
  }
  void ResetCounters() {
    std::lock_guard<std::mutex> lock(mu_);
    counters_ = IoCounters();
  }
  uint64_t stable_bytes() const {
    return flushed_bytes_.load(std::memory_order_acquire);
  }

  // Hooks the log into the observability hub (`wal.*` counters, plus the
  // group-commit batch-size histogram). Null detaches.
  void AttachObs(obs::ObsHub* hub);

  // Lends the array's async engine to the log: FlushLocked fans the
  // per-copy stable appends out across the engine's job lanes (one lane per
  // duplexed copy) and waits for all of them before returning, so log
  // duplexing overlaps without a second thread pool. Safe because workers
  // never take mu_ and the futures are collected with mu_ held. The engine
  // is fetched through `provider` at every flush rather than cached:
  // DiskArray::SetIoPolicy destroys and recreates its engine, so a cached
  // raw pointer would dangle after any post-Open policy change. An empty
  // provider (or one returning null) detaches — serial appends, the
  // pre-engine behavior.
  void AttachIoEngine(std::function<io::IoEngine*()> provider) {
    engine_provider_ = std::move(provider);
  }

 private:
  // Moves the current buffer to the stable copies, entirely under mu_ (the
  // caller holds it). Publication is immediate; any simulated latency is
  // the caller's business (CommitFlush sleeps AFTER publishing).
  Status FlushLocked();

  Options options_;
  // Serializes all log state. Leaf-ward lock: nothing above the WAL is
  // acquired while held (see DESIGN.md section 11 for the latch order).
  mutable std::mutex mu_;
  // Signalled when a flush completes (followers re-check durability).
  mutable std::condition_variable cv_;
  // True while a commit leader is in CommitFlush (lingering or sleeping out
  // flush_delay_us with mu_ released). Keeps other COMMITTERS out; plain
  // Flush() ignores it.
  bool flush_active_ = false;
  // Commit records sitting in the volatile buffer — the size of the batch
  // the next flush will make durable.
  uint64_t buffered_commits_ = 0;
  // High-water mark of commit durability: records below it have had their
  // batch's flush_delay_us fully paid. Lags flushed_bytes_ while a leader
  // sleeps. Guarded by mu_.
  uint64_t commit_durable_bytes_ = 0;
  std::vector<std::vector<uint8_t>> stable_;  // One byte stream per copy.
  std::vector<uint8_t> buffer_;               // Volatile tail.
  // Atomic so next_lsn()/flushed_lsn() stay lock-free (they are read on
  // every page write to stamp page_lsn).
  std::atomic<Lsn> next_lsn_{0};
  std::atomic<uint64_t> flushed_bytes_{0};
  // Absolute LSN of the first byte still stored in stable_ (see Truncate).
  Lsn base_lsn_ = 0;
  // LSN -> byte-offset index: the absolute LSN of every STABLE record
  // frame, sorted (appends are monotone). Scan binary-searches it to seek;
  // Truncate uses it to validate boundaries without walking frames. The
  // index is volatile but exactly reconstructible from the records it
  // describes, which all passed through Append/Flush in-process.
  std::vector<Lsn> stable_index_;
  // LSNs of records sitting in the volatile buffer; moved to stable_index_
  // by Flush, dropped by LoseVolatileState.
  std::vector<Lsn> pending_index_;
  // Scan() is logically const but accounts its reads.
  mutable IoCounters counters_;

  // Observability (null = disabled).
  obs::Counter* records_counter_ = nullptr;
  obs::Counter* bytes_counter_ = nullptr;
  obs::Counter* forces_counter_ = nullptr;
  obs::Counter* pages_flushed_counter_ = nullptr;
  obs::Counter* batches_counter_ = nullptr;
  obs::Histogram* batch_size_hist_ = nullptr;
  // Group-commit latency, split by role: a leader's time covers linger +
  // flush + device delay, a follower's covers its wait for the leader's
  // wake-up. Both also land in the combined wait histogram.
  obs::Histogram* wait_hist_ = nullptr;
  obs::Histogram* leader_flush_hist_ = nullptr;
  obs::Histogram* follower_wait_hist_ = nullptr;
  obs::Histogram* flush_hist_ = nullptr;  // Plain Flush() wall time.
  obs::SpanCollector* spans_ = nullptr;
  // Resolves the array's current engine (see AttachIoEngine); may be empty.
  std::function<io::IoEngine*()> engine_provider_;
};

}  // namespace rda

#endif  // RDA_WAL_LOG_MANAGER_H_
