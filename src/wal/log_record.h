#ifndef RDA_WAL_LOG_RECORD_H_
#define RDA_WAL_LOG_RECORD_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/page.h"

namespace rda {

// Log record types. Page logging uses whole-page before/after images;
// record logging (paper Section 5.3) uses record-granular images addressed
// by (page, slot).
enum class LogRecordType : uint8_t {
  // Begin-of-transaction. Written "to the log file ... before it writes
  // back any modified pages" (paper Section 4.3).
  kBot = 1,
  // End-of-transaction (commit point).
  kCommit = 2,
  // Runtime abort fully undone; recovery can skip this transaction.
  kAbortComplete = 3,
  // UNDO information: page payload (page logging) or record bytes (record
  // logging) as they were before the update, plus the captured page header
  // (pageLSN semantics for idempotent recovery).
  kBeforeImage = 4,
  // REDO information for not-FORCE algorithms: page payload or record bytes
  // after the update.
  kAfterImage = 5,
  // Head of the TWIST-style chain of pages propagated without UNDO logging
  // (paper Section 4.3): names the most recently unlogged-stolen page; the
  // chain continues through the data pages' embedded chain_prev links.
  kChainHead = 6,
  // Action-consistent checkpoint: all modified buffer pages have been
  // propagated; lists the transactions active at the checkpoint.
  kCheckpoint = 7,
};

// One log record. A plain struct; fields not used by a given type stay at
// their defaults and serialize compactly.
struct LogRecord {
  LogRecordType type = LogRecordType::kBot;
  TxnId txn = kInvalidTxnId;
  // Assigned by the LogManager at append time (byte offset of the frame).
  Lsn lsn = kInvalidLsn;
  PageId page = kInvalidPageId;
  RecordSlot slot = 0;
  // True for record-granular images (record logging mode).
  bool record_granular = false;
  // Captured data-page header for before-images.
  PageHeader page_header;
  std::vector<uint8_t> before;
  std::vector<uint8_t> after;
  std::vector<TxnId> active_txns;  // kCheckpoint.
  PageId chain_head = kInvalidPageId;  // kChainHead.

  bool operator==(const LogRecord&) const = default;
};

// Serializes `record` (without framing; the LogManager adds length + CRC).
std::vector<uint8_t> EncodeLogRecord(const LogRecord& record);

// Appends the serialized record to `*out` without clearing it — the
// LogManager encodes straight into its append buffer, so a log append
// allocates nothing once the buffer has warmed up.
void EncodeLogRecordTo(const LogRecord& record, std::vector<uint8_t>* out);

// Parses a serialized record. Returns kCorruption on malformed input.
Result<LogRecord> DecodeLogRecord(const uint8_t* data, size_t size);

}  // namespace rda

#endif  // RDA_WAL_LOG_RECORD_H_
