#include "io/io_engine.h"

#include <algorithm>
#include <string>
#include <utility>

namespace rda::io {

IoEngine::IoEngine(uint32_t num_disks, const IoEngineOptions& options,
                   PhysicalWrite writer)
    : options_{std::max(options.width, 1u),
               std::max(options.queue_watermark, 1u)},
      writer_(std::move(writer)),
      queues_(num_disks),
      dispatch_hists_(num_disks, nullptr) {
  drain_mus_.reserve(num_disks);
  for (uint32_t d = 0; d < num_disks; ++d) {
    drain_mus_.push_back(std::make_unique<std::mutex>());
  }
  job_lanes_.resize(options_.width);
  workers_.reserve(options_.width);
  for (uint32_t w = 0; w < options_.width; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

IoEngine::~IoEngine() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  // Workers are gone: drain the remaining journal inline so every submitted
  // write reaches the medium (the journal is modeled non-volatile), then
  // honour any job a caller abandoned without waiting.
  for (DiskId d = 0; d < queues_.size(); ++d) {
    DrainDisk(d);
  }
  for (auto& lane : job_lanes_) {
    for (Job& job : lane) {
      job.promise->set_value(job.work());
      jobs_run_.fetch_add(1, std::memory_order_relaxed);
    }
    lane.clear();
  }
}

std::shared_future<Status> IoEngine::SubmitWrite(DiskId disk, SlotId slot,
                                                PageImage image,
                                                bool is_parity) {
  return Submit(disk, slot, std::move(image), is_parity,
                /*want_future=*/true);
}

void IoEngine::SubmitWriteDetached(DiskId disk, SlotId slot, PageImage image,
                                   bool is_parity) {
  Submit(disk, slot, std::move(image), is_parity, /*want_future=*/false);
}

std::shared_future<Status> IoEngine::Submit(DiskId disk, SlotId slot,
                                            PageImage image, bool is_parity,
                                            bool want_future) {
  DiskQueue& queue = queues_[disk];
  std::shared_future<Status> future;
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(queue.mu);
    auto it = queue.pending.find(slot);
    if (it != queue.pending.end()) {
      // Last-writer-wins merge: the queued entry's image is replaced in
      // place and both submitters share its completion. One physical
      // transfer now covers both logical writes.
      *it->second.image = std::move(image);
      it->second.is_parity = is_parity;
      submitted_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(submitted_counter_);
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(coalesced_counter_);
      if (is_parity) {
        // A merged parity-slot write is one read-modify-write absorbed
        // into the batch the queue accumulated for this (group, twin).
        parity_rmw_.fetch_add(1, std::memory_order_relaxed);
        obs::Inc(parity_rmw_counter_);
      }
      if (!want_future) {
        return {};
      }
      if (it->second.promise == nullptr) {
        // Merging into a detached entry: attach the completion on demand.
        it->second.promise = std::make_shared<std::promise<Status>>();
        it->second.future = it->second.promise->get_future().share();
      }
      return it->second.future;
    }
    Pending entry;
    entry.image = std::make_shared<PageImage>(std::move(image));
    if (want_future) {
      entry.promise = std::make_shared<std::promise<Status>>();
      entry.future = entry.promise->get_future().share();
      future = entry.future;
    }
    entry.is_parity = is_parity;
    entry.submitted = std::chrono::steady_clock::now();
    queue.pending.emplace(slot, std::move(entry));
    // Edge-triggered: the queue grows one entry at a time, so == fires
    // exactly once per upward watermark crossing. Steady-state submits
    // above the watermark stay silent instead of re-waking every worker
    // (the workers rescan all owned disks after each drain anyway).
    wake = queue.pending.size() == options_.queue_watermark;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(submitted_counter_);
  depth_.fetch_add(1, std::memory_order_relaxed);
  if (depth_gauge_ != nullptr) {
    depth_gauge_->Add(1);
  }
  if (wake) {
    // The notify must not land between a worker's (negative) predicate
    // evaluation and its block: the crossing is edge-triggered, so a missed
    // notify would leave the queue growing silently until an unrelated
    // wake. Holding wake_mu_ orders the notify against the predicate —
    // either the worker's check sees the above-watermark queue, or it is
    // already blocked when the notify fires.
    std::lock_guard<std::mutex> wake_lock(wake_mu_);
    cv_.notify_all();
  }
  return future;
}

bool IoEngine::ReadFromQueue(DiskId disk, SlotId slot, PageImage* out) const {
  const DiskQueue& queue = queues_[disk];
  std::lock_guard<std::mutex> lock(queue.mu);
  const auto pending = queue.pending.find(slot);
  if (pending != queue.pending.end()) {
    *out = *pending->second.image;
  } else {
    const auto inflight = queue.inflight.find(slot);
    if (inflight == queue.inflight.end()) {
      return false;
    }
    *out = *inflight->second;
  }
  cache_hits_.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(cache_hits_counter_);
  return true;
}

std::shared_future<Status> IoEngine::SubmitJob(uint32_t lane,
                                               std::function<Status()> job) {
  Job entry;
  entry.work = std::move(job);
  entry.promise = std::make_shared<std::promise<Status>>();
  std::shared_future<Status> future = entry.promise->get_future().share();
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    job_lanes_[lane % options_.width].push_back(std::move(entry));
  }
  cv_.notify_all();
  return future;
}

void IoEngine::WorkerLoop(uint32_t worker) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(wake_mu_);
      cv_.wait(lock, [this, worker] {
        if (stop_ || !job_lanes_[worker].empty()) {
          return true;
        }
        for (DiskId d = worker; d < queues_.size(); d += options_.width) {
          std::lock_guard<std::mutex> qlock(queues_[d].mu);
          if (queues_[d].pending.size() >= options_.queue_watermark) {
            return true;
          }
        }
        return false;
      });
      if (stop_) {
        return;
      }
    }
    RunJobs(worker);
    for (DiskId d = worker; d < queues_.size(); d += options_.width) {
      bool due;
      {
        std::lock_guard<std::mutex> qlock(queues_[d].mu);
        due = queues_[d].pending.size() >= options_.queue_watermark;
      }
      if (due) {
        DrainDisk(d);
      }
    }
  }
}

void IoEngine::RunJobs(uint32_t worker) {
  for (;;) {
    Job job;
    {
      std::lock_guard<std::mutex> lock(wake_mu_);
      auto& lane = job_lanes_[worker];
      if (lane.empty()) {
        return;
      }
      job = std::move(lane.front());
      lane.pop_front();
    }
    job.promise->set_value(job.work());
    jobs_run_.fetch_add(1, std::memory_order_relaxed);
  }
}

void IoEngine::DrainDisk(DiskId disk) {
  DiskQueue& queue = queues_[disk];
  std::lock_guard<std::mutex> drain_lock(*drain_mus_[disk]);
  for (;;) {
    std::map<SlotId, Pending> batch;
    {
      std::lock_guard<std::mutex> lock(queue.mu);
      if (queue.pending.empty()) {
        return;
      }
      batch = std::move(queue.pending);
      queue.pending.clear();
      // Publish to the in-flight view BEFORE the writes start, so readers
      // keep hitting the journal until each image is fully on the medium.
      for (const auto& [slot, entry] : batch) {
        queue.inflight[slot] = entry.image;
      }
    }
    // Elevator dispatch: the map hands back the batch slot-ascending, so
    // the head sweeps one way across the platter per drain pass.
    for (auto& [slot, entry] : batch) {
      const Status status = writer_(disk, slot, *entry.image);
      physical_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(physical_counter_);
      {
        std::lock_guard<std::mutex> lock(queue.mu);
        queue.inflight.erase(slot);
        if (!status.ok() && queue.error.ok()) {
          queue.error = status;
        }
      }
      depth_.fetch_add(-1, std::memory_order_relaxed);
      if (depth_gauge_ != nullptr) {
        depth_gauge_->Add(-1);
      }
      if (dispatch_hists_[disk] != nullptr) {
        const auto now = std::chrono::steady_clock::now();
        dispatch_hists_[disk]->Observe(
            std::chrono::duration<double, std::micro>(now - entry.submitted)
                .count());
      }
      if (entry.promise != nullptr) {
        entry.promise->set_value(status);
      }
    }
  }
}

Status IoEngine::Flush() {
  Status first = Status::Ok();
  for (DiskId d = 0; d < queues_.size(); ++d) {
    DrainDisk(d);
    std::lock_guard<std::mutex> lock(queues_[d].mu);
    if (first.ok() && !queues_[d].error.ok()) {
      first = queues_[d].error;
    }
    // Report-once: the error belongs to writes already retired. Leaving it
    // sticky would fail every later flush — including the scrub/rebuild
    // passes that exist to repair exactly this damage.
    queues_[d].error = Status::Ok();
  }
  return first;
}

void IoEngine::PurgeDisk(DiskId disk) {
  if (disk >= queues_.size()) {
    return;
  }
  DiskQueue& queue = queues_[disk];
  std::map<SlotId, Pending> dropped;
  {
    std::lock_guard<std::mutex> lock(queue.mu);
    dropped = std::move(queue.pending);
    queue.pending.clear();
    queue.error = Status::Ok();
  }
  for (auto& [slot, entry] : dropped) {
    // The medium these bytes were headed for is gone; completing Ok is the
    // history "the write landed, then the disk failed", which is what the
    // synchronous path would have produced.
    if (entry.promise != nullptr) {
      entry.promise->set_value(Status::Ok());
    }
    depth_.fetch_add(-1, std::memory_order_relaxed);
    if (depth_gauge_ != nullptr) {
      depth_gauge_->Add(-1);
    }
  }
  purged_.fetch_add(dropped.size(), std::memory_order_relaxed);
}

IoEngine::StatsSnapshot IoEngine::stats() const {
  StatsSnapshot snapshot;
  snapshot.submitted_writes = submitted_.load(std::memory_order_relaxed);
  snapshot.physical_writes = physical_.load(std::memory_order_relaxed);
  snapshot.coalesced_writes = coalesced_.load(std::memory_order_relaxed);
  snapshot.batched_parity_rmw = parity_rmw_.load(std::memory_order_relaxed);
  snapshot.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  snapshot.purged_writes = purged_.load(std::memory_order_relaxed);
  snapshot.jobs_run = jobs_run_.load(std::memory_order_relaxed);
  return snapshot;
}

uint64_t IoEngine::QueueDepth() const {
  const int64_t depth = depth_.load(std::memory_order_relaxed);
  return depth > 0 ? static_cast<uint64_t>(depth) : 0;
}

void IoEngine::AttachObs(obs::ObsHub* hub) {
  submitted_counter_ = obs::GetCounter(hub, "io.submitted_writes");
  physical_counter_ = obs::GetCounter(hub, "io.physical_writes");
  coalesced_counter_ = obs::GetCounter(hub, "io.coalesced_writes");
  parity_rmw_counter_ = obs::GetCounter(hub, "io.batched_parity_rmw");
  cache_hits_counter_ = obs::GetCounter(hub, "io.cache_hits");
  depth_gauge_ = obs::GetGauge(hub, "io.queue_depth");
  const std::vector<double> us_bounds = {10,   50,   100,   250,   500,
                                         1000, 2500, 5000,  10000, 25000};
  for (size_t d = 0; d < dispatch_hists_.size(); ++d) {
    dispatch_hists_[d] = obs::GetHistogram(
        hub, "io.disk" + std::to_string(d) + ".dispatch_us", us_bounds);
  }
}

}  // namespace rda::io
