#ifndef RDA_IO_IO_ENGINE_H_
#define RDA_IO_IO_ENGINE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "obs/obs.h"
#include "storage/page.h"

namespace rda::io {

// Tuning knobs of the asynchronous engine (surfaced through IoPolicy as
// DatabaseOptions::io.width / io.queue_watermark).
struct IoEngineOptions {
  // Worker threads draining the per-disk submission queues. Disk d is owned
  // by worker d % width, so one disk is never drained by two threads.
  uint32_t width = 1;
  // Pending writes on one disk that wake its worker for a drain. Submission
  // never blocks on the watermark — it only sets the coalescing window.
  uint32_t queue_watermark = 32;
};

// Asynchronous per-disk I/O engine (DESIGN.md section 16).
//
// Model: each disk has a submission queue that behaves like an NVRAM-backed
// write journal — a write is durable the moment SubmitWrite returns, and the
// journal is replayed onto the medium by a background worker in elevator
// (slot-ascending) order. Because the journal holds at most one image per
// slot (last-writer-wins), rewrites of a page still in queue COALESCE into a
// single physical transfer; reads consult the journal first and are served
// from memory without touching the device at all.
//
// The engine knows nothing about layouts, parity semantics or retry policy:
// the owner (DiskArray) supplies one `PhysicalWrite` callback that performs
// a single slot write with whatever retry/accounting machinery it already
// has. All transfer counters are therefore bumped exactly where the sync
// path bumps them — per PHYSICAL transfer, at drain — which keeps the fuzz
// oracle's counter-conservation invariants intact.
//
// Crash/failure semantics (the equivalence argument the tests verify):
//  * Crash: the journal is non-volatile, so Database::Crash() calls Flush()
//    before tearing down volatile state — every submitted write reaches the
//    medium, exactly as if it had been synchronous.
//  * Disk failure: Fail() destroys the whole medium, so queued writes for
//    that disk are moot; PurgeDisk drops them. This is indistinguishable
//    from the synchronous history "write completed, then the disk died".
//
// Generic job lanes: small CPU-bound unit-of-I/O closures (the WAL's
// per-copy stable appends) ride the same worker threads via SubmitJob, so
// log duplexing overlaps across lanes without a second thread pool.
class IoEngine {
 public:
  // Performs one physical slot write (retries, fault injection and transfer
  // accounting included). `is_parity` tags parity-page slots for the
  // batched-parity statistics only.
  using PhysicalWrite =
      std::function<Status(DiskId disk, SlotId slot, const PageImage& image)>;

  IoEngine(uint32_t num_disks, const IoEngineOptions& options,
           PhysicalWrite writer);
  ~IoEngine();

  IoEngine(const IoEngine&) = delete;
  IoEngine& operator=(const IoEngine&) = delete;

  // Journals `image` for (disk, slot). Returns the completion future of the
  // slot's journal entry: it resolves when the entry's (possibly merged)
  // physical write lands. A submission that merges into a queued entry
  // shares that entry's future — its bytes are superseded, and they become
  // durable-on-medium together with the superseding write.
  std::shared_future<Status> SubmitWrite(DiskId disk, SlotId slot,
                                         PageImage image, bool is_parity);

  // SubmitWrite without the completion future: the hot path for callers
  // that rely on Flush()'s sticky-error reporting instead (DiskArray's
  // WriteSlot). Skips the promise/future allocation entirely; a later
  // SubmitWrite merging into a detached entry attaches one on demand.
  void SubmitWriteDetached(DiskId disk, SlotId slot, PageImage image,
                           bool is_parity);

  // Serves a read from the journal (pending or in-flight image). Returns
  // true and fills *out on a hit. A hit is NOT a device transfer and bumps
  // no storage counters — only the engine's cache_hits statistic.
  bool ReadFromQueue(DiskId disk, SlotId slot, PageImage* out) const;

  // Runs `job` on worker lane % width. The caller owns result collection
  // via the returned future; jobs never touch the write queues.
  std::shared_future<Status> SubmitJob(uint32_t lane,
                                       std::function<Status()> job);

  // Drains every queue from the calling thread (workers may drain
  // concurrently; per-disk drains are serialized). Returns the first
  // sticky drain error across disks (lowest disk id), Ok otherwise.
  // Reported errors are cleared (report-once), so one historical failure
  // never wedges later flushes — scrub/rebuild passes in particular.
  Status Flush();

  // Drops every queued write for `disk` and clears its sticky error. The
  // dropped entries' futures complete Ok: their content is gone WITH the
  // medium, exactly as if the writes had completed before the failure.
  void PurgeDisk(DiskId disk);

  // Point-in-time statistics (monotonic counters).
  struct StatsSnapshot {
    uint64_t submitted_writes = 0;  // SubmitWrite calls.
    uint64_t physical_writes = 0;   // Drained journal entries.
    uint64_t coalesced_writes = 0;  // Submissions merged into a queued entry.
    uint64_t batched_parity_rmw = 0;  // Coalesced writes on parity slots.
    uint64_t cache_hits = 0;        // Reads served from the journal.
    uint64_t purged_writes = 0;     // Entries dropped by PurgeDisk.
    uint64_t jobs_run = 0;          // SubmitJob closures executed.
  };
  StatsSnapshot stats() const;

  // Pending journal entries across all disks right now.
  uint64_t QueueDepth() const;

  // `io.*` counters, the io.queue_depth gauge and per-disk dispatch-latency
  // histograms (io.diskN.dispatch_us: submit -> medium). Null detaches.
  void AttachObs(obs::ObsHub* hub);

  uint32_t width() const { return options_.width; }

 private:
  struct Pending {
    std::shared_ptr<PageImage> image;
    // Null for detached submissions (nobody will wait on this entry).
    std::shared_ptr<std::promise<Status>> promise;
    std::shared_future<Status> future;
    bool is_parity = false;
    std::chrono::steady_clock::time_point submitted;
  };

  struct DiskQueue {
    // Guards pending/inflight/error. Leaf lock: nothing is acquired under
    // it, and the physical write runs with it released.
    mutable std::mutex mu;
    // Slot-ordered pending writes — map order IS the elevator schedule.
    std::map<SlotId, Pending> pending;
    // Entries currently being written: still visible to ReadFromQueue so a
    // reader can never fall through to the device mid-write and see stale
    // bytes. Cleared as each write completes.
    std::map<SlotId, std::shared_ptr<PageImage>> inflight;
    // First unreported drain error on a still-live disk; cleared once a
    // Flush() reports it, or by PurgeDisk.
    Status error = Status::Ok();
  };

  struct Job {
    std::function<Status()> work;
    std::shared_ptr<std::promise<Status>> promise;
  };

  // Common journal path behind SubmitWrite / SubmitWriteDetached. Returns
  // an empty future when `want_future` is false.
  std::shared_future<Status> Submit(DiskId disk, SlotId slot, PageImage image,
                                    bool is_parity, bool want_future);
  void WorkerLoop(uint32_t worker);
  // Drains `disk` until its pending map is empty. Serialized per disk.
  void DrainDisk(DiskId disk);
  void RunJobs(uint32_t worker);

  const IoEngineOptions options_;
  const PhysicalWrite writer_;
  std::vector<DiskQueue> queues_;
  // Serializes drains of one disk between workers and Flush() callers.
  std::vector<std::unique_ptr<std::mutex>> drain_mus_;

  // Wake-up plumbing: workers sleep on cv_ until a queue they own crosses
  // the watermark, a job arrives, or shutdown.
  mutable std::mutex wake_mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::vector<std::deque<Job>> job_lanes_;  // One lane list per worker.
  std::vector<std::thread> workers_;

  // Statistics (relaxed atomics: monotonic counters, read quiesced).
  mutable std::atomic<uint64_t> submitted_{0};
  mutable std::atomic<uint64_t> physical_{0};
  mutable std::atomic<uint64_t> coalesced_{0};
  mutable std::atomic<uint64_t> parity_rmw_{0};
  mutable std::atomic<uint64_t> cache_hits_{0};
  mutable std::atomic<uint64_t> purged_{0};
  mutable std::atomic<uint64_t> jobs_run_{0};
  std::atomic<int64_t> depth_{0};

  // Observability (null = disabled).
  obs::Counter* submitted_counter_ = nullptr;
  obs::Counter* physical_counter_ = nullptr;
  obs::Counter* coalesced_counter_ = nullptr;
  obs::Counter* parity_rmw_counter_ = nullptr;
  obs::Counter* cache_hits_counter_ = nullptr;
  obs::Gauge* depth_gauge_ = nullptr;
  std::vector<obs::Histogram*> dispatch_hists_;
};

}  // namespace rda::io

#endif  // RDA_IO_IO_ENGINE_H_
