// Long-running "everything at once" soak: hundreds of transactions over
// many epochs, each epoch ending in a crash, a media failure, an archive,
// or a catastrophic two-disk loss — with the oracle checked after every
// epoch. This is the closest thing to a production burn-in the simulator
// can express.
#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "core/database.h"

namespace rda {
namespace {

struct SoakCase {
  uint64_t seed;
  bool force;
  bool rda;
};

std::string CaseName(const ::testing::TestParamInfo<SoakCase>& info) {
  return "Seed" + std::to_string(info.param.seed) +
         (info.param.force ? "Force" : "NoForce") +
         (info.param.rda ? "Rda" : "NoRda");
}

class SoakTest : public ::testing::TestWithParam<SoakCase> {
 protected:
  static constexpr uint32_t kPages = 64;

  void SetUp() override {
    DatabaseOptions options;
    options.array.data_pages_per_group = 4;
    options.array.parity_copies = 2;
    options.array.min_data_pages = kPages;
    options.array.page_size = 128;
    options.buffer.capacity = 14;
    options.txn.force = GetParam().force;
    options.txn.rda_undo = GetParam().rda;
    if (!GetParam().force) {
      options.checkpoint_interval_updates = 24;
    }
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    rng_ = std::make_unique<Random>(GetParam().seed * 77 + 5);
  }

  void RunEpochWorkload(std::map<PageId, uint8_t>* oracle, int txn_count) {
    for (int i = 0; i < txn_count; ++i) {
      auto txn = db_->Begin();
      ASSERT_TRUE(txn.ok());
      std::map<PageId, uint8_t> writes;
      const int ops = 1 + static_cast<int>(rng_->Uniform(4));
      bool busy = false;
      for (int op = 0; op < ops; ++op) {
        const PageId page = static_cast<PageId>(rng_->Uniform(kPages));
        const uint8_t fill =
            static_cast<uint8_t>(rng_->UniformRange(1, 250));
        const Status status = db_->WritePage(
            *txn, page,
            std::vector<uint8_t>(db_->user_page_size(), fill));
        if (status.IsBusy()) {
          busy = true;
          break;
        }
        ASSERT_TRUE(status.ok()) << status.ToString();
        writes[page] = fill;
      }
      if (busy || rng_->Bernoulli(0.2)) {
        ASSERT_TRUE(db_->Abort(*txn).ok());
      } else {
        ASSERT_TRUE(db_->Commit(*txn).ok());
        for (const auto& [page, fill] : writes) {
          (*oracle)[page] = fill;
        }
      }
    }
  }

  void VerifyOracle(const std::map<PageId, uint8_t>& oracle,
                    const char* when) {
    for (const auto& [page, fill] : oracle) {
      auto payload = db_->RawReadPage(page);
      ASSERT_TRUE(payload.ok()) << when;
      ASSERT_EQ((*payload)[kDataRegionOffset], fill)
          << when << ", page " << page;
    }
    auto ok = db_->VerifyAllParity();
    ASSERT_TRUE(ok.ok());
    ASSERT_TRUE(*ok) << when;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Random> rng_;
};

TEST_P(SoakTest, TwentyEpochsOfEverything) {
  std::map<PageId, uint8_t> oracle;
  bool archived = false;
  for (int epoch = 0; epoch < 20; ++epoch) {
    RunEpochWorkload(&oracle, 25);

    const double dice = rng_->NextDouble();
    if (dice < 0.35) {
      // System crash.
      db_->Crash();
      ASSERT_TRUE(db_->Recover().ok()) << "epoch " << epoch;
    } else if (dice < 0.55) {
      // Single-disk media failure (quiesced via checkpoint first so the
      // durable oracle check below is exact).
      ASSERT_TRUE(db_->Checkpoint().ok());
      const DiskId victim =
          static_cast<DiskId>(rng_->Uniform(db_->array()->num_disks()));
      ASSERT_TRUE(db_->FailDisk(victim).ok());
      auto report = db_->RebuildDisk(victim);
      ASSERT_TRUE(report.ok()) << "epoch " << epoch;
    } else if (dice < 0.70) {
      // Quiescent archive (+ log truncation).
      ASSERT_TRUE(db_->TakeArchive().ok()) << "epoch " << epoch;
      archived = true;
    } else if (dice < 0.80 && archived) {
      // Catastrophe: two disks at once, restore from archive + log.
      ASSERT_TRUE(db_->FailDisk(0).ok());
      ASSERT_TRUE(db_->FailDisk(2).ok());
      ASSERT_TRUE(db_->RestoreFromArchive().ok()) << "epoch " << epoch;
    } else {
      // Quiet epoch: scrub and carry on.
      auto scrub = db_->Scrub();
      ASSERT_TRUE(scrub.ok());
      EXPECT_TRUE(scrub->repaired.empty()) << "epoch " << epoch;
    }

    // Everything committed so far must be durable-readable. (After a plain
    // epoch data may still be buffered; checkpoint to make the read-back
    // through RawReadPage exact.)
    ASSERT_TRUE(db_->Checkpoint().ok());
    VerifyOracle(oracle, ("epoch " + std::to_string(epoch)).c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SoakTest,
                         ::testing::Values(SoakCase{1, false, true},
                                           SoakCase{2, true, true},
                                           SoakCase{3, false, false},
                                           SoakCase{4, true, false},
                                           SoakCase{5, false, true}),
                         CaseName);

// ---------------------------------------------------------------------------
// Fault soak: the same seeded workload run twice — once fault-free, once
// under a randomized schedule of transient, latent, bit-flip and torn-write
// faults on every disk. Retry + repair-on-read must absorb all of it: same
// final bytes, a clean final scrub, and counters that account for the
// injected faults (DESIGN.md section 10).
// ---------------------------------------------------------------------------

struct FaultSoakOutcome {
  std::vector<std::vector<uint8_t>> pages;
  FaultStats injected;
  IoPolicyStats policy;
  ParityStats parity;
};

class FaultSoakTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kPages = 64;
  static constexpr uint64_t kWorkloadSeed = 4242;

  void RunWorkload(bool with_faults, FaultSoakOutcome* out) {
    DatabaseOptions options;
    options.array.data_pages_per_group = 4;
    options.array.parity_copies = 2;
    options.array.min_data_pages = kPages;
    options.array.page_size = 128;
    options.buffer.capacity = 14;
    options.txn.force = true;
    options.txn.rda_undo = true;
    if (with_faults) {
      options.fault.enabled = true;
      options.fault.seed = 99;
      options.fault.transient_read_p = 0.01;
      options.fault.transient_write_p = 0.01;
      options.fault.latent_sector_p = 0.002;
      options.fault.bit_flip_p = 0.002;
      options.fault.torn_write_p = 0.002;
      options.fault.max_random_faults = 25;  // Per disk.
    }
    auto db_or = Database::Open(options);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    std::unique_ptr<Database> db = std::move(db_or).value();

    // The workload stream is seeded independently of the injectors, and no
    // decision in it depends on fault outcomes — both runs execute the
    // exact same transaction history.
    Random rng(kWorkloadSeed);
    for (int epoch = 0; epoch < 8; ++epoch) {
      for (int t = 0; t < 25; ++t) {
        auto txn = db->Begin();
        ASSERT_TRUE(txn.ok());
        const int ops = 1 + static_cast<int>(rng.Uniform(4));
        for (int op = 0; op < ops; ++op) {
          const PageId page = static_cast<PageId>(rng.Uniform(kPages));
          const uint8_t fill =
              static_cast<uint8_t>(rng.UniformRange(1, 250));
          ASSERT_TRUE(
              db->WritePage(*txn, page,
                            std::vector<uint8_t>(db->user_page_size(), fill))
                  .ok())
              << "epoch " << epoch << " txn " << t;
        }
        if (rng.Bernoulli(0.2)) {
          ASSERT_TRUE(db->Abort(*txn).ok());
        } else {
          ASSERT_TRUE(db->Commit(*txn).ok());
        }
      }
      ASSERT_TRUE(db->Checkpoint().ok());
    }

    // Heal everything the workload left behind. Scrub passes can draw NEW
    // faults from the schedule (their own I/O rolls the dice too), but the
    // per-disk fault budget is finite, so the scrub converges to a clean
    // pass.
    uint64_t healed = 0;
    bool clean = false;
    for (int pass = 0; pass < 6 && !clean; ++pass) {
      auto scrub = db->Scrub();
      ASSERT_TRUE(scrub.ok()) << scrub.status().ToString();
      healed += scrub->sectors_repaired;
      clean = scrub->sectors_repaired == 0 && scrub->repaired.empty();
    }
    EXPECT_TRUE(clean) << "scrub did not converge to a clean pass";

    out->pages.clear();
    for (PageId page = 0; page < kPages; ++page) {
      auto payload = db->RawReadPage(page);
      ASSERT_TRUE(payload.ok()) << "page " << page;
      out->pages.push_back(std::move(payload).value());
    }
    auto parity_ok = db->VerifyAllParity();
    ASSERT_TRUE(parity_ok.ok());
    EXPECT_TRUE(*parity_ok);
    out->injected = db->array()->fault_stats();
    out->policy = db->array()->policy_stats();
    out->parity = db->parity()->stats();
  }
};

TEST_F(FaultSoakTest, FaultScheduleConvergesToFaultFreeState) {
  FaultSoakOutcome clean;
  RunWorkload(/*with_faults=*/false, &clean);
  EXPECT_EQ(clean.injected.total(), 0u);
  EXPECT_EQ(clean.policy.io_retries, 0u);

  FaultSoakOutcome faulted;
  RunWorkload(/*with_faults=*/true, &faulted);

  // The schedule actually exercised every fault kind.
  EXPECT_GT(faulted.injected.transient_reads + faulted.injected.transient_writes,
            0u);
  EXPECT_GT(faulted.injected.latent_sectors, 0u);
  EXPECT_GT(faulted.injected.bit_flips + faulted.injected.torn_writes, 0u);

  // End-state equivalence: every page byte-identical to the fault-free run
  // (embedded metadata included — repairs restore exact images).
  ASSERT_EQ(clean.pages.size(), faulted.pages.size());
  for (PageId page = 0; page < kPages; ++page) {
    EXPECT_EQ(clean.pages[page], faulted.pages[page]) << "page " << page;
  }

  // Counter accounting. Every transient consumed (at least) one retry;
  // every repair traces back to an injected persistent fault; ordinary
  // rewrites may clear a latent sector before any read trips over it, so
  // repairs are bounded by injections, not equal to them. The default
  // error budget (0 = unlimited) never escalates a disk.
  EXPECT_GE(faulted.policy.io_retries,
            faulted.injected.transient_reads +
                faulted.injected.transient_writes);
  EXPECT_GT(faulted.policy.transient_faults, 0u);
  EXPECT_GT(faulted.parity.latent_repairs + faulted.parity.corruption_repairs,
            0u);
  EXPECT_LE(faulted.parity.latent_repairs, faulted.injected.latent_sectors);
  EXPECT_LE(faulted.parity.corruption_repairs,
            faulted.injected.bit_flips + faulted.injected.torn_writes);
  EXPECT_EQ(faulted.policy.escalations, 0u);
}

}  // namespace
}  // namespace rda
