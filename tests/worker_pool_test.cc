#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "exec/worker_pool.h"
#include "obs/obs.h"

namespace rda {
namespace exec {
namespace {

TEST(WorkerPoolTest, EveryIndexRunsExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.width(), 4u);
  constexpr uint64_t kCount = 1000;
  std::vector<std::atomic<uint32_t>> hits(kCount);
  Status status = pool.ParallelFor(kCount, [&](uint64_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  });
  ASSERT_TRUE(status.ok());
  for (uint64_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
  }
}

TEST(WorkerPoolTest, ZeroCountIsANoOp) {
  WorkerPool pool(4);
  bool called = false;
  Status status = pool.ParallelFor(0, [&](uint64_t) {
    called = true;
    return Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_FALSE(called);
}

TEST(WorkerPoolTest, CountSmallerThanWidth) {
  WorkerPool pool(8);
  std::vector<std::atomic<uint32_t>> hits(3);
  ASSERT_TRUE(pool.ParallelFor(3, [&](uint64_t i) {
                    hits[i].fetch_add(1, std::memory_order_relaxed);
                    return Status::Ok();
                  })
                  .ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(hits[i].load(), 1u);
  }
}

TEST(WorkerPoolTest, WidthOneRunsInlineAndInOrder) {
  WorkerPool pool(1);
  std::vector<uint64_t> order;
  ASSERT_TRUE(pool.ParallelFor(16, [&](uint64_t i) {
                    order.push_back(i);  // No synchronization: must be inline.
                    return Status::Ok();
                  })
                  .ok());
  ASSERT_EQ(order.size(), 16u);
  for (uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(WorkerPoolTest, SingleFailureIsReportedDeterministically) {
  WorkerPool pool(4);
  for (int round = 0; round < 10; ++round) {
    Status status = pool.ParallelFor(100, [&](uint64_t i) {
      if (i == 63) {
        return Status::IoError("index 63 exploded");
      }
      return Status::Ok();
    });
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.message(), "index 63 exploded") << "round " << round;
  }
}

TEST(WorkerPoolTest, ErrorCancelsRemainingWorkBestEffort) {
  WorkerPool pool(2);
  std::atomic<uint64_t> executed{0};
  Status status = pool.ParallelFor(100000, [&](uint64_t i) {
    executed.fetch_add(1, std::memory_order_relaxed);
    if (i == 0) {
      return Status::Aborted("stop");
    }
    return Status::Ok();
  });
  ASSERT_TRUE(status.IsAborted());
  // Cancellation is best-effort; it must at least beat running everything.
  EXPECT_LT(executed.load(), 100000u);
}

TEST(WorkerPoolTest, PoolIsReusableAcrossManyJobs) {
  WorkerPool pool(3);
  std::atomic<uint64_t> total{0};
  for (int job = 0; job < 50; ++job) {
    ASSERT_TRUE(pool.ParallelFor(40, [&](uint64_t) {
                      total.fetch_add(1, std::memory_order_relaxed);
                      return Status::Ok();
                    })
                    .ok());
  }
  EXPECT_EQ(total.load(), 50u * 40u);
}

TEST(WorkerPoolTest, ConcurrentCallersShareThePoolWithoutDeadlock) {
  WorkerPool pool(4);
  std::atomic<uint64_t> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 6; ++c) {
    callers.emplace_back([&pool, &total] {
      for (int job = 0; job < 20; ++job) {
        Status status = pool.ParallelFor(64, [&](uint64_t) {
          total.fetch_add(1, std::memory_order_relaxed);
          return Status::Ok();
        });
        ASSERT_TRUE(status.ok());
      }
    });
  }
  for (auto& t : callers) {
    t.join();
  }
  EXPECT_EQ(total.load(), 6u * 20u * 64u);
}

TEST(WorkerPoolTest, ParallelForEmitsObsCounterAndSpan) {
  obs::ObsOptions options;
  options.enable_metrics = true;
  options.enable_spans = true;
  obs::ObsHub hub(options);
  WorkerPool pool(4);
  pool.AttachObs(&hub);
  ASSERT_TRUE(
      pool.ParallelFor(32, [](uint64_t) { return Status::Ok(); }).ok());
  auto snapshot = hub.metrics()->Snapshot();
  EXPECT_GE(snapshot.CounterValue("exec.parallel_fors"), 1u);
  EXPECT_GE(snapshot.CounterValue("exec.chunks"), 1u);
}

TEST(RunShardedTest, NullPoolRunsSeriallyInOrder) {
  std::vector<uint64_t> order;
  ASSERT_TRUE(RunSharded(nullptr, 8, [&](uint64_t i) {
                order.push_back(i);
                return Status::Ok();
              })
                  .ok());
  ASSERT_EQ(order.size(), 8u);
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(RunShardedTest, SerialPathStopsAtFirstError) {
  uint64_t calls = 0;
  Status status = RunSharded(nullptr, 8, [&](uint64_t i) {
    ++calls;
    if (i == 2) {
      return Status::IoError("boom");
    }
    return Status::Ok();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(calls, 3u);  // 0, 1, 2 — nothing after the failure.
}

TEST(RunShardedTest, PooledPathMatchesSerialResults) {
  WorkerPool pool(4);
  constexpr uint64_t kCount = 256;
  std::vector<uint64_t> serial(kCount), pooled(kCount);
  ASSERT_TRUE(RunSharded(nullptr, kCount, [&](uint64_t i) {
                serial[i] = i * i;
                return Status::Ok();
              })
                  .ok());
  ASSERT_TRUE(RunSharded(&pool, kCount, [&](uint64_t i) {
                pooled[i] = i * i;  // Disjoint slots: no synchronization.
                return Status::Ok();
              })
                  .ok());
  EXPECT_EQ(serial, pooled);
}

}  // namespace
}  // namespace exec
}  // namespace rda
