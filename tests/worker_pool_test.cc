#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "exec/token_bucket.h"
#include "exec/worker_pool.h"
#include "obs/obs.h"

namespace rda {
namespace exec {
namespace {

TEST(WorkerPoolTest, EveryIndexRunsExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.width(), 4u);
  constexpr uint64_t kCount = 1000;
  std::vector<std::atomic<uint32_t>> hits(kCount);
  Status status = pool.ParallelFor(kCount, [&](uint64_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  });
  ASSERT_TRUE(status.ok());
  for (uint64_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
  }
}

TEST(WorkerPoolTest, ZeroCountIsANoOp) {
  WorkerPool pool(4);
  bool called = false;
  Status status = pool.ParallelFor(0, [&](uint64_t) {
    called = true;
    return Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_FALSE(called);
}

TEST(WorkerPoolTest, CountSmallerThanWidth) {
  WorkerPool pool(8);
  std::vector<std::atomic<uint32_t>> hits(3);
  ASSERT_TRUE(pool.ParallelFor(3, [&](uint64_t i) {
                    hits[i].fetch_add(1, std::memory_order_relaxed);
                    return Status::Ok();
                  })
                  .ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(hits[i].load(), 1u);
  }
}

TEST(WorkerPoolTest, WidthOneRunsInlineAndInOrder) {
  WorkerPool pool(1);
  std::vector<uint64_t> order;
  ASSERT_TRUE(pool.ParallelFor(16, [&](uint64_t i) {
                    order.push_back(i);  // No synchronization: must be inline.
                    return Status::Ok();
                  })
                  .ok());
  ASSERT_EQ(order.size(), 16u);
  for (uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(WorkerPoolTest, SingleFailureIsReportedDeterministically) {
  WorkerPool pool(4);
  for (int round = 0; round < 10; ++round) {
    Status status = pool.ParallelFor(100, [&](uint64_t i) {
      if (i == 63) {
        return Status::IoError("index 63 exploded");
      }
      return Status::Ok();
    });
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.message(), "index 63 exploded") << "round " << round;
  }
}

TEST(WorkerPoolTest, ErrorCancelsRemainingWorkBestEffort) {
  WorkerPool pool(2);
  std::atomic<uint64_t> executed{0};
  Status status = pool.ParallelFor(100000, [&](uint64_t i) {
    executed.fetch_add(1, std::memory_order_relaxed);
    if (i == 0) {
      return Status::Aborted("stop");
    }
    return Status::Ok();
  });
  ASSERT_TRUE(status.IsAborted());
  // Cancellation is best-effort; it must at least beat running everything.
  EXPECT_LT(executed.load(), 100000u);
}

// A chunk error racing a cancellation-class status: the low chunk observes
// an external cancel (kAborted, like a throttle interrupted mid-wait) only
// AFTER a higher chunk hit a real I/O error. The reported status must be
// the real error — before the fix, lowest-chunk-wins let the spurious
// kAborted mask it.
TEST(WorkerPoolTest, RealErrorOutranksRacingCancelStatus) {
  WorkerPool pool(4);
  for (int round = 0; round < 10; ++round) {
    std::atomic<bool> io_error_raised{false};
    // 100 indexes over 4 chunks of 25: index 5 lives in chunk 0, index 63
    // in chunk 2. Index 5 blocks until chunk 2's error exists, then returns
    // the cancel-class status — the race is forced, not sampled. At most
    // one claimant blocks, and the pool always has three background
    // workers plus the caller, so chunk 2 always runs.
    Status status = pool.ParallelFor(100, [&](uint64_t i) {
      if (i == 63) {
        io_error_raised.store(true, std::memory_order_release);
        return Status::IoError("disk 2 exploded");
      }
      if (i == 5) {
        while (!io_error_raised.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        return Status::Aborted("rebuild cancelled");
      }
      return Status::Ok();
    });
    ASSERT_TRUE(status.IsIoError()) << "round " << round << ": "
                                    << status.ToString();
    EXPECT_EQ(status.message(), "disk 2 exploded") << "round " << round;
  }
}

// With ONLY cancellation-class failures, the deterministic lowest-chunk
// kAborted still surfaces (cancellation is not silently swallowed).
TEST(WorkerPoolTest, PureCancellationStillReportsAborted) {
  WorkerPool pool(4);
  Status status = pool.ParallelFor(100, [&](uint64_t i) {
    if (i == 5 || i == 63) {
      return Status::Aborted("cancelled at " + std::to_string(i));
    }
    return Status::Ok();
  });
  ASSERT_TRUE(status.IsAborted()) << status.ToString();
}

TEST(WorkerPoolTest, PoolIsReusableAcrossManyJobs) {
  WorkerPool pool(3);
  std::atomic<uint64_t> total{0};
  for (int job = 0; job < 50; ++job) {
    ASSERT_TRUE(pool.ParallelFor(40, [&](uint64_t) {
                      total.fetch_add(1, std::memory_order_relaxed);
                      return Status::Ok();
                    })
                    .ok());
  }
  EXPECT_EQ(total.load(), 50u * 40u);
}

TEST(WorkerPoolTest, ConcurrentCallersShareThePoolWithoutDeadlock) {
  WorkerPool pool(4);
  std::atomic<uint64_t> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 6; ++c) {
    callers.emplace_back([&pool, &total] {
      for (int job = 0; job < 20; ++job) {
        Status status = pool.ParallelFor(64, [&](uint64_t) {
          total.fetch_add(1, std::memory_order_relaxed);
          return Status::Ok();
        });
        ASSERT_TRUE(status.ok());
      }
    });
  }
  for (auto& t : callers) {
    t.join();
  }
  EXPECT_EQ(total.load(), 6u * 20u * 64u);
}

TEST(WorkerPoolTest, ParallelForEmitsObsCounterAndSpan) {
  obs::ObsOptions options;
  options.enable_metrics = true;
  options.enable_spans = true;
  obs::ObsHub hub(options);
  WorkerPool pool(4);
  pool.AttachObs(&hub);
  ASSERT_TRUE(
      pool.ParallelFor(32, [](uint64_t) { return Status::Ok(); }).ok());
  auto snapshot = hub.metrics()->Snapshot();
  EXPECT_GE(snapshot.CounterValue("exec.parallel_fors"), 1u);
  EXPECT_GE(snapshot.CounterValue("exec.chunks"), 1u);
}

TEST(RunShardedTest, NullPoolRunsSeriallyInOrder) {
  std::vector<uint64_t> order;
  ASSERT_TRUE(RunSharded(nullptr, 8, [&](uint64_t i) {
                order.push_back(i);
                return Status::Ok();
              })
                  .ok());
  ASSERT_EQ(order.size(), 8u);
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(RunShardedTest, SerialPathStopsAtFirstError) {
  uint64_t calls = 0;
  Status status = RunSharded(nullptr, 8, [&](uint64_t i) {
    ++calls;
    if (i == 2) {
      return Status::IoError("boom");
    }
    return Status::Ok();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(calls, 3u);  // 0, 1, 2 — nothing after the failure.
}

TEST(RunShardedTest, PooledPathMatchesSerialResults) {
  WorkerPool pool(4);
  constexpr uint64_t kCount = 256;
  std::vector<uint64_t> serial(kCount), pooled(kCount);
  ASSERT_TRUE(RunSharded(nullptr, kCount, [&](uint64_t i) {
                serial[i] = i * i;
                return Status::Ok();
              })
                  .ok());
  ASSERT_TRUE(RunSharded(&pool, kCount, [&](uint64_t i) {
                pooled[i] = i * i;  // Disjoint slots: no synchronization.
                return Status::Ok();
              })
                  .ok());
  EXPECT_EQ(serial, pooled);
}

// --- TokenBucket ---

// The burst-at-start regression: a fresh bucket must start EMPTY, so the
// very first second of a rate-capped consumer already pays the configured
// rate. Before the fix the constructor seeded a full capacity of tokens and
// the first capacity-sized burst went through unthrottled.
TEST(TokenBucketTest, StartsEmptySoTheFirstAcquirePaysTheRate) {
  exec::TokenBucket bucket(/*tokens_per_sec=*/20);
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(bucket.Acquire(10));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // 10 tokens at 20/s accrue in 500ms; anything under ~350ms means the
  // bucket handed out tokens it had not earned yet.
  EXPECT_GE(std::chrono::duration<double>(elapsed).count(), 0.35)
      << "fresh bucket satisfied a half-capacity burst instantly";
}

TEST(TokenBucketTest, ExplicitInitialFillIsAvailableImmediately) {
  exec::TokenBucket bucket(/*tokens_per_sec=*/20, /*initial_tokens=*/20);
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(bucket.Acquire(10));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 0.35)
      << "pre-charged tokens were not usable immediately";
}

TEST(TokenBucketTest, RateZeroStaysUnlimited) {
  exec::TokenBucket bucket(0);
  EXPECT_TRUE(bucket.Acquire(1000000));  // Returns instantly.
}

TEST(TokenBucketTest, CancelInterruptsAnEmptyBucketWait) {
  exec::TokenBucket bucket(/*tokens_per_sec=*/1);
  std::atomic<bool> cancel{false};
  std::thread canceller([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    cancel.store(true, std::memory_order_release);
  });
  // An empty 1-token/s bucket takes a full second to cover one token (an
  // oversized request would return instantly via the debt path, so the
  // request must fit the capacity to make Acquire actually wait); the
  // cancel must break that wait.
  EXPECT_FALSE(bucket.Acquire(1, &cancel));
  canceller.join();
}

TEST(TokenBucketTest, OversizedRequestGoesIntoDebtInsteadOfStalling) {
  exec::TokenBucket bucket(/*tokens_per_sec=*/1);
  // 100 tokens can never fit a 1-token bucket; the documented contract is
  // an immediate grant that drives the balance negative.
  EXPECT_TRUE(bucket.Acquire(100));
}

}  // namespace
}  // namespace exec
}  // namespace rda
