#include <gtest/gtest.h>

#include <map>

#include "buffer/buffer_pool.h"

namespace rda {
namespace {

constexpr size_t kPageSize = 64;

// A buffer-pool harness with an in-memory "disk" behind the callbacks.
class BufferPoolTest : public ::testing::Test {
 protected:
  std::unique_ptr<BufferPool> MakePool(uint32_t capacity, bool steal = true) {
    BufferPool::Options options;
    options.capacity = capacity;
    options.page_size = kPageSize;
    options.allow_steal = steal;
    return std::make_unique<BufferPool>(
        options,
        [this](PageId page, PageImage* out) {
          *out = PageImage(kPageSize);
          auto it = disk_.find(page);
          if (it != disk_.end()) {
            out->payload = it->second;
          }
          ++fetches_;
          return Status::Ok();
        },
        [this](Frame* frame) {
          disk_[frame->page] = frame->payload;
          ++propagations_;
          if (!frame->modifiers.empty()) {
            ++steals_;
          }
          return Status::Ok();
        });
  }

  std::map<PageId, std::vector<uint8_t>> disk_;
  int fetches_ = 0;
  int propagations_ = 0;
  int steals_ = 0;
};

TEST_F(BufferPoolTest, FetchCachesPages) {
  auto pool = MakePool(4);
  bool hit = true;
  auto frame = pool->Fetch(1, &hit);
  ASSERT_TRUE(frame.ok());
  EXPECT_FALSE(hit);
  auto again = pool->Fetch(1, &hit);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(fetches_, 1);
  EXPECT_EQ(pool->stats().hits, 1u);
  EXPECT_EQ(pool->stats().misses, 1u);
}

TEST_F(BufferPoolTest, EvictsLruVictim) {
  auto pool = MakePool(2);
  ASSERT_TRUE(pool->Fetch(1, nullptr).ok());
  ASSERT_TRUE(pool->Fetch(2, nullptr).ok());
  ASSERT_TRUE(pool->Fetch(1, nullptr).ok());  // Touch 1; 2 becomes LRU.
  ASSERT_TRUE(pool->Fetch(3, nullptr).ok());  // Evicts 2.
  EXPECT_NE(pool->Lookup(1), nullptr);
  EXPECT_EQ(pool->Lookup(2), nullptr);
  EXPECT_NE(pool->Lookup(3), nullptr);
}

TEST_F(BufferPoolTest, DirtyEvictionPropagates) {
  auto pool = MakePool(2);
  auto frame = pool->Fetch(1, nullptr);
  ASSERT_TRUE(frame.ok());
  (*frame)->payload[0] = 0xAB;
  (*frame)->dirty = true;
  ASSERT_TRUE(pool->Fetch(2, nullptr).ok());
  ASSERT_TRUE(pool->Fetch(3, nullptr).ok());  // Evicts 1 -> propagate.
  EXPECT_EQ(propagations_, 1);
  EXPECT_EQ(disk_[1][0], 0xAB);
}

TEST_F(BufferPoolTest, StealCountsUncommittedEvictions) {
  auto pool = MakePool(1);
  auto frame = pool->Fetch(1, nullptr);
  ASSERT_TRUE(frame.ok());
  (*frame)->dirty = true;
  (*frame)->AddModifier(7);
  ASSERT_TRUE(pool->Fetch(2, nullptr).ok());
  EXPECT_EQ(steals_, 1);
  EXPECT_EQ(pool->stats().steals, 1u);
}

TEST_F(BufferPoolTest, NoStealPolicyProtectsUncommittedPages) {
  auto pool = MakePool(2, /*steal=*/false);
  auto frame = pool->Fetch(1, nullptr);
  ASSERT_TRUE(frame.ok());
  (*frame)->dirty = true;
  (*frame)->AddModifier(7);
  ASSERT_TRUE(pool->Fetch(2, nullptr).ok());
  // Page 1 is pinned-by-policy; page 2 is the only victim.
  ASSERT_TRUE(pool->Fetch(3, nullptr).ok());
  EXPECT_NE(pool->Lookup(1), nullptr);
  EXPECT_EQ(steals_, 0);
}

TEST_F(BufferPoolTest, AllUnstealableReportsBusy) {
  auto pool = MakePool(1, /*steal=*/false);
  auto frame = pool->Fetch(1, nullptr);
  ASSERT_TRUE(frame.ok());
  (*frame)->dirty = true;
  (*frame)->AddModifier(7);
  EXPECT_TRUE(pool->Fetch(2, nullptr).status().IsBusy());
}

TEST_F(BufferPoolTest, PinnedFramesNotEvicted) {
  auto pool = MakePool(1);
  auto frame = pool->Fetch(1, nullptr);
  ASSERT_TRUE(frame.ok());
  (*frame)->pins = 1;
  EXPECT_TRUE(pool->Fetch(2, nullptr).status().IsBusy());
  (*frame)->pins = 0;
  EXPECT_TRUE(pool->Fetch(2, nullptr).ok());
}

// Regression pin for the eviction order: a mixed workload of misses, hits,
// re-reads of evicted pages, pins, and steals must evict in exactly
// least-recently-Fetched order, with pinned/unstealable frames skipped in
// favor of the next-coldest victim.
TEST_F(BufferPoolTest, ExactLruEvictionOrder) {
  auto pool = MakePool(3);
  // Fill: recency (MRU..LRU) = 3, 2, 1.
  ASSERT_TRUE(pool->Fetch(1, nullptr).ok());
  ASSERT_TRUE(pool->Fetch(2, nullptr).ok());
  ASSERT_TRUE(pool->Fetch(3, nullptr).ok());
  // Hit on 1: recency = 1, 3, 2.
  bool hit = false;
  ASSERT_TRUE(pool->Fetch(1, &hit).ok());
  EXPECT_TRUE(hit);
  // Miss on 4 evicts 2 (the coldest). Recency = 4, 1, 3.
  ASSERT_TRUE(pool->Fetch(4, nullptr).ok());
  EXPECT_EQ(pool->Lookup(2), nullptr);
  // Re-read of evicted 2 is a miss and evicts 3. Recency = 2, 4, 1.
  ASSERT_TRUE(pool->Fetch(2, &hit).ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ(pool->Lookup(3), nullptr);
  // Pin the coldest frame (1); the next miss must skip it and evict 4.
  Frame* frame1 = pool->Lookup(1);
  ASSERT_NE(frame1, nullptr);
  frame1->pins = 1;
  ASSERT_TRUE(pool->Fetch(5, nullptr).ok());  // Recency = 5, 2, 1(pinned).
  EXPECT_NE(pool->Lookup(1), nullptr);
  EXPECT_EQ(pool->Lookup(4), nullptr);
  frame1->pins = 0;
  // Dirty + uncommitted modifier on the coldest frame (1): with STEAL
  // allowed it is still the victim, and the eviction counts as a steal.
  frame1->dirty = true;
  frame1->AddModifier(42);
  ASSERT_TRUE(pool->Fetch(6, nullptr).ok());  // Evicts 1 (a steal).
  EXPECT_EQ(pool->Lookup(1), nullptr);
  EXPECT_EQ(steals_, 1);
  EXPECT_EQ(pool->stats().steals, 1u);
  // Remaining recency = 6, 5, 2: one more miss evicts 2.
  ASSERT_TRUE(pool->Fetch(7, nullptr).ok());
  EXPECT_EQ(pool->Lookup(2), nullptr);
  EXPECT_NE(pool->Lookup(5), nullptr);
  EXPECT_NE(pool->Lookup(6), nullptr);
}

TEST_F(BufferPoolTest, PropagateFrameRefreshesSnapshot) {
  auto pool = MakePool(2);
  auto frame = pool->Fetch(1, nullptr);
  ASSERT_TRUE(frame.ok());
  (*frame)->payload[3] = 0x44;
  (*frame)->dirty = true;
  (*frame)->pending_mods.push_back(PendingMod{5, 0, {}});
  ASSERT_TRUE(pool->PropagateFrame(*frame).ok());
  EXPECT_FALSE((*frame)->dirty);
  EXPECT_EQ((*frame)->last_propagated[3], 0x44);
  EXPECT_TRUE((*frame)->pending_mods.empty());
}

TEST_F(BufferPoolTest, PropagateAllDirtyFlushesEverything) {
  auto pool = MakePool(8);
  for (PageId page = 0; page < 5; ++page) {
    auto frame = pool->Fetch(page, nullptr);
    ASSERT_TRUE(frame.ok());
    (*frame)->payload[0] = static_cast<uint8_t>(page + 1);
    (*frame)->dirty = true;
  }
  ASSERT_TRUE(pool->PropagateAllDirty().ok());
  EXPECT_EQ(propagations_, 5);
  EXPECT_TRUE(pool->DirtyPages().empty());
  for (PageId page = 0; page < 5; ++page) {
    EXPECT_EQ(disk_[page][0], page + 1);
  }
}

TEST_F(BufferPoolTest, DiscardDropsWithoutWriting) {
  auto pool = MakePool(2);
  auto frame = pool->Fetch(1, nullptr);
  ASSERT_TRUE(frame.ok());
  (*frame)->payload[0] = 0x99;
  (*frame)->dirty = true;
  pool->Discard(1);
  EXPECT_EQ(pool->Lookup(1), nullptr);
  EXPECT_EQ(propagations_, 0);
}

TEST_F(BufferPoolTest, LoseAllSimulatesCrash) {
  auto pool = MakePool(4);
  ASSERT_TRUE(pool->Fetch(1, nullptr).ok());
  ASSERT_TRUE(pool->Fetch(2, nullptr).ok());
  pool->LoseAll();
  EXPECT_EQ(pool->size(), 0u);
  EXPECT_EQ(pool->Lookup(1), nullptr);
}

TEST_F(BufferPoolTest, ModifierBookkeeping) {
  Frame frame;
  frame.AddModifier(3);
  frame.AddModifier(3);
  frame.AddModifier(4);
  EXPECT_EQ(frame.modifiers.size(), 2u);
  EXPECT_TRUE(frame.HasModifier(3));
  frame.RemoveModifier(3);
  EXPECT_FALSE(frame.HasModifier(3));
  EXPECT_TRUE(frame.HasModifier(4));
}

TEST_F(BufferPoolTest, DirtyPagesSorted) {
  auto pool = MakePool(8);
  for (const PageId page : {5u, 1u, 3u}) {
    auto frame = pool->Fetch(page, nullptr);
    ASSERT_TRUE(frame.ok());
    (*frame)->dirty = true;
  }
  EXPECT_EQ(pool->DirtyPages(), (std::vector<PageId>{1, 3, 5}));
}


TEST_F(BufferPoolTest, FetchErrorPropagates) {
  BufferPool::Options options;
  options.capacity = 2;
  options.page_size = kPageSize;
  BufferPool pool(
      options,
      [](PageId, PageImage*) { return Status::IoError("disk down"); },
      [](Frame*) { return Status::Ok(); });
  EXPECT_TRUE(pool.Fetch(1, nullptr).status().IsIoError());
  EXPECT_EQ(pool.size(), 0u);
}

TEST_F(BufferPoolTest, PropagateErrorAbortsEviction) {
  BufferPool::Options options;
  options.capacity = 1;
  options.page_size = kPageSize;
  int fetches = 0;
  BufferPool pool(
      options,
      [&](PageId, PageImage* out) {
        ++fetches;
        *out = PageImage(kPageSize);
        return Status::Ok();
      },
      [](Frame*) { return Status::IoError("array failure"); });
  auto frame = pool.Fetch(1, nullptr);
  ASSERT_TRUE(frame.ok());
  (*frame)->dirty = true;
  EXPECT_TRUE(pool.Fetch(2, nullptr).status().IsIoError());
  // The dirty victim stays resident (nothing was lost).
  EXPECT_NE(pool.Lookup(1), nullptr);
}

TEST_F(BufferPoolTest, StatsResetWorks) {
  auto pool = MakePool(2);
  ASSERT_TRUE(pool->Fetch(1, nullptr).ok());
  ASSERT_TRUE(pool->Fetch(1, nullptr).ok());
  EXPECT_GT(pool->stats().hits + pool->stats().misses, 0u);
  pool->ResetStats();
  EXPECT_EQ(pool->stats().hits, 0u);
  EXPECT_EQ(pool->stats().misses, 0u);
}

TEST_F(BufferPoolTest, CapacityOneChurn) {
  auto pool = MakePool(1);
  for (PageId page = 0; page < 20; ++page) {
    auto frame = pool->Fetch(page, nullptr);
    ASSERT_TRUE(frame.ok());
    (*frame)->payload[0] = static_cast<uint8_t>(page);
    (*frame)->dirty = true;
  }
  EXPECT_EQ(pool->size(), 1u);
  EXPECT_EQ(propagations_, 19);
  for (PageId page = 0; page < 19; ++page) {
    EXPECT_EQ(disk_[page][0], static_cast<uint8_t>(page));
  }
}

TEST_F(BufferPoolTest, ResidentPagesSortedListing) {
  auto pool = MakePool(8);
  for (const PageId page : {7u, 2u, 5u}) {
    ASSERT_TRUE(pool->Fetch(page, nullptr).ok());
  }
  EXPECT_EQ(pool->ResidentPages(), (std::vector<PageId>{2, 5, 7}));
}

}  // namespace
}  // namespace rda
