#include <gtest/gtest.h>

#include "common/random.h"
#include "core/database.h"

namespace rda {
namespace {

DatabaseOptions BaseOptions() {
  DatabaseOptions options;
  options.array.data_pages_per_group = 4;
  options.array.parity_copies = 2;
  options.array.min_data_pages = 48;
  options.array.page_size = 128;
  options.buffer.capacity = 12;
  options.txn.force = true;
  options.txn.rda_undo = true;
  return options;
}

class MediaRecoveryTest : public ::testing::Test {
 protected:
  void Open(const DatabaseOptions& options = BaseOptions()) {
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
  }

  void Populate() {
    for (PageId page = 0; page < db_->num_pages(); ++page) {
      auto txn = db_->Begin();
      ASSERT_TRUE(txn.ok());
      std::vector<uint8_t> bytes(db_->user_page_size(),
                                 static_cast<uint8_t>(page + 1));
      ASSERT_TRUE(db_->WritePage(*txn, page, bytes).ok());
      ASSERT_TRUE(db_->Commit(*txn).ok());
    }
  }

  uint8_t ReadCommitted(PageId page) {
    auto payload = db_->RawReadPage(page);
    EXPECT_TRUE(payload.ok()) << payload.status().ToString();
    return (*payload)[kDataRegionOffset];
  }

  void VerifyAllPages() {
    for (PageId page = 0; page < db_->num_pages(); ++page) {
      EXPECT_EQ(ReadCommitted(page), static_cast<uint8_t>(page + 1))
          << "page " << page;
    }
  }

  std::unique_ptr<Database> db_;
};

TEST_F(MediaRecoveryTest, EveryDiskIsRebuildable) {
  Open();
  Populate();
  for (DiskId disk = 0; disk < db_->array()->num_disks(); ++disk) {
    ASSERT_TRUE(db_->FailDisk(disk).ok());
    auto report = db_->RebuildDisk(disk);
    ASSERT_TRUE(report.ok()) << "disk " << disk << ": "
                             << report.status().ToString();
    EXPECT_TRUE(report->undo_coverage_lost.empty());
    VerifyAllPages();
    auto ok = db_->VerifyAllParity();
    ASSERT_TRUE(ok.ok());
    EXPECT_TRUE(*ok) << "after rebuilding disk " << disk;
  }
}

TEST_F(MediaRecoveryTest, DegradedReadsWorkWhileDiskDown) {
  Open();
  Populate();
  ASSERT_TRUE(db_->FailDisk(3).ok());
  VerifyAllPages();  // RawReadPage reconstructs through parity.
  // Transactions can still read through the buffer pool.
  auto txn = db_->Begin();
  std::vector<uint8_t> read;
  for (PageId page = 0; page < 8; ++page) {
    ASSERT_TRUE(db_->ReadPage(*txn, page, &read).ok()) << "page " << page;
    EXPECT_EQ(read[0], static_cast<uint8_t>(page + 1));
  }
  ASSERT_TRUE(db_->Commit(*txn).ok());
  ASSERT_TRUE(db_->RebuildDisk(3).ok());
}

TEST_F(MediaRecoveryTest, RebuildRequiresFailedDisk) {
  Open();
  EXPECT_TRUE(db_->RebuildDisk(0).status().IsInvalidArgument());
}

TEST_F(MediaRecoveryTest, DoubleFailureRefused) {
  Open();
  ASSERT_TRUE(db_->FailDisk(0).ok());
  ASSERT_TRUE(db_->FailDisk(1).ok());
  EXPECT_TRUE(db_->RebuildDisk(0).status().IsFailedPrecondition());
}

TEST_F(MediaRecoveryTest, DirtyGroupSurvivesLosingWorkingTwin) {
  Open();
  Populate();
  // Make group 0 dirty via an unlogged steal of page 1.
  auto txn = db_->Begin();
  std::vector<uint8_t> bytes(db_->user_page_size(), 0xEE);
  ASSERT_TRUE(db_->WritePage(*txn, 1, bytes).ok());
  Frame* frame = db_->txn_manager()->pool()->Lookup(1);
  ASSERT_TRUE(db_->txn_manager()->pool()->PropagateFrame(frame).ok());
  ASSERT_TRUE(db_->parity()->directory().Get(0).dirty);

  // Fail the disk holding the WORKING twin: it is recomputable from data.
  const GroupState& state = db_->parity()->directory().Get(0);
  const DiskId victim =
      db_->array()->layout().ParityLocation(0, state.working_twin).disk;
  ASSERT_TRUE(db_->FailDisk(victim).ok());
  auto report = db_->RebuildDisk(victim);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->undo_coverage_lost.empty());

  // The transaction can still abort via parity.
  ASSERT_TRUE(db_->Abort(*txn).ok());
  EXPECT_EQ(ReadCommitted(1), 2);  // Back to the populated value.
}

TEST_F(MediaRecoveryTest, DirtyGroupLosingOldTwinLosesUndoCoverage) {
  Open();
  Populate();
  auto txn = db_->Begin();
  std::vector<uint8_t> bytes(db_->user_page_size(), 0xEE);
  ASSERT_TRUE(db_->WritePage(*txn, 1, bytes).ok());
  Frame* frame = db_->txn_manager()->pool()->Lookup(1);
  ASSERT_TRUE(db_->txn_manager()->pool()->PropagateFrame(frame).ok());

  // Fail the disk holding the VALID (old) twin: the before-state of the
  // unlogged update is unrecoverable — the documented worst case.
  const GroupState& state = db_->parity()->directory().Get(0);
  const DiskId victim =
      db_->array()->layout().ParityLocation(0, state.valid_twin).disk;
  ASSERT_TRUE(db_->FailDisk(victim).ok());
  auto report = db_->RebuildDisk(victim);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->undo_coverage_lost.size(), 1u);
  EXPECT_EQ(report->undo_coverage_lost[0], *txn);

  // Abort is refused with kDataLoss; commit remains possible.
  EXPECT_TRUE(db_->Abort(*txn).IsDataLoss());
  EXPECT_TRUE(db_->Commit(*txn).ok());
  EXPECT_EQ(ReadCommitted(1), 0xEE);
  auto ok = db_->VerifyAllParity();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_F(MediaRecoveryTest, RandomizedFailRebuildCycles) {
  Open();
  Populate();
  Random rng(77);
  for (int round = 0; round < 6; ++round) {
    // Some committed churn.
    for (int i = 0; i < 5; ++i) {
      auto txn = db_->Begin();
      const PageId page =
          static_cast<PageId>(rng.Uniform(db_->num_pages()));
      std::vector<uint8_t> bytes(db_->user_page_size(),
                                 static_cast<uint8_t>(page + 1));
      ASSERT_TRUE(db_->WritePage(*txn, page, bytes).ok());
      ASSERT_TRUE(db_->Commit(*txn).ok());
    }
    const DiskId victim =
        static_cast<DiskId>(rng.Uniform(db_->array()->num_disks()));
    ASSERT_TRUE(db_->FailDisk(victim).ok());
    auto report = db_->RebuildDisk(victim);
    ASSERT_TRUE(report.ok());
    VerifyAllPages();
    auto ok = db_->VerifyAllParity();
    ASSERT_TRUE(ok.ok());
    ASSERT_TRUE(*ok) << "round " << round;
  }
}

TEST_F(MediaRecoveryTest, ParityStripingLayoutAlsoRebuilds) {
  DatabaseOptions options = BaseOptions();
  options.array.layout_kind = LayoutKind::kParityStriping;
  Open(options);
  Populate();
  for (DiskId disk = 0; disk < db_->array()->num_disks(); ++disk) {
    ASSERT_TRUE(db_->FailDisk(disk).ok());
    ASSERT_TRUE(db_->RebuildDisk(disk).ok());
    VerifyAllPages();
  }
}

TEST_F(MediaRecoveryTest, CrashThenMediaFailureThenRecoverAll) {
  Open();
  Populate();
  auto loser = db_->Begin();
  std::vector<uint8_t> bytes(db_->user_page_size(), 0xDD);
  ASSERT_TRUE(db_->WritePage(*loser, 2, bytes).ok());
  Frame* frame = db_->txn_manager()->pool()->Lookup(2);
  ASSERT_TRUE(db_->txn_manager()->pool()->PropagateFrame(frame).ok());

  db_->Crash();
  ASSERT_TRUE(db_->Recover().ok());
  EXPECT_EQ(ReadCommitted(2), 3);  // Loser undone.

  ASSERT_TRUE(db_->FailDisk(1).ok());
  ASSERT_TRUE(db_->RebuildDisk(1).ok());
  VerifyAllPages();
  auto ok = db_->VerifyAllParity();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

}  // namespace
}  // namespace rda
