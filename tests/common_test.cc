#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/crc32.h"
#include "common/random.h"
#include "common/status.h"
#include "common/xor_util.h"

namespace rda {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  const Status status = Status::Corruption("bad page");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsCorruption());
  EXPECT_EQ(status.message(), "bad page");
  EXPECT_EQ(status.ToString(), "CORRUPTION: bad page");
}

TEST(StatusTest, AllCodesRoundTrip) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::DataLoss("x").IsDataLoss());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 7);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> result(std::vector<int>{1, 2, 3});
  std::vector<int> taken = std::move(result).value();
  EXPECT_EQ(taken.size(), 3u);
}

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(42);
  Random b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (a.Next() == b.Next());
  }
  EXPECT_LT(equal, 4);
}

TEST(RandomTest, UniformRespectsBound) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, UniformRangeInclusive) {
  Random rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.UniformRange(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // All four values appear.
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, BernoulliRoughlyFair) {
  Random rng(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    heads += rng.Bernoulli(0.5);
  }
  EXPECT_NEAR(heads, 5000, 300);
}

TEST(RandomTest, FillBytesCoversWholeBuffer) {
  Random rng(17);
  std::vector<uint8_t> bytes(37, 0);
  rng.FillBytes(&bytes);
  int nonzero = 0;
  for (const uint8_t b : bytes) {
    nonzero += (b != 0);
  }
  EXPECT_GT(nonzero, 25);  // Random bytes are rarely zero.
}

TEST(Crc32Test, KnownVector) {
  // CRC-32C("123456789") = 0xE3069283 (RFC 3720 test vector).
  const char data[] = "123456789";
  EXPECT_EQ(Crc32c(data, 9), 0xE3069283u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32c(nullptr, 0), 0u); }

TEST(Crc32Test, SeedChainsIncrementally) {
  const char data[] = "hello world";
  const uint32_t whole = Crc32c(data, 11);
  const uint32_t first = Crc32c(data, 5);
  const uint32_t chained = Crc32c(data + 5, 6, first);
  EXPECT_EQ(whole, chained);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::vector<uint8_t> data(128, 0x3c);
  const uint32_t before = Crc32c(data.data(), data.size());
  data[77] ^= 0x01;
  EXPECT_NE(before, Crc32c(data.data(), data.size()));
}

// RFC 3720 Appendix B.4 known-answer vectors, checked against both the
// portable slice-by-8 path and (when the CPU has it) the hardware path.
TEST(Crc32Test, Rfc3720KnownAnswers) {
  std::vector<uint8_t> zeros(32, 0x00);
  std::vector<uint8_t> ones(32, 0xff);
  std::vector<uint8_t> incrementing(32);
  std::vector<uint8_t> decrementing(32);
  for (size_t i = 0; i < 32; ++i) {
    incrementing[i] = static_cast<uint8_t>(i);
    decrementing[i] = static_cast<uint8_t>(31 - i);
  }
  const std::vector<uint8_t> iscsi_read_10 = {
      0x01, 0xc0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x00,
      0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x18, 0x28, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00};

  struct Vector {
    const std::vector<uint8_t>* data;
    uint32_t expected;
  };
  const Vector vectors[] = {
      {&zeros, 0x8a9136aau},
      {&ones, 0x62a8ab43u},
      {&incrementing, 0x46dd794eu},
      {&decrementing, 0x113fdb5cu},
      {&iscsi_read_10, 0xd9963a56u},
  };
  for (const Vector& v : vectors) {
    EXPECT_EQ(Crc32c(v.data->data(), v.data->size()), v.expected);
    EXPECT_EQ(Crc32cSoftware(v.data->data(), v.data->size()), v.expected);
    if (Crc32cHardwareAvailable()) {
      EXPECT_EQ(Crc32cHardware(v.data->data(), v.data->size()), v.expected);
    }
  }
}

// The hardware and software implementations must be bit-identical for
// every length and alignment — log frames and page images hit both odd
// sizes and odd offsets.
TEST(Crc32Test, HardwareMatchesSoftware) {
  if (!Crc32cHardwareAvailable()) {
    GTEST_SKIP() << "no CRC32C instructions on this CPU";
  }
  Random rng(47);
  std::vector<uint8_t> data(1024 + 16);
  rng.FillBytes(&data);
  for (const size_t size : {0u, 1u, 3u, 7u, 8u, 9u, 15u, 63u, 512u, 1024u}) {
    for (const size_t offset : {0u, 1u, 5u}) {
      const uint32_t sw = Crc32cSoftware(data.data() + offset, size);
      const uint32_t hw = Crc32cHardware(data.data() + offset, size);
      EXPECT_EQ(sw, hw) << "size=" << size << " offset=" << offset;
      // Seeded (chained) calls must agree too.
      EXPECT_EQ(Crc32cSoftware(data.data() + offset, size, 0xdeadbeef),
                Crc32cHardware(data.data() + offset, size, 0xdeadbeef));
    }
  }
}

TEST(Crc32Test, ImplNameIsConsistentWithAvailability) {
  const char* name = Crc32cImplName();
  if (Crc32cHardwareAvailable()) {
    EXPECT_STRNE(name, "software");
  } else {
    EXPECT_STREQ(name, "software");
  }
}

TEST(XorTest, SelfInverse) {
  Random rng(23);
  std::vector<uint8_t> a(100);
  std::vector<uint8_t> b(100);
  rng.FillBytes(&a);
  rng.FillBytes(&b);
  std::vector<uint8_t> original = a;
  XorInto(&a, b);
  EXPECT_NE(a, original);
  XorInto(&a, b);
  EXPECT_EQ(a, original);
}

TEST(XorTest, OddSizesHandled) {
  for (const size_t size : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u}) {
    std::vector<uint8_t> a(size, 0xff);
    std::vector<uint8_t> b(size, 0x0f);
    XorInto(&a, b);
    for (const uint8_t byte : a) {
      EXPECT_EQ(byte, 0xf0);
    }
  }
}

TEST(XorTest, AllZeroDetector) {
  std::vector<uint8_t> zero(64, 0);
  EXPECT_TRUE(AllZero(zero.data(), zero.size()));
  zero[63] = 1;
  EXPECT_FALSE(AllZero(zero.data(), zero.size()));
}

// The word-at-a-time fast paths must handle buffers that are not a
// multiple of the word size: the tail bytes are where a sloppy
// implementation would read past the end or skip data.
TEST(XorTest, UnalignedSizesBothHelpers) {
  Random rng(53);
  for (const size_t size : {0u, 1u, 7u, 9u, 513u}) {
    // AllZero: all-zero buffer is zero; setting any single byte flips it.
    std::vector<uint8_t> zero(size, 0);
    EXPECT_TRUE(AllZero(zero.data(), zero.size())) << "size=" << size;
    for (const size_t flip : {size_t{0}, size / 2, size - 1}) {
      if (size == 0) {
        break;
      }
      std::vector<uint8_t> buf(size, 0);
      buf[flip] = 0x80;
      EXPECT_FALSE(AllZero(buf.data(), buf.size()))
          << "size=" << size << " flip=" << flip;
    }

    // XorInto: compare against a bytewise reference on random data.
    std::vector<uint8_t> a(size);
    std::vector<uint8_t> b(size);
    rng.FillBytes(&a);
    rng.FillBytes(&b);
    std::vector<uint8_t> expected(size);
    for (size_t i = 0; i < size; ++i) {
      expected[i] = a[i] ^ b[i];
    }
    XorInto(&a, b);
    EXPECT_EQ(a, expected) << "size=" << size;
  }
}

// Parity algebra property: XOR of any even multiset of pages cancels —
// the identity behind D_old = (P xor P') xor D_new.
TEST(XorTest, ParityUndoIdentity) {
  Random rng(31);
  std::vector<uint8_t> d_old(256);
  std::vector<uint8_t> d_new(256);
  std::vector<uint8_t> others(256);  // XOR of the group's other pages.
  rng.FillBytes(&d_old);
  rng.FillBytes(&d_new);
  rng.FillBytes(&others);

  // P  = parity before the update, P' = parity after.
  std::vector<uint8_t> p = others;
  XorInto(&p, d_old);
  std::vector<uint8_t> p_prime = others;
  XorInto(&p_prime, d_new);

  std::vector<uint8_t> recovered = p;
  XorInto(&recovered, p_prime);
  XorInto(&recovered, d_new);
  EXPECT_EQ(recovered, d_old);
}

}  // namespace
}  // namespace rda
