#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/crc32.h"
#include "common/random.h"
#include "common/status.h"
#include "common/xor_util.h"

namespace rda {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  const Status status = Status::Corruption("bad page");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsCorruption());
  EXPECT_EQ(status.message(), "bad page");
  EXPECT_EQ(status.ToString(), "CORRUPTION: bad page");
}

TEST(StatusTest, AllCodesRoundTrip) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::DataLoss("x").IsDataLoss());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 7);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> result(std::vector<int>{1, 2, 3});
  std::vector<int> taken = std::move(result).value();
  EXPECT_EQ(taken.size(), 3u);
}

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(42);
  Random b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (a.Next() == b.Next());
  }
  EXPECT_LT(equal, 4);
}

TEST(RandomTest, UniformRespectsBound) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, UniformRangeInclusive) {
  Random rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.UniformRange(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // All four values appear.
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, BernoulliRoughlyFair) {
  Random rng(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    heads += rng.Bernoulli(0.5);
  }
  EXPECT_NEAR(heads, 5000, 300);
}

TEST(RandomTest, FillBytesCoversWholeBuffer) {
  Random rng(17);
  std::vector<uint8_t> bytes(37, 0);
  rng.FillBytes(&bytes);
  int nonzero = 0;
  for (const uint8_t b : bytes) {
    nonzero += (b != 0);
  }
  EXPECT_GT(nonzero, 25);  // Random bytes are rarely zero.
}

TEST(Crc32Test, KnownVector) {
  // CRC-32C("123456789") = 0xE3069283 (RFC 3720 test vector).
  const char data[] = "123456789";
  EXPECT_EQ(Crc32c(data, 9), 0xE3069283u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32c(nullptr, 0), 0u); }

TEST(Crc32Test, SeedChainsIncrementally) {
  const char data[] = "hello world";
  const uint32_t whole = Crc32c(data, 11);
  const uint32_t first = Crc32c(data, 5);
  const uint32_t chained = Crc32c(data + 5, 6, first);
  EXPECT_EQ(whole, chained);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::vector<uint8_t> data(128, 0x3c);
  const uint32_t before = Crc32c(data.data(), data.size());
  data[77] ^= 0x01;
  EXPECT_NE(before, Crc32c(data.data(), data.size()));
}

TEST(XorTest, SelfInverse) {
  Random rng(23);
  std::vector<uint8_t> a(100);
  std::vector<uint8_t> b(100);
  rng.FillBytes(&a);
  rng.FillBytes(&b);
  std::vector<uint8_t> original = a;
  XorInto(&a, b);
  EXPECT_NE(a, original);
  XorInto(&a, b);
  EXPECT_EQ(a, original);
}

TEST(XorTest, OddSizesHandled) {
  for (const size_t size : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u}) {
    std::vector<uint8_t> a(size, 0xff);
    std::vector<uint8_t> b(size, 0x0f);
    XorInto(&a, b);
    for (const uint8_t byte : a) {
      EXPECT_EQ(byte, 0xf0);
    }
  }
}

TEST(XorTest, AllZeroDetector) {
  std::vector<uint8_t> zero(64, 0);
  EXPECT_TRUE(AllZero(zero.data(), zero.size()));
  zero[63] = 1;
  EXPECT_FALSE(AllZero(zero.data(), zero.size()));
}

// Parity algebra property: XOR of any even multiset of pages cancels —
// the identity behind D_old = (P xor P') xor D_new.
TEST(XorTest, ParityUndoIdentity) {
  Random rng(31);
  std::vector<uint8_t> d_old(256);
  std::vector<uint8_t> d_new(256);
  std::vector<uint8_t> others(256);  // XOR of the group's other pages.
  rng.FillBytes(&d_old);
  rng.FillBytes(&d_new);
  rng.FillBytes(&others);

  // P  = parity before the update, P' = parity after.
  std::vector<uint8_t> p = others;
  XorInto(&p, d_old);
  std::vector<uint8_t> p_prime = others;
  XorInto(&p_prime, d_new);

  std::vector<uint8_t> recovered = p;
  XorInto(&recovered, p_prime);
  XorInto(&recovered, d_new);
  EXPECT_EQ(recovered, d_old);
}

}  // namespace
}  // namespace rda
