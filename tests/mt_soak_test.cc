// Multi-threaded soak of the concurrent engine: N writer threads with
// randomized aborts, end-state equivalence against a serial replay of the
// same scripts, crash+recover on the concurrent end state, scripted
// transient faults under RunConcurrent (with the retry-reclassification
// invariant of the I/O counters), a crash landing inside the group-commit
// latency window, and evidence that group commit actually batches.
//
// This file is the primary TSan target: the CI thread-sanitizer job runs
// it alongside the unit tests (.github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/database.h"
#include "io/io_engine.h"

namespace rda {
namespace {

struct MtCase {
  bool force;
  bool rda;
};

std::string CaseName(const ::testing::TestParamInfo<MtCase>& info) {
  return std::string(info.param.force ? "Force" : "NoForce") +
         (info.param.rda ? "Rda" : "NoRda");
}

constexpr uint32_t kThreads = 4;
constexpr uint32_t kPages = 64;
constexpr uint32_t kTxnsPerThread = 30;

DatabaseOptions MakeOptions(bool force, bool rda) {
  DatabaseOptions options;
  options.array.data_pages_per_group = 4;
  options.array.parity_copies = 2;
  options.array.min_data_pages = kPages;
  options.array.page_size = 128;
  options.buffer.capacity = 24;  // Smaller than kPages: evictions happen.
  options.buffer.shards = 4;
  options.txn.force = force;
  options.txn.rda_undo = rda;
  if (!force) {
    options.checkpoint_interval_updates = 64;
  }
  return options;
}

// One scripted operation / transaction / per-thread program. Scripts are
// drawn up front so the concurrent run and the serial replay execute the
// exact same work, and so Busy-triggered retries replay identical writes.
struct ScriptedTxn {
  std::vector<std::pair<PageId, uint8_t>> writes;
  bool abort = false;
};

std::vector<std::vector<ScriptedTxn>> DrawScripts(uint64_t seed) {
  std::vector<std::vector<ScriptedTxn>> scripts(kThreads);
  for (uint32_t worker = 0; worker < kThreads; ++worker) {
    Random rng(seed + worker * 1000003);
    // Disjoint page partition per thread: the final value of every page is
    // then determined by its owner's program order alone, making the
    // concurrent end state deterministic and serially replayable.
    const PageId base = worker * (kPages / kThreads);
    scripts[worker].resize(kTxnsPerThread);
    for (ScriptedTxn& txn : scripts[worker]) {
      const int ops = 1 + static_cast<int>(rng.Uniform(4));
      for (int op = 0; op < ops; ++op) {
        const PageId page =
            base + static_cast<PageId>(rng.Uniform(kPages / kThreads));
        const uint8_t fill = static_cast<uint8_t>(rng.UniformRange(1, 250));
        txn.writes.emplace_back(page, fill);
      }
      txn.abort = rng.Bernoulli(0.25);
    }
  }
  return scripts;
}

// Executes one worker's program. Busy outcomes (lock conflicts, eviction
// hitting a mid-EOT frame) abort and replay the scripted transaction.
void RunScript(Database* db, const std::vector<ScriptedTxn>& script,
               std::atomic<bool>* failed) {
  std::vector<uint8_t> bytes(db->user_page_size());
  for (const ScriptedTxn& scripted : script) {
    for (int attempt = 0; attempt < 10000; ++attempt) {
      auto txn = db->Begin();
      if (!txn.ok()) {
        failed->store(true);
        return;
      }
      bool busy = false;
      for (const auto& [page, fill] : scripted.writes) {
        std::fill(bytes.begin(), bytes.end(), fill);
        const Status status = db->WritePage(*txn, page, bytes);
        if (status.IsBusy()) {
          busy = true;
          break;
        }
        if (!status.ok()) {
          failed->store(true);
          return;
        }
      }
      if (busy || scripted.abort) {
        if (!db->Abort(*txn).ok()) {
          failed->store(true);
          return;
        }
        if (busy) {
          std::this_thread::yield();
          continue;  // Replay the scripted transaction.
        }
        break;  // Scripted abort: move on.
      }
      const Status status = db->Commit(*txn);
      if (status.IsBusy()) {
        if (!db->Abort(*txn).ok()) {
          failed->store(true);
          return;
        }
        std::this_thread::yield();
        continue;
      }
      if (!status.ok()) {
        failed->store(true);
        return;
      }
      break;
    }
  }
}

class MtSoakTest : public ::testing::TestWithParam<MtCase> {};

// The tentpole end-to-end property: N concurrent writers with randomized
// aborts leave the database in EXACTLY the state a serial execution of the
// same scripts leaves it in — and that state survives a crash.
TEST_P(MtSoakTest, ConcurrentWritersMatchSerialEndState) {
  const auto scripts = DrawScripts(GetParam().force * 2 + GetParam().rda + 7);

  auto concurrent_db =
      Database::Open(MakeOptions(GetParam().force, GetParam().rda));
  ASSERT_TRUE(concurrent_db.ok());
  std::atomic<bool> failed{false};
  {
    std::vector<std::thread> workers;
    for (uint32_t w = 0; w < kThreads; ++w) {
      workers.emplace_back(RunScript, concurrent_db->get(), scripts[w],
                           &failed);
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  }
  ASSERT_FALSE(failed.load());

  auto serial_db =
      Database::Open(MakeOptions(GetParam().force, GetParam().rda));
  ASSERT_TRUE(serial_db.ok());
  for (uint32_t w = 0; w < kThreads; ++w) {
    RunScript(serial_db->get(), scripts[w], &failed);
  }
  ASSERT_FALSE(failed.load());

  // Phase 1: logical equivalence, read through the engine (in NOFORCE
  // configurations committed content may still live in the buffer pool).
  {
    auto concurrent_reader = (*concurrent_db)->Begin();
    auto serial_reader = (*serial_db)->Begin();
    ASSERT_TRUE(concurrent_reader.ok() && serial_reader.ok());
    std::vector<uint8_t> concurrent_bytes;
    std::vector<uint8_t> serial_bytes;
    for (PageId page = 0; page < kPages; ++page) {
      ASSERT_TRUE((*concurrent_db)
                      ->ReadPage(*concurrent_reader, page, &concurrent_bytes)
                      .ok());
      ASSERT_TRUE(
          (*serial_db)->ReadPage(*serial_reader, page, &serial_bytes).ok());
      ASSERT_EQ(concurrent_bytes, serial_bytes)
          << "after concurrent run, page " << page;
    }
    ASSERT_TRUE((*concurrent_db)->Commit(*concurrent_reader).ok());
    ASSERT_TRUE((*serial_db)->Commit(*serial_reader).ok());
    auto parity_ok = (*concurrent_db)->VerifyAllParity();
    ASSERT_TRUE(parity_ok.ok());
    ASSERT_TRUE(*parity_ok) << "after concurrent run";
  }

  // Phase 2: the committed end state must survive a crash — of both
  // engines, so the durable states are directly comparable.
  (*concurrent_db)->Crash();
  ASSERT_TRUE((*concurrent_db)->Recover().ok());
  (*serial_db)->Crash();
  ASSERT_TRUE((*serial_db)->Recover().ok());
  for (PageId page = 0; page < kPages; ++page) {
    auto concurrent_payload = (*concurrent_db)->RawReadPage(page);
    auto serial_payload = (*serial_db)->RawReadPage(page);
    ASSERT_TRUE(concurrent_payload.ok() && serial_payload.ok());
    // Compare the user data region only: the metadata prefix (stamping txn
    // id, page LSN) legitimately depends on scheduling — Busy-triggered
    // retries consume txn ids and LSNs the serial replay never draws.
    const std::vector<uint8_t> concurrent_data(
        concurrent_payload->begin() + kDataRegionOffset,
        concurrent_payload->end());
    const std::vector<uint8_t> serial_data(
        serial_payload->begin() + kDataRegionOffset, serial_payload->end());
    ASSERT_EQ(concurrent_data, serial_data)
        << "after crash+recover, page " << page;
  }
  auto parity_ok = (*concurrent_db)->VerifyAllParity();
  ASSERT_TRUE(parity_ok.ok());
  ASSERT_TRUE(*parity_ok) << "after crash+recover";
}

INSTANTIATE_TEST_SUITE_P(Sweep, MtSoakTest,
                         ::testing::Values(MtCase{true, true},
                                           MtCase{true, false},
                                           MtCase{false, true},
                                           MtCase{false, false}),
                         CaseName);

// Async-vs-sync end-state equivalence (DESIGN.md section 16): the same
// scripts, run against a synchronous (io.width=0) and an asynchronous
// (io.width=2) database, must leave identical committed user data, clean
// parity, and a crash-surviving durable state — at 1 thread (deterministic
// trace) and at kThreads (every interleaving must hold).
TEST_P(MtSoakTest, AsyncEngineMatchesSyncEndState) {
  for (const uint32_t threads : {1u, kThreads}) {
    const auto scripts =
        DrawScripts(GetParam().force * 4 + GetParam().rda * 2 + threads + 31);

    auto run = [&](uint32_t io_width) {
      DatabaseOptions options =
          MakeOptions(GetParam().force, GetParam().rda);
      options.io.width = io_width;
      options.io.queue_watermark = 8;  // Small: drains race the workload.
      auto db = Database::Open(options);
      EXPECT_TRUE(db.ok());
      std::atomic<bool> failed{false};
      if (threads == 1) {
        for (uint32_t w = 0; w < kThreads; ++w) {
          RunScript(db->get(), scripts[w], &failed);
        }
      } else {
        std::vector<std::thread> workers;
        for (uint32_t w = 0; w < threads; ++w) {
          workers.emplace_back(RunScript, db->get(), scripts[w], &failed);
        }
        for (std::thread& worker : workers) {
          worker.join();
        }
      }
      EXPECT_FALSE(failed.load());
      return std::move(db).value();
    };

    auto sync_db = run(0);
    auto async_db = run(2);

    // Phase 1: logical equivalence through the engine (NOFORCE committed
    // content may still live in the buffer pool of either database).
    {
      auto sync_reader = sync_db->Begin();
      auto async_reader = async_db->Begin();
      ASSERT_TRUE(sync_reader.ok() && async_reader.ok());
      std::vector<uint8_t> sync_bytes;
      std::vector<uint8_t> async_bytes;
      for (PageId page = 0; page < kPages; ++page) {
        ASSERT_TRUE(sync_db->ReadPage(*sync_reader, page, &sync_bytes).ok());
        ASSERT_TRUE(
            async_db->ReadPage(*async_reader, page, &async_bytes).ok());
        ASSERT_EQ(sync_bytes, async_bytes)
            << "before crash, " << threads << " thread(s), page " << page;
      }
      ASSERT_TRUE(sync_db->Commit(*sync_reader).ok());
      ASSERT_TRUE(async_db->Commit(*async_reader).ok());
      auto parity_ok = async_db->VerifyAllParity();
      ASSERT_TRUE(parity_ok.ok());
      ASSERT_TRUE(*parity_ok) << "before crash";
    }

    // Phase 2: durable equivalence. Crash() drains the async journal
    // before volatile teardown, so both arrays hold their full committed
    // state; recovery must then converge them to identical user bytes.
    sync_db->Crash();
    ASSERT_TRUE(sync_db->Recover().ok());
    async_db->Crash();
    ASSERT_TRUE(async_db->Recover().ok());
    for (PageId page = 0; page < kPages; ++page) {
      auto sync_payload = sync_db->RawReadPage(page);
      auto async_payload = async_db->RawReadPage(page);
      ASSERT_TRUE(sync_payload.ok() && async_payload.ok());
      // User region only: metadata stamps (txn id, page LSN) may differ
      // across interleavings, exactly as in the concurrent-vs-serial
      // comparison above.
      const std::vector<uint8_t> sync_data(
          sync_payload->begin() + kDataRegionOffset, sync_payload->end());
      const std::vector<uint8_t> async_data(
          async_payload->begin() + kDataRegionOffset, async_payload->end());
      ASSERT_EQ(sync_data, async_data)
          << "after crash+recover, " << threads << " thread(s), page "
          << page;
    }
    auto parity_ok = async_db->VerifyAllParity();
    ASSERT_TRUE(parity_ok.ok());
    ASSERT_TRUE(*parity_ok) << "after crash+recover";
  }
}

// Scripted transient faults under the built-in concurrent workload: every
// transaction must still commit (retries absorb the faults), parity must
// verify, and — the retry-reclassification regression — the LOGICAL
// transfer counters must be identical to a fault-free run of the same
// deterministic workload, with the extra attempts showing up only in
// io_retries. Before the fix, each retried read double-counted as another
// logical page read.
TEST(MtSoakFaultTest, TransientFaultsRetrySafelyAndCountOnlyAsRetries) {
  ConcurrentWorkload workload;
  workload.threads = 1;  // Single worker: the access trace is deterministic.
  workload.txns_per_thread = 60;
  workload.ops_per_txn = 3;
  workload.pages = kPages;
  workload.seed = 42;

  auto run = [&](bool with_faults, IoCounters* counters) {
    DatabaseOptions options = MakeOptions(/*force=*/true, /*rda=*/true);
    if (with_faults) {
      options.fault.enabled = true;
      options.fault.seed = 99;
      options.fault.transient_read_p = 0.02;
      options.fault.transient_write_p = 0.02;
      options.io.max_read_retries = 4;
      options.io.max_write_retries = 4;
    }
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    auto result = (*db)->txn_manager()->RunConcurrent(workload);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->committed, workload.txns_per_thread);
    auto parity_ok = (*db)->VerifyAllParity();
    ASSERT_TRUE(parity_ok.ok());
    EXPECT_TRUE(*parity_ok);
    *counters = (*db)->array()->counters();
  };

  IoCounters clean;
  IoCounters faulted;
  run(false, &clean);
  run(true, &faulted);

  EXPECT_EQ(clean.io_retries, 0u);
  EXPECT_GT(faulted.io_retries, 0u);  // The schedule did inject faults.
  // Retried accesses are ONE logical transfer plus N retries, so the
  // logical counters match the fault-free trace exactly.
  EXPECT_EQ(faulted.page_reads, clean.page_reads);
  EXPECT_EQ(faulted.page_writes, clean.page_writes);
}

// The same retry-reclassification invariant with the async engine in the
// path: a coalesced journal entry that needs retries during its drain is
// still ONE logical transfer — the extra attempts must land in io_retries,
// never in page_writes. We pin the queue watermark above the workload's
// total write count so every drain happens at the explicit FlushIo below,
// making the physical write order (and thus the fault draws) deterministic.
TEST(MtSoakFaultTest, AsyncCoalescedRetriesCountOnlyAsRetries) {
  ConcurrentWorkload workload;
  workload.threads = 1;  // Single worker: the access trace is deterministic.
  workload.txns_per_thread = 60;
  workload.ops_per_txn = 3;
  workload.pages = kPages;
  workload.seed = 42;

  struct Observed {
    IoCounters counters;
    io::IoEngine::StatsSnapshot engine;
  };
  auto run = [&](bool with_faults, Observed* out) {
    DatabaseOptions options = MakeOptions(/*force=*/true, /*rda=*/true);
    options.io.width = 2;
    options.io.queue_watermark = 1u << 20;  // Drain only at FlushIo.
    if (with_faults) {
      options.fault.enabled = true;
      options.fault.seed = 99;
      options.fault.transient_read_p = 0.02;
      options.fault.transient_write_p = 0.02;
      options.io.max_read_retries = 4;
      options.io.max_write_retries = 4;
    }
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    auto result = (*db)->txn_manager()->RunConcurrent(workload);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->committed, workload.txns_per_thread);
    ASSERT_TRUE((*db)->array()->FlushIo().ok());
    auto parity_ok = (*db)->VerifyAllParity();
    ASSERT_TRUE(parity_ok.ok());
    EXPECT_TRUE(*parity_ok);
    out->counters = (*db)->array()->counters();
    out->engine = (*db)->array()->io_engine()->stats();
  };

  Observed clean;
  Observed faulted;
  run(false, &clean);
  run(true, &faulted);

  EXPECT_EQ(clean.counters.io_retries, 0u);
  EXPECT_GT(faulted.counters.io_retries, 0u);
  // Identical logical submission streams: faults must not change what the
  // engine saw or how it coalesced, only how many physical attempts the
  // drains needed.
  EXPECT_EQ(faulted.engine.submitted_writes, clean.engine.submitted_writes);
  EXPECT_EQ(faulted.engine.coalesced_writes, clean.engine.coalesced_writes);
  EXPECT_EQ(faulted.engine.physical_writes, clean.engine.physical_writes);
  // And the logical transfer counters match the fault-free trace exactly:
  // each retried drain was reclassified down to one logical write.
  EXPECT_EQ(faulted.counters.page_reads, clean.counters.page_reads);
  EXPECT_EQ(faulted.counters.page_writes, clean.counters.page_writes);
}

// A crash landing inside the group-commit latency window: the leader has
// PUBLISHED the batch to the stable streams and is sleeping out the device
// delay when the crash hits. The commit record must survive — publication,
// not the latency accounting, is what recovery reads.
TEST(MtSoakGroupCommitTest, CrashInsideLatencyWindowKeepsPublishedCommit) {
  LogManager::Options options;
  options.group_commit_window_us = 5000;
  options.flush_delay_us = 200000;
  LogManager log(options);

  LogRecord commit;
  commit.type = LogRecordType::kCommit;
  commit.txn = 7;
  auto lsn = log.Append(commit);
  ASSERT_TRUE(lsn.ok());

  std::thread committer([&log, &lsn] {
    ASSERT_TRUE(log.CommitFlush(*lsn).ok());
  });
  // Land well inside [window, window + delay): the batch is published, the
  // leader is still sleeping.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  log.LoseVolatileState();  // The crash.
  committer.join();

  std::vector<LogRecord> records;
  ASSERT_TRUE(log.Scan(0, &records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, LogRecordType::kCommit);
  EXPECT_EQ(records[0].txn, 7u);
}

// Truncation racing a group commit: the leader has published its batch and
// is sleeping out the device delay when Truncate targets an LSN inside that
// batch. Truncate must wait for the commit-durable watermark — before the
// fix it erased records whose CommitFlush callers were still blocked.
TEST(MtSoakGroupCommitTest, TruncateWaitsOutInFlightCommitBatch) {
  LogManager::Options options;
  options.flush_delay_us = 120000;
  LogManager log(options);

  // An old record, already stable: the pre-batch truncation boundary.
  LogRecord old_commit;
  old_commit.type = LogRecordType::kCommit;
  old_commit.txn = 1;
  ASSERT_TRUE(log.Append(old_commit).ok());
  ASSERT_TRUE(log.Flush().ok());

  LogRecord commit;
  commit.type = LogRecordType::kCommit;
  commit.txn = 2;
  auto lsn = log.Append(commit);
  ASSERT_TRUE(lsn.ok());

  std::thread committer([&log, &lsn] {
    ASSERT_TRUE(log.CommitFlush(*lsn).ok());
  });
  // Land inside the publish-before-sleep window: the batch is stable, the
  // leader is sleeping, commit durability has not advanced yet.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (log.flushed_lsn() <= *lsn &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const Lsn batch_end = log.flushed_lsn();
  ASSERT_GT(batch_end, *lsn);  // The leader did publish txn 2's record.

  // Truncate the whole stable log, including the in-flight batch. The call
  // must block until the leader's latency elapses: when it returns, the
  // watermark covers everything it erased — deterministically, not by luck.
  ASSERT_TRUE(log.Truncate(batch_end).ok());
  EXPECT_GE(log.commit_durable_lsn(), batch_end)
      << "Truncate returned while the batch it erased was not yet "
         "commit-durable";
  committer.join();

  EXPECT_EQ(log.base_lsn(), batch_end);
  std::vector<LogRecord> records;
  ASSERT_TRUE(log.Scan(0, &records).ok());
  EXPECT_TRUE(records.empty());  // Everything up to the boundary is gone.
}

// Concurrent truncators and committers must never lose an unacknowledged
// commit record: every Truncate boundary observed by a committer after its
// CommitFlush returned lies at or below the durability watermark.
TEST(MtSoakGroupCommitTest, ConcurrentTruncateAndCommitKeepWatermarkOrder) {
  LogManager::Options options;
  options.flush_delay_us = 2000;
  LogManager log(options);

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::thread truncator([&] {
    while (!stop.load(std::memory_order_acquire)) {
      // Truncate to the current flushed tail — a legal boundary. With a
      // batch in flight this waits; it must never erase ahead of the
      // watermark.
      const Lsn target = log.flushed_lsn();
      const Status status = log.Truncate(target);
      if (!status.ok() && !status.IsInvalidArgument()) {
        failed.store(true);
        return;
      }
      if (status.ok() && log.commit_durable_lsn() < target) {
        failed.store(true);
        return;
      }
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < 40; ++i) {
    LogRecord commit;
    commit.type = LogRecordType::kCommit;
    commit.txn = static_cast<TxnId>(i + 1);
    auto lsn = log.Append(commit);
    ASSERT_TRUE(lsn.ok());
    ASSERT_TRUE(log.CommitFlush(*lsn).ok());
  }
  stop.store(true, std::memory_order_release);
  truncator.join();
  ASSERT_FALSE(failed.load());
}

// Group commit must actually batch: with a real flush latency and four
// closed-loop committers, fewer flushes than commits.
TEST(MtSoakGroupCommitTest, ConcurrentCommittersShareFlushes) {
  DatabaseOptions options = MakeOptions(/*force=*/true, /*rda=*/true);
  options.log.flush_delay_us = 1000;
  options.log.group_commit_window_us = 400;
  options.obs.enable_metrics = true;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());

  ConcurrentWorkload workload;
  workload.threads = 4;
  workload.txns_per_thread = 15;
  workload.ops_per_txn = 2;
  workload.pages = kPages;
  workload.seed = 3;
  auto result = (*db)->txn_manager()->RunConcurrent(workload);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->committed, 60u);

  const obs::MetricsSnapshot metrics = (*db)->SnapshotMetrics();
  const uint64_t batches = metrics.CounterValue("wal.group_commit_batches");
  EXPECT_GT(batches, 0u);
  EXPECT_LT(batches, result->committed);  // At least one multi-commit batch.

  auto parity_ok = (*db)->VerifyAllParity();
  ASSERT_TRUE(parity_ok.ok());
  EXPECT_TRUE(*parity_ok);
}

// Striped media rebuild under TSan: a concurrent workload produces the
// database, then every disk is failed and rebuilt with a 4-wide worker
// pool. The rebuild workers share the parity manager, scratch pool, dirty
// set and obs hub — exactly the state the banded partition claims needs no
// coordination — so a data race here is a sharding-rule violation. A pooled
// crash recovery over the same state rides along for the REDO/undo shards.
TEST(MtSoakRebuildTest, ConcurrentRebuildAndRecoveryAreRaceFree) {
  DatabaseOptions options = MakeOptions(/*force=*/false, /*rda=*/true);
  options.recovery.recovery_threads = 4;
  options.obs.enable_metrics = true;
  options.obs.enable_trace = true;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());

  ConcurrentWorkload workload;
  workload.threads = 4;
  workload.txns_per_thread = 20;
  workload.ops_per_txn = 3;
  workload.pages = kPages;
  workload.seed = 11;
  auto result = (*db)->txn_manager()->RunConcurrent(workload);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  for (DiskId disk = 0; disk < (*db)->array()->num_disks(); ++disk) {
    ASSERT_TRUE((*db)->FailDisk(disk).ok());
    auto report = (*db)->RebuildDisk(disk);
    ASSERT_TRUE(report.ok()) << "disk " << disk << ": "
                             << report.status().ToString();
  }
  auto parity_ok = (*db)->VerifyAllParity();
  ASSERT_TRUE(parity_ok.ok());
  EXPECT_TRUE(*parity_ok);

  (*db)->Crash();
  ASSERT_TRUE((*db)->Recover().ok());
  auto scrub = (*db)->Scrub();
  ASSERT_TRUE(scrub.ok());
  EXPECT_TRUE(scrub->repaired.empty());
}

// Concurrent span emission: four threads pour ScopedSpans into one shared
// collector while a reader thread snapshots the rings the whole time. The
// seqlock protocol must keep this data-race free (this file runs under the
// TSan CI job) and no record may be torn — a snapshot either sees a span
// whole or not at all.
TEST(MtSoakSpanTest, ConcurrentEmittersAndSnapshotsDontTear) {
  constexpr int kSpansPerThread = 2000;
  obs::SpanCollector collector(128);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> snapshots_taken{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const auto& thread : collector.SnapshotAll()) {
        for (const obs::SpanRecord& span : thread.spans) {
          // A torn slot would show a kind no writer ever stores.
          ASSERT_EQ(span.kind, obs::SpanKind::kParityPropagate);
          ASSERT_EQ(span.detail, static_cast<int64_t>(thread.thread_index));
        }
      }
      snapshots_taken.fetch_add(1, std::memory_order_relaxed);
    }
  });

  {
    std::vector<std::thread> emitters;
    for (int w = 0; w < 4; ++w) {
      emitters.emplace_back([&collector] {
        // Every thread writes its ring index as the detail, so the reader
        // can verify attribution. Ring() resolves the index on first use.
        const uint32_t index = collector.Ring()->thread_index();
        for (int i = 0; i < kSpansPerThread; ++i) {
          obs::ScopedSpan span(&collector, obs::SpanKind::kParityPropagate,
                               nullptr, static_cast<int64_t>(index));
        }
      });
    }
    for (std::thread& emitter : emitters) {
      emitter.join();
    }
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_GT(snapshots_taken.load(), 0u);
  EXPECT_EQ(collector.TotalRecorded(), 4u * kSpansPerThread);
  // Rings hold 128 entries each; the rest are counted, not silent.
  EXPECT_EQ(collector.TotalDropped(), 4u * (kSpansPerThread - 128));
  const auto threads = collector.SnapshotAll();
  ASSERT_EQ(threads.size(), 4u);
  for (const auto& thread : threads) {
    EXPECT_EQ(thread.recorded, static_cast<uint64_t>(kSpansPerThread));
    EXPECT_EQ(thread.spans.size(), 128u);  // Quiesced: no skipped slots.
  }
}

}  // namespace
}  // namespace rda
