#include <gtest/gtest.h>

#include <map>

#include "sim/simulator.h"

namespace rda::sim {
namespace {

WorkloadOptions BaseWorkload() {
  WorkloadOptions options;
  options.num_pages = 256;
  options.pages_per_txn = 6;
  options.communality = 0.5;
  options.update_txn_fraction = 0.6;
  options.update_probability = 0.7;
  options.hot_window = 32;
  options.seed = 3;
  return options;
}

TEST(WorkloadTest, DeterministicForSeed) {
  WorkloadGenerator a(BaseWorkload());
  WorkloadGenerator b(BaseWorkload());
  for (int i = 0; i < 20; ++i) {
    const TxnScript sa = a.Next();
    const TxnScript sb = b.Next();
    ASSERT_EQ(sa.ops.size(), sb.ops.size());
    for (size_t j = 0; j < sa.ops.size(); ++j) {
      EXPECT_EQ(sa.ops[j].page, sb.ops[j].page);
      EXPECT_EQ(sa.ops[j].is_update, sb.ops[j].is_update);
    }
  }
}

TEST(WorkloadTest, UpdateFractionApproximatelyRespected) {
  WorkloadOptions options = BaseWorkload();
  options.update_txn_fraction = 0.3;
  WorkloadGenerator gen(options);
  int updates = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    updates += gen.Next().is_update_txn;
  }
  EXPECT_NEAR(static_cast<double>(updates) / n, 0.3, 0.03);
}

TEST(WorkloadTest, RetrievalTxnsNeverWrite) {
  WorkloadOptions options = BaseWorkload();
  WorkloadGenerator gen(options);
  for (int i = 0; i < 200; ++i) {
    const TxnScript script = gen.Next();
    if (!script.is_update_txn) {
      for (const TxnOp& op : script.ops) {
        EXPECT_FALSE(op.is_update);
      }
      EXPECT_FALSE(script.client_aborts);
    }
  }
}

TEST(WorkloadTest, CommunalityConcentratesReferences) {
  WorkloadOptions cold = BaseWorkload();
  cold.communality = 0.0;
  WorkloadOptions hot = BaseWorkload();
  hot.communality = 0.95;
  auto distinct = [](WorkloadGenerator& gen) {
    std::map<PageId, int> seen;
    for (int i = 0; i < 200; ++i) {
      for (const TxnOp& op : gen.Next().ops) {
        ++seen[op.page];
      }
    }
    return seen.size();
  };
  WorkloadGenerator cold_gen(cold);
  WorkloadGenerator hot_gen(hot);
  EXPECT_GT(distinct(cold_gen), 2 * distinct(hot_gen));
}

TEST(WorkloadTest, PagesWithinRange) {
  WorkloadOptions options = BaseWorkload();
  options.num_pages = 17;
  WorkloadGenerator gen(options);
  for (int i = 0; i < 100; ++i) {
    for (const TxnOp& op : gen.Next().ops) {
      EXPECT_LT(op.page, 17u);
    }
  }
}

SimOptions SmallSim(bool rda, double c = 0.5) {
  SimOptions options;
  options.db.array.data_pages_per_group = 4;
  options.db.array.parity_copies = 2;
  options.db.array.min_data_pages = 128;
  options.db.array.page_size = 128;
  options.db.buffer.capacity = 24;
  options.db.txn.force = true;
  options.db.txn.rda_undo = rda;
  options.workload.num_pages = 128;
  options.workload.pages_per_txn = 5;
  options.workload.communality = c;
  options.workload.update_txn_fraction = 0.7;
  options.workload.update_probability = 0.8;
  options.workload.abort_probability = 0.05;
  options.workload.hot_window = 20;
  options.workload.seed = 5;
  options.num_transactions = 120;
  options.concurrency = 3;
  options.seed = 5;
  return options;
}

TEST(SimulatorTest, RunsToCompletion) {
  Simulator sim(SmallSim(true));
  auto result = sim.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->committed + result->client_aborts +
                result->deadlock_aborts,
            120u);
  EXPECT_GT(result->committed, 50u);
  EXPECT_GT(result->total_transfers, 0u);
  EXPECT_GT(result->transfers_per_commit, 0.0);
}

TEST(SimulatorTest, RunsToCompletionUnderFaultSchedule) {
  SimOptions options = SmallSim(true);
  options.db.fault.enabled = true;
  options.db.fault.seed = 17;
  options.db.fault.transient_read_p = 0.01;
  options.db.fault.transient_write_p = 0.01;
  options.db.fault.latent_sector_p = 0.002;
  options.db.fault.bit_flip_p = 0.002;
  options.db.fault.torn_write_p = 0.002;
  options.db.fault.max_random_faults = 20;  // Per disk.
  Simulator sim(options);
  auto result = sim.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->committed, 50u);
  EXPECT_GT(result->faults.total(), 0u);  // The schedule actually fired.
  // Retries and repairs absorbed the schedule; the run ends healthy.
  EXPECT_GE(result->io.io_retries,
            result->faults.transient_reads + result->faults.transient_writes);
  EXPECT_EQ(sim.db()->array()->NumFailedDisks(), 0u);
  ASSERT_TRUE(sim.db()->Checkpoint().ok());
  auto scrub = sim.db()->Scrub();  // Heal whatever the workload never read.
  ASSERT_TRUE(scrub.ok()) << scrub.status().ToString();
  auto ok = sim.db()->VerifyAllParity();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST(SimulatorTest, ParityConsistentAfterRun) {
  Simulator sim(SmallSim(true));
  ASSERT_TRUE(sim.Run().ok());
  auto ok = sim.db()->VerifyAllParity();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST(SimulatorTest, RdaReducesTransfersPerCommit) {
  Simulator baseline(SmallSim(false));
  Simulator rda(SmallSim(true));
  auto base_result = baseline.Run();
  auto rda_result = rda.Run();
  ASSERT_TRUE(base_result.ok());
  ASSERT_TRUE(rda_result.ok());
  EXPECT_LT(rda_result->transfers_per_commit,
            base_result->transfers_per_commit);
  EXPECT_GT(rda_result->txn.before_images_avoided, 0u);
}

TEST(SimulatorTest, HigherCommunalityFewerTransfers) {
  Simulator cold(SmallSim(true, 0.1));
  Simulator hot(SmallSim(true, 0.9));
  auto cold_result = cold.Run();
  auto hot_result = hot.Run();
  ASSERT_TRUE(cold_result.ok());
  ASSERT_TRUE(hot_result.ok());
  EXPECT_LT(hot_result->transfers_per_commit,
            cold_result->transfers_per_commit);
}

TEST(SimulatorTest, AbortsReportedSeparately) {
  SimOptions options = SmallSim(true);
  options.workload.abort_probability = 0.5;
  Simulator sim(options);
  auto result = sim.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->client_aborts, 10u);
}

TEST(SimulatorTest, RecordModeRuns) {
  SimOptions options = SmallSim(true);
  options.db.txn.logging_mode = LoggingMode::kRecordLogging;
  options.db.txn.record_size = 16;
  options.db.txn.force = false;
  options.db.checkpoint_interval_updates = 32;
  options.workload.mode = LoggingMode::kRecordLogging;
  options.workload.records_per_page = 6;
  Simulator sim(options);
  auto result = sim.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->committed, 50u);
  auto ok = sim.db()->VerifyAllParity();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST(SimulatorTest, SurvivesCrashMidWorkloadAndContinues) {
  SimOptions options = SmallSim(true);
  Simulator sim(options);
  ASSERT_TRUE(sim.Run().ok());
  sim.db()->Crash();
  ASSERT_TRUE(sim.db()->Recover().ok());
  auto ok = sim.db()->VerifyAllParity();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
  // The database is usable again.
  auto txn = sim.db()->Begin();
  ASSERT_TRUE(txn.ok());
  std::vector<uint8_t> bytes(sim.db()->user_page_size(), 0x66);
  ASSERT_TRUE(sim.db()->WritePage(*txn, 0, bytes).ok());
  ASSERT_TRUE(sim.db()->Commit(*txn).ok());
}


TEST(SimulatorTest, DeterministicForSameSeed) {
  Simulator a(SmallSim(true));
  Simulator b(SmallSim(true));
  auto ra = a.Run();
  auto rb = b.Run();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->committed, rb->committed);
  EXPECT_EQ(ra->client_aborts, rb->client_aborts);
  EXPECT_EQ(ra->total_transfers, rb->total_transfers);
}

TEST(SimulatorTest, ConcurrencyOneHasNoConflicts) {
  SimOptions options = SmallSim(true);
  options.concurrency = 1;
  Simulator sim(options);
  auto result = sim.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->deadlock_aborts, 0u);
}

TEST(SimulatorTest, StatsPlumbedThrough) {
  Simulator sim(SmallSim(true));
  auto result = sim.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->buffer.hits + result->buffer.misses, 0u);
  EXPECT_GT(result->txn.begun, 0u);
  EXPECT_EQ(result->txn.committed, result->committed);
  EXPECT_GT(result->parity.unlogged_first + result->parity.plain, 0u);
}

TEST(SimulatorTest, ParityStripingLayoutRuns) {
  SimOptions options = SmallSim(true);
  options.db.array.layout_kind = LayoutKind::kParityStriping;
  Simulator sim(options);
  auto result = sim.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->committed, 50u);
  auto ok = sim.db()->VerifyAllParity();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST(SimulatorTest, CheckpointingConfigRuns) {
  SimOptions options = SmallSim(true);
  options.db.txn.force = false;
  options.db.checkpoint_interval_updates = 25;
  Simulator sim(options);
  auto result = sim.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_GE(sim.db()->checkpointer()->checkpoints_taken(), 1u);
}

TEST(WorkloadTest, AbortFlagOnlyForUpdateTxns) {
  WorkloadOptions options = BaseWorkload();
  options.abort_probability = 1.0;
  WorkloadGenerator gen(options);
  for (int i = 0; i < 100; ++i) {
    const TxnScript script = gen.Next();
    EXPECT_EQ(script.client_aborts, script.is_update_txn);
  }
}

}  // namespace
}  // namespace rda::sim
