#include <gtest/gtest.h>

#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace rda {
namespace {

LogRecord SampleRecord() {
  LogRecord record;
  record.type = LogRecordType::kBeforeImage;
  record.txn = 42;
  record.page = 7;
  record.slot = 3;
  record.record_granular = true;
  record.page_header.timestamp = 99;
  record.page_header.parity_state = ParityState::kWorking;
  record.page_header.dirty_page = 7;
  record.before = {1, 2, 3, 4, 5};
  record.after = {9, 8};
  record.chain_head = 11;
  return record;
}

TEST(LogRecordTest, EncodeDecodeRoundTrip) {
  const LogRecord record = SampleRecord();
  const std::vector<uint8_t> bytes = EncodeLogRecord(record);
  auto decoded = DecodeLogRecord(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, record);
}

TEST(LogRecordTest, AllTypesRoundTrip) {
  for (const LogRecordType type :
       {LogRecordType::kBot, LogRecordType::kCommit,
        LogRecordType::kAbortComplete, LogRecordType::kBeforeImage,
        LogRecordType::kAfterImage, LogRecordType::kChainHead,
        LogRecordType::kCheckpoint}) {
    LogRecord record;
    record.type = type;
    record.txn = 5;
    record.active_txns = {1, 2, 3};
    const std::vector<uint8_t> bytes = EncodeLogRecord(record);
    auto decoded = DecodeLogRecord(bytes.data(), bytes.size());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->type, type);
    EXPECT_EQ(decoded->active_txns, record.active_txns);
  }
}

TEST(LogRecordTest, TruncatedInputRejected) {
  const std::vector<uint8_t> bytes = EncodeLogRecord(SampleRecord());
  for (const size_t cut : {size_t{0}, size_t{1}, size_t{10},
                           bytes.size() - 1}) {
    auto decoded = DecodeLogRecord(bytes.data(), cut);
    EXPECT_TRUE(decoded.status().IsCorruption()) << "cut=" << cut;
  }
}

TEST(LogRecordTest, UnknownTypeRejected) {
  std::vector<uint8_t> bytes = EncodeLogRecord(SampleRecord());
  bytes[0] = 0xEE;
  EXPECT_TRUE(DecodeLogRecord(bytes.data(), bytes.size())
                  .status()
                  .IsCorruption());
}

TEST(LogRecordTest, TrailingGarbageRejected) {
  std::vector<uint8_t> bytes = EncodeLogRecord(SampleRecord());
  bytes.push_back(0x00);
  EXPECT_TRUE(DecodeLogRecord(bytes.data(), bytes.size())
                  .status()
                  .IsCorruption());
}

TEST(LogManagerTest, AppendAssignsMonotoneLsns) {
  LogManager log(LogManager::Options{});
  auto a = log.Append(SampleRecord());
  auto b = log.Append(SampleRecord());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(*a, *b);
}

TEST(LogManagerTest, ScanReturnsFlushedRecordsInOrder) {
  LogManager log(LogManager::Options{});
  LogRecord r1 = SampleRecord();
  r1.txn = 1;
  LogRecord r2 = SampleRecord();
  r2.txn = 2;
  ASSERT_TRUE(log.Append(r1).ok());
  ASSERT_TRUE(log.Append(r2).ok());
  ASSERT_TRUE(log.Flush().ok());
  std::vector<LogRecord> records;
  ASSERT_TRUE(log.Scan(0, &records).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].txn, 1u);
  EXPECT_EQ(records[1].txn, 2u);
  EXPECT_EQ(records[0].lsn, 0u);
}

TEST(LogManagerTest, ScanFromOffsetSkipsPrefix) {
  LogManager log(LogManager::Options{});
  ASSERT_TRUE(log.Append(SampleRecord()).ok());
  auto second = log.Append(SampleRecord());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(log.Flush().ok());
  std::vector<LogRecord> records;
  ASSERT_TRUE(log.Scan(*second, &records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].lsn, *second);
}

TEST(LogManagerTest, CrashDropsUnflushedTail) {
  LogManager log(LogManager::Options{});
  ASSERT_TRUE(log.Append(SampleRecord()).ok());
  ASSERT_TRUE(log.Flush().ok());
  ASSERT_TRUE(log.Append(SampleRecord()).ok());  // Never flushed.
  log.LoseVolatileState();
  std::vector<LogRecord> records;
  ASSERT_TRUE(log.Scan(0, &records).ok());
  EXPECT_EQ(records.size(), 1u);
  // New appends continue at the stable boundary.
  auto next = log.Append(SampleRecord());
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, log.stable_bytes());
}

TEST(LogManagerTest, DuplexSurvivesSingleCopyCorruption) {
  LogManager::Options options;
  options.copies = 2;
  LogManager log(options);
  ASSERT_TRUE(log.Append(SampleRecord()).ok());
  ASSERT_TRUE(log.Flush().ok());
  log.CorruptStableByteForTest(0, 12);  // Damage copy 0's payload.
  std::vector<LogRecord> records;
  ASSERT_TRUE(log.Scan(0, &records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].txn, 42u);
}

TEST(LogManagerTest, CorruptionOnAllCopiesSurfaces) {
  LogManager::Options options;
  options.copies = 2;
  LogManager log(options);
  ASSERT_TRUE(log.Append(SampleRecord()).ok());
  ASSERT_TRUE(log.Flush().ok());
  log.CorruptStableByteForTest(0, 12);
  log.CorruptStableByteForTest(1, 12);
  std::vector<LogRecord> records;
  EXPECT_TRUE(log.Scan(0, &records).IsCorruption());
}

TEST(LogManagerTest, FlushCountsPagesTimesCopies) {
  LogManager::Options options;
  options.page_size = 64;
  options.copies = 2;
  LogManager log(options);
  LogRecord small;
  small.type = LogRecordType::kBot;
  small.txn = 1;
  ASSERT_TRUE(log.Append(small).ok());
  ASSERT_TRUE(log.Flush().ok());
  // One (partial) page, two copies.
  EXPECT_EQ(log.counters().page_writes, 2u);

  LogRecord big;
  big.type = LogRecordType::kBeforeImage;
  big.txn = 1;
  big.before.assign(200, 0x5a);  // Spans several 64-byte pages.
  ASSERT_TRUE(log.Append(big).ok());
  ASSERT_TRUE(log.Flush().ok());
  EXPECT_GE(log.counters().page_writes, 2u + 2u * 3u);
}

TEST(LogManagerTest, EmptyFlushIsFree) {
  LogManager log(LogManager::Options{});
  ASSERT_TRUE(log.Flush().ok());
  EXPECT_EQ(log.counters().page_writes, 0u);
}

TEST(LogManagerTest, ManyRecordsRoundTrip) {
  LogManager log(LogManager::Options{});
  for (uint64_t i = 0; i < 500; ++i) {
    LogRecord record;
    record.type = LogRecordType::kAfterImage;
    record.txn = i;
    record.page = static_cast<PageId>(i * 3);
    record.after.assign(i % 40, static_cast<uint8_t>(i));
    ASSERT_TRUE(log.Append(std::move(record)).ok());
  }
  ASSERT_TRUE(log.Flush().ok());
  std::vector<LogRecord> records;
  ASSERT_TRUE(log.Scan(0, &records).ok());
  ASSERT_EQ(records.size(), 500u);
  for (uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(records[i].txn, i);
    EXPECT_EQ(records[i].after.size(), i % 40);
  }
}


TEST(LogManagerTest, SingleCopyConfigWorks) {
  LogManager::Options options;
  options.copies = 1;
  LogManager log(options);
  ASSERT_TRUE(log.Append(SampleRecord()).ok());
  ASSERT_TRUE(log.Flush().ok());
  std::vector<LogRecord> records;
  ASSERT_TRUE(log.Scan(0, &records).ok());
  EXPECT_EQ(records.size(), 1u);
  // With one copy, corruption is fatal.
  log.CorruptStableByteForTest(0, 12);
  EXPECT_TRUE(log.Scan(0, &records).IsCorruption());
}

TEST(LogManagerTest, TripleCopySurvivesTwoCorruptions) {
  LogManager::Options options;
  options.copies = 3;
  LogManager log(options);
  ASSERT_TRUE(log.Append(SampleRecord()).ok());
  ASSERT_TRUE(log.Flush().ok());
  log.CorruptStableByteForTest(0, 12);
  log.CorruptStableByteForTest(1, 12);
  std::vector<LogRecord> records;
  ASSERT_TRUE(log.Scan(0, &records).ok());
  EXPECT_EQ(records.size(), 1u);
}

TEST(LogRecordTest, CheckpointWithManyActiveTxns) {
  LogRecord record;
  record.type = LogRecordType::kCheckpoint;
  for (TxnId t = 1; t <= 200; ++t) {
    record.active_txns.push_back(t * 7);
  }
  const std::vector<uint8_t> bytes = EncodeLogRecord(record);
  auto decoded = DecodeLogRecord(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->active_txns.size(), 200u);
  EXPECT_EQ(decoded->active_txns[199], 200u * 7);
}

TEST(LogRecordTest, EmptyImagesRoundTrip) {
  LogRecord record;
  record.type = LogRecordType::kBeforeImage;
  record.txn = 1;
  const std::vector<uint8_t> bytes = EncodeLogRecord(record);
  auto decoded = DecodeLogRecord(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->before.empty());
  EXPECT_TRUE(decoded->after.empty());
}

TEST(LogManagerTest, InterleavedAppendFlushPreservesOrder) {
  LogManager log(LogManager::Options{});
  for (int round = 0; round < 10; ++round) {
    LogRecord r = SampleRecord();
    r.txn = static_cast<TxnId>(round * 2 + 1);
    ASSERT_TRUE(log.Append(std::move(r)).ok());
    if (round % 3 == 0) {
      ASSERT_TRUE(log.Flush().ok());
    }
    LogRecord r2 = SampleRecord();
    r2.txn = static_cast<TxnId>(round * 2 + 2);
    ASSERT_TRUE(log.Append(std::move(r2)).ok());
  }
  ASSERT_TRUE(log.Flush().ok());
  std::vector<LogRecord> records;
  ASSERT_TRUE(log.Scan(0, &records).ok());
  ASSERT_EQ(records.size(), 20u);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(records[i].txn, i + 1);
  }
}

TEST(LogManagerTest, ScanAccountsReads) {
  LogManager::Options options;
  options.page_size = 64;
  LogManager log(options);
  LogRecord big = SampleRecord();
  big.before.assign(1000, 0x1);
  ASSERT_TRUE(log.Append(std::move(big)).ok());
  ASSERT_TRUE(log.Flush().ok());
  const uint64_t before = log.counters().page_reads;
  std::vector<LogRecord> records;
  ASSERT_TRUE(log.Scan(0, &records).ok());
  EXPECT_GE(log.counters().page_reads, before + 1000 / 64);
}

// The LSN index lets a partial scan seek: scanning from the middle must
// yield exactly the suffix and charge only the pages actually read, not a
// full-log re-walk.
TEST(LogManagerTest, PartialScanSeeksAndChargesSuffixOnly) {
  LogManager::Options options;
  options.page_size = 64;
  LogManager log(options);
  std::vector<Lsn> lsns;
  for (int i = 0; i < 10; ++i) {
    LogRecord record = SampleRecord();
    record.txn = static_cast<TxnId>(i + 1);
    record.before.assign(500, static_cast<uint8_t>(i));
    auto lsn = log.Append(std::move(record));
    ASSERT_TRUE(lsn.ok());
    lsns.push_back(lsn.value());
  }
  ASSERT_TRUE(log.Flush().ok());

  // Full scan as the accounting reference.
  log.ResetCounters();
  std::vector<LogRecord> all;
  ASSERT_TRUE(log.Scan(0, &all).ok());
  ASSERT_EQ(all.size(), 10u);
  const uint64_t full_cost = log.counters().page_reads;

  // Scan from record 7: three records, and strictly cheaper than a full
  // pass (the skipped prefix spans many pages).
  log.ResetCounters();
  std::vector<LogRecord> suffix;
  ASSERT_TRUE(log.Scan(lsns[7], &suffix).ok());
  ASSERT_EQ(suffix.size(), 3u);
  EXPECT_EQ(suffix[0].lsn, lsns[7]);
  EXPECT_EQ(suffix[0].txn, 8u);
  EXPECT_EQ(suffix[2].txn, 10u);
  EXPECT_LT(log.counters().page_reads, full_cost);
  EXPECT_GT(log.counters().page_reads, 0u);

  // A `from` between boundaries starts at the next record.
  std::vector<LogRecord> from_middle;
  ASSERT_TRUE(log.Scan(lsns[7] + 1, &from_middle).ok());
  ASSERT_EQ(from_middle.size(), 2u);
  EXPECT_EQ(from_middle[0].lsn, lsns[8]);

  // Scanning past the end is empty and free.
  log.ResetCounters();
  std::vector<LogRecord> none;
  ASSERT_TRUE(log.Scan(log.flushed_lsn(), &none).ok());
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(log.counters().page_reads, 0u);
}

// --- truncation boundary semantics (archive log truncation) ---

TEST(LogManagerTest, TruncateExactlyAtRecordBoundaryKeepsSuffix) {
  LogManager log(LogManager::Options{});
  LogRecord r = SampleRecord();
  r.txn = 1;
  ASSERT_TRUE(log.Append(r).ok());
  r.txn = 2;
  auto second = log.Append(r);
  ASSERT_TRUE(second.ok());
  r.txn = 3;
  ASSERT_TRUE(log.Append(r).ok());
  ASSERT_TRUE(log.Flush().ok());

  ASSERT_TRUE(log.Truncate(*second).ok());
  EXPECT_EQ(log.base_lsn(), *second);

  // LSNs stay absolute: a scan from 0 starts at the new base, a scan from
  // the truncation point itself sees exactly the surviving records.
  std::vector<LogRecord> records;
  ASSERT_TRUE(log.Scan(0, &records).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].txn, 2u);
  EXPECT_EQ(records[0].lsn, *second);
  ASSERT_TRUE(log.Scan(*second, &records).ok());
  ASSERT_EQ(records.size(), 2u);
}

TEST(LogManagerTest, TruncateAtFlushedEndEmptiesLog) {
  LogManager log(LogManager::Options{});
  ASSERT_TRUE(log.Append(SampleRecord()).ok());
  ASSERT_TRUE(log.Append(SampleRecord()).ok());
  ASSERT_TRUE(log.Flush().ok());

  ASSERT_TRUE(log.Truncate(log.flushed_lsn()).ok());
  EXPECT_EQ(log.base_lsn(), log.flushed_lsn());
  std::vector<LogRecord> records;
  ASSERT_TRUE(log.Scan(0, &records).ok());
  EXPECT_TRUE(records.empty());

  // The log keeps working: post-truncation appends scan out normally.
  LogRecord r = SampleRecord();
  r.txn = 42;
  ASSERT_TRUE(log.Append(r).ok());
  ASSERT_TRUE(log.Flush().ok());
  ASSERT_TRUE(log.Scan(0, &records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].txn, 42u);
}

TEST(LogManagerTest, TruncateBeyondFlushedOrOffBoundaryRejected) {
  LogManager log(LogManager::Options{});
  auto first = log.Append(SampleRecord());
  ASSERT_TRUE(first.ok());
  auto second = log.Append(SampleRecord());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(log.Flush().ok());

  // Above the stable tail.
  EXPECT_TRUE(log.Truncate(log.flushed_lsn() + 1).IsInvalidArgument());
  // Inside a record frame (not a boundary).
  EXPECT_TRUE(log.Truncate(*second + 1).IsInvalidArgument());

  // Below the base after a real truncation: the prefix is gone for good.
  ASSERT_TRUE(log.Truncate(*second).ok());
  EXPECT_TRUE(log.Truncate(*first).IsInvalidArgument());
  // Re-truncating exactly at the base is a no-op, not an error.
  EXPECT_TRUE(log.Truncate(*second).ok());
}

}  // namespace
}  // namespace rda
