#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "kv/kv_store.h"

namespace rda {
namespace {

DatabaseOptions DbOptions() {
  DatabaseOptions options;
  options.array.data_pages_per_group = 4;
  options.array.parity_copies = 2;
  options.array.min_data_pages = 64;
  options.array.page_size = 256;
  options.buffer.capacity = 16;
  options.txn.logging_mode = LoggingMode::kRecordLogging;
  options.txn.record_size = 48;
  options.txn.force = false;
  options.checkpoint_interval_updates = 64;
  return options;
}

class KvStoreTest : public ::testing::Test {
 protected:
  void SetUp() override { Open(); }

  void Open(KvStore::Options kv_options = {}) {
    auto db = Database::Open(DbOptions());
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    if (kv_options.num_pages == 64) {
      kv_options.num_pages = db_->num_pages();
    }
    auto kv = KvStore::Attach(db_.get(), kv_options);
    ASSERT_TRUE(kv.ok()) << kv.status().ToString();
    kv_ = std::move(kv).value();
  }

  // One-shot committed operation helpers.
  void PutCommitted(const std::string& key, const std::string& value) {
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(kv_->Put(*txn, key, value).ok()) << key;
    ASSERT_TRUE(db_->Commit(*txn).ok());
  }

  Result<std::string> GetCommitted(const std::string& key) {
    auto txn = db_->Begin();
    EXPECT_TRUE(txn.ok());
    auto value = kv_->Get(*txn, key);
    EXPECT_TRUE(db_->Commit(*txn).ok());
    return value;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<KvStore> kv_;
};

TEST_F(KvStoreTest, PutGetRoundTrip) {
  PutCommitted("alice", "engineer");
  PutCommitted("bob", "analyst");
  auto alice = GetCommitted("alice");
  ASSERT_TRUE(alice.ok());
  EXPECT_EQ(*alice, "engineer");
  auto bob = GetCommitted("bob");
  ASSERT_TRUE(bob.ok());
  EXPECT_EQ(*bob, "analyst");
}

TEST_F(KvStoreTest, MissingKeyIsNotFound) {
  EXPECT_TRUE(GetCommitted("ghost").status().IsNotFound());
}

TEST_F(KvStoreTest, OverwriteReplacesValue) {
  PutCommitted("k", "v1");
  PutCommitted("k", "v2");
  auto value = GetCommitted("k");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, "v2");
  auto txn = db_->Begin();
  auto count = kv_->Count(*txn);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);  // No duplicate slot.
  ASSERT_TRUE(db_->Commit(*txn).ok());
}

TEST_F(KvStoreTest, DeleteThenReinsertReusesTombstone) {
  PutCommitted("k", "v");
  {
    auto txn = db_->Begin();
    ASSERT_TRUE(kv_->Delete(*txn, "k").ok());
    ASSERT_TRUE(db_->Commit(*txn).ok());
  }
  EXPECT_TRUE(GetCommitted("k").status().IsNotFound());
  PutCommitted("k", "v2");
  auto value = GetCommitted("k");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, "v2");
}

TEST_F(KvStoreTest, DeleteMissingIsNotFound) {
  auto txn = db_->Begin();
  EXPECT_TRUE(kv_->Delete(*txn, "nope").IsNotFound());
  ASSERT_TRUE(db_->Commit(*txn).ok());
}

TEST_F(KvStoreTest, AbortRollsBackPuts) {
  PutCommitted("stable", "yes");
  auto txn = db_->Begin();
  ASSERT_TRUE(kv_->Put(*txn, "temp", "value").ok());
  ASSERT_TRUE(kv_->Put(*txn, "stable", "overwritten").ok());
  ASSERT_TRUE(db_->Abort(*txn).ok());
  EXPECT_TRUE(GetCommitted("temp").status().IsNotFound());
  auto stable = GetCommitted("stable");
  ASSERT_TRUE(stable.ok());
  EXPECT_EQ(*stable, "yes");
}

TEST_F(KvStoreTest, CommittedMapSurvivesCrash) {
  PutCommitted("alpha", "1");
  PutCommitted("beta", "2");
  auto loser = db_->Begin();
  ASSERT_TRUE(kv_->Put(*loser, "gamma", "3").ok());
  db_->Crash();
  ASSERT_TRUE(db_->Recover().ok());
  auto alpha = GetCommitted("alpha");
  ASSERT_TRUE(alpha.ok());
  EXPECT_EQ(*alpha, "1");
  auto beta = GetCommitted("beta");
  ASSERT_TRUE(beta.ok());
  EXPECT_EQ(*beta, "2");
  EXPECT_TRUE(GetCommitted("gamma").status().IsNotFound());
}

TEST_F(KvStoreTest, SurvivesDiskFailureAndRebuild) {
  for (int i = 0; i < 20; ++i) {
    PutCommitted("key" + std::to_string(i), "value" + std::to_string(i));
  }
  ASSERT_TRUE(db_->Checkpoint().ok());
  ASSERT_TRUE(db_->FailDisk(1).ok());
  // Degraded read through parity.
  auto hit = GetCommitted("key7");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, "value7");
  ASSERT_TRUE(db_->RebuildDisk(1).ok());
  for (int i = 0; i < 20; ++i) {
    auto value = GetCommitted("key" + std::to_string(i));
    ASSERT_TRUE(value.ok()) << i;
    EXPECT_EQ(*value, "value" + std::to_string(i));
  }
}

TEST_F(KvStoreTest, CollisionsResolveByProbing) {
  // A tiny 1-page table forces collisions.
  Open(KvStore::Options{0, 1, 64});
  const uint32_t capacity = static_cast<uint32_t>(kv_->capacity());
  ASSERT_GE(capacity, 3u);
  for (uint32_t i = 0; i < capacity; ++i) {
    PutCommitted(std::string("c") + std::to_string(i), std::to_string(i));
  }
  for (uint32_t i = 0; i < capacity; ++i) {
    auto value = GetCommitted(std::string("c") + std::to_string(i));
    ASSERT_TRUE(value.ok()) << i;
    EXPECT_EQ(*value, std::to_string(i));
  }
  // The table is now full.
  auto txn = db_->Begin();
  EXPECT_TRUE(kv_->Put(*txn, "overflow", "x").IsBusy());
  ASSERT_TRUE(db_->Commit(*txn).ok());
}

TEST_F(KvStoreTest, ValidationErrors) {
  auto txn = db_->Begin();
  EXPECT_TRUE(kv_->Put(*txn, "", "v").IsInvalidArgument());
  const std::string huge_value(kv_->max_value_size("k") + 1, 'x');
  EXPECT_TRUE(kv_->Put(*txn, "k", huge_value).IsInvalidArgument());
  ASSERT_TRUE(db_->Commit(*txn).ok());

  DatabaseOptions page_mode = DbOptions();
  page_mode.txn.logging_mode = LoggingMode::kPageLogging;
  auto db = Database::Open(page_mode);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(
      KvStore::Attach(db->get(), KvStore::Options{}).status()
          .IsInvalidArgument());
}

TEST_F(KvStoreTest, RandomizedOracleWithCrashes) {
  Random rng(909);
  std::map<std::string, std::string> oracle;
  for (int step = 0; step < 300; ++step) {
    const std::string key = std::string("k") + std::to_string(rng.Uniform(40));
    const double dice = rng.NextDouble();
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok());
    if (dice < 0.55) {
      const std::string value = std::string("v") + std::to_string(rng.Uniform(10000));
      ASSERT_TRUE(kv_->Put(*txn, key, value).ok());
      if (rng.Bernoulli(0.8)) {
        ASSERT_TRUE(db_->Commit(*txn).ok());
        oracle[key] = value;
      } else {
        ASSERT_TRUE(db_->Abort(*txn).ok());
      }
    } else if (dice < 0.75) {
      const Status status = kv_->Delete(*txn, key);
      ASSERT_TRUE(status.ok() || status.IsNotFound());
      if (rng.Bernoulli(0.8)) {
        ASSERT_TRUE(db_->Commit(*txn).ok());
        if (status.ok()) {
          oracle.erase(key);
        }
      } else {
        ASSERT_TRUE(db_->Abort(*txn).ok());
      }
    } else {
      auto value = kv_->Get(*txn, key);
      if (oracle.contains(key)) {
        ASSERT_TRUE(value.ok()) << key;
        EXPECT_EQ(*value, oracle[key]);
      } else {
        EXPECT_TRUE(value.status().IsNotFound()) << key;
      }
      ASSERT_TRUE(db_->Commit(*txn).ok());
    }
    if (step % 60 == 59) {
      db_->Crash();
      ASSERT_TRUE(db_->Recover().ok());
      for (const auto& [k, v] : oracle) {
        auto value = GetCommitted(k);
        ASSERT_TRUE(value.ok()) << k;
        ASSERT_EQ(*value, v);
      }
    }
  }
  auto txn = db_->Begin();
  auto count = kv_->Count(*txn);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, oracle.size());
  ASSERT_TRUE(db_->Commit(*txn).ok());
}


TEST_F(KvStoreTest, SizeLimitsReported) {
  // record_size 48: header 4, so key+value share 44 bytes.
  EXPECT_EQ(kv_->max_key_size(), 43u);  // Leaves >= 1 byte for the value.
  EXPECT_EQ(kv_->max_value_size("abcd"), 40u);
  const std::string key(kv_->max_key_size(), 'k');
  const std::string value(kv_->max_value_size(key), 'v');
  PutCommitted(key, value);
  auto got = GetCommitted(key);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, value);
}

TEST_F(KvStoreTest, EmptyValueAllowed) {
  PutCommitted("k", "");
  auto value = GetCommitted("k");
  ASSERT_TRUE(value.ok());
  EXPECT_TRUE(value->empty());
  EXPECT_FALSE(GetCommitted("k").status().IsNotFound());
}

TEST_F(KvStoreTest, CountScansLiveEntriesOnly) {
  PutCommitted("a", "1");
  PutCommitted("b", "2");
  PutCommitted("c", "3");
  auto txn = db_->Begin();
  ASSERT_TRUE(kv_->Delete(*txn, "b").ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());
  txn = db_->Begin();
  auto count = kv_->Count(*txn);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 2u);
  ASSERT_TRUE(db_->Commit(*txn).ok());
}

}  // namespace
}  // namespace rda
